//! # adaptive-blocks
//!
//! A full Rust reproduction of **Stout, De Zeeuw, Gombosi, Groth,
//! Marshall & Powell, "Adaptive Blocks: A High Performance Data
//! Structure" (SC 1997)** — the block-based AMR design that became
//! standard practice in BATS-R-US, PARAMESH, FLASH, and their
//! descendants.
//!
//! This facade re-exports the workspace crates:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`core`](ablock_core) | the adaptive block grid: blocks of regular cell arrays, explicit face-neighbor pointers, 2:1-balanced refine/coarsen, ghost exchange, SFC orderings |
//! | [`celltree`](ablock_celltree) | the paper's baseline: cell-based quadtree/octree with traversal neighbor finding |
//! | [`solver`](ablock_solver) | finite-volume Euler and ideal-MHD (Powell 8-wave) kernels, MUSCL + Rusanov/HLL, SSP-RK2 |
//! | [`amr`](ablock_amr) | criteria + the solve/adapt driver |
//! | [`par`](ablock_par) | message-passing machine, distributed AMR, shared-memory executor, load balancers, BSP scaling model |
//! | [`io`](ablock_io) | SVG/ASCII/VTK/PGM output and table printing |
//!
//! See `examples/` for runnable entry points and `crates/bench` for the
//! harness that regenerates every figure and table of the paper.

pub use ablock_amr as amr;
pub use ablock_celltree as celltree;
pub use ablock_core as core;
pub use ablock_io as io;
pub use ablock_par as par;
pub use ablock_solver as solver;

/// Convenient glob import for examples and downstream users.
pub mod prelude {
    pub use ablock_amr::{AmrConfig, AmrSimulation, BallCriterion, GradientCriterion};
    pub use ablock_core::prelude::*;
    pub use ablock_solver::{
        problems, Euler, IdealMhd, Limiter, Physics, Recon, Riemann, Scheme, Stepper,
        TimeScheme,
    };
}

//! # adaptive-blocks
//!
//! A full Rust reproduction of **Stout, De Zeeuw, Gombosi, Groth,
//! Marshall & Powell, "Adaptive Blocks: A High Performance Data
//! Structure" (SC 1997)** — the block-based AMR design that became
//! standard practice in BATS-R-US, PARAMESH, FLASH, and their
//! descendants.
//!
//! This facade re-exports the workspace crates:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`core`] | the adaptive block grid: blocks of regular cell arrays, explicit face-neighbor pointers, 2:1-balanced refine/coarsen, ghost exchange, SFC orderings |
//! | [`celltree`] | the paper's baseline: cell-based quadtree/octree with traversal neighbor finding |
//! | [`solver`] | finite-volume Euler and ideal-MHD (Powell 8-wave) kernels, MUSCL + Rusanov/HLL, SSP-RK2 |
//! | [`amr`] | criteria + the solve/adapt driver |
//! | [`par`] | message-passing machine, distributed AMR, shared-memory executor, load balancers, BSP scaling model |
//! | [`io`] | SVG/ASCII/VTK/PGM output and table printing |
//! | [`obs`] | observability: phase-span timers, counters, histograms, deterministic snapshots |
//!
//! See `examples/` for runnable entry points and `crates/bench` for the
//! harness that regenerates every figure and table of the paper.

pub use ablock_amr as amr;
pub use ablock_celltree as celltree;
pub use ablock_core as core;
pub use ablock_io as io;
pub use ablock_obs as obs;
pub use ablock_par as par;
pub use ablock_solver as solver;

/// Convenient glob import for examples and downstream users.
///
/// Every executor is built from one
/// [`SolverConfig`](ablock_solver::SolverConfig): construct it with
/// physics + scheme, chain `with_*` builders (CFL, refluxing, time
/// scheme, ghost config, [`Metrics`](ablock_obs::Metrics) sink), and
/// hand clones to [`Stepper::new`](ablock_solver::Stepper::new),
/// [`ParStepper::new`](ablock_par::ParStepper::new),
/// [`DistSim::partitioned`](ablock_par::DistSim::partitioned), or
/// [`AmrSimulation::new`](ablock_amr::AmrSimulation::new). Errors
/// ([`GridError`](ablock_core::grid::GridError),
/// [`CommError`](ablock_par::CommError),
/// [`MachineError`](ablock_par::MachineError),
/// [`RecoverError`](ablock_par::RecoverError)) all implement
/// [`std::error::Error`], so `?` works against `Box<dyn Error>` mains.
pub mod prelude {
    pub use ablock_amr::{AmrConfig, AmrSimulation, BallCriterion, GradientCriterion};
    pub use ablock_core::prelude::*;
    pub use ablock_obs::{phase, Metrics, MetricsSnapshot};
    pub use ablock_par::{CommError, MachineError, RecoverError};
    pub use ablock_solver::{
        problems, ghost_config_for, EngineStats, Euler, IdealMhd, Limiter, Physics, Recon,
        Riemann, Scheme, SolverConfig, Stepper, SweepEngine, TimeScheme, TimeStepMode,
    };
}

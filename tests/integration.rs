//! Cross-crate integration tests: the whole stack exercised end to end.
//!
//! These tests go through the facade crate and span multiple workspace
//! crates at once — grid + solver + AMR driver + parallel substrates +
//! baseline — checking the equivalences DESIGN.md §8 promises.

use std::collections::HashMap;

use adaptive_blocks::amr::{AmrConfig, AmrSimulation, GradientCriterion};
use adaptive_blocks::celltree::{advection_flux, step_fv, CellTree};
use adaptive_blocks::par::{DistSim, Machine, ParStepper};
use adaptive_blocks::prelude::*;
use adaptive_blocks::solver::stepper::total_conserved;

/// Helper: a periodic 2-D Euler pulse grid.
fn pulse_grid(roots: [i64; 2], m: i64, max_level: u8) -> (BlockGrid<2>, Euler<2>) {
    let e = Euler::<2>::new(1.4);
    let mut g = BlockGrid::new(
        RootLayout::unit(roots, Boundary::Periodic),
        GridParams::new([m, m], 2, 4, max_level),
    );
    problems::advected_gaussian(&mut g, &e, [0.8, 0.4], [0.5, 0.5], 0.12);
    (g, e)
}

#[test]
fn uniform_vs_refined_blocks_converge_to_same_solution() {
    // The same physical problem on (a) a coarse uniform block grid and
    // (b) the same grid refined everywhere once (so resolution doubles)
    // must agree to the discretization order after a short time.
    let (mut coarse, e) = pulse_grid([2, 2], 8, 1);
    let (mut fine, _) = pulse_grid([2, 2], 8, 1);
    fine.refine_all(Transfer::Conservative(ProlongOrder::LinearMinmod));
    problems::advected_gaussian(&mut fine, &e, [0.8, 0.4], [0.5, 0.5], 0.12);

    let cfg = SolverConfig::new(e.clone(), Scheme::muscl_rusanov()).with_cfl(0.4);
    let mut st_c = Stepper::new(cfg.clone());
    let mut st_f = Stepper::new(cfg);
    st_c.run_until(&mut coarse, 0.0, 0.1, None);
    st_f.run_until(&mut fine, 0.0, 0.1, None);

    // restrict the fine solution onto the coarse lattice (coarsen every
    // fine block conservatively) and compare cell averages in L1 — the
    // honest multi-resolution comparison
    let parents: Vec<BlockKey<2>> = fine
        .blocks()
        .filter_map(|(_, n)| n.key().parent())
        .collect::<std::collections::HashSet<_>>()
        .into_iter()
        .collect();
    for p in parents {
        fine.coarsen(p, Transfer::Conservative(ProlongOrder::Constant)).unwrap();
    }
    let mut l1 = 0.0;
    let mut n_cells = 0usize;
    for (_, nc) in coarse.blocks() {
        let nf_id = fine.find(nc.key()).expect("same layout after coarsen");
        let nf = fine.block(nf_id);
        for c in nc.field().shape().interior_box().iter() {
            l1 += (nc.field().at(c, 0) - nf.field().at(c, 0)).abs();
            n_cells += 1;
        }
    }
    l1 /= n_cells as f64;
    assert!(l1 < 0.006, "resolutions disagree in L1: {l1}");
}

#[test]
fn shared_memory_executor_matches_serial_through_amr_cycle() {
    // step serially, adapt, step with the rayon executor: identical grids.
    let (mut ga, e) = pulse_grid([2, 2], 8, 2);
    let (mut gb, _) = pulse_grid([2, 2], 8, 2);
    let dt = 1e-3;

    let cfg = SolverConfig::new(e.clone(), Scheme::muscl_rusanov());
    let mut serial = Stepper::new(cfg.clone());
    let mut par = ParStepper::new(cfg);
    for _ in 0..2 {
        serial.step_rk2(&mut ga, dt, None);
        par.step_rk2(&mut gb, dt);
    }
    // adapt both identically (by key, not id)
    for g in [&mut ga, &mut gb] {
        let id = g.find(BlockKey::new(0, [1, 1])).unwrap();
        adapt(
            g,
            &[(id, Flag::Refine)].into_iter().collect(),
            Transfer::Conservative(ProlongOrder::LinearMinmod),
        );
    }
    // no invalidate: both engines revalidate off the bumped topology epoch
    for _ in 0..2 {
        serial.step_rk2(&mut ga, dt, None);
        par.step_rk2(&mut gb, dt);
    }
    // compare every interior cell by key
    let by_key: HashMap<BlockKey<2>, BlockId> =
        gb.blocks().map(|(id, n)| (n.key(), id)).collect();
    for (_, na) in ga.blocks() {
        let nb = gb.block(by_key[&na.key()]);
        for c in na.field().shape().interior_box().iter() {
            for v in 0..4 {
                let (x, y) = (na.field().at(c, v), nb.field().at(c, v));
                assert!(
                    (x - y).abs() < 1e-13,
                    "{:?} cell {c:?} var {v}: {x} vs {y}",
                    na.key()
                );
            }
        }
    }
}

#[test]
fn distributed_machine_matches_serial_with_adaptive_grid() {
    // refine a block, then run serial vs 3-rank distributed: equal fields.
    let dt = 1.2e-3;
    let steps = 3;
    let build = || {
        let (mut g, e) = pulse_grid([2, 2], 8, 2);
        let id = g.find(BlockKey::new(0, [0, 0])).unwrap();
        g.refine(id, Transfer::Conservative(ProlongOrder::LinearMinmod)).unwrap();
        (g, e)
    };
    let (mut gs, e) = build();
    let mut st = Stepper::new(SolverConfig::new(e.clone(), Scheme::muscl_rusanov()));
    for _ in 0..steps {
        st.step_rk2(&mut gs, dt, None);
    }
    let serial: HashMap<BlockKey<2>, Vec<f64>> = gs
        .blocks()
        .map(|(_, n)| (n.key(), n.field().as_slice().to_vec()))
        .collect();

    let results = Machine::run(3, move |comm| {
        let (g, e) = build();
        let mut sim = DistSim::partitioned(g, 3, SolverConfig::new(e, Scheme::muscl_rusanov()));
        for _ in 0..steps {
            sim.step_rk2(&comm, dt);
        }
        sim.owned_ids(comm.rank())
            .into_iter()
            .map(|id| {
                let n = sim.grid.block(id);
                (n.key(), n.field().as_slice().to_vec())
            })
            .collect::<Vec<_>>()
    }).unwrap();
    let shape = gs.params().field_shape();
    let mut checked = 0;
    for (key, data) in results.into_iter().flatten() {
        let sref = &serial[&key];
        for c in shape.interior_box().iter() {
            let i = shape.lin(c);
            for v in 0..4 {
                assert!(
                    (data[i + v] - sref[i + v]).abs() < 1e-13,
                    "block {key:?} cell {c:?} var {v}"
                );
            }
        }
        checked += 1;
    }
    assert_eq!(checked, gs.num_blocks());
}

#[test]
fn amr_simulation_beats_uniform_cost_at_equal_front_resolution() {
    // The headline efficiency claim: tracking a blast front adaptively
    // uses a fraction of the uniform grid's cells.
    let e = Euler::<2>::new(1.4);
    let grid = BlockGrid::new(
        RootLayout::unit([2, 2], Boundary::Outflow),
        GridParams::new([8, 8], 2, 4, 3),
    );
    let mut sim = AmrSimulation::new(
        grid,
        SolverConfig::new(e.clone(), Scheme::muscl_rusanov()).with_cfl(0.3),
        GradientCriterion::new(3, 0.08, 0.03),
        AmrConfig { adapt_every: 4, max_steps: 20_000 },
    );
    problems::sedov_blast(&mut sim.grid, &e, [0.5, 0.5], 0.08, 30.0);
    sim.initial_adapt_with(4, None, |g| {
        problems::sedov_blast(g, &e, [0.5, 0.5], 0.08, 30.0)
    });
    sim.run_until(0.04, None);
    assert!(sim.grid.max_level_present() >= 2);
    assert!(
        sim.compression() < 0.6,
        "AMR must use well under the uniform cell count: {}",
        sim.compression()
    );
    adaptive_blocks::core::verify::check_grid(&sim.grid).unwrap();
}

#[test]
fn blocks_and_celltree_agree_on_first_order_advection() {
    // same uniform-resolution problem, two data structures, one scheme:
    // answers must match to tight tolerance (they are the same method).
    let n = 32i64;
    // celltree: 32 root cells in 1-D
    let mut tree = CellTree::<1>::new(RootLayout::unit([n], Boundary::Periodic), 1, 0);
    for id in tree.leaf_ids() {
        let x = tree.cell_center(tree.node(id).key)[0];
        tree.node_mut(id).u[0] = 1.0 + 0.5 * (2.0 * std::f64::consts::PI * x).sin();
    }
    // blocks: 4 blocks of 8 cells — same cells, same centers
    let mut grid = BlockGrid::<1>::new(
        RootLayout::unit([4], Boundary::Periodic),
        GridParams::new([8], 1, 1, 0),
    );
    let layout = grid.layout().clone();
    for id in grid.block_ids() {
        let key = grid.block(id).key();
        grid.block_mut(id).field_mut().for_each_interior(|c, u| {
            let x = layout.cell_center(key, [8], c)[0];
            u[0] = 1.0 + 0.5 * (2.0 * std::f64::consts::PI * x).sin();
        });
    }
    let dt = 0.4 / n as f64;
    let steps = 20;
    let flux = advection_flux::<1>([1.0]);
    for _ in 0..steps {
        step_fv(&mut tree, dt, &flux, &[]);
    }
    // an upwind step on the block grid: first-order scalar "physics" via a
    // hand-rolled loop using ghosts (the kernels need a Physics; advection
    // is simpler done directly and keeps this test independent of them)
    let plan = GhostExchange::build(&grid, GhostConfig { prolong_order: ProlongOrder::Constant, vector_components: vec![], corners: false });
    for _ in 0..steps {
        plan.fill(&mut grid);
        for id in grid.block_ids() {
            let node = grid.block_mut(id);
            let m = 8i64;
            let h = 1.0 / n as f64;
            let mut new = vec![0.0f64; m as usize];
            for i in 0..m {
                let u = node.field().at([i], 0);
                let ul = node.field().at([i - 1], 0);
                new[i as usize] = u - dt / h * (u - ul);
            }
            for i in 0..m {
                *node.field_mut().at_mut([i], 0) = new[i as usize];
            }
        }
    }
    // compare cell by cell
    for (j, id) in tree.leaf_ids().into_iter().enumerate() {
        let tv = tree.node(id).u[0];
        let block = j as i64 / 8;
        let cell = j as i64 % 8;
        let bid = grid.find(BlockKey::new(0, [block])).unwrap();
        let bv = grid.block(bid).field().at([cell], 0);
        assert!(
            (tv - bv).abs() < 1e-12,
            "cell {j}: tree {tv} vs blocks {bv}"
        );
    }
}

#[test]
fn conservation_through_full_pipeline() {
    // AMR + adapts + many steps on a periodic box: mass and energy exact.
    let (g, e) = pulse_grid([2, 2], 8, 2);
    let mut sim = AmrSimulation::new(
        g,
        SolverConfig::new(e, Scheme::muscl_rusanov()).with_cfl(0.35),
        GradientCriterion::new(0, 0.03, 0.01),
        AmrConfig { adapt_every: 3, max_steps: 10_000 },
    );
    sim.adapt_now(None);
    let m0 = total_conserved(&sim.grid, 0);
    sim.run_until(0.15, None);
    let m1 = total_conserved(&sim.grid, 0);
    // periodic box: the only conservation defect is the coarse/fine flux
    // mismatch (no refluxing) — must stay tiny
    assert!(
        (m1 - m0).abs() < 2e-4 * m0.abs(),
        "mass drift: {m0} -> {m1}"
    );
    assert!(sim.stats.adapts >= 1);
}

#[test]
fn wind_source_mhd_pipeline_smoke() {
    use adaptive_blocks::solver::problems::WindSource;
    let mhd = IdealMhd::new(5.0 / 3.0);
    let mut g = BlockGrid::<2>::new(
        RootLayout::new([2, 2], [-1.0, -1.0], [2.0, 2.0], [Boundary::Outflow; 6]),
        GridParams::new([8, 8], 2, 8, 2),
    );
    problems::set_initial(&mut g, &mhd, |_, w| {
        w[0] = 0.05;
        w[7] = 0.01;
    });
    let wind = WindSource {
        center: [0.0, 0.0],
        r_src: 0.2,
        v_wind: 1.0,
        rho: 1.0,
        p: 0.3,
        b: 0.1,
        pulse: None,
    };
    wind.apply(&mut g, &mhd, 0.0);
    let mut st = Stepper::new(SolverConfig::new(mhd.clone(), Scheme::muscl_rusanov()).with_cfl(0.3));
    let mut t = 0.0;
    for _ in 0..30 {
        let dt = st.max_dt(&g);
        st.step(&mut g, dt, None);
        t += dt;
        wind.apply(&mut g, &mhd, t);
    }
    // the wind must have pushed density outward beyond the source ball
    let probe = g.find_leaf_at([0.35, 0.0]).unwrap();
    let node = g.block(probe);
    let mut max_rho: f64 = 0.0;
    for c in node.field().shape().interior_box().iter() {
        max_rho = max_rho.max(node.field().at(c, 0));
        assert!(node.field().cell(c).iter().all(|x| x.is_finite()));
    }
    assert!(max_rho > 0.06, "wind should raise density outside the ball: {max_rho}");
}

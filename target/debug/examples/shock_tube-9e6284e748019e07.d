/root/repo/target/debug/examples/shock_tube-9e6284e748019e07.d: examples/shock_tube.rs Cargo.toml

/root/repo/target/debug/examples/libshock_tube-9e6284e748019e07.rmeta: examples/shock_tube.rs Cargo.toml

examples/shock_tube.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

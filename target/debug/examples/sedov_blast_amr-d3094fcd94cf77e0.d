/root/repo/target/debug/examples/sedov_blast_amr-d3094fcd94cf77e0.d: examples/sedov_blast_amr.rs Cargo.toml

/root/repo/target/debug/examples/libsedov_blast_amr-d3094fcd94cf77e0.rmeta: examples/sedov_blast_amr.rs Cargo.toml

examples/sedov_blast_amr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/comet_tracking-69950786e65fe293.d: examples/comet_tracking.rs

/root/repo/target/debug/examples/comet_tracking-69950786e65fe293: examples/comet_tracking.rs

examples/comet_tracking.rs:

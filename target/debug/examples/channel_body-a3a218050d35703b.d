/root/repo/target/debug/examples/channel_body-a3a218050d35703b.d: examples/channel_body.rs Cargo.toml

/root/repo/target/debug/examples/libchannel_body-a3a218050d35703b.rmeta: examples/channel_body.rs Cargo.toml

examples/channel_body.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/parallel_scaling-34685669caecafe9.d: examples/parallel_scaling.rs

/root/repo/target/debug/examples/parallel_scaling-34685669caecafe9: examples/parallel_scaling.rs

examples/parallel_scaling.rs:

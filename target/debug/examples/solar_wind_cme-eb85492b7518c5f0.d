/root/repo/target/debug/examples/solar_wind_cme-eb85492b7518c5f0.d: examples/solar_wind_cme.rs Cargo.toml

/root/repo/target/debug/examples/libsolar_wind_cme-eb85492b7518c5f0.rmeta: examples/solar_wind_cme.rs Cargo.toml

examples/solar_wind_cme.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

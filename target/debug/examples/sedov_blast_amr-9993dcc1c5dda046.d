/root/repo/target/debug/examples/sedov_blast_amr-9993dcc1c5dda046.d: examples/sedov_blast_amr.rs

/root/repo/target/debug/examples/sedov_blast_amr-9993dcc1c5dda046: examples/sedov_blast_amr.rs

examples/sedov_blast_amr.rs:

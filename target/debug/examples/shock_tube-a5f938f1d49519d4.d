/root/repo/target/debug/examples/shock_tube-a5f938f1d49519d4.d: examples/shock_tube.rs

/root/repo/target/debug/examples/shock_tube-a5f938f1d49519d4: examples/shock_tube.rs

examples/shock_tube.rs:

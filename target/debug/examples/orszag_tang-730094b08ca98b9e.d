/root/repo/target/debug/examples/orszag_tang-730094b08ca98b9e.d: examples/orszag_tang.rs

/root/repo/target/debug/examples/orszag_tang-730094b08ca98b9e: examples/orszag_tang.rs

examples/orszag_tang.rs:

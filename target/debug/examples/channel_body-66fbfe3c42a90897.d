/root/repo/target/debug/examples/channel_body-66fbfe3c42a90897.d: examples/channel_body.rs

/root/repo/target/debug/examples/channel_body-66fbfe3c42a90897: examples/channel_body.rs

examples/channel_body.rs:

/root/repo/target/debug/examples/quickstart-3ae4779450052b5a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3ae4779450052b5a: examples/quickstart.rs

examples/quickstart.rs:

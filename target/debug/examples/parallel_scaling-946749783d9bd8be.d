/root/repo/target/debug/examples/parallel_scaling-946749783d9bd8be.d: examples/parallel_scaling.rs Cargo.toml

/root/repo/target/debug/examples/libparallel_scaling-946749783d9bd8be.rmeta: examples/parallel_scaling.rs Cargo.toml

examples/parallel_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/fault_recovery-a9072e35cec75831.d: examples/fault_recovery.rs

/root/repo/target/debug/examples/fault_recovery-a9072e35cec75831: examples/fault_recovery.rs

examples/fault_recovery.rs:

/root/repo/target/debug/examples/solar_wind_cme-9e573abbeb6efe6b.d: examples/solar_wind_cme.rs

/root/repo/target/debug/examples/solar_wind_cme-9e573abbeb6efe6b: examples/solar_wind_cme.rs

examples/solar_wind_cme.rs:

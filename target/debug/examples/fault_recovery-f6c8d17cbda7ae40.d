/root/repo/target/debug/examples/fault_recovery-f6c8d17cbda7ae40.d: examples/fault_recovery.rs Cargo.toml

/root/repo/target/debug/examples/libfault_recovery-f6c8d17cbda7ae40.rmeta: examples/fault_recovery.rs Cargo.toml

examples/fault_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/comet_tracking-3fee5fe5b422b759.d: examples/comet_tracking.rs Cargo.toml

/root/repo/target/debug/examples/libcomet_tracking-3fee5fe5b422b759.rmeta: examples/comet_tracking.rs Cargo.toml

examples/comet_tracking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

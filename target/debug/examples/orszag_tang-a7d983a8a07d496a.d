/root/repo/target/debug/examples/orszag_tang-a7d983a8a07d496a.d: examples/orszag_tang.rs Cargo.toml

/root/repo/target/debug/examples/liborszag_tang-a7d983a8a07d496a.rmeta: examples/orszag_tang.rs Cargo.toml

examples/orszag_tang.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ablock_bench-3c43bc64d285f0f3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/ablock_bench-3c43bc64d285f0f3: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

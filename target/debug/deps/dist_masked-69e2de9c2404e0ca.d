/root/repo/target/debug/deps/dist_masked-69e2de9c2404e0ca.d: crates/par/tests/dist_masked.rs Cargo.toml

/root/repo/target/debug/deps/libdist_masked-69e2de9c2404e0ca.rmeta: crates/par/tests/dist_masked.rs Cargo.toml

crates/par/tests/dist_masked.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ablock_celltree-ad870f80f266264a.d: crates/celltree/src/lib.rs crates/celltree/src/fv.rs crates/celltree/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libablock_celltree-ad870f80f266264a.rmeta: crates/celltree/src/lib.rs crates/celltree/src/fv.rs crates/celltree/src/tree.rs Cargo.toml

crates/celltree/src/lib.rs:
crates/celltree/src/fv.rs:
crates/celltree/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ablock_celltree-68b26bbb09693bc3.d: crates/celltree/src/lib.rs crates/celltree/src/fv.rs crates/celltree/src/tree.rs

/root/repo/target/debug/deps/libablock_celltree-68b26bbb09693bc3.rlib: crates/celltree/src/lib.rs crates/celltree/src/fv.rs crates/celltree/src/tree.rs

/root/repo/target/debug/deps/libablock_celltree-68b26bbb09693bc3.rmeta: crates/celltree/src/lib.rs crates/celltree/src/fv.rs crates/celltree/src/tree.rs

crates/celltree/src/lib.rs:
crates/celltree/src/fv.rs:
crates/celltree/src/tree.rs:

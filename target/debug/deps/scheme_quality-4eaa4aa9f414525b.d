/root/repo/target/debug/deps/scheme_quality-4eaa4aa9f414525b.d: crates/solver/tests/scheme_quality.rs

/root/repo/target/debug/deps/scheme_quality-4eaa4aa9f414525b: crates/solver/tests/scheme_quality.rs

crates/solver/tests/scheme_quality.rs:

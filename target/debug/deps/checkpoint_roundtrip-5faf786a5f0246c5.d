/root/repo/target/debug/deps/checkpoint_roundtrip-5faf786a5f0246c5.d: crates/io/tests/checkpoint_roundtrip.rs

/root/repo/target/debug/deps/checkpoint_roundtrip-5faf786a5f0246c5: crates/io/tests/checkpoint_roundtrip.rs

crates/io/tests/checkpoint_roundtrip.rs:

/root/repo/target/debug/deps/ablock_testkit-0bb9519d5fd076fd.d: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/ablock_testkit-0bb9519d5fd076fd: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:

/root/repo/target/debug/deps/ablock_bench-0e0806723748ddcc.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libablock_bench-0e0806723748ddcc.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libablock_bench-0e0806723748ddcc.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

/root/repo/target/debug/deps/proptests-df1e9c7c344139b4.d: crates/par/tests/proptests.rs

/root/repo/target/debug/deps/proptests-df1e9c7c344139b4: crates/par/tests/proptests.rs

crates/par/tests/proptests.rs:

/root/repo/target/debug/deps/fig6_weak_scaling-8cba4f15526f3efb.d: crates/bench/src/bin/fig6_weak_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_weak_scaling-8cba4f15526f3efb.rmeta: crates/bench/src/bin/fig6_weak_scaling.rs Cargo.toml

crates/bench/src/bin/fig6_weak_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig7_strong_scaling-fa9ede049f9ab290.d: crates/bench/src/bin/fig7_strong_scaling.rs

/root/repo/target/debug/deps/fig7_strong_scaling-fa9ede049f9ab290: crates/bench/src/bin/fig7_strong_scaling.rs

crates/bench/src/bin/fig7_strong_scaling.rs:

/root/repo/target/debug/deps/corner_ghosts-d5f2ff138fc9573c.d: crates/core/tests/corner_ghosts.rs Cargo.toml

/root/repo/target/debug/deps/libcorner_ghosts-d5f2ff138fc9573c.rmeta: crates/core/tests/corner_ghosts.rs Cargo.toml

crates/core/tests/corner_ghosts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ablock_testkit-67e07f66184138ef.d: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/libablock_testkit-67e07f66184138ef.rlib: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/libablock_testkit-67e07f66184138ef.rmeta: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:

/root/repo/target/debug/deps/ablock_amr-d2791c207fe2ff2f.d: crates/amr/src/lib.rs crates/amr/src/criteria.rs crates/amr/src/driver.rs

/root/repo/target/debug/deps/libablock_amr-d2791c207fe2ff2f.rlib: crates/amr/src/lib.rs crates/amr/src/criteria.rs crates/amr/src/driver.rs

/root/repo/target/debug/deps/libablock_amr-d2791c207fe2ff2f.rmeta: crates/amr/src/lib.rs crates/amr/src/criteria.rs crates/amr/src/driver.rs

crates/amr/src/lib.rs:
crates/amr/src/criteria.rs:
crates/amr/src/driver.rs:

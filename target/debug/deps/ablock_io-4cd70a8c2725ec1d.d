/root/repo/target/debug/deps/ablock_io-4cd70a8c2725ec1d.d: crates/io/src/lib.rs crates/io/src/checkpoint.rs crates/io/src/image.rs crates/io/src/profile.rs crates/io/src/render.rs crates/io/src/table.rs crates/io/src/vtk.rs Cargo.toml

/root/repo/target/debug/deps/libablock_io-4cd70a8c2725ec1d.rmeta: crates/io/src/lib.rs crates/io/src/checkpoint.rs crates/io/src/image.rs crates/io/src/profile.rs crates/io/src/render.rs crates/io/src/table.rs crates/io/src/vtk.rs Cargo.toml

crates/io/src/lib.rs:
crates/io/src/checkpoint.rs:
crates/io/src/image.rs:
crates/io/src/profile.rs:
crates/io/src/render.rs:
crates/io/src/table.rs:
crates/io/src/vtk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

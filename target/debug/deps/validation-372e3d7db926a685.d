/root/repo/target/debug/deps/validation-372e3d7db926a685.d: crates/solver/tests/validation.rs

/root/repo/target/debug/deps/validation-372e3d7db926a685: crates/solver/tests/validation.rs

crates/solver/tests/validation.rs:

/root/repo/target/debug/deps/abl_adaptive_efficiency-953877f0e41a6443.d: crates/bench/src/bin/abl_adaptive_efficiency.rs

/root/repo/target/debug/deps/abl_adaptive_efficiency-953877f0e41a6443: crates/bench/src/bin/abl_adaptive_efficiency.rs

crates/bench/src/bin/abl_adaptive_efficiency.rs:

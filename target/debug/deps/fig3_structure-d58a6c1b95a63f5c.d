/root/repo/target/debug/deps/fig3_structure-d58a6c1b95a63f5c.d: crates/bench/src/bin/fig3_structure.rs

/root/repo/target/debug/deps/fig3_structure-d58a6c1b95a63f5c: crates/bench/src/bin/fig3_structure.rs

crates/bench/src/bin/fig3_structure.rs:

/root/repo/target/debug/deps/ghost_and_adapt-778f997b35f946cf.d: crates/bench/benches/ghost_and_adapt.rs Cargo.toml

/root/repo/target/debug/deps/libghost_and_adapt-778f997b35f946cf.rmeta: crates/bench/benches/ghost_and_adapt.rs Cargo.toml

crates/bench/benches/ghost_and_adapt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig5_table-d8654d4f3201221c.d: crates/bench/src/bin/fig5_table.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_table-d8654d4f3201221c.rmeta: crates/bench/src/bin/fig5_table.rs Cargo.toml

crates/bench/src/bin/fig5_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

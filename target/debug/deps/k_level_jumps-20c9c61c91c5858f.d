/root/repo/target/debug/deps/k_level_jumps-20c9c61c91c5858f.d: crates/core/tests/k_level_jumps.rs

/root/repo/target/debug/deps/k_level_jumps-20c9c61c91c5858f: crates/core/tests/k_level_jumps.rs

crates/core/tests/k_level_jumps.rs:

/root/repo/target/debug/deps/adaptive_blocks-5987f6dd2fbe316d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libadaptive_blocks-5987f6dd2fbe316d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ablock_io-44560ed36d7e3ce2.d: crates/io/src/lib.rs crates/io/src/checkpoint.rs crates/io/src/image.rs crates/io/src/profile.rs crates/io/src/render.rs crates/io/src/table.rs crates/io/src/vtk.rs

/root/repo/target/debug/deps/ablock_io-44560ed36d7e3ce2: crates/io/src/lib.rs crates/io/src/checkpoint.rs crates/io/src/image.rs crates/io/src/profile.rs crates/io/src/render.rs crates/io/src/table.rs crates/io/src/vtk.rs

crates/io/src/lib.rs:
crates/io/src/checkpoint.rs:
crates/io/src/image.rs:
crates/io/src/profile.rs:
crates/io/src/render.rs:
crates/io/src/table.rs:
crates/io/src/vtk.rs:

/root/repo/target/debug/deps/fig6_weak_scaling-d4a85e10a36afac8.d: crates/bench/src/bin/fig6_weak_scaling.rs

/root/repo/target/debug/deps/fig6_weak_scaling-d4a85e10a36afac8: crates/bench/src/bin/fig6_weak_scaling.rs

crates/bench/src/bin/fig6_weak_scaling.rs:

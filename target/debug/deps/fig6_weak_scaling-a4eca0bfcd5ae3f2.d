/root/repo/target/debug/deps/fig6_weak_scaling-a4eca0bfcd5ae3f2.d: crates/bench/src/bin/fig6_weak_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_weak_scaling-a4eca0bfcd5ae3f2.rmeta: crates/bench/src/bin/fig6_weak_scaling.rs Cargo.toml

crates/bench/src/bin/fig6_weak_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/abl_multigrid-68f68fcc3fd33d9d.d: crates/bench/src/bin/abl_multigrid.rs Cargo.toml

/root/repo/target/debug/deps/libabl_multigrid-68f68fcc3fd33d9d.rmeta: crates/bench/src/bin/abl_multigrid.rs Cargo.toml

crates/bench/src/bin/abl_multigrid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

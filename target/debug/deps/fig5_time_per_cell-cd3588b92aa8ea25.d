/root/repo/target/debug/deps/fig5_time_per_cell-cd3588b92aa8ea25.d: crates/bench/benches/fig5_time_per_cell.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_time_per_cell-cd3588b92aa8ea25.rmeta: crates/bench/benches/fig5_time_per_cell.rs Cargo.toml

crates/bench/benches/fig5_time_per_cell.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

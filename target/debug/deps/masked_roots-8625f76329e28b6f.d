/root/repo/target/debug/deps/masked_roots-8625f76329e28b6f.d: crates/core/tests/masked_roots.rs Cargo.toml

/root/repo/target/debug/deps/libmasked_roots-8625f76329e28b6f.rmeta: crates/core/tests/masked_roots.rs Cargo.toml

crates/core/tests/masked_roots.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig5_table-4bd9eb427d9c43b0.d: crates/bench/src/bin/fig5_table.rs

/root/repo/target/debug/deps/fig5_table-4bd9eb427d9c43b0: crates/bench/src/bin/fig5_table.rs

crates/bench/src/bin/fig5_table.rs:

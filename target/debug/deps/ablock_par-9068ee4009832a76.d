/root/repo/target/debug/deps/ablock_par-9068ee4009832a76.d: crates/par/src/lib.rs crates/par/src/balance.rs crates/par/src/costmodel.rs crates/par/src/dist.rs crates/par/src/fault.rs crates/par/src/machine.rs crates/par/src/pool.rs crates/par/src/recover.rs crates/par/src/shared.rs

/root/repo/target/debug/deps/libablock_par-9068ee4009832a76.rlib: crates/par/src/lib.rs crates/par/src/balance.rs crates/par/src/costmodel.rs crates/par/src/dist.rs crates/par/src/fault.rs crates/par/src/machine.rs crates/par/src/pool.rs crates/par/src/recover.rs crates/par/src/shared.rs

/root/repo/target/debug/deps/libablock_par-9068ee4009832a76.rmeta: crates/par/src/lib.rs crates/par/src/balance.rs crates/par/src/costmodel.rs crates/par/src/dist.rs crates/par/src/fault.rs crates/par/src/machine.rs crates/par/src/pool.rs crates/par/src/recover.rs crates/par/src/shared.rs

crates/par/src/lib.rs:
crates/par/src/balance.rs:
crates/par/src/costmodel.rs:
crates/par/src/dist.rs:
crates/par/src/fault.rs:
crates/par/src/machine.rs:
crates/par/src/pool.rs:
crates/par/src/recover.rs:
crates/par/src/shared.rs:

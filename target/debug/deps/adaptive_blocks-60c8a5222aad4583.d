/root/repo/target/debug/deps/adaptive_blocks-60c8a5222aad4583.d: src/lib.rs

/root/repo/target/debug/deps/adaptive_blocks-60c8a5222aad4583: src/lib.rs

src/lib.rs:

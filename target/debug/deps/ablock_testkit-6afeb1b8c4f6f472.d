/root/repo/target/debug/deps/ablock_testkit-6afeb1b8c4f6f472.d: crates/testkit/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libablock_testkit-6afeb1b8c4f6f472.rmeta: crates/testkit/src/lib.rs Cargo.toml

crates/testkit/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/k_level_jumps-3f9a41aa74c696b2.d: crates/core/tests/k_level_jumps.rs Cargo.toml

/root/repo/target/debug/deps/libk_level_jumps-3f9a41aa74c696b2.rmeta: crates/core/tests/k_level_jumps.rs Cargo.toml

crates/core/tests/k_level_jumps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/proptests-2ab4a257bcd2d6aa.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-2ab4a257bcd2d6aa: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:

/root/repo/target/debug/deps/dist_amr-f019a3f096b3d970.d: crates/par/tests/dist_amr.rs Cargo.toml

/root/repo/target/debug/deps/libdist_amr-f019a3f096b3d970.rmeta: crates/par/tests/dist_amr.rs Cargo.toml

crates/par/tests/dist_amr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/abl_ghost_depth-b17e674061365217.d: crates/bench/src/bin/abl_ghost_depth.rs

/root/repo/target/debug/deps/abl_ghost_depth-b17e674061365217: crates/bench/src/bin/abl_ghost_depth.rs

crates/bench/src/bin/abl_ghost_depth.rs:

/root/repo/target/debug/deps/fig7_strong_scaling-b7e28643785f9e3d.d: crates/bench/src/bin/fig7_strong_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_strong_scaling-b7e28643785f9e3d.rmeta: crates/bench/src/bin/fig7_strong_scaling.rs Cargo.toml

crates/bench/src/bin/fig7_strong_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

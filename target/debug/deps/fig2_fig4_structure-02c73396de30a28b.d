/root/repo/target/debug/deps/fig2_fig4_structure-02c73396de30a28b.d: crates/bench/src/bin/fig2_fig4_structure.rs

/root/repo/target/debug/deps/fig2_fig4_structure-02c73396de30a28b: crates/bench/src/bin/fig2_fig4_structure.rs

crates/bench/src/bin/fig2_fig4_structure.rs:

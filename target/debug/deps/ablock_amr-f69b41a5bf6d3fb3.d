/root/repo/target/debug/deps/ablock_amr-f69b41a5bf6d3fb3.d: crates/amr/src/lib.rs crates/amr/src/criteria.rs crates/amr/src/driver.rs Cargo.toml

/root/repo/target/debug/deps/libablock_amr-f69b41a5bf6d3fb3.rmeta: crates/amr/src/lib.rs crates/amr/src/criteria.rs crates/amr/src/driver.rs Cargo.toml

crates/amr/src/lib.rs:
crates/amr/src/criteria.rs:
crates/amr/src/driver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

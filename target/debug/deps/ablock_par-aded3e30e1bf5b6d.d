/root/repo/target/debug/deps/ablock_par-aded3e30e1bf5b6d.d: crates/par/src/lib.rs crates/par/src/balance.rs crates/par/src/costmodel.rs crates/par/src/dist.rs crates/par/src/fault.rs crates/par/src/machine.rs crates/par/src/pool.rs crates/par/src/recover.rs crates/par/src/shared.rs

/root/repo/target/debug/deps/ablock_par-aded3e30e1bf5b6d: crates/par/src/lib.rs crates/par/src/balance.rs crates/par/src/costmodel.rs crates/par/src/dist.rs crates/par/src/fault.rs crates/par/src/machine.rs crates/par/src/pool.rs crates/par/src/recover.rs crates/par/src/shared.rs

crates/par/src/lib.rs:
crates/par/src/balance.rs:
crates/par/src/costmodel.rs:
crates/par/src/dist.rs:
crates/par/src/fault.rs:
crates/par/src/machine.rs:
crates/par/src/pool.rs:
crates/par/src/recover.rs:
crates/par/src/shared.rs:

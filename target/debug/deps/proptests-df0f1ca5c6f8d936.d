/root/repo/target/debug/deps/proptests-df0f1ca5c6f8d936.d: crates/celltree/tests/proptests.rs

/root/repo/target/debug/deps/proptests-df0f1ca5c6f8d936: crates/celltree/tests/proptests.rs

crates/celltree/tests/proptests.rs:

/root/repo/target/debug/deps/tab_ghost_ratio-b8c4b5385ba0bf9e.d: crates/bench/src/bin/tab_ghost_ratio.rs

/root/repo/target/debug/deps/tab_ghost_ratio-b8c4b5385ba0bf9e: crates/bench/src/bin/tab_ghost_ratio.rs

crates/bench/src/bin/tab_ghost_ratio.rs:

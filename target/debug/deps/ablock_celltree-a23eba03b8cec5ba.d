/root/repo/target/debug/deps/ablock_celltree-a23eba03b8cec5ba.d: crates/celltree/src/lib.rs crates/celltree/src/fv.rs crates/celltree/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libablock_celltree-a23eba03b8cec5ba.rmeta: crates/celltree/src/lib.rs crates/celltree/src/fv.rs crates/celltree/src/tree.rs Cargo.toml

crates/celltree/src/lib.rs:
crates/celltree/src/fv.rs:
crates/celltree/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

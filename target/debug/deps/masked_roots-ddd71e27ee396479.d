/root/repo/target/debug/deps/masked_roots-ddd71e27ee396479.d: crates/core/tests/masked_roots.rs

/root/repo/target/debug/deps/masked_roots-ddd71e27ee396479: crates/core/tests/masked_roots.rs

crates/core/tests/masked_roots.rs:

/root/repo/target/debug/deps/proptests-9331c7d1f0f84161.d: crates/par/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-9331c7d1f0f84161.rmeta: crates/par/tests/proptests.rs Cargo.toml

crates/par/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/validation-a213d722d02b8f4f.d: crates/solver/tests/validation.rs Cargo.toml

/root/repo/target/debug/deps/libvalidation-a213d722d02b8f4f.rmeta: crates/solver/tests/validation.rs Cargo.toml

crates/solver/tests/validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/abl_load_balance-48053353ae0fca1a.d: crates/bench/src/bin/abl_load_balance.rs

/root/repo/target/debug/deps/abl_load_balance-48053353ae0fca1a: crates/bench/src/bin/abl_load_balance.rs

crates/bench/src/bin/abl_load_balance.rs:

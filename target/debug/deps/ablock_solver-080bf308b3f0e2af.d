/root/repo/target/debug/deps/ablock_solver-080bf308b3f0e2af.d: crates/solver/src/lib.rs crates/solver/src/euler.rs crates/solver/src/flux.rs crates/solver/src/kernel.rs crates/solver/src/mhd.rs crates/solver/src/physics.rs crates/solver/src/poisson.rs crates/solver/src/problems.rs crates/solver/src/recon.rs crates/solver/src/reflux.rs crates/solver/src/stepper.rs

/root/repo/target/debug/deps/ablock_solver-080bf308b3f0e2af: crates/solver/src/lib.rs crates/solver/src/euler.rs crates/solver/src/flux.rs crates/solver/src/kernel.rs crates/solver/src/mhd.rs crates/solver/src/physics.rs crates/solver/src/poisson.rs crates/solver/src/problems.rs crates/solver/src/recon.rs crates/solver/src/reflux.rs crates/solver/src/stepper.rs

crates/solver/src/lib.rs:
crates/solver/src/euler.rs:
crates/solver/src/flux.rs:
crates/solver/src/kernel.rs:
crates/solver/src/mhd.rs:
crates/solver/src/physics.rs:
crates/solver/src/poisson.rs:
crates/solver/src/problems.rs:
crates/solver/src/recon.rs:
crates/solver/src/reflux.rs:
crates/solver/src/stepper.rs:

/root/repo/target/debug/deps/checkpoint_roundtrip-b7d888f36eb167b1.d: crates/io/tests/checkpoint_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libcheckpoint_roundtrip-b7d888f36eb167b1.rmeta: crates/io/tests/checkpoint_roundtrip.rs Cargo.toml

crates/io/tests/checkpoint_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/dist_masked-9fadd58fc5490e1e.d: crates/par/tests/dist_masked.rs

/root/repo/target/debug/deps/dist_masked-9fadd58fc5490e1e: crates/par/tests/dist_masked.rs

crates/par/tests/dist_masked.rs:

/root/repo/target/debug/deps/tab_neighbor_bounds-129057045ffe51fc.d: crates/bench/src/bin/tab_neighbor_bounds.rs Cargo.toml

/root/repo/target/debug/deps/libtab_neighbor_bounds-129057045ffe51fc.rmeta: crates/bench/src/bin/tab_neighbor_bounds.rs Cargo.toml

crates/bench/src/bin/tab_neighbor_bounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig3_structure-446f39c50daeca57.d: crates/bench/src/bin/fig3_structure.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_structure-446f39c50daeca57.rmeta: crates/bench/src/bin/fig3_structure.rs Cargo.toml

crates/bench/src/bin/fig3_structure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ablock_core-7a527713d89f4123.d: crates/core/src/lib.rs crates/core/src/arena.rs crates/core/src/balance.rs crates/core/src/field.rs crates/core/src/ghost.rs crates/core/src/grid.rs crates/core/src/index.rs crates/core/src/key.rs crates/core/src/layout.rs crates/core/src/ops.rs crates/core/src/sfc.rs crates/core/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libablock_core-7a527713d89f4123.rmeta: crates/core/src/lib.rs crates/core/src/arena.rs crates/core/src/balance.rs crates/core/src/field.rs crates/core/src/ghost.rs crates/core/src/grid.rs crates/core/src/index.rs crates/core/src/key.rs crates/core/src/layout.rs crates/core/src/ops.rs crates/core/src/sfc.rs crates/core/src/verify.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/arena.rs:
crates/core/src/balance.rs:
crates/core/src/field.rs:
crates/core/src/ghost.rs:
crates/core/src/grid.rs:
crates/core/src/index.rs:
crates/core/src/key.rs:
crates/core/src/layout.rs:
crates/core/src/ops.rs:
crates/core/src/sfc.rs:
crates/core/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

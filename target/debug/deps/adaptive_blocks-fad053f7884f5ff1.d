/root/repo/target/debug/deps/adaptive_blocks-fad053f7884f5ff1.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libadaptive_blocks-fad053f7884f5ff1.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/field_edge_cases-6c23959d6aa9e7a9.d: crates/core/tests/field_edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libfield_edge_cases-6c23959d6aa9e7a9.rmeta: crates/core/tests/field_edge_cases.rs Cargo.toml

crates/core/tests/field_edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/tab_ghost_ratio-0a87ab6acc437966.d: crates/bench/src/bin/tab_ghost_ratio.rs Cargo.toml

/root/repo/target/debug/deps/libtab_ghost_ratio-0a87ab6acc437966.rmeta: crates/bench/src/bin/tab_ghost_ratio.rs Cargo.toml

crates/bench/src/bin/tab_ghost_ratio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/integration-1a20b567b8c87fff.d: tests/integration.rs

/root/repo/target/debug/deps/integration-1a20b567b8c87fff: tests/integration.rs

tests/integration.rs:

/root/repo/target/debug/deps/abl_ghost_depth-4635be480ac63391.d: crates/bench/src/bin/abl_ghost_depth.rs Cargo.toml

/root/repo/target/debug/deps/libabl_ghost_depth-4635be480ac63391.rmeta: crates/bench/src/bin/abl_ghost_depth.rs Cargo.toml

crates/bench/src/bin/abl_ghost_depth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

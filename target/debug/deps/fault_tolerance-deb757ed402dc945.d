/root/repo/target/debug/deps/fault_tolerance-deb757ed402dc945.d: crates/par/tests/fault_tolerance.rs Cargo.toml

/root/repo/target/debug/deps/libfault_tolerance-deb757ed402dc945.rmeta: crates/par/tests/fault_tolerance.rs Cargo.toml

crates/par/tests/fault_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

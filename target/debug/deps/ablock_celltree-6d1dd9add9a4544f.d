/root/repo/target/debug/deps/ablock_celltree-6d1dd9add9a4544f.d: crates/celltree/src/lib.rs crates/celltree/src/fv.rs crates/celltree/src/tree.rs

/root/repo/target/debug/deps/ablock_celltree-6d1dd9add9a4544f: crates/celltree/src/lib.rs crates/celltree/src/fv.rs crates/celltree/src/tree.rs

crates/celltree/src/lib.rs:
crates/celltree/src/fv.rs:
crates/celltree/src/tree.rs:

/root/repo/target/debug/deps/abl_neighbor_lookup-c949141e5f42a7a1.d: crates/bench/benches/abl_neighbor_lookup.rs Cargo.toml

/root/repo/target/debug/deps/libabl_neighbor_lookup-c949141e5f42a7a1.rmeta: crates/bench/benches/abl_neighbor_lookup.rs Cargo.toml

crates/bench/benches/abl_neighbor_lookup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ablock_par-cb007c1a1ca3ad0e.d: crates/par/src/lib.rs crates/par/src/balance.rs crates/par/src/costmodel.rs crates/par/src/dist.rs crates/par/src/fault.rs crates/par/src/machine.rs crates/par/src/pool.rs crates/par/src/recover.rs crates/par/src/shared.rs Cargo.toml

/root/repo/target/debug/deps/libablock_par-cb007c1a1ca3ad0e.rmeta: crates/par/src/lib.rs crates/par/src/balance.rs crates/par/src/costmodel.rs crates/par/src/dist.rs crates/par/src/fault.rs crates/par/src/machine.rs crates/par/src/pool.rs crates/par/src/recover.rs crates/par/src/shared.rs Cargo.toml

crates/par/src/lib.rs:
crates/par/src/balance.rs:
crates/par/src/costmodel.rs:
crates/par/src/dist.rs:
crates/par/src/fault.rs:
crates/par/src/machine.rs:
crates/par/src/pool.rs:
crates/par/src/recover.rs:
crates/par/src/shared.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

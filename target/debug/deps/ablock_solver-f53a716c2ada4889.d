/root/repo/target/debug/deps/ablock_solver-f53a716c2ada4889.d: crates/solver/src/lib.rs crates/solver/src/euler.rs crates/solver/src/flux.rs crates/solver/src/kernel.rs crates/solver/src/mhd.rs crates/solver/src/physics.rs crates/solver/src/poisson.rs crates/solver/src/problems.rs crates/solver/src/recon.rs crates/solver/src/reflux.rs crates/solver/src/stepper.rs Cargo.toml

/root/repo/target/debug/deps/libablock_solver-f53a716c2ada4889.rmeta: crates/solver/src/lib.rs crates/solver/src/euler.rs crates/solver/src/flux.rs crates/solver/src/kernel.rs crates/solver/src/mhd.rs crates/solver/src/physics.rs crates/solver/src/poisson.rs crates/solver/src/problems.rs crates/solver/src/recon.rs crates/solver/src/reflux.rs crates/solver/src/stepper.rs Cargo.toml

crates/solver/src/lib.rs:
crates/solver/src/euler.rs:
crates/solver/src/flux.rs:
crates/solver/src/kernel.rs:
crates/solver/src/mhd.rs:
crates/solver/src/physics.rs:
crates/solver/src/poisson.rs:
crates/solver/src/problems.rs:
crates/solver/src/recon.rs:
crates/solver/src/reflux.rs:
crates/solver/src/stepper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/corner_ghosts-7c5aed7588c84866.d: crates/core/tests/corner_ghosts.rs

/root/repo/target/debug/deps/corner_ghosts-7c5aed7588c84866: crates/core/tests/corner_ghosts.rs

crates/core/tests/corner_ghosts.rs:

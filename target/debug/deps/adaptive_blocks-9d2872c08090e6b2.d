/root/repo/target/debug/deps/adaptive_blocks-9d2872c08090e6b2.d: src/lib.rs

/root/repo/target/debug/deps/libadaptive_blocks-9d2872c08090e6b2.rlib: src/lib.rs

/root/repo/target/debug/deps/libadaptive_blocks-9d2872c08090e6b2.rmeta: src/lib.rs

src/lib.rs:

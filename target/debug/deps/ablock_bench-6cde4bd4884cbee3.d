/root/repo/target/debug/deps/ablock_bench-6cde4bd4884cbee3.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libablock_bench-6cde4bd4884cbee3.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

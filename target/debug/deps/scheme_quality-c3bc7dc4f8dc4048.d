/root/repo/target/debug/deps/scheme_quality-c3bc7dc4f8dc4048.d: crates/solver/tests/scheme_quality.rs Cargo.toml

/root/repo/target/debug/deps/libscheme_quality-c3bc7dc4f8dc4048.rmeta: crates/solver/tests/scheme_quality.rs Cargo.toml

crates/solver/tests/scheme_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/abl_adaptive_efficiency-14df7b5cdfd0031e.d: crates/bench/src/bin/abl_adaptive_efficiency.rs Cargo.toml

/root/repo/target/debug/deps/libabl_adaptive_efficiency-14df7b5cdfd0031e.rmeta: crates/bench/src/bin/abl_adaptive_efficiency.rs Cargo.toml

crates/bench/src/bin/abl_adaptive_efficiency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/abl_multigrid-c5a0555e8609098d.d: crates/bench/src/bin/abl_multigrid.rs Cargo.toml

/root/repo/target/debug/deps/libabl_multigrid-c5a0555e8609098d.rmeta: crates/bench/src/bin/abl_multigrid.rs Cargo.toml

crates/bench/src/bin/abl_multigrid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/field_edge_cases-d8e82b46c537c850.d: crates/core/tests/field_edge_cases.rs

/root/repo/target/debug/deps/field_edge_cases-d8e82b46c537c850: crates/core/tests/field_edge_cases.rs

crates/core/tests/field_edge_cases.rs:

/root/repo/target/debug/deps/dist_amr-79f0b2591b0c1e0b.d: crates/par/tests/dist_amr.rs

/root/repo/target/debug/deps/dist_amr-79f0b2591b0c1e0b: crates/par/tests/dist_amr.rs

crates/par/tests/dist_amr.rs:

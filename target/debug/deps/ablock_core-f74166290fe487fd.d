/root/repo/target/debug/deps/ablock_core-f74166290fe487fd.d: crates/core/src/lib.rs crates/core/src/arena.rs crates/core/src/balance.rs crates/core/src/field.rs crates/core/src/ghost.rs crates/core/src/grid.rs crates/core/src/index.rs crates/core/src/key.rs crates/core/src/layout.rs crates/core/src/ops.rs crates/core/src/sfc.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/libablock_core-f74166290fe487fd.rlib: crates/core/src/lib.rs crates/core/src/arena.rs crates/core/src/balance.rs crates/core/src/field.rs crates/core/src/ghost.rs crates/core/src/grid.rs crates/core/src/index.rs crates/core/src/key.rs crates/core/src/layout.rs crates/core/src/ops.rs crates/core/src/sfc.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/libablock_core-f74166290fe487fd.rmeta: crates/core/src/lib.rs crates/core/src/arena.rs crates/core/src/balance.rs crates/core/src/field.rs crates/core/src/ghost.rs crates/core/src/grid.rs crates/core/src/index.rs crates/core/src/key.rs crates/core/src/layout.rs crates/core/src/ops.rs crates/core/src/sfc.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/arena.rs:
crates/core/src/balance.rs:
crates/core/src/field.rs:
crates/core/src/ghost.rs:
crates/core/src/grid.rs:
crates/core/src/index.rs:
crates/core/src/key.rs:
crates/core/src/layout.rs:
crates/core/src/ops.rs:
crates/core/src/sfc.rs:
crates/core/src/verify.rs:

/root/repo/target/debug/deps/abl_cascade-45aeecffdf6f6f28.d: crates/bench/src/bin/abl_cascade.rs Cargo.toml

/root/repo/target/debug/deps/libabl_cascade-45aeecffdf6f6f28.rmeta: crates/bench/src/bin/abl_cascade.rs Cargo.toml

crates/bench/src/bin/abl_cascade.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

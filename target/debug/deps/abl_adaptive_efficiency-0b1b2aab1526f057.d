/root/repo/target/debug/deps/abl_adaptive_efficiency-0b1b2aab1526f057.d: crates/bench/src/bin/abl_adaptive_efficiency.rs Cargo.toml

/root/repo/target/debug/deps/libabl_adaptive_efficiency-0b1b2aab1526f057.rmeta: crates/bench/src/bin/abl_adaptive_efficiency.rs Cargo.toml

crates/bench/src/bin/abl_adaptive_efficiency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/proptests-2b82d24162af8d27.d: crates/celltree/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-2b82d24162af8d27.rmeta: crates/celltree/tests/proptests.rs Cargo.toml

crates/celltree/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/abl_cascade-e044b0502043d95d.d: crates/bench/src/bin/abl_cascade.rs

/root/repo/target/debug/deps/abl_cascade-e044b0502043d95d: crates/bench/src/bin/abl_cascade.rs

crates/bench/src/bin/abl_cascade.rs:

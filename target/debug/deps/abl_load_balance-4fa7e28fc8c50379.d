/root/repo/target/debug/deps/abl_load_balance-4fa7e28fc8c50379.d: crates/bench/src/bin/abl_load_balance.rs Cargo.toml

/root/repo/target/debug/deps/libabl_load_balance-4fa7e28fc8c50379.rmeta: crates/bench/src/bin/abl_load_balance.rs Cargo.toml

crates/bench/src/bin/abl_load_balance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fault_tolerance-ac035cad55193149.d: crates/par/tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-ac035cad55193149: crates/par/tests/fault_tolerance.rs

crates/par/tests/fault_tolerance.rs:

/root/repo/target/debug/deps/ablock_io-b3b6ed11a5b3509c.d: crates/io/src/lib.rs crates/io/src/checkpoint.rs crates/io/src/image.rs crates/io/src/profile.rs crates/io/src/render.rs crates/io/src/table.rs crates/io/src/vtk.rs

/root/repo/target/debug/deps/libablock_io-b3b6ed11a5b3509c.rlib: crates/io/src/lib.rs crates/io/src/checkpoint.rs crates/io/src/image.rs crates/io/src/profile.rs crates/io/src/render.rs crates/io/src/table.rs crates/io/src/vtk.rs

/root/repo/target/debug/deps/libablock_io-b3b6ed11a5b3509c.rmeta: crates/io/src/lib.rs crates/io/src/checkpoint.rs crates/io/src/image.rs crates/io/src/profile.rs crates/io/src/render.rs crates/io/src/table.rs crates/io/src/vtk.rs

crates/io/src/lib.rs:
crates/io/src/checkpoint.rs:
crates/io/src/image.rs:
crates/io/src/profile.rs:
crates/io/src/render.rs:
crates/io/src/table.rs:
crates/io/src/vtk.rs:

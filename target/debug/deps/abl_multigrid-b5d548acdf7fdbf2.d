/root/repo/target/debug/deps/abl_multigrid-b5d548acdf7fdbf2.d: crates/bench/src/bin/abl_multigrid.rs

/root/repo/target/debug/deps/abl_multigrid-b5d548acdf7fdbf2: crates/bench/src/bin/abl_multigrid.rs

crates/bench/src/bin/abl_multigrid.rs:

/root/repo/target/debug/deps/fig2_fig4_structure-46702624f573f539.d: crates/bench/src/bin/fig2_fig4_structure.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_fig4_structure-46702624f573f539.rmeta: crates/bench/src/bin/fig2_fig4_structure.rs Cargo.toml

crates/bench/src/bin/fig2_fig4_structure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

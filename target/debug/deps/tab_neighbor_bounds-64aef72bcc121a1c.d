/root/repo/target/debug/deps/tab_neighbor_bounds-64aef72bcc121a1c.d: crates/bench/src/bin/tab_neighbor_bounds.rs

/root/repo/target/debug/deps/tab_neighbor_bounds-64aef72bcc121a1c: crates/bench/src/bin/tab_neighbor_bounds.rs

crates/bench/src/bin/tab_neighbor_bounds.rs:

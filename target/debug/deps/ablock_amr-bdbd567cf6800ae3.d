/root/repo/target/debug/deps/ablock_amr-bdbd567cf6800ae3.d: crates/amr/src/lib.rs crates/amr/src/criteria.rs crates/amr/src/driver.rs

/root/repo/target/debug/deps/ablock_amr-bdbd567cf6800ae3: crates/amr/src/lib.rs crates/amr/src/criteria.rs crates/amr/src/driver.rs

crates/amr/src/lib.rs:
crates/amr/src/criteria.rs:
crates/amr/src/driver.rs:

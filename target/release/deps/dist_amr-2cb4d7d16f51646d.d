/root/repo/target/release/deps/dist_amr-2cb4d7d16f51646d.d: crates/par/tests/dist_amr.rs

/root/repo/target/release/deps/dist_amr-2cb4d7d16f51646d: crates/par/tests/dist_amr.rs

crates/par/tests/dist_amr.rs:

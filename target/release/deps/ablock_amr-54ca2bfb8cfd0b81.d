/root/repo/target/release/deps/ablock_amr-54ca2bfb8cfd0b81.d: crates/amr/src/lib.rs crates/amr/src/criteria.rs crates/amr/src/driver.rs

/root/repo/target/release/deps/ablock_amr-54ca2bfb8cfd0b81: crates/amr/src/lib.rs crates/amr/src/criteria.rs crates/amr/src/driver.rs

crates/amr/src/lib.rs:
crates/amr/src/criteria.rs:
crates/amr/src/driver.rs:

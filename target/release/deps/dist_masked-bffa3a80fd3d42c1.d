/root/repo/target/release/deps/dist_masked-bffa3a80fd3d42c1.d: crates/par/tests/dist_masked.rs

/root/repo/target/release/deps/dist_masked-bffa3a80fd3d42c1: crates/par/tests/dist_masked.rs

crates/par/tests/dist_masked.rs:

/root/repo/target/release/deps/fig7_strong_scaling-79605dfdb2ce1d04.d: crates/bench/src/bin/fig7_strong_scaling.rs

/root/repo/target/release/deps/fig7_strong_scaling-79605dfdb2ce1d04: crates/bench/src/bin/fig7_strong_scaling.rs

crates/bench/src/bin/fig7_strong_scaling.rs:

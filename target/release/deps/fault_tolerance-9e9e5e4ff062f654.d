/root/repo/target/release/deps/fault_tolerance-9e9e5e4ff062f654.d: crates/par/tests/fault_tolerance.rs

/root/repo/target/release/deps/fault_tolerance-9e9e5e4ff062f654: crates/par/tests/fault_tolerance.rs

crates/par/tests/fault_tolerance.rs:

/root/repo/target/release/deps/fig6_weak_scaling-f9b9c7202724dd17.d: crates/bench/src/bin/fig6_weak_scaling.rs

/root/repo/target/release/deps/fig6_weak_scaling-f9b9c7202724dd17: crates/bench/src/bin/fig6_weak_scaling.rs

crates/bench/src/bin/fig6_weak_scaling.rs:

/root/repo/target/release/deps/abl_cascade-f0b010beb90aa629.d: crates/bench/src/bin/abl_cascade.rs

/root/repo/target/release/deps/abl_cascade-f0b010beb90aa629: crates/bench/src/bin/abl_cascade.rs

crates/bench/src/bin/abl_cascade.rs:

/root/repo/target/release/deps/ablock_par-2cfe9fe09a0bb6fc.d: crates/par/src/lib.rs crates/par/src/balance.rs crates/par/src/costmodel.rs crates/par/src/dist.rs crates/par/src/fault.rs crates/par/src/machine.rs crates/par/src/pool.rs crates/par/src/recover.rs crates/par/src/shared.rs

/root/repo/target/release/deps/ablock_par-2cfe9fe09a0bb6fc: crates/par/src/lib.rs crates/par/src/balance.rs crates/par/src/costmodel.rs crates/par/src/dist.rs crates/par/src/fault.rs crates/par/src/machine.rs crates/par/src/pool.rs crates/par/src/recover.rs crates/par/src/shared.rs

crates/par/src/lib.rs:
crates/par/src/balance.rs:
crates/par/src/costmodel.rs:
crates/par/src/dist.rs:
crates/par/src/fault.rs:
crates/par/src/machine.rs:
crates/par/src/pool.rs:
crates/par/src/recover.rs:
crates/par/src/shared.rs:

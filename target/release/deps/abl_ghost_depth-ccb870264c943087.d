/root/repo/target/release/deps/abl_ghost_depth-ccb870264c943087.d: crates/bench/src/bin/abl_ghost_depth.rs

/root/repo/target/release/deps/abl_ghost_depth-ccb870264c943087: crates/bench/src/bin/abl_ghost_depth.rs

crates/bench/src/bin/abl_ghost_depth.rs:

/root/repo/target/release/deps/fig3_structure-d0678cda95908eb7.d: crates/bench/src/bin/fig3_structure.rs

/root/repo/target/release/deps/fig3_structure-d0678cda95908eb7: crates/bench/src/bin/fig3_structure.rs

crates/bench/src/bin/fig3_structure.rs:

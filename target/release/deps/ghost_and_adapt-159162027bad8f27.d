/root/repo/target/release/deps/ghost_and_adapt-159162027bad8f27.d: crates/bench/benches/ghost_and_adapt.rs

/root/repo/target/release/deps/ghost_and_adapt-159162027bad8f27: crates/bench/benches/ghost_and_adapt.rs

crates/bench/benches/ghost_and_adapt.rs:

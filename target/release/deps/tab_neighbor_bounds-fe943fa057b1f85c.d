/root/repo/target/release/deps/tab_neighbor_bounds-fe943fa057b1f85c.d: crates/bench/src/bin/tab_neighbor_bounds.rs

/root/repo/target/release/deps/tab_neighbor_bounds-fe943fa057b1f85c: crates/bench/src/bin/tab_neighbor_bounds.rs

crates/bench/src/bin/tab_neighbor_bounds.rs:

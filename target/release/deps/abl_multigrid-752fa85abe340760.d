/root/repo/target/release/deps/abl_multigrid-752fa85abe340760.d: crates/bench/src/bin/abl_multigrid.rs

/root/repo/target/release/deps/abl_multigrid-752fa85abe340760: crates/bench/src/bin/abl_multigrid.rs

crates/bench/src/bin/abl_multigrid.rs:

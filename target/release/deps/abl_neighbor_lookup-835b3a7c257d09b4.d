/root/repo/target/release/deps/abl_neighbor_lookup-835b3a7c257d09b4.d: crates/bench/benches/abl_neighbor_lookup.rs

/root/repo/target/release/deps/abl_neighbor_lookup-835b3a7c257d09b4: crates/bench/benches/abl_neighbor_lookup.rs

crates/bench/benches/abl_neighbor_lookup.rs:

/root/repo/target/release/deps/scheme_quality-2d423f17669a3449.d: crates/solver/tests/scheme_quality.rs

/root/repo/target/release/deps/scheme_quality-2d423f17669a3449: crates/solver/tests/scheme_quality.rs

crates/solver/tests/scheme_quality.rs:

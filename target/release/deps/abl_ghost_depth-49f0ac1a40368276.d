/root/repo/target/release/deps/abl_ghost_depth-49f0ac1a40368276.d: crates/bench/src/bin/abl_ghost_depth.rs

/root/repo/target/release/deps/abl_ghost_depth-49f0ac1a40368276: crates/bench/src/bin/abl_ghost_depth.rs

crates/bench/src/bin/abl_ghost_depth.rs:

/root/repo/target/release/deps/fig6_weak_scaling-babd7e6cb3657dad.d: crates/bench/src/bin/fig6_weak_scaling.rs

/root/repo/target/release/deps/fig6_weak_scaling-babd7e6cb3657dad: crates/bench/src/bin/fig6_weak_scaling.rs

crates/bench/src/bin/fig6_weak_scaling.rs:

/root/repo/target/release/deps/abl_load_balance-2ccf8cd860cab657.d: crates/bench/src/bin/abl_load_balance.rs

/root/repo/target/release/deps/abl_load_balance-2ccf8cd860cab657: crates/bench/src/bin/abl_load_balance.rs

crates/bench/src/bin/abl_load_balance.rs:

/root/repo/target/release/deps/k_level_jumps-db32382972645b2e.d: crates/core/tests/k_level_jumps.rs

/root/repo/target/release/deps/k_level_jumps-db32382972645b2e: crates/core/tests/k_level_jumps.rs

crates/core/tests/k_level_jumps.rs:

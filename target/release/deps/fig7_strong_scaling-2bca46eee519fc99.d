/root/repo/target/release/deps/fig7_strong_scaling-2bca46eee519fc99.d: crates/bench/src/bin/fig7_strong_scaling.rs

/root/repo/target/release/deps/fig7_strong_scaling-2bca46eee519fc99: crates/bench/src/bin/fig7_strong_scaling.rs

crates/bench/src/bin/fig7_strong_scaling.rs:

/root/repo/target/release/deps/adaptive_blocks-0caad55f90b1dc21.d: src/lib.rs

/root/repo/target/release/deps/libadaptive_blocks-0caad55f90b1dc21.rlib: src/lib.rs

/root/repo/target/release/deps/libadaptive_blocks-0caad55f90b1dc21.rmeta: src/lib.rs

src/lib.rs:

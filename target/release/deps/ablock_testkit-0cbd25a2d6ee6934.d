/root/repo/target/release/deps/ablock_testkit-0cbd25a2d6ee6934.d: crates/testkit/src/lib.rs

/root/repo/target/release/deps/ablock_testkit-0cbd25a2d6ee6934: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:

/root/repo/target/release/deps/abl_cascade-c7cbd4c13ff1cb6f.d: crates/bench/src/bin/abl_cascade.rs

/root/repo/target/release/deps/abl_cascade-c7cbd4c13ff1cb6f: crates/bench/src/bin/abl_cascade.rs

crates/bench/src/bin/abl_cascade.rs:

/root/repo/target/release/deps/ablock_bench-99a6f1415d22770b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libablock_bench-99a6f1415d22770b.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libablock_bench-99a6f1415d22770b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

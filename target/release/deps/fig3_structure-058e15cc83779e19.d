/root/repo/target/release/deps/fig3_structure-058e15cc83779e19.d: crates/bench/src/bin/fig3_structure.rs

/root/repo/target/release/deps/fig3_structure-058e15cc83779e19: crates/bench/src/bin/fig3_structure.rs

crates/bench/src/bin/fig3_structure.rs:

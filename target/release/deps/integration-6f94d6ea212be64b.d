/root/repo/target/release/deps/integration-6f94d6ea212be64b.d: tests/integration.rs

/root/repo/target/release/deps/integration-6f94d6ea212be64b: tests/integration.rs

tests/integration.rs:

/root/repo/target/release/deps/fig5_table-ac1c268b146ec797.d: crates/bench/src/bin/fig5_table.rs

/root/repo/target/release/deps/fig5_table-ac1c268b146ec797: crates/bench/src/bin/fig5_table.rs

crates/bench/src/bin/fig5_table.rs:

/root/repo/target/release/deps/ablock_par-c77df07bc7c8100c.d: crates/par/src/lib.rs crates/par/src/balance.rs crates/par/src/costmodel.rs crates/par/src/dist.rs crates/par/src/fault.rs crates/par/src/machine.rs crates/par/src/pool.rs crates/par/src/recover.rs crates/par/src/shared.rs

/root/repo/target/release/deps/libablock_par-c77df07bc7c8100c.rlib: crates/par/src/lib.rs crates/par/src/balance.rs crates/par/src/costmodel.rs crates/par/src/dist.rs crates/par/src/fault.rs crates/par/src/machine.rs crates/par/src/pool.rs crates/par/src/recover.rs crates/par/src/shared.rs

/root/repo/target/release/deps/libablock_par-c77df07bc7c8100c.rmeta: crates/par/src/lib.rs crates/par/src/balance.rs crates/par/src/costmodel.rs crates/par/src/dist.rs crates/par/src/fault.rs crates/par/src/machine.rs crates/par/src/pool.rs crates/par/src/recover.rs crates/par/src/shared.rs

crates/par/src/lib.rs:
crates/par/src/balance.rs:
crates/par/src/costmodel.rs:
crates/par/src/dist.rs:
crates/par/src/fault.rs:
crates/par/src/machine.rs:
crates/par/src/pool.rs:
crates/par/src/recover.rs:
crates/par/src/shared.rs:

/root/repo/target/release/deps/fig2_fig4_structure-5a7866831478fd7a.d: crates/bench/src/bin/fig2_fig4_structure.rs

/root/repo/target/release/deps/fig2_fig4_structure-5a7866831478fd7a: crates/bench/src/bin/fig2_fig4_structure.rs

crates/bench/src/bin/fig2_fig4_structure.rs:

/root/repo/target/release/deps/abl_multigrid-e85aa253d7d94af8.d: crates/bench/src/bin/abl_multigrid.rs

/root/repo/target/release/deps/abl_multigrid-e85aa253d7d94af8: crates/bench/src/bin/abl_multigrid.rs

crates/bench/src/bin/abl_multigrid.rs:

/root/repo/target/release/deps/ablock_bench-67f1beea912bc40b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/ablock_bench-67f1beea912bc40b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

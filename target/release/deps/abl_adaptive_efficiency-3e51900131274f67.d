/root/repo/target/release/deps/abl_adaptive_efficiency-3e51900131274f67.d: crates/bench/src/bin/abl_adaptive_efficiency.rs

/root/repo/target/release/deps/abl_adaptive_efficiency-3e51900131274f67: crates/bench/src/bin/abl_adaptive_efficiency.rs

crates/bench/src/bin/abl_adaptive_efficiency.rs:

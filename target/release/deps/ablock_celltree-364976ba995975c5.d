/root/repo/target/release/deps/ablock_celltree-364976ba995975c5.d: crates/celltree/src/lib.rs crates/celltree/src/fv.rs crates/celltree/src/tree.rs

/root/repo/target/release/deps/ablock_celltree-364976ba995975c5: crates/celltree/src/lib.rs crates/celltree/src/fv.rs crates/celltree/src/tree.rs

crates/celltree/src/lib.rs:
crates/celltree/src/fv.rs:
crates/celltree/src/tree.rs:

/root/repo/target/release/deps/masked_roots-c09cd3e10873b5ad.d: crates/core/tests/masked_roots.rs

/root/repo/target/release/deps/masked_roots-c09cd3e10873b5ad: crates/core/tests/masked_roots.rs

crates/core/tests/masked_roots.rs:

/root/repo/target/release/deps/tab_ghost_ratio-cfe9c4c3030127d9.d: crates/bench/src/bin/tab_ghost_ratio.rs

/root/repo/target/release/deps/tab_ghost_ratio-cfe9c4c3030127d9: crates/bench/src/bin/tab_ghost_ratio.rs

crates/bench/src/bin/tab_ghost_ratio.rs:

/root/repo/target/release/deps/corner_ghosts-6403d14b8771c690.d: crates/core/tests/corner_ghosts.rs

/root/repo/target/release/deps/corner_ghosts-6403d14b8771c690: crates/core/tests/corner_ghosts.rs

crates/core/tests/corner_ghosts.rs:

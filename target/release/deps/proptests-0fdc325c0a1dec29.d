/root/repo/target/release/deps/proptests-0fdc325c0a1dec29.d: crates/par/tests/proptests.rs

/root/repo/target/release/deps/proptests-0fdc325c0a1dec29: crates/par/tests/proptests.rs

crates/par/tests/proptests.rs:

/root/repo/target/release/deps/proptests-541f5c8aecc32f25.d: crates/celltree/tests/proptests.rs

/root/repo/target/release/deps/proptests-541f5c8aecc32f25: crates/celltree/tests/proptests.rs

crates/celltree/tests/proptests.rs:

/root/repo/target/release/deps/ablock_celltree-742d5715188e137e.d: crates/celltree/src/lib.rs crates/celltree/src/fv.rs crates/celltree/src/tree.rs

/root/repo/target/release/deps/libablock_celltree-742d5715188e137e.rlib: crates/celltree/src/lib.rs crates/celltree/src/fv.rs crates/celltree/src/tree.rs

/root/repo/target/release/deps/libablock_celltree-742d5715188e137e.rmeta: crates/celltree/src/lib.rs crates/celltree/src/fv.rs crates/celltree/src/tree.rs

crates/celltree/src/lib.rs:
crates/celltree/src/fv.rs:
crates/celltree/src/tree.rs:

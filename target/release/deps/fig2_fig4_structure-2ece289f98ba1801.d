/root/repo/target/release/deps/fig2_fig4_structure-2ece289f98ba1801.d: crates/bench/src/bin/fig2_fig4_structure.rs

/root/repo/target/release/deps/fig2_fig4_structure-2ece289f98ba1801: crates/bench/src/bin/fig2_fig4_structure.rs

crates/bench/src/bin/fig2_fig4_structure.rs:

/root/repo/target/release/deps/abl_adaptive_efficiency-2318260105263a1d.d: crates/bench/src/bin/abl_adaptive_efficiency.rs

/root/repo/target/release/deps/abl_adaptive_efficiency-2318260105263a1d: crates/bench/src/bin/abl_adaptive_efficiency.rs

crates/bench/src/bin/abl_adaptive_efficiency.rs:

/root/repo/target/release/deps/checkpoint_roundtrip-b1388bc4541780fb.d: crates/io/tests/checkpoint_roundtrip.rs

/root/repo/target/release/deps/checkpoint_roundtrip-b1388bc4541780fb: crates/io/tests/checkpoint_roundtrip.rs

crates/io/tests/checkpoint_roundtrip.rs:

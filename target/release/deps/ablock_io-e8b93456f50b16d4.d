/root/repo/target/release/deps/ablock_io-e8b93456f50b16d4.d: crates/io/src/lib.rs crates/io/src/checkpoint.rs crates/io/src/image.rs crates/io/src/profile.rs crates/io/src/render.rs crates/io/src/table.rs crates/io/src/vtk.rs

/root/repo/target/release/deps/ablock_io-e8b93456f50b16d4: crates/io/src/lib.rs crates/io/src/checkpoint.rs crates/io/src/image.rs crates/io/src/profile.rs crates/io/src/render.rs crates/io/src/table.rs crates/io/src/vtk.rs

crates/io/src/lib.rs:
crates/io/src/checkpoint.rs:
crates/io/src/image.rs:
crates/io/src/profile.rs:
crates/io/src/render.rs:
crates/io/src/table.rs:
crates/io/src/vtk.rs:

/root/repo/target/release/deps/field_edge_cases-7a273c996c9b2703.d: crates/core/tests/field_edge_cases.rs

/root/repo/target/release/deps/field_edge_cases-7a273c996c9b2703: crates/core/tests/field_edge_cases.rs

crates/core/tests/field_edge_cases.rs:

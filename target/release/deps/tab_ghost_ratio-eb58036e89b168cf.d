/root/repo/target/release/deps/tab_ghost_ratio-eb58036e89b168cf.d: crates/bench/src/bin/tab_ghost_ratio.rs

/root/repo/target/release/deps/tab_ghost_ratio-eb58036e89b168cf: crates/bench/src/bin/tab_ghost_ratio.rs

crates/bench/src/bin/tab_ghost_ratio.rs:

/root/repo/target/release/deps/ablock_testkit-9c6cb0644b2f4aaf.d: crates/testkit/src/lib.rs

/root/repo/target/release/deps/libablock_testkit-9c6cb0644b2f4aaf.rlib: crates/testkit/src/lib.rs

/root/repo/target/release/deps/libablock_testkit-9c6cb0644b2f4aaf.rmeta: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:

/root/repo/target/release/deps/fig5_table-ca95f55fdcab9234.d: crates/bench/src/bin/fig5_table.rs

/root/repo/target/release/deps/fig5_table-ca95f55fdcab9234: crates/bench/src/bin/fig5_table.rs

crates/bench/src/bin/fig5_table.rs:

/root/repo/target/release/deps/validation-eb20db89c964a9db.d: crates/solver/tests/validation.rs

/root/repo/target/release/deps/validation-eb20db89c964a9db: crates/solver/tests/validation.rs

crates/solver/tests/validation.rs:

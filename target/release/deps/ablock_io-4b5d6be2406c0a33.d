/root/repo/target/release/deps/ablock_io-4b5d6be2406c0a33.d: crates/io/src/lib.rs crates/io/src/checkpoint.rs crates/io/src/image.rs crates/io/src/profile.rs crates/io/src/render.rs crates/io/src/table.rs crates/io/src/vtk.rs

/root/repo/target/release/deps/libablock_io-4b5d6be2406c0a33.rlib: crates/io/src/lib.rs crates/io/src/checkpoint.rs crates/io/src/image.rs crates/io/src/profile.rs crates/io/src/render.rs crates/io/src/table.rs crates/io/src/vtk.rs

/root/repo/target/release/deps/libablock_io-4b5d6be2406c0a33.rmeta: crates/io/src/lib.rs crates/io/src/checkpoint.rs crates/io/src/image.rs crates/io/src/profile.rs crates/io/src/render.rs crates/io/src/table.rs crates/io/src/vtk.rs

crates/io/src/lib.rs:
crates/io/src/checkpoint.rs:
crates/io/src/image.rs:
crates/io/src/profile.rs:
crates/io/src/render.rs:
crates/io/src/table.rs:
crates/io/src/vtk.rs:

/root/repo/target/release/deps/adaptive_blocks-1c9b6d4ba209f2af.d: src/lib.rs

/root/repo/target/release/deps/adaptive_blocks-1c9b6d4ba209f2af: src/lib.rs

src/lib.rs:

/root/repo/target/release/deps/proptests-d6607280e2dbd10f.d: crates/core/tests/proptests.rs

/root/repo/target/release/deps/proptests-d6607280e2dbd10f: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:

/root/repo/target/release/deps/ablock_core-6fa04cae078655bc.d: crates/core/src/lib.rs crates/core/src/arena.rs crates/core/src/balance.rs crates/core/src/field.rs crates/core/src/ghost.rs crates/core/src/grid.rs crates/core/src/index.rs crates/core/src/key.rs crates/core/src/layout.rs crates/core/src/ops.rs crates/core/src/sfc.rs crates/core/src/verify.rs

/root/repo/target/release/deps/ablock_core-6fa04cae078655bc: crates/core/src/lib.rs crates/core/src/arena.rs crates/core/src/balance.rs crates/core/src/field.rs crates/core/src/ghost.rs crates/core/src/grid.rs crates/core/src/index.rs crates/core/src/key.rs crates/core/src/layout.rs crates/core/src/ops.rs crates/core/src/sfc.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/arena.rs:
crates/core/src/balance.rs:
crates/core/src/field.rs:
crates/core/src/ghost.rs:
crates/core/src/grid.rs:
crates/core/src/index.rs:
crates/core/src/key.rs:
crates/core/src/layout.rs:
crates/core/src/ops.rs:
crates/core/src/sfc.rs:
crates/core/src/verify.rs:

/root/repo/target/release/deps/fig5_time_per_cell-621224a1ff9bad8d.d: crates/bench/benches/fig5_time_per_cell.rs

/root/repo/target/release/deps/fig5_time_per_cell-621224a1ff9bad8d: crates/bench/benches/fig5_time_per_cell.rs

crates/bench/benches/fig5_time_per_cell.rs:

/root/repo/target/release/deps/abl_load_balance-baf84b5a5aed37bd.d: crates/bench/src/bin/abl_load_balance.rs

/root/repo/target/release/deps/abl_load_balance-baf84b5a5aed37bd: crates/bench/src/bin/abl_load_balance.rs

crates/bench/src/bin/abl_load_balance.rs:

/root/repo/target/release/deps/tab_neighbor_bounds-e2e53d5208ce0b13.d: crates/bench/src/bin/tab_neighbor_bounds.rs

/root/repo/target/release/deps/tab_neighbor_bounds-e2e53d5208ce0b13: crates/bench/src/bin/tab_neighbor_bounds.rs

crates/bench/src/bin/tab_neighbor_bounds.rs:

/root/repo/target/release/deps/ablock_amr-f968f9cedaa6c4d2.d: crates/amr/src/lib.rs crates/amr/src/criteria.rs crates/amr/src/driver.rs

/root/repo/target/release/deps/libablock_amr-f968f9cedaa6c4d2.rlib: crates/amr/src/lib.rs crates/amr/src/criteria.rs crates/amr/src/driver.rs

/root/repo/target/release/deps/libablock_amr-f968f9cedaa6c4d2.rmeta: crates/amr/src/lib.rs crates/amr/src/criteria.rs crates/amr/src/driver.rs

crates/amr/src/lib.rs:
crates/amr/src/criteria.rs:
crates/amr/src/driver.rs:

/root/repo/target/release/examples/comet_tracking-7475b8ae60c2e327.d: examples/comet_tracking.rs

/root/repo/target/release/examples/comet_tracking-7475b8ae60c2e327: examples/comet_tracking.rs

examples/comet_tracking.rs:

/root/repo/target/release/examples/quickstart-c565f3e4c41de860.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-c565f3e4c41de860: examples/quickstart.rs

examples/quickstart.rs:

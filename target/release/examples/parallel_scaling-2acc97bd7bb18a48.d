/root/repo/target/release/examples/parallel_scaling-2acc97bd7bb18a48.d: examples/parallel_scaling.rs

/root/repo/target/release/examples/parallel_scaling-2acc97bd7bb18a48: examples/parallel_scaling.rs

examples/parallel_scaling.rs:

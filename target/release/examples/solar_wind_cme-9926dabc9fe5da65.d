/root/repo/target/release/examples/solar_wind_cme-9926dabc9fe5da65.d: examples/solar_wind_cme.rs

/root/repo/target/release/examples/solar_wind_cme-9926dabc9fe5da65: examples/solar_wind_cme.rs

examples/solar_wind_cme.rs:

/root/repo/target/release/examples/shock_tube-9b23986ae105658a.d: examples/shock_tube.rs

/root/repo/target/release/examples/shock_tube-9b23986ae105658a: examples/shock_tube.rs

examples/shock_tube.rs:

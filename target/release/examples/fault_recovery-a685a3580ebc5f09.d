/root/repo/target/release/examples/fault_recovery-a685a3580ebc5f09.d: examples/fault_recovery.rs

/root/repo/target/release/examples/fault_recovery-a685a3580ebc5f09: examples/fault_recovery.rs

examples/fault_recovery.rs:

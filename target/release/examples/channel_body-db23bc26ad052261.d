/root/repo/target/release/examples/channel_body-db23bc26ad052261.d: examples/channel_body.rs

/root/repo/target/release/examples/channel_body-db23bc26ad052261: examples/channel_body.rs

examples/channel_body.rs:

/root/repo/target/release/examples/dbg_ft-9ba2a42d5af7625f.d: examples/dbg_ft.rs

/root/repo/target/release/examples/dbg_ft-9ba2a42d5af7625f: examples/dbg_ft.rs

examples/dbg_ft.rs:

/root/repo/target/release/examples/orszag_tang-6b04ac21009797c6.d: examples/orszag_tang.rs

/root/repo/target/release/examples/orszag_tang-6b04ac21009797c6: examples/orszag_tang.rs

examples/orszag_tang.rs:

/root/repo/target/release/examples/sedov_blast_amr-1a588c8d58c6208f.d: examples/sedov_blast_amr.rs

/root/repo/target/release/examples/sedov_blast_amr-1a588c8d58c6208f: examples/sedov_blast_amr.rs

examples/sedov_blast_amr.rs:

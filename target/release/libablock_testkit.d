/root/repo/target/release/libablock_testkit.rlib: /root/repo/crates/testkit/src/lib.rs

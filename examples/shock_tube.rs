//! Sod's shock tube in your terminal: first-order vs MUSCL on blocks.
//!
//! ```text
//! cargo run --release --example shock_tube
//! ```
//!
//! Runs the canonical Riemann problem on a 16-block 1-D grid twice (one
//! ghost layer + first-order operator, then two ghost layers + MUSCL —
//! the paper's ghost-depth ↔ accuracy pairing), prints density
//! sparklines, and writes CSV profiles for plotting.

use adaptive_blocks::io::{line_profile, profile_csv, sparkline};
use adaptive_blocks::prelude::*;

fn run(scheme: Scheme, nghost: i64) -> BlockGrid<1> {
    let e = Euler::<1>::new(1.4);
    let mut g = BlockGrid::<1>::new(
        RootLayout::unit([16], Boundary::Outflow),
        GridParams::new([16], nghost, 3, 0),
    );
    problems::sod(&mut g, &e, 0.5);
    let mut st = Stepper::new(SolverConfig::new(e, scheme).with_cfl(0.4));
    st.run_until(&mut g, 0.0, 0.2, None);
    g
}

fn main() {
    println!("Sod shock tube, t = 0.2, 256 cells in 16 blocks\n");
    let fo = run(Scheme::first_order(), 1);
    let muscl = run(Scheme::muscl_rusanov(), 2);

    let pf = line_profile(&fo, [0.001], [0.999], 128);
    let pm = line_profile(&muscl, [0.001], [0.999], 128);
    println!("density (left rarefaction | contact | shock):");
    println!("  1st order, ng=1: {}", sparkline(&pf, 0, 96));
    println!("  MUSCL,     ng=2: {}", sparkline(&pm, 0, 96));
    let vf = |p: &[adaptive_blocks::io::ProfilePoint], lo: f64, hi: f64| {
        p.iter()
            .filter(|q| q.x[0] > lo && q.x[0] < hi)
            .map(|q| q.values[0])
            .sum::<f64>()
            / p.iter().filter(|q| q.x[0] > lo && q.x[0] < hi).count().max(1) as f64
    };
    println!("\npost-shock plateau density (exact 0.2656):");
    println!("  1st order: {:.4}", vf(&pf, 0.72, 0.82));
    println!("  MUSCL:     {:.4}", vf(&pm, 0.72, 0.82));
    println!("star-region density left of the contact (exact 0.4263):");
    println!("  1st order: {:.4}", vf(&pf, 0.55, 0.66));
    println!("  MUSCL:     {:.4}", vf(&pm, 0.55, 0.66));

    let out = std::env::temp_dir();
    std::fs::write(out.join("sod_first_order.csv"), profile_csv(&pf, &["rho", "mx", "E"]))
        .unwrap();
    std::fs::write(out.join("sod_muscl.csv"), profile_csv(&pm, &["rho", "mx", "E"]))
        .unwrap();
    println!("\nCSV profiles: sod_first_order.csv, sod_muscl.csv in {}", out.display());
}

//! Adaptive blast wave: the block structure chasing a shock front.
//!
//! ```text
//! cargo run --release --example sedov_blast_amr
//! ```
//!
//! A Sedov-like point explosion on a 2-D Euler domain. The gradient
//! criterion keeps the finest blocks glued to the expanding shock while
//! the interior and far field coarsen — the cell-count savings the
//! paper's introduction promises over a fixed uniform mesh. Writes PGM
//! snapshots and a VTK file you can open in ParaView.

use adaptive_blocks::amr::{AmrConfig, AmrSimulation, GradientCriterion};
use adaptive_blocks::io::{sample_2d, svg_grid_2d, to_pgm, vtk_uniform_2d};
use adaptive_blocks::prelude::*;
use adaptive_blocks::solver::stepper::total_conserved;

fn main() {
    let e = Euler::<2>::new(1.4);
    let grid = BlockGrid::new(
        RootLayout::unit([2, 2], Boundary::Outflow),
        GridParams::new([8, 8], 2, 4, 4),
    );
    // monitor total energy: the initial blast is a pressure disc in a
    // uniform-density gas
    let criterion = GradientCriterion::new(3, 0.08, 0.03);
    let solver = SolverConfig::new(e.clone(), Scheme::muscl_rusanov())
        .with_cfl(0.35)
        .with_refluxing(true);
    let mut sim = AmrSimulation::new(
        grid,
        solver,
        criterion,
        AmrConfig { adapt_every: 4, max_steps: 50_000 },
    );

    let ic = |g: &mut BlockGrid<2>| {
        problems::sedov_blast(g, &e, [0.5, 0.5], 0.08, 50.0)
    };
    sim.initial_adapt_with(5, None, ic);
    println!(
        "t = 0      : {:4} blocks ({:6} cells), finest level {}, compression {:.3}",
        sim.grid.num_blocks(),
        sim.cells(),
        sim.grid.max_level_present(),
        sim.compression()
    );
    let mass0 = total_conserved(&sim.grid, 0);
    let energy0 = total_conserved(&sim.grid, 3);

    let out = std::env::temp_dir();
    for (i, t_end) in [0.01, 0.03, 0.06, 0.1].iter().enumerate() {
        sim.run_until(*t_end, None);
        println!(
            "t = {:<6} : {:4} blocks ({:6} cells), finest level {}, compression {:.3}",
            t_end,
            sim.grid.num_blocks(),
            sim.cells(),
            sim.grid.max_level_present(),
            sim.compression()
        );
        let img = sample_2d(&sim.grid, 0, 256, 256);
        let path = out.join(format!("sedov_rho_{i}.pgm"));
        std::fs::write(&path, to_pgm(&img, 256, 256)).expect("write pgm");
    }

    let mass1 = total_conserved(&sim.grid, 0);
    let energy1 = total_conserved(&sim.grid, 3);
    println!("\nconservation check (closed box until the front exits):");
    println!("  mass   {mass0:.6} -> {mass1:.6}  (drift {:.2e})", (mass1 - mass0).abs());
    println!("  energy {energy0:.6} -> {energy1:.6}  (drift {:.2e})", (energy1 - energy0).abs());
    println!("\nrun stats: {} steps, {} adapts, {} blocks refined, {} groups coarsened",
        sim.stats.steps, sim.stats.adapts, sim.stats.refined, sim.stats.coarsened);
    println!(
        "time split: {:.2}s solve, {:.3}s adapt (the paper's amortization argument)",
        sim.stats.solve_seconds, sim.stats.adapt_seconds
    );

    std::fs::write(out.join("sedov_rho.vtk"), vtk_uniform_2d(&sim.grid, 0, "rho", 256))
        .expect("write vtk");
    std::fs::write(out.join("sedov_blocks.svg"), svg_grid_2d(&sim.grid, 480.0))
        .expect("write svg");
    println!("\nartifacts in {}: sedov_rho_*.pgm, sedov_rho.vtk, sedov_blocks.svg", out.display());
    adaptive_blocks::core::verify::check_grid(&sim.grid).expect("invariants");
}

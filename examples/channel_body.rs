//! Supersonic channel flow around a solid body — the masked-root-layout
//! generalization at work.
//!
//! ```text
//! cargo run --release --example channel_body
//! ```
//!
//! The paper's *Generalizations* section: "the initial block
//! configuration need not be Cartesian". Here a 8×4 root lattice has a
//! 2×1 bite taken out of the channel floor; the missing roots behave as
//! a reflecting solid body. Mach-2 inflow enters from the left (custom
//! boundary), a bow shock forms off the obstacle, and the gradient
//! criterion keeps the fine blocks on the shock.

use adaptive_blocks::amr::{AmrConfig, AmrSimulation, GradientCriterion};
use adaptive_blocks::io::{sample_2d, svg_grid_2d, to_ppm};
use adaptive_blocks::prelude::*;

const INFLOW_TAG: u16 = 3;

fn main() {
    let e = Euler::<2>::new(1.4);
    // channel [0,2]x[0,1]; obstacle occupying roots (3..5, 0)
    let layout = RootLayout::new(
        [8, 4],
        [0.0, 0.0],
        [2.0, 1.0],
        [Boundary::Outflow; 6],
    )
    .with_boundary(Face::new(0, false), Boundary::Custom(INFLOW_TAG))
    .with_axis_boundary(1, Boundary::Reflect)
    .with_mask(|c| !((3..5).contains(&c[0]) && c[1] == 0))
    .with_hole_boundary(Boundary::Reflect);

    let grid = BlockGrid::new(layout, GridParams::new([8, 8], 2, 4, 2));
    let mut sim = AmrSimulation::new(
        grid,
        SolverConfig::new(e.clone(), Scheme::muscl_rusanov()).with_cfl(0.3),
        GradientCriterion::new(0, 0.12, 0.05),
        AmrConfig { adapt_every: 4, max_steps: 100_000 },
    );

    // Mach-2 flow everywhere initially (impulsive start)
    let mach = 2.0;
    let a = (1.4f64).sqrt(); // sound speed at rho = p = 1
    let vin = mach * a;
    problems::set_initial(&mut sim.grid, &e, |_, w| {
        w[0] = 1.0;
        w[1] = vin;
        w[3] = 1.0;
    });

    // supersonic inflow: pin the full state in the left ghosts
    let e2 = e.clone();
    let inflow = move |ctx: &BoundaryCtx<2>, _c: IVec<2>, u: &mut [f64]| {
        if ctx.tag == INFLOW_TAG {
            e2.prim_to_cons(&[1.0, vin, 0.0, 1.0], u);
        }
    };

    println!(
        "channel with solid body: {} active roots of {} lattice positions",
        sim.grid.layout().num_roots(),
        sim.grid.layout().num_lattice_positions()
    );
    println!("\n  time   blocks  cells  finest  max rho");
    let out = std::env::temp_dir();
    let mut next = 0.1f64;
    let mut snap = 0usize;
    while sim.time < 0.8 {
        sim.advance(Some(&inflow));
        if sim.time >= next {
            let mut max_rho: f64 = 0.0;
            for (_, n) in sim.grid.blocks() {
                max_rho = max_rho.max(n.field().interior_max_abs(0));
            }
            println!(
                "  {:4.2}  {:6}  {:6}  {:5}  {:7.3}",
                sim.time,
                sim.grid.num_blocks(),
                sim.cells(),
                sim.grid.max_level_present(),
                max_rho
            );
            let img = sample_2d(&sim.grid, 0, 384, 192);
            std::fs::write(
                out.join(format!("channel_rho_{snap}.ppm")),
                to_ppm(&img, 384, 192),
            )
            .unwrap();
            snap += 1;
            next += 0.1;
        }
    }
    std::fs::write(out.join("channel_blocks.svg"), svg_grid_2d(&sim.grid, 640.0)).unwrap();
    println!(
        "\n{} steps, {} adapts; a bow shock stands off the body (density piles\nup several-fold ahead of it). artifacts: channel_rho_*.ppm, channel_blocks.svg in {}",
        sim.stats.steps,
        sim.stats.adapts,
        out.display()
    );
    adaptive_blocks::core::verify::check_grid(&sim.grid).expect("invariants");
}

//! Solar wind with a CME-like pulse: the paper's flagship application,
//! miniaturized.
//!
//! ```text
//! cargo run --release --example solar_wind_cme
//! ```
//!
//! Ideal MHD on a 2-D box around a central "sun": a pinned spherical wind
//! source drives a steady outflow; at t = t_cme the source pressure and
//! density are boosted for a while, launching a coronal-mass-ejection-like
//! pressure front that the block structure tracks outward (the paper's
//! Fig. 1 scenario, stood up on the analytic wind substitute documented
//! in DESIGN.md).

use adaptive_blocks::amr::{AmrConfig, AmrSimulation, GradientCriterion};
use adaptive_blocks::io::{sample_2d, svg_grid_2d, to_ppm};
use adaptive_blocks::prelude::*;
use adaptive_blocks::solver::problems::WindSource;

fn main() {
    let mhd = IdealMhd::new(5.0 / 3.0);
    let grid = BlockGrid::new(
        RootLayout::new(
            [2, 2],
            [-1.0, -1.0],
            [2.0, 2.0],
            [Boundary::Outflow; 6],
        ),
        GridParams::new([8, 8], 2, 8, 3),
    );
    let criterion = GradientCriterion::new(0, 0.12, 0.04);
    let mut sim = AmrSimulation::new(
        grid,
        SolverConfig::new(mhd.clone(), Scheme::muscl_rusanov()).with_cfl(0.3),
        criterion,
        AmrConfig { adapt_every: 4, max_steps: 100_000 },
    );

    let wind = WindSource {
        center: [0.0, 0.0],
        r_src: 0.15,
        v_wind: 1.5,
        rho: 1.0,
        p: 0.4,
        b: 0.2,
        pulse: Some((0.35, 0.45, 8.0, 3.0)), // the CME
    };

    // ambient: tenuous plasma the wind blows into
    problems::set_initial(&mut sim.grid, &mhd, |_, w| {
        w[0] = 0.05;
        w[7] = 0.01;
    });
    wind.apply(&mut sim.grid, &mhd, 0.0);
    sim.initial_adapt_with(3, None, |g| {
        problems::set_initial(g, &mhd, |_, w| {
            w[0] = 0.05;
            w[7] = 0.01;
        });
        wind.apply(g, &mhd, 0.0);
    });

    let out = std::env::temp_dir();
    let mut snapshot = 0usize;
    let mut next_dump = 0.1f64;
    println!("  time   blocks   cells  finest  max|rho|  pulse");
    while sim.time < 0.8 {
        sim.advance(None);
        // the inner-boundary trick: re-pin the wind source every step
        wind.apply(&mut sim.grid, &mhd, sim.time);
        if sim.time >= next_dump {
            let mut max_rho: f64 = 0.0;
            for (_, n) in sim.grid.blocks() {
                max_rho = max_rho.max(n.field().interior_max_abs(0));
            }
            let pulsing = (0.35..0.45).contains(&sim.time);
            println!(
                "  {:5.2}  {:6}  {:6}  {:6}  {:8.3}  {}",
                sim.time,
                sim.grid.num_blocks(),
                sim.cells(),
                sim.grid.max_level_present(),
                max_rho,
                if pulsing { "CME!" } else { "" }
            );
            let img = sample_2d(&sim.grid, 0, 256, 256);
            std::fs::write(
                out.join(format!("cme_rho_{snapshot}.ppm")),
                to_ppm(&img, 256, 256),
            )
            .expect("write ppm");
            std::fs::write(
                out.join(format!("cme_blocks_{snapshot}.svg")),
                svg_grid_2d(&sim.grid, 480.0),
            )
            .expect("write svg");
            snapshot += 1;
            next_dump += 0.1;
        }
    }
    println!(
        "\n{} steps, {} adapts; peak {} blocks; artifacts cme_rho_*.ppm / cme_blocks_*.svg in {}",
        sim.stats.steps,
        sim.stats.adapts,
        sim.stats.peak_blocks,
        out.display()
    );
    adaptive_blocks::core::verify::check_grid(&sim.grid).expect("invariants");
}

//! Parallel demo: real threads + the 512-PE cost model, side by side.
//!
//! ```text
//! cargo run --release --example parallel_scaling
//! ```
//!
//! Part 1 runs the same MHD blast on 1, 2, and 4 *real* ranks of the
//! message-passing machine and checks the answers agree — the distributed
//! substrate is exact, not approximate. Part 2 swaps silicon for the BSP
//! cost model and sweeps to 512 ranks, printing the weak-scaling
//! efficiency column of the paper's Fig. 6.

use std::collections::HashMap;

use adaptive_blocks::par::{model_step, CostParams, DistSim, Machine, Partitioner};
use adaptive_blocks::prelude::*;

fn build_grid(roots: [i64; 2]) -> BlockGrid<2> {
    BlockGrid::new(
        RootLayout::unit(roots, Boundary::Periodic),
        GridParams::new([8, 8], 2, 8, 2),
    )
}

fn main() {
    let mhd = IdealMhd::new(5.0 / 3.0);

    // ---------- part 1: real ranks, exact agreement -------------------
    println!("== part 1: message-passing machine (threads) ==");
    let mut checksums = Vec::new();
    for nranks in [1usize, 2, 4] {
        let mhd = mhd.clone();
        let sums = Machine::run(nranks, |comm| {
            let mut g = build_grid([4, 4]);
            problems::mhd_blast(&mut g, &mhd, [0.5, 0.5], 0.15, 5.0, 0.3);
            let mut sim = DistSim::partitioned(
                g,
                nranks,
                SolverConfig::new(mhd.clone(), Scheme::muscl_rusanov()).with_cfl(0.3),
            );
            for _ in 0..5 {
                let dt = sim.max_dt(&comm);
                sim.step_rk2(&comm, dt);
            }
            // checksum of owned interiors
            let mut local = 0.0;
            for id in sim.owned_ids(comm.rank()) {
                local += sim.grid.block(id).field().interior_sum(0);
            }
            comm.allreduce_sum(local)
        }).unwrap();
        println!("  P = {nranks}: total density checksum = {:.12}", sums[0]);
        checksums.push(sums[0]);
    }
    let spread = checksums
        .iter()
        .map(|c| (c - checksums[0]).abs())
        .fold(0.0f64, f64::max);
    println!("  max deviation across rank counts: {spread:.3e} (exact modulo fp roundoff)");

    // ---------- part 2: the 512-PE cost model --------------------------
    println!("\n== part 2: BSP cost model, weak scaling to 512 ranks (Fig. 6 shape) ==");
    println!("  {:>5}  {:>8}  {:>10}  {:>10}", "P", "blocks", "T_step(ms)", "efficiency");
    // topology blocks are 4^3 cells; the model charges for 16^3 MHD blocks
    let params = CostParams::t3d_like(2.0e-6, 16.0, 4.0, 8.0);
    for p in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
        // 8 blocks per rank: grow the root lattice with P
        let total_blocks = 8 * p;
        let side = (total_blocks as f64).cbrt().round() as i64;
        let (rx, ry, rz) = pick_roots(total_blocks, side);
        let g = BlockGrid::<3>::new(
            RootLayout::unit([rx, ry, rz], Boundary::Periodic),
            GridParams::new([4, 4, 4], 2, 1, 1),
        );
        let plan = ablock_core::ghost::GhostExchange::build(
            &g,
            ablock_core::ghost::GhostConfig::default(),
        );
        let owner: HashMap<_, _> = Partitioner::default().partition_grid(&g, p);
        let cost = model_step(&g, &plan, &owner, p, &params);
        println!(
            "  {:>5}  {:>8}  {:>10.3}  {:>10.4}",
            p,
            g.num_blocks(),
            cost.time * 1e3,
            cost.efficiency()
        );
    }
    println!("\n(the full Fig. 6/7 harness lives in `cargo run -p ablock-bench --bin fig6_weak_scaling`)");
}

/// Factor `n` into three near-equal root counts whose product is `n`.
fn pick_roots(n: usize, hint: i64) -> (i64, i64, i64) {
    let mut best = (1i64, 1i64, n as i64);
    let mut best_score = i64::MAX;
    for a in 1..=(n as i64) {
        if n as i64 % a != 0 {
            continue;
        }
        let rest = n as i64 / a;
        for b in 1..=rest {
            if rest % b != 0 {
                continue;
            }
            let c = rest / b;
            let score = (a - hint).abs() + (b - hint).abs() + (c - hint).abs();
            if score < best_score {
                best_score = score;
                best = (a, b, c);
            }
        }
    }
    best
}

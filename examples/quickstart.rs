//! Quickstart: build the paper's Figure 2, adapt it, exchange ghosts.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Reproduces the structural story of the paper in a terminal: a 2×2 root
//! lattice of blocks, one block refined into four children (Fig. 2), the
//! cascading effect of deeper refinement, and a ghost-cell exchange whose
//! values you can check by eye.

use adaptive_blocks::io::{ascii_grid_2d, svg_grid_2d};
use adaptive_blocks::prelude::*;

fn main() {
    // --- the Figure 2 decomposition -----------------------------------
    // Four non-overlapping blocks, each a regular array of cells; refining
    // one block replaces it by four children (only leaves are stored).
    let layout = RootLayout::<2>::unit([2, 2], Boundary::Outflow);
    let params = GridParams::new([4, 4], 2, 1, 4);
    let mut grid = BlockGrid::new(layout, params);
    println!("initial grid: {} blocks, {} cells", grid.num_blocks(), grid.num_cells());

    let target = grid.find(BlockKey::new(0, [0, 1])).unwrap();
    grid.refine(target, Transfer::None).unwrap();
    println!("\nafter refining the upper-left block (paper Fig. 2):");
    print!("{}", ascii_grid_2d(&grid, 56));

    // --- explicit neighbor pointers -----------------------------------
    // The refined block's right neighbor now sees two finer blocks across
    // its x- face; each child sees the coarse block directly. No tree
    // traversal happens at query time.
    let right = grid.find(BlockKey::new(0, [1, 1])).unwrap();
    let conn = grid.block(right).face(Face::new(0, false));
    println!(
        "\nblock (0,[1,1]) x- face points at {} finer neighbor(s): {:?}",
        conn.ids().len(),
        conn.ids()
            .iter()
            .map(|&id| grid.block(id).key())
            .collect::<Vec<_>>()
    );

    // --- cascading refinement ------------------------------------------
    // Refining a fine block against coarse territory forces its neighbors
    // to refine too, keeping the 2:1 constraint.
    let deep = grid.find(BlockKey::new(1, [1, 2])).unwrap();
    let report = adapt(
        &mut grid,
        &[(deep, Flag::Refine)].into_iter().collect(),
        Transfer::None,
    );
    println!(
        "\nrefining one level-1 block cascaded into {} extra refinement(s):",
        report.refined_cascade
    );
    print!("{}", ascii_grid_2d(&grid, 56));

    // --- ghost cells -----------------------------------------------------
    // Fill every block's interior with a linear field; the exchange
    // (copy / restrict / prolong) reproduces it exactly in the ghosts.
    let m = grid.params().block_dims;
    let layout = grid.layout().clone();
    for id in grid.block_ids() {
        let key = grid.block(id).key();
        grid.block_mut(id).field_mut().for_each_interior(|c, u| {
            let x = layout.cell_center(key, m, c);
            u[0] = 10.0 * x[0] + 100.0 * x[1];
        });
    }
    fill_ghosts(&mut grid, GhostConfig::default());
    let some_fine = grid
        .blocks()
        .find(|(_, n)| n.key().level == 2)
        .map(|(id, _)| id)
        .unwrap();
    let node = grid.block(some_fine);
    let ghost = [-1i64, 0];
    let x = layout.cell_center(node.key(), m, ghost);
    println!(
        "\nghost cell {:?} of fine block {:?}: value {:.4}, exact {:.4}",
        ghost,
        node.key(),
        node.field().at(ghost, 0),
        10.0 * x[0] + 100.0 * x[1]
    );

    // --- artifacts -----------------------------------------------------
    let svg = svg_grid_2d(&grid, 480.0);
    let path = std::env::temp_dir().join("adaptive_blocks_quickstart.svg");
    std::fs::write(&path, svg).expect("write svg");
    println!("\nwrote decomposition drawing to {}", path.display());
    println!(
        "final grid: {} blocks on levels {:?}",
        grid.num_blocks(),
        grid.level_histogram()
    );
    adaptive_blocks::core::verify::check_grid(&grid).expect("structure invariants");
    println!("structure invariants verified.");
}

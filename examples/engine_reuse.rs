//! Plan-cache economics of the sweep engine: rebuilds vs. reuses.
//!
//! ```text
//! cargo run --release --example engine_reuse
//! ```
//!
//! The stepper's `SweepEngine` keys its ghost-exchange plan on the
//! grid's topology epoch: every sweep revalidates with one integer
//! compare, and only an actual refine/coarsen forces a rebuild. This
//! example runs a small adaptive blast and prints the engine's
//! counters after each phase — the plan is rebuilt once per structural
//! change and reused for every other sweep, with no `invalidate()`
//! call anywhere.

use adaptive_blocks::amr::{AmrConfig, AmrSimulation, GradientCriterion};
use adaptive_blocks::prelude::*;

fn main() {
    let e = Euler::<2>::new(1.4);
    let grid = BlockGrid::new(
        RootLayout::unit([2, 2], Boundary::Outflow),
        GridParams::new([8, 8], 2, 4, 3),
    );
    let criterion = GradientCriterion::new(3, 0.08, 0.03);
    let mut sim = AmrSimulation::new(
        grid,
        SolverConfig::new(e.clone(), Scheme::muscl_rusanov()).with_cfl(0.35),
        criterion,
        AmrConfig { adapt_every: 4, max_steps: 10_000 },
    );
    let ic = |g: &mut BlockGrid<2>| problems::sedov_blast(g, &e, [0.5, 0.5], 0.1, 20.0);
    sim.initial_adapt_with(3, None, ic);

    let s0 = sim.stepper.engine().stats();
    println!(
        "after initial adapt : {:3} rebuilds, {:4} reuses ({} blocks)",
        s0.rebuilds,
        s0.reuses,
        sim.grid.num_blocks()
    );

    for t_end in [0.01, 0.02, 0.04] {
        sim.run_until(t_end, None);
        let s = sim.stepper.engine().stats();
        println!(
            "t = {t_end:<5}          : {:3} rebuilds, {:4} reuses ({} blocks, {} adapts, {} steps)",
            s.rebuilds,
            s.reuses,
            sim.grid.num_blocks(),
            sim.stats.adapts,
            sim.stats.steps
        );
    }

    let s = sim.stepper.engine().stats();
    assert!(
        s.rebuilds as usize <= sim.stats.adapts + 4,
        "plan rebuilt more often than the topology changed: {} rebuilds for {} adapts",
        s.rebuilds,
        sim.stats.adapts
    );
    assert!(s.reuses > s.rebuilds, "the cache should be reused far more than rebuilt");
    println!(
        "every sweep between adapts reused the cached plan ({:.1} reuses per rebuild)",
        s.reuses as f64 / s.rebuilds.max(1) as f64
    );
}

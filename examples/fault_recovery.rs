//! Fault-tolerant distributed run: inject a seeded rank crash (plus a
//! lossy transport) mid-run and recover from the last checkpoint on the
//! surviving ranks.
//!
//! ```sh
//! cargo run --release --example fault_recovery
//! ```

use std::sync::Arc;

use adaptive_blocks::core::grid::{BlockGrid, GridParams};
use adaptive_blocks::core::layout::{Boundary, RootLayout};
use adaptive_blocks::core::verify;
use adaptive_blocks::par::{run_resilient, FaultPlan, MachineConfig, RecoverConfig};
use adaptive_blocks::solver::euler::Euler;
use adaptive_blocks::solver::kernel::Scheme;
use adaptive_blocks::solver::{problems, SolverConfig};

fn make_grid() -> BlockGrid<2> {
    let e = Euler::<2>::new(1.4);
    let mut g = BlockGrid::new(
        RootLayout::unit([4, 4], Boundary::Periodic),
        GridParams::new([4, 4], 2, 4, 1),
    );
    problems::advected_gaussian(&mut g, &e, [0.6, -0.3], [0.5, 0.5], 0.15);
    g
}

fn run(nranks: usize, faults: Option<Arc<FaultPlan>>) -> adaptive_blocks::par::RecoverOutcome<2> {
    run_resilient(
        nranks,
        8,
        1.0e-3,
        SolverConfig::new(Euler::<2>::new(1.4), Scheme::muscl_rusanov()),
        make_grid,
        RecoverConfig {
            checkpoint_every: 2,
            machine: MachineConfig::fast(),
            max_restarts: 3,
        },
        faults,
    )
    .expect("resilient run must complete")
}

fn main() {
    let nranks = 3;

    println!("== fault-free control run ({nranks} ranks) ==");
    let clean = run(nranks, None);
    verify::check_grid(&clean.grid).unwrap();
    println!(
        "   {} blocks, restarts {}, final ranks {}",
        clean.grid.num_blocks(),
        clean.restarts,
        clean.final_nranks
    );

    println!("== crash rank 1 at its 30th comm op, 2% drop/dup/corrupt ==");
    let plan = Arc::new(
        FaultPlan::new(0xFA17_0001)
            .drop_messages(0.02)
            .duplicate_messages(0.02)
            .corrupt_messages(0.02)
            .crash_rank(1, 30),
    );
    let faulty = run(nranks, Some(plan.clone()));
    verify::check_grid(&faulty.grid).unwrap();
    for f in &faulty.failures {
        println!("   detected: {f}");
    }
    println!(
        "   recovered: {} blocks, restarts {}, final ranks {}",
        faulty.grid.num_blocks(),
        faulty.restarts,
        faulty.final_nranks
    );
    println!("   injected faults: {:?}", plan.stats());

    // the recovery guarantee: deterministic recomputation from the last
    // checkpoint means the faulted run ends exactly where the clean one does
    let mut worst = 0.0f64;
    for (_, node) in clean.grid.blocks() {
        let id = faulty.grid.find(node.key()).expect("topology must match");
        let f = faulty.grid.block(id).field();
        for c in node.field().shape().interior_box().iter() {
            for v in 0..clean.grid.params().nvar {
                worst = worst.max((node.field().at(c, v) - f.at(c, v)).abs());
            }
        }
    }
    println!("   max |clean - recovered| over all cells: {worst:.3e}");
    assert!(worst <= 1e-12, "recovery must match the fault-free run");
    println!("   recovery matches the fault-free run");
}

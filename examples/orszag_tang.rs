//! Orszag–Tang vortex: the classic 2-D MHD turbulence benchmark, with
//! AMR chasing the current sheets.
//!
//! ```text
//! cargo run --release --example orszag_tang [--uniform]
//! ```
//!
//! Smooth initial velocity and magnetic vortices steepen into a web of
//! MHD shocks and current sheets — the standard stress test for any MHD
//! code (and for ∇·B control; this run reports max |∇·B| · h / |B| as a
//! Powell-source health metric). With AMR on, the gradient criterion
//! refines the shock web as it forms; `--uniform` runs the same problem
//! fully refined for comparison.

use adaptive_blocks::amr::{AmrConfig, AmrSimulation, GradientCriterion};
use adaptive_blocks::io::{sample_2d, to_ppm, vtk_uniform_2d};
use adaptive_blocks::prelude::*;

fn max_divb_metric(grid: &BlockGrid<2>) -> f64 {
    let m = grid.params().block_dims;
    let mut worst: f64 = 0.0;
    for (_, n) in grid.blocks() {
        let h = grid.layout().cell_size(n.key().level, m);
        let f = n.field();
        for c in f.shape().interior_box().iter() {
            let mut divb = 0.0;
            for d in 0..2 {
                let mut cp = c;
                cp[d] += 1;
                let mut cm = c;
                cm[d] -= 1;
                divb += (f.at(cp, 4 + d) - f.at(cm, 4 + d)) / (2.0 * h[d]);
            }
            let bmag = (f.at(c, 4).powi(2) + f.at(c, 5).powi(2) + f.at(c, 6).powi(2)).sqrt();
            worst = worst.max((divb * h[0]).abs() / bmag.max(1e-12));
        }
    }
    worst
}

fn main() {
    let uniform = std::env::args().any(|a| a == "--uniform");
    let mhd = IdealMhd::new(5.0 / 3.0);
    let grid = BlockGrid::new(
        RootLayout::unit([4, 4], Boundary::Periodic),
        GridParams::new([8, 8], 2, 8, 2),
    );
    let mut sim = AmrSimulation::new(
        grid,
        SolverConfig::new(mhd.clone(), Scheme::muscl_rusanov()).with_cfl(0.3),
        GradientCriterion::new(0, 0.1, 0.04),
        AmrConfig { adapt_every: 5, max_steps: 200_000 },
    );
    problems::orszag_tang(&mut sim.grid, &mhd);
    if uniform {
        sim.grid.refine_all(Transfer::Conservative(ProlongOrder::LinearMinmod));
        sim.grid.refine_all(Transfer::Conservative(ProlongOrder::LinearMinmod));
        problems::orszag_tang(&mut sim.grid, &mhd); // crisp ICs at full res
        println!("uniform mode: {} blocks / {} cells", sim.grid.num_blocks(), sim.cells());
    }

    let out = std::env::temp_dir();
    println!("  time  blocks   cells  finest  divB*h/|B|   min p");
    let mut next = 0.1f64;
    let mut snap = 0;
    while sim.time < 0.5 {
        sim.advance(None);
        if sim.time >= next {
            let mut min_p = f64::INFINITY;
            for (_, n) in sim.grid.blocks() {
                for c in n.field().shape().interior_box().iter() {
                    min_p = min_p.min(mhd.pressure(&n.field().cell(c)));
                }
            }
            println!(
                "  {:4.2}  {:6}  {:6}  {:6}  {:10.2e}  {:6.4}",
                sim.time,
                sim.grid.num_blocks(),
                sim.cells(),
                sim.grid.max_level_present(),
                max_divb_metric(&sim.grid),
                min_p
            );
            let img = sample_2d(&sim.grid, 0, 256, 256);
            std::fs::write(out.join(format!("ot_rho_{snap}.ppm")), to_ppm(&img, 256, 256))
                .unwrap();
            snap += 1;
            next += 0.1;
        }
    }
    std::fs::write(out.join("ot_rho.vtk"), vtk_uniform_2d(&sim.grid, 0, "rho", 256)).unwrap();
    println!(
        "\n{} steps, {} adapts, {} cells floored; {} mode used {} cells at the end",
        sim.stats.steps,
        sim.stats.adapts,
        sim.stepper.floored_cells,
        if uniform { "uniform" } else { "AMR" },
        sim.cells(),
    );
    println!("artifacts: ot_rho_*.ppm, ot_rho.vtk in {}", out.display());
    adaptive_blocks::core::verify::check_grid(&sim.grid).expect("invariants");
}

//! A moving object carried through the domain with the grid in pursuit —
//! the paper's comet application, distilled.
//!
//! ```text
//! cargo run --release --example comet_tracking
//! ```
//!
//! The paper's group used adaptive blocks for "the first accurate
//! numerical modeling of the recently observed x-ray emissions from
//! comets" — a small dense object ploughing through the solar wind, with
//! the interesting physics confined to a thin interaction region around
//! the nucleus. The structural challenge is *tracking*: the feature moves
//! across the whole domain, so blocks must refine ahead of it and coarsen
//! behind it continuously.
//!
//! Here a dense, pressurized bullet of gas is launched across a periodic
//! box; a gradient criterion keeps the finest blocks on the bow
//! compression while the wake coarsens. The run reports how many blocks
//! were created/destroyed in flight — adaptation as a continuous process,
//! not a one-time setup.

use adaptive_blocks::amr::{AmrConfig, AmrSimulation, GradientCriterion};
use adaptive_blocks::io::{ascii_grid_2d, sample_2d, to_pgm};
use adaptive_blocks::prelude::*;

fn main() {
    let e = Euler::<2>::new(5.0 / 3.0);
    let grid = BlockGrid::new(
        RootLayout::new([4, 2], [0.0, 0.0], [2.0, 1.0], [Boundary::Periodic; 6]),
        GridParams::new([8, 8], 2, 4, 3),
    );
    let mut sim = AmrSimulation::new(
        grid,
        SolverConfig::new(e.clone(), Scheme::muscl_rusanov()).with_cfl(0.35),
        GradientCriterion::new(0, 0.1, 0.04),
        AmrConfig { adapt_every: 2, max_steps: 200_000 },
    );

    // the "comet": dense bullet moving right at Mach ~2 through still gas
    let bullet = |g: &mut BlockGrid<2>| {
        problems::set_initial(g, &e, |x, w| {
            let r2 = (x[0] - 0.3) * (x[0] - 0.3) + (x[1] - 0.5) * (x[1] - 0.5);
            if r2 < 0.09 * 0.09 {
                w[0] = 8.0;
                w[1] = 2.0;
                w[3] = 2.0;
            } else {
                w[0] = 1.0;
                w[3] = 1.0;
            }
        })
    };
    bullet(&mut sim.grid);
    sim.initial_adapt_with(4, None, bullet);

    println!("launching the bullet; grid snapshots as it crosses the box:\n");
    let out = std::env::temp_dir();
    let mut snap = 0usize;
    let mut next = 0.1f64;
    while sim.time < 0.75 {
        sim.advance(None);
        if sim.time >= next {
            // locate the densest cell = the bullet
            let mut best = (0.0f64, [0.0f64, 0.0]);
            let dims = sim.grid.params().block_dims;
            for (_, n) in sim.grid.blocks() {
                for c in n.field().shape().interior_box().iter() {
                    let rho = n.field().at(c, 0);
                    if rho > best.0 {
                        best = (rho, sim.grid.layout().cell_center(n.key(), dims, c));
                    }
                }
            }
            println!(
                "t = {:4.2}: bullet at ({:4.2}, {:4.2}), rho_max {:5.2}, {} blocks (+{} -{} so far)",
                sim.time,
                best.1[0],
                best.1[1],
                best.0,
                sim.grid.num_blocks(),
                sim.stats.refined,
                sim.stats.coarsened * 4,
            );
            if snap == 2 {
                println!("\ngrid at t = {:.2} (fine blocks ride the bullet):", sim.time);
                print!("{}", ascii_grid_2d(&sim.grid, 72));
            }
            let img = sample_2d(&sim.grid, 0, 320, 160);
            std::fs::write(out.join(format!("comet_{snap}.pgm")), to_pgm(&img, 320, 160))
                .unwrap();
            snap += 1;
            next += 0.1;
        }
    }
    println!(
        "\n{} steps, {} adapts; {} blocks refined and {} coarsened in flight —",
        sim.stats.steps,
        sim.stats.adapts,
        sim.stats.refined,
        sim.stats.coarsened * 4
    );
    println!(
        "the refinement followed the object across the domain (peak {} blocks, now {}).",
        sim.stats.peak_blocks,
        sim.grid.num_blocks()
    );
    println!("snapshots comet_*.pgm in {}", out.display());
    adaptive_blocks::core::verify::check_grid(&sim.grid).expect("invariants");
}

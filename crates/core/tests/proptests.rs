//! Property-based tests for the adaptive block data structure.
//!
//! The incremental pointer maintenance in `BlockGrid` is the riskiest code
//! in the crate, so we hammer it with random adapt sequences and compare
//! against the from-scratch oracle in `ablock_core::verify`. Further
//! properties: key arithmetic round trips, SFC bijectivity/ordering, and
//! conservation of the refine/coarsen transfer operators.
//!
//! Cases are generated with the in-repo [`ablock_testkit`] seeded driver
//! (no external property-testing dependency); a failing case reports its
//! seed so it can be replayed exactly.

use std::collections::HashMap;

use ablock_core::prelude::*;
use ablock_core::verify;
use ablock_testkit::{cases, Rng};

/// Apply a scripted random adapt sequence: each step flags a pseudo-random
/// subset of leaves for refinement and another for coarsening.
fn random_adapt_2d(
    roots: [i64; 2],
    bc: Boundary,
    max_level: u8,
    script: &[(u64, u8)],
    transfer: Transfer,
) -> BlockGrid<2> {
    let layout = RootLayout::unit(roots, bc);
    let params = GridParams::new([4, 4], 2, 2, max_level);
    let mut grid = BlockGrid::new(layout, params);
    for &(seed, density) in script {
        let mut flags: HashMap<BlockId, Flag> = HashMap::new();
        // deterministic pseudo-random flagging from the seed
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for id in grid.block_ids() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = (state >> 33) as u8;
            if r % 100 < density {
                flags.insert(id, Flag::Refine);
            } else if r % 100 > 100 - density / 2 {
                flags.insert(id, Flag::Coarsen);
            }
        }
        adapt(&mut grid, &flags, transfer);
    }
    grid
}

/// Random `(seed, density)` script for the adapt driver.
fn random_script(rng: &mut Rng, max_steps: usize, lo: u8, hi: u8) -> Vec<(u64, u8)> {
    let steps = rng.usize_in(1, max_steps);
    (0..steps).map(|_| (rng.next_u64(), rng.u64_below((hi - lo) as u64) as u8 + lo)).collect()
}

/// After any adapt sequence every structural invariant holds: exact
/// tiling, pointer correctness vs. recomputation, pointer symmetry, jump
/// bound, and the 2^(k(d-1)) neighbor-count bound.
#[test]
fn invariants_after_random_adapts() {
    cases(48, 0x5EED_0001, |_, rng| {
        let rx = rng.i64_in(1, 3);
        let ry = rng.i64_in(1, 3);
        let bc = if rng.coin() { Boundary::Periodic } else { Boundary::Outflow };
        let script = random_script(rng, 5, 10, 60);
        let grid = random_adapt_2d([rx, ry], bc, 3, &script, Transfer::None);
        verify::check_grid(&grid).unwrap();
    });
}

/// Conservation: with conservative transfer, the volume-weighted sum of
/// every variable is invariant under any adapt sequence.
#[test]
fn adapt_transfer_conserves() {
    cases(32, 0x5EED_0002, |_, rng| {
        let script = random_script(rng, 3, 10, 50);
        let seed = rng.next_u64();
        let layout = RootLayout::unit([2, 2], Boundary::Periodic);
        let params = GridParams::new([4, 4], 2, 2, 3);
        let mut grid = BlockGrid::new(layout, params);
        // random-ish initial data
        let mut state = seed | 1;
        for id in grid.block_ids() {
            grid.block_mut(id).field_mut().for_each_interior(|_, u| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                u[0] = ((state >> 40) as f64) / 1e6;
                u[1] = ((state >> 20) as f64) / 1e7 - 0.5;
            });
        }
        let total = |g: &BlockGrid<2>, v: usize| -> f64 {
            g.blocks()
                .map(|(_, n)| {
                    let vol = 0.25f64.powi(n.key().level as i32); // relative cell volume
                    n.field().interior_sum(v) * vol
                })
                .sum()
        };
        let before0 = total(&grid, 0);
        let before1 = total(&grid, 1);
        for &(s, d) in &script {
            let mut flags: HashMap<BlockId, Flag> = HashMap::new();
            let mut st = s.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(3);
            for id in grid.block_ids() {
                st = st.wrapping_mul(6364136223846793005).wrapping_add(11);
                let r = (st >> 33) as u8 % 100;
                if r < d {
                    flags.insert(id, Flag::Refine);
                } else if r > 100 - d / 2 {
                    flags.insert(id, Flag::Coarsen);
                }
            }
            adapt(&mut grid, &flags, Transfer::Conservative(ProlongOrder::LinearMinmod));
        }
        let after0 = total(&grid, 0);
        let after1 = total(&grid, 1);
        assert!(
            (before0 - after0).abs() < 1e-9 * before0.abs().max(1.0),
            "var 0 not conserved: {before0} -> {after0}"
        );
        assert!(
            (before1 - after1).abs() < 1e-9 * before1.abs().max(1.0),
            "var 1 not conserved: {before1} -> {after1}"
        );
    });
}

/// Ghost exchange reproduces a global linear field exactly on interior
/// faces for any adapted grid (copy, restriction, and limited-linear
/// prolongation are all exact on linear data).
#[test]
fn ghosts_exact_on_linear_fields() {
    cases(32, 0x5EED_0003, |_, rng| {
        let script = random_script(rng, 3, 15, 50);
        let ax = rng.f64_in(-2.0, 2.0);
        let ay = rng.f64_in(-2.0, 2.0);
        let mut grid = random_adapt_2d([2, 2], Boundary::Outflow, 3, &script, Transfer::None);
        let m = grid.params().block_dims;
        let layout = grid.layout().clone();
        for id in grid.block_ids() {
            let key = grid.block(id).key();
            grid.block_mut(id).field_mut().for_each_interior(|c, u| {
                let x = layout.cell_center(key, m, c);
                u[0] = ax * x[0] + ay * x[1] + 0.125;
                u[1] = -u[0];
            });
        }
        fill_ghosts(&mut grid, GhostConfig::default());
        let ng = grid.params().nghost;
        for (_, node) in grid.blocks() {
            for f in Face::all::<2>() {
                if node.face(f).is_boundary() {
                    continue;
                }
                let slab = IBox::from_dims(m).outer_face_slab(f, ng);
                for c in slab.iter() {
                    let x = layout.cell_center(node.key(), m, c);
                    let want = ax * x[0] + ay * x[1] + 0.125;
                    let got = node.field().at(c, 0);
                    assert!(
                        (got - want).abs() < 1e-11,
                        "block {:?} ghost {c:?}: {got} vs {want}",
                        node.key()
                    );
                    assert!((node.field().at(c, 1) + want).abs() < 1e-11);
                }
            }
        }
    });
}

/// Morton encode/decode round-trips arbitrary coordinates.
#[test]
fn morton_roundtrip() {
    cases(64, 0x5EED_0004, |_, rng| {
        let x = rng.u64_below(1 << 20);
        let y = rng.u64_below(1 << 20);
        let z = rng.u64_below(1 << 20);
        let c = ablock_core::sfc::morton_encode::<3>([x, y, z], 21);
        assert_eq!(ablock_core::sfc::morton_decode::<3>(c, 21), [x, y, z]);
    });
}

/// Hilbert adjacency: consecutive indices differ by one unit step.
#[test]
fn hilbert_unit_steps() {
    cases(32, 0x5EED_0005, |_, rng| {
        let bits = rng.u64_below(3) as u32 + 2;
        let n = 1u64 << bits;
        let total = n * n;
        let start = rng.u64_below(total - 1);
        // decode by brute force over the lattice (encode is the API)
        let mut inv = vec![[0u64; 2]; total as usize];
        for x in 0..n {
            for y in 0..n {
                inv[ablock_core::sfc::hilbert_encode::<2>([x, y], bits) as usize] = [x, y];
            }
        }
        let a = inv[start as usize];
        let b = inv[start as usize + 1];
        assert_eq!(a[0].abs_diff(b[0]) + a[1].abs_diff(b[1]), 1);
    });
}

/// Key arithmetic: any descendant chain returns to the ancestor, and
/// face-neighbor round trips cancel.
#[test]
fn key_arithmetic() {
    cases(64, 0x5EED_0006, |_, rng| {
        let level = rng.u64_below(6) as u8;
        let cx = rng.i64_in(0, 64);
        let cy = rng.i64_in(0, 64);
        let path: Vec<usize> = (0..rng.usize_below(5)).map(|_| rng.usize_below(4)).collect();
        let k = BlockKey::<2>::new(level, [cx, cy]);
        let mut cur = k;
        for &ci in &path {
            cur = cur.child(ci);
        }
        assert_eq!(cur.ancestor(path.len() as u8), Some(k));
        for f in Face::all::<2>() {
            assert_eq!(k.face_neighbor(f).face_neighbor(f.opposite()), k);
        }
    });
}

/// 3-D: invariants under random adapt sequences (the 2^(d-1) = 4
/// finer-neighbor configuration and octree cascades).
#[test]
fn invariants_after_random_adapts_3d() {
    cases(24, 0x5EED_0007, |_, rng| {
        let bc = if rng.coin() { Boundary::Periodic } else { Boundary::Outflow };
        let script = random_script(rng, 2, 15, 50);
        let layout = RootLayout::<3>::unit([2, 2, 2], bc);
        let params = GridParams::new([4, 4, 4], 2, 1, 2);
        let mut grid = BlockGrid::new(layout, params);
        for &(seed, density) in &script {
            let mut flags: HashMap<BlockId, Flag> = HashMap::new();
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            for id in grid.block_ids() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let r = (state >> 33) as u8 % 100;
                if r < density {
                    flags.insert(id, Flag::Refine);
                } else if r > 100 - density / 2 {
                    flags.insert(id, Flag::Coarsen);
                }
            }
            adapt(&mut grid, &flags, Transfer::None);
        }
        verify::check_grid(&grid).unwrap();
        // corner-enabled ghost plans build and fill without panicking
        fill_ghosts(&mut grid, GhostConfig::default().with_corners(true));
    });
}

/// Epoch-keyed plan caching: a `GhostExchange` revalidated only when
/// `is_current` reports the topology epoch moved is always task-for-task
/// identical to a from-scratch build — i.e. every structural change bumps
/// the epoch, so a cached plan can never silently go stale.
#[test]
fn cached_ghost_plan_tracks_topology_epoch() {
    use ablock_core::ghost::GhostExchange;
    cases(24, 0x5EED_0009, |_, rng| {
        let layout = RootLayout::unit([2, 2], Boundary::Periodic);
        let params = GridParams::new([4, 4], 2, 2, 3);
        let mut grid = BlockGrid::new(layout, params);
        let mut plan = GhostExchange::build(&grid, GhostConfig::default());
        let script = random_script(rng, 5, 10, 60);
        for &(seed, density) in &script {
            let mut flags: HashMap<BlockId, Flag> = HashMap::new();
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            for id in grid.block_ids() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let r = (state >> 33) as u8 % 100;
                if r < density {
                    flags.insert(id, Flag::Refine);
                } else if r > 100 - density / 2 {
                    flags.insert(id, Flag::Coarsen);
                }
            }
            adapt(&mut grid, &flags, Transfer::None);
            if !plan.is_current(&grid) {
                plan = GhostExchange::build(&grid, GhostConfig::default());
            }
            // the cache-managed plan must equal a from-scratch build
            let fresh = GhostExchange::build(&grid, GhostConfig::default());
            assert_eq!(plan.epoch(), fresh.epoch());
            assert_eq!(plan.phase1(), fresh.phase1(), "stale phase-1 tasks served from cache");
            assert_eq!(plan.phase2(), fresh.phase2(), "stale phase-2 tasks served from cache");
            verify::check_grid(&grid).unwrap();
        }
    });
}

/// The curve order of leaves after adaptation is a permutation and
/// groups each sibling family contiguously (aligned sub-boxes are
/// contiguous on both curves).
#[test]
fn curve_order_contiguous_families() {
    cases(24, 0x5EED_0008, |_, rng| {
        let script = random_script(rng, 2, 20, 60);
        let use_hilbert = rng.coin();
        let grid = random_adapt_2d([2, 2], Boundary::Outflow, 3, &script, Transfer::None);
        let keys: Vec<BlockKey<2>> = grid.blocks().map(|(_, n)| n.key()).collect();
        let curve = if use_hilbert { Curve::Hilbert } else { Curve::Morton };
        let order = curve_order(&keys, curve);
        let mut seen = vec![false; keys.len()];
        for &i in &order {
            assert!(!seen[i]);
            seen[i] = true;
        }
        // families contiguous: for each parent with all 2^D children as
        // leaves, the children occupy consecutive curve positions
        let mut pos = vec![0usize; keys.len()];
        for (rank, &i) in order.iter().enumerate() {
            pos[i] = rank;
        }
        let by_key: HashMap<BlockKey<2>, usize> =
            keys.iter().copied().enumerate().map(|(i, k)| (k, i)).collect();
        for (i, k) in keys.iter().enumerate() {
            if let Some(parent) = k.parent() {
                let members: Vec<usize> = parent
                    .children()
                    .filter_map(|ck| by_key.get(&ck).copied())
                    .collect();
                if members.len() == 4 {
                    let mut ranks: Vec<usize> = members.iter().map(|&j| pos[j]).collect();
                    ranks.sort_unstable();
                    assert_eq!(
                        ranks[3] - ranks[0],
                        3,
                        "family of {parent:?} not contiguous (leaf {i})"
                    );
                }
            }
        }
    });
}

//! Non-Cartesian initial block configurations (paper, *Generalizations*):
//! masked root lattices — L-shaped domains, rings, and solid-body cutouts
//! — exercised through construction, adaptation, ghost fill, and the
//! invariant oracle.

use ablock_core::balance::refine_ball_to_level;
use ablock_core::ghost::{fill_ghosts, GhostConfig};
use ablock_core::grid::{BlockGrid, FaceConn, GridParams, Transfer};
use ablock_core::index::{Face, IBox};
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, Resolved, RootLayout};
use ablock_core::verify;

fn l_shape() -> RootLayout<2> {
    // 2x2 lattice minus the upper-right root
    RootLayout::unit([2, 2], Boundary::Outflow)
        .with_mask(|c| c != [1, 1])
        .with_hole_boundary(Boundary::Reflect)
}

#[test]
fn masked_layout_reports_holes() {
    let l = l_shape();
    assert_eq!(l.num_roots(), 3);
    assert_eq!(l.root_keys().count(), 3);
    assert!(l.is_active([0, 0]));
    assert!(!l.is_active([1, 1]));
    match l.resolve(BlockKey::new(0, [1, 1])) {
        Resolved::Outside(_, bc) => assert_eq!(bc, Boundary::Reflect),
        other => panic!("hole must resolve outside, got {other:?}"),
    }
    // a refined key inside the hole is also outside
    match l.resolve(BlockKey::new(2, [7, 6])) {
        Resolved::Outside(_, bc) => assert_eq!(bc, Boundary::Reflect),
        other => panic!("descendant of hole must be outside, got {other:?}"),
    }
    // ...but the same fine coords under an active root are inside
    assert!(matches!(
        l.resolve(BlockKey::new(2, [1, 6])),
        Resolved::InDomain(_)
    ));
}

#[test]
fn l_shaped_grid_builds_with_hole_faces() {
    let mut g = BlockGrid::new(l_shape(), GridParams::new([4, 4], 2, 1, 3));
    assert_eq!(g.num_blocks(), 3);
    verify::check_grid(&g).unwrap();
    // faces toward the hole are reflecting boundaries
    let right = g.find(BlockKey::new(0, [1, 0])).unwrap();
    assert_eq!(
        *g.block(right).face(Face::new(1, true)),
        FaceConn::Boundary(Boundary::Reflect)
    );
    let top = g.find(BlockKey::new(0, [0, 1])).unwrap();
    assert_eq!(
        *g.block(top).face(Face::new(0, true)),
        FaceConn::Boundary(Boundary::Reflect)
    );
    // interior faces still connect
    let bl = g.find(BlockKey::new(0, [0, 0])).unwrap();
    assert_eq!(g.block(bl).face(Face::new(0, true)).ids(), &[right]);
    // adaptation near the hole cascades only through real blocks
    refine_ball_to_level(&mut g, [0.45, 0.45], 0.1, 2, Transfer::None);
    verify::check_grid(&g).unwrap();
    assert!(g.max_level_present() >= 2);
    // no leaf exists inside the hole
    assert!(g.find_leaf_at([0.75, 0.75]).is_none());
    assert!(g.find_leaf_at([0.25, 0.75]).is_some());
}

#[test]
fn ring_of_roots() {
    // 4x4 lattice with the inner 2x2 removed: an annulus
    let layout = RootLayout::unit([4, 4], Boundary::Outflow)
        .with_mask(|c| !(1..3).contains(&c[0]) || !(1..3).contains(&c[1]));
    let g = BlockGrid::new(layout, GridParams::new([4, 4], 2, 1, 2));
    assert_eq!(g.num_blocks(), 12);
    verify::check_grid(&g).unwrap();
    // every block bordering the cavity sees a boundary
    let inner = g.find(BlockKey::new(0, [1, 0])).unwrap();
    assert!(g.block(inner).face(Face::new(1, true)).is_boundary());
}

#[test]
fn reflect_hole_behaves_like_a_wall() {
    // fill with a vector field; ghosts inside the hole mirror the interior
    // with the normal component flipped — the solid-body condition
    let mut g = BlockGrid::new(l_shape(), GridParams::new([4, 4], 2, 3, 1));
    for id in g.block_ids() {
        g.block_mut(id).field_mut().for_each_interior(|c, u| {
            u[0] = 1.0 + c[0] as f64;
            u[1] = 2.0; // vx
            u[2] = 3.0; // vy
        });
    }
    let cfg = GhostConfig {
        prolong_order: ablock_core::ops::ProlongOrder::Constant,
        vector_components: vec![[1, 2, usize::MAX]],
        corners: false,
    };
    fill_ghosts(&mut g, cfg);
    // block (1,0)'s y+ face borders the hole: vy flips in the ghosts
    let right = g.find(BlockKey::new(0, [1, 0])).unwrap();
    let f = g.block(right).field();
    assert_eq!(f.at([1, 4], 2), -3.0, "normal (vy) flips at the wall");
    assert_eq!(f.at([1, 4], 1), 2.0, "tangential (vx) passes through");
    assert_eq!(f.at([1, 4], 0), f.at([1, 3], 0), "scalar mirrors");
}

#[test]
fn masked_tiling_oracle_counts_correctly() {
    // tiling verification must use the active root count, not the lattice
    let layout = RootLayout::unit([3, 3], Boundary::Outflow).with_mask(|c| (c[0] + c[1]) % 2 == 0);
    let mut g = BlockGrid::new(layout, GridParams::new([4, 4], 2, 1, 2));
    assert_eq!(g.num_blocks(), 5); // checkerboard on 3x3
    // all faces between active diagonal neighbors are boundaries (no face
    // adjacency on a checkerboard)
    for (_, node) in g.blocks() {
        for f in Face::all::<2>() {
            assert!(node.face(f).is_boundary());
        }
    }
    let id = g.find(BlockKey::new(0, [1, 1])).unwrap();
    g.refine(id, Transfer::None).unwrap();
    verify::check_grid(&g).unwrap();
}

#[test]
fn ghost_fill_near_hole_keeps_interior_exchange_exact() {
    // linear field on the L-shape: interior faces exact, hole faces are
    // reflect-filled (not linear), domain faces outflow
    let mut g = BlockGrid::new(l_shape(), GridParams::new([8, 8], 2, 1, 2));
    let id = g.find(BlockKey::new(0, [0, 0])).unwrap();
    g.refine(id, Transfer::None).unwrap();
    let layout = g.layout().clone();
    let m = g.params().block_dims;
    for id in g.block_ids() {
        let key = g.block(id).key();
        g.block_mut(id).field_mut().for_each_interior(|c, u| {
            let x = layout.cell_center(key, m, c);
            u[0] = 4.0 * x[0] + 9.0 * x[1];
        });
    }
    fill_ghosts(&mut g, GhostConfig::default());
    verify::check_grid(&g).unwrap();
    let ng = g.params().nghost;
    for (_, node) in g.blocks() {
        for f in Face::all::<2>() {
            if node.face(f).is_boundary() {
                continue;
            }
            for c in IBox::from_dims(m).outer_face_slab(f, ng).iter() {
                let x = layout.cell_center(node.key(), m, c);
                let want = 4.0 * x[0] + 9.0 * x[1];
                assert!(
                    (node.field().at(c, 0) - want).abs() < 1e-12,
                    "block {:?} ghost {c:?}",
                    node.key()
                );
            }
        }
    }
}

//! Error-path tests for [`GridError`]: every rejection is asserted down
//! to the specific variant (and its payload), not just `is_err()`.

use ablock_core::prelude::*;

fn grid(roots: [i64; 2], max_level: u8) -> BlockGrid<2> {
    BlockGrid::new(
        RootLayout::unit(roots, Boundary::Outflow),
        GridParams::new([4, 4], 2, 1, max_level),
    )
}

#[test]
fn refine_at_max_level_reports_max_level() {
    let mut g = grid([1, 1], 1);
    let root = BlockKey::new(0, [0, 0]);
    g.refine(g.find(root).unwrap(), Transfer::None).unwrap();
    let child = BlockKey::new(1, [0, 0]);
    let err = g.refine(g.find(child).unwrap(), Transfer::None).unwrap_err();
    assert_eq!(err, GridError::MaxLevel { key: child, max_level: 1 });
}

#[test]
fn refine_against_coarse_neighbor_reports_refine_jump() {
    let mut g = grid([2, 2], 3);
    let a = BlockKey::new(0, [0, 0]);
    g.refine(g.find(a).unwrap(), Transfer::None).unwrap();
    // the child touching root (0,[1,0]) would create a 2-level face jump
    let child = BlockKey::new(1, [1, 0]);
    let err = g.refine(g.find(child).unwrap(), Transfer::None).unwrap_err();
    assert_eq!(err, GridError::RefineJump { key: child, max_jump: 1 });
}

#[test]
fn coarsen_incomplete_group_reports_siblings_incomplete() {
    let mut g = grid([2, 2], 2);
    // (0,[1,1]) is itself a leaf: its children do not exist
    let parent = BlockKey::new(0, [1, 1]);
    let err = g.coarsen(parent, Transfer::None).unwrap_err();
    assert_eq!(err, GridError::SiblingsIncomplete { parent });

    // a subdivided child also breaks the group
    g.refine_all(Transfer::None);
    g.refine(g.find(BlockKey::new(1, [0, 0])).unwrap(), Transfer::None)
        .unwrap();
    let parent = BlockKey::new(0, [0, 0]);
    let err = g.coarsen(parent, Transfer::None).unwrap_err();
    assert_eq!(err, GridError::SiblingsIncomplete { parent });
}

#[test]
fn coarsen_against_fine_neighbor_reports_coarsen_jump() {
    let mut g = grid([2, 2], 2);
    g.refine_all(Transfer::None); // uniform level 1
    // a level-2 island next to the group under (0,[1,0])
    g.refine(g.find(BlockKey::new(1, [1, 0])).unwrap(), Transfer::None)
        .unwrap();
    let parent = BlockKey::new(0, [1, 0]);
    let err = g.coarsen(parent, Transfer::None).unwrap_err();
    assert_eq!(err, GridError::CoarsenJump { parent, max_jump: 1 });
}

#[test]
fn stale_ids_report_stale_block_everywhere() {
    let mut g = grid([2, 2], 2);
    let key = BlockKey::new(0, [0, 0]);
    let id = g.find(key).unwrap();
    g.refine(id, Transfer::None).unwrap(); // invalidates `id`
    assert_eq!(g.try_block(id).unwrap_err(), GridError::StaleBlock(id));
    assert_eq!(
        g.try_block_mut(id).unwrap_err(),
        GridError::StaleBlock(id)
    );
    assert_eq!(
        g.refine(id, Transfer::None).unwrap_err(),
        GridError::StaleBlock(id)
    );
    assert!(!g.contains(id));
}

#[test]
fn masked_and_missing_keys_resolve_to_nothing() {
    let layout = RootLayout::unit([2, 2], Boundary::Outflow)
        .with_mask(|c| c != [1, 1])
        .with_hole_boundary(Boundary::Reflect);
    let g = BlockGrid::<2>::new(layout, GridParams::new([4, 4], 2, 1, 2));
    // the masked root holds no block …
    let masked = BlockKey::new(0, [1, 1]);
    assert_eq!(g.find(masked), None);
    assert_eq!(g.find_covering(masked), None);
    // … and faces toward it resolve to the hole boundary
    match g.layout().resolve(masked) {
        Resolved::Outside(_, bc) => assert_eq!(bc, Boundary::Reflect),
        other => panic!("masked key resolved in-domain: {other:?}"),
    }
    // a key outside the lattice is also nothing
    assert_eq!(g.find(BlockKey::new(0, [5, 5])), None);
    // the stored pointer on the face toward the hole is the hole boundary
    let id = g.find(BlockKey::new(0, [0, 1])).unwrap();
    assert_eq!(
        *g.block(id).face(Face::new(0, true)),
        FaceConn::Boundary(Boundary::Reflect)
    );
}

#[test]
fn error_display_names_the_offender() {
    let mut g = grid([1, 1], 1);
    let root = BlockKey::new(0, [0, 0]);
    g.refine(g.find(root).unwrap(), Transfer::None).unwrap();
    let child = BlockKey::new(1, [0, 0]);
    let err = g.refine(g.find(child).unwrap(), Transfer::None).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("max_level"), "{msg}");
}

//! Edge-case coverage for the storage layer: unusual shapes, padding
//! interactions, anisotropic blocks, and the arena under churn.

use ablock_core::arena::Arena;
use ablock_core::field::{FieldBlock, FieldShape};
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::index::{Face, IBox};
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};

#[test]
fn anisotropic_blocks_work_end_to_end() {
    // the paper's m1 x m2 x ... need not be cubic (Fig. 2 uses 3x4)
    // periodic in x (field is constant along x), outflow in y (field is
    // linear in y, incompatible with a wrap)
    let mut g = BlockGrid::<2>::new(
        RootLayout::unit([2, 2], Boundary::Outflow).with_axis_boundary(0, Boundary::Periodic),
        GridParams::new([8, 4], 2, 1, 2),
    );
    assert_eq!(g.num_cells(), 4 * 32);
    let a = g.find(BlockKey::new(0, [0, 0])).unwrap();
    g.refine(a, Transfer::None).unwrap();
    ablock_core::verify::check_grid(&g).unwrap();
    // ghost exchange on anisotropic blocks reproduces a linear field
    let layout = g.layout().clone();
    let m = g.params().block_dims;
    for id in g.block_ids() {
        let key = g.block(id).key();
        g.block_mut(id).field_mut().for_each_interior(|c, u| {
            let x = layout.cell_center(key, m, c);
            u[0] = 5.0 * x[1]; // periodic-in-x safe (constant along x)
        });
    }
    ablock_core::ghost::fill_ghosts(&mut g, ablock_core::ghost::GhostConfig::default());
    for (_, node) in g.blocks() {
        for f in [Face::new(1, false), Face::new(1, true)] {
            if node.face(f).is_boundary() {
                continue;
            }
            for c in IBox::from_dims(m).outer_face_slab(f, 2).iter() {
                let x = layout.cell_center(node.key(), m, c);
                let want = 5.0 * x[1];
                assert!(
                    (node.field().at(c, 0) - want).abs() < 1e-12,
                    "aniso ghost {c:?} of {:?}",
                    node.key()
                );
            }
        }
    }
}

#[test]
fn single_cell_thick_blocks() {
    // extreme anisotropy: 16x2 blocks with 1 ghost layer
    let g = BlockGrid::<2>::new(
        RootLayout::unit([1, 4], Boundary::Periodic),
        GridParams::new([16, 2], 1, 1, 0),
    );
    assert_eq!(g.num_cells(), 128);
    let shape = g.params().field_shape();
    assert_eq!(shape.ghosted(), [18, 4]);
    assert!(shape.ghost_ratio() > 1.0);
}

#[test]
fn padding_does_not_change_results() {
    // identical data, padded vs unpadded: every interior op agrees
    let mk = |pad: i64| {
        let mut f = FieldBlock::zeros(FieldShape::<3>::padded([4, 4, 4], 2, 2, pad));
        let mut k = 0.0;
        f.for_each_interior(|_, u| {
            u[0] = k;
            u[1] = -k * 0.5;
            k += 1.0;
        });
        f
    };
    let a = mk(0);
    let b = mk(3);
    assert_eq!(a.interior_sum(0), b.interior_sum(0));
    assert_eq!(a.interior_max_abs(1), b.interior_max_abs(1));
    for c in a.shape().interior_box().iter() {
        assert_eq!(a.cell(c), b.cell(c));
    }
    // allocation actually differs
    assert!(b.as_slice().len() > a.as_slice().len());
}

#[test]
fn padded_shapes_ghost_exchange_bitwise() {
    // Regression for the SoA row math: the full ghost-exchange path
    // (same-level copy, restrict, prolong) on a grid with nonzero x-pad
    // AND nonzero plane-pad must reproduce the unpadded grid bit for bit
    // at k=2 ghosts. Padding only changes strides, never values.
    let mk = |pad: i64, plane_pad: i64| {
        let params = GridParams::new([4, 4, 4], 2, 2, 1)
            .with_pad(pad)
            .with_plane_pad(plane_pad);
        let mut g =
            BlockGrid::<3>::new(RootLayout::unit([2, 2, 2], Boundary::Periodic), params);
        let id = g.find(BlockKey::new(0, [1, 0, 1])).unwrap();
        g.refine(id, Transfer::None).unwrap();
        ablock_core::verify::check_grid(&g).unwrap();
        for id in g.block_ids() {
            let key = g.block(id).key();
            let base = (key.coords[0] * 9
                + key.coords[1] * 5
                + key.coords[2] * 3
                + key.level as i64 * 17) as f64;
            g.block_mut(id).field_mut().for_each_interior(|c, u| {
                u[0] = base + 0.25 * (c[0] + 2 * c[1] + 4 * c[2]) as f64;
                u[1] = 1.0 / (base + (c[0] * c[0] + c[1] + 3 * c[2] + 40) as f64);
            });
        }
        ablock_core::ghost::fill_ghosts(&mut g, ablock_core::ghost::GhostConfig::default());
        g
    };
    let a = mk(0, 0);
    let b = mk(3, 5);
    // padding really does allocate more
    let first = a.block_ids()[0];
    assert!(
        b.block(b.block_ids()[0]).field().as_slice().len()
            > a.block(first).field().as_slice().len()
    );
    for (_, na) in a.blocks() {
        let nb = b.block(b.find(na.key()).unwrap());
        for v in 0..2 {
            for c in na.field().shape().ghosted_box().iter() {
                assert_eq!(
                    na.field().at(c, v).to_bits(),
                    nb.field().at(c, v).to_bits(),
                    "padded ghost mismatch at {c:?} var {v} of {:?}",
                    na.key()
                );
            }
        }
    }
}

#[test]
fn extract_insert_box_roundtrip_padded() {
    // extract_box/insert_box are the aggregated-exchange wire format;
    // their row arithmetic must honor both padding knobs.
    use ablock_core::ghost::{extract_box, insert_box};
    let s = FieldShape::<3>::padded([4, 4, 4], 2, 3, 2).with_plane_pad(7);
    let mut f = FieldBlock::zeros(s);
    let mut k = 1.0;
    f.for_each_ghosted(|_, u| {
        for x in u {
            *x = k;
            k += 1.0;
        }
    });
    // a box straddling ghosts and interior, anisotropic on purpose
    let bx = IBox::new([-2, 1, 0], [3, 4, 6]);
    let payload = extract_box(&f, bx);
    assert_eq!(payload.len(), bx.volume() as usize * 3);
    let mut g = FieldBlock::zeros(s);
    insert_box(&mut g, bx, &payload);
    for v in 0..3 {
        for c in s.ghosted_box().iter() {
            let want = if bx.contains(c) { f.at(c, v) } else { 0.0 };
            assert_eq!(g.at(c, v).to_bits(), want.to_bits(), "{c:?} var {v}");
        }
    }
    // re-extracting from the round-tripped copy reproduces the payload
    assert_eq!(extract_box(&g, bx), payload);
}

#[test]
fn zero_ghost_blocks() {
    let s = FieldShape::<2>::new([6, 6], 0, 3);
    assert_eq!(s.ghost_cells(), 0);
    assert_eq!(s.ghost_ratio(), 0.0);
    let mut f = FieldBlock::zeros(s);
    f.for_each_ghosted(|_, u| u[0] += 1.0);
    assert_eq!(f.interior_sum(0), 36.0);
}

#[test]
fn arena_heavy_churn_generations() {
    let mut a: Arena<u64> = Arena::new();
    let mut live = Vec::new();
    let mut stale = Vec::new();
    let mut state = 12345u64;
    for step in 0..2000u64 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        if state.is_multiple_of(3) && !live.is_empty() {
            let idx = (state >> 33) as usize % live.len();
            let id = live.swap_remove(idx);
            a.remove(id);
            stale.push(id);
        } else {
            live.push(a.insert(step));
        }
    }
    // every stale id is dead, every live id resolves
    for &id in &stale {
        assert!(a.get(id).is_none());
    }
    for &id in &live {
        assert!(a.get(id).is_some());
    }
    assert_eq!(a.len(), live.len());
    // capacity bounded by peak live count + frees, not total inserts
    assert!(a.capacity() <= 2000);
}

#[test]
fn deep_refinement_chain() {
    // refine the same corner down 6 levels (max supported by the params)
    let mut g = BlockGrid::<2>::new(
        RootLayout::unit([1, 1], Boundary::Periodic),
        GridParams::new([4, 4], 2, 1, 6),
    );
    for _ in 0..6 {
        let id = g.find_leaf_at([1e-12, 1e-12]).unwrap();
        let flags = [(id, ablock_core::balance::Flag::Refine)].into_iter().collect();
        ablock_core::balance::adapt(&mut g, &flags, Transfer::None);
    }
    ablock_core::verify::check_grid(&g).unwrap();
    assert_eq!(g.max_level_present(), 6);
    let deepest = g.find_leaf_at([1e-12, 1e-12]).unwrap();
    assert_eq!(g.block(deepest).key().level, 6);
    // cell width at level 6: 1 / (4 * 64)
    let h = g.layout().cell_size(6, [4, 4])[0];
    assert!((h - 1.0 / 256.0).abs() < 1e-15);
}

#[test]
fn one_dimensional_full_stack() {
    // 1-D: refine, exchange, adapt, verify — the degenerate-dimension path
    let mut g = BlockGrid::<1>::new(
        RootLayout::unit([3], Boundary::Outflow),
        GridParams::new([6], 2, 2, 3),
    );
    let mid = g.find(BlockKey::new(0, [1])).unwrap();
    g.refine(mid, Transfer::None).unwrap();
    ablock_core::verify::check_grid(&g).unwrap();
    // in 1-D a face has exactly 1 neighbor even at a jump (2^(d-1) = 1)
    for (_, n) in g.blocks() {
        for f in Face::all::<1>() {
            assert!(n.face(f).ids().len() <= 1);
        }
    }
    let layout = g.layout().clone();
    for id in g.block_ids() {
        let key = g.block(id).key();
        g.block_mut(id).field_mut().for_each_interior(|c, u| {
            let x = layout.cell_center(key, [6], c);
            u[0] = 2.0 - x[0];
            u[1] = 4.0 * x[0];
        });
    }
    ablock_core::ghost::fill_ghosts(&mut g, ablock_core::ghost::GhostConfig::default());
    for (_, node) in g.blocks() {
        for f in Face::all::<1>() {
            if node.face(f).is_boundary() {
                continue;
            }
            for c in IBox::from_dims([6]).outer_face_slab(f, 2).iter() {
                let x = layout.cell_center(node.key(), [6], c);
                assert!((node.field().at(c, 0) - (2.0 - x[0])).abs() < 1e-12);
                assert!((node.field().at(c, 1) - 4.0 * x[0]).abs() < 1e-12);
            }
        }
    }
}

//! Property tests for the per-rank-pair aggregation layer
//! (`ablock_core::ghost::AggregatedExchange`): the packed send buffer's
//! unpack schedule must be a permutation-free inverse of packing — every
//! ghost cell is written exactly once per exchange, and running the
//! aggregated protocol over per-rank replicas reproduces the serial
//! per-face fill byte-for-byte — across random grids at one and two
//! ghost layers.

use std::collections::{HashMap, HashSet};

use ablock_core::balance::{adapt, Flag};
use ablock_core::ghost::{task_source_box, GhostConfig, GhostExchange, GhostTask};
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::index::IBox;
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};
use ablock_core::arena::BlockId;
use ablock_testkit::{cases, Rng};

const NVAR: usize = 3;

/// Deterministic random grid: 2x2 roots (boundary chosen by the seed),
/// up to two rounds of random refinement, interiors set to a smooth
/// nonlinear function of the physical cell center. Rebuilding with the
/// same `(seed, ng)` yields a bitwise-identical replica, which is how
/// the distributed emulation below gets its per-rank mirror grids
/// (`BlockGrid` is deliberately not `Clone`).
fn build_grid(seed: u64, ng: i64) -> BlockGrid<2> {
    let mut rng = Rng::new(seed);
    let bc = if rng.f64() < 0.5 { Boundary::Periodic } else { Boundary::Outflow };
    let mut g = BlockGrid::<2>::new(
        RootLayout::unit([2, 2], bc),
        GridParams::new([4, 4], ng, NVAR, 2),
    );
    for _ in 0..2 {
        let mut flags = HashMap::new();
        for id in g.block_ids() {
            if rng.f64() < 0.35 {
                flags.insert(id, Flag::Refine);
            }
        }
        adapt(&mut g, &flags, Transfer::None);
    }
    let layout = g.layout().clone();
    let m = g.params().block_dims;
    for id in g.block_ids() {
        let key = g.block(id).key();
        g.block_mut(id).field_mut().for_each_interior(|c, u| {
            let x = layout.cell_center(key, m, c);
            for (v, uv) in u.iter_mut().enumerate() {
                *uv = (4.7 * x[0] + 0.3 * v as f64).sin() * (2.9 * x[1] - 0.7).cos()
                    + 0.1 * v as f64
                    + 1.5;
            }
        });
    }
    g
}

/// Deterministic ownership derived from the block key alone, so every
/// replica of the topology computes the identical map.
fn owner_of(key: BlockKey<2>, seed: u64, nranks: usize) -> usize {
    let mut h = Rng::new(
        seed.wrapping_add(0x9E37 * (key.level as u64 + 1))
            .wrapping_add((key.coords[0] as u64).wrapping_mul(0x1000_0001))
            .wrapping_add((key.coords[1] as u64).wrapping_mul(0x2000_0003)),
    );
    (h.next_u64() % nranks as u64) as usize
}

/// The destination ghost region a task writes, where the plan states it
/// explicitly ([`GhostTask::Physical`] fills the face slab instead).
fn dst_region(task: &GhostTask<2>) -> Option<(BlockId, IBox<2>)> {
    match task {
        GhostTask::Same { dst, region, .. }
        | GhostTask::Restrict { dst, region, .. }
        | GhostTask::Prolong { dst, region, .. }
        | GhostTask::ClampCopy { dst, region } => Some((*dst, *region)),
        GhostTask::Physical { .. } => None,
    }
}

/// Every ghost cell is written exactly once per exchange — the property
/// that makes the receiver's unpack schedule order-independent — and the
/// task regions cover every face-slab ghost cell.
#[test]
fn ghost_writes_are_exactly_once_and_cover_face_slabs() {
    cases(8, 0x5EED_0031, |seed, _rng| {
        for ng in [1i64, 2] {
            let grid = build_grid(seed, ng);
            let plan = GhostExchange::build(&grid, GhostConfig::default());
            let m = grid.params().block_dims;
            let mut writes: HashMap<(BlockId, [i64; 2]), u32> = HashMap::new();
            let mut bump = |dst: BlockId, bx: IBox<2>| {
                for c in bx.iter() {
                    *writes.entry((dst, c)).or_insert(0) += 1;
                }
            };
            for task in plan.phase1().iter().chain(plan.phase2()) {
                match dst_region(task) {
                    Some((dst, region)) => bump(dst, region),
                    None => {
                        let GhostTask::Physical { dst, face, .. } = task else { unreachable!() };
                        bump(*dst, IBox::from_dims(m).outer_face_slab(*face, ng));
                    }
                }
            }
            for (&(dst, c), &n) in &writes {
                assert_eq!(
                    n, 1,
                    "ghost cell {c:?} of block {:?} written {n} times (ng={ng}, seed={seed:#x})",
                    grid.block(dst).key()
                );
            }
            // completeness: every face-slab ghost cell of every block is
            // written by exactly one task
            for id in grid.block_ids() {
                for f in ablock_core::index::Face::all::<2>() {
                    let slab = IBox::from_dims(m).outer_face_slab(f, ng);
                    for c in slab.iter() {
                        assert!(
                            writes.contains_key(&(id, c)),
                            "uncovered ghost cell {c:?} of block {:?} face {f:?} (ng={ng})",
                            grid.block(id).key()
                        );
                    }
                }
            }
        }
    });
}

/// Run the aggregated pack/send/unpack protocol over per-rank replica
/// grids — non-owned interiors poisoned with NaN so any under-staging
/// surfaces immediately — and demand the owned blocks come out
/// byte-for-byte identical to the serial per-face fill.
#[test]
fn aggregated_protocol_matches_serial_fill_bitwise() {
    cases(6, 0x5EED_0032, |seed, _rng| {
        for ng in [1i64, 2] {
            run_protocol_case(seed, ng);
        }
    });
}

fn run_protocol_case(seed: u64, ng: i64) {
    // serial reference
    let mut serial = build_grid(seed, ng);
    let plan = GhostExchange::build(&serial, GhostConfig::default());
    plan.fill(&mut serial);

    let nranks = 2 + (seed % 3) as usize;
    let owner: HashMap<BlockId, usize> = serial
        .block_ids()
        .into_iter()
        .map(|id| (id, owner_of(serial.block(id).key(), seed, nranks)))
        .collect();
    let agg = plan.aggregate(&serial, &|id| owner[&id]);

    // structural invariants: one message per active (from, to) pair per
    // phase, never self-addressed, with consistent segment bookkeeping
    for p in 0..2 {
        let mut pairs = HashSet::new();
        for msg in agg.phase(p) {
            assert_ne!(msg.from, msg.to, "self-addressed pair message");
            assert!(pairs.insert((msg.from, msg.to)), "duplicate pair {:?}", (msg.from, msg.to));
            assert_eq!(msg.values, msg.lens().iter().sum::<usize>());
            for s in &msg.segments {
                assert_eq!(owner[&s.src], msg.from, "segment src not owned by sender");
                assert_eq!(owner[&s.dst], msg.to, "segment dst not owned by receiver");
            }
        }
    }

    // per-rank replicas; poison interiors this rank does not own
    let mut ranks: Vec<BlockGrid<2>> = (0..nranks).map(|_| build_grid(seed, ng)).collect();
    assert!(ranks.iter().all(|g| g.block_ids() == serial.block_ids()), "replicas diverged");
    for (r, g) in ranks.iter_mut().enumerate() {
        for id in g.block_ids() {
            if owner[&id] != r {
                g.block_mut(id).field_mut().for_each_interior(|_, u| u.fill(f64::NAN));
            }
        }
    }

    // the aggregated protocol, phase by phase: pack on the owner, unpack
    // into the receiver's mirror blocks, then each rank runs the tasks
    // whose destination it owns, in plan order (phase-2 packing reads the
    // sender's phase-1-completed ghost slabs, exactly as in `DistSim`)
    for p in 0..2 {
        let staged: Vec<Vec<Vec<f64>>> =
            agg.phase(p).iter().map(|msg| msg.pack_parts(&ranks[msg.from])).collect();
        for (msg, parts) in agg.phase(p).iter().zip(&staged) {
            let lens = msg.lens();
            assert_eq!(lens.len(), parts.len());
            for (l, part) in lens.iter().zip(parts) {
                assert_eq!(*l, part.len(), "unpack split disagrees with packed part");
                assert!(part.iter().all(|v| v.is_finite()), "NaN packed: under-staged source");
            }
            msg.unpack(&mut ranks[msg.to], parts);
        }
        let tasks = if p == 0 { plan.phase1() } else { plan.phase2() };
        for (r, g) in ranks.iter_mut().enumerate() {
            for task in tasks {
                let mine = match task {
                    GhostTask::Physical { dst, .. } | GhostTask::ClampCopy { dst, .. } => {
                        owner[dst] == r
                    }
                    _ => owner[&task_source_box(task).expect("non-physical").0] == r,
                };
                if mine {
                    plan.run_single(g, task);
                }
            }
        }
    }

    // owned blocks: full ghosted storage bitwise-equal to the serial fill
    let m = serial.params().block_dims;
    let full = IBox::from_dims(m).grow(ng);
    for (r, g) in ranks.iter().enumerate() {
        for id in g.block_ids() {
            if owner[&id] != r {
                continue;
            }
            let got = g.block(id).field();
            let want = serial.block(id).field();
            for c in full.iter() {
                let (gc, wc) = (got.cell(c), want.cell(c));
                for (a, b) in gc.iter().zip(wc.iter()) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "rank {r} block {:?} cell {c:?}: {a} vs {b} (ng={ng}, seed={seed:#x})",
                        g.block(id).key()
                    );
                }
            }
        }
    }
}

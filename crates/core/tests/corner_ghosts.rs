//! Corner/edge ghost exchange (paper, *Generalizations*: "the neighbor
//! pointers can be extended to include blocks sharing low dimensional
//! boundaries").
//!
//! With `GhostConfig::corners` the exchange also fills the edge/corner
//! ghost regions from the diagonally-adjacent blocks, enabling unsplit
//! stencils. These tests check exactness on linear fields over the FULL
//! ghosted box (faces *and* corners) in 2-D and 3-D, across refinement
//! levels and periodic wrap, plus the clamp fallbacks at physical corners.

use ablock_core::balance::{adapt, Flag};
use ablock_core::ghost::{fill_ghosts, GhostConfig};
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};

fn cfg() -> GhostConfig {
    GhostConfig::default().with_corners(true)
}

fn fill_linear<const D: usize>(g: &mut BlockGrid<D>, coef: [f64; D], c0: f64) {
    let m = g.params().block_dims;
    let layout = g.layout().clone();
    for id in g.block_ids() {
        let key = g.block(id).key();
        g.block_mut(id).field_mut().for_each_interior(|c, u| {
            let x = layout.cell_center(key, m, c);
            let mut v = c0;
            for d in 0..D {
                v += coef[d] * x[d];
            }
            u[0] = v;
        });
    }
}

/// Check the full ghosted box of every block against the linear field,
/// skipping cells whose position falls outside the physical domain (those
/// are boundary-synthesized, not exchanged).
fn check_full_ghosted<const D: usize>(g: &BlockGrid<D>, coef: [f64; D], c0: f64, tol: f64) {
    let m = g.params().block_dims;
    let layout = g.layout();
    for (_, node) in g.blocks() {
        for c in node.field().shape().ghosted_box().iter() {
            let x = layout.cell_center(node.key(), m, c);
            // skip out-of-domain positions (non-periodic boundaries)
            let mut outside = false;
            for d in 0..D {
                if !layout.periodic(d)
                    && (x[d] < layout.origin[d] || x[d] > layout.origin[d] + layout.size[d])
                {
                    outside = true;
                }
            }
            if outside {
                continue;
            }
            let mut want = c0;
            for d in 0..D {
                // periodic wrap of the sample position
                let mut xd = x[d];
                if layout.periodic(d) {
                    // linear-in-x is incompatible with periodic wrap unless
                    // the coefficient is zero; callers guarantee that
                    xd = x[d];
                }
                want += coef[d] * xd;
            }
            let got = node.field().at(c, 0);
            assert!(
                (got - want).abs() <= tol,
                "block {:?} ghost {c:?}: got {got}, want {want}",
                node.key()
            );
        }
    }
}

#[test]
fn corners_same_level_2d() {
    let mut g = BlockGrid::<2>::new(
        RootLayout::unit([3, 3], Boundary::Outflow),
        GridParams::new([4, 4], 2, 1, 1),
    );
    fill_linear(&mut g, [2.0, -5.0], 1.0);
    fill_ghosts(&mut g, cfg());
    // the center block's ghosts — including all four corners — are exact
    let id = g.find(BlockKey::new(0, [1, 1])).unwrap();
    let node = g.block(id);
    let m = g.params().block_dims;
    for c in node.field().shape().ghosted_box().iter() {
        let x = g.layout().cell_center(node.key(), m, c);
        let want = 2.0 * x[0] - 5.0 * x[1] + 1.0;
        assert!(
            (node.field().at(c, 0) - want).abs() < 1e-12,
            "center block ghost {c:?}"
        );
    }
}

#[test]
fn corners_same_level_3d_full_box() {
    let mut g = BlockGrid::<3>::new(
        RootLayout::unit([3, 3, 3], Boundary::Outflow),
        GridParams::new([4, 4, 4], 2, 1, 1),
    );
    fill_linear(&mut g, [1.0, 2.0, 3.0], -0.5);
    fill_ghosts(&mut g, cfg());
    let id = g.find(BlockKey::new(0, [1, 1, 1])).unwrap();
    let node = g.block(id);
    let m = g.params().block_dims;
    // the fully-interior block: every one of the (4+4)^3 ghosted cells,
    // including the 8 corners and 12 edges, must be exact
    for c in node.field().shape().ghosted_box().iter() {
        let x = g.layout().cell_center(node.key(), m, c);
        let want = x[0] + 2.0 * x[1] + 3.0 * x[2] - 0.5;
        assert!(
            (node.field().at(c, 0) - want).abs() < 1e-12,
            "ghost {c:?}: {} vs {want}",
            node.field().at(c, 0)
        );
    }
}

#[test]
fn corners_across_refinement_2d() {
    let mut g = BlockGrid::<2>::new(
        RootLayout::unit([3, 3], Boundary::Outflow),
        GridParams::new([8, 8], 2, 1, 2),
    );
    let id = g.find(BlockKey::new(0, [1, 1])).unwrap();
    adapt(&mut g, &[(id, Flag::Refine)].into_iter().collect(), Transfer::None);
    fill_linear(&mut g, [3.0, 4.0], 0.25);
    fill_ghosts(&mut g, cfg());
    check_full_ghosted(&g, [3.0, 4.0], 0.25, 1e-12);
}

#[test]
fn corners_periodic_wrap() {
    // constant-per-axis variation only along y (periodic in x would break
    // linearity): field = a*y with periodic x, outflow y
    let mut g = BlockGrid::<2>::new(
        RootLayout::unit([2, 2], Boundary::Outflow).with_axis_boundary(0, Boundary::Periodic),
        GridParams::new([4, 4], 2, 1, 1),
    );
    fill_linear(&mut g, [0.0, 7.0], 0.5);
    fill_ghosts(&mut g, cfg());
    check_full_ghosted(&g, [0.0, 7.0], 0.5, 1e-12);
}

#[test]
fn physical_corner_clamps() {
    // corner regions whose diagonal neighbor is outside the domain fall
    // back to clamped copies: finite values, no panic
    let mut g = BlockGrid::<2>::new(
        RootLayout::unit([2, 2], Boundary::Outflow),
        GridParams::new([4, 4], 2, 1, 1),
    );
    fill_linear(&mut g, [1.0, 1.0], 0.0);
    fill_ghosts(&mut g, cfg());
    let id = g.find(BlockKey::new(0, [0, 0])).unwrap();
    let f = g.block(id).field();
    // the (-1,-1) corner ghost clamps to interior cell (0,0)
    assert_eq!(f.at([-1, -1], 0), f.at([0, 0], 0));
    assert_eq!(f.at([-2, -2], 0), f.at([0, 0], 0));
    assert!(f.as_slice().iter().all(|x| x.is_finite()));
}

#[test]
fn corner_tasks_only_when_enabled() {
    use ablock_core::ghost::GhostExchange;
    let g = BlockGrid::<2>::new(
        RootLayout::unit([3, 3], Boundary::Periodic),
        GridParams::new([4, 4], 2, 1, 1),
    );
    let without = GhostExchange::build(&g, GhostConfig::default()).num_tasks();
    let with = GhostExchange::build(&g, cfg()).num_tasks();
    // 9 blocks x 4 corners extra
    assert_eq!(with, without + 9 * 4);
}

#[test]
fn masked_hole_corners_clamp() {
    // diagonal neighbor is a masked hole: clamp fallback, no panic
    let layout = RootLayout::unit([2, 2], Boundary::Outflow).with_mask(|c| c != [1, 1]);
    let mut g = BlockGrid::new(layout, GridParams::new([4, 4], 2, 1, 1));
    fill_linear(&mut g, [1.0, 2.0], 0.0);
    fill_ghosts(&mut g, cfg());
    let id = g.find(BlockKey::new(0, [0, 0])).unwrap();
    // (0,0)'s (+,+) corner points into the hole
    let f = g.block(id).field();
    assert_eq!(f.at([4, 4], 0), f.at([3, 3], 0));
    ablock_core::verify::check_grid(&g).unwrap();
}

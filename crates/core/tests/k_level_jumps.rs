//! The paper's *Generalizations* section end-to-end: refinement level
//! differences greater than one (`max_level_jump = 2`), exercised through
//! adaptation, neighbor bounds, and ghost exchange with ratio-4
//! restriction/prolongation.

use ablock_core::balance::{adapt, Flag};
use ablock_core::ghost::{fill_ghosts, GhostConfig};
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::index::{Face, IBox};
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};
use ablock_core::verify;

/// Two roots; drive the left one to level 2 while the right stays at 0.
fn two_level_jump_grid() -> BlockGrid<2> {
    let mut g = BlockGrid::<2>::new(
        RootLayout::unit([2, 1], Boundary::Outflow),
        GridParams::new([8, 8], 2, 1, 3).with_max_jump(2),
    );
    let a = g.find(BlockKey::new(0, [0, 0])).unwrap();
    adapt(&mut g, &[(a, Flag::Refine)].into_iter().collect(), Transfer::None);
    // refine the two children hugging the shared face
    let flags: std::collections::HashMap<_, _> = g
        .blocks()
        .filter(|(_, n)| n.key().level == 1 && n.key().coords[0] == 1)
        .map(|(id, _)| (id, Flag::Refine))
        .collect();
    let rep = adapt(&mut g, &flags, Transfer::None);
    assert_eq!(rep.refined_cascade, 0, "k=2 must not cascade here");
    g
}

#[test]
fn structure_holds_with_k2() {
    let g = two_level_jump_grid();
    verify::check_grid(&g).unwrap();
    // the right root now sees a mix: 2 level-1 blocks? no — left root's
    // face children at L1 were both refined, so the face carries 4 L2
    // blocks; bound is 2^(2*(2-1)) = 4
    let b = g.find(BlockKey::new(0, [1, 0])).unwrap();
    let conn = g.block(b).face(Face::new(0, false)).ids();
    assert_eq!(conn.len(), 4);
    let levels: Vec<u8> = conn.iter().map(|&i| g.block(i).key().level).collect();
    assert!(levels.iter().all(|&l| l == 2));
    // and each of those sees the root directly (a 2-level jump pointer)
    for &id in conn {
        assert_eq!(g.block(id).face(Face::new(0, true)).ids(), &[b]);
        assert_eq!(g.face_level_jump(id, Face::new(0, true)), -2);
    }
}

#[test]
fn ghost_exchange_ratio_4_exact_on_linear() {
    let mut g = two_level_jump_grid();
    let m = g.params().block_dims;
    let layout = g.layout().clone();
    // linear field everywhere
    for id in g.block_ids() {
        let key = g.block(id).key();
        g.block_mut(id).field_mut().for_each_interior(|c, u| {
            let x = layout.cell_center(key, m, c);
            u[0] = 3.0 * x[0] - 2.0 * x[1] + 0.5;
        });
    }
    fill_ghosts(&mut g, GhostConfig::default());
    // check all interior-facing ghosts, including across the 2-level jump
    let ng = g.params().nghost;
    for (_, node) in g.blocks() {
        for f in Face::all::<2>() {
            if node.face(f).is_boundary() {
                continue;
            }
            let slab = IBox::from_dims(m).outer_face_slab(f, ng);
            for c in slab.iter() {
                let x = layout.cell_center(node.key(), m, c);
                let want = 3.0 * x[0] - 2.0 * x[1] + 0.5;
                let got = node.field().at(c, 0);
                assert!(
                    (got - want).abs() < 1e-12,
                    "block {:?} ghost {c:?}: {got} vs {want}",
                    node.key()
                );
            }
        }
    }
}

#[test]
fn k2_coarsen_respects_looser_bound() {
    let mut g = two_level_jump_grid();
    // coarsening the left root's L2 children back to L1 is legal (jump
    // returns to 1); coarsening all the way to L0 in one go is impossible
    // because groups coarsen one level at a time anyway.
    let flags: std::collections::HashMap<_, _> = g
        .blocks()
        .filter(|(_, n)| n.key().level == 2)
        .map(|(id, _)| (id, Flag::Coarsen))
        .collect();
    let rep = adapt(&mut g, &flags, Transfer::None);
    assert_eq!(rep.coarsened_groups, 2);
    verify::check_grid(&g).unwrap();
    assert_eq!(g.max_level_present(), 1);
}

#[test]
fn k1_vs_k2_block_counts() {
    // identical flag sequences; k=2 ends with strictly fewer blocks
    let run = |k: u8| {
        let mut g = BlockGrid::<2>::new(
            RootLayout::unit([4, 1], Boundary::Outflow),
            GridParams::new([8, 8], 2, 1, 4).with_max_jump(k),
        );
        for _ in 0..3 {
            let id = g.find_leaf_at([1e-9, 1e-9]).unwrap();
            adapt(&mut g, &[(id, Flag::Refine)].into_iter().collect(), Transfer::None);
        }
        verify::check_grid(&g).unwrap();
        g.num_blocks()
    };
    let n1 = run(1);
    let n2 = run(2);
    assert!(n2 <= n1, "k=2 cannot need more blocks: {n2} vs {n1}");
}

#[test]
fn conservative_transfer_across_k2_adapts() {
    let mut g = BlockGrid::<2>::new(
        RootLayout::unit([2, 1], Boundary::Periodic),
        GridParams::new([8, 8], 2, 1, 3).with_max_jump(2),
    );
    let layout = g.layout().clone();
    let m = g.params().block_dims;
    for id in g.block_ids() {
        let key = g.block(id).key();
        g.block_mut(id).field_mut().for_each_interior(|c, u| {
            let x = layout.cell_center(key, m, c);
            u[0] = (7.3 * x[0]).sin() + (3.1 * x[1]).cos();
        });
    }
    let total = |g: &BlockGrid<2>| -> f64 {
        g.blocks()
            .map(|(_, n)| {
                let vol = 0.25f64.powi(n.key().level as i32);
                n.field().interior_sum(0) * vol
            })
            .sum()
    };
    let before = total(&g);
    let t = Transfer::Conservative(ablock_core::ops::ProlongOrder::LinearMinmod);
    let a = g.find(BlockKey::new(0, [0, 0])).unwrap();
    adapt(&mut g, &[(a, Flag::Refine)].into_iter().collect(), t);
    let kids: std::collections::HashMap<_, _> = g
        .blocks()
        .filter(|(_, n)| n.key().level == 1)
        .map(|(id, _)| (id, Flag::Refine))
        .collect();
    adapt(&mut g, &kids, t);
    verify::check_grid(&g).unwrap();
    let after = total(&g);
    assert!(
        (before - after).abs() < 1e-10 * before.abs().max(1.0),
        "conservation broke: {before} vs {after}"
    );
}

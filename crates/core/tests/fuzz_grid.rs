//! Model-based structural fuzzing of [`ablock_core::grid::BlockGrid`]
//! (DESIGN.md §12): random refine/coarsen/adapt/remask/checkpoint/ghost/
//! step scripts run against the grid and the flat reference model in
//! lockstep, with the full from-scratch oracle stack after every command.
//!
//! A failure panics with a copy-pasteable replay line; run it via
//! `cargo run --release -p ablock-bench --bin abl_fuzz -- --replay …`.

use ablock_testkit::{
    parse_script, run_fuzz, run_script, FuzzConfig, FuzzOutcome,
};

fn expect_pass<const D: usize>(cfg: &FuzzConfig) -> u64 {
    match run_fuzz::<D>(cfg) {
        FuzzOutcome::Pass { sequences, commands } => {
            assert_eq!(sequences, cfg.sequences);
            commands
        }
        FuzzOutcome::Fail(f) => panic!(
            "{}-D fuzz failed after shrinking to {} command(s)\n  error: {}\n  replay: {}",
            D, f.shrunk_len, f.error, f.replay
        ),
    }
}

#[test]
fn fuzz_grid_2d() {
    let commands = expect_pass::<2>(&FuzzConfig {
        sequences: 60,
        base_seed: 0x5EED_0010,
        max_cmds: 24,
        sabotage: false,
        masked: false,
    });
    assert!(commands >= 60, "degenerate generation: {commands} commands");
}

#[test]
fn fuzz_grid_3d() {
    expect_pass::<3>(&FuzzConfig {
        sequences: 25,
        base_seed: 0x5EED_0011,
        max_cmds: 16,
        sabotage: false,
        masked: false,
    });
}

/// The acceptance gate for the harness itself: a deliberately seeded
/// invariant break (the `testonly_corrupt_face` hook) must be caught by
/// the oracle stack on the same command, shrink to at most 5 commands,
/// and come back with a replay line that reproduces the failure.
#[test]
fn sabotage_is_caught_and_shrunk() {
    for (i, base) in [0x5EED_0012u64, 0x5EED_0013, 0x5EED_0014].iter().enumerate() {
        let cfg = FuzzConfig { sequences: 2, base_seed: *base, max_cmds: 20, sabotage: true, masked: false };
        match run_fuzz::<2>(&cfg) {
            FuzzOutcome::Pass { .. } => panic!("sabotaged run {i} did not fail"),
            FuzzOutcome::Fail(f) => {
                println!("shrunk sabotage replay: {}", f.replay);
                assert!(
                    f.shrunk_len <= 5,
                    "run {i}: shrunk to {} commands (> 5): {}",
                    f.shrunk_len,
                    f.shrunk
                );
                assert!(f.replay.contains("--replay 2"), "{}", f.replay);
                assert!(f.replay.contains(&f.shrunk), "{}", f.replay);
                // the printed script must parse and replay to the failure
                let script = parse_script(&f.shrunk).unwrap();
                assert!(
                    run_script::<2>(f.seed, &script).is_err(),
                    "run {i}: shrunk script no longer fails"
                );
            }
        }
    }
}

/// Shrinking on a real (non-sabotage) failure predicate over grid scripts
/// stays deterministic: same seed, same failing script, same minimum.
#[test]
fn fuzz_failure_shrinks_deterministically() {
    let cfg = FuzzConfig { sequences: 1, base_seed: 0x5EED_0015, max_cmds: 12, sabotage: true, masked: false };
    let (a, b) = (run_fuzz::<2>(&cfg), run_fuzz::<2>(&cfg));
    match (a, b) {
        (FuzzOutcome::Fail(fa), FuzzOutcome::Fail(fb)) => {
            assert_eq!(fa.shrunk, fb.shrunk);
            assert_eq!(fa.replay, fb.replay);
        }
        _ => panic!("sabotaged runs must fail"),
    }
}

//! Ghost-cell exchange.
//!
//! Every block carries `nghost` layers of ghost cells mirroring its
//! neighbors' interiors (paper, *Adaptive Blocks*): a same-level neighbor
//! is copied directly, a finer neighbor is **restricted** (conservative
//! averaging), a coarser neighbor is **prolonged** (constant or limited
//! linear interpolation), and physical domain faces are synthesized from
//! the boundary condition.
//!
//! The exchange is driven by a cached **plan** ([`GhostExchange`]): a flat
//! task list recomputed only when the grid adapts, so the per-step cost is
//! pure data movement amortized over whole faces — the paper's point about
//! amortizing communication over blocks rather than cells.
//!
//! Tasks execute in two phases:
//!
//! * **phase 1** — physical boundaries, same-level copies, restrictions.
//!   These read only interiors, so they are order-independent.
//! * **phase 2** — prolongations. These may also read the coarse block's
//!   ghost slab facing the fine block (restriction-filled in phase 1) for
//!   centered slopes at the refinement boundary.
//!
//! Slope stencils in phase 2 are confined to `interior ∪ that one slab`;
//! at transverse block edges the operator falls back to one-sided slopes,
//! which keeps phase 2 order-independent as well (no prolongation ever
//! reads another prolongation's output).

use crate::field::FieldBlock;
use crate::grid::{BlockGrid, FaceConn};
use crate::index::{Face, IBox, IVec};
use crate::key::BlockKey;
use crate::layout::{Boundary, Resolved};
use crate::ops::{prolong, restrict_avg, ProlongOrder};
use crate::arena::BlockId;

/// Context handed to custom boundary fills.
pub struct BoundaryCtx<'a, const D: usize> {
    /// Block whose ghosts are being filled.
    pub key: BlockKey<D>,
    /// Domain face being synthesized.
    pub face: Face,
    /// Boundary tag from [`Boundary::Custom`].
    pub tag: u16,
    /// Physical center of the ghost cell being filled.
    pub position: [f64; D],
    /// Nearest interior cell's state (often the starting point).
    pub interior: &'a [f64],
}

/// One ghost-fill task. All regions are in the destination block's
/// interior-relative coordinates; field meanings are given per variant.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)]
pub enum GhostTask<const D: usize> {
    /// Same-level copy: `dst[region] = src[region + shift]`.
    Same { dst: BlockId, src: BlockId, region: IBox<D>, shift: IVec<D> },
    /// Restriction from a finer neighbor: destination cell `c` averages the
    /// `ratio^D` source cells at `ratio*c + q`.
    Restrict { dst: BlockId, src: BlockId, region: IBox<D>, q: IVec<D>, ratio: i64 },
    /// Prolongation from a coarser neighbor: destination cell `c` reads
    /// source cell `(c+p) div ratio - a`; `valid` bounds slope stencils.
    Prolong {
        dst: BlockId,
        src: BlockId,
        region: IBox<D>,
        p: IVec<D>,
        a: IVec<D>,
        ratio: i64,
        valid: IBox<D>,
    },
    /// Physical boundary synthesis over the face's ghost slab.
    Physical { dst: BlockId, face: Face, bc: Boundary },
    /// Fill a ghost region by clamped copy of the nearest interior cell
    /// (corner regions bordering physical boundaries, and fallbacks where
    /// a diagonal refinement jump exceeds what restriction can source).
    ClampCopy { dst: BlockId, region: IBox<D> },
}

/// Options controlling ghost synthesis.
#[derive(Clone, Debug)]
pub struct GhostConfig {
    /// Interpolation order for coarse→fine ghost fill.
    pub prolong_order: ProlongOrder,
    /// Variable index triples forming spatial vectors (momentum, B, …);
    /// reflecting boundaries flip the component normal to the face.
    /// Entries beyond `D` components are ignored for lower dimensions.
    pub vector_components: Vec<[usize; 3]>,
    /// Also fill edge/corner ghost regions from the blocks sharing those
    /// lower-dimensional boundaries (the paper's extended-pointer
    /// generalization). Needed by unsplit/diagonal stencils; the default
    /// dimension-by-dimension solvers do not require it.
    pub corners: bool,
}

impl Default for GhostConfig {
    fn default() -> Self {
        GhostConfig {
            prolong_order: ProlongOrder::LinearMinmod,
            vector_components: Vec::new(),
            corners: false,
        }
    }
}

impl GhostConfig {
    /// Builder: enable corner/edge ghost fill.
    pub fn with_corners(mut self, on: bool) -> Self {
        self.corners = on;
        self
    }
}

/// A cached exchange plan for one grid topology.
///
/// The plan records the grid's [topology epoch](BlockGrid::epoch) it was
/// built at; [`GhostExchange::is_current`] tells a cache holder whether
/// the plan still matches the grid without comparing any tasks.
pub struct GhostExchange<const D: usize> {
    phase1: Vec<GhostTask<D>>,
    phase2: Vec<GhostTask<D>>,
    config: GhostConfig,
    epoch: u64,
}

impl<const D: usize> GhostExchange<D> {
    /// Build the plan for the grid's current topology.
    pub fn build(grid: &BlockGrid<D>, config: GhostConfig) -> Self {
        let m = grid.params().block_dims;
        let ng = grid.params().nghost;
        let interior = IBox::from_dims(m);
        let mut phase1 = Vec::new();
        let mut phase2 = Vec::new();

        for (id, node) in grid.blocks() {
            let kb = node.key();
            if config.corners {
                emit_corner_tasks(grid, id, kb, &mut phase1, &mut phase2);
            }
            for f in Face::all::<D>() {
                match node.face(f) {
                    FaceConn::Boundary(bc) => {
                        phase1.push(GhostTask::Physical { dst: id, face: f, bc: *bc });
                    }
                    FaceConn::Blocks(list) => {
                        let ghost_slab = interior.outer_face_slab(f, ng);
                        for &nid in list {
                            let nk = grid.block(nid).key();
                            let nu = unwrapped_neighbor_key(kb, f, nk);
                            let lb = kb.level as i32;
                            let ln = nk.level as i32;
                            if ln == lb {
                                // shift = (b_glob - n_glob) in cells
                                let mut shift = [0i64; D];
                                for d in 0..D {
                                    shift[d] = (kb.coords[d] - nu.coords[d]) * m[d];
                                }
                                phase1.push(GhostTask::Same {
                                    dst: id,
                                    src: nid,
                                    region: ghost_slab,
                                    shift,
                                });
                            } else if ln > lb {
                                // finer: restrict; clip slab to nf coverage
                                let j = (ln - lb) as u32;
                                let r = 1i64 << j;
                                let mut cov_lo = [0i64; D];
                                let mut cov_hi = [0i64; D];
                                let mut q = [0i64; D];
                                for d in 0..D {
                                    // nf covers fine cells [nu*m, (nu+1)*m);
                                    // in level-lb cells: divide by r
                                    cov_lo[d] = nu.coords[d] * m[d] / r - kb.coords[d] * m[d];
                                    cov_hi[d] =
                                        (nu.coords[d] + 1) * m[d] / r - kb.coords[d] * m[d];
                                    q[d] = r * kb.coords[d] * m[d] - nu.coords[d] * m[d];
                                }
                                let region =
                                    ghost_slab.intersect(&IBox::new(cov_lo, cov_hi));
                                if !region.is_empty() {
                                    phase1.push(GhostTask::Restrict {
                                        dst: id,
                                        src: nid,
                                        region,
                                        q,
                                        ratio: r,
                                    });
                                }
                            } else {
                                // coarser: prolong in phase 2
                                let j = (lb - ln) as u32;
                                let r = 1i64 << j;
                                let mut p = [0i64; D];
                                let mut a = [0i64; D];
                                for d in 0..D {
                                    p[d] = kb.coords[d] * m[d];
                                    a[d] = nu.coords[d] * m[d];
                                }
                                // slope stencils may read the coarse block's
                                // ghost slab facing back toward us (filled by
                                // restriction in phase 1)
                                let toward_us = f.opposite();
                                let mut valid = interior;
                                let d = toward_us.dim as usize;
                                if toward_us.high {
                                    valid.hi[d] += ng;
                                } else {
                                    valid.lo[d] -= ng;
                                }
                                phase2.push(GhostTask::Prolong {
                                    dst: id,
                                    src: nid,
                                    region: ghost_slab,
                                    p,
                                    a,
                                    ratio: r,
                                    valid,
                                });
                            }
                        }
                    }
                }
            }
        }
        GhostExchange { phase1, phase2, config, epoch: grid.epoch() }
    }

    /// The grid topology epoch this plan was built at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True when the plan still matches the grid's topology (no refine,
    /// coarsen, or explicit epoch bump since the plan was built).
    pub fn is_current(&self, grid: &BlockGrid<D>) -> bool {
        self.epoch == grid.epoch()
    }

    /// The config the plan was built with.
    pub fn config(&self) -> &GhostConfig {
        &self.config
    }

    /// Number of tasks (both phases).
    pub fn num_tasks(&self) -> usize {
        self.phase1.len() + self.phase2.len()
    }

    /// Total f64s moved per fill — the communication volume a distributed
    /// run would send; used by the BSP cost model.
    pub fn comm_volume(&self, grid: &BlockGrid<D>) -> usize {
        let nvar = grid.params().nvar;
        self.phase1
            .iter()
            .chain(self.phase2.iter())
            .map(|t| match t {
                GhostTask::Same { region, .. } => region.volume() as usize * nvar,
                GhostTask::Restrict { region, .. } => region.volume() as usize * nvar,
                GhostTask::Prolong { region, .. } => region.volume() as usize * nvar,
                GhostTask::Physical { .. } | GhostTask::ClampCopy { .. } => 0,
            })
            .sum()
    }

    /// Tasks of phase 1 (boundary, same-level, restriction).
    pub fn phase1(&self) -> &[GhostTask<D>] {
        &self.phase1
    }

    /// Tasks of phase 2 (prolongation).
    pub fn phase2(&self) -> &[GhostTask<D>] {
        &self.phase2
    }

    /// Restrict the plan to the tasks a **level-`level` sweep** needs
    /// (the per-substep ghost fill of the subcycled time stepper):
    ///
    /// * every task whose destination block sits on `level`, plus
    /// * the phase-1 `Restrict` tasks refilling the ghost slabs of the
    ///   *coarser* blocks that level-`level` prolongations read — a
    ///   prolongation's `valid` box covers the source's interior and the
    ///   one ghost slab facing the fine destination, and that slab is
    ///   restriction-filled, so it must be refreshed from current fine
    ///   data before the prolongation runs.
    ///
    /// Faces between two level-`level` blocks are covered by the `Same`
    /// tasks kept above; faces toward finer levels by the kept `Restrict`
    /// tasks; faces toward coarser levels by the kept `Prolong` tasks
    /// (whose coarse sources the caller time-interpolates). Task order
    /// within each phase is preserved, so running the sub-plan writes the
    /// same values the full plan would (for the destinations it keeps).
    /// The sub-plan inherits this plan's epoch and config.
    pub fn sublevel_plan(&self, grid: &BlockGrid<D>, level: u8) -> GhostExchange<D> {
        let lvl = |id: BlockId| grid.block(id).key().level;
        let phase2: Vec<GhostTask<D>> = self
            .phase2
            .iter()
            .filter(|t| lvl(task_dst(t)) == level)
            .cloned()
            .collect();
        // coarse blocks whose ghost slab a kept prolongation may read
        let mut p2src: Vec<BlockId> = phase2
            .iter()
            .filter_map(|t| match t {
                GhostTask::Prolong { src, .. } => Some(*src),
                _ => None,
            })
            .collect();
        p2src.sort();
        p2src.dedup();
        let phase1: Vec<GhostTask<D>> = self
            .phase1
            .iter()
            .filter(|t| {
                let dst = task_dst(t);
                lvl(dst) == level
                    || (matches!(t, GhostTask::Restrict { .. })
                        && p2src.binary_search(&dst).is_ok())
            })
            .cloned()
            .collect();
        GhostExchange { phase1, phase2, config: self.config.clone(), epoch: self.epoch }
    }

    /// Execute the plan serially.
    pub fn fill(&self, grid: &mut BlockGrid<D>) {
        self.fill_with(grid, &|_ctx, _cell, u| {
            // default custom handler: zero-gradient
            let _ = u;
        });
    }

    /// Execute the plan, synthesizing [`Boundary::Custom`] ghosts with
    /// `custom(ctx, ghost_cell_coords, state)`. The state arrives
    /// pre-filled with the nearest interior cell (outflow) and may be
    /// overwritten.
    pub fn fill_with(
        &self,
        grid: &mut BlockGrid<D>,
        custom: &dyn Fn(&BoundaryCtx<D>, IVec<D>, &mut [f64]),
    ) {
        for t in &self.phase1 {
            self.run_task(grid, t, custom);
        }
        for t in &self.phase2 {
            self.run_task(grid, t, custom);
        }
    }

    /// Execute one task of this plan with default (outflow) custom-boundary
    /// handling. Used by the distributed halo exchange once remote source
    /// data has been staged into the local copy of the source block.
    pub fn run_single(&self, grid: &mut BlockGrid<D>, task: &GhostTask<D>) {
        self.run_task(grid, task, &|_, _, _| {});
    }

    /// Execute one task with a custom-boundary synthesizer.
    pub fn run_single_with(
        &self,
        grid: &mut BlockGrid<D>,
        task: &GhostTask<D>,
        custom: &dyn Fn(&BoundaryCtx<D>, IVec<D>, &mut [f64]),
    ) {
        self.run_task(grid, task, custom);
    }

    fn run_task(
        &self,
        grid: &mut BlockGrid<D>,
        task: &GhostTask<D>,
        custom: &dyn Fn(&BoundaryCtx<D>, IVec<D>, &mut [f64]),
    ) {
        match *task {
            GhostTask::Same { dst, src, region, shift } => {
                if dst == src {
                    copy_region_within(grid.block_mut(dst).field_mut(), region, shift);
                } else {
                    let (db, sb) = grid.block2_mut(dst, src);
                    db.field_mut().copy_region_from(region, sb.field(), shift);
                }
            }
            GhostTask::Restrict { dst, src, region, q, ratio } => {
                let (db, sb) = grid.block2_mut(dst, src);
                restrict_avg(db.field_mut(), region, sb.field(), q, ratio);
            }
            GhostTask::Prolong { dst, src, region, p, a, ratio, valid } => {
                let (db, sb) = grid.block2_mut(dst, src);
                prolong(
                    db.field_mut(),
                    region,
                    sb.field(),
                    p,
                    a,
                    ratio,
                    self.config.prolong_order,
                    valid,
                );
            }
            GhostTask::Physical { dst, face, bc } => {
                self.fill_physical(grid, dst, face, bc, custom);
            }
            GhostTask::ClampCopy { dst, region } => {
                let m = grid.params().block_dims;
                let field = grid.block_mut(dst).field_mut();
                for c in region.iter() {
                    let mut src = c;
                    for d in 0..D {
                        src[d] = src[d].clamp(0, m[d] - 1);
                    }
                    let u = field.cell(src).to_vec();
                    field.set_cell(c, &u);
                }
            }
        }
    }

    fn fill_physical(
        &self,
        grid: &mut BlockGrid<D>,
        dst: BlockId,
        face: Face,
        bc: Boundary,
        custom: &dyn Fn(&BoundaryCtx<D>, IVec<D>, &mut [f64]),
    ) {
        let m = grid.params().block_dims;
        let ng = grid.params().nghost;
        let key = grid.block(dst).key();
        let layout = grid.layout().clone();
        let field = grid.block_mut(dst).field_mut();
        synthesize_boundary(&layout, m, ng, key, field, face, bc, &self.config, custom);
    }
}

/// Fill one physical-boundary ghost slab of one block. Free function so
/// both the serial plan execution and the shared-memory parallel executor
/// (`ablock-par`) share the exact same boundary semantics.
#[allow(clippy::too_many_arguments)]
pub fn synthesize_boundary<const D: usize>(
    layout: &crate::layout::RootLayout<D>,
    m: IVec<D>,
    ng: i64,
    key: BlockKey<D>,
    field: &mut FieldBlock<D>,
    face: Face,
    bc: Boundary,
    config: &GhostConfig,
    custom: &dyn Fn(&BoundaryCtx<D>, IVec<D>, &mut [f64]),
) {
    let nvar = field.shape().nvar;
    let d = face.dim as usize;
    let interior = IBox::from_dims(m);
    let slab = interior.outer_face_slab(face, ng);
    let mut state = vec![0.0; nvar];
    for c in slab.iter() {
        // nearest / mirrored interior partner along the normal
        let mut near = c;
        near[d] = near[d].clamp(0, m[d] - 1);
        let mut mirror = c;
        mirror[d] = if face.high { 2 * m[d] - 1 - c[d] } else { -1 - c[d] };
        match bc {
            Boundary::Outflow => {
                let u = field.cell(near).to_vec();
                field.set_cell(c, &u);
            }
            Boundary::Reflect => {
                state.copy_from_slice(&field.cell(mirror));
                for vc in &config.vector_components {
                    if d < 3 {
                        let v = vc[d];
                        if v < nvar {
                            state[v] = -state[v];
                        }
                    }
                }
                field.set_cell(c, &state);
            }
            Boundary::Custom(tag) => {
                state.copy_from_slice(&field.cell(near));
                let pos = layout.cell_center(key, m, c);
                {
                    let interior_state = field.cell(near);
                    let ctx = BoundaryCtx {
                        key,
                        face,
                        tag,
                        position: pos,
                        interior: &interior_state,
                    };
                    custom(&ctx, c, &mut state);
                }
                field.set_cell(c, &state);
            }
            Boundary::Periodic => {
                unreachable!("periodic faces resolve to block connections")
            }
        }
    }
}

/// All diagonal direction vectors (two or more non-zero components) in
/// `{-1,0,1}^D` — the edge/corner neighbors of the paper's extended
/// pointer generalization.
fn diagonal_offsets<const D: usize>() -> Vec<IVec<D>> {
    let mut out = Vec::new();
    let n = 3usize.pow(D as u32);
    for code in 0..n {
        let mut s = [0i64; D];
        let mut c = code;
        let mut nonzero = 0;
        for x in s.iter_mut() {
            *x = (c % 3) as i64 - 1;
            c /= 3;
            if *x != 0 {
                nonzero += 1;
            }
        }
        if nonzero >= 2 {
            out.push(s);
        }
    }
    out
}

/// Collect the leaves descending from `key` that touch the side of `key`
/// selected by `s` (for each dim with `s[d] != 0`, the child on the
/// `-s[d]` side — the side facing back toward the querying block).
fn collect_leaves_on_corner<const D: usize>(
    grid: &BlockGrid<D>,
    key: BlockKey<D>,
    s: IVec<D>,
    out: &mut Vec<(BlockKey<D>, BlockId)>,
) {
    if let Some(id) = grid.find(key) {
        out.push((key, id));
        return;
    }
    for ci in 0..(1usize << D) {
        let mut ok = true;
        for d in 0..D {
            if s[d] == 1 && (ci >> d) & 1 != 0 {
                ok = false; // want the low-side child
            }
            if s[d] == -1 && (ci >> d) & 1 == 0 {
                ok = false; // want the high-side child
            }
        }
        if ok {
            collect_leaves_on_corner(grid, key.child(ci), s, out);
        }
    }
}

/// Emit the ghost tasks for every edge/corner region of block `id`.
fn emit_corner_tasks<const D: usize>(
    grid: &BlockGrid<D>,
    id: BlockId,
    kb: BlockKey<D>,
    phase1: &mut Vec<GhostTask<D>>,
    phase2: &mut Vec<GhostTask<D>>,
) {
    let m = grid.params().block_dims;
    let ng = grid.params().nghost;
    let interior = IBox::from_dims(m);
    for sdir in diagonal_offsets::<D>() {
        // the corner ghost region selected by sdir
        let mut region = interior;
        for d in 0..D {
            match sdir[d] {
                1 => {
                    region.lo[d] = m[d];
                    region.hi[d] = m[d] + ng;
                }
                -1 => {
                    region.lo[d] = -ng;
                    region.hi[d] = 0;
                }
                _ => {}
            }
        }
        let target = kb.offset(sdir);
        match grid.layout().resolve(target) {
            Resolved::Outside(..) => {
                phase1.push(GhostTask::ClampCopy { dst: id, region });
            }
            Resolved::InDomain(nk) => {
                if let Some((nid, found_key)) = grid.find_covering(nk) {
                    // same level or coarser leaf covers the whole region
                    let nu = if found_key.level == kb.level {
                        target
                    } else {
                        target.at_coarser_level(found_key.level)
                    };
                    if found_key.level == kb.level {
                        let mut shift = [0i64; D];
                        for d in 0..D {
                            shift[d] = (kb.coords[d] - nu.coords[d]) * m[d];
                        }
                        phase1.push(GhostTask::Same { dst: id, src: nid, region, shift });
                    } else {
                        let j = (kb.level - found_key.level) as u32;
                        let r = 1i64 << j;
                        let mut p = [0i64; D];
                        let mut a = [0i64; D];
                        for d in 0..D {
                            p[d] = kb.coords[d] * m[d];
                            a[d] = nu.coords[d] * m[d];
                        }
                        phase2.push(GhostTask::Prolong {
                            dst: id,
                            src: nid,
                            region,
                            p,
                            a,
                            ratio: r,
                            valid: interior,
                        });
                    }
                } else {
                    // subdivided: restrict from each fine leaf on the
                    // corner side
                    let mut leaves = Vec::new();
                    collect_leaves_on_corner(grid, nk, sdir, &mut leaves);
                    leaves.sort_by_key(|(k, _)| *k);
                    for (fk, fid) in leaves {
                        let j = (fk.level - kb.level) as u32;
                        let r = 1i64 << j;
                        // translate the fine leaf adjacent to kb (undo wrap)
                        let anc = fk.at_coarser_level(kb.level);
                        let mut fu = fk.coords;
                        for d in 0..D {
                            fu[d] += (target.coords[d] - anc.coords[d]) << j;
                        }
                        let mut cov_lo = [0i64; D];
                        let mut cov_hi = [0i64; D];
                        let mut q = [0i64; D];
                        for d in 0..D {
                            cov_lo[d] = fu[d] * m[d] / r - kb.coords[d] * m[d];
                            cov_hi[d] = (fu[d] + 1) * m[d] / r - kb.coords[d] * m[d];
                            q[d] = r * kb.coords[d] * m[d] - fu[d] * m[d];
                        }
                        let sub = region.intersect(&IBox::new(cov_lo, cov_hi));
                        if sub.is_empty() {
                            continue;
                        }
                        if m.iter().any(|&md| md < ng * r) {
                            // fine interior too shallow to source the
                            // ratio-r restriction: degrade gracefully
                            phase1.push(GhostTask::ClampCopy { dst: id, region: sub });
                        } else {
                            phase1.push(GhostTask::Restrict {
                                dst: id,
                                src: fid,
                                region: sub,
                                q,
                                ratio: r,
                            });
                        }
                    }
                }
            }
        }
    }
}

/// Copy `region` of a block's own field from `region + shift` (periodic
/// self-neighbor in single-root axes). Ghost destinations never alias the
/// interior source, but Rust cannot see that, so stage through a buffer.
fn copy_region_within<const D: usize>(field: &mut FieldBlock<D>, region: IBox<D>, shift: IVec<D>) {
    if region.is_empty() {
        return;
    }
    let shape = *field.shape();
    let ps = shape.plane_stride();
    // Plane by plane, x-row by x-row: rows are contiguous in each plane.
    let mut row = region;
    row.hi[0] = row.lo[0] + 1;
    let row_len = (region.hi[0] - region.lo[0]) as usize;
    let mut buf = vec![0.0; region.volume() as usize * shape.nvar];
    let data = field.as_mut_slice();
    let mut k = 0;
    for c in row.iter() {
        let mut sc = c;
        for d in 0..D {
            sc[d] += shift[d];
        }
        let mut si = shape.lin(sc);
        for _ in 0..shape.nvar {
            buf[k..k + row_len].copy_from_slice(&data[si..si + row_len]);
            si += ps;
            k += row_len;
        }
    }
    let mut k = 0;
    for c in row.iter() {
        let mut di = shape.lin(c);
        for _ in 0..shape.nvar {
            data[di..di + row_len].copy_from_slice(&buf[k..k + row_len]);
            di += ps;
            k += row_len;
        }
    }
}

/// The neighbor's key translated to sit adjacent to `kb` across `f`,
/// undoing any periodic wrap: the returned key may have out-of-domain
/// coordinates but correct *relative* position, which is what the copy
/// offset arithmetic needs.
fn unwrapped_neighbor_key<const D: usize>(
    kb: BlockKey<D>,
    f: Face,
    nk: BlockKey<D>,
) -> BlockKey<D> {
    let adj = kb.face_neighbor(f); // unwrapped, level of kb
    if nk.level == kb.level {
        return adj;
    }
    if nk.level < kb.level {
        return adj.at_coarser_level(nk.level);
    }
    // finer: translate nk by the wrap offset of its level-kb ancestor
    let j = (nk.level - kb.level) as u32;
    let anc = nk.at_coarser_level(kb.level);
    let mut c = nk.coords;
    for d in 0..D {
        c[d] += (adj.coords[d] - anc.coords[d]) << j;
    }
    BlockKey::new(nk.level, c)
}

/// Convenience: build a plan and fill once (small tests / examples).
pub fn fill_ghosts<const D: usize>(grid: &mut BlockGrid<D>, config: GhostConfig) {
    GhostExchange::build(grid, config).fill(grid);
}

// ---------------------------------------------------------------------------
// per-rank-pair aggregation
// ---------------------------------------------------------------------------

/// The source cells a ghost task reads, in the **source** block's
/// interior-relative coordinates, as `(dst, src, src_box)`. `None` for
/// tasks without a source block ([`GhostTask::Physical`],
/// [`GhostTask::ClampCopy`]). This is the region a distributed runtime
/// must stage into its mirror copy of `src` before the task can run —
/// and therefore the region aggregation packs into pair buffers.
pub fn task_source_box<const D: usize>(
    task: &GhostTask<D>,
) -> Option<(BlockId, BlockId, IBox<D>)> {
    match task {
        GhostTask::Same { dst, src, region, shift } => Some((*dst, *src, region.shift(*shift))),
        GhostTask::Restrict { dst, src, region, q, ratio } => {
            Some((*dst, *src, region.scale(*ratio).shift(*q)))
        }
        GhostTask::Prolong { dst, src, region, p, a, ratio, valid } => {
            let mut lo = [0i64; D];
            let mut hi = [0i64; D];
            for d in 0..D {
                lo[d] = (region.lo[d] + p[d]).div_euclid(*ratio) - a[d];
                hi[d] = (region.hi[d] - 1 + p[d]).div_euclid(*ratio) - a[d] + 1;
            }
            let bx = IBox::new(lo, hi).grow(1).intersect(valid);
            Some((*dst, *src, bx))
        }
        GhostTask::Physical { .. } | GhostTask::ClampCopy { .. } => None,
    }
}

/// The destination block a task writes ghosts into (every variant has one).
pub fn task_dst<const D: usize>(task: &GhostTask<D>) -> BlockId {
    match task {
        GhostTask::Same { dst, .. }
        | GhostTask::Restrict { dst, .. }
        | GhostTask::Prolong { dst, .. }
        | GhostTask::Physical { dst, .. }
        | GhostTask::ClampCopy { dst, .. } => *dst,
    }
}

/// Extract a box of cells (all variables, variable-major: one full box per
/// variable plane, x-rows contiguous) into a flat payload. The payload
/// order is a wire format shared by [`insert_box`] and the aggregated
/// [`PairMessage`] pack/unpack on both ends of an exchange; it is **not**
/// the checkpoint/snapshot byte order (those stay cell-major on disk).
pub fn extract_box<const D: usize>(field: &FieldBlock<D>, bx: IBox<D>) -> Vec<f64> {
    let n = field.shape().nvar;
    let mut out = Vec::with_capacity(bx.volume() as usize * n);
    if bx.is_empty() {
        return out;
    }
    let ps = field.shape().plane_stride();
    let mut row = bx;
    row.hi[0] = row.lo[0] + 1;
    let row_len = (bx.hi[0] - bx.lo[0]) as usize;
    let data = field.as_slice();
    for v in 0..n {
        for c in row.iter() {
            let i = field.shape().lin(c) + v * ps;
            out.extend_from_slice(&data[i..i + row_len]);
        }
    }
    out
}

/// Write a flat payload produced by [`extract_box`] back into a box.
pub fn insert_box<const D: usize>(field: &mut FieldBlock<D>, bx: IBox<D>, data: &[f64]) {
    let n = field.shape().nvar;
    debug_assert_eq!(data.len(), bx.volume() as usize * n);
    if bx.is_empty() {
        return;
    }
    let shape = *field.shape();
    let ps = shape.plane_stride();
    let mut row = bx;
    row.hi[0] = row.lo[0] + 1;
    let row_len = (bx.hi[0] - bx.lo[0]) as usize;
    let dst = field.as_mut_slice();
    let mut off = 0;
    for v in 0..n {
        for c in row.iter() {
            let i = shape.lin(c) + v * ps;
            dst[i..i + row_len].copy_from_slice(&data[off..off + row_len]);
            off += row_len;
        }
    }
}

/// One packed segment of a [`PairMessage`]: the source region of exactly
/// one ghost task, at a fixed offset in the pair buffer.
#[derive(Clone, Debug)]
pub struct AggSegment<const D: usize> {
    /// Index of the task within its phase's task slice
    /// ([`GhostExchange::phase1`] or [`GhostExchange::phase2`]).
    pub task: usize,
    /// Source block (owned by the sending rank).
    pub src: BlockId,
    /// Destination block (owned by the receiving rank).
    pub dst: BlockId,
    /// Source region, in the source block's coordinates.
    pub src_box: IBox<D>,
    /// Payload length in f64s (`src_box.volume() * nvar`).
    pub values: usize,
}

/// All ghost traffic from one rank to another within one exchange phase,
/// packed into a single message.
///
/// Segments are ordered by `(dst key, src key, task index)` — a stable
/// ordering derived from block keys, never from ids, hashes, or
/// iteration order — so every rank of a replicated topology computes the
/// byte-identical packing and the receiver's unpack schedule is simply
/// the same segment list read back in order.
#[derive(Clone, Debug)]
pub struct PairMessage<const D: usize> {
    /// Sending rank (owner of every segment's `src`).
    pub from: usize,
    /// Receiving rank (owner of every segment's `dst`).
    pub to: usize,
    /// Packed segments, in the deterministic key-derived order.
    pub segments: Vec<AggSegment<D>>,
    /// Total payload length in f64s (sum of segment lengths).
    pub values: usize,
}

impl<const D: usize> PairMessage<D> {
    /// Per-segment payload lengths, in packing order. The receiver
    /// derives the identical split from its replicated plan, which is
    /// what lets a single vectored receive reconstruct the segments.
    pub fn lens(&self) -> Vec<usize> {
        self.segments.iter().map(|s| s.values).collect()
    }

    /// Sender side: extract every segment's source region from `grid`
    /// into per-segment payloads, in packing order.
    pub fn pack_parts(&self, grid: &BlockGrid<D>) -> Vec<Vec<f64>> {
        self.segments
            .iter()
            .map(|s| extract_box(grid.block(s.src).field(), s.src_box))
            .collect()
    }

    /// Receiver side: stage the received per-segment payloads into the
    /// local mirror copies of the source blocks. After this, the matching
    /// ghost tasks can run exactly as in the serial path. Each plan
    /// writes every staged cell at most once per exchange, so unpack
    /// order cannot affect the result.
    pub fn unpack(&self, grid: &mut BlockGrid<D>, parts: &[Vec<f64>]) {
        debug_assert_eq!(parts.len(), self.segments.len());
        for (s, data) in self.segments.iter().zip(parts) {
            insert_box(grid.block_mut(s.src).field_mut(), s.src_box, data);
        }
    }
}

/// The per-rank-pair aggregated form of a [`GhostExchange`] plan: one
/// [`PairMessage`] per `(from, to)` rank pair per phase, replacing the
/// one-message-per-task halo exchange. Epoch-stamped like the plan it was
/// derived from, so cache holders can revalidate with one compare.
#[derive(Clone, Debug)]
pub struct AggregatedExchange<const D: usize> {
    /// Phase-1 pair messages (same-level copies and restrictions),
    /// sorted by `(from, to)`.
    pub phase1: Vec<PairMessage<D>>,
    /// Phase-2 pair messages (prolongation sources), sorted by
    /// `(from, to)`.
    pub phase2: Vec<PairMessage<D>>,
    epoch: u64,
}

impl<const D: usize> AggregatedExchange<D> {
    /// The grid topology epoch the underlying plan was built at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True when the aggregation still matches the grid's topology.
    pub fn is_current(&self, grid: &BlockGrid<D>) -> bool {
        self.epoch == grid.epoch()
    }

    /// Messages one full exchange moves: exactly one per active rank pair
    /// per phase (the invariant the aggregated path is asserted against).
    pub fn num_messages(&self) -> usize {
        self.phase1.len() + self.phase2.len()
    }

    /// Pair messages of one phase (`0` or `1`).
    pub fn phase(&self, p: usize) -> &[PairMessage<D>] {
        if p == 0 {
            &self.phase1
        } else {
            &self.phase2
        }
    }
}

fn aggregate_phase<const D: usize>(
    grid: &BlockGrid<D>,
    tasks: &[GhostTask<D>],
    owner: &dyn Fn(BlockId) -> usize,
) -> Vec<PairMessage<D>> {
    let nvar = grid.params().nvar;
    let mut pairs: std::collections::BTreeMap<(usize, usize), Vec<AggSegment<D>>> =
        std::collections::BTreeMap::new();
    for (i, t) in tasks.iter().enumerate() {
        if let Some((dst, src, bx)) = task_source_box(t) {
            let (from, to) = (owner(src), owner(dst));
            if from == to {
                continue;
            }
            pairs.entry((from, to)).or_default().push(AggSegment {
                task: i,
                src,
                dst,
                src_box: bx,
                values: bx.volume() as usize * nvar,
            });
        }
    }
    pairs
        .into_iter()
        .map(|((from, to), mut segments)| {
            segments.sort_by_key(|s| {
                (grid.block(s.dst).key(), grid.block(s.src).key(), s.task)
            });
            let values = segments.iter().map(|s| s.values).sum();
            PairMessage { from, to, segments, values }
        })
        .collect()
}

impl<const D: usize> GhostExchange<D> {
    /// Aggregate this plan into per-rank-pair messages under an ownership
    /// map. Every rank of a replicated topology calls this with the
    /// identical grid, plan, and owner map and obtains the byte-identical
    /// aggregation — sender packing order and receiver unpack schedule
    /// agree by construction (see [`PairMessage`]).
    pub fn aggregate(
        &self,
        grid: &BlockGrid<D>,
        owner: &dyn Fn(BlockId) -> usize,
    ) -> AggregatedExchange<D> {
        AggregatedExchange {
            phase1: aggregate_phase(grid, &self.phase1, owner),
            phase2: aggregate_phase(grid, &self.phase2, owner),
            epoch: self.epoch,
        }
    }

    /// Destination blocks whose ghost fill depends on data from blocks
    /// where `is_remote` holds — directly (a phase-1 or phase-2 task with
    /// a remote source) or one hop through phase 2 (a prolongation whose
    /// coarse source block has any remote-sourced phase-1 task, because
    /// prolongation slopes may read that block's restriction-filled ghost
    /// slab). Sorted and deduplicated. The complement can complete its
    /// ghost fill from purely local data, which makes it the interior of
    /// a comm/compute overlap split. The one-hop closure is conservative:
    /// over-classifying a block as halo delays its flux to the join but
    /// never changes any value.
    pub fn remote_halo_dsts(&self, is_remote: &dyn Fn(BlockId) -> bool) -> Vec<BlockId> {
        use std::collections::BTreeSet;
        let mut remote_p1_dst: BTreeSet<BlockId> = BTreeSet::new();
        let mut halo: BTreeSet<BlockId> = BTreeSet::new();
        for t in &self.phase1 {
            if let Some((dst, src, _)) = task_source_box(t) {
                if is_remote(src) {
                    remote_p1_dst.insert(dst);
                    halo.insert(dst);
                }
            }
        }
        for t in &self.phase2 {
            if let Some((dst, src, _)) = task_source_box(t) {
                if is_remote(src) || remote_p1_dst.contains(&src) {
                    halo.insert(dst);
                }
            }
        }
        halo.into_iter().collect()
    }

    /// Destination blocks receiving any phase-2 (prolongation) task,
    /// sorted and deduplicated. In a shared-memory overlap split these
    /// are the halo: their ghost fill completes only with the phase-2
    /// scatter, while every other block's ghosts are final after phase 1.
    pub fn phase2_dsts(&self) -> Vec<BlockId> {
        let mut dsts: Vec<BlockId> = self
            .phase2
            .iter()
            .filter_map(|t| task_source_box(t).map(|(dst, _, _)| dst))
            .collect();
        dsts.sort();
        dsts.dedup();
        dsts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{GridParams, Transfer};
    use crate::layout::RootLayout;

    /// Fill every block's interior with a globally smooth linear function of
    /// the physical cell center: ghost exchange must reproduce it exactly
    /// (linear fields are invariant under copy, averaging, and limited
    /// linear interpolation with centered stencils).
    fn fill_global_linear<const D: usize>(grid: &mut BlockGrid<D>, coef: [f64; D], c0: f64) {
        let m = grid.params().block_dims;
        let layout = grid.layout().clone();
        let ids = grid.block_ids();
        for id in ids {
            let key = grid.block(id).key();
            grid.block_mut(id).field_mut().for_each_interior(|c, u| {
                let x = layout.cell_center(key, m, c);
                let mut v = c0;
                for d in 0..D {
                    v += coef[d] * x[d];
                }
                u[0] = v;
            });
        }
    }

    #[test]
    fn same_level_exchange_periodic() {
        let mut g = BlockGrid::<2>::new(
            RootLayout::unit([2, 2], Boundary::Periodic),
            GridParams::new([4, 4], 2, 1, 2),
        );
        // constant-per-block marker
        let ids = g.block_ids();
        for (i, id) in ids.iter().enumerate() {
            g.block_mut(*id).field_mut().for_each_interior(|_, u| u[0] = i as f64 + 1.0);
        }
        fill_ghosts(&mut g, GhostConfig::default());
        // block (0,0)'s x+ ghosts hold block (1,0)'s value
        let a = g.find(BlockKey::new(0, [0, 0])).unwrap();
        let b = g.find(BlockKey::new(0, [1, 0])).unwrap();
        let want = {
            let mut v = 0.0;
            g.block_mut(b).field_mut().for_each_interior(|_, u| v = u[0]);
            v
        };
        assert_eq!(g.block(a).field().at([4, 0], 0), want);
        // and its x- ghosts wrap around to the same block
        assert_eq!(g.block(a).field().at([-1, 2], 0), want);
    }

    #[test]
    fn self_neighbor_periodic_single_root() {
        let mut g = BlockGrid::<1>::new(
            RootLayout::unit([1], Boundary::Periodic),
            GridParams::new([8], 2, 1, 1),
        );
        let id = g.block_ids()[0];
        g.block_mut(id).field_mut().for_each_interior(|c, u| u[0] = c[0] as f64);
        fill_ghosts(&mut g, GhostConfig::default());
        let f = g.block(id).field();
        assert_eq!(f.at([-1], 0), 7.0);
        assert_eq!(f.at([-2], 0), 6.0);
        assert_eq!(f.at([8], 0), 0.0);
        assert_eq!(f.at([9], 0), 1.0);
    }

    #[test]
    fn linear_field_reproduced_across_refinement_2d() {
        // Outflow faces: a linear-in-x,y field is incompatible with
        // periodic wrap. The second refinement cascades into the
        // neighboring roots.
        let mut g = BlockGrid::<2>::new(
            RootLayout::unit([2, 2], Boundary::Outflow),
            GridParams::new([8, 8], 2, 1, 3),
        );
        let a = g.find(BlockKey::new(0, [0, 0])).unwrap();
        g.refine(a, Transfer::None).unwrap();
        let b = g.find(BlockKey::new(1, [1, 1])).unwrap();
        crate::balance::adapt(
            &mut g,
            &[(b, crate::balance::Flag::Refine)].into_iter().collect(),
            Transfer::None,
        );
        fill_global_linear(&mut g, [2.0, -1.0], 0.25);
        fill_ghosts(&mut g, GhostConfig::default());
        // Interior-adjacent ghosts must reproduce the linear field exactly;
        // physical-boundary ghosts (outflow) are only zero-gradient, so
        // check interior faces only.
        let m = g.params().block_dims;
        let ng = g.params().nghost;
        for (id, node) in g.blocks() {
            for f in Face::all::<2>() {
                if node.face(f).is_boundary() {
                    continue;
                }
                let slab = IBox::from_dims(m).outer_face_slab(f, ng);
                for c in slab.iter() {
                    let x = g.layout().cell_center(node.key(), m, c);
                    let want = 2.0 * x[0] - 1.0 * x[1] + 0.25;
                    let got = node.field().at(c, 0);
                    assert!(
                        (got - want).abs() < 1e-12,
                        "block {:?} (id {id:?}) ghost {c:?}: got {got}, want {want}",
                        node.key()
                    );
                }
            }
        }
    }

    #[test]
    fn linear_field_reproduced_3d() {
        let mut g = BlockGrid::<3>::new(
            RootLayout::unit([2, 1, 1], Boundary::Outflow),
            GridParams::new([4, 4, 4], 2, 1, 2),
        );
        let a = g.find(BlockKey::new(0, [0, 0, 0])).unwrap();
        g.refine(a, Transfer::None).unwrap();
        fill_global_linear(&mut g, [1.0, 2.0, 3.0], -0.5);
        fill_ghosts(&mut g, GhostConfig::default());
        let m = g.params().block_dims;
        let ng = g.params().nghost;
        for (_, node) in g.blocks() {
            for f in Face::all::<3>() {
                if node.face(f).is_boundary() {
                    continue;
                }
                let slab = IBox::from_dims(m).outer_face_slab(f, ng);
                for c in slab.iter() {
                    let x = g.layout().cell_center(node.key(), m, c);
                    let want = x[0] + 2.0 * x[1] + 3.0 * x[2] - 0.5;
                    let got = node.field().at(c, 0);
                    assert!(
                        (got - want).abs() < 1e-12,
                        "block {:?} ghost {c:?}: got {got}, want {want}",
                        node.key()
                    );
                }
            }
        }
    }

    #[test]
    fn restriction_is_conservative_average() {
        let mut g = BlockGrid::<2>::new(
            RootLayout::unit([2, 1], Boundary::Outflow),
            GridParams::new([4, 4], 2, 1, 2),
        );
        let a = g.find(BlockKey::new(0, [0, 0])).unwrap();
        g.refine(a, Transfer::None).unwrap();
        // fine blocks hold distinct constants; coarse ghost = their average
        // where segments meet? No - each ghost cell averages cells of ONE
        // fine block (2x2 fine per coarse ghost), so ghost = that constant.
        for (i, key) in [
            BlockKey::new(1, [1, 0]),
            BlockKey::new(1, [1, 1]),
        ]
        .iter()
        .enumerate()
        {
            let id = g.find(*key).unwrap();
            g.block_mut(id)
                .field_mut()
                .for_each_interior(|_, u| u[0] = 10.0 * (i as f64 + 1.0));
        }
        fill_ghosts(&mut g, GhostConfig::default());
        let b = g.find(BlockKey::new(0, [1, 0])).unwrap();
        let fb = g.block(b).field();
        // b's x- ghosts: lower half from (1,[1,0]) = 10, upper from (1,[1,1]) = 20
        assert_eq!(fb.at([-1, 0], 0), 10.0);
        assert_eq!(fb.at([-2, 1], 0), 10.0);
        assert_eq!(fb.at([-1, 2], 0), 20.0);
        assert_eq!(fb.at([-2, 3], 0), 20.0);
    }

    #[test]
    fn outflow_boundary_zero_gradient() {
        let mut g = BlockGrid::<2>::new(
            RootLayout::unit([1, 1], Boundary::Outflow),
            GridParams::new([4, 4], 2, 1, 0),
        );
        let id = g.block_ids()[0];
        g.block_mut(id).field_mut().for_each_interior(|c, u| u[0] = (c[0] + 1) as f64);
        fill_ghosts(&mut g, GhostConfig::default());
        let f = g.block(id).field();
        assert_eq!(f.at([-1, 2], 0), 1.0);
        assert_eq!(f.at([-2, 2], 0), 1.0);
        assert_eq!(f.at([4, 1], 0), 4.0);
        assert_eq!(f.at([5, 1], 0), 4.0);
    }

    #[test]
    fn reflect_boundary_mirrors_and_flips() {
        let mut g = BlockGrid::<2>::new(
            RootLayout::unit([1, 1], Boundary::Reflect),
            GridParams::new([4, 4], 2, 3, 0),
        );
        let id = g.block_ids()[0];
        // vars: 0 = scalar, 1 = vx, 2 = vy
        g.block_mut(id).field_mut().for_each_interior(|c, u| {
            u[0] = 1.0 + c[0] as f64;
            u[1] = 2.0 + c[0] as f64;
            u[2] = 3.0 + c[1] as f64;
        });
        let cfg = GhostConfig {
            prolong_order: ProlongOrder::Constant,
            vector_components: vec![[1, 2, usize::MAX]],
            corners: false,
        };
        fill_ghosts(&mut g, cfg);
        let f = g.block(id).field();
        // x- face: ghost (-1, j) mirrors interior (0, j); vx flips
        assert_eq!(f.at([-1, 1], 0), 1.0);
        assert_eq!(f.at([-1, 1], 1), -2.0);
        assert_eq!(f.at([-1, 1], 2), f.at([0, 1], 2));
        assert_eq!(f.at([-2, 1], 0), 2.0, "second ghost mirrors cell 1");
        // y- face: vy flips, vx does not
        assert_eq!(f.at([1, -1], 2), -3.0);
        assert_eq!(f.at([1, -1], 1), f.at([1, 0], 1));
    }

    #[test]
    fn custom_boundary_callback() {
        let mut g = BlockGrid::<1>::new(
            RootLayout::new([2], [0.0], [1.0], [Boundary::Custom(7); 6]),
            GridParams::new([4], 2, 1, 0),
        );
        let ids = g.block_ids();
        for id in ids {
            g.block_mut(id).field_mut().for_each_interior(|_, u| u[0] = 5.0);
        }
        let ex = GhostExchange::build(&g, GhostConfig::default());
        ex.fill_with(&mut g, &|ctx, _c, u| {
            assert_eq!(ctx.tag, 7);
            assert_eq!(ctx.interior[0], 5.0);
            u[0] = ctx.position[0] * 100.0;
        });
        let a = g.find(BlockKey::new(0, [0])).unwrap();
        // ghost -1 center: x = -0.0625 (cell width 1/8)
        let f = g.block(a).field();
        assert!((f.at([-1], 0) - (-6.25)).abs() < 1e-12);
        let b = g.find(BlockKey::new(0, [1])).unwrap();
        assert!((g.block(b).field().at([4], 0) - 106.25).abs() < 1e-12);
    }

    #[test]
    fn comm_volume_counts_interfaces() {
        let g = BlockGrid::<2>::new(
            RootLayout::unit([2, 1], Boundary::Periodic),
            GridParams::new([4, 4], 2, 1, 1),
        );
        let ex = GhostExchange::build(&g, GhostConfig::default());
        // two blocks, each with 4 faces: x faces are block copies (4 tasks
        // of 2*4 cells), y faces wrap to self (4 tasks of 4*2 cells)
        assert_eq!(ex.num_tasks(), 8);
        assert_eq!(ex.comm_volume(&g), 8 * 8);
    }

    #[test]
    fn plan_rebuild_after_adapt_changes_tasks() {
        let mut g = BlockGrid::<2>::new(
            RootLayout::unit([2, 1], Boundary::Outflow),
            GridParams::new([4, 4], 2, 1, 2),
        );
        let before = GhostExchange::build(&g, GhostConfig::default()).num_tasks();
        let a = g.find(BlockKey::new(0, [0, 0])).unwrap();
        g.refine(a, Transfer::None).unwrap();
        let after = GhostExchange::build(&g, GhostConfig::default()).num_tasks();
        assert!(after > before);
    }
}

//! Logical block addresses.
//!
//! A [`BlockKey`] names a block by refinement `level` and integer `coords`
//! within the level-`level` lattice of blocks. With a root layout of
//! `r = [r0, …, r_{D-1}]` root blocks, the valid coordinate range at level
//! `L` along axis `i` is `0 .. r[i] << L`.
//!
//! Keys support the tree arithmetic the data structure needs (parent,
//! children, sibling index) *and* the lateral arithmetic the paper's explicit
//! neighbor pointers replace (neighbor coordinates at equal/finer/coarser
//! levels). Keys are what tests use to recompute connectivity from scratch
//! and check the incrementally-maintained pointers.

use crate::index::{Face, IBox, IVec};

/// Logical address of a block: refinement level plus lattice coordinates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BlockKey<const D: usize> {
    /// Refinement level; level 0 is the root-block lattice.
    pub level: u8,
    /// Block coordinates within the level-`level` lattice.
    pub coords: IVec<D>,
}

impl<const D: usize> BlockKey<D> {
    /// Construct a key.
    #[inline]
    pub fn new(level: u8, coords: IVec<D>) -> Self {
        BlockKey { level, coords }
    }

    /// Root block containing the origin.
    #[inline]
    pub fn origin_root() -> Self {
        BlockKey { level: 0, coords: [0; D] }
    }

    /// Parent key; `None` for level-0 blocks.
    #[inline]
    pub fn parent(&self) -> Option<Self> {
        if self.level == 0 {
            return None;
        }
        let mut c = self.coords;
        for x in c.iter_mut() {
            *x = x.div_euclid(2);
        }
        Some(BlockKey { level: self.level - 1, coords: c })
    }

    /// Ancestor `n` levels up; `None` if that would pass the root.
    pub fn ancestor(&self, n: u8) -> Option<Self> {
        if n > self.level {
            return None;
        }
        let mut c = self.coords;
        for x in c.iter_mut() {
            *x = x.div_euclid(1 << n);
        }
        Some(BlockKey { level: self.level - n, coords: c })
    }

    /// The `2^D` children, ordered by child index (x fastest).
    pub fn children(self) -> impl Iterator<Item = BlockKey<D>> {
        let base = BlockKey {
            level: self.level + 1,
            coords: {
                let mut c = self.coords;
                for x in c.iter_mut() {
                    *x *= 2;
                }
                c
            },
        };
        (0..(1usize << D)).map(move |ci| {
            let mut c = base.coords;
            for (i, x) in c.iter_mut().enumerate() {
                *x += ((ci >> i) & 1) as i64;
            }
            BlockKey { level: base.level, coords: c }
        })
    }

    /// The child of this block with the given child index (bit `i` of
    /// `ci` selects low/high along axis `i`).
    pub fn child(&self, ci: usize) -> Self {
        let mut c = self.coords;
        for (i, x) in c.iter_mut().enumerate() {
            *x = *x * 2 + ((ci >> i) & 1) as i64;
        }
        BlockKey { level: self.level + 1, coords: c }
    }

    /// Which child of its parent this block is (`0 .. 2^D`);
    /// 0 for level-0 blocks.
    #[inline]
    pub fn child_index(&self) -> usize {
        if self.level == 0 {
            return 0;
        }
        let mut ci = 0;
        for (i, &x) in self.coords.iter().enumerate() {
            ci |= ((x.rem_euclid(2)) as usize) << i;
        }
        ci
    }

    /// All `2^D` keys sharing this block's parent (including itself).
    pub fn sibling_group(&self) -> Option<impl Iterator<Item = BlockKey<D>>> {
        self.parent().map(|p| p.children())
    }

    /// Same-level neighbor key across `face` (unwrapped: may leave the
    /// domain; root-layout resolution is a separate step).
    #[inline]
    pub fn face_neighbor(&self, face: Face) -> Self {
        let mut c = self.coords;
        c[face.dim as usize] += face.sign();
        BlockKey { level: self.level, coords: c }
    }

    /// Neighbor key offset by an arbitrary lattice step.
    #[inline]
    pub fn offset(&self, delta: IVec<D>) -> Self {
        let mut c = self.coords;
        for i in 0..D {
            c[i] += delta[i];
        }
        BlockKey { level: self.level, coords: c }
    }

    /// Re-express this key at a *coarser* level (`to_level <= level`):
    /// the ancestor at that level.
    pub fn at_coarser_level(&self, to_level: u8) -> Self {
        assert!(to_level <= self.level);
        self.ancestor(self.level - to_level).unwrap()
    }

    /// The box of descendant keys at level `to_level >= level` covered by
    /// this block.
    pub fn descendants_box(&self, to_level: u8) -> IBox<D> {
        assert!(to_level >= self.level);
        let f = 1i64 << (to_level - self.level);
        let mut lo = self.coords;
        let mut hi = self.coords;
        for i in 0..D {
            lo[i] *= f;
            hi[i] = (hi[i] + 1) * f;
        }
        IBox::new(lo, hi)
    }

    /// True if `other` is this key or a descendant of it.
    pub fn is_ancestor_of_or_eq(&self, other: &Self) -> bool {
        if other.level < self.level {
            return false;
        }
        other.at_coarser_level(self.level) == *self
    }

    /// The keys at `self.level + 1` that touch `face` of this block from the
    /// outside — i.e. the candidate finer neighbors across that face under a
    /// one-level jump. There are `2^(D-1)` of them.
    pub fn finer_face_neighbors(&self, face: Face) -> Vec<BlockKey<D>> {
        let fine = BlockKey {
            level: self.level + 1,
            coords: {
                let mut c = self.coords;
                for x in c.iter_mut() {
                    *x *= 2;
                }
                c
            },
        };
        let d = face.dim as usize;
        // Fine-lattice coordinate along the face normal, just outside.
        let norm_coord = if face.high { fine.coords[d] + 2 } else { fine.coords[d] - 1 };
        let mut out = Vec::with_capacity(1 << (D - 1));
        for t in 0..(1usize << D) {
            if (t >> d) & 1 != 0 {
                continue; // only vary transverse axes
            }
            let mut c = fine.coords;
            for i in 0..D {
                if i != d {
                    c[i] += ((t >> i) & 1) as i64;
                }
            }
            c[d] = norm_coord;
            out.push(BlockKey { level: fine.level, coords: c });
        }
        out
    }

    /// The face region of this block expressed as a box of *cell-lattice*
    /// columns at this block's level: block coords scaled by `block_dims`,
    /// restricted to the `face` plane (thickness 0 box collapsed to the
    /// transverse extent; normal axis has lo==hi==face plane index).
    ///
    /// Used by ghost exchange to compute overlaps between neighbors of
    /// different levels: scale by 2 per level difference, intersect.
    pub fn face_cell_box(&self, face: Face, block_dims: IVec<D>) -> IBox<D> {
        let mut lo = [0; D];
        let mut hi = [0; D];
        for i in 0..D {
            lo[i] = self.coords[i] * block_dims[i];
            hi[i] = (self.coords[i] + 1) * block_dims[i];
        }
        let d = face.dim as usize;
        if face.high {
            lo[d] = hi[d];
        } else {
            hi[d] = lo[d];
        }
        // half-open box of zero thickness would be empty; represent the face
        // plane as a thickness-1 slab *outside* the block.
        if face.high {
            hi[d] = lo[d] + 1;
        } else {
            lo[d] = hi[d] - 1;
        }
        IBox::new(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_child_roundtrip() {
        let k = BlockKey::<2>::new(2, [3, 1]);
        let p = k.parent().unwrap();
        assert_eq!(p, BlockKey::new(1, [1, 0]));
        assert!(p.children().any(|c| c == k));
        assert_eq!(k.child_index(), 0b11); // x=3 odd -> bit0=1; y=1 odd -> bit1=1
    }

    #[test]
    fn child_index_bits() {
        let p = BlockKey::<3>::new(0, [0, 0, 0]);
        let kids: Vec<_> = p.children().collect();
        assert_eq!(kids.len(), 8);
        for (i, k) in kids.iter().enumerate() {
            assert_eq!(k.child_index(), i);
            assert_eq!(k.parent().unwrap(), p);
            assert_eq!(p.child(i), *k);
        }
        // x fastest ordering
        assert_eq!(kids[0].coords, [0, 0, 0]);
        assert_eq!(kids[1].coords, [1, 0, 0]);
        assert_eq!(kids[2].coords, [0, 1, 0]);
        assert_eq!(kids[4].coords, [0, 0, 1]);
    }

    #[test]
    fn root_has_no_parent() {
        assert!(BlockKey::<2>::new(0, [5, 7]).parent().is_none());
        assert_eq!(BlockKey::<2>::new(0, [5, 7]).child_index(), 0);
    }

    #[test]
    fn ancestor_levels() {
        let k = BlockKey::<1>::new(3, [13]);
        assert_eq!(k.ancestor(0), Some(k));
        assert_eq!(k.ancestor(1), Some(BlockKey::new(2, [6])));
        assert_eq!(k.ancestor(3), Some(BlockKey::new(0, [1])));
        assert_eq!(k.ancestor(4), None);
        assert_eq!(k.at_coarser_level(1), BlockKey::new(1, [3]));
    }

    #[test]
    fn face_neighbors() {
        let k = BlockKey::<2>::new(1, [1, 1]);
        assert_eq!(k.face_neighbor(Face::new(0, true)), BlockKey::new(1, [2, 1]));
        assert_eq!(k.face_neighbor(Face::new(1, false)), BlockKey::new(1, [1, 0]));
    }

    #[test]
    fn finer_face_neighbors_2d() {
        let k = BlockKey::<2>::new(0, [0, 0]);
        let f = k.finer_face_neighbors(Face::new(0, true));
        assert_eq!(f.len(), 2);
        assert!(f.contains(&BlockKey::new(1, [2, 0])));
        assert!(f.contains(&BlockKey::new(1, [2, 1])));
        let g = k.finer_face_neighbors(Face::new(1, false));
        assert!(g.contains(&BlockKey::new(1, [0, -1])));
        assert!(g.contains(&BlockKey::new(1, [1, -1])));
    }

    #[test]
    fn finer_face_neighbors_3d_count() {
        let k = BlockKey::<3>::new(1, [1, 0, 1]);
        for f in Face::all::<3>() {
            let n = k.finer_face_neighbors(f);
            assert_eq!(n.len(), 4, "2^(d-1) finer neighbors per face");
            for kk in &n {
                assert_eq!(kk.level, 2);
                // each candidate's parent must be the same-level neighbor
                assert_eq!(kk.parent().unwrap(), k.face_neighbor(f));
            }
        }
    }

    #[test]
    fn descendants_box() {
        let k = BlockKey::<2>::new(1, [1, 0]);
        let b = k.descendants_box(3);
        assert_eq!(b, IBox::new([4, 0], [8, 4]));
        assert_eq!(k.descendants_box(1), IBox::new([1, 0], [2, 1]));
        assert!(k.is_ancestor_of_or_eq(&BlockKey::new(3, [7, 3])));
        assert!(!k.is_ancestor_of_or_eq(&BlockKey::new(3, [8, 0])));
        assert!(!k.is_ancestor_of_or_eq(&BlockKey::new(0, [0, 0])));
    }

    #[test]
    fn face_cell_box() {
        let k = BlockKey::<2>::new(0, [1, 0]);
        let b = k.face_cell_box(Face::new(0, false), [4, 6]);
        assert_eq!(b, IBox::new([3, 0], [4, 6]));
        let b2 = k.face_cell_box(Face::new(0, true), [4, 6]);
        assert_eq!(b2, IBox::new([8, 0], [9, 6]));
    }
}

//! Pluggable block-to-rank partitioning: [`Partitioner`] strategies, the
//! curve-ordered leaf walk, and explicit [`RebalancePlan`]s.
//!
//! The paper re-balances after every adapt; at scale the cost of doing so
//! must track *what moved*, not the grid. Following the extreme-scale BAMR
//! designs (Schornbaum & Rüde's distributed forests, p4est), the surface
//! here is built around three pieces:
//!
//! * [`CurveWalk`] — the leaves in Morton/Hilbert order, maintained
//!   **incrementally**: a refinement splices `2^D` children into the
//!   parent's slot (a parent and its first descendant share a curve
//!   index, and a block's descendants occupy a contiguous curve range),
//!   a coarsening splices the group back out. No re-sort per adapt.
//! * [`Partitioner`] — a strategy (SFC cut points, round-robin, greedy)
//!   over the walk-ordered weights. Held by `SolverConfig`, so executors
//!   no longer thread `(comm, policy)` pairs through every call.
//! * [`RebalancePlan`] — the explicit product of a partitioning pass:
//!   per-rank cut points plus the migration list as a diff against the
//!   previous ownership. Executors migrate exactly `plan.moves` — the
//!   blocks whose curve interval moved — and nothing else.
//!
//! The walk's bit budget is fixed from the root lattice and the grid's
//! `max_level` *cap* (not the finest level currently present), so curve
//! indices stay comparable across the grid's whole lifetime — the
//! invariant that makes incremental splicing sound.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::arena::BlockId;
use crate::grid::BlockGrid;
use crate::key::BlockKey;
use crate::sfc::{curve_index, curve_order, required_bits, Curve};

/// A partitioning strategy over curve-ordered block weights.
///
/// Implementations are dimension-free: they see the per-block weights in
/// walk order and return a rank per position. Strategies whose output is
/// nondecreasing along the walk (`contiguous() == true`) admit cut-point
/// plans and interval-diff migration.
pub trait PartitionStrategy: Send + Sync + fmt::Debug {
    /// Rank for each of `weights.len()` blocks, given in walk order.
    /// Every returned rank is `< nranks`.
    fn assign(&self, weights: &[f64], nranks: usize) -> Vec<usize>;

    /// True if [`PartitionStrategy::assign`] is nondecreasing along the
    /// walk, i.e. each rank owns one contiguous curve interval.
    fn contiguous(&self) -> bool {
        false
    }

    /// Short stable name (metrics, tables).
    fn name(&self) -> &'static str;
}

/// Equal-weight cut points along the space-filling curve: the paper's
/// re-balancing strategy. Good balance *and* good locality.
#[derive(Clone, Copy, Debug, Default)]
pub struct SfcCuts;

impl PartitionStrategy for SfcCuts {
    fn assign(&self, weights: &[f64], nranks: usize) -> Vec<usize> {
        let total: f64 = weights.iter().sum();
        let target = total / nranks as f64;
        let mut out = vec![0usize; weights.len()];
        let mut acc = 0.0;
        let mut rank = 0usize;
        for (i, &w) in weights.iter().enumerate() {
            // advance to the chunk this prefix position belongs to
            while rank + 1 < nranks && acc + 0.5 * w >= target * (rank + 1) as f64 {
                rank += 1;
            }
            out[i] = rank;
            acc += w;
        }
        out
    }

    fn contiguous(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "sfc"
    }
}

/// Cyclic dealing along the walk; perfect count balance, terrible
/// locality. The A/B baseline of the partition experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobin;

impl PartitionStrategy for RoundRobin {
    fn assign(&self, weights: &[f64], nranks: usize) -> Vec<usize> {
        (0..weights.len()).map(|i| i % nranks).collect()
    }

    fn name(&self) -> &'static str {
        "round_robin"
    }
}

/// Heaviest block onto the least-loaded rank; best balance for
/// heterogeneous weights, locality-blind.
#[derive(Clone, Copy, Debug, Default)]
pub struct Greedy;

impl PartitionStrategy for Greedy {
    fn assign(&self, weights: &[f64], nranks: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]));
        let mut load = vec![0.0f64; nranks];
        let mut out = vec![0usize; weights.len()];
        for i in order {
            let r = (0..nranks)
                .min_by(|&a, &b| load[a].total_cmp(&load[b]))
                .expect("nranks >= 1");
            out[i] = r;
            load[r] += weights[i];
        }
        out
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

/// The partitioning surface every executor consumes: a curve choice plus
/// a [`PartitionStrategy`]. Cheap to clone (the strategy is shared);
/// construct one and hand it to `SolverConfig::with_partitioner`.
#[derive(Clone)]
pub struct Partitioner {
    curve: Curve,
    strategy: Arc<dyn PartitionStrategy>,
}

impl fmt::Debug for Partitioner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Partitioner")
            .field("strategy", &self.strategy.name())
            .field("curve", &self.curve)
            .finish()
    }
}

impl Default for Partitioner {
    fn default() -> Self {
        Partitioner::sfc(Curve::Hilbert)
    }
}

impl Partitioner {
    /// Space-filling-curve cut points along `curve` (the paper's choice;
    /// Hilbert gives the best locality).
    pub fn sfc(curve: Curve) -> Self {
        Partitioner { curve, strategy: Arc::new(SfcCuts) }
    }

    /// Cyclic dealing along the (Morton) walk.
    pub fn round_robin() -> Self {
        Partitioner { curve: Curve::Morton, strategy: Arc::new(RoundRobin) }
    }

    /// Heaviest-first onto the least-loaded rank.
    pub fn greedy() -> Self {
        Partitioner { curve: Curve::Morton, strategy: Arc::new(Greedy) }
    }

    /// A user-supplied strategy over the walk of `curve`.
    pub fn custom(curve: Curve, strategy: Arc<dyn PartitionStrategy>) -> Self {
        Partitioner { curve, strategy }
    }

    /// The curve the leaf walk is ordered by.
    pub fn curve(&self) -> Curve {
        self.curve
    }

    /// The strategy's stable name.
    pub fn name(&self) -> &'static str {
        self.strategy.name()
    }

    /// True if each rank owns one contiguous curve interval.
    pub fn contiguous(&self) -> bool {
        self.strategy.contiguous()
    }

    /// Rank per walk position for walk-ordered `weights`.
    pub fn assign(&self, weights: &[f64], nranks: usize) -> Vec<usize> {
        assert!(nranks >= 1);
        let out = self.strategy.assign(weights, nranks);
        assert_eq!(out.len(), weights.len(), "strategy must assign every block");
        debug_assert!(out.iter().all(|&r| r < nranks), "strategy rank out of range");
        out
    }

    /// Assign ranks to free-standing `keys` (input order preserved).
    /// Contiguous strategies order the keys along the curve first; the
    /// rest consume the input order directly.
    pub fn assign_keys<const D: usize>(
        &self,
        keys: &[BlockKey<D>],
        weights: &[f64],
        nranks: usize,
    ) -> Vec<usize> {
        assert_eq!(keys.len(), weights.len());
        if !self.contiguous() {
            return self.assign(weights, nranks);
        }
        let order = curve_order(keys, self.curve);
        let walk_weights: Vec<f64> = order.iter().map(|&i| weights[i]).collect();
        let walk_assign = self.assign(&walk_weights, nranks);
        let mut out = vec![0usize; keys.len()];
        for (pos, &i) in order.iter().enumerate() {
            out[i] = walk_assign[pos];
        }
        out
    }

    /// Partition a grid's leaves (cell-count weights) into an owner map.
    /// The from-scratch path; executors keep a [`CurveWalk`] and use
    /// [`Partitioner::plan`] instead.
    pub fn partition_grid<const D: usize>(
        &self,
        grid: &BlockGrid<D>,
        nranks: usize,
    ) -> HashMap<BlockId, usize> {
        let walk = CurveWalk::build(grid, self.curve);
        let weights = cell_weights(grid, &walk);
        let assign = self.assign(&weights, nranks);
        walk.entries().iter().zip(assign).map(|(e, r)| (e.id, r)).collect()
    }

    /// Build an explicit [`RebalancePlan`]: assignment over the walk,
    /// cut points (for contiguous strategies), and the migration list as
    /// a diff against `prev_owner`. Pure computation — every rank running
    /// this with identical inputs derives the identical plan.
    pub fn plan<const D: usize>(
        &self,
        walk: &CurveWalk<D>,
        weights: &[f64],
        nranks: usize,
        prev_owner: impl Fn(BlockId) -> usize,
    ) -> RebalancePlan<D> {
        assert_eq!(weights.len(), walk.len(), "one weight per walk entry");
        let assign = self.assign(weights, nranks);
        let cuts = self.contiguous().then(|| {
            let mut cuts = vec![0usize; nranks + 1];
            cuts[nranks] = assign.len();
            let mut pos = 0usize;
            for (r, c) in cuts.iter_mut().enumerate().take(nranks).skip(1) {
                while pos < assign.len() && assign[pos] < r {
                    pos += 1;
                }
                *c = pos;
            }
            cuts
        });
        let moves: Vec<BlockMove<D>> = walk
            .entries()
            .iter()
            .zip(&assign)
            .filter_map(|(e, &to)| {
                let from = prev_owner(e.id);
                (from != to).then_some(BlockMove { key: e.key, id: e.id, from, to })
            })
            .collect();
        RebalancePlan { nranks, assign, cuts, moves }
    }
}

/// Per-block weights from interior cell counts — the default cost model
/// (uniform blocks ⇒ uniform weights; masked/heterogeneous setups and
/// measured-cost hooks feed [`Partitioner::plan`] directly).
pub fn cell_weights<const D: usize>(grid: &BlockGrid<D>, walk: &CurveWalk<D>) -> Vec<f64> {
    let cells = grid.params().field_shape().interior_cells() as f64;
    vec![cells; walk.len()]
}

/// One leaf of the curve walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkEntry<const D: usize> {
    /// Curve index on the fixed `max_level` lattice.
    pub index: u128,
    /// The block's key.
    pub key: BlockKey<D>,
    /// The block's current arena id.
    pub id: BlockId,
}

/// The grid's leaves in curve order, maintained incrementally across
/// adapts: a refinement replaces the parent entry by its `2^D` children
/// (which occupy the parent's contiguous curve range), a coarsening
/// reverses it. The epoch stamp ties the walk to the grid state it
/// describes; [`CurveWalk::is_current`] detects staleness.
#[derive(Clone, Debug)]
pub struct CurveWalk<const D: usize> {
    curve: Curve,
    max_level: u8,
    bits: u32,
    entries: Vec<WalkEntry<D>>,
    epoch: u64,
}

impl<const D: usize> CurveWalk<D> {
    /// Sort the grid's leaves along `curve`. The bit budget comes from
    /// the root lattice and the grid's `max_level` cap, so indices stay
    /// comparable for the grid's whole lifetime.
    pub fn build(grid: &BlockGrid<D>, curve: Curve) -> Self {
        let max_level = grid.params().max_level;
        let roots_max = grid.layout().roots.iter().copied().max().unwrap_or(1);
        let bits = required_bits(roots_max, max_level);
        let mut entries: Vec<WalkEntry<D>> = grid
            .blocks()
            .map(|(id, n)| WalkEntry {
                index: curve_index(&n.key(), max_level, bits, curve),
                key: n.key(),
                id,
            })
            .collect();
        entries.sort_by_key(|e| e.index);
        CurveWalk { curve, max_level, bits, entries, epoch: grid.epoch() }
    }

    /// The curve this walk is ordered by.
    pub fn curve(&self) -> Curve {
        self.curve
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the walk holds no leaves.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The walk entries in curve order.
    pub fn entries(&self) -> &[WalkEntry<D>] {
        &self.entries
    }

    /// True if the walk was built or spliced at the grid's current epoch.
    pub fn is_current(&self, grid: &BlockGrid<D>) -> bool {
        self.epoch == grid.epoch()
    }

    /// Re-stamp the walk after a grid-epoch bump that did not change the
    /// leaf set (e.g. an ownership-only rebalance bump).
    pub fn sync_epoch(&mut self, grid: &BlockGrid<D>) {
        self.epoch = grid.epoch();
    }

    /// Walk position of `key`, if present.
    pub fn position(&self, key: &BlockKey<D>) -> Option<usize> {
        let idx = curve_index(key, self.max_level, self.bits, self.curve);
        let pos = self.entries.binary_search_by(|e| e.index.cmp(&idx)).ok()?;
        (self.entries[pos].key == *key).then_some(pos)
    }

    /// Splice the walk after one adapt: every key in `refined` is
    /// replaced by its `2^D` children, every parent key in `coarsened`
    /// replaces its (contiguous) child group. Ids are looked up in the
    /// post-adapt grid; the walk is re-stamped to the grid's epoch.
    ///
    /// Children of one parent occupy exactly the parent's curve range,
    /// so both edits are local splices — no global re-sort.
    pub fn apply_adapt(
        &mut self,
        refined: &[BlockKey<D>],
        coarsened: &[BlockKey<D>],
        grid: &BlockGrid<D>,
    ) {
        for key in refined {
            self.split_refined(key, grid);
        }
        for key in coarsened {
            self.merge_coarsened(key, grid);
        }
        self.epoch = grid.epoch();
    }

    /// Replace `parent`'s entry by its `2^D` children (post-refine grid).
    fn split_refined(&mut self, parent: &BlockKey<D>, grid: &BlockGrid<D>) {
        let pos = self
            .position(parent)
            .expect("refined key must be a walk entry");
        let mut kids: Vec<WalkEntry<D>> = parent
            .children()
            .map(|ck| WalkEntry {
                index: curve_index(&ck, self.max_level, self.bits, self.curve),
                key: ck,
                id: grid.find(ck).expect("child of a refined block exists"),
            })
            .collect();
        kids.sort_by_key(|e| e.index);
        self.entries.splice(pos..pos + 1, kids);
    }

    /// Replace `parent`'s child group by the parent (post-coarsen grid).
    fn merge_coarsened(&mut self, parent: &BlockKey<D>, grid: &BlockGrid<D>) {
        let n = 1usize << D;
        let idx = curve_index(parent, self.max_level, self.bits, self.curve);
        let mut pos = self
            .entries
            .binary_search_by(|e| e.index.cmp(&idx))
            .expect("zero-offset child of a coarsened group must be a walk entry");
        // the zero-offset child shares the parent's corner cell (hence its
        // curve index), but on Hilbert it need not come first in the
        // group's contiguous range — back up to the range start
        while pos > 0 && self.entries[pos - 1].key.parent() == Some(*parent) {
            pos -= 1;
        }
        debug_assert!(
            self.entries[pos..pos + n]
                .iter()
                .all(|e| e.key.parent() == Some(*parent)),
            "coarsened group must be contiguous on the curve"
        );
        let entry = WalkEntry {
            index: idx,
            key: *parent,
            id: grid.find(*parent).expect("coarsened parent exists"),
        };
        self.entries.splice(pos..pos + n, [entry]);
    }
}

/// One block changing owner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockMove<const D: usize> {
    /// The block's key.
    pub key: BlockKey<D>,
    /// The block's arena id.
    pub id: BlockId,
    /// Current owner.
    pub from: usize,
    /// Owner under the new assignment.
    pub to: usize,
}

/// The explicit product of one partitioning pass: the full assignment
/// over the walk, the per-rank cut points (contiguous strategies), and
/// the migration list — exactly the blocks whose interval moved, in walk
/// order (the deterministic pack/unpack order for migration messages).
#[derive(Clone, Debug)]
pub struct RebalancePlan<const D: usize> {
    /// Rank count the plan was computed for.
    pub nranks: usize,
    /// Rank per walk position.
    pub assign: Vec<usize>,
    /// `cuts[r]..cuts[r+1]` is rank `r`'s walk interval (length
    /// `nranks + 1`); `None` for non-contiguous strategies.
    pub cuts: Option<Vec<usize>>,
    /// Blocks changing owner, in walk order.
    pub moves: Vec<BlockMove<D>>,
}

impl<const D: usize> RebalancePlan<D> {
    /// Number of blocks that change owner.
    pub fn migrated(&self) -> usize {
        self.moves.len()
    }

    /// True if no block moves.
    pub fn is_noop(&self) -> bool {
        self.moves.is_empty()
    }

    /// Distinct `(from, to)` rank pairs, sorted — one migration message
    /// travels per pair.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        let mut p: Vec<(usize, usize)> = self.moves.iter().map(|m| (m.from, m.to)).collect();
        p.sort_unstable();
        p.dedup();
        p
    }

    /// Number of distinct ranks that send or receive under this plan —
    /// the "ranks whose interval moved" of the scaling argument.
    pub fn ranks_touched(&self) -> usize {
        let mut r: Vec<usize> =
            self.moves.iter().flat_map(|m| [m.from, m.to]).collect();
        r.sort_unstable();
        r.dedup();
        r.len()
    }
}

/// Carry a by-key ownership map across an adapt: an unchanged key keeps
/// its owner, a new child inherits its parent's owner, a new (coarsened)
/// parent inherits its first child's owner. The replicated inheritance
/// rule of the distributed executor, exposed for oracles and tests.
pub fn inherit_owner<const D: usize>(
    grid: &BlockGrid<D>,
    prev: &HashMap<BlockKey<D>, usize>,
) -> HashMap<BlockId, usize> {
    grid.blocks()
        .map(|(id, node)| {
            let key = node.key();
            let r = if let Some(&r) = prev.get(&key) {
                r
            } else if let Some(r) = key.parent().and_then(|p| prev.get(&p)) {
                *r
            } else {
                *prev
                    .get(&key.child(0))
                    .expect("new block must come from refine or coarsen")
            };
            (id, r)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{adapt, Flag};
    use crate::grid::{GridParams, Transfer};
    use crate::layout::{Boundary, RootLayout};

    fn grid(roots: [i64; 2], max_level: u8) -> BlockGrid<2> {
        BlockGrid::new(
            RootLayout::unit(roots, Boundary::Outflow),
            GridParams::new([4, 4], 2, 1, max_level),
        )
    }

    fn keys_grid(n: i64) -> Vec<BlockKey<2>> {
        (0..n).flat_map(|x| (0..n).map(move |y| BlockKey::new(0, [x, y]))).collect()
    }

    #[test]
    fn all_strategies_cover_all_ranks() {
        let keys = keys_grid(8); // 64 blocks
        let w = vec![1.0; keys.len()];
        for p in [
            Partitioner::sfc(Curve::Morton),
            Partitioner::sfc(Curve::Hilbert),
            Partitioner::round_robin(),
            Partitioner::greedy(),
        ] {
            let a = p.assign_keys(&keys, &w, 8);
            let mut seen = vec![0usize; 8];
            for &r in &a {
                assert!(r < 8);
                seen[r] += 1;
            }
            assert!(seen.iter().all(|&c| c == 8), "{}: {seen:?}", p.name());
        }
    }

    #[test]
    fn sfc_assignment_is_nondecreasing_along_walk() {
        let g = grid([8, 8], 2);
        let p = Partitioner::sfc(Curve::Hilbert);
        let walk = CurveWalk::build(&g, p.curve());
        let w = cell_weights(&g, &walk);
        let a = p.assign(&w, 5);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "{a:?}");
    }

    #[test]
    fn plan_cuts_agree_with_assignment() {
        let g = grid([8, 8], 2);
        let p = Partitioner::sfc(Curve::Hilbert);
        let walk = CurveWalk::build(&g, p.curve());
        let w = cell_weights(&g, &walk);
        let plan = p.plan(&walk, &w, 5, |_| 0);
        let cuts = plan.cuts.as_ref().expect("sfc is contiguous");
        assert_eq!(cuts.len(), 6);
        assert_eq!(cuts[0], 0);
        assert_eq!(cuts[5], walk.len());
        for r in 0..5 {
            for pos in cuts[r]..cuts[r + 1] {
                assert_eq!(plan.assign[pos], r);
            }
        }
    }

    #[test]
    fn plan_moves_are_exact_ownership_diff() {
        let g = grid([4, 4], 2);
        let p = Partitioner::sfc(Curve::Hilbert);
        let walk = CurveWalk::build(&g, p.curve());
        let w = cell_weights(&g, &walk);
        // previous ownership: everything on rank 0
        let plan = p.plan(&walk, &w, 4, |_| 0);
        // exactly the blocks leaving rank 0 move
        let away: usize = plan.assign.iter().filter(|&&r| r != 0).count();
        assert_eq!(plan.migrated(), away);
        assert!(plan.moves.iter().all(|m| m.from == 0 && m.to != 0));
        // re-planning against the new ownership is a no-op
        let owner: HashMap<BlockId, usize> =
            walk.entries().iter().zip(&plan.assign).map(|(e, &r)| (e.id, r)).collect();
        let again = p.plan(&walk, &w, 4, |id| owner[&id]);
        assert!(again.is_noop());
        assert_eq!(again.ranks_touched(), 0);
    }

    #[test]
    fn walk_splice_matches_rebuild_across_adapts() {
        for curve in [Curve::Morton, Curve::Hilbert] {
            let mut g = grid([4, 4], 3);
            let mut walk = CurveWalk::build(&g, curve);
            // refine two blocks, then coarsen one group back
            let a = g.find(BlockKey::new(0, [1, 1])).unwrap();
            let b = g.find(BlockKey::new(0, [2, 2])).unwrap();
            let flags: HashMap<BlockId, Flag> =
                [(a, Flag::Refine), (b, Flag::Refine)].into_iter().collect();
            adapt(&mut g, &flags, Transfer::None);
            walk.apply_adapt(
                &[BlockKey::new(0, [1, 1]), BlockKey::new(0, [2, 2])],
                &[],
                &g,
            );
            assert!(walk.is_current(&g));
            assert_eq!(walk.entries(), CurveWalk::build(&g, curve).entries());

            let kids: HashMap<BlockId, Flag> = BlockKey::new(0, [1, 1])
                .children()
                .map(|ck| (g.find(ck).unwrap(), Flag::Coarsen))
                .collect();
            adapt(&mut g, &kids, Transfer::None);
            walk.apply_adapt(&[], &[BlockKey::new(0, [1, 1])], &g);
            assert_eq!(walk.entries(), CurveWalk::build(&g, curve).entries());
            crate::verify::check_grid(&g).unwrap();
        }
    }

    #[test]
    fn coarsen_splice_exact_for_every_parent_position() {
        // Regression: the zero-offset child anchors the binary search (it
        // shares the parent's corner-cell curve index) but on Hilbert it
        // is not always first of the group's contiguous range — the
        // splice must still replace the whole group. Exercise every
        // parent of a lattice so all four Hilbert child orderings occur.
        for curve in [Curve::Morton, Curve::Hilbert] {
            for px in 0..4i64 {
                for py in 0..4i64 {
                    let parent = BlockKey::new(0, [px, py]);
                    let mut g = grid([4, 4], 2);
                    let id = g.find(parent).unwrap();
                    g.refine(id, Transfer::None).unwrap();
                    let mut walk = CurveWalk::build(&g, curve);
                    g.coarsen(parent, Transfer::None).unwrap();
                    walk.apply_adapt(&[], &[parent], &g);
                    assert_eq!(
                        walk.entries(),
                        CurveWalk::build(&g, curve).entries(),
                        "{curve:?} parent {parent:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn walk_bit_budget_is_stable_under_refinement() {
        // A level-0 grid with a max_level cap of 3 must index its walk on
        // the level-3 lattice from day one, so positions stay comparable
        // after refinement without re-deriving the budget.
        let mut g = grid([2, 2], 3);
        let walk0 = CurveWalk::build(&g, Curve::Hilbert);
        let id = g.find(BlockKey::new(0, [0, 0])).unwrap();
        g.refine(id, Transfer::None).unwrap();
        let mut walk = walk0.clone();
        walk.apply_adapt(&[BlockKey::new(0, [0, 0])], &[], &g);
        let rebuilt = CurveWalk::build(&g, Curve::Hilbert);
        assert_eq!(walk.entries(), rebuilt.entries());
        // parent slot = first child slot
        assert_eq!(walk.entries()[0].key, BlockKey::new(1, [0, 0]));
    }

    #[test]
    fn single_block_refine_moves_few_blocks_at_many_ranks() {
        // The scaling property behind incremental rebalance: one refine
        // must migrate O(ranks whose interval moved), not O(total blocks).
        let mut g = grid([16, 16], 2); // 256 blocks
        let p = Partitioner::sfc(Curve::Hilbert);
        let nranks = 32;
        let walk0 = CurveWalk::build(&g, p.curve());
        let w0 = cell_weights(&g, &walk0);
        let owner: HashMap<BlockId, usize> = walk0
            .entries()
            .iter()
            .zip(p.assign(&w0, nranks))
            .map(|(e, r)| (e.id, r))
            .collect();
        let key = BlockKey::new(0, [7, 7]);
        let id = g.find(key).unwrap();
        g.refine(id, Transfer::None).unwrap();
        let mut walk = walk0;
        walk.apply_adapt(&[key], &[], &g);
        let w = cell_weights(&g, &walk);
        let prev: HashMap<BlockKey<2>, usize> =
            // children inherit the refined parent's owner
            walk.entries()
                .iter()
                .map(|e| {
                    let r = owner.get(&e.id).copied().unwrap_or_else(|| {
                        owner[&id]
                    });
                    (e.key, r)
                })
                .collect();
        let inherited = inherit_owner(&g, &prev);
        let plan = p.plan(&walk, &w, nranks, |bid| inherited[&bid]);
        // 3 extra blocks shift each cut by < 1 average interval; migration
        // must stay well below the 259-block total.
        assert!(plan.migrated() < walk.len() / 4, "migrated {}", plan.migrated());
        assert!(plan.migrated() > 0, "a net weight change must move something");
    }

    #[test]
    fn inherit_owner_covers_refine_and_coarsen() {
        let mut g = grid([2, 2], 2);
        let prev: HashMap<BlockKey<2>, usize> =
            g.blocks().map(|(_, n)| (n.key(), 3)).collect();
        let id = g.find(BlockKey::new(0, [0, 0])).unwrap();
        g.refine(id, Transfer::None).unwrap();
        let o = inherit_owner(&g, &prev);
        assert!(o.values().all(|&r| r == 3), "children inherit the parent's rank");
        // coarsen back: parent inherits first child's owner
        let mut by_key: HashMap<BlockKey<2>, usize> =
            g.blocks().map(|(id, n)| (n.key(), o[&id])).collect();
        by_key.insert(BlockKey::new(1, [0, 0]), 5); // first child moved to rank 5
        g.coarsen(BlockKey::new(0, [0, 0]), Transfer::None).unwrap();
        let o2 = inherit_owner(&g, &by_key);
        let pid = g.find(BlockKey::new(0, [0, 0])).unwrap();
        assert_eq!(o2[&pid], 5);
    }
}

//! Root-block layout and physical domain geometry.
//!
//! The paper's initial configuration is a lattice of root blocks (it "need
//! not be Cartesian" in general — our generalization hook is the root
//! lattice plus per-axis periodicity, which covers every experiment in the
//! paper; see DESIGN.md §6).
//!
//! [`RootLayout`] owns
//! * the number of root blocks per axis,
//! * the physical bounding box of the domain,
//! * the boundary condition attached to each domain face.
//!
//! Its central operation is [`RootLayout::resolve`]: take an unwrapped
//! logical key (which may have stepped outside the root lattice) and either
//! wrap it back in (periodic) or report which domain face it fell off.

use crate::geom::Geometry;
use crate::index::{Face, IVec};
use crate::key::BlockKey;

/// Physical boundary condition attached to a domain face.
///
/// The topology only distinguishes *periodic* (neighbor wraps around) from
/// *physical* (ghost cells are synthesized); how a physical boundary fills
/// ghosts is the solver's business, so the variants here are tags the
/// ghost-fill machinery dispatches on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Boundary {
    /// Wrap around to the opposite side of the domain.
    Periodic,
    /// Zero-gradient (copy the nearest interior cell outward).
    Outflow,
    /// Mirror cells; vector components normal to the face flip sign.
    Reflect,
    /// Ghosts are filled by a user callback registered with the ghost
    /// exchanger (supersonic inflow, analytic solution, …).
    Custom(u16),
}

/// Where an unwrapped key landed after [`RootLayout::resolve`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Resolved<const D: usize> {
    /// Inside the domain (possibly after periodic wrapping); the in-domain
    /// key is returned.
    InDomain(BlockKey<D>),
    /// Outside across a physical boundary; the face of *the domain* that was
    /// crossed is returned along with its boundary condition.
    Outside(Face, Boundary),
}

/// Lattice of root blocks plus the physical domain they tile.
///
/// The paper's generalization that "the initial block configuration need
/// not be Cartesian" is supported through the optional root **mask**:
/// masked-out lattice positions hold no blocks, so L-shaped domains,
/// rings, and solid-body cutouts are all root layouts. Faces toward a
/// masked position behave as physical boundaries with
/// [`RootLayout::hole_boundary`].
#[derive(Clone, Debug)]
pub struct RootLayout<const D: usize> {
    /// Number of root blocks along each axis (all ≥ 1).
    pub roots: IVec<D>,
    /// Physical coordinate of the domain's low corner.
    pub origin: [f64; D],
    /// Physical extent of the domain along each axis (all > 0).
    pub size: [f64; D],
    /// Boundary condition per domain face, indexed by [`Face::index`].
    pub boundaries: [Boundary; 6],
    /// Active-root mask, row-major (x fastest); `None` = full lattice.
    pub mask: Option<Vec<bool>>,
    /// Boundary condition on faces toward masked-out roots.
    pub hole_boundary: Boundary,
    /// Immersed solid geometry binarized into per-cell masks (DESIGN.md
    /// §18); `None` = no immersed bodies. Unlike the root `mask` (whole
    /// lattice positions removed from the topology), geometry keeps every
    /// block and freezes individual solid cells.
    pub geometry: Option<Geometry>,
}

impl<const D: usize> RootLayout<D> {
    /// Unit-cube domain `[0,1]^D` with the given root lattice and a single
    /// boundary condition on every face.
    pub fn unit(roots: IVec<D>, bc: Boundary) -> Self {
        assert!(D >= 1 && D <= 3, "supported dimensions are 1, 2, 3");
        assert!(roots.iter().all(|&r| r >= 1), "need at least one root block per axis");
        RootLayout {
            roots,
            origin: [0.0; D],
            size: [1.0; D],
            boundaries: [bc; 6],
            mask: None,
            hole_boundary: Boundary::Reflect,
            geometry: None,
        }
    }

    /// General constructor.
    pub fn new(
        roots: IVec<D>,
        origin: [f64; D],
        size: [f64; D],
        boundaries: [Boundary; 6],
    ) -> Self {
        assert!(D >= 1 && D <= 3, "supported dimensions are 1, 2, 3");
        assert!(roots.iter().all(|&r| r >= 1), "need at least one root block per axis");
        assert!(size.iter().all(|&s| s > 0.0), "domain extent must be positive");
        RootLayout {
            roots,
            origin,
            size,
            boundaries,
            mask: None,
            hole_boundary: Boundary::Reflect,
            geometry: None,
        }
    }

    /// Builder: install an immersed solid geometry. Grids built from the
    /// layout allocate a mask plane and binarize it (see
    /// `BlockGrid::set_geometry` for installing on a live grid).
    pub fn with_geometry(mut self, geometry: Geometry) -> Self {
        assert!(geometry.validate(), "geometry has non-finite or degenerate parameters");
        self.geometry = Some(geometry);
        self
    }

    /// Builder: restrict the root lattice to the positions where
    /// `active(coords)` is true (the paper's non-Cartesian initial
    /// configuration; also models solid bodies cut out of the domain).
    pub fn with_mask(mut self, active: impl Fn(IVec<D>) -> bool) -> Self {
        let mut mask = Vec::with_capacity(self.num_lattice_positions());
        for c in crate::index::IBox::from_dims(self.roots).iter() {
            mask.push(active(c));
        }
        assert!(mask.iter().any(|&a| a), "mask removes every root block");
        self.mask = Some(mask);
        self
    }

    /// Builder: boundary condition applied at faces toward masked roots
    /// (default [`Boundary::Reflect`] — a solid body).
    pub fn with_hole_boundary(mut self, bc: Boundary) -> Self {
        assert_ne!(bc, Boundary::Periodic, "holes cannot be periodic");
        self.hole_boundary = bc;
        self
    }

    /// Total lattice positions (active or not).
    pub fn num_lattice_positions(&self) -> usize {
        self.roots.iter().product::<i64>() as usize
    }

    /// True if the lattice position holds a root block.
    pub fn is_active(&self, coords: IVec<D>) -> bool {
        match &self.mask {
            None => true,
            Some(m) => {
                let mut idx = 0i64;
                let mut stride = 1i64;
                for d in 0..D {
                    idx += coords[d] * stride;
                    stride *= self.roots[d];
                }
                m[idx as usize]
            }
        }
    }

    /// Set the boundary condition of one face (builder style).
    pub fn with_boundary(mut self, face: Face, bc: Boundary) -> Self {
        self.boundaries[face.index()] = bc;
        self
    }

    /// Set the boundary condition of both faces of an axis (builder style).
    pub fn with_axis_boundary(mut self, dim: usize, bc: Boundary) -> Self {
        self.boundaries[Face::new(dim, false).index()] = bc;
        self.boundaries[Face::new(dim, true).index()] = bc;
        self
    }

    /// Boundary condition on a given domain face.
    #[inline]
    pub fn boundary(&self, face: Face) -> Boundary {
        self.boundaries[face.index()]
    }

    /// True if the axis is periodic (both faces must agree; enforced by
    /// [`RootLayout::validate`]).
    #[inline]
    pub fn periodic(&self, dim: usize) -> bool {
        self.boundaries[Face::new(dim, false).index()] == Boundary::Periodic
    }

    /// Number of blocks along `dim` at refinement `level`.
    #[inline]
    pub fn blocks_at_level(&self, dim: usize, level: u8) -> i64 {
        self.roots[dim] << level
    }

    /// Total number of (active) root blocks.
    pub fn num_roots(&self) -> i64 {
        match &self.mask {
            None => self.roots.iter().product(),
            Some(m) => m.iter().filter(|&&a| a).count() as i64,
        }
    }

    /// Iterate active root keys in row-major (x fastest) order.
    pub fn root_keys(&self) -> impl Iterator<Item = BlockKey<D>> + '_ {
        crate::index::IBox::from_dims(self.roots)
            .iter()
            .filter(|&c| self.is_active(c))
            .map(|c| BlockKey::new(0, c))
    }

    /// Check internal consistency (periodic axes must be periodic on both
    /// faces). Panics with a descriptive message otherwise.
    pub fn validate(&self) {
        for d in 0..D {
            let lo = self.boundaries[Face::new(d, false).index()];
            let hi = self.boundaries[Face::new(d, true).index()];
            let lo_p = lo == Boundary::Periodic;
            let hi_p = hi == Boundary::Periodic;
            assert_eq!(
                lo_p, hi_p,
                "axis {d}: periodic boundary must be set on both faces (got {lo:?}/{hi:?})"
            );
        }
    }

    /// Resolve an unwrapped key: wrap periodic axes, or report the domain
    /// face crossed. If the key is outside along several non-periodic axes
    /// (a corner excursion), the lowest such axis is reported.
    pub fn resolve(&self, key: BlockKey<D>) -> Resolved<D> {
        let mut c = key.coords;
        for d in 0..D {
            let n = self.blocks_at_level(d, key.level);
            if c[d] < 0 || c[d] >= n {
                if self.periodic(d) {
                    c[d] = c[d].rem_euclid(n);
                } else {
                    let face = Face::new(d, c[d] >= n);
                    return Resolved::Outside(face, self.boundary(face));
                }
            }
        }
        let resolved = BlockKey::new(key.level, c);
        if self.mask.is_some() {
            // position of the containing root in the lattice
            let root = resolved.at_coarser_level(0);
            if !self.is_active(root.coords) {
                // the face reported here is a placeholder (holes have no
                // domain face); callers use only the boundary kind
                return Resolved::Outside(Face::new(0, false), self.hole_boundary);
            }
        }
        Resolved::InDomain(resolved)
    }

    /// Physical size of one cell of a block at `level`, given the per-block
    /// cell dims.
    pub fn cell_size(&self, level: u8, block_dims: IVec<D>) -> [f64; D] {
        let mut h = [0.0; D];
        for d in 0..D {
            let ncells = (self.blocks_at_level(d, level) * block_dims[d]) as f64;
            h[d] = self.size[d] / ncells;
        }
        h
    }

    /// Physical low corner of a block.
    pub fn block_origin(&self, key: BlockKey<D>, block_dims: IVec<D>) -> [f64; D] {
        let h = self.cell_size(key.level, block_dims);
        let mut o = [0.0; D];
        for d in 0..D {
            o[d] = self.origin[d] + key.coords[d] as f64 * block_dims[d] as f64 * h[d];
        }
        o
    }

    /// Physical center of cell `(i0,…)` (interior indexing, no ghosts) of a
    /// block.
    pub fn cell_center(
        &self,
        key: BlockKey<D>,
        block_dims: IVec<D>,
        cell: IVec<D>,
    ) -> [f64; D] {
        let h = self.cell_size(key.level, block_dims);
        let o = self.block_origin(key, block_dims);
        let mut x = [0.0; D];
        for d in 0..D {
            x[d] = o[d] + (cell[d] as f64 + 0.5) * h[d];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_layout_roots() {
        let l = RootLayout::<2>::unit([2, 3], Boundary::Outflow);
        assert_eq!(l.num_roots(), 6);
        assert_eq!(l.root_keys().count(), 6);
        assert_eq!(l.blocks_at_level(0, 2), 8);
        assert_eq!(l.blocks_at_level(1, 1), 6);
    }

    #[test]
    fn resolve_periodic_wraps() {
        let l = RootLayout::<2>::unit([2, 2], Boundary::Periodic);
        match l.resolve(BlockKey::new(1, [-1, 2])) {
            Resolved::InDomain(k) => assert_eq!(k, BlockKey::new(1, [3, 2])),
            _ => panic!("expected wrap"),
        }
        match l.resolve(BlockKey::new(0, [2, 0])) {
            Resolved::InDomain(k) => assert_eq!(k, BlockKey::new(0, [0, 0])),
            _ => panic!("expected wrap"),
        }
    }

    #[test]
    fn resolve_physical_reports_face() {
        let l = RootLayout::<2>::unit([2, 2], Boundary::Outflow);
        match l.resolve(BlockKey::new(0, [-1, 0])) {
            Resolved::Outside(f, bc) => {
                assert_eq!(f, Face::new(0, false));
                assert_eq!(bc, Boundary::Outflow);
            }
            _ => panic!("expected outside"),
        }
        match l.resolve(BlockKey::new(1, [1, 4])) {
            Resolved::Outside(f, _) => assert_eq!(f, Face::new(1, true)),
            _ => panic!("expected outside"),
        }
    }

    #[test]
    fn mixed_boundaries() {
        let l = RootLayout::<2>::unit([1, 1], Boundary::Outflow)
            .with_axis_boundary(0, Boundary::Periodic)
            .with_boundary(Face::new(1, false), Boundary::Reflect);
        l.validate();
        assert!(l.periodic(0));
        assert!(!l.periodic(1));
        assert_eq!(l.boundary(Face::new(1, false)), Boundary::Reflect);
        assert_eq!(l.boundary(Face::new(1, true)), Boundary::Outflow);
    }

    #[test]
    #[should_panic(expected = "periodic boundary must be set on both faces")]
    fn half_periodic_rejected() {
        RootLayout::<1>::unit([1], Boundary::Outflow)
            .with_boundary(Face::new(0, false), Boundary::Periodic)
            .validate();
    }

    #[test]
    fn geometry() {
        let l = RootLayout::<2>::new(
            [2, 1],
            [0.0, -1.0],
            [4.0, 2.0],
            [Boundary::Outflow; 6],
        );
        let dims = [4, 4];
        let h0 = l.cell_size(0, dims);
        assert_eq!(h0, [0.5, 0.5]);
        let h1 = l.cell_size(1, dims);
        assert_eq!(h1, [0.25, 0.25]);
        let o = l.block_origin(BlockKey::new(0, [1, 0]), dims);
        assert_eq!(o, [2.0, -1.0]);
        let c = l.cell_center(BlockKey::new(0, [0, 0]), dims, [0, 0]);
        assert_eq!(c, [0.25, -0.75]);
    }
}

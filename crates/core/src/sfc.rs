//! Space-filling-curve orderings of leaf blocks.
//!
//! The paper's parallel runs re-balance load after every adapt by walking
//! the blocks in a locality-preserving order and cutting the walk into `P`
//! contiguous chunks. This module supplies two such orders over block keys:
//!
//! * **Morton** (Z-order) — bit interleaving; cheap, decent locality;
//! * **Hilbert** — the classic Butz/transpose construction; slightly more
//!   expensive to compute, strictly better locality (neighbors on the curve
//!   are always face-adjacent in space).
//!
//! Keys at different levels are linearized by mapping every block to the
//! index of its *first descendant* at a common fine level, which equals the
//! depth-first pre-order of the leaves — exactly the order a cell-based
//! tree's leaf traversal would produce. Ties cannot occur because leaves
//! never overlap.

use crate::key::BlockKey;

/// Which curve to order blocks by.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Curve {
    /// Z-order (bit interleaving).
    Morton,
    /// Hilbert curve (transpose algorithm).
    Hilbert,
}

/// Interleave the low `bits` bits of each coordinate: Morton code,
/// x fastest (bit 0 of x is bit 0 of the code).
pub fn morton_encode<const D: usize>(coords: [u64; D], bits: u32) -> u128 {
    debug_assert!(bits as usize * D <= 128);
    let mut code: u128 = 0;
    for b in 0..bits {
        for (d, &c) in coords.iter().enumerate() {
            let bit = (c >> b) & 1;
            code |= (bit as u128) << (b as usize * D + d);
        }
    }
    code
}

/// Inverse of [`morton_encode`].
pub fn morton_decode<const D: usize>(code: u128, bits: u32) -> [u64; D] {
    let mut coords = [0u64; D];
    for b in 0..bits {
        for (d, c) in coords.iter_mut().enumerate() {
            let bit = (code >> (b as usize * D + d)) & 1;
            *c |= (bit as u64) << b;
        }
    }
    coords
}

/// Hilbert index of a point on the `2^bits`-per-side lattice, using the
/// transpose algorithm (Skilling, 2004): convert the coordinates to the
/// "transposed" Hilbert form, then interleave.
pub fn hilbert_encode<const D: usize>(mut x: [u64; D], bits: u32) -> u128 {
    if D == 1 {
        return x[0] as u128;
    }
    let n = bits;
    // Inverse undo excess work
    let mut q: u64 = 1 << (n - 1);
    while q > 1 {
        let p = q - 1;
        for i in 0..D {
            if x[i] & q != 0 {
                x[0] ^= p; // invert
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode
    for i in 1..D {
        x[i] ^= x[i - 1];
    }
    let mut t: u64 = 0;
    q = 1 << (n - 1);
    while q > 1 {
        if x[D - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }
    // interleave transposed coords, most-significant bit of x[0] first
    let mut code: u128 = 0;
    for b in (0..n).rev() {
        for xi in x.iter() {
            code = (code << 1) | ((xi >> b) & 1) as u128;
        }
    }
    code
}

/// Inverse of [`hilbert_encode`]: coordinates of the `h`-th point of the
/// Hilbert curve on the `2^bits`-per-side lattice.
pub fn hilbert_decode<const D: usize>(h: u128, bits: u32) -> [u64; D] {
    if D == 1 {
        return [h as u64; D];
    }
    let n = bits;
    // de-interleave into the transposed representation
    let mut x = [0u64; D];
    let mut bit_index = (n as usize * D) as i32 - 1;
    for b in (0..n).rev() {
        for xi in x.iter_mut() {
            let bitv = (h >> bit_index) & 1;
            *xi |= (bitv as u64) << b;
            bit_index -= 1;
        }
    }
    // Gray decode by H ^ (H/2)
    let mut t: u64 = x[D - 1] >> 1;
    for i in (1..D).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work
    let mut q: u64 = 2;
    while q != (1u64 << n) {
        let p = q - 1;
        for i in (0..D).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
    x
}

/// Bits per axis needed to index a lattice of `roots_max` root blocks
/// refined `max_level` times. Every key being compared must use the same
/// value — Hilbert indices computed with different bit counts are not
/// comparable.
pub fn required_bits(roots_max: i64, max_level: u8) -> u32 {
    assert!(roots_max >= 1);
    let max_coord = ((roots_max as u64) << max_level) - 1;
    (64 - max_coord.leading_zeros()).max(1)
}

/// Linear index of a block key along the chosen curve, comparable across
/// levels. The key is mapped to its low-corner descendant on the
/// `2^bits`-per-side lattice at `max_level`; because aligned sub-boxes are
/// contiguous on both curves and leaves never overlap, this yields a total
/// order on any leaf set. `max_level` and `bits` must be the same for every
/// key being compared (see [`required_bits`]).
pub fn curve_index<const D: usize>(
    key: &BlockKey<D>,
    max_level: u8,
    bits: u32,
    curve: Curve,
) -> u128 {
    assert!(key.level <= max_level);
    let shift = (max_level - key.level) as u32;
    let mut c = [0u64; D];
    for d in 0..D {
        let x = key.coords[d];
        debug_assert!(x >= 0, "curve_index requires in-domain keys");
        c[d] = (x as u64) << shift;
        debug_assert!(c[d] < (1u64 << bits), "coordinate exceeds bit budget");
    }
    match curve {
        Curve::Morton => morton_encode(c, bits),
        Curve::Hilbert => hilbert_encode(c, bits),
    }
}

/// Sort leaf keys along a curve. Returns indices into the input in curve
/// order.
pub fn curve_order<const D: usize>(keys: &[BlockKey<D>], curve: Curve) -> Vec<usize> {
    let max_level = keys.iter().map(|k| k.level).max().unwrap_or(0);
    let roots_max = keys
        .iter()
        .map(|k| {
            let shift = k.level; // coord at level L spans root coord / 2^L
            k.coords.iter().map(|&c| (c >> shift) + 1).max().unwrap_or(1)
        })
        .max()
        .unwrap_or(1);
    let bits = required_bits(roots_max, max_level);
    let mut idx: Vec<usize> = (0..keys.len()).collect();
    idx.sort_by_key(|&i| curve_index(&keys[i], max_level, bits, curve));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morton_roundtrip_2d() {
        for x in 0..16u64 {
            for y in 0..16u64 {
                let c = morton_encode::<2>([x, y], 6);
                assert_eq!(morton_decode::<2>(c, 6), [x, y]);
            }
        }
    }

    #[test]
    fn morton_roundtrip_3d() {
        for x in [0u64, 1, 5, 7] {
            for y in [0u64, 2, 6] {
                for z in [0u64, 3, 7] {
                    let c = morton_encode::<3>([x, y, z], 4);
                    assert_eq!(morton_decode::<3>(c, 4), [x, y, z]);
                }
            }
        }
    }

    #[test]
    fn morton_order_first_quadrant_first() {
        assert!(morton_encode::<2>([0, 0], 4) < morton_encode::<2>([1, 0], 4));
        assert!(morton_encode::<2>([1, 1], 4) < morton_encode::<2>([0, 2], 4));
    }

    #[test]
    fn hilbert_is_a_bijection_2d() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..16u64 {
            for y in 0..16u64 {
                assert!(seen.insert(hilbert_encode::<2>([x, y], 4)));
            }
        }
        assert_eq!(seen.len(), 256);
        // indices form exactly 0..256
        assert!(seen.iter().all(|&h| h < 256));
    }

    #[test]
    fn hilbert_is_a_bijection_3d() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..8u64 {
            for y in 0..8u64 {
                for z in 0..8u64 {
                    assert!(seen.insert(hilbert_encode::<3>([x, y, z], 3)));
                }
            }
        }
        assert_eq!(seen.len(), 512);
        assert!(seen.iter().all(|&h| h < 512));
    }

    #[test]
    fn hilbert_decode_roundtrip() {
        for bits in [2u32, 3, 4] {
            let n = 1u64 << bits;
            for x in 0..n {
                for y in 0..n {
                    let h = hilbert_encode::<2>([x, y], bits);
                    assert_eq!(hilbert_decode::<2>(h, bits), [x, y], "2d bits={bits}");
                }
            }
        }
        for x in 0..8u64 {
            for y in 0..8 {
                for z in 0..8 {
                    let h = hilbert_encode::<3>([x, y, z], 3);
                    assert_eq!(hilbert_decode::<3>(h, 3), [x, y, z]);
                }
            }
        }
    }

    #[test]
    fn hilbert_consecutive_indices_are_adjacent_2d() {
        // The defining property: consecutive curve points are grid neighbors.
        let n = 16u64;
        let mut by_index = vec![[0u64; 2]; (n * n) as usize];
        for x in 0..n {
            for y in 0..n {
                by_index[hilbert_encode::<2>([x, y], 4) as usize] = [x, y];
            }
        }
        for w in by_index.windows(2) {
            let d = w[0][0].abs_diff(w[1][0]) + w[0][1].abs_diff(w[1][1]);
            assert_eq!(d, 1, "curve jump between {:?} and {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn hilbert_consecutive_indices_are_adjacent_3d() {
        let n = 8u64;
        let mut by_index = vec![[0u64; 3]; (n * n * n) as usize];
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    by_index[hilbert_encode::<3>([x, y, z], 3) as usize] = [x, y, z];
                }
            }
        }
        for w in by_index.windows(2) {
            let d = w[0][0].abs_diff(w[1][0])
                + w[0][1].abs_diff(w[1][1])
                + w[0][2].abs_diff(w[1][2]);
            assert_eq!(d, 1, "curve jump between {:?} and {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn curve_index_orders_mixed_levels() {
        // A parent's index must sit at/before all of its descendants and the
        // descendants of an earlier sibling must come before a later sibling.
        let parent = BlockKey::<2>::new(0, [0, 0]);
        let next = BlockKey::<2>::new(0, [1, 0]);
        let kids: Vec<_> = parent.children().collect();
        let bits = required_bits(2, 3);
        for k in &kids {
            assert!(
                curve_index(k, 3, bits, Curve::Morton)
                    < curve_index(&next, 3, bits, Curve::Morton),
                "descendant of an earlier block must precede the next block"
            );
        }
        assert_eq!(
            curve_index(&parent, 3, bits, Curve::Morton),
            curve_index(&kids[0], 3, bits, Curve::Morton),
            "parent maps to its first descendant"
        );
    }

    #[test]
    fn curve_order_is_a_permutation() {
        let keys: Vec<BlockKey<2>> = (0..4)
            .flat_map(|x| (0..4).map(move |y| BlockKey::new(1, [x, y])))
            .collect();
        for curve in [Curve::Morton, Curve::Hilbert] {
            let ord = curve_order(&keys, curve);
            let mut sorted = ord.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        }
    }

    #[test]
    fn hilbert_locality_beats_morton() {
        // Sum of spatial jumps along the curve over a 16x16 lattice: Hilbert
        // must be strictly better (all jumps are 1).
        let n = 16u64;
        let mut pts: Vec<[u64; 2]> = Vec::new();
        for x in 0..n {
            for y in 0..n {
                pts.push([x, y]);
            }
        }
        let total = |enc: &dyn Fn([u64; 2]) -> u128| {
            let mut v = pts.clone();
            v.sort_by_key(|&p| enc(p));
            v.windows(2)
                .map(|w| w[0][0].abs_diff(w[1][0]) + w[0][1].abs_diff(w[1][1]))
                .sum::<u64>()
        };
        let m = total(&|p| morton_encode::<2>(p, 5));
        let h = total(&|p| hilbert_encode::<2>(p, 5));
        assert!(h < m, "hilbert total jump {h} must beat morton {m}");
        assert_eq!(h, (n * n - 1), "hilbert jumps are all unit steps");
    }
}

//! Flag-driven adaptation with refinement cascading.
//!
//! Users mark leaves for refinement or coarsening (from any criterion);
//! [`adapt`] turns an arbitrary flag set into a legal sequence of
//! [`BlockGrid::refine`]/[`BlockGrid::coarsen`] calls:
//!
//! 1. **Cascade** — a refinement next to a much coarser block forces that
//!    block to refine too, possibly propagating across the grid (paper:
//!    "Refinement can potentially cascade across the grid"). The cascade
//!    closes the flag set under the `max_level_jump` constraint.
//! 2. **Coarsen vetting** — a sibling group coarsens only if all `2^D`
//!    siblings are flagged leaves, none is also being refined, and the
//!    resulting parent would not violate the jump constraint against the
//!    *post-refinement* levels of its neighbors.
//! 3. **Execution order** — refinements run coarsest-first (so cascaded
//!    parents split before their finer neighbors), then coarsenings.
//!
//! The function reports what it did in an [`AdaptReport`], which the
//! cascade ablation (ABL-4) uses to measure how far flags propagate.

use std::collections::{HashMap, HashSet};

use crate::arena::BlockId;
use crate::grid::{BlockGrid, FaceConn, Transfer};
use crate::index::Face;
use crate::key::BlockKey;

/// Per-leaf adaptation request.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Flag {
    /// Leave the block alone.
    #[default]
    Keep,
    /// Split into `2^D` children.
    Refine,
    /// Merge with siblings into the parent (requires the whole group).
    Coarsen,
}

/// What one [`adapt`] call did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdaptReport {
    /// Blocks refined because the caller asked.
    pub refined_requested: usize,
    /// Blocks refined only to preserve the jump constraint (cascade).
    pub refined_cascade: usize,
    /// Sibling groups coarsened.
    pub coarsened_groups: usize,
    /// Coarsen flags dropped (incomplete group, conflict, or jump).
    pub coarsen_vetoed: usize,
    /// Number of cascade sweeps until the flag set closed.
    pub cascade_rounds: usize,
}

impl AdaptReport {
    /// Total refinements performed.
    pub fn refined_total(&self) -> usize {
        self.refined_requested + self.refined_cascade
    }

    /// True if the grid changed.
    pub fn changed(&self) -> bool {
        self.refined_total() > 0 || self.coarsened_groups > 0
    }
}

/// Close a refine set under the jump constraint without touching the grid.
/// Returns keys→(requested?) for everything that must refine. Exposed for
/// the ABL-4 cascade experiment.
pub fn cascade_closure<const D: usize>(
    grid: &BlockGrid<D>,
    refine: &HashSet<BlockId>,
) -> (HashMap<BlockKey<D>, bool>, usize) {
    let k = grid.params().max_level_jump as i32;
    // work on keys with their post-adapt level
    let mut flagged: HashMap<BlockKey<D>, bool> = HashMap::new();
    let mut work: Vec<BlockId> = Vec::new();
    for &id in refine {
        if grid.contains(id) && grid.can_refine_level(id) {
            flagged.insert(grid.block(id).key(), true);
            work.push(id);
        }
    }
    let mut rounds = 0;
    let mut frontier = work;
    while !frontier.is_empty() {
        rounds += 1;
        let mut next = Vec::new();
        for id in frontier.drain(..) {
            let node = grid.block(id);
            let new_level = node.key().level as i32 + 1;
            for f in Face::all::<D>() {
                if let FaceConn::Blocks(v) = node.face(f) {
                    for &n in v {
                        let nk = grid.block(n).key();
                        let n_new = nk.level as i32
                            + if flagged.contains_key(&nk) { 1 } else { 0 };
                        if new_level - n_new > k
                            && !flagged.contains_key(&nk)
                            && grid.can_refine_level(n)
                        {
                            flagged.insert(nk, false);
                            next.push(n);
                        }
                    }
                }
            }
        }
        frontier = next;
    }
    (flagged, rounds)
}

/// The legal adaptation derived from a flag set, before anything runs:
/// the cascade-closed refine set and the vetted coarsen groups. Produced
/// by [`plan_adapt`], consumed by [`apply_adapt`]. Distributed executors
/// plan first so they know — before the grid restructures — exactly which
/// sibling interiors the conservative coarsen transfer will read.
#[derive(Clone, Debug, Default)]
pub struct AdaptPlan<const D: usize> {
    /// Keys to refine (`true` = requested, `false` = cascade), sorted
    /// coarsest-first — the execution order.
    pub refine: Vec<(BlockKey<D>, bool)>,
    /// Approved coarsen groups (parent keys), sorted finest-first — the
    /// execution order. Groups may still be vetoed at apply time if a
    /// cascade refinement invalidates them.
    pub coarsen: Vec<BlockKey<D>>,
    /// Cascade sweeps until the refine set closed.
    pub cascade_rounds: usize,
    /// Coarsen flags already dropped during planning.
    pub vetoed: usize,
}

impl<const D: usize> AdaptPlan<D> {
    /// True if the plan requests no restructuring.
    pub fn is_empty(&self) -> bool {
        self.refine.is_empty() && self.coarsen.is_empty()
    }
}

/// Turn a sparse flag map into a legal [`AdaptPlan`] without touching the
/// grid: close the refine set under the jump constraint, then vet coarsen
/// groups against the post-refinement levels.
pub fn plan_adapt<const D: usize>(
    grid: &BlockGrid<D>,
    flags: &HashMap<BlockId, Flag>,
) -> AdaptPlan<D> {
    let mut plan = AdaptPlan::default();

    let refine_set: HashSet<BlockId> = flags
        .iter()
        .filter(|(_, f)| **f == Flag::Refine)
        .map(|(id, _)| *id)
        .collect();
    let (to_refine, rounds) = cascade_closure(grid, &refine_set);
    plan.cascade_rounds = rounds;

    // --- vet coarsen groups against post-refinement levels -------------
    let k = grid.params().max_level_jump as i32;
    let coarsen_ids: HashSet<BlockId> = flags
        .iter()
        .filter(|(_, f)| **f == Flag::Coarsen)
        .map(|(id, _)| *id)
        .filter(|id| grid.contains(*id))
        .collect();
    let mut groups: HashMap<BlockKey<D>, Vec<BlockId>> = HashMap::new();
    for &id in &coarsen_ids {
        if let Some(p) = grid.block(id).key().parent() {
            groups.entry(p).or_default().push(id);
        } else {
            plan.vetoed += 1; // level-0 block cannot coarsen
        }
    }
    'group: for (pkey, members) in &groups {
        if members.len() != (1 << D) {
            plan.vetoed += members.len();
            continue;
        }
        for &id in members {
            let key = grid.block(id).key();
            if to_refine.contains_key(&key) {
                plan.vetoed += members.len();
                continue 'group; // refine wins over coarsen
            }
            // jump check against post-refinement neighbor levels
            for f in Face::all::<D>() {
                if let FaceConn::Blocks(v) = grid.block(id).face(f) {
                    for &n in v {
                        let nk = grid.block(n).key();
                        let n_new = nk.level as i32
                            + if to_refine.contains_key(&nk) { 1 } else { 0 };
                        if n_new - (pkey.level as i32) > k {
                            plan.vetoed += members.len();
                            continue 'group;
                        }
                    }
                }
            }
        }
        plan.coarsen.push(*pkey);
    }

    plan.refine = to_refine.iter().map(|(k, r)| (*k, *r)).collect();
    plan.refine.sort_by_key(|(k, _)| (k.level, k.coords));
    plan.coarsen.sort_by_key(|k| std::cmp::Reverse((k.level, k.coords)));
    plan
}

/// Execute an [`AdaptPlan`]: refinements coarsest-first, then coarsenings
/// finest-first (re-vetted, since a cascade refinement may invalidate a
/// group after planning). Returns what happened.
pub fn apply_adapt<const D: usize>(
    grid: &mut BlockGrid<D>,
    plan: &AdaptPlan<D>,
    transfer: Transfer,
) -> AdaptReport {
    let mut report = AdaptReport {
        cascade_rounds: plan.cascade_rounds,
        coarsen_vetoed: plan.vetoed,
        ..AdaptReport::default()
    };
    for &(key, requested) in &plan.refine {
        // ids may have changed as earlier refinements ran; go through keys
        let id = grid
            .find(key)
            .expect("flagged block vanished during adapt");
        grid.refine(id, transfer)
            .expect("cascade closure guarantees refinement legality");
        if requested {
            report.refined_requested += 1;
        } else {
            report.refined_cascade += 1;
        }
    }
    for &pkey in &plan.coarsen {
        // a cascade refinement may have invalidated the group after vetting
        if grid.can_coarsen(pkey) {
            grid.coarsen(pkey, transfer)
                .expect("can_coarsen vetted this group");
            report.coarsened_groups += 1;
        } else {
            report.coarsen_vetoed += 1 << D;
        }
    }
    report
}

/// Apply a flag map to the grid. `flags` may be sparse; unlisted leaves are
/// [`Flag::Keep`]. Returns what happened. Equivalent to [`plan_adapt`]
/// followed by [`apply_adapt`].
pub fn adapt<const D: usize>(
    grid: &mut BlockGrid<D>,
    flags: &HashMap<BlockId, Flag>,
    transfer: Transfer,
) -> AdaptReport {
    let plan = plan_adapt(grid, flags);
    apply_adapt(grid, &plan, transfer)
}

/// Refine every leaf whose region intersects the ball around `center` with
/// radius `r`, repeatedly, until such leaves reach `target_level`. A common
/// way to set up feature-tracking test grids; cascades as needed.
pub fn refine_ball_to_level<const D: usize>(
    grid: &mut BlockGrid<D>,
    center: [f64; D],
    r: f64,
    target_level: u8,
    transfer: Transfer,
) {
    loop {
        let mut flags: HashMap<BlockId, Flag> = HashMap::new();
        for (id, node) in grid.blocks() {
            let key = node.key();
            if key.level >= target_level {
                continue;
            }
            let m = grid.params().block_dims;
            let o = grid.layout().block_origin(key, m);
            let h = grid.layout().cell_size(key.level, m);
            // closest point of the block's box to the center
            let mut d2 = 0.0;
            for dim in 0..D {
                let lo = o[dim];
                let hi = o[dim] + h[dim] * m[dim] as f64;
                let c = center[dim].clamp(lo, hi);
                d2 += (center[dim] - c) * (center[dim] - c);
            }
            if d2 <= r * r {
                flags.insert(id, Flag::Refine);
            }
        }
        if flags.is_empty() {
            break;
        }
        let rep = adapt(grid, &flags, transfer);
        if !rep.changed() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridParams;
    use crate::layout::{Boundary, RootLayout};
    use crate::verify;

    fn grid(roots: [i64; 2], max_level: u8) -> BlockGrid<2> {
        BlockGrid::new(
            RootLayout::unit(roots, Boundary::Outflow),
            GridParams::new([4, 4], 2, 1, max_level),
        )
    }

    fn flag_all(ids: &[BlockId], f: Flag) -> HashMap<BlockId, Flag> {
        ids.iter().map(|&i| (i, f)).collect()
    }

    #[test]
    fn simple_refine_flags() {
        let mut g = grid([2, 2], 4);
        let id = g.find(BlockKey::new(0, [0, 0])).unwrap();
        let rep = adapt(&mut g, &flag_all(&[id], Flag::Refine), Transfer::None);
        assert_eq!(rep.refined_requested, 1);
        assert_eq!(rep.refined_cascade, 0);
        assert_eq!(g.num_blocks(), 7);
        verify::check_grid(&g).unwrap();
    }

    #[test]
    fn cascade_forces_coarse_neighbor() {
        // Refine a corner to level 2 directly: its coarse neighbors must
        // cascade to level 1 (paper's Fig. 2 discussion).
        let mut g = grid([2, 2], 4);
        let id = g.find(BlockKey::new(0, [0, 0])).unwrap();
        adapt(&mut g, &flag_all(&[id], Flag::Refine), Transfer::None);
        // refine the innermost child (1,1) at level 1 -> forces nothing yet
        let c = g.find(BlockKey::new(1, [1, 1])).unwrap();
        let rep = adapt(&mut g, &flag_all(&[c], Flag::Refine), Transfer::None);
        // (1,1)L1 neighbors: x+: root (1,0)L0, y+: root (0,1)L0 -> cascade
        assert_eq!(rep.refined_requested, 1);
        assert_eq!(rep.refined_cascade, 2);
        verify::check_grid(&g).unwrap();
        // all face jumps within 1
        for id in g.block_ids() {
            for f in Face::all::<2>() {
                assert!(g.face_level_jump(id, f).abs() <= 1);
            }
        }
    }

    #[test]
    fn cascade_across_grid() {
        // A long domain: refining the leftmost block repeatedly ripples
        // right (the paper: "Refinement can potentially cascade").
        let mut g = BlockGrid::<2>::new(
            RootLayout::unit([6, 1], Boundary::Outflow),
            GridParams::new([4, 4], 2, 1, 6),
        );
        // take the left column to level 3 step by step
        for target in 1..=3u8 {
            let ids: Vec<BlockId> = g
                .blocks()
                .filter(|(_, n)| {
                    n.key().level == target - 1 && n.key().coords[0] == 0
                })
                .map(|(id, _)| id)
                .collect();
            adapt(&mut g, &flag_all(&ids, Flag::Refine), Transfer::None);
        }
        verify::check_grid(&g).unwrap();
        let hist = g.level_histogram();
        assert!(hist.len() >= 4);
        // levels must step down moving right; at least one level-1 and one
        // level-2 block must have been created by cascade
        assert!(hist[1] > 0 && hist[2] > 0 && hist[3] > 0);
    }

    #[test]
    fn coarsen_complete_group() {
        let mut g = grid([2, 2], 4);
        let id = g.find(BlockKey::new(0, [0, 0])).unwrap();
        adapt(&mut g, &flag_all(&[id], Flag::Refine), Transfer::None);
        let kids: Vec<BlockId> = g
            .blocks()
            .filter(|(_, n)| n.key().level == 1)
            .map(|(id, _)| id)
            .collect();
        assert_eq!(kids.len(), 4);
        let rep = adapt(&mut g, &flag_all(&kids, Flag::Coarsen), Transfer::None);
        assert_eq!(rep.coarsened_groups, 1);
        assert_eq!(g.num_blocks(), 4);
        verify::check_grid(&g).unwrap();
    }

    #[test]
    fn incomplete_group_vetoed() {
        let mut g = grid([2, 2], 4);
        let id = g.find(BlockKey::new(0, [0, 0])).unwrap();
        adapt(&mut g, &flag_all(&[id], Flag::Refine), Transfer::None);
        let one = g.find(BlockKey::new(1, [0, 0])).unwrap();
        let rep = adapt(&mut g, &flag_all(&[one], Flag::Coarsen), Transfer::None);
        assert_eq!(rep.coarsened_groups, 0);
        assert_eq!(rep.coarsen_vetoed, 1);
        assert_eq!(g.num_blocks(), 7);
    }

    #[test]
    fn refine_wins_over_coarsen() {
        let mut g = grid([2, 2], 4);
        let id = g.find(BlockKey::new(0, [0, 0])).unwrap();
        adapt(&mut g, &flag_all(&[id], Flag::Refine), Transfer::None);
        let kids: Vec<BlockId> = g
            .blocks()
            .filter(|(_, n)| n.key().level == 1)
            .map(|(id, _)| id)
            .collect();
        let mut flags = flag_all(&kids, Flag::Coarsen);
        flags.insert(kids[0], Flag::Refine);
        let rep = adapt(&mut g, &flags, Transfer::None);
        assert_eq!(rep.coarsened_groups, 0);
        assert_eq!(rep.refined_requested, 1);
        verify::check_grid(&g).unwrap();
    }

    #[test]
    fn coarsen_vetoed_by_post_refine_jump() {
        let mut g = grid([2, 1], 4);
        let a = g.find(BlockKey::new(0, [0, 0])).unwrap();
        let b = g.find(BlockKey::new(0, [1, 0])).unwrap();
        adapt(&mut g, &flag_all(&[a], Flag::Refine), Transfer::None);
        adapt(&mut g, &flag_all(&[b], Flag::Refine), Transfer::None);
        // coarsen a's children while refining b's children next to them
        let a_kids: Vec<BlockId> = g
            .blocks()
            .filter(|(_, n)| n.key().level == 1 && n.key().coords[0] < 2)
            .map(|(id, _)| id)
            .collect();
        let b_edge = g.find(BlockKey::new(1, [2, 0])).unwrap();
        let mut flags = flag_all(&a_kids, Flag::Coarsen);
        flags.insert(b_edge, Flag::Refine);
        let rep = adapt(&mut g, &flags, Transfer::None);
        assert_eq!(rep.coarsened_groups, 0, "L2 neighbor blocks coarsening to L0");
        assert!(rep.coarsen_vetoed >= 4);
        verify::check_grid(&g).unwrap();
    }

    #[test]
    fn refine_ball_makes_graded_grid() {
        let mut g = BlockGrid::<2>::new(
            RootLayout::unit([2, 2], Boundary::Outflow),
            GridParams::new([4, 4], 2, 1, 4),
        );
        refine_ball_to_level(&mut g, [0.5, 0.5], 0.1, 3, Transfer::None);
        verify::check_grid(&g).unwrap();
        assert_eq!(g.max_level_present(), 3);
        for id in g.block_ids() {
            for f in Face::all::<2>() {
                assert!(g.face_level_jump(id, f).abs() <= 1);
            }
        }
    }

    #[test]
    fn k2_cascades_less() {
        // Refining the children that touch still-coarse territory forces a
        // cascade under k = 1 but not under k = 2 (paper's
        // loosened-constraint generalization).
        let mk = |k: u8| {
            let mut g = BlockGrid::<2>::new(
                RootLayout::unit([4, 1], Boundary::Outflow),
                GridParams::new([8, 8], 2, 1, 6).with_max_jump(k),
            );
            for key in [
                BlockKey::new(0, [0, 0]),
                BlockKey::new(1, [1, 0]), // touches root (1,0) at L0
                BlockKey::new(1, [1, 1]),
            ] {
                let id = g.find(key).unwrap();
                adapt(
                    &mut g,
                    &[(id, Flag::Refine)].into_iter().collect(),
                    Transfer::None,
                );
            }
            verify::check_grid(&g).unwrap();
            g.num_blocks()
        };
        let n1 = mk(1);
        let n2 = mk(2);
        assert_eq!(n1, 16, "k=1 cascades into root (1,0)");
        assert_eq!(n2, 13, "k=2 needs no cascade");
    }
}

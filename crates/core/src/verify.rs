//! Structural invariant checking.
//!
//! The neighbor pointers are maintained *incrementally* as the grid adapts
//! — the paper's design — so tests need an independent oracle. This module
//! recomputes everything from the key map and domain tiling and compares:
//!
//! 1. the leaves tile the domain exactly (no gaps, no overlaps),
//! 2. every stored face pointer equals a from-scratch recomputation,
//! 3. pointers are symmetric (if A points at B across a face, B points
//!    back across the opposite face),
//! 4. face level jumps respect `max_level_jump`,
//! 5. finer-neighbor lists respect the paper's `2^(k(d-1))` bound,
//! 6. solid-mask planes exist exactly when a geometry is installed and
//!    hold the canonical binarization at every level (DESIGN.md §18).
//!
//! Property-based tests drive random adapt sequences through
//! [`check_grid`]; it is also cheap enough to call in debug builds of the
//! examples.

use crate::grid::{BlockGrid, FaceConn};
use crate::index::{max_face_neighbors, Face};

/// Check every structural invariant; `Err` carries a human-readable
/// description of the first violation found.
pub fn check_grid<const D: usize>(grid: &BlockGrid<D>) -> Result<(), String> {
    check_tiling(grid)?;
    check_pointers(grid)?;
    check_symmetry(grid)?;
    check_jumps(grid)?;
    check_neighbor_bounds(grid)?;
    check_masks(grid)?;
    Ok(())
}

/// Solid masks are consistent with the installed geometry: every block
/// carries a mask plane iff the layout has a geometry, and every
/// allocated (non-pad) cell's mask — ghosts included — equals the
/// canonical re-binarization [`BlockGrid::expected_solid`], stored as
/// exactly 1.0 or 0.0. Catches stale masks after adaptation as well as
/// planes that stepping or ghost fills scribbled over.
pub fn check_masks<const D: usize>(grid: &BlockGrid<D>) -> Result<(), String> {
    let has_geom = grid.layout().geometry.is_some();
    for (id, node) in grid.blocks() {
        let f = node.field();
        if f.shape().mask_plane != has_geom {
            return Err(format!(
                "block {:?}: mask plane {} but geometry {}",
                node.key(),
                if f.shape().mask_plane { "present" } else { "absent" },
                if has_geom { "installed" } else { "absent" },
            ));
        }
        if !has_geom {
            continue;
        }
        let mask = f.mask().expect("mask plane just checked present");
        for c in f.shape().ghosted_box().iter() {
            let got = mask[f.shape().lin(c)];
            if got != 0.0 && got != 1.0 {
                return Err(format!(
                    "block {:?} cell {c:?}: mask value {got} is not 0.0/1.0",
                    node.key()
                ));
            }
            let want = grid.expected_solid(id, c);
            if (got != 0.0) != want {
                return Err(format!(
                    "block {:?} cell {c:?}: mask {got} disagrees with geometry \
                     binarization (expected {})",
                    node.key(),
                    if want { "solid" } else { "fluid" },
                ));
            }
        }
    }
    Ok(())
}

/// Leaves tile the domain exactly: key lookup is consistent, no leaf is an
/// ancestor of another, and total covered volume matches the domain.
pub fn check_tiling<const D: usize>(grid: &BlockGrid<D>) -> Result<(), String> {
    let max_l = grid.max_level_present();
    let mut covered: u128 = 0;
    for (id, node) in grid.blocks() {
        let key = node.key();
        if grid.find(key) != Some(id) {
            return Err(format!("key map lookup of {key:?} does not return its id"));
        }
        // no live ancestor
        let mut k = key;
        while let Some(p) = k.parent() {
            if grid.find(p).is_some() {
                return Err(format!("leaf {key:?} has live ancestor {p:?}"));
            }
            k = p;
        }
        covered += 1u128 << ((max_l - key.level) as u32 * D as u32);
    }
    let want = grid.layout().num_roots() as u128 * (1u128 << (max_l as u32 * D as u32));
    if covered != want {
        return Err(format!(
            "leaves cover {covered} fine-units of {want}: gaps or overlaps"
        ));
    }
    Ok(())
}

/// Every stored face pointer equals a from-scratch recomputation.
pub fn check_pointers<const D: usize>(grid: &BlockGrid<D>) -> Result<(), String> {
    for (_, node) in grid.blocks() {
        for f in Face::all::<D>() {
            let stored = node.face(f);
            let fresh = grid.compute_face_conn(node.key(), f);
            if *stored != fresh {
                return Err(format!(
                    "block {:?} face {f:?}: stored {stored:?} != recomputed {fresh:?}",
                    node.key()
                ));
            }
        }
    }
    Ok(())
}

/// If A lists B across face f, then B lists A across some face (f.opposite()
/// in the absence of periodic wrap; with wrap the faces can coincide, so we
/// only require membership on the opposite axis side or — for tiny periodic
/// domains — any face of the same axis).
pub fn check_symmetry<const D: usize>(grid: &BlockGrid<D>) -> Result<(), String> {
    for (id, node) in grid.blocks() {
        for f in Face::all::<D>() {
            for &nid in node.face(f).ids() {
                let n = grid.block(nid);
                let axis = f.dim as usize;
                let back = n
                    .face(f.opposite())
                    .ids()
                    .contains(&id)
                    || n.face(f).ids().contains(&id) // periodic self-axis wrap
                    || nid == id; // self-neighbor in 1-root periodic axes
                if !back {
                    return Err(format!(
                        "asymmetric pointer: {:?} -> {:?} across axis {axis} not reciprocated",
                        node.key(),
                        n.key()
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Face level jumps stay within `max_level_jump`.
pub fn check_jumps<const D: usize>(grid: &BlockGrid<D>) -> Result<(), String> {
    let k = grid.params().max_level_jump as i32;
    for (id, node) in grid.blocks() {
        for f in Face::all::<D>() {
            let j = grid.face_level_jump(id, f);
            if j.abs() > k {
                return Err(format!(
                    "block {:?} face {f:?}: level jump {j} exceeds {k}",
                    node.key()
                ));
            }
        }
    }
    Ok(())
}

/// Finer-neighbor lists never exceed the paper's `2^(k(d-1))` bound.
pub fn check_neighbor_bounds<const D: usize>(grid: &BlockGrid<D>) -> Result<(), String> {
    let k = grid.params().max_level_jump as usize;
    let bound = max_face_neighbors(D, k);
    for (_, node) in grid.blocks() {
        for f in Face::all::<D>() {
            if let FaceConn::Blocks(v) = node.face(f) {
                if v.len() > bound {
                    return Err(format!(
                        "block {:?} face {f:?}: {} neighbors exceeds 2^(k(d-1)) = {bound}",
                        node.key(),
                        v.len()
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{GridParams, Transfer};
    use crate::key::BlockKey;
    use crate::layout::{Boundary, RootLayout};

    #[test]
    fn fresh_grid_passes() {
        let g = BlockGrid::<3>::new(
            RootLayout::unit([2, 2, 2], Boundary::Outflow),
            GridParams::new([4, 4, 4], 2, 1, 3),
        );
        check_grid(&g).unwrap();
    }

    #[test]
    fn refined_grid_passes() {
        let mut g = BlockGrid::<2>::new(
            RootLayout::unit([2, 2], Boundary::Periodic),
            GridParams::new([4, 4], 2, 2, 4),
        );
        let a = g.find(BlockKey::new(0, [0, 0])).unwrap();
        g.refine(a, Transfer::None).unwrap();
        // a second-level refinement needs the cascade (every child of the
        // refined root touches level-0 roots in a 2x2 periodic domain)
        let b = g.find(BlockKey::new(1, [1, 1])).unwrap();
        let rep = crate::balance::adapt(
            &mut g,
            &[(b, crate::balance::Flag::Refine)].into_iter().collect(),
            Transfer::None,
        );
        assert!(rep.refined_cascade > 0);
        check_grid(&g).unwrap();
    }

    #[test]
    fn one_d_grid_passes() {
        let mut g = BlockGrid::<1>::new(
            RootLayout::unit([4], Boundary::Outflow),
            GridParams::new([8], 2, 3, 4),
        );
        let a = g.find(BlockKey::new(0, [1])).unwrap();
        g.refine(a, Transfer::None).unwrap();
        check_grid(&g).unwrap();
    }
}

//! Immersed solid geometry as signed-distance functions.
//!
//! An adaptive block grid handles complex bodies the same way
//! binarized-octree IB methods do: a signed-distance function (SDF) is
//! sampled at cell centers and thresholded into a per-cell solid mask
//! (see DESIGN.md §18). [`Geometry`] is a closed expression tree of
//! analytic primitives and CSG combinators rather than a trait object so
//! that
//!
//! * every rank of a distributed run can re-binarize masks bit-for-bit
//!   from the replicated [`crate::layout::RootLayout`],
//! * checkpoints and snapshots can serialize the geometry (and therefore
//!   the mask plane) compactly, and
//! * installing the same geometry twice is detectable (`PartialEq`), so
//!   executors can sync a configured geometry onto a grid as a no-op in
//!   the steady state.
//!
//! The convention is `sd(x) < 0.0` ⇔ solid. All primitives are
//! 1-Lipschitz signed distances (the cuboid interior distance
//! underestimates, which keeps the bound), and `min`/`max`/negation
//! preserve the Lipschitz bound, so `|sd(center)| > r` proves the zero
//! level set does not cross a ball of radius `r` — the guarantee the
//! geometry refinement criterion in `ablock_amr` builds on.
//!
//! Positions are always `[f64; 3]`; lower-dimensional grids zero-extend
//! (see [`Geometry::sd`]), so a `Cylinder` along `z` is a disk in 2-D.

/// A solid region described by a signed-distance expression tree.
///
/// Negative signed distance means *inside the solid*. Combinators take
/// the usual SDF forms: union is `min`, intersection is `max`, inversion
/// negates.
#[derive(Clone, Debug, PartialEq)]
pub enum Geometry {
    /// Solid ball: `|x - center| - radius`.
    Sphere {
        /// Center of the ball.
        center: [f64; 3],
        /// Radius (> 0).
        radius: f64,
    },
    /// Solid half-space: `dot(normal, x) - offset` (solid where the
    /// projection onto `normal` is below `offset`). `normal` need not be
    /// unit length, but only unit normals keep the Lipschitz bound; the
    /// constructors in this module normalize.
    HalfSpace {
        /// Outward normal of the bounding plane (unit length).
        normal: [f64; 3],
        /// Plane offset along the normal.
        offset: f64,
    },
    /// Solid axis-aligned box `[lo, hi]`.
    Cuboid {
        /// Low corner.
        lo: [f64; 3],
        /// High corner (componentwise > `lo`).
        hi: [f64; 3],
    },
    /// Solid infinite cylinder around the line through `center` parallel
    /// to coordinate axis `axis`; in 2-D with `axis = 2` this is a disk.
    Cylinder {
        /// Axis index (0 = x, 1 = y, 2 = z).
        axis: usize,
        /// A point on the cylinder axis.
        center: [f64; 3],
        /// Radius (> 0).
        radius: f64,
    },
    /// Union of two solids (`min` of distances).
    Union(Box<Geometry>, Box<Geometry>),
    /// Intersection of two solids (`max` of distances).
    Intersect(Box<Geometry>, Box<Geometry>),
    /// Complement of a solid (negated distance): fluid cavity inside a
    /// solid, or "everything outside this shape".
    Invert(Box<Geometry>),
}

impl Geometry {
    /// Ball of `radius` around `center` (zero-extend the center in
    /// lower-dimensional grids).
    pub fn sphere(center: [f64; 3], radius: f64) -> Self {
        assert!(radius > 0.0, "sphere radius must be positive");
        Geometry::Sphere { center, radius }
    }

    /// Half-space `dot(normal, x) <= offset`; `normal` is normalized so
    /// the signed distance stays 1-Lipschitz.
    pub fn half_space(normal: [f64; 3], offset: f64) -> Self {
        let n2 = dot(normal, normal);
        assert!(n2 > 0.0, "half-space normal must be nonzero");
        let inv = 1.0 / n2.sqrt();
        let normal = [normal[0] * inv, normal[1] * inv, normal[2] * inv];
        Geometry::HalfSpace { normal, offset: offset * inv }
    }

    /// Axis-aligned solid box `[lo, hi]`.
    pub fn cuboid(lo: [f64; 3], hi: [f64; 3]) -> Self {
        assert!(
            lo.iter().zip(hi.iter()).all(|(a, b)| a < b),
            "cuboid needs lo < hi on every axis"
        );
        Geometry::Cuboid { lo, hi }
    }

    /// Infinite solid cylinder along coordinate `axis` through `center`.
    pub fn cylinder(axis: usize, center: [f64; 3], radius: f64) -> Self {
        assert!(axis < 3, "cylinder axis must be 0, 1, or 2");
        assert!(radius > 0.0, "cylinder radius must be positive");
        Geometry::Cylinder { axis, center, radius }
    }

    /// Union with another solid.
    pub fn union(self, other: Geometry) -> Self {
        Geometry::Union(Box::new(self), Box::new(other))
    }

    /// Intersection with another solid.
    pub fn intersect(self, other: Geometry) -> Self {
        Geometry::Intersect(Box::new(self), Box::new(other))
    }

    /// Complement.
    pub fn invert(self) -> Self {
        Geometry::Invert(Box::new(self))
    }

    /// Signed distance at a 3-D point (negative inside the solid).
    pub fn sd3(&self, p: [f64; 3]) -> f64 {
        match self {
            Geometry::Sphere { center, radius } => {
                let d = [p[0] - center[0], p[1] - center[1], p[2] - center[2]];
                dot(d, d).sqrt() - radius
            }
            Geometry::HalfSpace { normal, offset } => dot(*normal, p) - offset,
            Geometry::Cuboid { lo, hi } => {
                // Outside: distance to the box. Inside: negated distance
                // to the nearest face (an underestimate of |sd| near
                // edges, which preserves the 1-Lipschitz bound).
                let mut out2 = 0.0;
                let mut inside: f64 = f64::NEG_INFINITY;
                for d in 0..3 {
                    let q = (lo[d] - p[d]).max(p[d] - hi[d]);
                    if q > 0.0 {
                        out2 += q * q;
                    }
                    inside = inside.max(q);
                }
                out2.sqrt() + inside.min(0.0)
            }
            Geometry::Cylinder { axis, center, radius } => {
                let mut r2 = 0.0;
                for d in 0..3 {
                    if d != *axis {
                        let q = p[d] - center[d];
                        r2 += q * q;
                    }
                }
                r2.sqrt() - radius
            }
            Geometry::Union(a, b) => a.sd3(p).min(b.sd3(p)),
            Geometry::Intersect(a, b) => a.sd3(p).max(b.sd3(p)),
            Geometry::Invert(a) => -a.sd3(p),
        }
    }

    /// Signed distance at a `D`-dimensional point; missing coordinates
    /// are zero-extended, so 1-D/2-D grids sample the `z = 0` (and
    /// `y = 0`) slice of the 3-D field.
    #[inline]
    pub fn sd<const D: usize>(&self, p: [f64; D]) -> f64 {
        let mut q = [0.0; 3];
        q[..D].copy_from_slice(&p);
        self.sd3(q)
    }

    /// True when the point is inside the solid.
    #[inline]
    pub fn is_solid<const D: usize>(&self, p: [f64; D]) -> bool {
        self.sd(p) < 0.0
    }

    /// Expression-tree depth (primitives are depth 1). Serialization
    /// caps this to reject unboundedly recursive untrusted input.
    pub fn depth(&self) -> usize {
        match self {
            Geometry::Union(a, b) | Geometry::Intersect(a, b) => 1 + a.depth().max(b.depth()),
            Geometry::Invert(a) => 1 + a.depth(),
            _ => 1,
        }
    }

    /// True when every numeric parameter is finite and shape constraints
    /// hold (radii positive, cuboid corners ordered, axis in range).
    /// Checkpoint loading rejects geometries that fail this.
    pub fn validate(&self) -> bool {
        match self {
            Geometry::Sphere { center, radius } => {
                center.iter().all(|x| x.is_finite()) && radius.is_finite() && *radius > 0.0
            }
            Geometry::HalfSpace { normal, offset } => {
                normal.iter().all(|x| x.is_finite())
                    && offset.is_finite()
                    && dot(*normal, *normal) > 0.0
            }
            Geometry::Cuboid { lo, hi } => {
                lo.iter().all(|x| x.is_finite())
                    && hi.iter().all(|x| x.is_finite())
                    && lo.iter().zip(hi.iter()).all(|(a, b)| a < b)
            }
            Geometry::Cylinder { axis, center, radius } => {
                *axis < 3
                    && center.iter().all(|x| x.is_finite())
                    && radius.is_finite()
                    && *radius > 0.0
            }
            Geometry::Union(a, b) | Geometry::Intersect(a, b) => a.validate() && b.validate(),
            Geometry::Invert(a) => a.validate(),
        }
    }
}

#[inline]
fn dot(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_signs() {
        let g = Geometry::sphere([0.5, 0.5, 0.0], 0.25);
        assert!(g.is_solid([0.5, 0.5]));
        assert!(!g.is_solid([0.9, 0.5]));
        assert!((g.sd([0.5, 0.5]) + 0.25).abs() < 1e-15);
        assert!((g.sd([1.0, 0.5]) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn half_space_normalizes() {
        let g = Geometry::half_space([2.0, 0.0, 0.0], 1.0);
        // solid where x <= 0.5 after normalization
        assert!(g.is_solid([0.0]));
        assert!(!g.is_solid([1.0]));
        assert!((g.sd([1.5]) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn cuboid_inside_outside() {
        let g = Geometry::cuboid([0.0, 0.0, -1.0], [1.0, 1.0, 1.0]);
        assert!(g.is_solid([0.5, 0.5]));
        assert!((g.sd([0.5, 0.5]) + 0.5).abs() < 1e-15);
        assert!((g.sd([2.0, 0.5]) - 1.0).abs() < 1e-15);
        // corner distance is Euclidean
        assert!((g.sd([2.0, 2.0]) - 2.0_f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn cylinder_is_disk_in_2d() {
        let g = Geometry::cylinder(2, [0.5, 0.5, 0.0], 0.2);
        assert!(g.is_solid([0.5, 0.6]));
        assert!(!g.is_solid([0.5, 0.8]));
        // independent of the (zero-extended) axis coordinate in 3-D
        assert_eq!(g.sd([0.5, 0.6, 7.0]), g.sd([0.5, 0.6, -3.0]));
    }

    #[test]
    fn combinators() {
        let a = Geometry::sphere([0.0, 0.0, 0.0], 1.0);
        let b = Geometry::sphere([1.5, 0.0, 0.0], 1.0);
        let u = a.clone().union(b.clone());
        assert!(u.is_solid([0.0]) && u.is_solid([1.5]));
        let i = a.clone().intersect(b.clone());
        assert!(i.is_solid([0.75]));
        assert!(!i.is_solid([0.0]) && !i.is_solid([1.5]));
        let v = a.clone().invert();
        assert!(!v.is_solid([0.0]));
        assert!(v.is_solid([5.0]));
        assert_eq!(u.depth(), 2);
        assert_eq!(a.depth(), 1);
    }

    #[test]
    fn lipschitz_bound_on_combinators() {
        // |sd(x) - sd(y)| <= |x - y| must survive union/intersect/invert.
        let g = Geometry::sphere([0.3, 0.3, 0.0], 0.2)
            .union(Geometry::cuboid([0.5, 0.5, -1.0], [0.8, 0.9, 1.0]))
            .intersect(Geometry::half_space([1.0, 1.0, 0.0], 1.2).invert().invert());
        let pts: [[f64; 2]; 5] =
            [[0.1, 0.2], [0.55, 0.7], [0.9, 0.1], [0.31, 0.29], [0.5, 0.5]];
        for &p in &pts {
            for &q in &pts {
                let dx = (p[0] - q[0]).hypot(p[1] - q[1]);
                assert!(
                    (g.sd(p) - g.sd(q)).abs() <= dx + 1e-12,
                    "Lipschitz violated between {p:?} and {q:?}"
                );
            }
        }
    }

    #[test]
    fn validate_rejects_bad_params() {
        assert!(!Geometry::Sphere { center: [0.0; 3], radius: 0.0 }.validate());
        assert!(!Geometry::Sphere { center: [f64::NAN, 0.0, 0.0], radius: 1.0 }.validate());
        assert!(!Geometry::Cylinder { axis: 3, center: [0.0; 3], radius: 1.0 }.validate());
        assert!(!Geometry::Cuboid { lo: [0.0; 3], hi: [0.0; 3] }.validate());
        assert!(Geometry::sphere([0.0; 3], 1.0).union(Geometry::cylinder(0, [0.0; 3], 0.5)).validate());
    }
}

//! # ablock-core — the Adaptive Blocks data structure
//!
//! A faithful, from-scratch implementation of the data structure of
//! Stout, De Zeeuw, Gombosi, Groth, Marshall & Powell, *Adaptive Blocks:
//! A High Performance Data Structure* (SC 1997).
//!
//! The domain is partitioned into non-overlapping **blocks**, each a
//! regular `m1 × … × md` array of cells. Refinement replaces a block by
//! its `2^d` children (only leaves are stored); coarsening reverses it.
//! Each block keeps **explicit face-neighbor pointers** — neighbors are
//! located directly, not by the parent/child traversals a quadtree or
//! octree needs — plus ghost-cell layers filled by copy, restriction, or
//! prolongation from the face neighbors.
//!
//! ## Module map
//!
//! | module | contents |
//! |--------|----------|
//! | [`index`] | index vectors, faces, half-open integer boxes |
//! | [`key`] | logical block addresses and their tree/lateral arithmetic |
//! | [`layout`] | root-block lattice, physical geometry, boundary conditions |
//! | [`geom`] | immersed solid geometry as signed-distance expressions |
//! | [`arena`] | generational arena the blocks live in |
//! | [`field`] | flat per-block cell storage with ghosts (and Fig. 5 padding) |
//! | [`grid`] | the adaptive block grid: refine/coarsen + pointer maintenance |
//! | [`balance`] | flag-driven adaptation with 2:1 (or k:1) cascade |
//! | [`ghost`] | cached ghost-exchange plans (copy / restrict / prolong / BCs) |
//! | [`ops`] | the restriction & prolongation numerical operators |
//! | [`sfc`] | Morton and Hilbert orderings for load balancing |
//! | [`partition`] | pluggable partitioners, curve walks, rebalance plans |
//! | [`verify`] | from-scratch invariant oracles used by the test suite |
//!
//! ## Quick start
//!
//! ```
//! use ablock_core::prelude::*;
//!
//! // 2 x 2 root blocks of 8 x 8 cells, 2 ghost layers, 1 variable.
//! let layout = RootLayout::<2>::unit([2, 2], Boundary::Outflow);
//! let params = GridParams::new([8, 8], 2, 1, 4);
//! let mut grid = BlockGrid::new(layout, params);
//!
//! // Refine the block containing a point of interest, with cascade.
//! refine_ball_to_level(&mut grid, [0.3, 0.3], 0.05, 2, Transfer::None);
//! assert!(grid.num_blocks() > 4);
//!
//! // Fill ghost cells from neighbors (copy / restrict / prolong).
//! fill_ghosts(&mut grid, GhostConfig::default());
//! # ablock_core::verify::check_grid(&grid).unwrap();
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod balance;
pub mod field;
pub mod geom;
pub mod ghost;
pub mod grid;
pub mod index;
pub mod key;
pub mod layout;
pub mod ops;
pub mod partition;
pub mod sfc;
pub mod verify;

/// One-stop imports for typical users.
pub mod prelude {
    pub use crate::arena::BlockId;
    pub use crate::balance::{
        adapt, apply_adapt, cascade_closure, plan_adapt, refine_ball_to_level, AdaptPlan,
        AdaptReport, Flag,
    };
    pub use crate::field::{FieldBlock, FieldShape};
    pub use crate::geom::Geometry;
    pub use crate::ghost::{fill_ghosts, BoundaryCtx, GhostConfig, GhostExchange, GhostTask};
    pub use crate::grid::{BlockGrid, BlockNode, FaceConn, GridError, GridParams, Transfer};
    pub use crate::index::{Face, IBox, IVec};
    pub use crate::key::BlockKey;
    pub use crate::layout::{Boundary, Resolved, RootLayout};
    pub use crate::ops::ProlongOrder;
    pub use crate::partition::{
        cell_weights, inherit_owner, BlockMove, CurveWalk, PartitionStrategy, Partitioner,
        RebalancePlan, WalkEntry,
    };
    pub use crate::sfc::{curve_index, curve_order, required_bits, Curve};
}

//! Generational arena for block storage.
//!
//! Blocks are created and destroyed constantly as the mesh adapts, so they
//! live in a slab with a free list: creation and destruction are O(1) and
//! ids stay small dense integers (good for the per-rank ownership arrays in
//! `ablock-par`). Each slot carries a generation counter so an id retained
//! across an adapt that recycled the slot is detected instead of silently
//! aliasing a new block.

/// Handle to an arena slot: index plus generation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId {
    index: u32,
    generation: u32,
}

impl BlockId {
    /// Dense slot index; stable for the lifetime of the block.
    #[inline]
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// Generation of the slot when this id was issued.
    #[inline]
    pub fn generation(self) -> u32 {
        self.generation
    }

    /// An id that no arena will ever issue; useful as a sentinel in tests.
    pub const DANGLING: BlockId = BlockId { index: u32::MAX, generation: u32::MAX };
}

impl std::fmt::Debug for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "B{}g{}", self.index, self.generation)
    }
}

enum Slot<T> {
    Occupied { generation: u32, value: T },
    Free { generation: u32, next_free: Option<u32> },
}

/// Generational arena.
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free_head: Option<u32>,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// Empty arena.
    pub fn new() -> Self {
        Arena { slots: Vec::new(), free_head: None, len: 0 }
    }

    /// Empty arena with room for `cap` values before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Arena { slots: Vec::with_capacity(cap), free_head: None, len: 0 }
    }

    /// Number of live values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots (live + free); ids index into `0..capacity()`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Insert a value, reusing a free slot if one exists.
    pub fn insert(&mut self, value: T) -> BlockId {
        self.len += 1;
        if let Some(idx) = self.free_head {
            let slot = &mut self.slots[idx as usize];
            let (generation, next_free) = match slot {
                Slot::Free { generation, next_free } => (*generation, *next_free),
                Slot::Occupied { .. } => unreachable!("free list points at occupied slot"),
            };
            self.free_head = next_free;
            let generation = generation.wrapping_add(1);
            *slot = Slot::Occupied { generation, value };
            BlockId { index: idx, generation }
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot::Occupied { generation: 0, value });
            BlockId { index: idx, generation: 0 }
        }
    }

    /// Remove a value; returns `None` if the id is stale or never existed.
    pub fn remove(&mut self, id: BlockId) -> Option<T> {
        let slot = self.slots.get_mut(id.index as usize)?;
        match slot {
            Slot::Occupied { generation, .. } if *generation == id.generation => {
                let old = std::mem::replace(
                    slot,
                    Slot::Free { generation: id.generation, next_free: self.free_head },
                );
                self.free_head = Some(id.index);
                self.len -= 1;
                match old {
                    Slot::Occupied { value, .. } => Some(value),
                    Slot::Free { .. } => unreachable!(),
                }
            }
            _ => None,
        }
    }

    /// True if `id` refers to a live value.
    pub fn contains(&self, id: BlockId) -> bool {
        matches!(
            self.slots.get(id.index as usize),
            Some(Slot::Occupied { generation, .. }) if *generation == id.generation
        )
    }

    /// Shared access; `None` on stale id.
    pub fn get(&self, id: BlockId) -> Option<&T> {
        match self.slots.get(id.index as usize) {
            Some(Slot::Occupied { generation, value }) if *generation == id.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Exclusive access; `None` on stale id.
    pub fn get_mut(&mut self, id: BlockId) -> Option<&mut T> {
        match self.slots.get_mut(id.index as usize) {
            Some(Slot::Occupied { generation, value }) if *generation == id.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Exclusive access to two distinct slots at once (ghost exchange copies
    /// between neighbor blocks). Panics if the ids alias.
    pub fn get2_mut(&mut self, a: BlockId, b: BlockId) -> (Option<&mut T>, Option<&mut T>) {
        assert_ne!(a.index, b.index, "get2_mut requires distinct slots");
        let (lo, hi, swap) = if a.index < b.index { (a, b, false) } else { (b, a, true) };
        let (head, tail) = self.slots.split_at_mut(hi.index as usize);
        let get = |slot: &mut Slot<T>, id: BlockId| match slot {
            Slot::Occupied { generation, value } if *generation == id.generation => {
                Some(value as *mut T)
            }
            _ => None,
        };
        let pl = head.get_mut(lo.index as usize).and_then(|s| get(s, lo));
        let ph = tail.first_mut().and_then(|s| get(s, hi));
        // SAFETY: pl and ph point into disjoint halves of the same slice.
        unsafe {
            let l = pl.map(|p| &mut *p);
            let h = ph.map(|p| &mut *p);
            if swap {
                (h, l)
            } else {
                (l, h)
            }
        }
    }

    /// Iterate `(id, &value)` over live slots in index order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Occupied { generation, value } => {
                Some((BlockId { index: i as u32, generation: *generation }, value))
            }
            Slot::Free { .. } => None,
        })
    }

    /// Iterate `(id, &mut value)` over live slots in index order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (BlockId, &mut T)> {
        self.slots.iter_mut().enumerate().filter_map(|(i, s)| match s {
            Slot::Occupied { generation, value } => {
                Some((BlockId { index: i as u32, generation: *generation }, value))
            }
            Slot::Free { .. } => None,
        })
    }

    /// Ids of all live slots in index order.
    pub fn ids(&self) -> Vec<BlockId> {
        self.iter().map(|(id, _)| id).collect()
    }
}

impl<T> std::ops::Index<BlockId> for Arena<T> {
    type Output = T;
    #[inline]
    fn index(&self, id: BlockId) -> &T {
        self.get(id).expect("stale or invalid BlockId")
    }
}

impl<T> std::ops::IndexMut<BlockId> for Arena<T> {
    #[inline]
    fn index_mut(&mut self, id: BlockId) -> &mut T {
        self.get_mut(id).expect("stale or invalid BlockId")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut a = Arena::new();
        let x = a.insert(10);
        let y = a.insert(20);
        assert_eq!(a.len(), 2);
        assert_eq!(a[x], 10);
        assert_eq!(a[y], 20);
        assert_eq!(a.remove(x), Some(10));
        assert_eq!(a.len(), 1);
        assert!(!a.contains(x));
        assert!(a.get(x).is_none());
        assert_eq!(a.remove(x), None);
    }

    #[test]
    fn generation_protects_stale_ids() {
        let mut a = Arena::new();
        let x = a.insert(1);
        a.remove(x);
        let y = a.insert(2); // reuses slot 0
        assert_eq!(y.index(), x.index());
        assert_ne!(y.generation(), x.generation());
        assert!(a.get(x).is_none(), "stale id must not alias the new value");
        assert_eq!(a[y], 2);
    }

    #[test]
    fn free_list_reuse_order() {
        let mut a = Arena::new();
        let ids: Vec<_> = (0..4).map(|i| a.insert(i)).collect();
        a.remove(ids[1]);
        a.remove(ids[3]);
        // LIFO reuse
        let n1 = a.insert(100);
        assert_eq!(n1.index(), ids[3].index());
        let n2 = a.insert(200);
        assert_eq!(n2.index(), ids[1].index());
        assert_eq!(a.capacity(), 4);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn iteration() {
        let mut a = Arena::new();
        let ids: Vec<_> = (0..5).map(|i| a.insert(i * 10)).collect();
        a.remove(ids[2]);
        let got: Vec<_> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(got, vec![0, 10, 30, 40]);
        for (_, v) in a.iter_mut() {
            *v += 1;
        }
        assert_eq!(a[ids[0]], 1);
        assert_eq!(a.ids().len(), 4);
    }

    #[test]
    fn get2_mut_disjoint() {
        let mut a = Arena::new();
        let x = a.insert(vec![1.0; 4]);
        let y = a.insert(vec![2.0; 4]);
        let (px, py) = a.get2_mut(x, y);
        let (px, py) = (px.unwrap(), py.unwrap());
        px[0] = 9.0;
        py[0] = 8.0;
        assert_eq!(a[x][0], 9.0);
        assert_eq!(a[y][0], 8.0);
        // order-independence
        let (py2, px2) = a.get2_mut(y, x);
        assert_eq!(py2.unwrap()[0], 8.0);
        assert_eq!(px2.unwrap()[0], 9.0);
    }

    #[test]
    #[should_panic(expected = "distinct slots")]
    fn get2_mut_alias_panics() {
        let mut a = Arena::new();
        let x = a.insert(0);
        let _ = a.get2_mut(x, x);
    }

    #[test]
    fn dangling_never_resolves() {
        let mut a = Arena::new();
        for i in 0..10 {
            a.insert(i);
        }
        assert!(a.get(BlockId::DANGLING).is_none());
    }
}

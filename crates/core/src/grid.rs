//! The adaptive block grid — the paper's data structure.
//!
//! A [`BlockGrid`] stores **only leaf blocks** (unlike a cell-based tree,
//! where subdividing a cell keeps the parent around). Each leaf owns a
//! regular array of cells with ghost layers ([`FieldBlock`]) and carries
//! **explicit face-neighbor pointers** ([`FaceConn`]) to the leaves it abuts
//! — the paper's key departure from quadtrees/octrees, where neighbors must
//! be recovered by parent/child traversals.
//!
//! Refinement replaces a leaf by its `2^D` children; coarsening replaces a
//! complete sibling group by its parent. Both operations update the
//! neighbor pointers of the affected blocks (the block itself plus the
//! blocks its faces pointed at); the rest of the grid is untouched, so
//! adaptation cost is proportional to the region adapted, amortized over
//! whole blocks of cells.
//!
//! The grid enforces the paper's refinement-jump constraint: adjacent
//! blocks differ by at most `max_level_jump` levels (1 by default). Direct
//! [`BlockGrid::refine`]/[`BlockGrid::coarsen`] calls return a
//! [`GridError`] if they would violate it (or were handed a stale id);
//! the `balance` module's [`crate::balance::adapt`] cascades refinement
//! flags so arbitrary flag sets stay legal.

use std::collections::HashMap;

use crate::arena::{Arena, BlockId};
use crate::field::{FieldBlock, FieldShape};
use crate::geom::Geometry;
use crate::index::{Face, IVec};
use crate::key::BlockKey;
use crate::layout::{Boundary, Resolved, RootLayout};
use crate::ops::{prolong, restrict_avg, ProlongOrder};

/// Static parameters of a block grid.
#[derive(Clone, Copy, Debug)]
pub struct GridParams<const D: usize> {
    /// Cells per block along each axis (`m1 × … × md` in the paper).
    pub block_dims: IVec<D>,
    /// Ghost layers per face (1 for first-order operators, ≥ 2 for
    /// high-resolution schemes — paper, *Adaptive Blocks*).
    pub nghost: i64,
    /// Variables stored per cell.
    pub nvar: usize,
    /// Maximum refinement level (root blocks are level 0).
    pub max_level: u8,
    /// Maximum refinement-level difference across a face (paper default 1).
    pub max_level_jump: u8,
    /// Unused x-padding cells in each block allocation (Fig. 5 remedy).
    pub pad: i64,
    /// Unused `f64`s appended to each variable plane (the SoA-era padding
    /// knob; perturbs plane-to-plane cache mapping).
    pub plane_pad: i64,
}

impl<const D: usize> GridParams<D> {
    /// Conventional parameters: given block dims, 2 ghost layers, 1 jump.
    pub fn new(block_dims: IVec<D>, nghost: i64, nvar: usize, max_level: u8) -> Self {
        GridParams {
            block_dims,
            nghost,
            nvar,
            max_level,
            max_level_jump: 1,
            pad: 0,
            plane_pad: 0,
        }
    }

    /// Builder: change the allowed level jump (the paper's loosened
    /// constraint generalization).
    pub fn with_max_jump(mut self, k: u8) -> Self {
        assert!(k >= 1);
        self.max_level_jump = k;
        self
    }

    /// Builder: pad block allocations along x.
    pub fn with_pad(mut self, pad: i64) -> Self {
        self.pad = pad;
        self
    }

    /// Builder: pad each variable plane by `plane_pad` `f64`s.
    pub fn with_plane_pad(mut self, plane_pad: i64) -> Self {
        self.plane_pad = plane_pad;
        self
    }

    /// Field shape of every block of this grid.
    pub fn field_shape(&self) -> FieldShape<D> {
        FieldShape::padded(self.block_dims, self.nghost, self.nvar, self.pad)
            .with_plane_pad(self.plane_pad)
    }

    fn validate(&self) {
        assert!(D >= 1 && D <= 3, "supported dimensions are 1, 2, 3");
        for d in 0..D {
            let m = self.block_dims[d];
            assert!(m >= 1, "block dims must be >= 1");
            // Same-level ghost copies read a slab of depth nghost from the
            // neighbor's interior.
            assert!(
                m >= self.nghost,
                "block extent {m} smaller than nghost={}",
                self.nghost
            );
            if self.max_level > 0 {
                // Restriction across a refinement face pulls a fine slab of
                // depth nghost * 2^jump from the finer neighbor's interior.
                let need = self.nghost << self.max_level_jump;
                assert!(
                    m >= need,
                    "block extent {m} too small for nghost={} with jump {} (need >= {need})",
                    self.nghost,
                    self.max_level_jump
                );
                assert!(
                    m % 2 == 0,
                    "block dims must be even to refine/coarsen conservatively (got {m})"
                );
            }
        }
    }
}

/// Connectivity of one block face: the paper's explicit neighbor pointer(s).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaceConn {
    /// The face lies on a physical domain boundary.
    Boundary(Boundary),
    /// Leaf blocks adjacent across this face, sorted by key for
    /// determinism. One entry when the neighbor is the same level or
    /// coarser; up to `2^(k(D-1))` entries when finer.
    Blocks(Vec<BlockId>),
}

impl FaceConn {
    /// Neighbor ids (empty for a boundary face).
    pub fn ids(&self) -> &[BlockId] {
        match self {
            FaceConn::Boundary(_) => &[],
            FaceConn::Blocks(v) => v,
        }
    }

    /// True when the face is a physical boundary.
    pub fn is_boundary(&self) -> bool {
        matches!(self, FaceConn::Boundary(_))
    }
}

/// One leaf block: key, neighbor pointers, field data.
#[derive(Debug)]
pub struct BlockNode<const D: usize> {
    key: BlockKey<D>,
    faces: Vec<FaceConn>, // indexed by Face::index(), length 2*D
    field: FieldBlock<D>,
}

impl<const D: usize> BlockNode<D> {
    /// Logical address of the block.
    #[inline]
    pub fn key(&self) -> BlockKey<D> {
        self.key
    }

    /// Refinement level.
    #[inline]
    pub fn level(&self) -> u8 {
        self.key.level
    }

    /// Connectivity of one face.
    #[inline]
    pub fn face(&self, f: Face) -> &FaceConn {
        &self.faces[f.index()]
    }

    /// Field data.
    #[inline]
    pub fn field(&self) -> &FieldBlock<D> {
        &self.field
    }

    /// Mutable field data.
    #[inline]
    pub fn field_mut(&mut self) -> &mut FieldBlock<D> {
        &mut self.field
    }
}

/// How field data moves when blocks refine or coarsen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transfer {
    /// Leave new blocks zero-filled (structure-only experiments).
    None,
    /// Conservative transfer: restriction (average) on coarsen,
    /// prolongation of the given order on refine.
    Conservative(ProlongOrder),
}

/// Why a grid-restructuring request was rejected.
///
/// [`BlockGrid::refine`] and [`BlockGrid::coarsen`] report illegal
/// requests — stale ids, level caps, jump-constraint violations — as
/// values instead of panicking, so distributed drivers (fault recovery,
/// checkpoint replay) can degrade gracefully. Breaches of *internal*
/// invariants remain `debug_assert!`s: they indicate grid corruption, not
/// a bad request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GridError<const D: usize> {
    /// The id does not name a live leaf (the block was refined or
    /// coarsened away since the id was obtained).
    StaleBlock(
        /// The offending id.
        BlockId,
    ),
    /// Refining the block would exceed `max_level`.
    MaxLevel {
        /// Key of the block that was asked to refine.
        key: BlockKey<D>,
        /// The grid's level cap.
        max_level: u8,
    },
    /// Refining the block would break the level-jump constraint against a
    /// coarser neighbor (use [`crate::balance::adapt`] to cascade).
    RefineJump {
        /// Key of the block that was asked to refine.
        key: BlockKey<D>,
        /// The grid's maximum allowed jump.
        max_jump: u8,
    },
    /// Coarsening needs the complete `2^D` sibling group present as
    /// leaves; at least one sibling is missing or subdivided.
    SiblingsIncomplete {
        /// Parent key of the requested group.
        parent: BlockKey<D>,
    },
    /// Coarsening would break the level-jump constraint against a finer
    /// neighbor of the group.
    CoarsenJump {
        /// Parent key of the requested group.
        parent: BlockKey<D>,
        /// The grid's maximum allowed jump.
        max_jump: u8,
    },
}

impl<const D: usize> std::fmt::Display for GridError<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::StaleBlock(id) => {
                write!(f, "block id {id:?} is stale (not a live leaf)")
            }
            GridError::MaxLevel { key, max_level } => {
                write!(f, "refine of {key:?} would exceed max_level {max_level}")
            }
            GridError::RefineJump { key, max_jump } => {
                write!(f, "refine of {key:?} would break the {max_jump}-level jump constraint")
            }
            GridError::SiblingsIncomplete { parent } => {
                write!(f, "coarsen of {parent:?}: sibling group is not complete leaves")
            }
            GridError::CoarsenJump { parent, max_jump } => {
                write!(f, "coarsen of {parent:?} would break the {max_jump}-level jump constraint")
            }
        }
    }
}

impl<const D: usize> std::error::Error for GridError<D> {}

/// The adaptive block grid.
pub struct BlockGrid<const D: usize> {
    layout: RootLayout<D>,
    params: GridParams<D>,
    arena: Arena<BlockNode<D>>,
    by_key: HashMap<BlockKey<D>, BlockId>,
    /// Monotonically increasing topology version; see [`BlockGrid::epoch`].
    epoch: u64,
}

impl<const D: usize> BlockGrid<D> {
    /// Build the initial grid: one leaf per root block, neighbor pointers
    /// resolved, fields zeroed.
    pub fn new(layout: RootLayout<D>, params: GridParams<D>) -> Self {
        params.validate();
        layout.validate();
        let mut grid = BlockGrid {
            layout,
            params,
            arena: Arena::with_capacity(64),
            by_key: HashMap::new(),
            epoch: 0,
        };
        let shape = grid.field_shape();
        let roots: Vec<BlockKey<D>> = grid.layout.root_keys().collect();
        for key in &roots {
            let node = BlockNode {
                key: *key,
                faces: vec![FaceConn::Blocks(Vec::new()); 2 * D],
                field: FieldBlock::zeros(shape),
            };
            let id = grid.arena.insert(node);
            grid.by_key.insert(*key, id);
        }
        let ids: Vec<BlockId> = grid.arena.ids();
        for id in &ids {
            grid.recompute_faces(*id);
        }
        for id in ids {
            grid.binarize_block(id);
        }
        grid
    }

    /// Root layout (domain geometry, boundaries).
    #[inline]
    pub fn layout(&self) -> &RootLayout<D> {
        &self.layout
    }

    /// Static grid parameters.
    #[inline]
    pub fn params(&self) -> &GridParams<D> {
        &self.params
    }

    /// The grid's **topology epoch**: a monotonically increasing version
    /// number bumped by every structural change — [`BlockGrid::refine`],
    /// [`BlockGrid::coarsen`], and explicit [`BlockGrid::bump_epoch`]
    /// calls from drivers that restructure derived state (redistribution,
    /// checkpoint rebuild). Consumers key caches of topology-derived
    /// structures (ghost-exchange plans, scratch arenas, cost models) on
    /// this value: a cache stamped with the current epoch is valid, any
    /// other stamp means the topology moved underneath it.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advance the topology epoch without restructuring. For operations
    /// outside the grid's own refine/coarsen — data redistribution across
    /// ranks, in-place rebuilds — that must invalidate epoch-keyed caches.
    #[inline]
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Number of leaf blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.arena.len()
    }

    /// Total number of computational (interior) cells.
    pub fn num_cells(&self) -> usize {
        self.num_blocks() * self.params.field_shape().interior_cells()
    }

    /// Ids of all leaves in arena order.
    pub fn block_ids(&self) -> Vec<BlockId> {
        self.arena.ids()
    }

    /// Iterate `(id, node)` over leaves.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &BlockNode<D>)> {
        self.arena.iter()
    }

    /// Iterate `(id, node)` mutably over leaves.
    pub fn blocks_mut(&mut self) -> impl Iterator<Item = (BlockId, &mut BlockNode<D>)> {
        self.arena.iter_mut()
    }

    /// Shared access to a block.
    #[inline]
    pub fn block(&self, id: BlockId) -> &BlockNode<D> {
        &self.arena[id]
    }

    /// Mutable access to a block.
    #[inline]
    pub fn block_mut(&mut self, id: BlockId) -> &mut BlockNode<D> {
        &mut self.arena[id]
    }

    /// Shared access to a block, reporting a stale id as an error instead
    /// of panicking.
    #[inline]
    pub fn try_block(&self, id: BlockId) -> Result<&BlockNode<D>, GridError<D>> {
        self.arena.get(id).ok_or(GridError::StaleBlock(id))
    }

    /// Mutable access to a block, reporting a stale id as an error instead
    /// of panicking.
    #[inline]
    pub fn try_block_mut(&mut self, id: BlockId) -> Result<&mut BlockNode<D>, GridError<D>> {
        self.arena.get_mut(id).ok_or(GridError::StaleBlock(id))
    }

    /// Mutable access to two distinct blocks.
    #[inline]
    pub fn block2_mut(
        &mut self,
        a: BlockId,
        b: BlockId,
    ) -> (&mut BlockNode<D>, &mut BlockNode<D>) {
        let (pa, pb) = self.arena.get2_mut(a, b);
        (pa.expect("stale id"), pb.expect("stale id"))
    }

    /// True if `id` refers to a live leaf.
    #[inline]
    pub fn contains(&self, id: BlockId) -> bool {
        self.arena.contains(id)
    }

    /// Look up a leaf by key.
    #[inline]
    pub fn find(&self, key: BlockKey<D>) -> Option<BlockId> {
        self.by_key.get(&key).copied()
    }

    /// The leaf covering `key` (the key itself or an ancestor), if the
    /// region `key` names is not subdivided below `key.level`.
    pub fn find_covering(&self, key: BlockKey<D>) -> Option<(BlockId, BlockKey<D>)> {
        let mut k = key;
        loop {
            if let Some(id) = self.find(k) {
                return Some((id, k));
            }
            k = k.parent()?;
        }
    }

    /// The leaf whose region contains physical point `x`, if `x` is in the
    /// domain.
    pub fn find_leaf_at(&self, x: [f64; D]) -> Option<BlockId> {
        for d in 0..D {
            let t = (x[d] - self.layout.origin[d]) / self.layout.size[d];
            if !(0.0..1.0).contains(&t) {
                return None;
            }
        }
        // Descend from the containing root.
        let mut key = {
            let mut c = [0; D];
            for d in 0..D {
                let t = (x[d] - self.layout.origin[d]) / self.layout.size[d];
                c[d] = ((t * self.layout.roots[d] as f64) as i64).min(self.layout.roots[d] - 1);
            }
            BlockKey::<D>::new(0, c)
        };
        loop {
            if let Some(id) = self.find(key) {
                return Some(id);
            }
            if key.level >= self.params.max_level {
                return None;
            }
            // pick the child containing x
            let mut ci = 0;
            for d in 0..D {
                let n = self.layout.blocks_at_level(d, key.level + 1) as f64;
                let t = (x[d] - self.layout.origin[d]) / self.layout.size[d];
                let fine = ((t * n) as i64).min(self.layout.blocks_at_level(d, key.level + 1) - 1);
                if fine.rem_euclid(2) == 1 {
                    ci |= 1 << d;
                }
            }
            key = key.child(ci);
        }
    }

    /// Highest refinement level present.
    pub fn max_level_present(&self) -> u8 {
        self.arena.iter().map(|(_, n)| n.key.level).max().unwrap_or(0)
    }

    /// Number of leaves on each level, indexed by level.
    pub fn level_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.max_level_present() as usize + 1];
        for (_, n) in self.arena.iter() {
            h[n.key.level as usize] += 1;
        }
        h
    }

    // ------------------------------------------------------------------
    // Immersed geometry masks (DESIGN.md §18)
    // ------------------------------------------------------------------

    /// Field shape of this grid's blocks, **including** the solid-mask
    /// plane when an immersed geometry is installed. Engines sizing
    /// scratch allocations must use this, not
    /// [`GridParams::field_shape`], which knows nothing about geometry.
    pub fn field_shape(&self) -> FieldShape<D> {
        self.params.field_shape().with_mask_plane(self.layout.geometry.is_some())
    }

    /// Install (or remove) an immersed solid geometry on a live grid:
    /// reallocates every block's mask plane, binarizes it from the SDF,
    /// and bumps the topology epoch so ghost plans and engine scratch
    /// rebuild against the new field shape. State values are untouched —
    /// cells that become solid freeze at their current contents. No-op
    /// when the grid already holds an equal geometry.
    pub fn set_geometry(&mut self, geometry: Option<Geometry>) {
        if self.layout.geometry == geometry {
            return;
        }
        if let Some(g) = &geometry {
            assert!(g.validate(), "geometry has non-finite or degenerate parameters");
        }
        self.layout.geometry = geometry;
        let on = self.layout.geometry.is_some();
        let ids = self.block_ids();
        for &id in &ids {
            self.arena[id].field.set_mask_plane(on);
        }
        if on {
            for id in ids {
                self.binarize_block(id);
            }
        }
        self.epoch += 1;
    }

    /// Sync a solver configuration's geometry onto the grid: installs
    /// `geometry` when the grid holds something different, and is a no-op
    /// in the steady state (cheap `PartialEq` compare). A `None` never
    /// removes a grid-installed geometry — configurations without
    /// geometry must not strip masks installed directly on the grid.
    pub fn ensure_geometry(&mut self, geometry: &Option<Geometry>) {
        if let Some(g) = geometry {
            if self.layout.geometry.as_ref() != Some(g) {
                self.set_geometry(Some(g.clone()));
            }
        }
    }

    /// The canonical solid-mask sample for one cell (interior or ghost
    /// coordinates) of a leaf block — the value the mask plane must hold;
    /// `verify::check_grid` recomputes masks through this. Panics when no
    /// geometry is installed.
    ///
    /// Every cell samples the SDF at its own-level cell center
    /// `origin + (g + 0.5) h`, where `g` is the global cell index at the
    /// block's level, wrapped through periodic boundaries (so same-level
    /// ghost masks equal the neighbor's interior masks bitwise). The one
    /// exception is ghost cells in a face slab toward a **coarser**
    /// neighbor: they sample at the covering coarse cell's center, so a
    /// fine block and its coarse neighbor agree on which coarse-fine
    /// interfaces are walls — with refluxing on, that agreement is what
    /// keeps fluid-cell totals exactly conserved (DESIGN.md §18).
    pub fn expected_solid(&self, id: BlockId, c: IVec<D>) -> bool {
        let geom = self.layout.geometry.as_ref().expect("no geometry installed");
        let node = &self.arena[id];
        let key = node.key;
        let m = self.params.block_dims;
        let mut c = c;
        // Which face slab is the cell in (outside the interior along
        // exactly one axis)? Corner/edge ghosts sample at own level.
        let mut out_face = None;
        let mut nout = 0;
        for d in 0..D {
            if c[d] < 0 {
                nout += 1;
                out_face = Some(Face::new(d, false));
            } else if c[d] >= m[d] {
                nout += 1;
                out_face = Some(Face::new(d, true));
            }
        }
        let mut jump = 0u32;
        if nout == 1 {
            let f = out_face.expect("nout == 1");
            match node.face(f) {
                FaceConn::Blocks(v) => {
                    // A coarser neighbor covers the whole face: single entry.
                    if v.len() == 1 {
                        let nl = self.arena[v[0]].key.level;
                        if nl < key.level {
                            jump = (key.level - nl) as u32;
                        }
                    }
                }
                FaceConn::Boundary(bc) => {
                    // Ghosts past a physical boundary carry the mask of the
                    // interior cell whose state the boundary fill writes
                    // into them: the mirror partner for `Reflect` (domain
                    // walls and root-mask holes), the clamped nearest cell
                    // for `Outflow`/`Custom`. Sampling the SDF at the
                    // ghost's out-of-domain position instead can disagree
                    // with that partner, making the slope stencils fall
                    // back to constant on one side of the face only — and
                    // that asymmetry breaks exact wall conservation.
                    let d = f.dim as usize;
                    c[d] = match bc {
                        Boundary::Reflect => {
                            if f.high {
                                2 * m[d] - 1 - c[d]
                            } else {
                                -1 - c[d]
                            }
                        }
                        _ => c[d].clamp(0, m[d] - 1),
                    };
                }
            }
        }
        let h = self.layout.cell_size(key.level - jump as u8, m);
        let mut x = [0.0; D];
        for d in 0..D {
            let mut g = key.coords[d] * m[d] + c[d];
            if self.layout.periodic(d) {
                let n = self.layout.blocks_at_level(d, key.level) * m[d];
                g = g.rem_euclid(n);
            }
            let g = g.div_euclid(1i64 << jump);
            x[d] = self.layout.origin[d] + (g as f64 + 0.5) * h[d];
        }
        geom.is_solid(x)
    }

    /// Recompute one block's mask plane from the installed geometry
    /// (no-op without geometry). Pad cells are left fluid.
    fn binarize_block(&mut self, id: BlockId) {
        if self.layout.geometry.is_none() {
            return;
        }
        self.arena[id].field.set_mask_plane(true);
        let shape = *self.arena[id].field.shape();
        let mut vals: Vec<(usize, f64)> = Vec::with_capacity(shape.allocated_cells());
        for c in shape.ghosted_box().iter() {
            vals.push((shape.lin(c), if self.expected_solid(id, c) { 1.0 } else { 0.0 }));
        }
        let mask = self.arena[id].field.mask_mut();
        mask.fill(0.0);
        for (i, v) in vals {
            mask[i] = v;
        }
    }

    // ------------------------------------------------------------------
    // Connectivity
    // ------------------------------------------------------------------

    /// True if `id` is below the level cap (ignores the jump constraint —
    /// the cascade in `balance::adapt` handles that).
    pub fn can_refine_level(&self, id: BlockId) -> bool {
        self.block(id).key().level < self.params.max_level
    }

    /// Compute the connectivity of one face of `key` from the key map.
    /// Used when pointers must be (re)established after a structural change;
    /// queries between changes use the stored pointers. Public so the
    /// verification module can cross-check the maintained pointers.
    pub fn compute_face_conn(&self, key: BlockKey<D>, f: Face) -> FaceConn {
        let unwrapped = key.face_neighbor(f);
        match self.layout.resolve(unwrapped) {
            Resolved::Outside(_, bc) => FaceConn::Boundary(bc),
            Resolved::InDomain(nk) => {
                if let Some((id, _)) = self.find_covering(nk) {
                    return FaceConn::Blocks(vec![id]);
                }
                // Subdivided: collect the finer leaves touching the shared
                // face (the side of nk facing back toward `key`).
                let mut out: Vec<(BlockKey<D>, BlockId)> = Vec::new();
                self.collect_leaves_on_face(nk, f.opposite(), &mut out);
                debug_assert!(!out.is_empty(), "no leaf covers neighbor key {nk:?}");
                out.sort_by_key(|(k, _)| *k);
                let mut ids: Vec<BlockId> = out.into_iter().map(|(_, id)| id).collect();
                ids.dedup();
                FaceConn::Blocks(ids)
            }
        }
    }

    /// Recursively collect leaves that descend from `key` and touch `face`.
    fn collect_leaves_on_face(
        &self,
        key: BlockKey<D>,
        face: Face,
        out: &mut Vec<(BlockKey<D>, BlockId)>,
    ) {
        if let Some(id) = self.find(key) {
            out.push((key, id));
            return;
        }
        assert!(
            key.level < self.params.max_level,
            "grid is inconsistent: no leaf at or below {key:?}"
        );
        let d = face.dim as usize;
        let side = face.high as i64;
        for ci in 0..(1usize << D) {
            if ((ci >> d) & 1) as i64 == side {
                self.collect_leaves_on_face(key.child(ci), face, out);
            }
        }
    }

    /// Recompute all face pointers of one block from the key map.
    fn recompute_faces(&mut self, id: BlockId) {
        let key = self.arena[id].key;
        for f in Face::all::<D>() {
            let conn = self.compute_face_conn(key, f);
            self.arena[id].faces[f.index()] = conn;
        }
    }

    /// The leaves adjacent to `id` across an arbitrary lattice offset
    /// `s ∈ {-1,0,1}^D` — the paper's extended-pointer generalization
    /// ("pointers to blocks sharing lower dimensional faces such as edges
    /// and corners"). Face offsets return the stored pointer list;
    /// diagonal offsets are resolved from the key map (they change only at
    /// adapt time, exactly when the ghost plan is rebuilt). Returns an
    /// empty list for boundary/hole directions.
    pub fn neighbors_at_offset(&self, id: BlockId, s: IVec<D>) -> Vec<BlockId> {
        debug_assert!(s.iter().all(|&x| (-1..=1).contains(&x)));
        let nonzero: Vec<usize> = (0..D).filter(|&d| s[d] != 0).collect();
        match nonzero.len() {
            0 => vec![id],
            1 => {
                let d = nonzero[0];
                let f = Face::new(d, s[d] > 0);
                self.block(id).face(f).ids().to_vec()
            }
            _ => {
                let key = self.block(id).key();
                let target = key.offset(s);
                match self.layout.resolve(target) {
                    Resolved::Outside(..) => Vec::new(),
                    Resolved::InDomain(nk) => {
                        if let Some((nid, _)) = self.find_covering(nk) {
                            return vec![nid];
                        }
                        // subdivided: descend toward the corner facing back
                        let mut out = Vec::new();
                        self.collect_leaves_on_corner_side(nk, s, &mut out);
                        out.sort_by_key(|&i| self.block(i).key());
                        out.dedup();
                        out
                    }
                }
            }
        }
    }

    fn collect_leaves_on_corner_side(&self, key: BlockKey<D>, s: IVec<D>, out: &mut Vec<BlockId>) {
        if let Some(id) = self.find(key) {
            out.push(id);
            return;
        }
        for ci in 0..(1usize << D) {
            let mut ok = true;
            for d in 0..D {
                if s[d] == 1 && (ci >> d) & 1 != 0 {
                    ok = false;
                }
                if s[d] == -1 && (ci >> d) & 1 == 0 {
                    ok = false;
                }
            }
            if ok {
                self.collect_leaves_on_corner_side(key.child(ci), s, out);
            }
        }
    }

    /// All distinct neighbor ids of a block (across every face).
    pub fn neighbor_ids(&self, id: BlockId) -> Vec<BlockId> {
        let node = &self.arena[id];
        let mut out: Vec<BlockId> = node
            .faces
            .iter()
            .flat_map(|c| c.ids().iter().copied())
            .filter(|&n| n != id)
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Level difference across face `f` of block `id`: negative when the
    /// neighbor is coarser, positive when finer, 0 at same level or at a
    /// boundary.
    pub fn face_level_jump(&self, id: BlockId, f: Face) -> i32 {
        let node = &self.arena[id];
        match node.face(f) {
            FaceConn::Boundary(_) => 0,
            FaceConn::Blocks(v) => {
                let l = node.key.level as i32;
                v.iter()
                    .map(|&n| self.arena[n].key.level as i32 - l)
                    .max()
                    .unwrap_or(0)
            }
        }
    }

    // ------------------------------------------------------------------
    // Refinement / coarsening
    // ------------------------------------------------------------------

    /// True if refining `id` would keep every face jump within
    /// `max_level_jump` and below `max_level` (false for stale ids).
    pub fn can_refine(&self, id: BlockId) -> bool {
        self.check_refine(id).is_ok()
    }

    /// Classify why refining `id` would be illegal (`Ok` when legal).
    fn check_refine(&self, id: BlockId) -> Result<(), GridError<D>> {
        let node = self.arena.get(id).ok_or(GridError::StaleBlock(id))?;
        if node.key.level >= self.params.max_level {
            return Err(GridError::MaxLevel {
                key: node.key,
                max_level: self.params.max_level,
            });
        }
        let k = self.params.max_level_jump as i32;
        let ok = Face::all::<D>().all(|f| {
            match node.face(f) {
                FaceConn::Boundary(_) => true,
                FaceConn::Blocks(v) => v.iter().all(|&n| {
                    let nl = self.arena[n].key.level as i32;
                    (node.key.level as i32 + 1) - nl <= k
                }),
            }
        });
        if ok {
            Ok(())
        } else {
            Err(GridError::RefineJump {
                key: node.key,
                max_jump: self.params.max_level_jump,
            })
        }
    }

    /// Refine one leaf into its `2^D` children. Returns the child ids in
    /// child-index order, or a [`GridError`] when the id is stale or the
    /// refinement would exceed `max_level` / break the level-jump
    /// constraint (use [`crate::balance::adapt`] for arbitrary flags).
    pub fn refine(
        &mut self,
        id: BlockId,
        transfer: Transfer,
    ) -> Result<Vec<BlockId>, GridError<D>> {
        self.check_refine(id)?;
        let parent_key = self.arena[id].key;
        let affected = self.neighbor_ids(id);

        // Remove the parent; only leaves are stored (paper, Fig. 4 contrast).
        let parent = self.arena.remove(id).expect("live id");
        self.by_key.remove(&parent_key);

        let shape = self.field_shape();
        let m = self.params.block_dims;
        let mut child_ids = Vec::with_capacity(1 << D);
        for ci in 0..(1usize << D) {
            let ckey = parent_key.child(ci);
            let mut field = FieldBlock::zeros(shape);
            if let Transfer::Conservative(order) = transfer {
                // Child interior from parent interior: fine local cell c in
                // child ci reads parent cell ((c + ci_bits * m) div 2).
                let mut p = [0i64; D];
                for d in 0..D {
                    p[d] = ((ci >> d) & 1) as i64 * m[d];
                }
                prolong(
                    &mut field,
                    shape.interior_box(),
                    parent.field(),
                    p,
                    [0; D],
                    2,
                    order,
                    shape.interior_box(), // parent interior only; ghosts may be stale
                );
            }
            let node = BlockNode {
                key: ckey,
                faces: vec![FaceConn::Blocks(Vec::new()); 2 * D],
                field,
            };
            let cid = self.arena.insert(node);
            self.by_key.insert(ckey, cid);
            child_ids.push(cid);
        }

        for &cid in &child_ids {
            self.recompute_faces(cid);
        }
        for &nid in &affected {
            if self.arena.contains(nid) {
                self.recompute_faces(nid);
            }
        }
        // Masks depend on face connectivity (coarse-covered ghost slabs),
        // so rebinarize every block whose pointers just changed.
        if self.layout.geometry.is_some() {
            for &cid in &child_ids {
                self.binarize_block(cid);
            }
            for nid in affected {
                if self.arena.contains(nid) {
                    self.binarize_block(nid);
                }
            }
        }
        self.epoch += 1;
        Ok(child_ids)
    }

    /// True if the sibling group under `parent_key` exists as leaves and can
    /// be coarsened without breaking the jump constraint.
    pub fn can_coarsen(&self, parent_key: BlockKey<D>) -> bool {
        self.check_coarsen(parent_key).is_ok()
    }

    /// Classify why coarsening the group under `parent_key` would be
    /// illegal; returns the sibling ids in child-index order when legal.
    fn check_coarsen(&self, parent_key: BlockKey<D>) -> Result<Vec<BlockId>, GridError<D>> {
        let k = self.params.max_level_jump as i32;
        let child_level = parent_key.level as i32 + 1;
        let mut cids = Vec::with_capacity(1 << D);
        for ck in parent_key.children() {
            let id = self
                .find(ck)
                .ok_or(GridError::SiblingsIncomplete { parent: parent_key })?;
            // After coarsening, the parent sits at child_level - 1; any
            // neighbor finer than child_level + (k-1) would then exceed k.
            for f in Face::all::<D>() {
                if let FaceConn::Blocks(v) = self.arena[id].face(f) {
                    for &n in v {
                        let nl = self.arena[n].key.level as i32;
                        if nl - (child_level - 1) > k {
                            return Err(GridError::CoarsenJump {
                                parent: parent_key,
                                max_jump: self.params.max_level_jump,
                            });
                        }
                    }
                }
            }
            cids.push(id);
        }
        Ok(cids)
    }

    /// Coarsen a complete sibling group back into its parent. Returns the
    /// new parent id, or a [`GridError`] when the group is incomplete or
    /// coarsening would break the level-jump constraint (the cases where
    /// [`BlockGrid::can_coarsen`] is false).
    pub fn coarsen(
        &mut self,
        parent_key: BlockKey<D>,
        transfer: Transfer,
    ) -> Result<BlockId, GridError<D>> {
        let cids = self.check_coarsen(parent_key)?;
        let m = self.params.block_dims;
        let shape = self.field_shape();

        let mut affected: Vec<BlockId> = Vec::new();
        let mut parent_field = FieldBlock::zeros(shape);
        for (ci, ck) in parent_key.children().enumerate() {
            let cid = cids[ci];
            affected.extend(self.neighbor_ids(cid));
            let child = self.arena.remove(cid).expect("live id");
            self.by_key.remove(&ck);
            if let Transfer::Conservative(_) = transfer {
                // Parent quadrant ci: parent cell c reads fine cells with
                // low corner 2c + q, q = -ci_bits * m.
                let mut q = [0i64; D];
                let mut qlo = [0i64; D];
                let mut qhi = [0i64; D];
                for d in 0..D {
                    let bit = ((ci >> d) & 1) as i64;
                    q[d] = -bit * m[d];
                    qlo[d] = bit * m[d] / 2;
                    qhi[d] = (bit + 1) * m[d] / 2;
                }
                restrict_avg(
                    &mut parent_field,
                    crate::index::IBox::new(qlo, qhi),
                    child.field(),
                    q,
                    2,
                );
            }
        }
        let node = BlockNode {
            key: parent_key,
            faces: vec![FaceConn::Blocks(Vec::new()); 2 * D],
            field: parent_field,
        };
        let pid = self.arena.insert(node);
        self.by_key.insert(parent_key, pid);
        self.recompute_faces(pid);
        affected.sort();
        affected.dedup();
        for &nid in &affected {
            if self.arena.contains(nid) {
                self.recompute_faces(nid);
            }
        }
        if self.layout.geometry.is_some() {
            self.binarize_block(pid);
            for nid in affected {
                if self.arena.contains(nid) {
                    self.binarize_block(nid);
                }
            }
        }
        self.epoch += 1;
        Ok(pid)
    }

    /// Refine every leaf once (uniform refinement helper). Panics if any
    /// leaf is already at `max_level`.
    pub fn refine_all(&mut self, transfer: Transfer) {
        for id in self.block_ids() {
            self.refine(id, transfer)
                .expect("refine_all: uniform refinement hit max_level");
        }
    }

    /// Memory footprint of field storage in bytes (interior + ghosts +
    /// pad, plus the mask plane when a geometry is installed).
    pub fn field_bytes(&self) -> usize {
        self.num_blocks() * self.field_shape().len() * std::mem::size_of::<f64>()
    }

    /// Deliberately break one stored face pointer of block `idx % num_blocks`
    /// (the first non-boundary face loses its neighbor list; an all-boundary
    /// block gets face 0 overwritten with an empty pointer list). Neither the
    /// symmetric pointer nor the epoch is touched, so the grid is left in a
    /// state every from-scratch oracle must reject. Exists solely so the
    /// verification harness can prove its oracles catch pointer rot; never
    /// called by production code.
    #[doc(hidden)]
    pub fn testonly_corrupt_face(&mut self, idx: usize) {
        let ids = self.block_ids();
        let id = ids[idx % ids.len()];
        let node = &mut self.arena[id];
        for f in Face::all::<D>() {
            if let FaceConn::Blocks(v) = &mut node.faces[f.index()] {
                if !v.is_empty() {
                    v.clear();
                    return;
                }
            }
        }
        node.faces[0] = FaceConn::Blocks(Vec::new());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid2(roots: [i64; 2], bc: Boundary) -> BlockGrid<2> {
        BlockGrid::new(RootLayout::unit(roots, bc), GridParams::new([4, 4], 2, 1, 5))
    }

    #[test]
    fn initial_grid_roots_and_conns() {
        let g = grid2([2, 2], Boundary::Outflow);
        assert_eq!(g.num_blocks(), 4);
        assert_eq!(g.num_cells(), 64);
        let id = g.find(BlockKey::new(0, [0, 0])).unwrap();
        // x- is boundary, x+ is block (1,0)
        assert!(g.block(id).face(Face::new(0, false)).is_boundary());
        let xp = g.block(id).face(Face::new(0, true)).ids();
        assert_eq!(xp.len(), 1);
        assert_eq!(g.block(xp[0]).key(), BlockKey::new(0, [1, 0]));
    }

    #[test]
    fn periodic_conns_wrap() {
        let g = grid2([2, 1], Boundary::Periodic);
        let a = g.find(BlockKey::new(0, [0, 0])).unwrap();
        let b = g.find(BlockKey::new(0, [1, 0])).unwrap();
        // x- of a wraps to b
        assert_eq!(g.block(a).face(Face::new(0, false)).ids(), &[b]);
        // y- of a wraps to a itself (single root along y)
        assert_eq!(g.block(a).face(Face::new(1, false)).ids(), &[a]);
    }

    #[test]
    fn refine_updates_pointers_both_sides() {
        let mut g = grid2([2, 1], Boundary::Outflow);
        let a = g.find(BlockKey::new(0, [0, 0])).unwrap();
        let b = g.find(BlockKey::new(0, [1, 0])).unwrap();
        let kids = g.refine(a, Transfer::None).unwrap();
        assert_eq!(kids.len(), 4);
        assert_eq!(g.num_blocks(), 5);
        assert!(g.find(BlockKey::new(0, [0, 0])).is_none(), "parent is gone");
        // b's x- face now points at the two right children of a
        let conn = g.block(b).face(Face::new(0, false)).ids();
        assert_eq!(conn.len(), 2);
        let keys: Vec<_> = conn.iter().map(|&i| g.block(i).key()).collect();
        assert!(keys.contains(&BlockKey::new(1, [1, 0])));
        assert!(keys.contains(&BlockKey::new(1, [1, 1])));
        // right children see b as their (coarser) x+ neighbor
        let rc = g.find(BlockKey::new(1, [1, 0])).unwrap();
        assert_eq!(g.block(rc).face(Face::new(0, true)).ids(), &[b]);
        assert_eq!(g.face_level_jump(rc, Face::new(0, true)), -1);
        assert_eq!(g.face_level_jump(b, Face::new(0, false)), 1);
        // sibling pointers
        let c00 = g.find(BlockKey::new(1, [0, 0])).unwrap();
        let c10 = g.find(BlockKey::new(1, [1, 0])).unwrap();
        assert_eq!(g.block(c00).face(Face::new(0, true)).ids(), &[c10]);
    }

    #[test]
    fn jump_constraint_enforced() {
        let mut g = grid2([2, 1], Boundary::Outflow);
        let a = g.find(BlockKey::new(0, [0, 0])).unwrap();
        let kids = g.refine(a, Transfer::None).unwrap();
        // refining a right child again would put level 2 against level 0
        let rc = kids
            .iter()
            .copied()
            .find(|&i| g.block(i).key() == BlockKey::new(1, [1, 0]))
            .unwrap();
        assert!(!g.can_refine(rc));
        // but a left child is fine after... no: left child (0,0) level 1 is
        // adjacent to right children (level 1) and boundary: refinable only
        // if its finer neighbors allow; its x+ neighbor is level 1, so
        // refining makes jump 1 -> legal.
        let lc = g.find(BlockKey::new(1, [0, 0])).unwrap();
        assert!(g.can_refine(lc));
    }

    #[test]
    fn refine_rejects_jump_violation() {
        let mut g = grid2([2, 1], Boundary::Outflow);
        let a = g.find(BlockKey::new(0, [0, 0])).unwrap();
        let kids = g.refine(a, Transfer::None).unwrap();
        let rc = kids
            .iter()
            .copied()
            .find(|&i| g.block(i).key() == BlockKey::new(1, [1, 0]))
            .unwrap();
        let before = g.num_blocks();
        let err = g.refine(rc, Transfer::None).unwrap_err();
        assert!(matches!(err, GridError::RefineJump { max_jump: 1, .. }), "{err}");
        assert_eq!(g.num_blocks(), before, "rejected refine must not mutate");
    }

    #[test]
    fn stale_and_illegal_requests_are_reported_not_panics() {
        let mut g = grid2([2, 2], Boundary::Outflow);
        let a = g.find(BlockKey::new(0, [0, 0])).unwrap();
        g.refine(a, Transfer::None).unwrap();
        // the parent id is now stale
        assert!(!g.can_refine(a));
        assert_eq!(g.refine(a, Transfer::None), Err(GridError::StaleBlock(a)));
        assert_eq!(g.try_block(a).unwrap_err(), GridError::StaleBlock(a));
        assert!(g.try_block_mut(a).is_err());
        // a live id resolves
        let b = g.find(BlockKey::new(0, [1, 0])).unwrap();
        assert_eq!(g.try_block(b).unwrap().key(), BlockKey::new(0, [1, 0]));
        // coarsening a group whose siblings are not all present
        let err = g.coarsen(BlockKey::new(0, [1, 1]), Transfer::None).unwrap_err();
        assert!(matches!(err, GridError::SiblingsIncomplete { .. }), "{err}");
        // error type renders and round-trips through dyn Error
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.to_string().contains("sibling group"));
    }

    #[test]
    fn refine_at_cap_reports_max_level() {
        let mut g = BlockGrid::new(
            RootLayout::<2>::unit([1, 1], Boundary::Periodic),
            GridParams::new([4, 4], 1, 1, 1),
        );
        let r = g.find(BlockKey::new(0, [0, 0])).unwrap();
        let kids = g.refine(r, Transfer::None).unwrap();
        let err = g.refine(kids[0], Transfer::None).unwrap_err();
        assert!(matches!(err, GridError::MaxLevel { max_level: 1, .. }), "{err}");
    }

    #[test]
    fn coarsen_jump_violation_is_reported() {
        let mut g = grid2([2, 1], Boundary::Outflow);
        let a = g.find(BlockKey::new(0, [0, 0])).unwrap();
        let b = g.find(BlockKey::new(0, [1, 0])).unwrap();
        g.refine(a, Transfer::None).unwrap();
        let bkids = g.refine(b, Transfer::None).unwrap();
        let bl = bkids
            .iter()
            .copied()
            .find(|&i| g.block(i).key() == BlockKey::new(1, [2, 0]))
            .unwrap();
        g.refine(bl, Transfer::None).unwrap();
        // coarsening a's group would put level 0 against level 2
        let err = g.coarsen(BlockKey::new(0, [0, 0]), Transfer::None).unwrap_err();
        assert!(matches!(err, GridError::CoarsenJump { max_jump: 1, .. }), "{err}");
    }

    #[test]
    fn max_level_cap() {
        let mut g = BlockGrid::new(
            RootLayout::<2>::unit([1, 1], Boundary::Periodic),
            GridParams::new([4, 4], 1, 1, 1),
        );
        let r = g.find(BlockKey::new(0, [0, 0])).unwrap();
        let kids = g.refine(r, Transfer::None).unwrap();
        assert!(!g.can_refine(kids[0]), "max_level reached");
    }

    #[test]
    fn coarsen_restores_grid() {
        let mut g = grid2([2, 2], Boundary::Outflow);
        let a = g.find(BlockKey::new(0, [0, 0])).unwrap();
        g.refine(a, Transfer::None).unwrap();
        assert_eq!(g.num_blocks(), 7);
        assert!(g.can_coarsen(BlockKey::new(0, [0, 0])));
        let pid = g.coarsen(BlockKey::new(0, [0, 0]), Transfer::None).unwrap();
        assert_eq!(g.num_blocks(), 4);
        assert_eq!(g.block(pid).key(), BlockKey::new(0, [0, 0]));
        // pointers restored symmetric
        let b = g.find(BlockKey::new(0, [1, 0])).unwrap();
        assert_eq!(g.block(b).face(Face::new(0, false)).ids(), &[pid]);
        assert_eq!(g.block(pid).face(Face::new(0, true)).ids(), &[b]);
    }

    #[test]
    fn coarsen_blocked_by_finer_neighbor() {
        let mut g = grid2([2, 1], Boundary::Outflow);
        let a = g.find(BlockKey::new(0, [0, 0])).unwrap();
        let b = g.find(BlockKey::new(0, [1, 0])).unwrap();
        g.refine(a, Transfer::None).unwrap();
        let bkids = g.refine(b, Transfer::None).unwrap();
        // refine one of b's children that touches a's children
        let bl = bkids
            .iter()
            .copied()
            .find(|&i| g.block(i).key() == BlockKey::new(1, [2, 0]))
            .unwrap();
        g.refine(bl, Transfer::None).unwrap();
        // coarsening a's group would put level 0 against level 2
        assert!(!g.can_coarsen(BlockKey::new(0, [0, 0])));
        // coarsening b's group impossible: children not all leaves
        assert!(!g.can_coarsen(BlockKey::new(0, [1, 0])));
    }

    #[test]
    fn refine_transfer_prolongs_field() {
        let mut g = grid2([1, 1], Boundary::Periodic);
        let r = g.find(BlockKey::new(0, [0, 0])).unwrap();
        g.block_mut(r).field_mut().for_each_interior(|c, u| {
            u[0] = (c[0] + 10 * c[1]) as f64;
        });
        let sum0: f64 = g.block(r).field().interior_sum(0);
        let kids = g.refine(r, Transfer::Conservative(ProlongOrder::Constant)).unwrap();
        // conservation: children cells are 1/4 volume
        let sum1: f64 = kids
            .iter()
            .map(|&k| g.block(k).field().interior_sum(0))
            .sum::<f64>()
            / 4.0;
        assert!((sum0 - sum1).abs() < 1e-12);
        // constant prolongation: child (0,0) cell (0,0) = parent cell (0,0)
        let c00 = g.find(BlockKey::new(1, [0, 0])).unwrap();
        assert_eq!(g.block(c00).field().at([0, 0], 0), 0.0);
        assert_eq!(g.block(c00).field().at([2, 3], 0), 11.0);
    }

    #[test]
    fn coarsen_transfer_restricts_field() {
        let mut g = grid2([1, 1], Boundary::Periodic);
        let r = g.find(BlockKey::new(0, [0, 0])).unwrap();
        g.block_mut(r).field_mut().for_each_interior(|c, u| {
            u[0] = (c[0] + 10 * c[1]) as f64;
        });
        let before: f64 = g.block(r).field().interior_sum(0);
        g.refine(r, Transfer::Conservative(ProlongOrder::LinearMinmod)).unwrap();
        let pid = g.coarsen(BlockKey::new(0, [0, 0]), Transfer::Conservative(ProlongOrder::Constant)).unwrap();
        let after = g.block(pid).field().interior_sum(0);
        assert!(
            (before - after).abs() < 1e-11,
            "refine+coarsen round trip must conserve: {before} vs {after}"
        );
    }

    #[test]
    fn find_leaf_at_points() {
        let mut g = grid2([2, 2], Boundary::Outflow);
        let a = g.find(BlockKey::new(0, [0, 0])).unwrap();
        g.refine(a, Transfer::None).unwrap();
        let id = g.find_leaf_at([0.1, 0.1]).unwrap();
        assert_eq!(g.block(id).key().level, 1);
        let id2 = g.find_leaf_at([0.9, 0.9]).unwrap();
        assert_eq!(g.block(id2).key(), BlockKey::new(0, [1, 1]));
        assert!(g.find_leaf_at([1.5, 0.0]).is_none());
    }

    #[test]
    fn find_covering() {
        let mut g = grid2([2, 1], Boundary::Outflow);
        let a = g.find(BlockKey::new(0, [0, 0])).unwrap();
        g.refine(a, Transfer::None).unwrap();
        let b = g.find(BlockKey::new(0, [1, 0])).unwrap();
        // a level-2 key under block b is covered by b
        let (id, k) = g.find_covering(BlockKey::new(2, [4, 1])).unwrap();
        assert_eq!(id, b);
        assert_eq!(k, BlockKey::new(0, [1, 0]));
    }

    #[test]
    fn level_histogram_counts() {
        let mut g = grid2([2, 1], Boundary::Outflow);
        let a = g.find(BlockKey::new(0, [0, 0])).unwrap();
        g.refine(a, Transfer::None).unwrap();
        assert_eq!(g.level_histogram(), vec![1, 4]);
        assert_eq!(g.max_level_present(), 1);
    }

    #[test]
    fn three_dim_refine_pointer_counts() {
        let mut g = BlockGrid::<3>::new(
            RootLayout::unit([2, 1, 1], Boundary::Outflow),
            GridParams::new([4, 4, 4], 2, 1, 3),
        );
        let a = g.find(BlockKey::new(0, [0, 0, 0])).unwrap();
        let b = g.find(BlockKey::new(0, [1, 0, 0])).unwrap();
        g.refine(a, Transfer::None).unwrap();
        // paper: at most 2^(d-1) = 4 blocks share a face with 2:1
        let conn = g.block(b).face(Face::new(0, false)).ids();
        assert_eq!(conn.len(), 4);
        for &n in conn {
            assert_eq!(g.block(n).key().level, 1);
            assert_eq!(g.block(n).face(Face::new(0, true)).ids(), &[b]);
        }
    }

    #[test]
    fn k2_jump_allows_two_levels() {
        let mut g = BlockGrid::<2>::new(
            RootLayout::unit([2, 1], Boundary::Outflow),
            GridParams::new([8, 8], 2, 1, 4).with_max_jump(2),
        );
        let a = g.find(BlockKey::new(0, [0, 0])).unwrap();
        let kids = g.refine(a, Transfer::None).unwrap();
        let rc = kids
            .iter()
            .copied()
            .find(|&i| g.block(i).key() == BlockKey::new(1, [1, 0]))
            .unwrap();
        assert!(g.can_refine(rc), "k=2 permits a 2-level jump");
        g.refine(rc, Transfer::None).unwrap();
        let b = g.find(BlockKey::new(0, [1, 0])).unwrap();
        // b's x- face now has 1 level-1 block and 2 level-2 blocks
        let conn = g.block(b).face(Face::new(0, false)).ids();
        assert_eq!(conn.len(), 3);
    }

    #[test]
    fn neighbors_at_offset_faces_and_corners() {
        let mut g = grid2([2, 2], Boundary::Outflow);
        let a = g.find(BlockKey::new(0, [0, 0])).unwrap();
        let b = g.find(BlockKey::new(0, [1, 0])).unwrap();
        let c = g.find(BlockKey::new(0, [0, 1])).unwrap();
        let d = g.find(BlockKey::new(0, [1, 1])).unwrap();
        // face offsets delegate to the stored pointers
        assert_eq!(g.neighbors_at_offset(a, [1, 0]), vec![b]);
        assert_eq!(g.neighbors_at_offset(a, [0, 1]), vec![c]);
        // diagonal
        assert_eq!(g.neighbors_at_offset(a, [1, 1]), vec![d]);
        // out of the domain
        assert!(g.neighbors_at_offset(a, [-1, -1]).is_empty());
        // zero offset is the block itself
        assert_eq!(g.neighbors_at_offset(a, [0, 0]), vec![a]);
        // refine d: a's diagonal now sees d's near corner child
        g.refine(d, Transfer::None).unwrap();
        let diag = g.neighbors_at_offset(a, [1, 1]);
        assert_eq!(diag.len(), 1);
        assert_eq!(g.block(diag[0]).key(), BlockKey::new(1, [2, 2]));
        // and d's corner child sees a (coarser) back
        let back = g.neighbors_at_offset(diag[0], [-1, -1]);
        assert_eq!(back, vec![a]);
    }

    #[test]
    fn field_bytes_accounts_ghosts() {
        let g = grid2([1, 1], Boundary::Periodic);
        // (4+4)^2 cells * 1 var * 8 bytes
        assert_eq!(g.field_bytes(), 64 * 8);
    }
}

//! Low-level index arithmetic shared by every module.
//!
//! The crate is generic over the spatial dimension `D ∈ {1, 2, 3}` via const
//! generics. An index vector is a plain `[i64; D]`; this module provides the
//! handful of vector helpers the rest of the crate needs, plus
//! [`IBox`], an axis-aligned integer box used to describe cell regions
//! (interior slabs, ghost slabs, face overlaps).
//!
//! All boxes are **half-open**: `lo[i] <= x[i] < hi[i]`.

/// Integer index vector in `D` dimensions.
pub type IVec<const D: usize> = [i64; D];

/// Number of faces of a `D`-dimensional block (`2 * D`).
#[inline]
pub const fn num_faces(d: usize) -> usize {
    2 * d
}

/// Number of children created by one refinement (`2^D`).
#[inline]
pub const fn num_children(d: usize) -> usize {
    1 << d
}

/// Maximum number of same-face finer neighbors under a `k`-level jump
/// constraint: `2^(k (d-1))` (paper, Adaptive Blocks section).
#[inline]
pub const fn max_face_neighbors(d: usize, k: usize) -> usize {
    1usize << (k * (d - 1))
}

/// Element-wise addition.
#[inline]
pub fn vadd<const D: usize>(a: IVec<D>, b: IVec<D>) -> IVec<D> {
    let mut r = a;
    for i in 0..D {
        r[i] += b[i];
    }
    r
}

/// Element-wise subtraction.
#[inline]
pub fn vsub<const D: usize>(a: IVec<D>, b: IVec<D>) -> IVec<D> {
    let mut r = a;
    for i in 0..D {
        r[i] -= b[i];
    }
    r
}

/// Scale every component by `s`.
#[inline]
pub fn vscale<const D: usize>(a: IVec<D>, s: i64) -> IVec<D> {
    let mut r = a;
    for x in r.iter_mut() {
        *x *= s;
    }
    r
}

/// Product of all components (e.g. cell count of an extent).
#[inline]
pub fn vprod<const D: usize>(a: IVec<D>) -> i64 {
    let mut p = 1;
    for &x in a.iter() {
        p *= x;
    }
    p
}

/// Unit vector along `dim` scaled by `s`.
#[inline]
pub fn unit<const D: usize>(dim: usize, s: i64) -> IVec<D> {
    let mut r = [0; D];
    r[dim] = s;
    r
}

/// A face of a `D`-dimensional box, identified by axis and side.
///
/// Encoded as `2*dim + (side as usize)` so faces can index flat arrays.
/// The *low* side of axis `d` faces toward `-d`, the *high* side toward `+d`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Face {
    /// Axis (0 = x, 1 = y, 2 = z).
    pub dim: u8,
    /// `false` = low (−) side, `true` = high (+) side.
    pub high: bool,
}

impl Face {
    /// Construct from axis and side.
    #[inline]
    pub fn new(dim: usize, high: bool) -> Self {
        Face { dim: dim as u8, high }
    }

    /// Flat index in `0 .. 2*D`, laid out `[x-, x+, y-, y+, z-, z+]`.
    #[inline]
    pub fn index(self) -> usize {
        2 * self.dim as usize + self.high as usize
    }

    /// Inverse of [`Face::index`].
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Face { dim: (i / 2) as u8, high: i % 2 == 1 }
    }

    /// The face on the opposite side of the same axis.
    #[inline]
    pub fn opposite(self) -> Self {
        Face { dim: self.dim, high: !self.high }
    }

    /// Outward normal direction: `-1` for a low face, `+1` for a high face.
    #[inline]
    pub fn sign(self) -> i64 {
        if self.high {
            1
        } else {
            -1
        }
    }

    /// Outward normal as an integer vector.
    #[inline]
    pub fn normal<const D: usize>(self) -> IVec<D> {
        unit(self.dim as usize, self.sign())
    }

    /// All `2*D` faces in flat-index order.
    pub fn all<const D: usize>() -> impl Iterator<Item = Face> {
        (0..num_faces(D)).map(Face::from_index)
    }
}

/// Half-open axis-aligned integer box: `lo[i] <= x[i] < hi[i]`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct IBox<const D: usize> {
    /// Inclusive lower corner.
    pub lo: IVec<D>,
    /// Exclusive upper corner.
    pub hi: IVec<D>,
}

impl<const D: usize> IBox<D> {
    /// Construct from corners. Does not require `lo <= hi`; such a box is
    /// simply [empty](IBox::is_empty).
    #[inline]
    pub fn new(lo: IVec<D>, hi: IVec<D>) -> Self {
        IBox { lo, hi }
    }

    /// The box `[0, dims)` in every dimension.
    #[inline]
    pub fn from_dims(dims: IVec<D>) -> Self {
        IBox { lo: [0; D], hi: dims }
    }

    /// Extent along each axis (clamped at zero).
    #[inline]
    pub fn extent(&self) -> IVec<D> {
        let mut e = [0; D];
        for i in 0..D {
            e[i] = (self.hi[i] - self.lo[i]).max(0);
        }
        e
    }

    /// Total number of lattice points contained.
    #[inline]
    pub fn volume(&self) -> i64 {
        vprod(self.extent())
    }

    /// True when the box contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        (0..D).any(|i| self.hi[i] <= self.lo[i])
    }

    /// True when `p` lies inside the half-open box.
    #[inline]
    pub fn contains(&self, p: IVec<D>) -> bool {
        (0..D).all(|i| self.lo[i] <= p[i] && p[i] < self.hi[i])
    }

    /// Intersection (may be empty).
    #[inline]
    pub fn intersect(&self, other: &Self) -> Self {
        let mut lo = [0; D];
        let mut hi = [0; D];
        for i in 0..D {
            lo[i] = self.lo[i].max(other.lo[i]);
            hi[i] = self.hi[i].min(other.hi[i]);
        }
        IBox { lo, hi }
    }

    /// Translate by `t`.
    #[inline]
    pub fn shift(&self, t: IVec<D>) -> Self {
        IBox { lo: vadd(self.lo, t), hi: vadd(self.hi, t) }
    }

    /// Scale both corners by `s` (maps a coarse cell box to the fine cells it
    /// covers when combined with `s = 2`).
    #[inline]
    pub fn scale(&self, s: i64) -> Self {
        IBox { lo: vscale(self.lo, s), hi: vscale(self.hi, s) }
    }

    /// Coarsen by factor 2: the smallest coarse box covering this fine box.
    #[inline]
    pub fn coarsen2(&self) -> Self {
        let mut lo = [0; D];
        let mut hi = [0; D];
        for i in 0..D {
            lo[i] = self.lo[i].div_euclid(2);
            hi[i] = (self.hi[i] + 1).div_euclid(2);
        }
        IBox { lo, hi }
    }

    /// The slab of thickness `depth` hugging `face` **inside** the box.
    pub fn inner_face_slab(&self, face: Face, depth: i64) -> Self {
        let d = face.dim as usize;
        let mut r = *self;
        if face.high {
            r.lo[d] = self.hi[d] - depth;
        } else {
            r.hi[d] = self.lo[d] + depth;
        }
        r
    }

    /// The slab of thickness `depth` hugging `face` **outside** the box.
    pub fn outer_face_slab(&self, face: Face, depth: i64) -> Self {
        let d = face.dim as usize;
        let mut r = *self;
        if face.high {
            r.lo[d] = self.hi[d];
            r.hi[d] = self.hi[d] + depth;
        } else {
            r.hi[d] = self.lo[d];
            r.lo[d] = self.lo[d] - depth;
        }
        r
    }

    /// Grow by `g` in every direction.
    #[inline]
    pub fn grow(&self, g: i64) -> Self {
        let mut r = *self;
        for i in 0..D {
            r.lo[i] -= g;
            r.hi[i] += g;
        }
        r
    }

    /// Iterate all points in row-major order (last axis fastest for `D = 1`,
    /// i.e. `x` fastest: index order `x`, then `y`, then `z`).
    pub fn iter(&self) -> BoxIter<D> {
        BoxIter { bx: *self, cur: self.lo, done: self.is_empty() }
    }
}

/// Iterator over the lattice points of an [`IBox`], `x` fastest.
pub struct BoxIter<const D: usize> {
    bx: IBox<D>,
    cur: IVec<D>,
    done: bool,
}

impl<const D: usize> Iterator for BoxIter<D> {
    type Item = IVec<D>;

    fn next(&mut self) -> Option<IVec<D>> {
        if self.done {
            return None;
        }
        let out = self.cur;
        // advance x fastest
        for i in 0..D {
            self.cur[i] += 1;
            if self.cur[i] < self.bx.hi[i] {
                return Some(out);
            }
            self.cur[i] = self.bx.lo[i];
        }
        self.done = true;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn face_index_roundtrip() {
        for i in 0..6 {
            assert_eq!(Face::from_index(i).index(), i);
        }
        assert_eq!(Face::new(0, false).index(), 0);
        assert_eq!(Face::new(2, true).index(), 5);
        assert_eq!(Face::new(1, true).opposite(), Face::new(1, false));
    }

    #[test]
    fn face_normals() {
        let f = Face::new(1, true);
        assert_eq!(f.normal::<3>(), [0, 1, 0]);
        assert_eq!(f.opposite().normal::<3>(), [0, -1, 0]);
        assert_eq!(Face::all::<2>().count(), 4);
        assert_eq!(Face::all::<3>().count(), 6);
    }

    #[test]
    fn box_volume_and_contains() {
        let b = IBox::<3>::new([0, 0, 0], [4, 3, 2]);
        assert_eq!(b.volume(), 24);
        assert!(b.contains([3, 2, 1]));
        assert!(!b.contains([4, 0, 0]));
        assert!(!b.is_empty());
        let e = IBox::<3>::new([0, 0, 0], [4, 0, 2]);
        assert!(e.is_empty());
        assert_eq!(e.volume(), 0);
    }

    #[test]
    fn box_intersection() {
        let a = IBox::<2>::new([0, 0], [4, 4]);
        let b = IBox::<2>::new([2, 3], [8, 8]);
        let c = a.intersect(&b);
        assert_eq!(c, IBox::new([2, 3], [4, 4]));
        assert_eq!(c.volume(), 2);
        let d = IBox::<2>::new([5, 5], [6, 6]);
        assert!(a.intersect(&d).is_empty());
    }

    #[test]
    fn box_face_slabs() {
        let b = IBox::<2>::new([0, 0], [4, 4]);
        let inner = b.inner_face_slab(Face::new(0, true), 2);
        assert_eq!(inner, IBox::new([2, 0], [4, 4]));
        let outer = b.outer_face_slab(Face::new(0, true), 2);
        assert_eq!(outer, IBox::new([4, 0], [6, 4]));
        let outer_lo = b.outer_face_slab(Face::new(1, false), 1);
        assert_eq!(outer_lo, IBox::new([0, -1], [4, 0]));
    }

    #[test]
    fn box_scale_coarsen() {
        let b = IBox::<2>::new([1, 2], [3, 4]);
        assert_eq!(b.scale(2), IBox::new([2, 4], [6, 8]));
        let f = IBox::<2>::new([1, 2], [3, 4]);
        // coarse cover of fine cells [1,3)x[2,4) is [0,2)x[1,2)
        assert_eq!(f.coarsen2(), IBox::new([0, 1], [2, 2]));
        // negative coordinates round toward -inf
        let n = IBox::<1>::new([-3], [-1]);
        assert_eq!(n.coarsen2(), IBox::new([-2], [0]));
    }

    #[test]
    fn box_iter_order_and_count() {
        let b = IBox::<2>::new([0, 0], [2, 3]);
        let pts: Vec<_> = b.iter().collect();
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], [0, 0]);
        assert_eq!(pts[1], [1, 0]); // x fastest
        assert_eq!(pts[2], [0, 1]);
        assert_eq!(*pts.last().unwrap(), [1, 2]);
        assert_eq!(IBox::<3>::new([0; 3], [0; 3]).iter().count(), 0);
    }

    #[test]
    fn neighbor_bound_formula() {
        // Paper: at most 2^(d-1) with 2:1, 2^(k(d-1)) for k levels.
        assert_eq!(max_face_neighbors(2, 1), 2);
        assert_eq!(max_face_neighbors(3, 1), 4);
        assert_eq!(max_face_neighbors(3, 2), 16);
        assert_eq!(max_face_neighbors(1, 3), 1);
    }

    #[test]
    fn vec_helpers() {
        assert_eq!(vadd([1, 2], [3, 4]), [4, 6]);
        assert_eq!(vsub([1, 2], [3, 4]), [-2, -2]);
        assert_eq!(vscale([1, 2, 3], 2), [2, 4, 6]);
        assert_eq!(vprod([4, 3, 2]), 24);
        assert_eq!(unit::<3>(1, -1), [0, -1, 0]);
    }
}

//! Per-block field storage.
//!
//! This is where the paper's performance argument lives: every block stores
//! its `m1 × … × md` cells (plus ghost layers) in **one flat, contiguous
//! allocation**, so solver kernels run tight loops over regular arrays —
//! loop optimization and cache reuse that per-cell tree nodes cannot offer.
//!
//! Layout (units of `f64`): variables are innermost (`idx = lin * nvar + v`),
//! then x, then y, then z. Ghost cells sit at negative interior coordinates,
//! i.e. interior cell `(0,…)` lives at allocated coordinate `(ng,…)`.
//!
//! The optional `pad` adds unused cells to the x-extent of the allocation
//! without changing the logical shape — the array-padding remedy the paper
//! applies to remove the 12³ cache peak in Fig. 5.

use crate::index::{IBox, IVec};

/// Shape of a block's field allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FieldShape<const D: usize> {
    /// Interior cells per axis.
    pub dims: IVec<D>,
    /// Ghost layers on every face.
    pub nghost: i64,
    /// Variables per cell.
    pub nvar: usize,
    /// Unused padding cells appended to the x-extent of the allocation.
    pub pad: i64,
}

impl<const D: usize> FieldShape<D> {
    /// Shape without padding.
    pub fn new(dims: IVec<D>, nghost: i64, nvar: usize) -> Self {
        Self::padded(dims, nghost, nvar, 0)
    }

    /// Shape with explicit x-padding.
    pub fn padded(dims: IVec<D>, nghost: i64, nvar: usize, pad: i64) -> Self {
        assert!(dims.iter().all(|&m| m >= 1), "block dims must be >= 1");
        assert!(nghost >= 0 && nvar >= 1 && pad >= 0);
        // The paper's restriction operator needs even interior extents once
        // blocks refine; enforce it only when ghosts are in play.
        FieldShape { dims, nghost, nvar, pad }
    }

    /// Ghosted extent per axis (`dims + 2*nghost`).
    #[inline]
    pub fn ghosted(&self) -> IVec<D> {
        let mut g = self.dims;
        for x in g.iter_mut() {
            *x += 2 * self.nghost;
        }
        g
    }

    /// Allocated extent per axis (ghosted + x padding).
    #[inline]
    pub fn allocated(&self) -> IVec<D> {
        let mut a = self.ghosted();
        a[0] += self.pad;
        a
    }

    /// Interior cell box in interior coordinates: `[0, dims)`.
    #[inline]
    pub fn interior_box(&self) -> IBox<D> {
        IBox::from_dims(self.dims)
    }

    /// Ghosted cell box in interior coordinates: `[-ng, dims + ng)`.
    #[inline]
    pub fn ghosted_box(&self) -> IBox<D> {
        self.interior_box().grow(self.nghost)
    }

    /// Number of interior cells.
    #[inline]
    pub fn interior_cells(&self) -> usize {
        self.dims.iter().product::<i64>() as usize
    }

    /// Number of allocated cells (ghosted + padding).
    #[inline]
    pub fn allocated_cells(&self) -> usize {
        self.allocated().iter().product::<i64>() as usize
    }

    /// Number of ghost (non-interior, non-pad) cells.
    #[inline]
    pub fn ghost_cells(&self) -> usize {
        self.ghosted().iter().product::<i64>() as usize - self.interior_cells()
    }

    /// Ghost-to-computational cell ratio — the paper's Table-B quantity.
    pub fn ghost_ratio(&self) -> f64 {
        self.ghost_cells() as f64 / self.interior_cells() as f64
    }

    /// Total `f64`s allocated.
    #[inline]
    pub fn len(&self) -> usize {
        self.allocated_cells() * self.nvar
    }

    /// True when the shape holds no storage (zero cells or variables).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cell strides in units of `f64`, per axis (variable stride is 1).
    #[inline]
    pub fn strides(&self) -> IVec<D> {
        let a = self.allocated();
        let mut s = [0; D];
        let mut acc = self.nvar as i64;
        for d in 0..D {
            s[d] = acc;
            acc *= a[d];
        }
        s
    }

    /// Linear offset (in `f64`s) of variable 0 of the cell at interior
    /// coordinates `c` (ghosts at negative coordinates are valid).
    #[inline]
    pub fn lin(&self, c: IVec<D>) -> usize {
        let s = self.strides();
        let mut idx = 0i64;
        for d in 0..D {
            let a = c[d] + self.nghost;
            debug_assert!(
                a >= 0 && a < self.allocated()[d],
                "cell index {c:?} out of allocated range (dims {:?}, ng {})",
                self.dims,
                self.nghost
            );
            idx += a * s[d];
        }
        idx as usize
    }
}

/// A block's field data: shape plus the flat allocation.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldBlock<const D: usize> {
    shape: FieldShape<D>,
    data: Vec<f64>,
}

impl<const D: usize> FieldBlock<D> {
    /// Zero-filled block of the given shape.
    pub fn zeros(shape: FieldShape<D>) -> Self {
        FieldBlock { shape, data: vec![0.0; shape.len()] }
    }

    /// Block filled with `v` in every variable of every allocated cell.
    pub fn filled(shape: FieldShape<D>, v: f64) -> Self {
        FieldBlock { shape, data: vec![v; shape.len()] }
    }

    /// Shape descriptor.
    #[inline]
    pub fn shape(&self) -> &FieldShape<D> {
        &self.shape
    }

    /// Raw storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Raw mutable storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One variable of one cell.
    #[inline]
    pub fn at(&self, c: IVec<D>, v: usize) -> f64 {
        debug_assert!(v < self.shape.nvar);
        self.data[self.shape.lin(c) + v]
    }

    /// Mutable access to one variable of one cell.
    #[inline]
    pub fn at_mut(&mut self, c: IVec<D>, v: usize) -> &mut f64 {
        debug_assert!(v < self.shape.nvar);
        let i = self.shape.lin(c) + v;
        &mut self.data[i]
    }

    /// The full state vector of one cell.
    #[inline]
    pub fn cell(&self, c: IVec<D>) -> &[f64] {
        let i = self.shape.lin(c);
        &self.data[i..i + self.shape.nvar]
    }

    /// Mutable state vector of one cell.
    #[inline]
    pub fn cell_mut(&mut self, c: IVec<D>) -> &mut [f64] {
        let i = self.shape.lin(c);
        let n = self.shape.nvar;
        &mut self.data[i..i + n]
    }

    /// Set the full state vector of one cell.
    #[inline]
    pub fn set_cell(&mut self, c: IVec<D>, u: &[f64]) {
        self.cell_mut(c).copy_from_slice(u);
    }

    /// Apply `f(coords, state)` to every interior cell.
    pub fn for_each_interior(&mut self, mut f: impl FnMut(IVec<D>, &mut [f64])) {
        let bx = self.shape.interior_box();
        for c in bx.iter() {
            f(c, self.cell_mut(c));
        }
    }

    /// Apply `f(coords, state)` to every ghosted cell.
    pub fn for_each_ghosted(&mut self, mut f: impl FnMut(IVec<D>, &mut [f64])) {
        let bx = self.shape.ghosted_box();
        for c in bx.iter() {
            f(c, self.cell_mut(c));
        }
    }

    /// Copy `region` (in this block's interior coordinates) out of `src`,
    /// where the same cells live at `region.shift(shift)` in `src`'s
    /// interior coordinates. Both blocks must have equal `nvar`.
    ///
    /// This is the same-level ghost-exchange primitive: `region` is a ghost
    /// slab of `self`; shifted by ± the block extent it lands in `src`'s
    /// interior.
    pub fn copy_region_from(&mut self, region: IBox<D>, src: &FieldBlock<D>, shift: IVec<D>) {
        assert_eq!(self.shape.nvar, src.shape.nvar, "nvar mismatch in copy");
        let nvar = self.shape.nvar;
        if region.is_empty() {
            return;
        }
        // Copy row-by-row along x for contiguity.
        let mut row = region;
        row.hi[0] = row.lo[0] + 1;
        let row_len = (region.hi[0] - region.lo[0]) as usize * nvar;
        for c in row.iter() {
            let mut sc = c;
            for d in 0..D {
                sc[d] += shift[d];
            }
            let di = self.shape.lin(c);
            let si = src.shape.lin(sc);
            self.data[di..di + row_len].copy_from_slice(&src.data[si..si + row_len]);
        }
    }

    /// Sum of one variable over the interior (used by conservation checks).
    pub fn interior_sum(&self, v: usize) -> f64 {
        let mut s = 0.0;
        for c in self.shape.interior_box().iter() {
            s += self.at(c, v);
        }
        s
    }

    /// Max-norm of one variable over the interior.
    pub fn interior_max_abs(&self, v: usize) -> f64 {
        let mut m: f64 = 0.0;
        for c in self.shape.interior_box().iter() {
            m = m.max(self.at(c, v).abs());
        }
        m
    }

    /// Fill every allocated value with `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Face;

    #[test]
    fn shape_extents() {
        let s = FieldShape::<3>::new([4, 6, 8], 2, 5);
        assert_eq!(s.ghosted(), [8, 10, 12]);
        assert_eq!(s.allocated(), [8, 10, 12]);
        assert_eq!(s.interior_cells(), 192);
        assert_eq!(s.allocated_cells(), 960);
        assert_eq!(s.ghost_cells(), 960 - 192);
        assert_eq!(s.len(), 960 * 5);
    }

    #[test]
    fn padding_changes_allocation_not_logic() {
        let p = FieldShape::<2>::padded([4, 4], 1, 2, 3);
        assert_eq!(p.ghosted(), [6, 6]);
        assert_eq!(p.allocated(), [9, 6]);
        let s0 = FieldShape::<2>::new([4, 4], 1, 2);
        assert_eq!(p.interior_box(), s0.interior_box());
        // strides differ: y stride skips the pad
        assert_eq!(p.strides(), [2, 18]);
        assert_eq!(s0.strides(), [2, 12]);
    }

    #[test]
    fn ghost_ratio_shrinks_with_block_size() {
        // TAB-B property: bigger blocks amortize ghosts better.
        let small = FieldShape::<3>::new([2, 2, 2], 2, 1).ghost_ratio();
        let big = FieldShape::<3>::new([16, 16, 16], 2, 1).ghost_ratio();
        assert!(small > 25.0, "2^3 with 2 ghosts: (6^3-8)/8 = 26");
        assert!(big < 1.0);
        assert!(small > big);
    }

    #[test]
    fn lin_is_bijective_over_ghosted_box() {
        let s = FieldShape::<2>::padded([3, 4], 1, 2, 2);
        let mut seen = std::collections::HashSet::new();
        for c in s.ghosted_box().iter() {
            assert!(seen.insert(s.lin(c)), "lin must be injective");
        }
        assert_eq!(seen.len(), s.ghosted().iter().product::<i64>() as usize);
    }

    #[test]
    fn cell_access() {
        let s = FieldShape::<2>::new([3, 3], 1, 2);
        let mut f = FieldBlock::zeros(s);
        *f.at_mut([1, 2], 0) = 5.0;
        *f.at_mut([1, 2], 1) = 7.0;
        assert_eq!(f.at([1, 2], 0), 5.0);
        assert_eq!(f.cell([1, 2]), &[5.0, 7.0]);
        f.set_cell([-1, -1], &[1.0, 2.0]);
        assert_eq!(f.at([-1, -1], 1), 2.0);
    }

    #[test]
    fn for_each_interior_touches_all() {
        let s = FieldShape::<3>::new([2, 3, 2], 1, 1);
        let mut f = FieldBlock::zeros(s);
        let mut n = 0;
        f.for_each_interior(|_, u| {
            u[0] = 1.0;
            n += 1;
        });
        assert_eq!(n, 12);
        assert_eq!(f.interior_sum(0), 12.0);
        // ghosts untouched
        assert_eq!(f.at([-1, 0, 0], 0), 0.0);
    }

    #[test]
    fn copy_region_same_level() {
        // Two 4x4 blocks side by side along x; fill right block's interior
        // x-low ghost slab from left block's x-high interior slab.
        let s = FieldShape::<2>::new([4, 4], 2, 1);
        let mut left = FieldBlock::zeros(s);
        left.for_each_interior(|c, u| u[0] = (c[0] * 10 + c[1]) as f64);
        let mut right = FieldBlock::zeros(s);
        let ghost_slab = s.interior_box().outer_face_slab(Face::new(0, false), 2);
        // right ghost cell (-1, j) == left interior (3, j): shift = +4 in x
        right.copy_region_from(ghost_slab, &left, [4, 0]);
        assert_eq!(right.at([-1, 0], 0), 30.0);
        assert_eq!(right.at([-2, 3], 0), 23.0);
        // interior untouched
        assert_eq!(right.at([0, 0], 0), 0.0);
    }

    #[test]
    fn copy_region_with_padding_source() {
        let sp = FieldShape::<1>::padded([4], 1, 1, 5);
        let sn = FieldShape::<1>::new([4], 1, 1);
        let mut a = FieldBlock::zeros(sp);
        a.for_each_interior(|c, u| u[0] = c[0] as f64 + 1.0);
        let mut b = FieldBlock::zeros(sn);
        let slab = sn.interior_box().outer_face_slab(Face::new(0, false), 1);
        b.copy_region_from(slab, &a, [4]);
        assert_eq!(b.at([-1], 0), 4.0);
    }

    #[test]
    fn sums_and_norms() {
        let s = FieldShape::<1>::new([4], 1, 1);
        let mut f = FieldBlock::zeros(s);
        f.for_each_interior(|c, u| u[0] = -(c[0] as f64));
        assert_eq!(f.interior_sum(0), -6.0);
        assert_eq!(f.interior_max_abs(0), 3.0);
    }
}

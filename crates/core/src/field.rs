//! Per-block field storage.
//!
//! This is where the paper's performance argument lives: every block stores
//! its `m1 × … × md` cells (plus ghost layers) in **one flat, contiguous
//! allocation**, so solver kernels run tight loops over regular arrays —
//! loop optimization and cache reuse that per-cell tree nodes cannot offer.
//!
//! Layout (units of `f64`): **structure-of-arrays**, variable-major. Each
//! variable occupies one contiguous plane of `plane_stride()` values; within
//! a plane, x is innermost (stride 1), then y, then z
//! (`idx = v * plane_stride + lin(c)`). Ghost cells sit at negative interior
//! coordinates, i.e. interior cell `(0,…)` lives at allocated coordinate
//! `(ng,…)`. Variable-major storage is what makes the sweep kernels
//! stride-1 per variable and lets them autovectorize; it is the layout
//! AMReX-class frameworks converged on.
//!
//! Two padding knobs perturb cache mapping without changing the logical
//! shape — the array-padding remedy the paper applies to remove the 12³
//! cache peak in Fig. 5:
//!
//! * `pad` appends unused cells to the **x-extent** of every plane (skews
//!   row-to-row mapping);
//! * `plane_pad` appends unused `f64`s to **each variable plane** (skews
//!   plane-to-plane mapping, the SoA analogue now that the planes of one
//!   block are themselves large power-of-two-prone strides apart).

use crate::index::{IBox, IVec};

/// Maximum variables per cell (bounds the owned gather buffer [`CellBuf`];
/// checkpoint loading enforces the same cap on untrusted input).
pub const MAX_NVAR: usize = 64;

/// Shape of a block's field allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FieldShape<const D: usize> {
    /// Interior cells per axis.
    pub dims: IVec<D>,
    /// Ghost layers on every face.
    pub nghost: i64,
    /// Variables per cell.
    pub nvar: usize,
    /// Unused padding cells appended to the x-extent of the allocation.
    pub pad: i64,
    /// Unused `f64`s appended to each variable plane.
    pub plane_pad: i64,
    /// When set, one extra plane beyond the `nvar` state planes holds the
    /// per-cell solid mask (1.0 solid, 0.0 fluid) binarized from the
    /// layout's immersed [`crate::geom::Geometry`]. The mask plane is not
    /// a state variable: `nvar` loops, ghost transfers, and serialization
    /// of cell values all exclude it.
    pub mask_plane: bool,
}

impl<const D: usize> FieldShape<D> {
    /// Shape without padding.
    pub fn new(dims: IVec<D>, nghost: i64, nvar: usize) -> Self {
        Self::padded(dims, nghost, nvar, 0)
    }

    /// Shape with explicit x-padding.
    pub fn padded(dims: IVec<D>, nghost: i64, nvar: usize, pad: i64) -> Self {
        assert!(dims.iter().all(|&m| m >= 1), "block dims must be >= 1");
        assert!(nghost >= 0 && nvar >= 1 && pad >= 0);
        assert!(nvar <= MAX_NVAR, "nvar {nvar} exceeds MAX_NVAR {MAX_NVAR}");
        // The paper's restriction operator needs even interior extents once
        // blocks refine; enforce it only when ghosts are in play.
        FieldShape { dims, nghost, nvar, pad, plane_pad: 0, mask_plane: false }
    }

    /// Same shape with a per-plane padding of `plane_pad` `f64`s.
    pub fn with_plane_pad(mut self, plane_pad: i64) -> Self {
        assert!(plane_pad >= 0);
        self.plane_pad = plane_pad;
        self
    }

    /// Same shape with or without the trailing solid-mask plane.
    pub fn with_mask_plane(mut self, mask_plane: bool) -> Self {
        self.mask_plane = mask_plane;
        self
    }

    /// Number of allocated planes: the `nvar` state planes plus the mask
    /// plane when present.
    #[inline]
    pub fn nplanes(&self) -> usize {
        self.nvar + self.mask_plane as usize
    }

    /// Ghosted extent per axis (`dims + 2*nghost`).
    #[inline]
    pub fn ghosted(&self) -> IVec<D> {
        let mut g = self.dims;
        for x in g.iter_mut() {
            *x += 2 * self.nghost;
        }
        g
    }

    /// Allocated extent per axis (ghosted + x padding).
    #[inline]
    pub fn allocated(&self) -> IVec<D> {
        let mut a = self.ghosted();
        a[0] += self.pad;
        a
    }

    /// Interior cell box in interior coordinates: `[0, dims)`.
    #[inline]
    pub fn interior_box(&self) -> IBox<D> {
        IBox::from_dims(self.dims)
    }

    /// Ghosted cell box in interior coordinates: `[-ng, dims + ng)`.
    #[inline]
    pub fn ghosted_box(&self) -> IBox<D> {
        self.interior_box().grow(self.nghost)
    }

    /// Number of interior cells.
    #[inline]
    pub fn interior_cells(&self) -> usize {
        self.dims.iter().product::<i64>() as usize
    }

    /// Number of allocated cells (ghosted + padding).
    #[inline]
    pub fn allocated_cells(&self) -> usize {
        self.allocated().iter().product::<i64>() as usize
    }

    /// Number of ghost (non-interior, non-pad) cells.
    #[inline]
    pub fn ghost_cells(&self) -> usize {
        self.ghosted().iter().product::<i64>() as usize - self.interior_cells()
    }

    /// Ghost-to-computational cell ratio — the paper's Table-B quantity.
    pub fn ghost_ratio(&self) -> f64 {
        self.ghost_cells() as f64 / self.interior_cells() as f64
    }

    /// Distance (in `f64`s) between the same cell of consecutive variable
    /// planes: allocated cells plus the per-plane padding.
    #[inline]
    pub fn plane_stride(&self) -> usize {
        self.allocated_cells() + self.plane_pad as usize
    }

    /// Total `f64`s allocated.
    #[inline]
    pub fn len(&self) -> usize {
        self.plane_stride() * self.nplanes()
    }

    /// True when the shape holds no storage (zero cells or variables).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cell strides in units of `f64` within one variable plane, per axis
    /// (x stride is 1).
    #[inline]
    pub fn strides(&self) -> IVec<D> {
        let a = self.allocated();
        let mut s = [0; D];
        let mut acc = 1i64;
        for d in 0..D {
            s[d] = acc;
            acc *= a[d];
        }
        s
    }

    /// Linear offset (in `f64`s) of the cell at interior coordinates `c`
    /// **within a variable plane** (ghosts at negative coordinates are
    /// valid). Variable `v` of the cell lives at `lin(c) + v * plane_stride()`
    /// — see [`FieldShape::vidx`].
    #[inline]
    pub fn lin(&self, c: IVec<D>) -> usize {
        let s = self.strides();
        let mut idx = 0i64;
        for d in 0..D {
            let a = c[d] + self.nghost;
            debug_assert!(
                a >= 0 && a < self.allocated()[d],
                "cell index {c:?} out of allocated range (dims {:?}, ng {})",
                self.dims,
                self.nghost
            );
            idx += a * s[d];
        }
        idx as usize
    }

    /// Linear offset of variable `v` of the cell at `c`.
    #[inline]
    pub fn vidx(&self, c: IVec<D>, v: usize) -> usize {
        debug_assert!(v < self.nvar);
        self.lin(c) + v * self.plane_stride()
    }
}

/// Owned copy of one cell's state vector, gathered across the variable
/// planes (SoA storage has no contiguous per-cell slice to borrow).
/// Dereferences to `&[f64]` of length `nvar`.
#[derive(Clone, Copy, Debug)]
pub struct CellBuf {
    buf: [f64; MAX_NVAR],
    n: usize,
}

impl std::ops::Deref for CellBuf {
    type Target = [f64];
    #[inline]
    fn deref(&self) -> &[f64] {
        &self.buf[..self.n]
    }
}

impl std::ops::DerefMut for CellBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.buf[..self.n]
    }
}

impl PartialEq for CellBuf {
    fn eq(&self, other: &CellBuf) -> bool {
        **self == **other
    }
}

impl PartialEq<[f64]> for CellBuf {
    fn eq(&self, other: &[f64]) -> bool {
        **self == *other
    }
}

impl<const N: usize> PartialEq<[f64; N]> for CellBuf {
    fn eq(&self, other: &[f64; N]) -> bool {
        **self == other[..]
    }
}

impl<const N: usize> PartialEq<&[f64; N]> for CellBuf {
    fn eq(&self, other: &&[f64; N]) -> bool {
        **self == other[..]
    }
}

/// A block's field data: shape plus the flat allocation.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldBlock<const D: usize> {
    shape: FieldShape<D>,
    data: Vec<f64>,
}

impl<const D: usize> FieldBlock<D> {
    /// Zero-filled block of the given shape.
    pub fn zeros(shape: FieldShape<D>) -> Self {
        FieldBlock { shape, data: vec![0.0; shape.len()] }
    }

    /// Block filled with `v` in every variable of every allocated cell.
    pub fn filled(shape: FieldShape<D>, v: f64) -> Self {
        FieldBlock { shape, data: vec![v; shape.len()] }
    }

    /// Shape descriptor.
    #[inline]
    pub fn shape(&self) -> &FieldShape<D> {
        &self.shape
    }

    /// Raw storage (variable-major: plane `v` spans
    /// `[v * plane_stride, v * plane_stride + allocated_cells)`).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Raw mutable storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One variable's full plane (all allocated cells, x innermost).
    #[inline]
    pub fn plane(&self, v: usize) -> &[f64] {
        debug_assert!(v < self.shape.nvar);
        let ps = self.shape.plane_stride();
        &self.data[v * ps..v * ps + self.shape.allocated_cells()]
    }

    /// Mutable access to one variable's plane.
    #[inline]
    pub fn plane_mut(&mut self, v: usize) -> &mut [f64] {
        debug_assert!(v < self.shape.nvar);
        let ps = self.shape.plane_stride();
        &mut self.data[v * ps..v * ps + self.shape.allocated_cells()]
    }

    /// One variable of one cell.
    #[inline]
    pub fn at(&self, c: IVec<D>, v: usize) -> f64 {
        self.data[self.shape.vidx(c, v)]
    }

    /// Mutable access to one variable of one cell.
    #[inline]
    pub fn at_mut(&mut self, c: IVec<D>, v: usize) -> &mut f64 {
        let i = self.shape.vidx(c, v);
        &mut self.data[i]
    }

    /// The full state vector of one cell, gathered into an owned buffer.
    #[inline]
    pub fn cell(&self, c: IVec<D>) -> CellBuf {
        let i = self.shape.lin(c);
        let ps = self.shape.plane_stride();
        let n = self.shape.nvar;
        let mut buf = [0.0; MAX_NVAR];
        for (v, b) in buf[..n].iter_mut().enumerate() {
            *b = self.data[i + v * ps];
        }
        CellBuf { buf, n }
    }

    /// Set the full state vector of one cell (scatter across planes).
    #[inline]
    pub fn set_cell(&mut self, c: IVec<D>, u: &[f64]) {
        debug_assert_eq!(u.len(), self.shape.nvar);
        let i = self.shape.lin(c);
        let ps = self.shape.plane_stride();
        for (v, &x) in u.iter().enumerate() {
            self.data[i + v * ps] = x;
        }
    }

    /// Apply `f(coords, state)` to every interior cell. The state slice is
    /// a gather buffer written back after each call.
    pub fn for_each_interior(&mut self, mut f: impl FnMut(IVec<D>, &mut [f64])) {
        let bx = self.shape.interior_box();
        self.for_each_in(bx, &mut f);
    }

    /// Apply `f(coords, state)` to every ghosted cell. The state slice is
    /// a gather buffer written back after each call.
    pub fn for_each_ghosted(&mut self, mut f: impl FnMut(IVec<D>, &mut [f64])) {
        let bx = self.shape.ghosted_box();
        self.for_each_in(bx, &mut f);
    }

    fn for_each_in(&mut self, bx: IBox<D>, f: &mut impl FnMut(IVec<D>, &mut [f64])) {
        let n = self.shape.nvar;
        let ps = self.shape.plane_stride();
        let mut buf = [0.0; MAX_NVAR];
        for c in bx.iter() {
            let i = self.shape.lin(c);
            for (v, b) in buf[..n].iter_mut().enumerate() {
                *b = self.data[i + v * ps];
            }
            f(c, &mut buf[..n]);
            for (v, &b) in buf[..n].iter().enumerate() {
                self.data[i + v * ps] = b;
            }
        }
    }

    /// Copy `region` (in this block's interior coordinates) out of `src`,
    /// where the same cells live at `region.shift(shift)` in `src`'s
    /// interior coordinates. Both blocks must have equal `nvar`.
    ///
    /// This is the same-level ghost-exchange primitive: `region` is a ghost
    /// slab of `self`; shifted by ± the block extent it lands in `src`'s
    /// interior. Copies run plane by plane, row by row along x — rows are
    /// contiguous in both blocks regardless of either block's `pad` or
    /// `plane_pad` (row length never includes padding).
    pub fn copy_region_from(&mut self, region: IBox<D>, src: &FieldBlock<D>, shift: IVec<D>) {
        assert_eq!(self.shape.nvar, src.shape.nvar, "nvar mismatch in copy");
        if region.is_empty() {
            return;
        }
        let dps = self.shape.plane_stride();
        let sps = src.shape.plane_stride();
        // One iterator step per x-row: collapse the region's x-extent.
        let mut row = region;
        row.hi[0] = row.lo[0] + 1;
        let row_len = (region.hi[0] - region.lo[0]) as usize;
        for c in row.iter() {
            let mut sc = c;
            for d in 0..D {
                sc[d] += shift[d];
            }
            let mut di = self.shape.lin(c);
            let mut si = src.shape.lin(sc);
            for _ in 0..self.shape.nvar {
                self.data[di..di + row_len].copy_from_slice(&src.data[si..si + row_len]);
                di += dps;
                si += sps;
            }
        }
    }

    /// Sum of one variable over the interior (used by conservation checks).
    pub fn interior_sum(&self, v: usize) -> f64 {
        let mut s = 0.0;
        for c in self.shape.interior_box().iter() {
            s += self.at(c, v);
        }
        s
    }

    /// Max-norm of one variable over the interior.
    pub fn interior_max_abs(&self, v: usize) -> f64 {
        let mut m: f64 = 0.0;
        for c in self.shape.interior_box().iter() {
            m = m.max(self.at(c, v).abs());
        }
        m
    }

    /// Fill every allocated value with `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Add or drop the trailing solid-mask plane, preserving all state
    /// values. A newly added mask plane is zero (all fluid) until
    /// binarized by the grid.
    pub fn set_mask_plane(&mut self, on: bool) {
        if self.shape.mask_plane == on {
            return;
        }
        self.shape.mask_plane = on;
        self.data.resize(self.shape.len(), 0.0);
        if !on {
            self.data.shrink_to_fit();
        }
    }

    /// The solid-mask plane (all allocated cells, x innermost), if the
    /// shape carries one. Values are exactly 1.0 (solid) or 0.0 (fluid).
    #[inline]
    pub fn mask(&self) -> Option<&[f64]> {
        if !self.shape.mask_plane {
            return None;
        }
        let ps = self.shape.plane_stride();
        Some(&self.data[self.shape.nvar * ps..self.shape.nvar * ps + self.shape.allocated_cells()])
    }

    /// Mutable solid-mask plane; panics when the shape has none.
    #[inline]
    pub fn mask_mut(&mut self) -> &mut [f64] {
        assert!(self.shape.mask_plane, "field has no mask plane");
        let ps = self.shape.plane_stride();
        let n = self.shape.allocated_cells();
        &mut self.data[self.shape.nvar * ps..self.shape.nvar * ps + n]
    }

    /// True when the cell at interior coordinates `c` (ghosts allowed) is
    /// inside an immersed solid. Always false without a mask plane.
    #[inline]
    pub fn is_solid(&self, c: IVec<D>) -> bool {
        match self.mask() {
            None => false,
            Some(m) => m[self.shape.lin(c)] != 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Face;

    #[test]
    fn shape_extents() {
        let s = FieldShape::<3>::new([4, 6, 8], 2, 5);
        assert_eq!(s.ghosted(), [8, 10, 12]);
        assert_eq!(s.allocated(), [8, 10, 12]);
        assert_eq!(s.interior_cells(), 192);
        assert_eq!(s.allocated_cells(), 960);
        assert_eq!(s.ghost_cells(), 960 - 192);
        assert_eq!(s.plane_stride(), 960);
        assert_eq!(s.len(), 960 * 5);
    }

    #[test]
    fn padding_changes_allocation_not_logic() {
        let p = FieldShape::<2>::padded([4, 4], 1, 2, 3);
        assert_eq!(p.ghosted(), [6, 6]);
        assert_eq!(p.allocated(), [9, 6]);
        let s0 = FieldShape::<2>::new([4, 4], 1, 2);
        assert_eq!(p.interior_box(), s0.interior_box());
        // x stride is 1 in both; y stride skips the pad
        assert_eq!(p.strides(), [1, 9]);
        assert_eq!(s0.strides(), [1, 6]);
    }

    #[test]
    fn plane_pad_changes_plane_stride_not_logic() {
        let s = FieldShape::<2>::new([4, 4], 1, 3).with_plane_pad(8);
        let s0 = FieldShape::<2>::new([4, 4], 1, 3);
        assert_eq!(s.allocated(), s0.allocated());
        assert_eq!(s.strides(), s0.strides());
        assert_eq!(s.plane_stride(), s0.plane_stride() + 8);
        assert_eq!(s.len(), (36 + 8) * 3);
        // same state, independent of plane padding
        let mut a = FieldBlock::zeros(s);
        let mut b = FieldBlock::zeros(s0);
        let fill = |c: IVec<2>, u: &mut [f64]| {
            for (v, x) in u.iter_mut().enumerate() {
                *x = (c[0] * 100 + c[1] * 10) as f64 + v as f64;
            }
        };
        a.for_each_ghosted(fill);
        b.for_each_ghosted(fill);
        for c in s.ghosted_box().iter() {
            for v in 0..3 {
                assert_eq!(a.at(c, v), b.at(c, v));
            }
        }
    }

    #[test]
    fn ghost_ratio_shrinks_with_block_size() {
        // TAB-B property: bigger blocks amortize ghosts better.
        let small = FieldShape::<3>::new([2, 2, 2], 2, 1).ghost_ratio();
        let big = FieldShape::<3>::new([16, 16, 16], 2, 1).ghost_ratio();
        assert!(small > 25.0, "2^3 with 2 ghosts: (6^3-8)/8 = 26");
        assert!(big < 1.0);
        assert!(small > big);
    }

    #[test]
    fn lin_is_bijective_over_ghosted_box() {
        let s = FieldShape::<2>::padded([3, 4], 1, 2, 2);
        let mut seen = std::collections::HashSet::new();
        for c in s.ghosted_box().iter() {
            assert!(seen.insert(s.lin(c)), "lin must be injective");
        }
        assert_eq!(seen.len(), s.ghosted().iter().product::<i64>() as usize);
    }

    #[test]
    fn vidx_separates_planes() {
        let s = FieldShape::<2>::padded([3, 4], 1, 3, 2).with_plane_pad(5);
        let mut seen = std::collections::HashSet::new();
        for v in 0..s.nvar {
            for c in s.ghosted_box().iter() {
                assert!(seen.insert(s.vidx(c, v)), "vidx must be injective");
                assert!(s.vidx(c, v) < s.len());
            }
        }
    }

    #[test]
    fn cell_access() {
        let s = FieldShape::<2>::new([3, 3], 1, 2);
        let mut f = FieldBlock::zeros(s);
        *f.at_mut([1, 2], 0) = 5.0;
        *f.at_mut([1, 2], 1) = 7.0;
        assert_eq!(f.at([1, 2], 0), 5.0);
        assert_eq!(f.cell([1, 2]), [5.0, 7.0]);
        f.set_cell([-1, -1], &[1.0, 2.0]);
        assert_eq!(f.at([-1, -1], 1), 2.0);
    }

    #[test]
    fn planes_are_contiguous_and_disjoint() {
        let s = FieldShape::<2>::new([2, 2], 0, 3).with_plane_pad(4);
        let mut f = FieldBlock::zeros(s);
        for v in 0..3 {
            f.plane_mut(v).fill(v as f64 + 1.0);
        }
        for v in 0..3 {
            assert!(f.plane(v).iter().all(|&x| x == v as f64 + 1.0));
            assert_eq!(f.plane(v).len(), 4);
            for c in s.interior_box().iter() {
                assert_eq!(f.at(c, v), v as f64 + 1.0);
            }
        }
    }

    #[test]
    fn for_each_interior_touches_all() {
        let s = FieldShape::<3>::new([2, 3, 2], 1, 1);
        let mut f = FieldBlock::zeros(s);
        let mut n = 0;
        f.for_each_interior(|_, u| {
            u[0] = 1.0;
            n += 1;
        });
        assert_eq!(n, 12);
        assert_eq!(f.interior_sum(0), 12.0);
        // ghosts untouched
        assert_eq!(f.at([-1, 0, 0], 0), 0.0);
    }

    #[test]
    fn copy_region_same_level() {
        // Two 4x4 blocks side by side along x; fill right block's interior
        // x-low ghost slab from left block's x-high interior slab.
        let s = FieldShape::<2>::new([4, 4], 2, 1);
        let mut left = FieldBlock::zeros(s);
        left.for_each_interior(|c, u| u[0] = (c[0] * 10 + c[1]) as f64);
        let mut right = FieldBlock::zeros(s);
        let ghost_slab = s.interior_box().outer_face_slab(Face::new(0, false), 2);
        // right ghost cell (-1, j) == left interior (3, j): shift = +4 in x
        right.copy_region_from(ghost_slab, &left, [4, 0]);
        assert_eq!(right.at([-1, 0], 0), 30.0);
        assert_eq!(right.at([-2, 3], 0), 23.0);
        // interior untouched
        assert_eq!(right.at([0, 0], 0), 0.0);
    }

    #[test]
    fn copy_region_with_padding_source() {
        let sp = FieldShape::<1>::padded([4], 1, 1, 5);
        let sn = FieldShape::<1>::new([4], 1, 1);
        let mut a = FieldBlock::zeros(sp);
        a.for_each_interior(|c, u| u[0] = c[0] as f64 + 1.0);
        let mut b = FieldBlock::zeros(sn);
        let slab = sn.interior_box().outer_face_slab(Face::new(0, false), 1);
        b.copy_region_from(slab, &a, [4]);
        assert_eq!(b.at([-1], 0), 4.0);
    }

    #[test]
    fn copy_region_padded_shapes_k2_ghosts() {
        // Regression for the padded row math: k=2 ghost slabs between two
        // multi-variable blocks whose paddings all differ (x-pad and
        // plane-pad on both sides), in 2-D and along the y axis so rows
        // iterate across the padded x extent.
        let sd = FieldShape::<2>::padded([4, 4], 2, 3, 3).with_plane_pad(7);
        let ss = FieldShape::<2>::padded([4, 4], 2, 3, 1).with_plane_pad(2);
        let mut srcf = FieldBlock::zeros(ss);
        srcf.for_each_ghosted(|c, u| {
            for (v, x) in u.iter_mut().enumerate() {
                *x = (100 * c[0] + 10 * c[1]) as f64 + v as f64;
            }
        });
        let mut dst = FieldBlock::filled(sd, -1.0);
        // y-low ghost slab of dst (2 deep, full ghosted x width) from the
        // y-high interior rows of src: shift +4 in y.
        let slab = IBox { lo: [-2, -2], hi: [6, 0] };
        dst.copy_region_from(slab, &srcf, [0, 4]);
        for c in slab.iter() {
            for v in 0..3 {
                let expect = (100 * c[0] + 10 * (c[1] + 4)) as f64 + v as f64;
                assert_eq!(dst.at(c, v), expect, "cell {c:?} var {v}");
            }
        }
        // everything outside the slab untouched
        for c in sd.ghosted_box().iter() {
            if !slab.contains(c) {
                for v in 0..3 {
                    assert_eq!(dst.at(c, v), -1.0, "cell {c:?} var {v} clobbered");
                }
            }
        }
    }

    #[test]
    fn sums_and_norms() {
        let s = FieldShape::<1>::new([4], 1, 1);
        let mut f = FieldBlock::zeros(s);
        f.for_each_interior(|c, u| u[0] = -(c[0] as f64));
        assert_eq!(f.interior_sum(0), -6.0);
        assert_eq!(f.interior_max_abs(0), 3.0);
    }
}

//! Restriction and prolongation primitives.
//!
//! These are the two intergrid operators the paper names: *restriction*
//! fills coarse values from fine ones (ghosts next to a finer neighbor,
//! parent data when coarsening), *prolongation* fills fine values from
//! coarse ones (ghosts next to a coarser neighbor, child data when
//! refining).
//!
//! Both are written against an affine index map so one implementation
//! serves every caller:
//!
//! * restriction — destination cell `c` averages the `ratio^D` source cells
//!   whose low corner is `ratio * c + q`;
//! * prolongation — destination cell `c` reads source cell
//!   `(c + p) div ratio - a`, with sub-cell position `(c + p) mod ratio`
//!   steering the linear correction.
//!
//! `ratio = 2^j` where `j` is the level difference; the paper's standard
//! configuration is `j = 1`, but the operators accept any power of two so
//! the "refinement level differences greater than one" generalization
//! (paper, *Generalizations*) works end to end.
//!
//! Volume-weighted averaging with equal cell volumes makes restriction
//! conservative by construction; the limited-linear prolongation is
//! conservative because the per-axis corrections sum to zero over each
//! coarse cell's `ratio^D` children.

use crate::field::FieldBlock;
use crate::index::{IBox, IVec};

/// Restriction: for each destination cell `c ∈ dst_box`, average the
/// `ratio^D` source cells with low corner `ratio * c + q`.
pub fn restrict_avg<const D: usize>(
    dst: &mut FieldBlock<D>,
    dst_box: IBox<D>,
    src: &FieldBlock<D>,
    q: IVec<D>,
    ratio: i64,
) {
    assert!(ratio >= 2 && ratio.count_ones() == 1, "ratio must be a power of two >= 2");
    let nvar = dst.shape().nvar;
    assert_eq!(nvar, src.shape().nvar);
    let inv = 1.0 / (ratio.pow(D as u32)) as f64;
    let fine_cell = IBox::<D>::from_dims([ratio; D]);
    let mut acc = vec![0.0; nvar];
    for c in dst_box.iter() {
        acc.fill(0.0);
        let mut base = [0; D];
        for d in 0..D {
            base[d] = ratio * c[d] + q[d];
        }
        for f in fine_cell.iter() {
            let mut sc = base;
            for d in 0..D {
                sc[d] += f[d];
            }
            let u = src.cell(sc);
            for v in 0..nvar {
                acc[v] += u[v];
            }
        }
        for a in acc.iter_mut() {
            *a *= inv;
        }
        dst.set_cell(c, &acc);
    }
}

/// Prolongation accuracy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProlongOrder {
    /// Piecewise-constant injection (first order). One ghost layer suffices.
    Constant,
    /// Limited linear reconstruction (second order): per-axis minmod slopes,
    /// one-sided where the stencil would leave `valid`. The right choice for
    /// conserved hyperbolic fields (no new extrema).
    LinearMinmod,
    /// Unlimited central-difference slopes: higher accuracy on smooth data,
    /// may overshoot at jumps. The right choice for multigrid corrections.
    LinearCentral,
}

#[inline]
fn minmod(a: f64, b: f64) -> f64 {
    if a * b <= 0.0 {
        0.0
    } else if a.abs() < b.abs() {
        a
    } else {
        b
    }
}

/// Prolongation: for each destination cell `c ∈ dst_box`, read source cell
/// `sc = (c + p) div ratio - a`, applying a limited linear correction when
/// `order` asks for it. `valid` is the box of source cells that hold
/// trustworthy data (interior plus whatever ghosts the caller knows are
/// filled); slope stencils never read outside it.
///
/// When the source block carries a solid-mask plane, slope stencils also
/// never read **solid** cells (their frozen contents are not field data),
/// and a solid source cell prolongs as a constant — so immersed-boundary
/// prolongation sources never leak solid state into fluid cells.
#[allow(clippy::too_many_arguments)]
pub fn prolong<const D: usize>(
    dst: &mut FieldBlock<D>,
    dst_box: IBox<D>,
    src: &FieldBlock<D>,
    p: IVec<D>,
    a: IVec<D>,
    ratio: i64,
    order: ProlongOrder,
    valid: IBox<D>,
) {
    assert!(ratio >= 2 && ratio.count_ones() == 1, "ratio must be a power of two >= 2");
    let nvar = dst.shape().nvar;
    assert_eq!(nvar, src.shape().nvar);
    let masked = src.shape().mask_plane;
    for c in dst_box.iter() {
        let mut sc = [0; D];
        let mut sub = [0; D];
        for d in 0..D {
            let g = c[d] + p[d];
            sc[d] = g.div_euclid(ratio) - a[d];
            sub[d] = g.rem_euclid(ratio);
        }
        debug_assert!(
            valid.contains(sc),
            "prolongation source cell {sc:?} outside valid region {valid:?}"
        );
        match order {
            ProlongOrder::Constant => {
                let u = src.cell(sc).to_vec();
                dst.set_cell(c, &u);
            }
            ProlongOrder::LinearCentral => {
                let u0 = src.cell(sc).to_vec();
                let mut u = u0.clone();
                for d in 0..D {
                    let pos = (sub[d] as f64 + 0.5) / ratio as f64 - 0.5;
                    if pos == 0.0 || (masked && src.is_solid(sc)) {
                        continue;
                    }
                    let mut lo = sc;
                    lo[d] -= 1;
                    let mut hi = sc;
                    hi[d] += 1;
                    let has_lo = valid.contains(lo) && !(masked && src.is_solid(lo));
                    let has_hi = valid.contains(hi) && !(masked && src.is_solid(hi));
                    for v in 0..nvar {
                        let slope = match (has_lo, has_hi) {
                            (true, true) => 0.5 * (src.at(hi, v) - src.at(lo, v)),
                            (true, false) => u0[v] - src.at(lo, v),
                            (false, true) => src.at(hi, v) - u0[v],
                            (false, false) => 0.0,
                        };
                        u[v] += slope * pos;
                    }
                }
                dst.set_cell(c, &u);
            }
            ProlongOrder::LinearMinmod => {
                let u0 = src.cell(sc).to_vec();
                let mut u = u0.clone();
                for d in 0..D {
                    // normalized offset of the fine subcell center from the
                    // coarse cell center, in units of the coarse cell
                    let pos = (sub[d] as f64 + 0.5) / ratio as f64 - 0.5;
                    if pos == 0.0 || (masked && src.is_solid(sc)) {
                        continue;
                    }
                    let mut lo = sc;
                    lo[d] -= 1;
                    let mut hi = sc;
                    hi[d] += 1;
                    let has_lo = valid.contains(lo) && !(masked && src.is_solid(lo));
                    let has_hi = valid.contains(hi) && !(masked && src.is_solid(hi));
                    for v in 0..nvar {
                        let slope = match (has_lo, has_hi) {
                            (true, true) => {
                                minmod(u0[v] - src.at(lo, v), src.at(hi, v) - u0[v])
                            }
                            // one-sided fallbacks keep the operator defined
                            // at the edge of the valid region; still limited
                            // against zero to avoid overshoot
                            (true, false) => minmod(u0[v] - src.at(lo, v), u0[v] - src.at(lo, v)),
                            (false, true) => minmod(src.at(hi, v) - u0[v], src.at(hi, v) - u0[v]),
                            (false, false) => 0.0,
                        };
                        u[v] += slope * pos;
                    }
                }
                dst.set_cell(c, &u);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldShape;

    fn fill_linear_2d(f: &mut FieldBlock<2>, ax: f64, ay: f64, c0: f64) {
        let bx = f.shape().ghosted_box();
        for c in bx.iter() {
            *f.at_mut(c, 0) = ax * c[0] as f64 + ay * c[1] as f64 + c0;
        }
    }

    #[test]
    fn restrict_is_average() {
        let fine = {
            let mut f = FieldBlock::zeros(FieldShape::<2>::new([4, 4], 0, 1));
            f.for_each_interior(|c, u| u[0] = (c[0] + 4 * c[1]) as f64);
            f
        };
        let mut coarse = FieldBlock::zeros(FieldShape::<2>::new([2, 2], 0, 1));
        restrict_avg(&mut coarse, IBox::from_dims([2, 2]), &fine, [0, 0], 2);
        // coarse (0,0) = avg of fine (0,0),(1,0),(0,1),(1,1) = (0+1+4+5)/4
        assert_eq!(coarse.at([0, 0], 0), 2.5);
        assert_eq!(coarse.at([1, 0], 0), 4.5);
        assert_eq!(coarse.at([0, 1], 0), 10.5);
    }

    #[test]
    fn restrict_conserves_sum() {
        let mut fine = FieldBlock::zeros(FieldShape::<3>::new([4, 4, 4], 0, 2));
        let mut k = 0.0;
        fine.for_each_interior(|_, u| {
            u[0] = k;
            u[1] = -2.0 * k;
            k += 1.0;
        });
        let mut coarse = FieldBlock::zeros(FieldShape::<3>::new([2, 2, 2], 0, 2));
        restrict_avg(&mut coarse, IBox::from_dims([2, 2, 2]), &fine, [0, 0, 0], 2);
        for v in 0..2 {
            let fs = fine.interior_sum(v);
            let cs = coarse.interior_sum(v) * 8.0; // coarse cells are 8x volume
            assert!((fs - cs).abs() < 1e-9 * fs.abs().max(1.0));
        }
    }

    #[test]
    fn restrict_ratio_4() {
        let mut fine = FieldBlock::zeros(FieldShape::<1>::new([8], 0, 1));
        fine.for_each_interior(|c, u| u[0] = c[0] as f64);
        let mut coarse = FieldBlock::zeros(FieldShape::<1>::new([2], 0, 1));
        restrict_avg(&mut coarse, IBox::from_dims([2]), &fine, [0], 4);
        assert_eq!(coarse.at([0], 0), 1.5);
        assert_eq!(coarse.at([1], 0), 5.5);
    }

    #[test]
    fn prolong_constant_injects() {
        let mut coarse = FieldBlock::zeros(FieldShape::<2>::new([2, 2], 0, 1));
        coarse.for_each_interior(|c, u| u[0] = (1 + c[0] + 10 * c[1]) as f64);
        let mut fine = FieldBlock::zeros(FieldShape::<2>::new([4, 4], 0, 1));
        let valid = coarse.shape().interior_box();
        prolong(
            &mut fine,
            IBox::from_dims([4, 4]),
            &coarse,
            [0, 0],
            [0, 0],
            2,
            ProlongOrder::Constant,
            valid,
        );
        assert_eq!(fine.at([0, 0], 0), 1.0);
        assert_eq!(fine.at([1, 1], 0), 1.0);
        assert_eq!(fine.at([2, 0], 0), 2.0);
        assert_eq!(fine.at([3, 3], 0), 12.0);
    }

    #[test]
    fn prolong_linear_reproduces_linear_fields() {
        // A linear field must be prolonged exactly by the limited-linear
        // operator in the interior of the valid region.
        let mut coarse = FieldBlock::zeros(FieldShape::<2>::new([4, 4], 1, 1));
        fill_linear_2d(&mut coarse, 2.0, -3.0, 1.0);
        let mut fine = FieldBlock::zeros(FieldShape::<2>::new([8, 8], 0, 1));
        let valid = coarse.shape().ghosted_box();
        prolong(
            &mut fine,
            IBox::from_dims([8, 8]),
            &coarse,
            [0, 0],
            [0, 0],
            2,
            ProlongOrder::LinearMinmod,
            valid,
        );
        // fine cell (i,j) center sits at coarse coordinate (i-0.5)/2... check
        // against the analytic value: u(x) = 2x + -3y + 1 with x = coarse
        // index; fine cell i has coarse position (i + 0.5)/2 - 0.5.
        for i in 0..8i64 {
            for j in 0..8i64 {
                let x = (i as f64 + 0.5) / 2.0 - 0.5;
                let y = (j as f64 + 0.5) / 2.0 - 0.5;
                let want = 2.0 * x - 3.0 * y + 1.0;
                let got = fine.at([i, j], 0);
                assert!(
                    (got - want).abs() < 1e-12,
                    "fine ({i},{j}): got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn prolong_linear_is_conservative() {
        let mut coarse = FieldBlock::zeros(FieldShape::<2>::new([4, 4], 1, 1));
        // rough data
        let bx = coarse.shape().ghosted_box();
        let mut s = 1.0f64;
        for c in bx.iter() {
            *coarse.at_mut(c, 0) = s.sin() * 3.0 + (c[0] * c[1]) as f64;
            s += 1.7;
        }
        let mut fine = FieldBlock::zeros(FieldShape::<2>::new([8, 8], 0, 1));
        prolong(
            &mut fine,
            IBox::from_dims([8, 8]),
            &coarse,
            [0, 0],
            [0, 0],
            2,
            ProlongOrder::LinearMinmod,
            coarse.shape().ghosted_box(),
        );
        // each coarse interior cell's 4 children average to the coarse value
        for c in coarse.shape().interior_box().iter() {
            let mut avg = 0.0;
            for dx in 0..2i64 {
                for dy in 0..2i64 {
                    avg += fine.at([2 * c[0] + dx, 2 * c[1] + dy], 0);
                }
            }
            avg /= 4.0;
            let want = coarse.at(c, 0);
            assert!((avg - want).abs() < 1e-12, "children avg {avg} != parent {want}");
        }
    }

    #[test]
    fn prolong_limits_at_extrema() {
        // At a local extremum minmod slope is zero: children equal parent.
        let mut coarse = FieldBlock::zeros(FieldShape::<1>::new([3], 0, 1));
        coarse.for_each_interior(|c, u| u[0] = if c[0] == 1 { 5.0 } else { 1.0 });
        let mut fine = FieldBlock::zeros(FieldShape::<1>::new([6], 0, 1));
        prolong(
            &mut fine,
            IBox::from_dims([6]),
            &coarse,
            [0],
            [0],
            2,
            ProlongOrder::LinearMinmod,
            coarse.shape().interior_box(),
        );
        assert_eq!(fine.at([2], 0), 5.0);
        assert_eq!(fine.at([3], 0), 5.0);
    }

    #[test]
    fn prolong_with_offsets() {
        // Fill only the high-x half of a fine block from a shifted coarse
        // anchor — the index map used for ghost prolongation.
        let mut coarse = FieldBlock::zeros(FieldShape::<1>::new([4], 0, 1));
        coarse.for_each_interior(|c, u| u[0] = 100.0 + c[0] as f64);
        let mut fine = FieldBlock::zeros(FieldShape::<1>::new([4], 1, 1));
        // fine block's global fine offset p = 12 (block coords 3, m = 4),
        // coarse anchor a = 4 (coarse block coords 1, m = 4):
        // fine ghost cell c=-1 -> (12-1) div 2 - 4 = 5-4 = 1
        prolong(
            &mut fine,
            IBox::new([-1], [0]),
            &coarse,
            [12],
            [4],
            2,
            ProlongOrder::Constant,
            coarse.shape().interior_box(),
        );
        assert_eq!(fine.at([-1], 0), 101.0);
    }

    #[test]
    fn central_prolongation_exact_on_linear_and_overshoots_at_jumps() {
        let mut coarse = FieldBlock::zeros(FieldShape::<1>::new([4], 1, 1));
        let gb = coarse.shape().ghosted_box();
        for c in gb.iter() {
            *coarse.at_mut(c, 0) = 3.0 * c[0] as f64;
        }
        let mut fine = FieldBlock::zeros(FieldShape::<1>::new([8], 0, 1));
        prolong(
            &mut fine,
            IBox::from_dims([8]),
            &coarse,
            [0],
            [0],
            2,
            ProlongOrder::LinearCentral,
            coarse.shape().ghosted_box(),
        );
        for i in 0..8i64 {
            let want = 3.0 * ((i as f64 + 0.5) / 2.0 - 0.5);
            assert!((fine.at([i], 0) - want).abs() < 1e-13);
        }
        // at a step the central slope overshoots (by design — use minmod
        // for conserved fields)
        let mut step = FieldBlock::zeros(FieldShape::<1>::new([3], 0, 1));
        step.for_each_interior(|c, u| u[0] = if c[0] >= 2 { 1.0 } else { 0.0 });
        let mut out = FieldBlock::zeros(FieldShape::<1>::new([6], 0, 1));
        prolong(
            &mut out,
            IBox::from_dims([6]),
            &step,
            [0],
            [0],
            2,
            ProlongOrder::LinearCentral,
            step.shape().interior_box(),
        );
        assert!(out.at([3], 0) > 0.0 || out.at([2], 0) < 0.0, "central slopes act at jumps");
    }

    #[test]
    fn minmod_properties() {
        assert_eq!(minmod(1.0, 2.0), 1.0);
        assert_eq!(minmod(-3.0, -2.0), -2.0);
        assert_eq!(minmod(1.0, -1.0), 0.0);
        assert_eq!(minmod(0.0, 5.0), 0.0);
    }
}

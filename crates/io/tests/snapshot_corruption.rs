//! Corruption fuzz for the content-addressed node format (DESIGN.md §14
//! satellite): every truncation, bit flip, hash mismatch, and
//! missing-node hole in a v3 archive must surface as
//! `io::ErrorKind::InvalidData` — never a panic, never a silent partial
//! load. The frame checksum catches raw stream damage; the per-node
//! content hashes catch damage that *repairs* the frame checksum; the
//! manifest validation catches holes, duplicates and reordering that
//! preserve both.

use std::io::ErrorKind;

use ablock_core::balance::refine_ball_to_level;
use ablock_core::prelude::*;
use ablock_io::snapshot::{self, NodeHash, NodeStore};
use ablock_io::{load_grid, write_snapshot};
use ablock_testkit::cases;

fn sample_grid<const D: usize>() -> BlockGrid<D> {
    let layout = RootLayout::unit([2; D], Boundary::Periodic);
    let mut g: BlockGrid<D> = BlockGrid::new(layout, GridParams::new([4; D], 2, 2, 2));
    refine_ball_to_level(&mut g, [0.3; D], 0.2, 2, Transfer::None);
    for id in g.block_ids() {
        let mut seed = 1.0;
        g.block_mut(id).field_mut().for_each_interior(|_, u| {
            for x in u.iter_mut() {
                seed += 1.0;
                *x = seed;
            }
        });
    }
    g
}

fn sample_archive<const D: usize>() -> Vec<u8> {
    let g = sample_grid::<D>();
    let mut store = NodeStore::new();
    let stats = write_snapshot(&mut store, &g, 4).unwrap();
    let mut buf = Vec::new();
    snapshot::write_archive::<D>(&mut buf, &store, stats.root).unwrap();
    buf
}

fn assert_invalid<const D: usize>(bytes: &[u8], what: &str) {
    match load_grid::<D>(&mut &bytes[..]) {
        Ok(_) => panic!("{what}: corrupt archive loaded successfully"),
        Err(e) => assert_eq!(
            e.kind(),
            ErrorKind::InvalidData,
            "{what}: kind {:?} (msg: {e})",
            e.kind()
        ),
    }
}

// ---- local wire knowledge for checksum-repairing attacks ----------------
// The framing is a documented stable format (checkpoint.rs module docs):
// header `magic|version|D`, then sections `tag[4] | len u64 | bytes |
// fnv1a64(bytes)`. Re-deriving it here lets the tests forge frames whose
// checksums are *valid*, so only the content hashes can catch the damage.

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Split a v3 archive into (header, NODE section bytes, ROOT section bytes).
fn split_archive(buf: &[u8]) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let header = buf[..12].to_vec();
    let mut off = 12;
    let mut section = || {
        let len = u64::from_le_bytes(buf[off + 4..off + 12].try_into().unwrap()) as usize;
        let body = buf[off + 12..off + 12 + len].to_vec();
        off += 12 + len + 8;
        body
    };
    let nodes = section();
    let root = section();
    (header, nodes, root)
}

/// Reassemble an archive from parts, with fresh (valid) frame checksums.
fn join_archive(header: &[u8], nodes: &[u8], root: &[u8]) -> Vec<u8> {
    let mut out = header.to_vec();
    for (tag, body) in [(b"NODE", nodes), (b"SROT", root)] {
        out.extend_from_slice(tag);
        out.extend_from_slice(&(body.len() as u64).to_le_bytes());
        out.extend_from_slice(body);
        out.extend_from_slice(&fnv1a64(body).to_le_bytes());
    }
    out
}

/// Iterate the node records in a NODE section body: (record range, hash
/// range, byte-payload range).
#[allow(clippy::type_complexity)]
fn node_records(nodes: &[u8]) -> Vec<(std::ops::Range<usize>, std::ops::Range<usize>)> {
    let count = u64::from_le_bytes(nodes[..8].try_into().unwrap()) as usize;
    let mut out = Vec::with_capacity(count);
    let mut off = 8;
    for _ in 0..count {
        let start = off;
        let len = u64::from_le_bytes(nodes[off + 16..off + 24].try_into().unwrap()) as usize;
        let payload = off + 24..off + 24 + len;
        off += 24 + len;
        out.push((start..off, payload));
    }
    assert_eq!(off, nodes.len(), "test helper out of sync with the wire format");
    out
}

#[test]
fn truncation_at_every_length_is_invalid_data() {
    let buf = sample_archive::<2>();
    for len in 0..buf.len() {
        assert_invalid::<2>(&buf[..len], &format!("truncate to {len}"));
    }
}

#[test]
fn bit_flips_at_every_offset_never_panic_and_report_invalid_data() {
    let buf = sample_archive::<2>();
    for off in 0..buf.len() {
        for bit in [0u8, 3, 7] {
            let mut bad = buf.clone();
            bad[off] ^= 1 << bit;
            match load_grid::<2>(&mut bad.as_slice()) {
                Err(e) => assert_eq!(
                    e.kind(),
                    ErrorKind::InvalidData,
                    "flip bit {bit} at {off}: kind {:?} (msg: {e})",
                    e.kind()
                ),
                Ok(_) => panic!("flip bit {bit} at {off} loaded successfully"),
            }
        }
    }
}

/// Flip a bit inside every node payload and *repair the frame checksum*:
/// the only line of defense left is the content hash, and it must hold
/// for every node of every kind (leaf, index, root).
#[test]
fn checksum_repaired_payload_flips_fail_the_content_hash() {
    let buf = sample_archive::<2>();
    let (header, nodes, root) = split_archive(&buf);
    for (i, (_, payload)) in node_records(&nodes).iter().enumerate() {
        // three positions per node: first, middle, last byte
        for pick in 0..3usize {
            let off = match pick {
                0 => payload.start,
                1 => payload.start + (payload.end - payload.start) / 2,
                _ => payload.end - 1,
            };
            let mut bad_nodes = nodes.clone();
            bad_nodes[off] ^= 0x10;
            let forged = join_archive(&header, &bad_nodes, &root);
            assert_invalid::<2>(&forged, &format!("node {i} payload flip at {off}"));
        }
    }
}

/// Remove each node record wholesale (fixing the count and the frame
/// checksum): a hole where any referenced node should be must be reported
/// as a dangling reference, not silently skipped.
#[test]
fn missing_node_hole_is_invalid_data() {
    let buf = sample_archive::<2>();
    let (header, nodes, root) = split_archive(&buf);
    let records = node_records(&nodes);
    for (i, (record, _)) in records.iter().enumerate() {
        let count = records.len() as u64 - 1;
        let mut bad_nodes = count.to_le_bytes().to_vec();
        bad_nodes.extend_from_slice(&nodes[8..record.start]);
        bad_nodes.extend_from_slice(&nodes[record.end..]);
        let forged = join_archive(&header, &bad_nodes, &root);
        assert_invalid::<2>(&forged, &format!("drop node record {i}"));
    }
}

/// Point the ROOT section at a hash that is not in the archive.
#[test]
fn dangling_root_reference_is_invalid_data() {
    let buf = sample_archive::<2>();
    let (header, nodes, _) = split_archive(&buf);
    let bogus = [0xABu8; 16];
    let forged = join_archive(&header, &nodes, &bogus);
    assert_invalid::<2>(&forged, "dangling root");
}

/// Duplicate a node record but lie about its hash (claim a fresh address
/// for old bytes): `insert_verified` must reject the claim.
#[test]
fn forged_hash_claim_is_invalid_data() {
    let buf = sample_archive::<2>();
    let (header, nodes, root) = split_archive(&buf);
    let (record, _) = node_records(&nodes)[0].clone();
    let mut bad_nodes = nodes.clone();
    let mut dup = nodes[record.clone()].to_vec();
    dup[0] ^= 0xFF; // clobber the claimed hash, keep the bytes
    let count = node_records(&nodes).len() as u64 + 1;
    bad_nodes[..8].copy_from_slice(&count.to_le_bytes());
    bad_nodes.extend_from_slice(&dup);
    let forged = join_archive(&header, &bad_nodes, &root);
    assert_invalid::<2>(&forged, "forged hash claim");
}

#[test]
fn seeded_multibyte_corruption_2d_and_3d() {
    let buf2 = sample_archive::<2>();
    let buf3 = sample_archive::<3>();
    cases(150, 0x5EED_0018, |_, rng| {
        let (buf, three) = if rng.coin() { (&buf3, true) } else { (&buf2, false) };
        let mut bad = buf.clone();
        let start = rng.usize_below(bad.len());
        let len = rng.usize_in(1, 17).min(bad.len() - start);
        for b in &mut bad[start..start + len] {
            *b = rng.next_u64() as u8;
        }
        if rng.bool(0.3) {
            let cut = rng.usize_below(bad.len());
            bad.truncate(cut);
        }
        let what = format!("garbage {len}B at {start}");
        if three {
            assert_invalid::<3>(&bad, &what);
        } else {
            assert_invalid::<2>(&bad, &what);
        }
    });
}

/// Deleting nodes straight out of an in-memory store (a lost stripe on
/// the backing storage rather than a damaged stream) is also a dangling
/// reference, for every node in the closure.
#[test]
fn every_store_hole_is_a_dangling_reference() {
    let g = sample_grid::<2>();
    let mut store = NodeStore::new();
    let stats = write_snapshot(&mut store, &g, 0).unwrap();
    let mut archive = Vec::new();
    snapshot::write_archive::<2>(&mut archive, &store, stats.root).unwrap();
    let holes: Vec<NodeHash> = node_records(&split_archive(&archive).1)
        .iter()
        .map(|(record, _)| {
            NodeHash(archive[12 + 12 + record.start..12 + 12 + record.start + 16].try_into().unwrap())
        })
        .collect();
    for hole in holes {
        // rebuild the store minus one node by re-reading the archive and
        // filtering; NodeStore has no removal API (append-only), so
        // reconstruct through the public surface
        let (full, root) = snapshot::read_archive::<2>(&mut archive.as_slice()).unwrap();
        let mut partial = NodeStore::new();
        for (record, payload) in node_records(&split_archive(&archive).1) {
            let h = NodeHash(
                split_archive(&archive).1[record.start..record.start + 16].try_into().unwrap(),
            );
            if h != hole {
                partial
                    .insert_verified(h, split_archive(&archive).1[payload].to_vec())
                    .unwrap();
            }
        }
        assert_eq!(partial.len(), full.len() - 1);
        let err = match snapshot::materialize::<2>(&partial, root) {
            Err(e) => e,
            Ok(_) => panic!("materialize with hole {hole:?} succeeded"),
        };
        assert_eq!(err.kind(), ErrorKind::InvalidData, "hole {hole:?}: {err}");
        assert!(err.to_string().contains("dangling node reference"), "{err}");
    }
}

// ---- geometry-bearing archives (embedded-boundary extension) ------------
// Root nodes embed the layout blob, which grew an optional SDF geometry
// tail; the damage sweeps must hold over archives that carry one.

fn geometry_sample_grid<const D: usize>() -> BlockGrid<D> {
    let geom = ablock_core::geom::Geometry::sphere([0.3, 0.3, 0.0], 0.15)
        .union(ablock_core::geom::Geometry::cylinder(2, [0.7, 0.6, 0.0], 0.1));
    let layout = RootLayout::unit([2; D], Boundary::Periodic).with_geometry(geom);
    let mut g: BlockGrid<D> = BlockGrid::new(layout, GridParams::new([4; D], 2, 2, 2));
    refine_ball_to_level(&mut g, [0.3; D], 0.2, 2, Transfer::None);
    for id in g.block_ids() {
        let mut seed = 1.0;
        g.block_mut(id).field_mut().for_each_interior(|_, u| {
            for x in u.iter_mut() {
                seed += 1.0;
                *x = seed;
            }
        });
    }
    g
}

#[test]
fn geometry_archive_damage_sweeps_are_invalid_data() {
    let g = geometry_sample_grid::<2>();
    let mut store = NodeStore::new();
    let stats = write_snapshot(&mut store, &g, 4).unwrap();
    let mut buf = Vec::new();
    snapshot::write_archive::<2>(&mut buf, &store, stats.root).unwrap();
    for len in 0..buf.len() {
        assert_invalid::<2>(&buf[..len], &format!("truncate geometry archive to {len}"));
    }
    for off in 0..buf.len() {
        let mut bad = buf.clone();
        bad[off] ^= 1 << 3;
        match load_grid::<2>(&mut bad.as_slice()) {
            Err(e) => assert_eq!(
                e.kind(),
                ErrorKind::InvalidData,
                "flip at {off}: kind {:?} (msg: {e})",
                e.kind()
            ),
            Ok(_) => panic!("flip at {off} loaded successfully"),
        }
    }
}

#[test]
fn geometry_archives_roundtrip_with_masks() {
    let g2 = geometry_sample_grid::<2>();
    let mut store = NodeStore::new();
    let stats = write_snapshot(&mut store, &g2, 11).unwrap();
    let mut buf = Vec::new();
    snapshot::write_archive::<2>(&mut buf, &store, stats.root).unwrap();
    let g = load_grid::<2>(&mut buf.as_slice()).unwrap();
    ablock_core::verify::check_grid(&g).unwrap();
    assert_eq!(g.layout().geometry, g2.layout().geometry);
    assert!(g.field_shape().mask_plane);
    for (_, node) in g2.blocks() {
        let id = g.find(node.key()).expect("leaf survives the archive");
        assert_eq!(
            node.field().mask().map(<[f64]>::to_vec),
            g.block(id).field().mask().map(<[f64]>::to_vec),
            "mask plane differs at {:?}",
            node.key()
        );
    }
}

#[test]
fn uncorrupted_archives_roundtrip() {
    // dual of the sweeps: pristine archives load exactly, 2-D and 3-D
    let g2 = sample_grid::<2>();
    let mut store = NodeStore::new();
    let stats = write_snapshot(&mut store, &g2, 9).unwrap();
    let mut buf = Vec::new();
    snapshot::write_archive::<2>(&mut buf, &store, stats.root).unwrap();
    let g = load_grid::<2>(&mut buf.as_slice()).unwrap();
    ablock_core::verify::check_grid(&g).unwrap();
    assert_eq!(g.num_blocks(), g2.num_blocks());
    let m = snapshot::read_manifest::<2>(&store, stats.root).unwrap();
    assert_eq!(m.step, 9);
}

//! On-disk format stability across storage-layout refactors.
//!
//! The fixture archives in `tests/fixtures/` were written by the
//! pre-refactor AoS build (interleaved `idx = lin * nvar + v` field
//! layout). Checkpoint v2 and snapshot v3 serialize interior data
//! cell-major (all variables of a cell together), and that byte order is
//! the *format*, not an artifact of the in-memory layout: any layout
//! change must transpose at the I/O boundary so that
//!
//! * old archives load bitwise-identically,
//! * re-saving a loaded grid reproduces the fixture bytes exactly, and
//! * content hashes of unchanged blocks (and hence snapshot roots) are
//!   stable — a layout refactor must not invalidate a content-addressed
//!   store.
//!
//! Fixtures deliberately include a nonzero allocation `pad` (the D=2
//! checkpoint) so padded shapes cross the I/O boundary too.
//!
//! Regenerate (only after an *intentional* format change, never for a
//! layout refactor) with:
//! `cargo test -p ablock-io --test format_stability -- --ignored --nocapture`

use std::collections::HashMap;
use std::path::PathBuf;

use ablock_core::prelude::*;
use ablock_core::verify::check_grid;
use ablock_io::checkpoint::{load_grid, save_grid};
use ablock_io::{
    materialize, read_archive, write_archive, write_snapshot, NodeHash, NodeStore,
};
use ablock_testkit::{flag_for_key, grid_digest, subseed, Rng};

/// Snapshot step baked into the v3 fixture (part of the root's identity).
const SNAP_STEP: u64 = 17;

/// Recorded state digest of the D=2 checkpoint fixture.
const CKPT_D2_DIGEST: u64 = 0xaed9_2bbf_4a8d_a86f;
/// Recorded state digest of the D=3 snapshot fixture.
const SNAP_D3_DIGEST: u64 = 0x4362_056c_ea86_1624;
/// Recorded root hash of the D=3 snapshot fixture archive.
const SNAP_D3_ROOT: [u64; 2] = [0x570e_5732_c9ed_4451, 0xc202_4458_9efe_fb25];

/// Recorded state digest of the geometry-bearing D=2 checkpoint fixture.
const CKPT_D2_GEOM_DIGEST: u64 = 0xb1ae_a7c3_e50c_a42f;
/// Recorded state digest of the geometry-bearing D=3 snapshot fixture.
const SNAP_D3_GEOM_DIGEST: u64 = 0x0f9f_b51d_7f8f_9a65;
/// Recorded root hash of the geometry-bearing D=3 snapshot fixture.
const SNAP_D3_GEOM_ROOT: [u64; 2] = [0xbdfd_946b_decd_1fdf, 0x9d91_c837_8b1b_b3d9];

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn read_fixture(name: &str) -> Vec<u8> {
    std::fs::read(fixture_path(name)).unwrap_or_else(|e| {
        panic!(
            "fixture {name} unreadable ({e}); regenerate with \
             `cargo test -p ablock-io --test format_stability -- --ignored`"
        )
    })
}

fn leaf_seed<const D: usize>(key: BlockKey<D>) -> u64 {
    let mut h = subseed(0xF1C7_BA5E, key.level as u64);
    for d in 0..D {
        h = subseed(h, key.coords[d] as u64);
    }
    h
}

/// Deterministic fixture state: key-derived adapt flags (so the topology
/// is independent of block iteration order) and key-seeded per-leaf
/// field values.
fn build_fixture<const D: usize>(params: GridParams<D>, roots: IVec<D>, adapt_seeds: &[u64]) -> BlockGrid<D> {
    build_fixture_with(params, roots, adapt_seeds, None)
}

fn build_fixture_with<const D: usize>(
    params: GridParams<D>,
    roots: IVec<D>,
    adapt_seeds: &[u64],
    geometry: Option<Geometry>,
) -> BlockGrid<D> {
    let max_level = params.max_level;
    let mut layout = RootLayout::unit(roots, Boundary::Periodic);
    if let Some(g) = geometry {
        layout = layout.with_geometry(g);
    }
    let mut g = BlockGrid::new(layout, params);
    for &s in adapt_seeds {
        let flags: HashMap<BlockId, Flag> = g
            .blocks()
            .filter_map(|(id, node)| {
                match flag_for_key(s, node.key(), max_level, 30) {
                    Flag::Keep => None,
                    f => Some((id, f)),
                }
            })
            .collect();
        adapt(&mut g, &flags, Transfer::Conservative(ProlongOrder::LinearMinmod));
    }
    for (_, node) in g.blocks_mut() {
        let mut rng = Rng::new(leaf_seed(node.key()));
        node.field_mut().for_each_interior(|_, u| {
            for v in u.iter_mut() {
                *v = rng.f64_in(-1e3, 1e3);
            }
        });
    }
    g
}

/// D=2, nvar=4, **pad=2**: padded allocation crossing the I/O boundary.
fn fixture_grid_2d() -> BlockGrid<2> {
    build_fixture(
        GridParams::new([4, 4], 2, 4, 2).with_pad(2),
        [2, 2],
        &[0xAD_0001, 0xAD_0002],
    )
}

/// D=3, nvar=8 (MHD-shaped), unpadded.
fn fixture_grid_3d() -> BlockGrid<3> {
    build_fixture(GridParams::new([4, 4, 4], 2, 8, 1), [2, 1, 1], &[0xAD_0003])
}

/// Fixed SDF baked into the geometry fixtures: every node tag of the
/// codec except HalfSpace, with primitives on the z = 0 plane so the
/// D=2 fixture cuts solid cells too.
fn fixture_geometry() -> Geometry {
    Geometry::sphere([0.3, 0.3, 0.0], 0.15)
        .union(Geometry::cylinder(2, [0.7, 0.6, 0.0], 0.1))
        .intersect(Geometry::half_space([0.0, 0.0, 1.0], 0.5).invert().invert())
}

/// D=2, nvar=4, pad=2, with an immersed SDF geometry (mask plane +
/// LAYT geometry tail crossing the I/O boundary).
fn fixture_grid_2d_geom() -> BlockGrid<2> {
    build_fixture_with(
        GridParams::new([4, 4], 2, 4, 2).with_pad(2),
        [2, 2],
        &[0xAD_0004],
        Some(fixture_geometry()),
    )
}

/// D=3, nvar=8, with the same immersed SDF geometry.
fn fixture_grid_3d_geom() -> BlockGrid<3> {
    build_fixture_with(
        GridParams::new([4, 4, 4], 2, 8, 1),
        [2, 1, 1],
        &[0xAD_0005],
        Some(fixture_geometry()),
    )
}

#[test]
fn checkpoint_v2_fixture_loads_bitwise_and_resaves_identically() {
    let bytes = read_fixture("checkpoint_v2_d2_pad2.ablk");
    let grid: BlockGrid<2> =
        load_grid(&mut bytes.as_slice()).expect("pre-refactor checkpoint must load");
    check_grid(&grid).expect("loaded fixture grid must pass the oracle");
    assert_eq!(grid.params().pad, 2, "fixture must exercise a padded shape");
    assert_eq!(
        grid_digest(&grid),
        CKPT_D2_DIGEST,
        "checkpoint v2 fixture no longer loads to the recorded state"
    );
    let mut resaved = Vec::new();
    save_grid(&mut resaved, &grid).expect("writing to a Vec cannot fail");
    assert_eq!(
        resaved, bytes,
        "re-saving the loaded fixture changed the on-disk bytes: the \
         checkpoint v2 format drifted"
    );
}

#[test]
fn snapshot_v3_fixture_materializes_with_stable_root() {
    let bytes = read_fixture("snapshot_v3_d3.ablk");
    let (store, root) =
        read_archive::<3>(&mut bytes.as_slice()).expect("pre-refactor archive must read");
    assert_eq!(
        root,
        NodeHash::from_words(SNAP_D3_ROOT),
        "archive root hash drifted"
    );
    let grid = materialize::<3>(&store, root).expect("fixture root must materialize");
    check_grid(&grid).expect("materialized fixture grid must pass the oracle");
    assert_eq!(
        grid_digest(&grid),
        SNAP_D3_DIGEST,
        "snapshot v3 fixture no longer materializes to the recorded state"
    );

    // Content-hash stability: snapshotting the identical state into a
    // fresh store must reproduce the identical root — every unchanged
    // block must hash to the same content address it had pre-refactor.
    let mut fresh = NodeStore::new();
    let stats = write_snapshot(&mut fresh, &grid, SNAP_STEP).expect("write_snapshot");
    assert_eq!(
        stats.root, root,
        "re-snapshotting the fixture state produced a different root: \
         block content hashes are not layout-stable"
    );

    // And the archive of that root must itself roundtrip.
    let mut rearchived = Vec::new();
    write_archive::<3>(&mut rearchived, &fresh, stats.root).expect("write_archive");
    let (_, root2) = read_archive::<3>(&mut rearchived.as_slice()).expect("read_archive");
    assert_eq!(root2, root);
}

#[test]
fn geometry_checkpoint_fixture_loads_bitwise_and_resaves_identically() {
    let bytes = read_fixture("checkpoint_v2_d2_geom.ablk");
    let grid: BlockGrid<2> =
        load_grid(&mut bytes.as_slice()).expect("geometry checkpoint fixture must load");
    check_grid(&grid).expect("loaded geometry fixture must pass the oracle");
    assert_eq!(
        grid.layout().geometry.as_ref(),
        Some(&fixture_geometry()),
        "decoded geometry tree drifted from the recorded SDF"
    );
    assert!(grid.field_shape().mask_plane, "geometry fixture must carry the mask plane");
    assert!(
        grid.blocks().any(|(_, n)| n.field().mask().unwrap().iter().any(|&m| m != 0.0)),
        "geometry fixture must re-binarize at least one solid cell"
    );
    assert_eq!(
        grid_digest(&grid),
        CKPT_D2_GEOM_DIGEST,
        "geometry checkpoint fixture no longer loads to the recorded state"
    );
    let mut resaved = Vec::new();
    save_grid(&mut resaved, &grid).expect("writing to a Vec cannot fail");
    assert_eq!(
        resaved, bytes,
        "re-saving the loaded geometry fixture changed the on-disk bytes: \
         the LAYT geometry tail drifted"
    );
}

#[test]
fn geometry_snapshot_fixture_materializes_with_stable_root() {
    let bytes = read_fixture("snapshot_v3_d3_geom.ablk");
    let (store, root) =
        read_archive::<3>(&mut bytes.as_slice()).expect("geometry archive must read");
    assert_eq!(
        root,
        NodeHash::from_words(SNAP_D3_GEOM_ROOT),
        "geometry archive root hash drifted"
    );
    let grid = materialize::<3>(&store, root).expect("geometry fixture root must materialize");
    check_grid(&grid).expect("materialized geometry fixture must pass the oracle");
    assert_eq!(grid.layout().geometry.as_ref(), Some(&fixture_geometry()));
    assert_eq!(
        grid_digest(&grid),
        SNAP_D3_GEOM_DIGEST,
        "geometry snapshot fixture no longer materializes to the recorded state"
    );
    let mut fresh = NodeStore::new();
    let stats = write_snapshot(&mut fresh, &grid, SNAP_STEP).expect("write_snapshot");
    assert_eq!(
        stats.root, root,
        "re-snapshotting the geometry fixture produced a different root"
    );
}

#[test]
fn fixture_state_matches_generator() {
    // The generator itself must stay deterministic and layout-independent,
    // otherwise regeneration would silently re-record different states.
    assert_eq!(grid_digest(&fixture_grid_2d()), CKPT_D2_DIGEST);
    assert_eq!(grid_digest(&fixture_grid_3d()), SNAP_D3_DIGEST);
    assert_eq!(grid_digest(&fixture_grid_2d_geom()), CKPT_D2_GEOM_DIGEST);
    assert_eq!(grid_digest(&fixture_grid_3d_geom()), SNAP_D3_GEOM_DIGEST);
}

/// Writes the fixture files and prints the constants to bake into this
/// test. Run only for an intentional format change.
#[test]
#[ignore = "recording mode: rewrites tests/fixtures/ and prints the digest constants"]
fn record_fixtures() {
    std::fs::create_dir_all(fixture_path("")).expect("create fixtures dir");

    let g2 = fixture_grid_2d();
    let mut ckpt = Vec::new();
    save_grid(&mut ckpt, &g2).expect("save_grid");
    std::fs::write(fixture_path("checkpoint_v2_d2_pad2.ablk"), &ckpt).expect("write fixture");
    println!("CKPT_D2_DIGEST 0x{:016x} ({} bytes)", grid_digest(&g2), ckpt.len());

    let g3 = fixture_grid_3d();
    let mut store = NodeStore::new();
    let stats = write_snapshot(&mut store, &g3, SNAP_STEP).expect("write_snapshot");
    let mut arch = Vec::new();
    write_archive::<3>(&mut arch, &store, stats.root).expect("write_archive");
    std::fs::write(fixture_path("snapshot_v3_d3.ablk"), &arch).expect("write fixture");
    let w = stats.root.to_words();
    println!("SNAP_D3_DIGEST 0x{:016x} ({} bytes)", grid_digest(&g3), arch.len());
    println!("SNAP_D3_ROOT [0x{:016x}, 0x{:016x}]", w[0], w[1]);

    let g2g = fixture_grid_2d_geom();
    let mut ckpt_g = Vec::new();
    save_grid(&mut ckpt_g, &g2g).expect("save_grid");
    std::fs::write(fixture_path("checkpoint_v2_d2_geom.ablk"), &ckpt_g).expect("write fixture");
    println!("CKPT_D2_GEOM_DIGEST 0x{:016x} ({} bytes)", grid_digest(&g2g), ckpt_g.len());

    let g3g = fixture_grid_3d_geom();
    let mut store_g = NodeStore::new();
    let stats_g = write_snapshot(&mut store_g, &g3g, SNAP_STEP).expect("write_snapshot");
    let mut arch_g = Vec::new();
    write_archive::<3>(&mut arch_g, &store_g, stats_g.root).expect("write_archive");
    std::fs::write(fixture_path("snapshot_v3_d3_geom.ablk"), &arch_g).expect("write fixture");
    let wg = stats_g.root.to_words();
    println!("SNAP_D3_GEOM_DIGEST 0x{:016x} ({} bytes)", grid_digest(&g3g), arch_g.len());
    println!("SNAP_D3_GEOM_ROOT [0x{:016x}, 0x{:016x}]", wg[0], wg[1]);
}

//! Property test: checkpoint save → load is the identity, bit for bit.
//!
//! Random adapt sequences (including masked root layouts and a loosened
//! `max_level_jump = 2` constraint) produce grids whose reload must pass
//! the from-scratch `check_grid` oracle and reproduce every interior cell
//! of every leaf with exact bit equality — a checkpoint that is "close"
//! is a checkpoint that breaks deterministic restart equivalence.

use std::collections::HashMap;

use ablock_core::prelude::*;
use ablock_core::verify;
use ablock_io::checkpoint::{load_grid, save_grid};
use ablock_testkit::{cases, Rng};

/// Drive a scripted random adapt sequence on `grid`.
fn random_adapts(grid: &mut BlockGrid<2>, rng: &mut Rng, steps: usize, transfer: Transfer) {
    for _ in 0..steps {
        let mut flags: HashMap<BlockId, Flag> = HashMap::new();
        for id in grid.block_ids() {
            let r = rng.u64_below(100);
            if r < 35 {
                flags.insert(id, Flag::Refine);
            } else if r < 55 {
                flags.insert(id, Flag::Coarsen);
            }
        }
        adapt(grid, &flags, transfer);
    }
}

/// Fill every interior cell with pseudo-random values.
fn randomize_fields(grid: &mut BlockGrid<2>, rng: &mut Rng) {
    for (_, node) in grid.blocks_mut() {
        node.field_mut().for_each_interior(|_, u| {
            for v in u.iter_mut() {
                *v = rng.f64_in(-1e3, 1e3);
            }
        });
    }
}

/// Save, reload, and demand structural validity plus bitwise field
/// equality against the original.
fn assert_roundtrip_exact(grid: &BlockGrid<2>) {
    let mut buf = Vec::new();
    save_grid(&mut buf, grid).expect("writing to a Vec cannot fail");
    let reloaded: BlockGrid<2> = load_grid(&mut buf.as_slice()).expect("own checkpoint must load");
    verify::check_grid(&reloaded).unwrap();
    assert_eq!(reloaded.num_blocks(), grid.num_blocks());
    assert_eq!(reloaded.layout().mask, grid.layout().mask);
    assert_eq!(reloaded.layout().geometry, grid.layout().geometry);
    assert_eq!(reloaded.layout().boundaries, grid.layout().boundaries);
    assert_eq!(reloaded.params().max_level_jump, grid.params().max_level_jump);
    for (_, node) in grid.blocks() {
        let id2 = reloaded
            .find(node.key())
            .unwrap_or_else(|| panic!("leaf {:?} missing after reload", node.key()));
        let f2 = reloaded.block(id2).field();
        for c in node.field().shape().interior_box().iter() {
            for v in 0..grid.params().nvar {
                assert_eq!(
                    node.field().at(c, v).to_bits(),
                    f2.at(c, v).to_bits(),
                    "block {:?} cell {c:?} var {v} not bit-identical",
                    node.key()
                );
            }
        }
        // re-binarized solid masks must agree with the saved grid's exactly
        assert_eq!(
            node.field().mask().map(|m| m.to_vec()),
            f2.mask().map(|m| m.to_vec()),
            "block {:?} mask plane differs after reload",
            node.key()
        );
    }
}

#[test]
fn roundtrip_exact_over_random_adapts() {
    cases(24, 0x10_5EED_0001, |_, rng| {
        let rx = rng.i64_in(1, 4);
        let ry = rng.i64_in(1, 4);
        let bc = if rng.coin() { Boundary::Periodic } else { Boundary::Outflow };
        let mut g = BlockGrid::new(
            RootLayout::unit([rx, ry], bc),
            GridParams::new([4, 4], 2, 2, 3),
        );
        let steps = rng.usize_in(1, 4);
        random_adapts(&mut g, rng, steps, Transfer::Conservative(ProlongOrder::LinearMinmod));
        randomize_fields(&mut g, rng);
        assert_roundtrip_exact(&g);
    });
}

#[test]
fn roundtrip_exact_with_masked_roots() {
    cases(16, 0x10_5EED_0002, |_, rng| {
        // 3x3 root lattice with one interior root masked out (an L- or
        // ring-shaped domain), random hole boundary condition
        let hole = [rng.i64_in(0, 3), rng.i64_in(0, 3)];
        let hole_bc = *rng.choose(&[Boundary::Reflect, Boundary::Outflow, Boundary::Custom(3)]);
        let layout = RootLayout::unit([3, 3], Boundary::Outflow)
            .with_mask(move |c| c != hole)
            .with_hole_boundary(hole_bc);
        let mut g = BlockGrid::new(layout, GridParams::new([4, 4], 2, 2, 2));
        let steps = rng.usize_in(1, 3);
        random_adapts(&mut g, rng, steps, Transfer::None);
        randomize_fields(&mut g, rng);
        assert_roundtrip_exact(&g);
    });
}

#[test]
fn roundtrip_exact_with_geometry_and_subcycled_state() {
    use ablock_solver::{Euler, Scheme, SolverConfig, Stepper, TimeStepMode};
    use ablock_testkit::random_geometry;
    // Immersed SDF geometries: random adapts, a valid flow state, two
    // refluxed *subcycled* steps (which freeze solid cells and leave
    // wall-adjacent fluid in a nontrivial state), then the bitwise
    // roundtrip — including the geometry tree and re-binarized masks.
    cases(8, 0x10_5EED_0004, |_, rng| {
        let geom = random_geometry(rng, 2);
        let layout = RootLayout::unit([2, 2], Boundary::Periodic).with_geometry(geom);
        let mut g = BlockGrid::new(layout, GridParams::new([4, 4], 2, 4, 2));
        let steps = rng.usize_in(1, 3);
        random_adapts(&mut g, rng, steps, Transfer::Conservative(ProlongOrder::LinearMinmod));
        // smooth positive Euler state (rho, mx, my, E): random-field fills
        // would hand the solver negative densities
        for (_, node) in g.blocks_mut() {
            node.field_mut().for_each_interior(|_, u| {
                u[0] = rng.f64_in(0.8, 1.4);
                u[1] = rng.f64_in(-0.1, 0.1);
                u[2] = rng.f64_in(-0.1, 0.1);
                u[3] = rng.f64_in(8.0, 12.0);
            });
        }
        let mut st = Stepper::new(
            SolverConfig::new(Euler::<2>::new(1.4), Scheme::muscl_rusanov())
                .with_refluxing(true)
                .with_time_step_mode(TimeStepMode::Subcycled),
        );
        st.step(&mut g, 2e-4, None);
        st.step(&mut g, 2e-4, None);
        assert_roundtrip_exact(&g);
    });
}

#[test]
fn roundtrip_exact_with_max_jump_2() {
    cases(16, 0x10_5EED_0003, |_, rng| {
        // loosened constraint: 2-level jumps are legal and must survive
        // the save -> rebuild-topology -> load path
        let mut g = BlockGrid::new(
            RootLayout::unit([2, 2], Boundary::Periodic),
            GridParams::new([8, 8], 2, 2, 3).with_max_jump(2),
        );
        let steps = rng.usize_in(1, 4);
        random_adapts(&mut g, rng, steps, Transfer::Conservative(ProlongOrder::Constant));
        randomize_fields(&mut g, rng);
        assert_roundtrip_exact(&g);
    });
}

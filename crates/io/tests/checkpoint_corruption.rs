//! Checkpoint corruption fuzz (DESIGN.md §12 satellite): every way of
//! damaging a valid v2 checkpoint — truncation at **every** length,
//! single-bit flips at **every** offset, and seeded multi-byte garbage —
//! must surface as `io::ErrorKind::InvalidData`, and must never panic.
//! (`load_grid` wraps the raw `UnexpectedEof` from short reads, so there
//! is exactly one error kind for callers to match on.)

use std::io::ErrorKind;

use ablock_core::balance::refine_ball_to_level;
use ablock_core::prelude::*;
use ablock_io::{load_grid, save_grid};
use ablock_testkit::cases;

fn sample_checkpoint<const D: usize>() -> Vec<u8> {
    let layout = RootLayout::unit([2; D], Boundary::Periodic);
    let mut g: BlockGrid<D> = BlockGrid::new(layout, GridParams::new([4; D], 2, 2, 2));
    refine_ball_to_level(&mut g, [0.3; D], 0.2, 2, Transfer::None);
    for id in g.block_ids() {
        let mut seed = 1.0;
        g.block_mut(id).field_mut().for_each_interior(|_, u| {
            for x in u.iter_mut() {
                seed += 1.0;
                *x = seed;
            }
        });
    }
    let mut buf = Vec::new();
    save_grid(&mut buf, &g).unwrap();
    buf
}

/// Load must fail with `InvalidData` — the assertion is on the kind, not
/// just `is_err()`.
fn assert_invalid<const D: usize>(bytes: &[u8], what: &str) {
    match load_grid::<D>(&mut &bytes[..]) {
        Ok(_) => {
            // A flipped bit in payload f64 data can legitimately load: the
            // checksum catches it instead. If the checksum machinery ever
            // regresses this will start passing loads of corrupt data, so
            // verify the loaded grid at least self-checks.
            panic!("{what}: corrupt checkpoint loaded successfully");
        }
        Err(e) => assert_eq!(
            e.kind(),
            ErrorKind::InvalidData,
            "{what}: kind {:?} (msg: {e})",
            e.kind()
        ),
    }
}

#[test]
fn truncation_at_every_length_is_invalid_data() {
    let buf = sample_checkpoint::<2>();
    for len in 0..buf.len() {
        assert_invalid::<2>(&buf[..len], &format!("truncate to {len}"));
    }
}

#[test]
fn bit_flips_at_every_offset_never_panic_and_report_invalid_data() {
    let buf = sample_checkpoint::<2>();
    for off in 0..buf.len() {
        for bit in [0u8, 3, 7] {
            let mut bad = buf.clone();
            bad[off] ^= 1 << bit;
            match load_grid::<2>(&mut bad.as_slice()) {
                // every surfaced error must be InvalidData …
                Err(e) => assert_eq!(
                    e.kind(),
                    ErrorKind::InvalidData,
                    "flip bit {bit} at {off}: kind {:?} (msg: {e})",
                    e.kind()
                ),
                // … and nothing may load: every section is checksummed
                Ok(_) => panic!("flip bit {bit} at {off} loaded successfully"),
            }
        }
    }
}

#[test]
fn seeded_multibyte_corruption_2d_and_3d() {
    let buf2 = sample_checkpoint::<2>();
    let buf3 = sample_checkpoint::<3>();
    cases(150, 0x5EED_0016, |_, rng| {
        let (buf, three) = if rng.coin() { (&buf3, true) } else { (&buf2, false) };
        let mut bad = buf.clone();
        // clobber a random run of 1..16 bytes with garbage
        let start = rng.usize_below(bad.len());
        let len = rng.usize_in(1, 17).min(bad.len() - start);
        for b in &mut bad[start..start + len] {
            *b = rng.next_u64() as u8;
        }
        // optionally also truncate
        if rng.bool(0.3) {
            let cut = rng.usize_below(bad.len());
            bad.truncate(cut);
        }
        let what = format!("garbage {len}B at {start}");
        if three {
            assert_invalid::<3>(&bad, &what);
        } else {
            assert_invalid::<2>(&bad, &what);
        }
    });
}

// ---- malformed leaf sets (valid frames, hostile content) ----------------
// These forge v2 streams whose checksums are *correct*, so only the
// semantic validation of the leaf set can reject them. The framing is
// re-derived locally from the documented format (checkpoint.rs docs).

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Split a v2 stream into (header, LAYT, PRMS, LEAF section bodies).
fn split_v2(buf: &[u8]) -> (Vec<u8>, Vec<u8>, Vec<u8>, Vec<u8>) {
    let header = buf[..12].to_vec();
    let mut off = 12;
    let mut section = || {
        let len = u64::from_le_bytes(buf[off + 4..off + 12].try_into().unwrap()) as usize;
        let body = buf[off + 12..off + 12 + len].to_vec();
        off += 12 + len + 8;
        body
    };
    let layt = section();
    let prms = section();
    let leaf = section();
    (header, layt, prms, leaf)
}

/// Reassemble a v2 stream with fresh (valid) frame checksums.
fn join_v2(header: &[u8], layt: &[u8], prms: &[u8], leaf: &[u8]) -> Vec<u8> {
    let mut out = header.to_vec();
    for (tag, body) in [(b"LAYT", layt), (b"PRMS", prms), (b"LEAF", leaf)] {
        out.extend_from_slice(tag);
        out.extend_from_slice(&(body.len() as u64).to_le_bytes());
        out.extend_from_slice(body);
        out.extend_from_slice(&fnv1a64(body).to_le_bytes());
    }
    out
}

/// A duplicated leaf record — same key twice — must be rejected, not
/// silently last-writer-wins loaded.
#[test]
fn duplicate_leaf_key_is_invalid_data() {
    let buf = sample_checkpoint::<2>();
    let (header, layt, prms, leaf) = split_v2(&buf);
    let count = u64::from_le_bytes(leaf[..8].try_into().unwrap());
    let record = (leaf.len() - 8) / count as usize;
    let mut forged = (count + 1).to_le_bytes().to_vec();
    forged.extend_from_slice(&leaf[8..8 + record]); // first record, twice
    forged.extend_from_slice(&leaf[8..]);
    let evil = join_v2(&header, &layt, &prms, &forged);
    match load_grid::<2>(&mut evil.as_slice()) {
        Ok(_) => panic!("duplicate leaf key loaded successfully"),
        Err(e) => {
            assert_eq!(e.kind(), ErrorKind::InvalidData);
            assert!(e.to_string().contains("duplicate leaf key"), "{e}");
        }
    }
}

/// A leaf set missing one sibling is not a valid tree cut: rebuilding the
/// topology produces a block with no saved data, which must be an error,
/// not a silently zero-filled block.
#[test]
fn missing_sibling_leaf_is_invalid_data() {
    let buf = sample_checkpoint::<2>();
    let (header, layt, prms, leaf) = split_v2(&buf);
    let count = u64::from_le_bytes(leaf[..8].try_into().unwrap());
    let record = (leaf.len() - 8) / count as usize;
    for drop_at in 0..count as usize {
        let mut forged = (count - 1).to_le_bytes().to_vec();
        forged.extend_from_slice(&leaf[8..8 + drop_at * record]);
        forged.extend_from_slice(&leaf[8 + (drop_at + 1) * record..]);
        let evil = join_v2(&header, &layt, &prms, &forged);
        match load_grid::<2>(&mut evil.as_slice()) {
            Ok(_) => panic!("dropping leaf record {drop_at} loaded successfully"),
            Err(e) => assert_eq!(e.kind(), ErrorKind::InvalidData, "record {drop_at}: {e}"),
        }
    }
}

// ---- geometry tail (embedded-boundary extension) ------------------------
// The LAYT section grew an optional trailing `flag u32 | geometry tree`
// when an SDF geometry is installed. Repeat the damage sweeps over a
// geometry-bearing stream, then forge valid-checksum LAYT payloads whose
// geometry bytes are hostile: unknown tags, bad flags, degenerate and
// non-finite parameters, recursion bombs, and trailing garbage.

fn geometry_sample_checkpoint<const D: usize>() -> Vec<u8> {
    // primitives sit on the z = 0 plane so lower-dimensional worlds
    // (which zero-extend sample points) still cut solid cells
    let geom = Geometry::sphere([0.3, 0.3, 0.0], 0.15)
        .union(Geometry::cylinder(2, [0.7, 0.6, 0.0], 0.1))
        .intersect(Geometry::cuboid([-1.0; 3], [2.0; 3]).invert().invert());
    let layout = RootLayout::unit([2; D], Boundary::Periodic).with_geometry(geom);
    let mut g: BlockGrid<D> = BlockGrid::new(layout, GridParams::new([4; D], 2, 2, 2));
    refine_ball_to_level(&mut g, [0.3; D], 0.2, 2, Transfer::None);
    for id in g.block_ids() {
        let mut seed = 1.0;
        g.block_mut(id).field_mut().for_each_interior(|_, u| {
            for x in u.iter_mut() {
                seed += 1.0;
                *x = seed;
            }
        });
    }
    let mut buf = Vec::new();
    save_grid(&mut buf, &g).unwrap();
    buf
}

#[test]
fn geometry_stream_truncation_at_every_length_is_invalid_data() {
    let buf = geometry_sample_checkpoint::<2>();
    for len in 0..buf.len() {
        assert_invalid::<2>(&buf[..len], &format!("truncate geometry stream to {len}"));
    }
}

#[test]
fn geometry_stream_bit_flips_never_panic_and_report_invalid_data() {
    let buf = geometry_sample_checkpoint::<2>();
    for off in 0..buf.len() {
        for bit in [0u8, 3, 7] {
            let mut bad = buf.clone();
            bad[off] ^= 1 << bit;
            match load_grid::<2>(&mut bad.as_slice()) {
                Err(e) => assert_eq!(
                    e.kind(),
                    ErrorKind::InvalidData,
                    "flip bit {bit} at {off}: kind {:?} (msg: {e})",
                    e.kind()
                ),
                Ok(_) => panic!("flip bit {bit} at {off} loaded successfully"),
            }
        }
    }
}

/// Raw encoding of a sphere node, mirroring the documented codec.
fn sphere_bytes(center: [f64; 3], radius: f64) -> Vec<u8> {
    let mut v = vec![1u8]; // GT_SPHERE
    for x in center {
        v.extend_from_slice(&x.to_le_bytes());
    }
    v.extend_from_slice(&radius.to_le_bytes());
    v
}

/// Append a `flag | geometry` tail to a geometry-free LAYT body.
fn with_geometry_tail(layt: &[u8], flag: u32, geom_bytes: &[u8]) -> Vec<u8> {
    let mut out = layt.to_vec();
    out.extend_from_slice(&flag.to_le_bytes());
    out.extend_from_slice(geom_bytes);
    out
}

#[test]
fn forged_geometry_tails_are_invalid_data() {
    let buf = sample_checkpoint::<2>();
    let (header, layt, prms, leaf) = split_v2(&buf);
    let ok_sphere = sphere_bytes([0.5; 3], 0.2);

    // sanity: a *well-formed* forged tail loads, so the rejections below
    // are really about the hostile content and not the splicing
    let good = join_v2(&header, &with_geometry_tail(&layt, 1, &ok_sphere), &prms, &leaf);
    let g = load_grid::<2>(&mut good.as_slice()).expect("well-formed geometry tail must load");
    assert!(g.layout().geometry.is_some());

    let hostile: Vec<(Vec<u8>, &str)> = vec![
        (with_geometry_tail(&layt, 0, &ok_sphere), "flag 0"),
        (with_geometry_tail(&layt, 2, &ok_sphere), "flag 2"),
        (with_geometry_tail(&layt, 1, &[]), "flag with no geometry bytes"),
        (with_geometry_tail(&layt, 1, &[0u8]), "geometry tag 0"),
        (with_geometry_tail(&layt, 1, &[99u8]), "geometry tag 99"),
        (with_geometry_tail(&layt, 1, &ok_sphere[..ok_sphere.len() - 3]), "truncated sphere"),
        (with_geometry_tail(&layt, 1, &sphere_bytes([0.5; 3], 0.0)), "radius 0"),
        (with_geometry_tail(&layt, 1, &sphere_bytes([0.5; 3], -1.0)), "negative radius"),
        (with_geometry_tail(&layt, 1, &sphere_bytes([f64::NAN; 3], 0.2)), "NaN center"),
        (
            with_geometry_tail(&layt, 1, &sphere_bytes([f64::INFINITY, 0.0, 0.0], 0.2)),
            "infinite center",
        ),
        (
            {
                // cylinder with out-of-range axis byte
                let mut v = vec![4u8, 3u8]; // GT_CYLINDER, axis 3
                for x in [0.5f64; 3] {
                    v.extend_from_slice(&x.to_le_bytes());
                }
                v.extend_from_slice(&0.2f64.to_le_bytes());
                with_geometry_tail(&layt, 1, &v)
            },
            "cylinder axis 3",
        ),
        (
            {
                // cuboid with lo >= hi on one axis
                let mut v = vec![3u8]; // GT_CUBOID
                for x in [0.0f64, 0.0, 0.0, 1.0, 0.0, 1.0] {
                    v.extend_from_slice(&x.to_le_bytes());
                }
                with_geometry_tail(&layt, 1, &v)
            },
            "degenerate cuboid",
        ),
        (
            {
                // recursion bomb: 100 nested Invert nodes around a sphere
                // must trip the depth cap, not the stack
                let mut v = vec![7u8; 100]; // GT_INVERT * 100
                v.extend_from_slice(&ok_sphere);
                with_geometry_tail(&layt, 1, &v)
            },
            "100-deep invert chain",
        ),
        (
            {
                // trailing garbage after a valid tree must not be ignored
                let mut v = ok_sphere.clone();
                v.push(0xAB);
                with_geometry_tail(&layt, 1, &v)
            },
            "trailing garbage after geometry",
        ),
    ];
    for (body, what) in hostile {
        let evil = join_v2(&header, &body, &prms, &leaf);
        assert_invalid::<2>(&evil, what);
    }
}

#[test]
fn geometry_checkpoint_roundtrips_bitwise_with_masks() {
    // save → load of a geometry-bearing grid must rebuild identical masks
    // (re-binarized from the decoded SDF) and bit-identical fluid state
    let buf = geometry_sample_checkpoint::<2>();
    let g: BlockGrid<2> = load_grid(&mut buf.as_slice()).unwrap();
    ablock_core::verify::check_grid(&g).unwrap();
    assert!(g.layout().geometry.is_some());
    assert!(g.field_shape().mask_plane, "reloaded grid must carry the mask plane");
    let mut any_solid = false;
    for (_, node) in g.blocks() {
        any_solid |= node.field().mask().unwrap().iter().any(|&m| m != 0.0);
    }
    assert!(any_solid, "sample geometry must actually cut solid cells");
    let mut buf2 = Vec::new();
    save_grid(&mut buf2, &g).unwrap();
    assert_eq!(buf, buf2, "resave of a geometry checkpoint must be byte-identical");
}

#[test]
fn random_grids_roundtrip_bitwise() {
    // the dual of the corruption sweep: whatever world and topology the
    // fuzzer generator produces, an *uncorrupted* save→load stays bitwise
    // exact — the script executor's Checkpoint command asserts that
    // internally, so end every random script with one
    use ablock_testkit::FuzzCmd;
    cases(25, 0x5EED_0017, |seed, rng| {
        let mut script = ablock_testkit::gen_script(rng.next_u64(), 8, false);
        script.push(FuzzCmd::Checkpoint);
        ablock_testkit::run_script::<2>(seed, &script).unwrap();
    });
}

//! Line profiles: sample the solution along a ray and export CSV — the
//! standard way 1-D comparisons (Sod, Brio–Wu) are plotted.

use ablock_core::grid::BlockGrid;

/// One sample point of a profile.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfilePoint {
    /// Arc-length position along the ray.
    pub s: f64,
    /// Physical position.
    pub x: Vec<f64>,
    /// Sampled variables (all `nvar`).
    pub values: Vec<f64>,
    /// Refinement level of the sampled block.
    pub level: u8,
}

/// Sample all variables at `n` evenly spaced points along the segment
/// `from → to` (piecewise-constant per finite-volume cell). Points outside
/// the domain (e.g. inside masked holes) are skipped.
pub fn line_profile<const D: usize>(
    grid: &BlockGrid<D>,
    from: [f64; D],
    to: [f64; D],
    n: usize,
) -> Vec<ProfilePoint> {
    assert!(n >= 2);
    let m = grid.params().block_dims;
    let layout = grid.layout();
    let mut out = Vec::with_capacity(n);
    let mut len = 0.0;
    for d in 0..D {
        len += (to[d] - from[d]) * (to[d] - from[d]);
    }
    let len = len.sqrt();
    for i in 0..n {
        let t = i as f64 / (n - 1) as f64;
        let mut x = [0.0; D];
        for d in 0..D {
            x[d] = from[d] + t * (to[d] - from[d]);
        }
        let Some(id) = grid.find_leaf_at(x) else { continue };
        let node = grid.block(id);
        let h = layout.cell_size(node.key().level, m);
        let o = layout.block_origin(node.key(), m);
        let mut c = [0i64; D];
        for d in 0..D {
            c[d] = (((x[d] - o[d]) / h[d]) as i64).clamp(0, m[d] - 1);
        }
        out.push(ProfilePoint {
            s: t * len,
            x: x.to_vec(),
            values: node.field().cell(c).to_vec(),
            level: node.key().level,
        });
    }
    out
}

/// Render a profile as CSV with the given variable names.
pub fn profile_csv(profile: &[ProfilePoint], var_names: &[&str]) -> String {
    let mut s = String::from("s");
    for (d, _) in profile.first().map(|p| &p.x).unwrap_or(&Vec::new()).iter().enumerate() {
        s.push_str(&format!(",x{d}"));
    }
    for name in var_names {
        s.push_str(&format!(",{name}"));
    }
    s.push_str(",level\n");
    for p in profile {
        s.push_str(&format!("{}", p.s));
        for x in &p.x {
            s.push_str(&format!(",{x}"));
        }
        for v in &p.values {
            s.push_str(&format!(",{v}"));
        }
        s.push_str(&format!(",{}\n", p.level));
    }
    s
}

/// A quick terminal sparkline of one variable of a profile (for examples).
pub fn sparkline(profile: &[ProfilePoint], var: usize, width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if profile.is_empty() {
        return String::new();
    }
    let lo = profile.iter().map(|p| p.values[var]).fold(f64::INFINITY, f64::min);
    let hi = profile
        .iter()
        .map(|p| p.values[var])
        .fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    let mut s = String::with_capacity(width);
    for i in 0..width {
        let j = i * (profile.len() - 1) / width.max(1).max(1);
        let t = (profile[j.min(profile.len() - 1)].values[var] - lo) / span;
        s.push(BARS[((t * 7.0).round() as usize).min(7)]);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ablock_core::grid::{GridParams, Transfer};
    use ablock_core::key::BlockKey;
    use ablock_core::layout::{Boundary, RootLayout};

    fn grid() -> BlockGrid<2> {
        let mut g = BlockGrid::new(
            RootLayout::unit([2, 2], Boundary::Outflow),
            GridParams::new([4, 4], 2, 2, 2),
        );
        let id = g.find(BlockKey::new(0, [1, 0])).unwrap();
        g.refine(id, Transfer::None).unwrap();
        let layout = g.layout().clone();
        let m = g.params().block_dims;
        for id in g.block_ids() {
            let key = g.block(id).key();
            g.block_mut(id).field_mut().for_each_interior(|c, u| {
                let x = layout.cell_center(key, m, c);
                u[0] = x[0];
                u[1] = 10.0 * x[1];
            });
        }
        g
    }

    #[test]
    fn horizontal_profile_is_monotone_in_x() {
        let g = grid();
        let p = line_profile(&g, [0.01, 0.3], [0.99, 0.3], 33);
        assert_eq!(p.len(), 33);
        // var 0 = x (cell-averaged): nondecreasing along the ray
        for w in p.windows(2) {
            assert!(w[1].values[0] >= w[0].values[0] - 1e-12);
        }
        // crosses the refined half: levels 0 and 1 both appear
        assert!(p.iter().any(|q| q.level == 0));
        assert!(p.iter().any(|q| q.level == 1));
        // arc length spans ~0.98
        assert!((p.last().unwrap().s - 0.98).abs() < 1e-12);
    }

    #[test]
    fn out_of_domain_points_skipped() {
        let g = grid();
        let p = line_profile(&g, [-0.5, 0.5], [0.5, 0.5], 21);
        assert!(p.len() < 21);
        assert!(p.iter().all(|q| q.x[0] >= 0.0));
    }

    #[test]
    fn csv_shape() {
        let g = grid();
        let p = line_profile(&g, [0.1, 0.1], [0.9, 0.1], 5);
        let csv = profile_csv(&p, &["a", "b"]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "s,x0,x1,a,b,level");
        assert_eq!(lines.len(), 1 + p.len());
        assert_eq!(lines[1].split(',').count(), 6);
    }

    #[test]
    fn sparkline_renders() {
        let g = grid();
        let p = line_profile(&g, [0.01, 0.5], [0.99, 0.5], 64);
        let sl = sparkline(&p, 0, 40);
        assert_eq!(sl.chars().count(), 40);
        // monotone ramp: first char low, last high
        assert_eq!(sl.chars().next().unwrap(), '▁');
        assert_eq!(sl.chars().last().unwrap(), '█');
    }
}

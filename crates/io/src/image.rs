//! Field imaging: resample a grid variable onto a uniform raster and write
//! portable graymap / pixmap images (no external image dependencies).

use ablock_core::grid::BlockGrid;

/// Sample variable `var` of a 2-D grid onto a `w × h` raster (piecewise
/// constant per cell, the honest finite-volume picture). Row 0 is the top
/// of the domain (image convention).
pub fn sample_2d(grid: &BlockGrid<2>, var: usize, w: usize, h: usize) -> Vec<f64> {
    let layout = grid.layout();
    let m = grid.params().block_dims;
    let mut out = vec![0.0; w * h];
    for j in 0..h {
        for i in 0..w {
            let x = layout.origin[0] + (i as f64 + 0.5) / w as f64 * layout.size[0];
            let y = layout.origin[1]
                + (1.0 - (j as f64 + 0.5) / h as f64) * layout.size[1];
            if let Some(id) = grid.find_leaf_at([x, y]) {
                let node = grid.block(id);
                let hh = layout.cell_size(node.key().level, m);
                let o = layout.block_origin(node.key(), m);
                let ci = (((x - o[0]) / hh[0]) as i64).clamp(0, m[0] - 1);
                let cj = (((y - o[1]) / hh[1]) as i64).clamp(0, m[1] - 1);
                out[j * w + i] = node.field().at([ci, cj], var);
            }
        }
    }
    out
}

/// Sample a z-slice of a 3-D grid (at physical height `z`).
pub fn sample_3d_slice(
    grid: &BlockGrid<3>,
    var: usize,
    z: f64,
    w: usize,
    h: usize,
) -> Vec<f64> {
    let layout = grid.layout();
    let m = grid.params().block_dims;
    let mut out = vec![0.0; w * h];
    for j in 0..h {
        for i in 0..w {
            let x = layout.origin[0] + (i as f64 + 0.5) / w as f64 * layout.size[0];
            let y = layout.origin[1]
                + (1.0 - (j as f64 + 0.5) / h as f64) * layout.size[1];
            if let Some(id) = grid.find_leaf_at([x, y, z]) {
                let node = grid.block(id);
                let hh = layout.cell_size(node.key().level, m);
                let o = layout.block_origin(node.key(), m);
                let ci = (((x - o[0]) / hh[0]) as i64).clamp(0, m[0] - 1);
                let cj = (((y - o[1]) / hh[1]) as i64).clamp(0, m[1] - 1);
                let ck = (((z - o[2]) / hh[2]) as i64).clamp(0, m[2] - 1);
                out[j * w + i] = node.field().at([ci, cj, ck], var);
            }
        }
    }
    out
}

/// Encode a raster as a binary PGM (grayscale), auto-scaled to the data
/// range.
pub fn to_pgm(data: &[f64], w: usize, h: usize) -> Vec<u8> {
    assert_eq!(data.len(), w * h);
    let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    let mut out = format!("P5\n{w} {h}\n255\n").into_bytes();
    out.extend(data.iter().map(|&v| (((v - lo) / span) * 255.0).round() as u8));
    out
}

/// Encode a raster as a binary PPM with a blue→white→red diverging map
/// centered on the data midpoint.
pub fn to_ppm(data: &[f64], w: usize, h: usize) -> Vec<u8> {
    assert_eq!(data.len(), w * h);
    let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    let mut out = format!("P6\n{w} {h}\n255\n").into_bytes();
    for &v in data {
        let t = ((v - lo) / span).clamp(0.0, 1.0);
        let (r, g, b) = if t < 0.5 {
            let s = t * 2.0;
            (s, s, 1.0)
        } else {
            let s = (1.0 - t) * 2.0;
            (1.0, s, s)
        };
        out.push((r * 255.0) as u8);
        out.push((g * 255.0) as u8);
        out.push((b * 255.0) as u8);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ablock_core::grid::{GridParams, Transfer};
    use ablock_core::key::BlockKey;
    use ablock_core::layout::{Boundary, RootLayout};

    fn grid_with_marker() -> BlockGrid<2> {
        let mut g = BlockGrid::new(
            RootLayout::unit([2, 2], Boundary::Outflow),
            GridParams::new([4, 4], 2, 1, 2),
        );
        // make the refined corner hot
        let id = g.find(BlockKey::new(0, [0, 0])).unwrap();
        g.refine(id, Transfer::None).unwrap();
        for id in g.block_ids() {
            let lvl = g.block(id).key().level as f64;
            g.block_mut(id).field_mut().for_each_interior(|_, u| u[0] = lvl);
        }
        g
    }

    #[test]
    fn sampling_respects_levels() {
        let g = grid_with_marker();
        let img = sample_2d(&g, 0, 32, 32);
        // bottom-left quadrant (rows 16.., cols ..16) holds level-1 value 1
        assert_eq!(img[31 * 32 + 2], 1.0);
        // top-right is level 0
        assert_eq!(img[2 * 32 + 30], 0.0);
    }

    #[test]
    fn pgm_header_and_size() {
        let g = grid_with_marker();
        let img = sample_2d(&g, 0, 16, 8);
        let pgm = to_pgm(&img, 16, 8);
        assert!(pgm.starts_with(b"P5\n16 8\n255\n"));
        assert_eq!(pgm.len(), 12 + 16 * 8);
    }

    #[test]
    fn ppm_size() {
        let data = vec![0.0, 0.5, 1.0, 0.25];
        let ppm = to_ppm(&data, 2, 2);
        assert!(ppm.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(ppm.len(), 11 + 12);
        // first pixel (min) is blue
        assert_eq!(&ppm[11..14], &[0, 0, 255]);
    }

    #[test]
    fn constant_field_does_not_divide_by_zero() {
        let data = vec![3.0; 9];
        let pgm = to_pgm(&data, 3, 3);
        assert_eq!(pgm[pgm.len() - 1], 0);
    }
}

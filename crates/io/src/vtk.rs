//! Legacy-VTK output for external visualization (ParaView/VisIt).
//!
//! Two writers:
//! * [`vtk_uniform_2d`] / [`vtk_uniform_3d`] — resample the AMR solution
//!   onto a uniform `STRUCTURED_POINTS` lattice (one file, every tool
//!   reads it);
//! * [`vtk_blocks_2d`] — the block outlines as `POLYDATA` lines, for
//!   overlaying the mesh structure on the field.

use std::fmt::Write as _;

use ablock_core::grid::BlockGrid;

use crate::image::{sample_2d, sample_3d_slice};

/// Uniform-resampled scalar field of a 2-D grid as legacy VTK
/// `STRUCTURED_POINTS` (ASCII).
pub fn vtk_uniform_2d(grid: &BlockGrid<2>, var: usize, name: &str, n: usize) -> String {
    let layout = grid.layout();
    let data = sample_2d(grid, var, n, n);
    let mut s = String::new();
    let _ = writeln!(s, "# vtk DataFile Version 3.0");
    let _ = writeln!(s, "adaptive blocks resample");
    let _ = writeln!(s, "ASCII");
    let _ = writeln!(s, "DATASET STRUCTURED_POINTS");
    let _ = writeln!(s, "DIMENSIONS {n} {n} 1");
    let _ = writeln!(s, "ORIGIN {} {} 0", layout.origin[0], layout.origin[1]);
    let _ = writeln!(
        s,
        "SPACING {} {} 1",
        layout.size[0] / n as f64,
        layout.size[1] / n as f64
    );
    let _ = writeln!(s, "POINT_DATA {}", n * n);
    let _ = writeln!(s, "SCALARS {name} double 1");
    let _ = writeln!(s, "LOOKUP_TABLE default");
    // VTK y grows upward; our raster row 0 is the top -> flip rows
    for j in (0..n).rev() {
        for i in 0..n {
            let _ = writeln!(s, "{}", data[j * n + i]);
        }
    }
    s
}

/// Uniform-resampled z-slice of a 3-D grid as legacy VTK.
pub fn vtk_uniform_3d(grid: &BlockGrid<3>, var: usize, name: &str, z: f64, n: usize) -> String {
    let layout = grid.layout();
    let data = sample_3d_slice(grid, var, z, n, n);
    let mut s = String::new();
    let _ = writeln!(s, "# vtk DataFile Version 3.0");
    let _ = writeln!(s, "adaptive blocks slice z={z}");
    let _ = writeln!(s, "ASCII");
    let _ = writeln!(s, "DATASET STRUCTURED_POINTS");
    let _ = writeln!(s, "DIMENSIONS {n} {n} 1");
    let _ = writeln!(s, "ORIGIN {} {} {z}", layout.origin[0], layout.origin[1]);
    let _ = writeln!(
        s,
        "SPACING {} {} 1",
        layout.size[0] / n as f64,
        layout.size[1] / n as f64
    );
    let _ = writeln!(s, "POINT_DATA {}", n * n);
    let _ = writeln!(s, "SCALARS {name} double 1");
    let _ = writeln!(s, "LOOKUP_TABLE default");
    for j in (0..n).rev() {
        for i in 0..n {
            let _ = writeln!(s, "{}", data[j * n + i]);
        }
    }
    s
}

/// Block outlines of a 2-D grid as legacy VTK `POLYDATA` lines.
pub fn vtk_blocks_2d(grid: &BlockGrid<2>) -> String {
    let layout = grid.layout();
    let m = grid.params().block_dims;
    let nblocks = grid.num_blocks();
    let mut s = String::new();
    let _ = writeln!(s, "# vtk DataFile Version 3.0");
    let _ = writeln!(s, "adaptive block outlines");
    let _ = writeln!(s, "ASCII");
    let _ = writeln!(s, "DATASET POLYDATA");
    let _ = writeln!(s, "POINTS {} double", nblocks * 4);
    let mut lines = String::new();
    for (bi, (_, node)) in grid.blocks().enumerate() {
        let o = layout.block_origin(node.key(), m);
        let h = layout.cell_size(node.key().level, m);
        let (x0, y0) = (o[0], o[1]);
        let (x1, y1) = (o[0] + h[0] * m[0] as f64, o[1] + h[1] * m[1] as f64);
        let _ = writeln!(s, "{x0} {y0} 0");
        let _ = writeln!(s, "{x1} {y0} 0");
        let _ = writeln!(s, "{x1} {y1} 0");
        let _ = writeln!(s, "{x0} {y1} 0");
        let b = bi * 4;
        let _ = writeln!(lines, "5 {b} {} {} {} {b}", b + 1, b + 2, b + 3);
    }
    let _ = writeln!(s, "LINES {} {}", nblocks, nblocks * 6);
    s.push_str(&lines);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ablock_core::grid::{GridParams, Transfer};
    use ablock_core::key::BlockKey;
    use ablock_core::layout::{Boundary, RootLayout};

    fn grid() -> BlockGrid<2> {
        let mut g = BlockGrid::new(
            RootLayout::unit([2, 2], Boundary::Outflow),
            GridParams::new([4, 4], 2, 2, 2),
        );
        let id = g.find(BlockKey::new(0, [1, 1])).unwrap();
        g.refine(id, Transfer::None).unwrap();
        for id in g.block_ids() {
            g.block_mut(id).field_mut().for_each_interior(|c, u| {
                u[0] = c[0] as f64;
                u[1] = -1.0;
            });
        }
        g
    }

    #[test]
    fn structured_points_well_formed() {
        let g = grid();
        let vtk = vtk_uniform_2d(&g, 0, "rho", 16);
        assert!(vtk.contains("DATASET STRUCTURED_POINTS"));
        assert!(vtk.contains("DIMENSIONS 16 16 1"));
        assert!(vtk.contains("SCALARS rho double 1"));
        // 10 header lines + 256 values
        let values = vtk.lines().skip(10).count();
        assert_eq!(values, 256);
    }

    #[test]
    fn polydata_counts_match() {
        let g = grid();
        let vtk = vtk_blocks_2d(&g);
        assert!(vtk.contains(&format!("POINTS {} double", g.num_blocks() * 4)));
        assert!(vtk.contains(&format!("LINES {} {}", g.num_blocks(), g.num_blocks() * 6)));
    }

    #[test]
    fn slice_3d_runs() {
        let mut g3 = BlockGrid::<3>::new(
            RootLayout::unit([2, 2, 2], Boundary::Outflow),
            GridParams::new([4, 4, 4], 2, 1, 1),
        );
        for id in g3.block_ids() {
            let lvl = g3.block(id).key().coords[2] as f64;
            g3.block_mut(id).field_mut().for_each_interior(|_, u| u[0] = lvl);
        }
        let vtk = vtk_uniform_3d(&g3, 0, "q", 0.25, 8);
        assert!(vtk.contains("SCALARS q double 1"));
        // z = 0.25 lies in the lower root layer: all sampled values 0
        assert!(vtk.lines().skip(10).all(|l| l == "0"));
    }
}

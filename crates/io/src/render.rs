//! Grid-structure renderings: the paper's Figs. 2–4.
//!
//! * [`ascii_grid_2d`] draws block outlines in a character raster — good
//!   enough for terminals and doc tests;
//! * [`svg_grid_2d`] emits a standalone SVG with blocks outlined and
//!   shaded by refinement level (what the paper's Figure 2/3 show);
//! * [`svg_celltree_2d`] draws a cell-based quadtree with its parent
//!   cells ghosted behind the leaves (the paper's Figure 4 contrast).

use ablock_core::grid::BlockGrid;
use ablock_celltree::CellTree;

/// Character raster of the block outlines of a 2-D grid. `width` is the
/// raster width in characters; height follows the domain aspect ratio.
pub fn ascii_grid_2d(grid: &BlockGrid<2>, width: usize) -> String {
    let layout = grid.layout();
    let aspect = layout.size[1] / layout.size[0];
    let w = width.max(8);
    let h = ((w as f64) * aspect * 0.5).round().max(4.0) as usize; // chars are ~2:1
    let mut raster = vec![vec![' '; w + 1]; h + 1];
    let m = grid.params().block_dims;
    for (_, node) in grid.blocks() {
        let o = layout.block_origin(node.key(), m);
        let hh = layout.cell_size(node.key().level, m);
        let x0 = ((o[0] - layout.origin[0]) / layout.size[0] * w as f64).round() as usize;
        let y0 = ((o[1] - layout.origin[1]) / layout.size[1] * h as f64).round() as usize;
        let x1 = (((o[0] + hh[0] * m[0] as f64) - layout.origin[0]) / layout.size[0]
            * w as f64)
            .round() as usize;
        let y1 = (((o[1] + hh[1] * m[1] as f64) - layout.origin[1]) / layout.size[1]
            * h as f64)
            .round() as usize;
        for row_y in [y0, y1.min(h)] {
            for cell in raster[row_y][x0..=x1.min(w)].iter_mut() {
                *cell = '-';
            }
        }
        for row in raster.iter_mut().take(y1.min(h) + 1).skip(y0) {
            row[x0] = '|';
            row[x1.min(w)] = '|';
        }
        raster[y0][x0] = '+';
        raster[y0][x1.min(w)] = '+';
        raster[y1.min(h)][x0] = '+';
        raster[y1.min(h)][x1.min(w)] = '+';
    }
    // flip y so the origin is bottom-left
    let mut out = String::new();
    for row in raster.iter().rev() {
        let line: String = row.iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

fn level_color(level: u8) -> &'static str {
    const COLORS: [&str; 6] = ["#e8f0fe", "#c2d7fe", "#94b8fc", "#6694f5", "#3b6fe0", "#1d4ebc"];
    COLORS[(level as usize).min(COLORS.len() - 1)]
}

/// Standalone SVG of a 2-D block decomposition, shaded by level.
pub fn svg_grid_2d(grid: &BlockGrid<2>, width_px: f64) -> String {
    let layout = grid.layout();
    let scale = width_px / layout.size[0];
    let height_px = layout.size[1] * scale;
    let m = grid.params().block_dims;
    let mut s = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width_px:.0}\" height=\"{height_px:.0}\" viewBox=\"0 0 {width_px:.2} {height_px:.2}\">\n"
    );
    for (_, node) in grid.blocks() {
        let o = layout.block_origin(node.key(), m);
        let h = layout.cell_size(node.key().level, m);
        let x = (o[0] - layout.origin[0]) * scale;
        let w = h[0] * m[0] as f64 * scale;
        let hh = h[1] * m[1] as f64 * scale;
        // svg y grows downward; flip
        let y = height_px - ((o[1] - layout.origin[1]) * scale + hh);
        s.push_str(&format!(
            "  <rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{hh:.2}\" fill=\"{}\" stroke=\"#1a1a2e\" stroke-width=\"1\"/>\n",
            level_color(node.key().level)
        ));
        // draw the cell lattice inside the block (thin lines)
        for i in 1..m[0] {
            let cx = x + w * i as f64 / m[0] as f64;
            s.push_str(&format!(
                "  <line x1=\"{cx:.2}\" y1=\"{y:.2}\" x2=\"{cx:.2}\" y2=\"{:.2}\" stroke=\"#1a1a2e\" stroke-width=\"0.2\"/>\n",
                y + hh
            ));
        }
        for j in 1..m[1] {
            let cy = y + hh * j as f64 / m[1] as f64;
            s.push_str(&format!(
                "  <line x1=\"{x:.2}\" y1=\"{cy:.2}\" x2=\"{:.2}\" y2=\"{cy:.2}\" stroke=\"#1a1a2e\" stroke-width=\"0.2\"/>\n",
                x + w
            ));
        }
    }
    s.push_str("</svg>\n");
    s
}

/// Standalone SVG of a 2-D cell tree: leaves filled green (as in the
/// paper's Fig. 4), internal cells outlined only — showing that the
/// subdivided regions keep two representations.
pub fn svg_celltree_2d(tree: &CellTree<2>, width_px: f64) -> String {
    let layout = tree.layout();
    let scale = width_px / layout.size[0];
    let height_px = layout.size[1] * scale;
    let mut s = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width_px:.0}\" height=\"{height_px:.0}\" viewBox=\"0 0 {width_px:.2} {height_px:.2}\">\n"
    );
    // collect every node (walk from each leaf to its root), then draw
    // coarse-to-fine so leaves overlay their ancestors
    let mut nodes: Vec<_> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for id in tree.leaf_ids() {
        let mut cur = Some(id);
        while let Some(c) = cur {
            if !seen.insert(c) {
                break;
            }
            nodes.push(c);
            cur = tree.node(c).parent;
        }
    }
    nodes.sort_by_key(|&id| tree.node(id).key.level);
    for id in nodes {
        let n = tree.node(id);
        let h = tree.cell_size(n.key.level);
        let o = layout.block_origin(n.key, [1, 1]);
        let x = (o[0] - layout.origin[0]) * scale;
        let w = h[0] * scale;
        let hh = h[1] * scale;
        let y = height_px - ((o[1] - layout.origin[1]) * scale + hh);
        let fill = if n.is_leaf() { "#9be89b" } else { "none" };
        s.push_str(&format!(
            "  <rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{hh:.2}\" fill=\"{fill}\" stroke=\"#333\" stroke-width=\"0.8\"/>\n"
        ));
    }
    s.push_str("</svg>\n");
    s
}

/// SVG of a 2-D grid with blocks colored by an assignment (rank →
/// categorical color) and the space-filling-curve walk drawn through the
/// block centers — the picture behind SFC load balancing.
pub fn svg_partition_2d(
    grid: &BlockGrid<2>,
    assignment: &std::collections::HashMap<ablock_core::arena::BlockId, usize>,
    curve_order: &[ablock_core::arena::BlockId],
    width_px: f64,
) -> String {
    const RANK_COLORS: [&str; 8] = [
        "#f4cccc", "#d9ead3", "#cfe2f3", "#fff2cc", "#d9d2e9", "#fce5cd", "#d0e0e3", "#ead1dc",
    ];
    let layout = grid.layout();
    let scale = width_px / layout.size[0];
    let height_px = layout.size[1] * scale;
    let m = grid.params().block_dims;
    let center = |id: ablock_core::arena::BlockId| -> (f64, f64) {
        let node = grid.block(id);
        let o = layout.block_origin(node.key(), m);
        let h = layout.cell_size(node.key().level, m);
        let cx = (o[0] - layout.origin[0] + 0.5 * h[0] * m[0] as f64) * scale;
        let cy = height_px - (o[1] - layout.origin[1] + 0.5 * h[1] * m[1] as f64) * scale;
        (cx, cy)
    };
    let mut s = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width_px:.0}\" height=\"{height_px:.0}\" viewBox=\"0 0 {width_px:.2} {height_px:.2}\">\n"
    );
    for (id, node) in grid.blocks() {
        let o = layout.block_origin(node.key(), m);
        let h = layout.cell_size(node.key().level, m);
        let x = (o[0] - layout.origin[0]) * scale;
        let w = h[0] * m[0] as f64 * scale;
        let hh = h[1] * m[1] as f64 * scale;
        let y = height_px - ((o[1] - layout.origin[1]) * scale + hh);
        let color = assignment
            .get(&id)
            .map(|r| RANK_COLORS[r % RANK_COLORS.len()])
            .unwrap_or("#eeeeee");
        s.push_str(&format!(
            "  <rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{hh:.2}\" fill=\"{color}\" stroke=\"#333\" stroke-width=\"0.8\"/>\n"
        ));
    }
    if curve_order.len() >= 2 {
        let mut path = String::from("  <polyline points=\"");
        for &id in curve_order {
            let (cx, cy) = center(id);
            path.push_str(&format!("{cx:.1},{cy:.1} "));
        }
        path.push_str("\" fill=\"none\" stroke=\"#c0392b\" stroke-width=\"1.4\"/>\n");
        s.push_str(&path);
    }
    s.push_str("</svg>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ablock_core::grid::{GridParams, Transfer};
    use ablock_core::key::BlockKey;
    use ablock_core::layout::{Boundary, RootLayout};

    fn fig2_grid() -> BlockGrid<2> {
        // the paper's Figure 2 (4x4 cells per block rather than 3x4 —
        // refinement requires even extents): four blocks, one refined
        let mut g = BlockGrid::new(
            RootLayout::unit([2, 2], Boundary::Outflow),
            GridParams::new([4, 4], 2, 1, 2),
        );
        let id = g.find(BlockKey::new(0, [0, 1])).unwrap();
        g.refine(id, Transfer::None).unwrap();
        g
    }

    #[test]
    fn ascii_render_contains_corners() {
        let g = fig2_grid();
        let art = ascii_grid_2d(&g, 40);
        assert!(art.contains('+'));
        assert!(art.contains('-'));
        assert!(art.contains('|'));
        assert!(art.lines().count() >= 5);
    }

    #[test]
    fn svg_render_has_one_rect_per_block() {
        let g = fig2_grid();
        let svg = svg_grid_2d(&g, 400.0);
        assert_eq!(svg.matches("<rect").count(), g.num_blocks());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // two levels present: two fill colors
        assert!(svg.contains(level_color(0)));
        assert!(svg.contains(level_color(1)));
    }

    #[test]
    fn partition_svg_colors_and_curve() {
        use ablock_core::sfc::{curve_order, Curve};
        let g = fig2_grid();
        let keys: Vec<_> = g.blocks().map(|(_, n)| n.key()).collect();
        let ids: Vec<_> = g.blocks().map(|(id, _)| id).collect();
        let order = curve_order(&keys, Curve::Hilbert);
        let ordered: Vec<_> = order.iter().map(|&i| ids[i]).collect();
        let assignment: std::collections::HashMap<_, _> = ordered
            .iter()
            .enumerate()
            .map(|(rank_pos, &id)| (id, rank_pos / 4))
            .collect();
        let svg = svg_partition_2d(&g, &assignment, &ordered, 300.0);
        assert_eq!(svg.matches("<rect").count(), g.num_blocks());
        assert_eq!(svg.matches("<polyline").count(), 1);
        // the curve visits every block center
        let pts = svg.split("points=\"").nth(1).unwrap();
        let n_pts = pts.split('\"').next().unwrap().split_whitespace().count();
        assert_eq!(n_pts, g.num_blocks());
    }

    #[test]
    fn celltree_svg_shows_parents_and_leaves() {
        let mut t = CellTree::<2>::new(RootLayout::unit([2, 2], Boundary::Outflow), 1, 3);
        let leaf = t.leaf_ids()[0];
        let kids = t.refine(leaf);
        t.refine(kids[0]);
        let svg = svg_celltree_2d(&t, 300.0);
        // all nodes drawn: 4 roots + 4 + 4 children
        assert_eq!(svg.matches("<rect").count(), t.num_nodes());
        assert!(svg.contains("#9be89b"), "leaves are green");
        assert!(svg.contains("\"none\""), "internal cells hollow");
    }
}

//! Content-addressed incremental snapshots: a Merkle-style node store for
//! block grids.
//!
//! A snapshot is a tree of immutable **nodes**, each addressed by the
//! 128-bit FNV-1a hash of its bytes:
//!
//! ```text
//! leaf node  [kind=1] interior f64 data            (one per distinct payload)
//! index node [kind=2] count, (key, leaf hash, writer) entries (chunks of 32)
//! root node  [kind=3] step, D, writer ring, layout, params, index hash list
//! ```
//!
//! The root hash identifies the whole snapshot. Because nodes are keyed by
//! content, successive snapshots **share every unchanged node**: writing a
//! new snapshot into a [`NodeStore`] that already holds the previous one
//! costs only the blocks whose payload actually changed (plus the touched
//! index chunks and one root). Blocks with bitwise-identical data — e.g. a
//! uniform far field that a flux step leaves unchanged — collapse to a
//! single leaf node even within one snapshot.
//!
//! Leaf payloads deliberately exclude the block key (AMReX-style
//! metadata/payload split): the key lives in the index entries, so moving
//! a block between ranks or re-snapshotting an unchanged grid never
//! rewrites payload bytes. The `writer` slot recorded per entry and the
//! root's writer ring exist for the peer-recovery protocol in
//! `ablock-par`: a restarting rank resolves which surviving store should
//! hold each missing node (the writer, else its ring successor — the
//! replication buddy) without any global metadata service.
//!
//! Like the v2 checkpoint format, every decode path returns
//! [`io::ErrorKind::InvalidData`] on malformed input — truncation, bit
//! flips, hash mismatches, duplicate keys, dangling node references —
//! and never panics. The at-rest framing (`write_archive` / version-3
//! [`crate::checkpoint::load_grid`] streams) reuses the checksummed
//! section frames of the v2 format.

use std::collections::{BTreeSet, HashMap};
use std::io::{self, Read, Write};

use ablock_core::grid::BlockGrid;
use ablock_core::index::IVec;
use ablock_core::key::BlockKey;

use crate::checkpoint::{
    bad, encode_layout, encode_params, expect_drained, parse_layout, parse_params, r_i64, r_u32,
    r_u64, read_section, rebuild_topology, validate_key, w_i64, w_u32, w_u64, write_section,
    MAGIC, MAX_SECTION, VERSION_SNAPSHOT,
};

/// Node kind tags (first byte of every node).
const KIND_LEAF: u8 = 1;
const KIND_INDEX: u8 = 2;
const KIND_ROOT: u8 = 3;

/// Index entries per index node: small enough that a localized adapt
/// touches few chunks, large enough that the manifest stays shallow.
pub const INDEX_CHUNK: usize = 32;

const SEC_NODES: &[u8; 4] = b"NODE";
const SEC_ROOT: &[u8; 4] = b"SROT";

/// 128-bit content address of a node (FNV-1a over the node bytes).
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeHash(pub [u8; 16]);

impl NodeHash {
    /// The two little-endian 64-bit words of the hash (low, high) — the
    /// transport representation used by the peer-fetch protocol.
    pub fn to_words(self) -> [u64; 2] {
        let lo = u64::from_le_bytes(self.0[..8].try_into().expect("8 bytes"));
        let hi = u64::from_le_bytes(self.0[8..].try_into().expect("8 bytes"));
        [lo, hi]
    }

    /// Rebuild a hash from its [`NodeHash::to_words`] representation.
    pub fn from_words(w: [u64; 2]) -> Self {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&w[0].to_le_bytes());
        b[8..].copy_from_slice(&w[1].to_le_bytes());
        NodeHash(b)
    }
}

impl std::fmt::Debug for NodeHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in self.0.iter().rev() {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// FNV-1a 128-bit over raw bytes: the content address of a node. The 1997
/// vintage would have used a checksum this cheap too — collision
/// resistance here guards against accidents, not adversaries, matching
/// the paper's single-tenant checkpoint setting.
pub fn content_hash(bytes: &[u8]) -> NodeHash {
    let mut h: u128 = 0x6c62272e07bb014262b821756295c58d;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(0x0000000001000000000000000000013b);
    }
    NodeHash(h.to_le_bytes())
}

/// An append-only store of content-addressed nodes.
///
/// Inserting bytes that are already present is free (the dedup hit that
/// makes every-step snapshot cadence affordable); nothing is ever
/// overwritten, so a hash uniquely names its bytes for the lifetime of
/// the store.
#[derive(Debug, Default, Clone)]
pub struct NodeStore {
    nodes: HashMap<NodeHash, Vec<u8>>,
    total_bytes: u64,
}

impl NodeStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct nodes held.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the store holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total bytes of all distinct nodes held.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// True when a node with this address is present.
    pub fn contains(&self, hash: NodeHash) -> bool {
        self.nodes.contains_key(&hash)
    }

    /// The bytes of a node, if present.
    pub fn get(&self, hash: NodeHash) -> Option<&[u8]> {
        self.nodes.get(&hash).map(|v| v.as_slice())
    }

    /// Insert a node, returning its address and whether it was new
    /// (`false` = dedup hit, the bytes were dropped).
    pub fn insert(&mut self, bytes: Vec<u8>) -> (NodeHash, bool) {
        let hash = content_hash(&bytes);
        let new = !self.nodes.contains_key(&hash);
        if new {
            self.total_bytes += bytes.len() as u64;
            self.nodes.insert(hash, bytes);
        }
        (hash, new)
    }

    /// Insert a node that claims address `expect` (e.g. received from a
    /// peer or read from an archive), verifying the claim. Returns
    /// whether the node was new; a content mismatch is `InvalidData` and
    /// the store is left untouched.
    pub fn insert_verified(&mut self, expect: NodeHash, bytes: Vec<u8>) -> io::Result<bool> {
        let actual = content_hash(&bytes);
        if actual != expect {
            return Err(bad(format!(
                "node hash mismatch: claimed {expect:?}, content is {actual:?}"
            )));
        }
        Ok(self.insert(bytes).1)
    }
}

/// What writing one snapshot into a store cost (and saved).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Content address of the snapshot root (identifies the snapshot).
    pub root: NodeHash,
    /// Nodes actually added to the store.
    pub nodes_new: u64,
    /// Nodes already present (dedup hits).
    pub nodes_shared: u64,
    /// Bytes actually added to the store.
    pub bytes_new: u64,
    /// Bytes of dedup hits (what a non-incremental write would have cost
    /// for the same nodes).
    pub bytes_shared: u64,
}

impl SnapshotStats {
    fn tally(&mut self, new: bool, len: usize) {
        if new {
            self.nodes_new += 1;
            self.bytes_new += len as u64;
        } else {
            self.nodes_shared += 1;
            self.bytes_shared += len as u64;
        }
    }
}

// ---- leaf nodes ---------------------------------------------------------

/// Encode a leaf node from a block's interior values.
pub fn encode_leaf(values: &[f64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(1 + 8 * values.len());
    bytes.push(KIND_LEAF);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

/// Decode a leaf node into interior values, checking kind and length
/// (`expect_values` = interior cells × nvar).
pub fn decode_leaf(bytes: &[u8], expect_values: usize) -> io::Result<Vec<f64>> {
    if bytes.first() != Some(&KIND_LEAF) {
        return Err(bad("node is not a leaf node"));
    }
    let body = &bytes[1..];
    if body.len() != 8 * expect_values {
        return Err(bad(format!(
            "leaf node holds {} byte(s), expected {} values",
            body.len(),
            expect_values
        )));
    }
    let mut out = Vec::with_capacity(expect_values);
    for c in body.chunks_exact(8) {
        out.push(f64::from_le_bytes(c.try_into().expect("8-byte chunk")));
    }
    Ok(out)
}

/// A block's interior values in canonical (interior box, vars innermost)
/// order — the exact payload [`encode_leaf`] hashes.
pub fn leaf_values<const D: usize>(grid: &BlockGrid<D>, key: BlockKey<D>) -> io::Result<Vec<f64>> {
    let id = grid
        .find(key)
        .ok_or_else(|| bad(format!("grid inconsistent: leaf {key:?} has no block")))?;
    let f = grid.block(id).field();
    let mut out = Vec::with_capacity(f.shape().interior_cells() * f.shape().nvar);
    for c in f.shape().interior_box().iter() {
        // cell gather keeps the hashed payload cell-major (vars innermost)
        out.extend_from_slice(&f.cell(c));
    }
    Ok(out)
}

/// Pour decoded leaf values back into a block's interior.
pub fn pour_leaf<const D: usize>(
    grid: &mut BlockGrid<D>,
    key: BlockKey<D>,
    values: &[f64],
) -> io::Result<()> {
    let id = grid.find(key).ok_or_else(|| bad(format!("leaf {key:?} not in grid")))?;
    let field = grid.block_mut(id).field_mut();
    let nvar = field.shape().nvar;
    if values.len() != field.shape().interior_cells() * nvar {
        return Err(bad(format!("leaf {key:?}: wrong payload size {}", values.len())));
    }
    let mut off = 0;
    for c in field.shape().interior_box().iter() {
        field.set_cell(c, &values[off..off + nvar]);
        off += nvar;
    }
    Ok(())
}

// ---- manifest (index + root nodes) --------------------------------------

/// One block's entry in a snapshot manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestEntry<const D: usize> {
    /// The block key.
    pub key: BlockKey<D>,
    /// Content address of the block's leaf node.
    pub hash: NodeHash,
    /// Writer slot that produced the payload at snapshot time (0 for
    /// serial snapshots; a rank-durable slot id in `ablock-par`).
    pub writer: u32,
}

/// A decoded snapshot manifest: everything except the leaf payloads.
#[derive(Debug, Clone)]
pub struct Manifest<const D: usize> {
    /// Step counter recorded at snapshot time.
    pub step: u64,
    /// Root layout of the snapshotted grid.
    pub layout: ablock_core::layout::RootLayout<D>,
    /// Grid parameters of the snapshotted grid.
    pub params: ablock_core::grid::GridParams<D>,
    /// Writer slots in ring order at snapshot time: the replication buddy
    /// of slot `ring[i]` is `ring[(i+1) % len]`.
    pub writer_ring: Vec<u32>,
    /// Per-block entries, strictly sorted by key.
    pub entries: Vec<ManifestEntry<D>>,
}

impl<const D: usize> Manifest<D> {
    /// Interior values per leaf payload (cells × nvar).
    pub fn values_per_leaf(&self) -> usize {
        self.params.field_shape().interior_cells() * self.params.nvar
    }

    /// Rebuild the grid topology this manifest describes (all field data
    /// zero; pour leaves afterwards).
    pub fn build_topology(&self) -> io::Result<BlockGrid<D>> {
        let targets: BTreeSet<BlockKey<D>> = self.entries.iter().map(|e| e.key).collect();
        rebuild_topology(self.layout.clone(), self.params, &targets)
    }
}

/// Build and store the manifest (index + root nodes) for a snapshot whose
/// leaf nodes are already in `store`. `entries` may arrive in any order;
/// duplicate keys are `InvalidData`. Returns the root address and the
/// write stats for the manifest nodes only.
pub fn build_manifest<const D: usize>(
    store: &mut NodeStore,
    layout: &ablock_core::layout::RootLayout<D>,
    params: &ablock_core::grid::GridParams<D>,
    step: u64,
    writer_ring: &[u32],
    entries: &[(BlockKey<D>, NodeHash, u32)],
) -> io::Result<SnapshotStats> {
    let mut sorted: Vec<&(BlockKey<D>, NodeHash, u32)> = entries.iter().collect();
    sorted.sort_by_key(|e| e.0);
    for pair in sorted.windows(2) {
        if pair[0].0 == pair[1].0 {
            return Err(bad(format!("duplicate leaf key {:?}", pair[0].0)));
        }
    }
    let mut stats = SnapshotStats::default();
    let mut index_hashes: Vec<NodeHash> = Vec::new();
    for chunk in sorted.chunks(INDEX_CHUNK) {
        let mut bytes = Vec::with_capacity(1 + 4 + chunk.len() * (1 + 8 * D + 16 + 4));
        bytes.push(KIND_INDEX);
        w_u32(&mut bytes, chunk.len() as u32)?;
        for (key, hash, writer) in chunk {
            bytes.push(key.level);
            for d in 0..D {
                w_i64(&mut bytes, key.coords[d])?;
            }
            bytes.extend_from_slice(&hash.0);
            w_u32(&mut bytes, *writer)?;
        }
        let len = bytes.len();
        let (h, new) = store.insert(bytes);
        stats.tally(new, len);
        index_hashes.push(h);
    }

    let mut root = Vec::new();
    root.push(KIND_ROOT);
    w_u64(&mut root, step)?;
    w_u32(&mut root, D as u32)?;
    w_u32(&mut root, writer_ring.len() as u32)?;
    for &s in writer_ring {
        w_u32(&mut root, s)?;
    }
    let mut sec = Vec::new();
    encode_layout(&mut sec, layout)?;
    w_u64(&mut root, sec.len() as u64)?;
    root.extend_from_slice(&sec);
    sec.clear();
    encode_params(&mut sec, params)?;
    w_u64(&mut root, sec.len() as u64)?;
    root.extend_from_slice(&sec);
    w_u64(&mut root, sorted.len() as u64)?;
    w_u32(&mut root, index_hashes.len() as u32)?;
    for h in &index_hashes {
        root.extend_from_slice(&h.0);
    }
    let len = root.len();
    let (h, new) = store.insert(root);
    stats.tally(new, len);
    stats.root = h;
    Ok(stats)
}

/// Write one full snapshot of `grid` into `store` (leaf nodes + manifest)
/// and return the root address with dedup stats. Incremental by
/// construction: against a store holding the previous snapshot, only
/// changed payloads and touched manifest chunks count as new bytes.
pub fn write_snapshot<const D: usize>(
    store: &mut NodeStore,
    grid: &BlockGrid<D>,
    step: u64,
) -> io::Result<SnapshotStats> {
    let mut keys: Vec<BlockKey<D>> = grid.blocks().map(|(_, n)| n.key()).collect();
    keys.sort();
    let mut stats = SnapshotStats::default();
    let mut entries: Vec<(BlockKey<D>, NodeHash, u32)> = Vec::with_capacity(keys.len());
    for key in keys {
        let bytes = encode_leaf(&leaf_values(grid, key)?);
        let len = bytes.len();
        let (h, new) = store.insert(bytes);
        stats.tally(new, len);
        entries.push((key, h, 0));
    }
    let m = build_manifest(store, grid.layout(), grid.params(), step, &[0], &entries)?;
    stats.nodes_new += m.nodes_new;
    stats.nodes_shared += m.nodes_shared;
    stats.bytes_new += m.bytes_new;
    stats.bytes_shared += m.bytes_shared;
    stats.root = m.root;
    Ok(stats)
}

fn take<'a>(r: &mut &'a [u8], n: usize, what: &str) -> io::Result<&'a [u8]> {
    if r.len() < n {
        return Err(bad(format!("{what} extends past node end")));
    }
    let (head, rest) = r.split_at(n);
    *r = rest;
    Ok(head)
}

fn r_hash(r: &mut &[u8], what: &str) -> io::Result<NodeHash> {
    let b = take(r, 16, what)?;
    Ok(NodeHash(b.try_into().expect("16 bytes")))
}

/// Decode the manifest under `root`, fully validated: kind tags, `D`,
/// layout/params sanity, strictly-sorted unique keys, in-domain keys.
/// A referenced node missing from `store` is a **dangling node
/// reference** (`InvalidData`).
pub fn read_manifest<const D: usize>(store: &NodeStore, root: NodeHash) -> io::Result<Manifest<D>> {
    let bytes = store
        .get(root)
        .ok_or_else(|| bad(format!("dangling node reference: root {root:?}")))?;
    let mut r = bytes;
    if take(&mut r, 1, "root kind")?[0] != KIND_ROOT {
        return Err(bad("root hash does not name a root node"));
    }
    let step = r_u64(&mut r)?;
    let dims = r_u32(&mut r)? as usize;
    if dims != D {
        return Err(bad(format!("snapshot is {dims}-D, expected {D}-D")));
    }
    let ring_len = r_u32(&mut r)? as usize;
    if ring_len == 0 || ring_len > 1 << 16 {
        return Err(bad(format!("writer ring length {ring_len} out of range")));
    }
    let mut writer_ring = Vec::with_capacity(ring_len);
    for _ in 0..ring_len {
        writer_ring.push(r_u32(&mut r)?);
    }
    let layout_len = r_u64(&mut r)?;
    if layout_len > MAX_SECTION {
        return Err(bad("layout length exceeds cap"));
    }
    let layout = parse_layout::<D>(take(&mut r, layout_len as usize, "layout")?)?;
    let params_len = r_u64(&mut r)?;
    if params_len > MAX_SECTION {
        return Err(bad("params length exceeds cap"));
    }
    let params = parse_params::<D>(take(&mut r, params_len as usize, "params")?)?;
    let nleaves = r_u64(&mut r)? as usize;
    if nleaves as u64 > MAX_SECTION {
        return Err(bad(format!("leaf count {nleaves} exceeds cap")));
    }
    let nindex = r_u32(&mut r)? as usize;
    if nindex != nleaves.div_ceil(INDEX_CHUNK) {
        return Err(bad(format!(
            "index chunk count {nindex} inconsistent with {nleaves} leaves"
        )));
    }
    let mut index_hashes = Vec::with_capacity(nindex);
    for _ in 0..nindex {
        index_hashes.push(r_hash(&mut r, "index hash")?);
    }
    expect_drained(r, SEC_ROOT)?;

    let mut entries: Vec<ManifestEntry<D>> = Vec::with_capacity(nleaves);
    for ih in &index_hashes {
        let bytes = store
            .get(*ih)
            .ok_or_else(|| bad(format!("dangling node reference: index {ih:?}")))?;
        let mut r = bytes;
        if take(&mut r, 1, "index kind")?[0] != KIND_INDEX {
            return Err(bad("index hash does not name an index node"));
        }
        let count = r_u32(&mut r)? as usize;
        if count == 0 || count > INDEX_CHUNK {
            return Err(bad(format!("index chunk entry count {count} out of range")));
        }
        for _ in 0..count {
            let level = take(&mut r, 1, "entry level")?[0];
            let mut coords: IVec<D> = [0; D];
            for x in coords.iter_mut() {
                *x = r_i64(&mut r)?;
            }
            let key = BlockKey::new(level, coords);
            validate_key(key, &layout, params.max_level)?;
            let hash = r_hash(&mut r, "entry hash")?;
            let writer = r_u32(&mut r)?;
            if let Some(prev) = entries.last() {
                if prev.key == key {
                    return Err(bad(format!("duplicate leaf key {key:?}")));
                }
                if prev.key > key {
                    return Err(bad(format!("manifest keys out of order at {key:?}")));
                }
            }
            entries.push(ManifestEntry { key, hash, writer });
        }
        expect_drained(r, SEC_NODES)?;
    }
    if entries.len() != nleaves {
        return Err(bad(format!(
            "manifest holds {} entries, root claims {nleaves}",
            entries.len()
        )));
    }
    Ok(Manifest { step, layout, params, writer_ring, entries })
}

/// Reconstruct the full grid under a snapshot root. Ghosts are zero;
/// refill with a ghost exchange before stepping.
pub fn materialize<const D: usize>(store: &NodeStore, root: NodeHash) -> io::Result<BlockGrid<D>> {
    let manifest = read_manifest::<D>(store, root)?;
    let mut grid = manifest.build_topology()?;
    let per_leaf = manifest.values_per_leaf();
    for e in &manifest.entries {
        let bytes = store
            .get(e.hash)
            .ok_or_else(|| bad(format!("dangling node reference: leaf {:?} for {:?}", e.hash, e.key)))?;
        pour_leaf(&mut grid, e.key, &decode_leaf(bytes, per_leaf)?)?;
    }
    Ok(grid)
}

// ---- at-rest archive (checkpoint format v3) ------------------------------

/// The reachable closure of a snapshot root in deterministic order: root,
/// index nodes, then leaf nodes (each distinct node once).
fn reachable<const D: usize>(store: &NodeStore, root: NodeHash) -> io::Result<Vec<NodeHash>> {
    let manifest = read_manifest::<D>(store, root)?;
    // re-derive the index hashes exactly as the root records them
    let root_bytes = store.get(root).expect("read_manifest verified presence");
    let mut order = vec![root];
    let mut seen: BTreeSet<NodeHash> = BTreeSet::new();
    seen.insert(root);
    // index hashes sit at the tail of the root node
    let nindex = manifest.entries.len().div_ceil(INDEX_CHUNK);
    let tail = &root_bytes[root_bytes.len() - 16 * nindex..];
    for c in tail.chunks_exact(16) {
        let h = NodeHash(c.try_into().expect("16 bytes"));
        if seen.insert(h) {
            order.push(h);
        }
    }
    for e in &manifest.entries {
        if seen.insert(e.hash) {
            order.push(e.hash);
        }
    }
    Ok(order)
}

/// Serialize the snapshot under `root` as a self-contained version-3
/// checkpoint stream (readable by [`crate::checkpoint::load_grid`] and
/// [`read_archive`]). Only nodes reachable from `root` are written, each
/// once — the at-rest dedup mirrors the in-store dedup.
pub fn write_archive<const D: usize>(
    w: &mut impl Write,
    store: &NodeStore,
    root: NodeHash,
) -> io::Result<()> {
    let order = reachable::<D>(store, root)?;
    w.write_all(MAGIC)?;
    w_u32(w, VERSION_SNAPSHOT)?;
    w_u32(w, D as u32)?;
    let mut sec = Vec::new();
    w_u64(&mut sec, order.len() as u64)?;
    for h in &order {
        let bytes = store
            .get(*h)
            .ok_or_else(|| bad(format!("dangling node reference: {h:?}")))?;
        sec.extend_from_slice(&h.0);
        w_u64(&mut sec, bytes.len() as u64)?;
        sec.extend_from_slice(bytes);
    }
    write_section(w, SEC_NODES, &sec)?;
    write_section(w, SEC_ROOT, &root.0)
}

/// Read a version-3 archive into a fresh store, verifying every node's
/// content hash. Returns the store and the snapshot root.
pub fn read_archive<const D: usize>(r: &mut impl Read) -> io::Result<(NodeStore, NodeHash)> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(eof_is_bad)?;
    if &magic != MAGIC {
        return Err(bad("bad magic"));
    }
    let version = r_u32(r).map_err(eof_is_bad)?;
    if version != VERSION_SNAPSHOT {
        return Err(bad(format!("not a snapshot archive (version {version})")));
    }
    let dims = r_u32(r).map_err(eof_is_bad)? as usize;
    if dims != D {
        return Err(bad(format!("archive is {dims}-D, expected {D}-D")));
    }
    read_archive_store(r).map_err(eof_is_bad)
}

fn eof_is_bad(e: io::Error) -> io::Error {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        bad(format!("truncated archive: {e}"))
    } else {
        e
    }
}

fn read_archive_store(r: &mut impl Read) -> io::Result<(NodeStore, NodeHash)> {
    let sec = read_section(r, SEC_NODES)?;
    let mut nr = sec.as_slice();
    let count = r_u64(&mut nr)?;
    let mut store = NodeStore::new();
    for _ in 0..count {
        let hash = r_hash(&mut nr, "node hash")?;
        let len = r_u64(&mut nr)?;
        if len > MAX_SECTION {
            return Err(bad(format!("node length {len} exceeds cap {MAX_SECTION}")));
        }
        let bytes = take(&mut nr, len as usize, "node bytes")?;
        store.insert_verified(hash, bytes.to_vec())?;
    }
    expect_drained(nr, SEC_NODES)?;
    let rsec = read_section(r, SEC_ROOT)?;
    if rsec.len() != 16 {
        return Err(bad(format!("root section holds {} byte(s), expected 16", rsec.len())));
    }
    let root = NodeHash(rsec.try_into().expect("16 bytes"));
    Ok((store, root))
}

/// Version-3 body of [`crate::checkpoint::load_grid`]: called after the
/// shared `magic | version | D` header has been consumed and checked.
pub(crate) fn read_archive_body<const D: usize>(r: &mut impl Read) -> io::Result<BlockGrid<D>> {
    let (store, root) = read_archive_store(r)?;
    materialize(&store, root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ablock_core::balance::refine_ball_to_level;
    use ablock_core::grid::{GridParams, Transfer};
    use ablock_core::layout::{Boundary, RootLayout};
    use ablock_core::verify;

    fn sample_grid() -> BlockGrid<2> {
        let mut g = BlockGrid::new(
            RootLayout::unit([2, 2], Boundary::Periodic),
            GridParams::new([4, 4], 2, 3, 3),
        );
        refine_ball_to_level(&mut g, [0.3, 0.6], 0.15, 2, Transfer::None);
        let lay = g.layout().clone();
        let m = g.params().block_dims;
        for id in g.block_ids() {
            let key = g.block(id).key();
            g.block_mut(id).field_mut().for_each_interior(|c, u| {
                let x = lay.cell_center(key, m, c);
                u[0] = x[0] * 3.0 + x[1];
                u[1] = (x[0] * x[1]).sin();
                u[2] = key.level as f64;
            });
        }
        g
    }

    fn grids_equal(a: &BlockGrid<2>, b: &BlockGrid<2>) {
        assert_eq!(a.num_blocks(), b.num_blocks());
        for (_, n) in a.blocks() {
            let id = b.find(n.key()).expect("key present");
            let f = b.block(id).field();
            for c in n.field().shape().interior_box().iter() {
                assert_eq!(n.field().cell(c), f.cell(c), "block {:?} cell {c:?}", n.key());
            }
        }
    }

    #[test]
    fn hash_distinguishes_and_is_stable() {
        let a = content_hash(b"hello");
        assert_eq!(a, content_hash(b"hello"));
        assert_ne!(a, content_hash(b"hellp"));
        assert_ne!(content_hash(b""), content_hash(b"\0"));
        assert_eq!(NodeHash::from_words(a.to_words()), a);
    }

    #[test]
    fn snapshot_roundtrip_exact() {
        let g = sample_grid();
        let mut store = NodeStore::new();
        let stats = write_snapshot(&mut store, &g, 7).unwrap();
        assert_eq!(stats.nodes_shared, 0, "fresh store has nothing to share");
        let g2: BlockGrid<2> = materialize(&store, stats.root).unwrap();
        verify::check_grid(&g2).unwrap();
        grids_equal(&g, &g2);
        let m = read_manifest::<2>(&store, stats.root).unwrap();
        assert_eq!(m.step, 7);
        assert_eq!(m.entries.len(), g.num_blocks());
        assert_eq!(m.writer_ring, vec![0]);
    }

    #[test]
    fn unchanged_grid_resnapshot_is_all_dedup() {
        let g = sample_grid();
        let mut store = NodeStore::new();
        let s1 = write_snapshot(&mut store, &g, 0).unwrap();
        let nodes_before = store.len();
        let s2 = write_snapshot(&mut store, &g, 0).unwrap();
        assert_eq!(s2.root, s1.root, "same content, same root");
        assert_eq!(s2.nodes_new, 0, "nothing new to write");
        assert_eq!(store.len(), nodes_before);
        // a different step changes only the root node
        let s3 = write_snapshot(&mut store, &g, 1).unwrap();
        assert_ne!(s3.root, s1.root);
        assert_eq!(s3.nodes_new, 1, "only the root differs");
    }

    #[test]
    fn single_block_change_writes_only_the_delta() {
        let mut g = sample_grid();
        let mut store = NodeStore::new();
        let s1 = write_snapshot(&mut store, &g, 0).unwrap();
        let id = g.block_ids()[0];
        g.block_mut(id).field_mut().for_each_interior(|_, u| u[0] += 1.0);
        let s2 = write_snapshot(&mut store, &g, 1).unwrap();
        // one new leaf, the index chunk holding it, and the root
        assert_eq!(s2.nodes_new, 3, "delta must be leaf + chunk + root");
        assert!(s2.bytes_new < s1.bytes_new / 4, "{} vs {}", s2.bytes_new, s1.bytes_new);
        grids_equal(&g, &materialize(&store, s2.root).unwrap());
        // the old snapshot is still intact in the same store
        let old: BlockGrid<2> = materialize(&store, s1.root).unwrap();
        assert_eq!(old.num_blocks(), g.num_blocks());
    }

    #[test]
    fn identical_payloads_share_one_leaf_node() {
        // all-uniform grid: every block has bitwise-identical payload
        let mut g = BlockGrid::new(
            RootLayout::unit([4, 4], Boundary::Periodic),
            GridParams::new([4, 4], 2, 3, 2),
        );
        for id in g.block_ids() {
            g.block_mut(id).field_mut().for_each_interior(|_, u| u.fill(1.25));
        }
        let mut store = NodeStore::new();
        let stats = write_snapshot(&mut store, &g, 0).unwrap();
        // 16 blocks -> 1 shared leaf node + 1 index chunk + 1 root
        assert_eq!(stats.nodes_new, 3, "uniform payloads must collapse");
        assert_eq!(stats.nodes_shared, 15);
        grids_equal(&g, &materialize(&store, stats.root).unwrap());
    }

    #[test]
    fn archive_roundtrip_via_load_grid() {
        let g = sample_grid();
        let mut store = NodeStore::new();
        let stats = write_snapshot(&mut store, &g, 3).unwrap();
        let mut buf = Vec::new();
        write_archive::<2>(&mut buf, &store, stats.root).unwrap();
        // generic loader dispatches on the version field
        let g2: BlockGrid<2> = crate::checkpoint::load_grid(&mut buf.as_slice()).unwrap();
        verify::check_grid(&g2).unwrap();
        grids_equal(&g, &g2);
        // dedicated reader exposes the store and root
        let (store2, root2) = read_archive::<2>(&mut buf.as_slice()).unwrap();
        assert_eq!(root2, stats.root);
        assert_eq!(store2.len(), store.len());
    }

    #[test]
    fn archive_excludes_unreachable_nodes() {
        let mut g = sample_grid();
        let mut store = NodeStore::new();
        let s1 = write_snapshot(&mut store, &g, 0).unwrap();
        let id = g.block_ids()[0];
        g.block_mut(id).field_mut().for_each_interior(|_, u| u[0] = -9.0);
        let s2 = write_snapshot(&mut store, &g, 1).unwrap();
        let mut buf = Vec::new();
        write_archive::<2>(&mut buf, &store, s2.root).unwrap();
        let (store2, _) = read_archive::<2>(&mut buf.as_slice()).unwrap();
        assert!(store2.len() < store.len(), "old-delta nodes must not be archived");
        assert!(!store2.contains(s1.root));
    }

    #[test]
    fn missing_leaf_node_is_dangling_reference() {
        let g = sample_grid();
        let mut store = NodeStore::new();
        let stats = write_snapshot(&mut store, &g, 0).unwrap();
        let manifest = read_manifest::<2>(&store, stats.root).unwrap();
        let victim = manifest.entries[0].hash;
        store.nodes.remove(&victim);
        let err = match materialize::<2>(&store, stats.root) {
            Err(e) => e,
            Ok(_) => panic!("materialize must fail on a missing leaf node"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("dangling node reference"), "{err}");
    }

    #[test]
    fn missing_root_and_index_are_dangling_references() {
        let g = sample_grid();
        let mut store = NodeStore::new();
        let stats = write_snapshot(&mut store, &g, 0).unwrap();
        let err = read_manifest::<2>(&NodeStore::new(), stats.root).unwrap_err();
        assert!(err.to_string().contains("root"), "{err}");
        // drop an index node
        let root_bytes = store.get(stats.root).unwrap().to_vec();
        let tail = NodeHash(root_bytes[root_bytes.len() - 16..].try_into().unwrap());
        store.nodes.remove(&tail);
        let err = read_manifest::<2>(&store, stats.root).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("dangling node reference: index"), "{err}");
    }

    #[test]
    fn duplicate_key_rejected_in_manifest_build() {
        let g = sample_grid();
        let mut store = NodeStore::new();
        let key = g.blocks().next().unwrap().1.key();
        let h = store.insert(encode_leaf(&leaf_values(&g, key).unwrap())).0;
        let entries = vec![(key, h, 0), (key, h, 0)];
        let err =
            build_manifest(&mut store, g.layout(), g.params(), 0, &[0], &entries).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("duplicate leaf key"), "{err}");
    }

    #[test]
    fn corrupt_node_claim_rejected() {
        let mut store = NodeStore::new();
        let (h, _) = store.insert(encode_leaf(&[1.0, 2.0]));
        let err = store.insert_verified(h, encode_leaf(&[1.0, 3.0])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("hash mismatch"), "{err}");
    }

    #[test]
    fn wrong_dimension_archive_rejected() {
        let g = sample_grid();
        let mut store = NodeStore::new();
        let stats = write_snapshot(&mut store, &g, 0).unwrap();
        let mut buf = Vec::new();
        write_archive::<2>(&mut buf, &store, stats.root).unwrap();
        assert!(crate::checkpoint::load_grid::<3>(&mut buf.as_slice()).is_err());
        assert!(read_archive::<3>(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn leaf_decode_validates_kind_and_size() {
        let bytes = encode_leaf(&[1.0, 2.0, 3.0]);
        assert_eq!(decode_leaf(&bytes, 3).unwrap(), vec![1.0, 2.0, 3.0]);
        assert!(decode_leaf(&bytes, 4).is_err());
        let mut wrong_kind = bytes.clone();
        wrong_kind[0] = KIND_INDEX;
        assert!(decode_leaf(&wrong_kind, 3).is_err());
        assert!(decode_leaf(&[], 0).is_err());
    }
}

//! Checkpoint / restart: serialize a block grid (topology + fields) to a
//! compact binary stream and reconstruct it exactly.
//!
//! Production AMR runs live and die by restart files; this is the
//! no-dependencies version. Format (little-endian):
//!
//! ```text
//! magic "ABLK" | version u32 | D u32
//! layout: roots, origin, size, boundaries[6], hole_bc, mask bitmap
//! params: block_dims, nghost, nvar, max_level, max_level_jump, pad
//! leaf count u64, then per leaf (sorted by key):
//!   level u8, coords i64 x D, interior cell data f64 x (cells*nvar)
//! ```
//!
//! Ghost cells are *not* stored — they are derived state; callers refill
//! after loading. Reconstruction refines the fresh root grid level by
//! level toward the saved leaf set, which preserves the jump invariant at
//! every intermediate step (any level-truncation of a legal grid is
//! legal).

use std::collections::BTreeSet;
use std::io::{self, Read, Write};

use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::index::IVec;
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};

const MAGIC: &[u8; 4] = b"ABLK";
const VERSION: u32 = 1;

fn w_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_i64(w: &mut impl Write, v: i64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn r_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn r_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn r_i64(r: &mut impl Read) -> io::Result<i64> {
    let mut b = [0; 8];
    r.read_exact(&mut b)?;
    Ok(i64::from_le_bytes(b))
}
fn r_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn encode_bc(bc: Boundary) -> u32 {
    match bc {
        Boundary::Periodic => 0,
        Boundary::Outflow => 1,
        Boundary::Reflect => 2,
        Boundary::Custom(tag) => 3 | ((tag as u32) << 16),
    }
}

fn decode_bc(v: u32) -> io::Result<Boundary> {
    Ok(match v & 0xFFFF {
        0 => Boundary::Periodic,
        1 => Boundary::Outflow,
        2 => Boundary::Reflect,
        3 => Boundary::Custom((v >> 16) as u16),
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown boundary code {other}"),
            ))
        }
    })
}

/// Serialize the grid (layout, params, leaf keys, interior fields).
pub fn save_grid<const D: usize>(w: &mut impl Write, grid: &BlockGrid<D>) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w_u32(w, VERSION)?;
    w_u32(w, D as u32)?;
    let layout = grid.layout();
    for d in 0..D {
        w_i64(w, layout.roots[d])?;
    }
    for d in 0..D {
        w_f64(w, layout.origin[d])?;
    }
    for d in 0..D {
        w_f64(w, layout.size[d])?;
    }
    for b in layout.boundaries.iter() {
        w_u32(w, encode_bc(*b))?;
    }
    w_u32(w, encode_bc(layout.hole_boundary))?;
    match &layout.mask {
        None => w_u32(w, 0)?,
        Some(m) => {
            w_u32(w, 1)?;
            w_u64(w, m.len() as u64)?;
            for &a in m {
                w.write_all(&[a as u8])?;
            }
        }
    }
    let p = grid.params();
    for d in 0..D {
        w_i64(w, p.block_dims[d])?;
    }
    w_i64(w, p.nghost)?;
    w_u64(w, p.nvar as u64)?;
    w_u32(w, p.max_level as u32)?;
    w_u32(w, p.max_level_jump as u32)?;
    w_i64(w, p.pad)?;

    let mut leaves: Vec<BlockKey<D>> = grid.blocks().map(|(_, n)| n.key()).collect();
    leaves.sort();
    w_u64(w, leaves.len() as u64)?;
    for key in leaves {
        w.write_all(&[key.level])?;
        for d in 0..D {
            w_i64(w, key.coords[d])?;
        }
        let id = grid.find(key).expect("leaf listed");
        let f = grid.block(id).field();
        for c in f.shape().interior_box().iter() {
            for &v in f.cell(c) {
                w_f64(w, v)?;
            }
        }
    }
    Ok(())
}

/// Deserialize a grid saved with [`save_grid`]. Ghosts are zero; refill
/// with a ghost exchange before stepping.
pub fn load_grid<const D: usize>(r: &mut impl Read) -> io::Result<BlockGrid<D>> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = r_u32(r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {version}"),
        ));
    }
    let dims = r_u32(r)? as usize;
    if dims != D {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("checkpoint is {dims}-D, expected {D}-D"),
        ));
    }
    let mut roots: IVec<D> = [0; D];
    for x in roots.iter_mut() {
        *x = r_i64(r)?;
    }
    let mut origin = [0.0; D];
    for x in origin.iter_mut() {
        *x = r_f64(r)?;
    }
    let mut size = [0.0; D];
    for x in size.iter_mut() {
        *x = r_f64(r)?;
    }
    let mut boundaries = [Boundary::Outflow; 6];
    for b in boundaries.iter_mut() {
        *b = decode_bc(r_u32(r)?)?;
    }
    let hole = decode_bc(r_u32(r)?)?;
    let mut layout = RootLayout::new(roots, origin, size, boundaries);
    layout.hole_boundary = hole;
    if r_u32(r)? == 1 {
        let n = r_u64(r)? as usize;
        let mut mask = vec![false; n];
        for m in mask.iter_mut() {
            let mut b = [0u8; 1];
            r.read_exact(&mut b)?;
            *m = b[0] != 0;
        }
        layout.mask = Some(mask);
    }
    let mut block_dims: IVec<D> = [0; D];
    for x in block_dims.iter_mut() {
        *x = r_i64(r)?;
    }
    let nghost = r_i64(r)?;
    let nvar = r_u64(r)? as usize;
    let max_level = r_u32(r)? as u8;
    let max_level_jump = r_u32(r)? as u8;
    let pad = r_i64(r)?;
    let params = GridParams::new(block_dims, nghost, nvar, max_level)
        .with_max_jump(max_level_jump)
        .with_pad(pad);

    // read the leaf set and data
    let nleaves = r_u64(r)? as usize;
    let cells = params.field_shape().interior_cells();
    let mut saved: Vec<(BlockKey<D>, Vec<f64>)> = Vec::with_capacity(nleaves);
    for _ in 0..nleaves {
        let mut lv = [0u8; 1];
        r.read_exact(&mut lv)?;
        let mut coords: IVec<D> = [0; D];
        for x in coords.iter_mut() {
            *x = r_i64(r)?;
        }
        let mut data = Vec::with_capacity(cells * nvar);
        for _ in 0..cells * nvar {
            data.push(r_f64(r)?);
        }
        saved.push((BlockKey::new(lv[0], coords), data));
    }

    // rebuild the topology: refine ancestors level by level
    let mut grid = BlockGrid::new(layout, params);
    let targets: BTreeSet<BlockKey<D>> = saved.iter().map(|(k, _)| *k).collect();
    let mut to_split: Vec<BTreeSet<BlockKey<D>>> = vec![BTreeSet::new(); max_level as usize + 1];
    for key in &targets {
        let mut k = *key;
        while let Some(p) = k.parent() {
            to_split[p.level as usize].insert(p);
            k = p;
        }
    }
    for level in 0..=max_level as usize {
        let keys: Vec<BlockKey<D>> = to_split[level].iter().copied().collect();
        for key in keys {
            if let Some(id) = grid.find(key) {
                grid.refine(id, Transfer::None);
            }
        }
    }
    // pour the data back
    for (key, data) in saved {
        let id = grid.find(key).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("leaf {key:?} not rebuilt"))
        })?;
        let field = grid.block_mut(id).field_mut();
        let mut off = 0;
        let interior = field.shape().interior_box();
        for c in interior.iter() {
            field.set_cell(c, &data[off..off + nvar]);
            off += nvar;
        }
    }
    Ok(grid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ablock_core::balance::refine_ball_to_level;
    use ablock_core::verify;

    fn sample_grid() -> BlockGrid<2> {
        let layout = RootLayout::new(
            [2, 2],
            [-1.0, 0.5],
            [2.0, 1.0],
            [
                Boundary::Periodic,
                Boundary::Periodic,
                Boundary::Reflect,
                Boundary::Custom(9),
                Boundary::Outflow,
                Boundary::Outflow,
            ],
        );
        let mut g = BlockGrid::new(layout, GridParams::new([4, 4], 2, 3, 3));
        refine_ball_to_level(&mut g, [-0.4, 1.0], 0.15, 2, Transfer::None);
        let lay = g.layout().clone();
        let m = g.params().block_dims;
        for id in g.block_ids() {
            let key = g.block(id).key();
            g.block_mut(id).field_mut().for_each_interior(|c, u| {
                let x = lay.cell_center(key, m, c);
                u[0] = x[0] * 3.0 + x[1];
                u[1] = (x[0] * x[1]).sin();
                u[2] = key.level as f64;
            });
        }
        g
    }

    #[test]
    fn roundtrip_exact() {
        let g = sample_grid();
        let mut buf = Vec::new();
        save_grid(&mut buf, &g).unwrap();
        let g2: BlockGrid<2> = load_grid(&mut buf.as_slice()).unwrap();
        verify::check_grid(&g2).unwrap();
        assert_eq!(g.num_blocks(), g2.num_blocks());
        // every leaf matches key and interior data exactly
        for (_, n) in g.blocks() {
            let id2 = g2.find(n.key()).expect("key present after reload");
            let f2 = g2.block(id2).field();
            for c in n.field().shape().interior_box().iter() {
                assert_eq!(n.field().cell(c), f2.cell(c), "block {:?} cell {c:?}", n.key());
            }
        }
        // layout round-trips including the exotic boundaries
        assert_eq!(g2.layout().boundaries, g.layout().boundaries);
        assert_eq!(g2.layout().origin, g.layout().origin);
    }

    #[test]
    fn roundtrip_masked_layout() {
        let layout = RootLayout::unit([2, 2], Boundary::Outflow)
            .with_mask(|c| c != [1, 1])
            .with_hole_boundary(Boundary::Reflect);
        let mut g = BlockGrid::new(layout, GridParams::new([4, 4], 2, 1, 2));
        let id = g.block_ids()[0];
        g.refine(id, Transfer::None);
        let mut buf = Vec::new();
        save_grid(&mut buf, &g).unwrap();
        let g2: BlockGrid<2> = load_grid(&mut buf.as_slice()).unwrap();
        assert_eq!(g2.num_blocks(), g.num_blocks());
        assert_eq!(g2.layout().mask, g.layout().mask);
        assert_eq!(g2.layout().hole_boundary, Boundary::Reflect);
        verify::check_grid(&g2).unwrap();
    }

    #[test]
    fn wrong_dimension_rejected() {
        let g = sample_grid();
        let mut buf = Vec::new();
        save_grid(&mut buf, &g).unwrap();
        let err = match load_grid::<3>(&mut buf.as_slice()) {
            Err(e) => e,
            Ok(_) => panic!("3-D load of a 2-D checkpoint must fail"),
        };
        assert!(err.to_string().contains("2-D"));
    }

    #[test]
    fn corrupt_magic_rejected() {
        let buf = b"NOPE****".to_vec();
        assert!(load_grid::<2>(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let g = sample_grid();
        let mut buf = Vec::new();
        save_grid(&mut buf, &g).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_grid::<2>(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn restart_continues_physics() {
        // save mid-run, reload, continue: identical to an uninterrupted run
        use ablock_solver::euler::Euler;
        use ablock_solver::kernel::Scheme;
        use ablock_solver::stepper::Stepper;
        let e = Euler::<2>::new(1.4);
        let mut g = BlockGrid::new(
            RootLayout::unit([2, 2], Boundary::Periodic),
            GridParams::new([4, 4], 2, 4, 2),
        );
        ablock_solver::problems::advected_gaussian(&mut g, &e, [1.0, 0.0], [0.5, 0.5], 0.15);
        let mut st = Stepper::new(e.clone(), Scheme::muscl_rusanov());
        let dt = 2e-3;
        for _ in 0..3 {
            st.step_rk2(&mut g, dt, None);
        }
        // checkpoint
        let mut buf = Vec::new();
        save_grid(&mut buf, &g).unwrap();
        // continue original
        for _ in 0..3 {
            st.step_rk2(&mut g, dt, None);
        }
        // reload and continue with a fresh stepper
        let mut g2: BlockGrid<2> = load_grid(&mut buf.as_slice()).unwrap();
        let mut st2 = Stepper::new(e, Scheme::muscl_rusanov());
        for _ in 0..3 {
            st2.step_rk2(&mut g2, dt, None);
        }
        for (_, n) in g.blocks() {
            let id2 = g2.find(n.key()).unwrap();
            let f2 = g2.block(id2).field();
            for c in n.field().shape().interior_box().iter() {
                for v in 0..4 {
                    assert!(
                        (n.field().at(c, v) - f2.at(c, v)).abs() < 1e-14,
                        "restart diverged at {:?} {c:?} var {v}",
                        n.key()
                    );
                }
            }
        }
    }
}

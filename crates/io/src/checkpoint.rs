//! Checkpoint / restart: serialize a block grid (topology + fields) to a
//! compact binary stream and reconstruct it exactly.
//!
//! Production AMR runs live and die by restart files; this is the
//! no-dependencies version, and it is the foundation of the fault-recovery
//! driver in `ablock-par`, so a corrupt or truncated stream must **error,
//! never panic**. Format v2 (little-endian):
//!
//! ```text
//! magic "ABLK" | version u32 | D u32
//! section "LAYT": roots, origin, size, boundaries[6], hole_bc, mask
//! section "PRMS": block_dims, nghost, nvar, max_level, max_level_jump, pad
//! section "LEAF": leaf count u64, then per leaf (sorted by key):
//!   level u8, coords i64 x D, interior cell data f64 x (cells*nvar)
//! ```
//!
//! Each section is framed as `tag [u8;4] | len u64 | bytes | fnv1a64 u64`:
//! the checksum covers the section bytes, so any bit flip anywhere in the
//! stream is detected (a flip in the frame itself fails the tag, length
//! cap, or checksum comparison). Section lengths are capped before
//! allocation and every count in the payload is validated against the
//! framed length, so hostile streams cannot trigger huge allocations or
//! out-of-bounds indexing.
//!
//! Ghost cells are *not* stored — they are derived state; callers refill
//! after loading. Reconstruction refines the fresh root grid level by
//! level toward the saved leaf set, which preserves the jump invariant at
//! every intermediate step (any level-truncation of a legal grid is
//! legal).
//!
//! Version 3 streams carry a content-addressed node archive instead of a
//! flat leaf section (see [`crate::snapshot`]); [`load_grid`] dispatches
//! on the version field and reads both formats.

use std::collections::BTreeSet;
use std::io::{self, Read, Write};

use ablock_core::geom::Geometry;
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::index::IVec;
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};

pub(crate) const MAGIC: &[u8; 4] = b"ABLK";
const VERSION: u32 = 2;
/// Content-addressed node-archive streams (see [`crate::snapshot`]).
pub(crate) const VERSION_SNAPSHOT: u32 = 3;
/// Hard cap on a framed section length: guards allocation size when the
/// length field itself is corrupt. Far above any realistic checkpoint.
pub(crate) const MAX_SECTION: u64 = 1 << 28;

const SEC_LAYOUT: &[u8; 4] = b"LAYT";
const SEC_PARAMS: &[u8; 4] = b"PRMS";
const SEC_LEAVES: &[u8; 4] = b"LEAF";

/// Cap on the serialized geometry expression-tree depth: rejects
/// unboundedly recursive hostile input before the decoder recurses.
const MAX_GEOM_DEPTH: usize = 64;

const GT_SPHERE: u8 = 1;
const GT_HALF_SPACE: u8 = 2;
const GT_CUBOID: u8 = 3;
const GT_CYLINDER: u8 = 4;
const GT_UNION: u8 = 5;
const GT_INTERSECT: u8 = 6;
const GT_INVERT: u8 = 7;

pub(crate) fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// FNV-1a 64-bit over raw bytes (the same hash the reliable transport in
/// `ablock-par` uses for message envelopes).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

pub(crate) fn w_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
pub(crate) fn w_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
pub(crate) fn w_i64(w: &mut impl Write, v: i64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
pub(crate) fn w_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
pub(crate) fn r_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
pub(crate) fn r_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
pub(crate) fn r_i64(r: &mut impl Read) -> io::Result<i64> {
    let mut b = [0; 8];
    r.read_exact(&mut b)?;
    Ok(i64::from_le_bytes(b))
}
pub(crate) fn r_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn encode_bc(bc: Boundary) -> u32 {
    match bc {
        Boundary::Periodic => 0,
        Boundary::Outflow => 1,
        Boundary::Reflect => 2,
        Boundary::Custom(tag) => 3 | ((tag as u32) << 16),
    }
}

fn decode_bc(v: u32) -> io::Result<Boundary> {
    Ok(match v & 0xFFFF {
        0 => Boundary::Periodic,
        1 => Boundary::Outflow,
        2 => Boundary::Reflect,
        3 => Boundary::Custom((v >> 16) as u16),
        other => return Err(bad(format!("unknown boundary code {other}"))),
    })
}

/// Frame `bytes` as a checksummed section.
pub(crate) fn write_section(w: &mut impl Write, tag: &[u8; 4], bytes: &[u8]) -> io::Result<()> {
    w.write_all(tag)?;
    w_u64(w, bytes.len() as u64)?;
    w.write_all(bytes)?;
    w_u64(w, fnv1a64(bytes))
}

/// Read one section, verifying tag, length cap, and checksum.
pub(crate) fn read_section(r: &mut impl Read, tag: &[u8; 4]) -> io::Result<Vec<u8>> {
    let mut t = [0u8; 4];
    r.read_exact(&mut t)?;
    if &t != tag {
        return Err(bad(format!(
            "expected section {:?}, found {:?}",
            String::from_utf8_lossy(tag),
            String::from_utf8_lossy(&t)
        )));
    }
    let len = r_u64(r)?;
    if len > MAX_SECTION {
        return Err(bad(format!(
            "section {:?} length {len} exceeds cap {MAX_SECTION}",
            String::from_utf8_lossy(tag)
        )));
    }
    let mut bytes = vec![0u8; len as usize];
    r.read_exact(&mut bytes)?;
    let stored = r_u64(r)?;
    let computed = fnv1a64(&bytes);
    if stored != computed {
        return Err(bad(format!(
            "section {:?} checksum mismatch: stored {stored:#018x}, computed {computed:#018x}",
            String::from_utf8_lossy(tag)
        )));
    }
    Ok(bytes)
}

/// Error unless a fully-parsed section has no trailing bytes.
pub(crate) fn expect_drained(rest: &[u8], tag: &[u8; 4]) -> io::Result<()> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(bad(format!(
            "section {:?} has {} unparsed trailing byte(s)",
            String::from_utf8_lossy(tag),
            rest.len()
        )))
    }
}

/// Encode one geometry expression tree: a variant tag byte followed by
/// the variant's parameters, children in preorder.
pub(crate) fn encode_geometry(sec: &mut Vec<u8>, g: &Geometry) -> io::Result<()> {
    match g {
        Geometry::Sphere { center, radius } => {
            sec.push(GT_SPHERE);
            for &x in center {
                w_f64(sec, x)?;
            }
            w_f64(sec, *radius)?;
        }
        Geometry::HalfSpace { normal, offset } => {
            sec.push(GT_HALF_SPACE);
            for &x in normal {
                w_f64(sec, x)?;
            }
            w_f64(sec, *offset)?;
        }
        Geometry::Cuboid { lo, hi } => {
            sec.push(GT_CUBOID);
            for &x in lo {
                w_f64(sec, x)?;
            }
            for &x in hi {
                w_f64(sec, x)?;
            }
        }
        Geometry::Cylinder { axis, center, radius } => {
            sec.push(GT_CYLINDER);
            sec.push(*axis as u8);
            for &x in center {
                w_f64(sec, x)?;
            }
            w_f64(sec, *radius)?;
        }
        Geometry::Union(a, b) => {
            sec.push(GT_UNION);
            encode_geometry(sec, a)?;
            encode_geometry(sec, b)?;
        }
        Geometry::Intersect(a, b) => {
            sec.push(GT_INTERSECT);
            encode_geometry(sec, a)?;
            encode_geometry(sec, b)?;
        }
        Geometry::Invert(a) => {
            sec.push(GT_INVERT);
            encode_geometry(sec, a)?;
        }
    }
    Ok(())
}

/// Decode a geometry expression tree. Builds enum variants directly
/// (constructors assert on bad parameters and must never see untrusted
/// input); the caller validates the finished tree with
/// [`Geometry::validate`].
pub(crate) fn decode_geometry(r: &mut &[u8], depth: usize) -> io::Result<Geometry> {
    if depth > MAX_GEOM_DEPTH {
        return Err(bad(format!("geometry tree deeper than {MAX_GEOM_DEPTH}")));
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    Ok(match tag[0] {
        GT_SPHERE => {
            let mut center = [0.0; 3];
            for x in center.iter_mut() {
                *x = r_f64(r)?;
            }
            Geometry::Sphere { center, radius: r_f64(r)? }
        }
        GT_HALF_SPACE => {
            let mut normal = [0.0; 3];
            for x in normal.iter_mut() {
                *x = r_f64(r)?;
            }
            Geometry::HalfSpace { normal, offset: r_f64(r)? }
        }
        GT_CUBOID => {
            let mut lo = [0.0; 3];
            for x in lo.iter_mut() {
                *x = r_f64(r)?;
            }
            let mut hi = [0.0; 3];
            for x in hi.iter_mut() {
                *x = r_f64(r)?;
            }
            Geometry::Cuboid { lo, hi }
        }
        GT_CYLINDER => {
            let mut axis = [0u8; 1];
            r.read_exact(&mut axis)?;
            let mut center = [0.0; 3];
            for x in center.iter_mut() {
                *x = r_f64(r)?;
            }
            Geometry::Cylinder {
                axis: axis[0] as usize,
                center,
                radius: r_f64(r)?,
            }
        }
        GT_UNION => {
            let a = decode_geometry(r, depth + 1)?;
            let b = decode_geometry(r, depth + 1)?;
            Geometry::Union(Box::new(a), Box::new(b))
        }
        GT_INTERSECT => {
            let a = decode_geometry(r, depth + 1)?;
            let b = decode_geometry(r, depth + 1)?;
            Geometry::Intersect(Box::new(a), Box::new(b))
        }
        GT_INVERT => Geometry::Invert(Box::new(decode_geometry(r, depth + 1)?)),
        other => return Err(bad(format!("unknown geometry tag {other}"))),
    })
}

/// Encode the layout section payload (shared with the snapshot format).
pub(crate) fn encode_layout<const D: usize>(
    sec: &mut Vec<u8>,
    layout: &RootLayout<D>,
) -> io::Result<()> {
    for d in 0..D {
        w_i64(sec, layout.roots[d])?;
    }
    for d in 0..D {
        w_f64(sec, layout.origin[d])?;
    }
    for d in 0..D {
        w_f64(sec, layout.size[d])?;
    }
    for b in layout.boundaries.iter() {
        w_u32(sec, encode_bc(*b))?;
    }
    w_u32(sec, encode_bc(layout.hole_boundary))?;
    match &layout.mask {
        None => w_u32(sec, 0)?,
        Some(m) => {
            w_u32(sec, 1)?;
            w_u64(sec, m.len() as u64)?;
            for &a in m {
                sec.push(a as u8);
            }
        }
    }
    // Immersed geometry rides as an optional tail after the root-mask
    // field: geometry-free layouts stay byte-identical to the format
    // before geometries existed, so pre-geometry streams still parse
    // (and pre-geometry readers reject geometric streams as trailing
    // garbage instead of misreading them).
    if let Some(g) = &layout.geometry {
        w_u32(sec, 1)?;
        encode_geometry(sec, g)?;
    }
    Ok(())
}

/// Encode the params section payload (shared with the snapshot format).
pub(crate) fn encode_params<const D: usize>(
    sec: &mut Vec<u8>,
    p: &GridParams<D>,
) -> io::Result<()> {
    for d in 0..D {
        w_i64(sec, p.block_dims[d])?;
    }
    w_i64(sec, p.nghost)?;
    w_u64(sec, p.nvar as u64)?;
    w_u32(sec, p.max_level as u32)?;
    w_u32(sec, p.max_level_jump as u32)?;
    w_i64(sec, p.pad)
}

/// Serialize the grid (layout, params, leaf keys, interior fields).
pub fn save_grid<const D: usize>(w: &mut impl Write, grid: &BlockGrid<D>) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w_u32(w, VERSION)?;
    w_u32(w, D as u32)?;

    let mut sec = Vec::new();
    encode_layout(&mut sec, grid.layout())?;
    write_section(w, SEC_LAYOUT, &sec)?;

    sec.clear();
    encode_params(&mut sec, grid.params())?;
    write_section(w, SEC_PARAMS, &sec)?;

    sec.clear();
    let mut leaves: Vec<BlockKey<D>> = grid.blocks().map(|(_, n)| n.key()).collect();
    leaves.sort();
    w_u64(&mut sec, leaves.len() as u64)?;
    for key in leaves {
        sec.push(key.level);
        for d in 0..D {
            w_i64(&mut sec, key.coords[d])?;
        }
        let id = grid
            .find(key)
            .ok_or_else(|| bad(format!("grid inconsistent: leaf {key:?} has no block")))?;
        let f = grid.block(id).field();
        for c in f.shape().interior_box().iter() {
            // gather across the SoA planes: the on-disk payload stays
            // cell-major (vars innermost), independent of the memory layout
            for &v in f.cell(c).iter() {
                w_f64(&mut sec, v)?;
            }
        }
    }
    write_section(w, SEC_LEAVES, &sec)
}

/// Parse and sanity-check the layout section.
pub(crate) fn parse_layout<const D: usize>(bytes: &[u8]) -> io::Result<RootLayout<D>> {
    let mut r = bytes;
    let mut roots: IVec<D> = [0; D];
    for x in roots.iter_mut() {
        *x = r_i64(&mut r)?;
        if !(1..=1 << 20).contains(x) {
            return Err(bad(format!("root count {x} out of range")));
        }
    }
    let mut origin = [0.0; D];
    for x in origin.iter_mut() {
        *x = r_f64(&mut r)?;
        if !x.is_finite() {
            return Err(bad("non-finite domain origin"));
        }
    }
    let mut size = [0.0; D];
    for x in size.iter_mut() {
        *x = r_f64(&mut r)?;
        if !x.is_finite() || *x <= 0.0 {
            return Err(bad(format!("invalid domain size {x}")));
        }
    }
    let mut boundaries = [Boundary::Outflow; 6];
    for b in boundaries.iter_mut() {
        *b = decode_bc(r_u32(&mut r)?)?;
    }
    let hole = decode_bc(r_u32(&mut r)?)?;
    let mut layout = RootLayout::new(roots, origin, size, boundaries);
    layout.hole_boundary = hole;
    let has_mask = r_u32(&mut r)?;
    match has_mask {
        0 => {}
        1 => {
            let n = r_u64(&mut r)? as usize;
            let nroots: u64 = roots.iter().map(|&x| x as u64).product();
            if n as u64 != nroots {
                return Err(bad(format!("mask length {n} != root cell count {nroots}")));
            }
            if n > r.len() {
                return Err(bad("mask extends past section end"));
            }
            let mut mask = vec![false; n];
            for m in mask.iter_mut() {
                let mut b = [0u8; 1];
                r.read_exact(&mut b)?;
                *m = b[0] != 0;
            }
            layout.mask = Some(mask);
        }
        other => return Err(bad(format!("invalid mask flag {other}"))),
    }
    if !r.is_empty() {
        let flag = r_u32(&mut r)?;
        if flag != 1 {
            return Err(bad(format!("invalid geometry flag {flag}")));
        }
        let g = decode_geometry(&mut r, 1)?;
        if !g.validate() {
            return Err(bad("geometry has non-finite or degenerate parameters"));
        }
        layout.geometry = Some(g);
    }
    expect_drained(r, SEC_LAYOUT)?;
    Ok(layout)
}

/// Parse and sanity-check the params section.
pub(crate) fn parse_params<const D: usize>(bytes: &[u8]) -> io::Result<GridParams<D>> {
    let mut r = bytes;
    let mut block_dims: IVec<D> = [0; D];
    for x in block_dims.iter_mut() {
        *x = r_i64(&mut r)?;
        if !(1..=1024).contains(x) {
            return Err(bad(format!("block dimension {x} out of range")));
        }
    }
    let nghost = r_i64(&mut r)?;
    if !(0..=16).contains(&nghost) {
        return Err(bad(format!("ghost width {nghost} out of range")));
    }
    let nvar = r_u64(&mut r)? as usize;
    if !(1..=64).contains(&nvar) {
        return Err(bad(format!("variable count {nvar} out of range")));
    }
    let max_level = r_u32(&mut r)?;
    if max_level > 32 {
        return Err(bad(format!("max level {max_level} out of range")));
    }
    let max_level_jump = r_u32(&mut r)?;
    if !(1..=8).contains(&max_level_jump) {
        return Err(bad(format!("max level jump {max_level_jump} out of range")));
    }
    let pad = r_i64(&mut r)?;
    if !(0..=64).contains(&pad) {
        return Err(bad(format!("pad {pad} out of range")));
    }
    expect_drained(r, SEC_PARAMS)?;
    Ok(GridParams::new(block_dims, nghost, nvar, max_level as u8)
        .with_max_jump(max_level_jump as u8)
        .with_pad(pad))
}

/// Deserialize a grid saved with [`save_grid`]. Ghosts are zero; refill
/// with a ghost exchange before stepping.
///
/// Any malformed input — truncation, bit flips, hostile counts — returns
/// an [`io::Error`] of kind [`io::ErrorKind::InvalidData`]; this function
/// does not panic on bad data. (Truncation surfaces from `read_exact` as
/// `UnexpectedEof`; it is remapped here because for a checkpoint a short
/// read *is* malformed data, and callers should have one kind to match.)
pub fn load_grid<const D: usize>(r: &mut impl Read) -> io::Result<BlockGrid<D>> {
    load_grid_inner(r).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            bad(format!("truncated checkpoint: {e}"))
        } else {
            e
        }
    })
}

/// Validate one leaf key against the level cap and the root domain.
pub(crate) fn validate_key<const D: usize>(
    key: BlockKey<D>,
    layout: &RootLayout<D>,
    max_level: u8,
) -> io::Result<()> {
    if key.level > max_level {
        return Err(bad(format!("leaf level {} above max level {max_level}", key.level)));
    }
    let per_level = 1i64 << key.level;
    for d in 0..D {
        let max = layout.roots[d].saturating_mul(per_level);
        if key.coords[d] < 0 || key.coords[d] >= max {
            return Err(bad(format!("leaf {key:?} outside the domain")));
        }
    }
    Ok(())
}

/// Rebuild a grid topology holding exactly the leaf set `targets`:
/// refine every ancestor level by level (which preserves the jump
/// invariant at each intermediate step). Field data is left untouched
/// (`Transfer::None` on the initial condition, i.e. zeros).
pub(crate) fn rebuild_topology<const D: usize>(
    layout: RootLayout<D>,
    params: GridParams<D>,
    targets: &BTreeSet<BlockKey<D>>,
) -> io::Result<BlockGrid<D>> {
    let mut grid = BlockGrid::new(layout, params);
    let mut to_split: Vec<BTreeSet<BlockKey<D>>> =
        vec![BTreeSet::new(); params.max_level as usize + 1];
    for key in targets {
        let mut k = *key;
        while let Some(p) = k.parent() {
            to_split[p.level as usize].insert(p);
            k = p;
        }
    }
    for level_set in &to_split {
        let keys: Vec<BlockKey<D>> = level_set.iter().copied().collect();
        for key in keys {
            if let Some(id) = grid.find(key) {
                grid.refine(id, Transfer::None)
                    .map_err(|e| bad(format!("topology rebuild: {e}")))?;
            }
        }
    }
    if grid.num_blocks() != targets.len() {
        return Err(bad(format!(
            "leaf set is not a valid tree cut: rebuilt {} block(s) from {} key(s)",
            grid.num_blocks(),
            targets.len()
        )));
    }
    Ok(grid)
}

fn load_grid_inner<const D: usize>(r: &mut impl Read) -> io::Result<BlockGrid<D>> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("bad magic"));
    }
    let version = r_u32(r)?;
    if version != VERSION && version != VERSION_SNAPSHOT {
        return Err(bad(format!("unsupported checkpoint version {version}")));
    }
    let dims = r_u32(r)? as usize;
    if dims != D {
        return Err(bad(format!("checkpoint is {dims}-D, expected {D}-D")));
    }
    if version == VERSION_SNAPSHOT {
        return crate::snapshot::read_archive_body::<D>(r);
    }

    let layout = parse_layout::<D>(&read_section(r, SEC_LAYOUT)?)?;
    let params = parse_params::<D>(&read_section(r, SEC_PARAMS)?)?;
    let leaf_bytes = read_section(r, SEC_LEAVES)?;

    // read the leaf set and data, validating the count against the framed
    // section length before any allocation
    let mut lr = leaf_bytes.as_slice();
    let nleaves = r_u64(&mut lr)? as usize;
    let cells = params.field_shape().interior_cells();
    let nvar = params.nvar;
    let record = 1 + 8 * D + 8 * cells * nvar;
    if (nleaves as u128) * (record as u128) != lr.len() as u128 {
        return Err(bad(format!(
            "leaf section holds {} byte(s), expected {nleaves} records of {record}",
            lr.len()
        )));
    }
    let mut saved: Vec<(BlockKey<D>, Vec<f64>)> = Vec::with_capacity(nleaves);
    let mut targets: BTreeSet<BlockKey<D>> = BTreeSet::new();
    for _ in 0..nleaves {
        let mut lv = [0u8; 1];
        lr.read_exact(&mut lv)?;
        let mut coords: IVec<D> = [0; D];
        for x in coords.iter_mut() {
            *x = r_i64(&mut lr)?;
        }
        let key = BlockKey::new(lv[0], coords);
        validate_key(key, &layout, params.max_level)?;
        if !targets.insert(key) {
            return Err(bad(format!("duplicate leaf key {key:?}")));
        }
        let mut data = Vec::with_capacity(cells * nvar);
        for _ in 0..cells * nvar {
            data.push(r_f64(&mut lr)?);
        }
        saved.push((key, data));
    }
    expect_drained(lr, SEC_LEAVES)?;

    // rebuild the topology, then pour the data back
    let mut grid = rebuild_topology(layout, params, &targets)?;
    for (key, data) in saved {
        let id = grid
            .find(key)
            .ok_or_else(|| bad(format!("leaf {key:?} not rebuilt")))?;
        let field = grid.block_mut(id).field_mut();
        let mut off = 0;
        let interior = field.shape().interior_box();
        for c in interior.iter() {
            field.set_cell(c, &data[off..off + nvar]);
            off += nvar;
        }
    }
    Ok(grid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ablock_core::balance::refine_ball_to_level;
    use ablock_core::verify;

    fn sample_grid() -> BlockGrid<2> {
        let layout = RootLayout::new(
            [2, 2],
            [-1.0, 0.5],
            [2.0, 1.0],
            [
                Boundary::Periodic,
                Boundary::Periodic,
                Boundary::Reflect,
                Boundary::Custom(9),
                Boundary::Outflow,
                Boundary::Outflow,
            ],
        );
        let mut g = BlockGrid::new(layout, GridParams::new([4, 4], 2, 3, 3));
        refine_ball_to_level(&mut g, [-0.4, 1.0], 0.15, 2, Transfer::None);
        let lay = g.layout().clone();
        let m = g.params().block_dims;
        for id in g.block_ids() {
            let key = g.block(id).key();
            g.block_mut(id).field_mut().for_each_interior(|c, u| {
                let x = lay.cell_center(key, m, c);
                u[0] = x[0] * 3.0 + x[1];
                u[1] = (x[0] * x[1]).sin();
                u[2] = key.level as f64;
            });
        }
        g
    }

    #[test]
    fn roundtrip_exact() {
        let g = sample_grid();
        let mut buf = Vec::new();
        save_grid(&mut buf, &g).unwrap();
        let g2: BlockGrid<2> = load_grid(&mut buf.as_slice()).unwrap();
        verify::check_grid(&g2).unwrap();
        assert_eq!(g.num_blocks(), g2.num_blocks());
        // every leaf matches key and interior data exactly
        for (_, n) in g.blocks() {
            let id2 = g2.find(n.key()).expect("key present after reload");
            let f2 = g2.block(id2).field();
            for c in n.field().shape().interior_box().iter() {
                assert_eq!(n.field().cell(c), f2.cell(c), "block {:?} cell {c:?}", n.key());
            }
        }
        // layout round-trips including the exotic boundaries
        assert_eq!(g2.layout().boundaries, g.layout().boundaries);
        assert_eq!(g2.layout().origin, g.layout().origin);
    }

    #[test]
    fn roundtrip_masked_layout() {
        let layout = RootLayout::unit([2, 2], Boundary::Outflow)
            .with_mask(|c| c != [1, 1])
            .with_hole_boundary(Boundary::Reflect);
        let mut g = BlockGrid::new(layout, GridParams::new([4, 4], 2, 1, 2));
        let id = g.block_ids()[0];
        g.refine(id, Transfer::None).unwrap();
        let mut buf = Vec::new();
        save_grid(&mut buf, &g).unwrap();
        let g2: BlockGrid<2> = load_grid(&mut buf.as_slice()).unwrap();
        assert_eq!(g2.num_blocks(), g.num_blocks());
        assert_eq!(g2.layout().mask, g.layout().mask);
        assert_eq!(g2.layout().hole_boundary, Boundary::Reflect);
        verify::check_grid(&g2).unwrap();
    }

    #[test]
    fn wrong_dimension_rejected() {
        let g = sample_grid();
        let mut buf = Vec::new();
        save_grid(&mut buf, &g).unwrap();
        let err = match load_grid::<3>(&mut buf.as_slice()) {
            Err(e) => e,
            Ok(_) => panic!("3-D load of a 2-D checkpoint must fail"),
        };
        assert!(err.to_string().contains("2-D"));
    }

    #[test]
    fn corrupt_magic_rejected() {
        let buf = b"NOPE****".to_vec();
        assert!(load_grid::<2>(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let g = sample_grid();
        let mut buf = Vec::new();
        save_grid(&mut buf, &g).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_grid::<2>(&mut buf.as_slice()).is_err());
    }

    /// Truncation at *every* prefix length errors cleanly — no panic, no
    /// bogus success.
    #[test]
    fn truncation_sweep_never_panics() {
        let g = sample_grid();
        let mut buf = Vec::new();
        save_grid(&mut buf, &g).unwrap();
        for len in 0..buf.len() {
            let cut = &buf[..len];
            let result = std::panic::catch_unwind(|| load_grid::<2>(&mut &cut[..]));
            let loaded = result.unwrap_or_else(|_| panic!("panicked at truncation {len}"));
            assert!(loaded.is_err(), "truncation to {len} bytes loaded successfully");
        }
    }

    /// Flipping any single bit is either detected (checksum / validation
    /// error) — and in particular never panics. The header bytes before
    /// the first section frame are each validated directly.
    #[test]
    fn bit_flip_sweep_never_panics() {
        let g = sample_grid();
        let mut buf = Vec::new();
        save_grid(&mut buf, &g).unwrap();
        // every byte, one flipped bit per byte (rotating position)
        for i in 0..buf.len() {
            let mut evil = buf.clone();
            evil[i] ^= 1 << (i % 8);
            let result = std::panic::catch_unwind(|| load_grid::<2>(&mut evil.as_slice()));
            let loaded = result.unwrap_or_else(|_| panic!("panicked on bit flip at byte {i}"));
            assert!(loaded.is_err(), "bit flip at byte {i} went undetected");
        }
    }

    #[test]
    fn oversized_section_length_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(SEC_LAYOUT);
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd length
        let err = match load_grid::<2>(&mut buf.as_slice()) {
            Err(e) => e,
            Ok(_) => panic!("absurd section length must be rejected"),
        };
        assert!(err.to_string().contains("exceeds cap"), "{err}");
    }

    #[test]
    fn restart_continues_physics() {
        // save mid-run, reload, continue: identical to an uninterrupted run
        use ablock_solver::euler::Euler;
        use ablock_solver::kernel::Scheme;
        use ablock_solver::stepper::Stepper;
        use ablock_solver::SolverConfig;
        let e = Euler::<2>::new(1.4);
        let mut g = BlockGrid::new(
            RootLayout::unit([2, 2], Boundary::Periodic),
            GridParams::new([4, 4], 2, 4, 2),
        );
        ablock_solver::problems::advected_gaussian(&mut g, &e, [1.0, 0.0], [0.5, 0.5], 0.15);
        let mut st = Stepper::new(SolverConfig::new(e.clone(), Scheme::muscl_rusanov()));
        let dt = 2e-3;
        for _ in 0..3 {
            st.step_rk2(&mut g, dt, None);
        }
        // checkpoint
        let mut buf = Vec::new();
        save_grid(&mut buf, &g).unwrap();
        // continue original
        for _ in 0..3 {
            st.step_rk2(&mut g, dt, None);
        }
        // reload and continue with a fresh stepper
        let mut g2: BlockGrid<2> = load_grid(&mut buf.as_slice()).unwrap();
        let mut st2 = Stepper::new(SolverConfig::new(e, Scheme::muscl_rusanov()));
        for _ in 0..3 {
            st2.step_rk2(&mut g2, dt, None);
        }
        for (_, n) in g.blocks() {
            let id2 = g2.find(n.key()).unwrap();
            let f2 = g2.block(id2).field();
            for c in n.field().shape().interior_box().iter() {
                for v in 0..4 {
                    assert!(
                        (n.field().at(c, v) - f2.at(c, v)).abs() < 1e-14,
                        "restart diverged at {:?} {c:?} var {v}",
                        n.key()
                    );
                }
            }
        }
    }
}

//! Plain-text tables and CSV output for the benchmark harness.
//!
//! Every figure/table binary in `ablock-bench` prints its rows through
//! [`Table`], so the harness output is uniform and grep-friendly, and can
//! be re-emitted as CSV for plotting.

use std::fmt::Write as _;

/// A simple right-aligned column table with a title.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Append a row of displayable values.
    pub fn rowd(&mut self, cells: &[&dyn std::fmt::Display]) {
        let v: Vec<String> = cells.iter().map(|c| format!("{c}")).collect();
        self.row(&v);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let line: String = widths.iter().map(|w| "-".repeat(w + 2)).collect();
        let _ = writeln!(out, "{line}");
        let hdr: String = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!(" {h:>w$} ", w = w))
            .collect();
        let _ = writeln!(out, "{hdr}");
        let _ = writeln!(out, "{line}");
        for row in &self.rows {
            let r: String = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!(" {c:>w$} ", w = w))
                .collect();
            let _ = writeln!(out, "{r}");
        }
        let _ = writeln!(out, "{line}");
        out
    }

    /// Render as CSV (header row included, title as a comment).
    pub fn to_csv(&self) -> String {
        let mut out = format!("# {}\n{}\n", self.title, self.headers.join(","));
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Print the text table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with engineering-friendly precision.
pub fn fmt_g(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e4 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["n", "value"]);
        t.row(&["1".into(), "10.5".into()]);
        t.row(&["128".into(), "3".into()]);
        let s = t.render();
        assert!(s.contains("# demo"));
        assert!(s.contains("  n "));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator lines present
        assert!(lines.len() >= 6);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "# x\na,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_g(0.0), "0");
        assert_eq!(fmt_g(1.25), "1.2500");
        assert_eq!(fmt_g(123456.0), "1.235e5");
        assert_eq!(fmt_g(0.0001), "1.000e-4");
    }
}

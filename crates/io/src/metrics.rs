//! Metric-snapshot export: deterministic JSON plus the aligned
//! text/CSV tables the benchmark harness prints.
//!
//! The JSON writer is a thin adapter over
//! [`MetricsSnapshot::to_json`] (sorted keys, integers only), so two
//! snapshots with equal contents produce byte-identical files — the
//! property the cost-model determinism tests assert. The table builders
//! feed [`Table`], keeping metric output grep-aligned with every other
//! harness artifact.

use std::io::{self, Write};

use ablock_obs::MetricsSnapshot;

use crate::table::{fmt_g, Table};

/// Write a snapshot as deterministic JSON (byte-identical for equal
/// snapshots).
pub fn write_metrics_json<W: Write>(w: &mut W, snap: &MetricsSnapshot) -> io::Result<()> {
    w.write_all(snap.to_json().as_bytes())
}

/// Span totals as an aligned table: one row per span path, with total
/// milliseconds and mean microseconds per open/close.
pub fn spans_table(title: &str, snap: &MetricsSnapshot) -> Table {
    let mut t = Table::new(title, &["span", "count", "total_ms", "mean_us"]);
    for (path, s) in &snap.spans {
        let mean_us =
            if s.count > 0 { s.total_ns as f64 / s.count as f64 / 1e3 } else { 0.0 };
        t.row(&[
            path.clone(),
            s.count.to_string(),
            fmt_g(s.total_ns as f64 / 1e6),
            fmt_g(mean_us),
        ]);
    }
    t
}

/// Counters as an aligned two-column table.
pub fn counters_table(title: &str, snap: &MetricsSnapshot) -> Table {
    let mut t = Table::new(title, &["counter", "value"]);
    for (k, v) in &snap.counters {
        t.row(&[k.clone(), v.to_string()]);
    }
    t
}

/// Side-by-side phase comparison: one row per phase (leaf-aggregated
/// span totals, in milliseconds), one column per labeled run.
pub fn phase_table(
    title: &str,
    phases: &[&str],
    runs: &[(&str, &MetricsSnapshot)],
) -> Table {
    let mut headers = vec!["phase"];
    headers.extend(runs.iter().map(|(label, _)| *label));
    let mut t = Table::new(title, &headers);
    for &ph in phases {
        let mut row = vec![ph.to_string()];
        for (_, snap) in runs {
            row.push(fmt_g(snap.span_total_ns(ph) as f64 / 1e6));
        }
        t.row(&row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use ablock_obs::Metrics;

    fn sample() -> MetricsSnapshot {
        let m = Metrics::with_virtual_clock();
        {
            let _s = m.span("step");
            let _f = m.span("flux");
            m.advance_ns(2_000_000);
        }
        m.incr("engine.plan_rebuilds", 1);
        m.snapshot()
    }

    #[test]
    fn json_writer_is_deterministic() {
        let snap = sample();
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_metrics_json(&mut a, &snap).unwrap();
        write_metrics_json(&mut b, &snap).unwrap();
        assert_eq!(a, b);
        let s = String::from_utf8(a).unwrap();
        assert!(s.contains("\"step/flux\""));
        assert!(s.contains("\"engine.plan_rebuilds\": 1"));
    }

    #[test]
    fn tables_cover_snapshot_contents() {
        let snap = sample();
        let spans = spans_table("spans", &snap);
        assert_eq!(spans.len(), 2); // "step" and "step/flux"
        assert!(spans.render().contains("step/flux"));
        let counters = counters_table("counters", &snap);
        assert_eq!(counters.len(), 1);
        assert!(counters.to_csv().contains("engine.plan_rebuilds,1"));
    }

    #[test]
    fn phase_table_aggregates_leaves() {
        let snap = sample();
        let t = phase_table("phases", &["flux", "update"], &[("run", &snap)]);
        let csv = t.to_csv();
        assert!(csv.contains("flux,2.0000"), "{csv}");
        assert!(csv.contains("update,0"), "{csv}");
    }
}

//! # ablock-io — output and reporting
//!
//! Rendering and serialization for the repository's examples and
//! benchmark harness:
//!
//! * [`render`] — ASCII and SVG drawings of block decompositions and cell
//!   trees (regenerates the look of the paper's Figs. 2–4);
//! * [`image`] — uniform resampling of AMR fields plus PGM/PPM encoders;
//! * [`vtk`] — legacy-VTK writers (structured-points resample, block
//!   outlines) for ParaView/VisIt;
//! * [`table`] — aligned text/CSV tables used by every figure binary;
//! * [`checkpoint`] — binary save/restart of full grids;
//! * [`profile`] — line sampling + CSV/sparkline for 1-D comparisons;
//! * [`metrics`] — metric-snapshot export (deterministic JSON, aligned
//!   span/counter/phase tables).

#![warn(missing_docs)]

pub mod checkpoint;
pub mod image;
pub mod snapshot;
pub mod metrics;
pub mod profile;
pub mod render;
pub mod table;
pub mod vtk;

pub use checkpoint::{load_grid, save_grid};
pub use snapshot::{
    content_hash, materialize, read_archive, read_manifest, write_archive, write_snapshot,
    Manifest, ManifestEntry, NodeHash, NodeStore, SnapshotStats,
};
pub use image::{sample_2d, sample_3d_slice, to_pgm, to_ppm};
pub use metrics::{counters_table, phase_table, spans_table, write_metrics_json};
pub use profile::{line_profile, profile_csv, sparkline, ProfilePoint};
pub use render::{ascii_grid_2d, svg_celltree_2d, svg_grid_2d, svg_partition_2d};
pub use table::{fmt_g, Table};
pub use vtk::{vtk_blocks_2d, vtk_uniform_2d, vtk_uniform_3d};

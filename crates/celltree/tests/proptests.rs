//! Property tests for the cell-based tree: the traversal-based neighbor
//! finder is checked against a key-arithmetic oracle under random
//! refinement/coarsening sequences.
//!
//! Cases are generated with the in-repo [`ablock_testkit`] seeded driver;
//! a failing case reports its seed so it can be replayed exactly.

use ablock_celltree::{CellNeighbor, CellTree};
use ablock_core::index::Face;
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, Resolved, RootLayout};
use ablock_testkit::cases;

/// Build a tree with a deterministic pseudo-random refinement pattern.
fn random_tree(roots: [i64; 2], periodic: bool, seed: u64, rounds: usize) -> CellTree<2> {
    let bc = if periodic { Boundary::Periodic } else { Boundary::Outflow };
    let mut t = CellTree::new(RootLayout::unit(roots, bc), 1, 4);
    let mut state = seed | 1;
    for _ in 0..rounds {
        for id in t.leaf_ids() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if (state >> 33) % 100 < 30 && t.node(id).key.level < 3 {
                t.refine(id);
            }
        }
    }
    t
}

/// Oracle: resolve the neighbor of `key` across `face` using pure key
/// arithmetic plus a key → leaf map.
fn oracle_neighbor(
    t: &CellTree<2>,
    key: BlockKey<2>,
    face: Face,
    by_key: &std::collections::HashMap<BlockKey<2>, ablock_celltree::NodeId>,
) -> OracleResult {
    let target = key.face_neighbor(face);
    match t.layout().resolve(target) {
        Resolved::Outside(_, bc) => OracleResult::Boundary(bc),
        Resolved::InDomain(nk) => {
            // walk up: same key or ancestors
            let mut k = nk;
            loop {
                if let Some(&id) = by_key.get(&k) {
                    if t.node(id).is_leaf() {
                        return if k.level == key.level {
                            OracleResult::SameLevel(id)
                        } else {
                            OracleResult::CoarserLevel(id)
                        };
                    }
                    return OracleResult::Subdivided(id);
                }
                match k.parent() {
                    Some(p) => k = p,
                    None => panic!("no node covers {nk:?}"),
                }
            }
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
enum OracleResult {
    SameLevel(ablock_celltree::NodeId),
    CoarserLevel(ablock_celltree::NodeId),
    Subdivided(ablock_celltree::NodeId),
    Boundary(Boundary),
}

/// Every traversal answer matches the key-arithmetic oracle, for every
/// leaf and every face, on random trees.
#[test]
fn traversal_matches_oracle() {
    cases(32, 0xCE11_0001, |_, rng| {
        let seed = rng.next_u64();
        let rounds = rng.usize_in(1, 3);
        let rx = rng.i64_in(1, 4);
        let ry = rng.i64_in(1, 4);
        let periodic = rng.coin();
        let t = random_tree([rx, ry], periodic, seed, rounds);
        // all nodes (leaves + internal) by key
        let mut by_key = std::collections::HashMap::new();
        for id in t.leaf_ids() {
            let mut cur = Some(id);
            while let Some(c) = cur {
                by_key.insert(t.node(c).key, c);
                cur = t.node(c).parent;
            }
        }
        for id in t.leaf_ids() {
            let key = t.node(id).key;
            for face in Face::all::<2>() {
                let got = t.neighbor(id, face);
                let want = oracle_neighbor(&t, key, face, &by_key);
                let ok = matches!(
                    (&got, &want),
                    (CellNeighbor::Same(a), OracleResult::SameLevel(b)) if a == b
                ) || matches!(
                    (&got, &want),
                    (CellNeighbor::Coarser(a), OracleResult::CoarserLevel(b)) if a == b
                ) || matches!(
                    (&got, &want),
                    (CellNeighbor::Finer(a), OracleResult::Subdivided(b)) if a == b
                ) || matches!(
                    (&got, &want),
                    (CellNeighbor::Boundary(a), OracleResult::Boundary(b)) if a == b
                );
                assert!(ok, "leaf {key:?} face {face:?}: got {got:?}, want {want:?}");
            }
        }
    });
}

/// Node/leaf bookkeeping is consistent under refine+coarsen round trips.
#[test]
fn refine_coarsen_roundtrip_counts() {
    cases(32, 0xCE11_0002, |_, rng| {
        let seed = rng.next_u64();
        let mut t = random_tree([2, 2], false, seed, 2);
        let nodes0 = t.num_nodes();
        let leaves0 = t.num_leaves();
        // refine every leaf once, then coarsen all the new families
        let old_leaves = t.leaf_ids();
        for &id in &old_leaves {
            t.refine(id);
        }
        assert_eq!(t.num_leaves(), leaves0 * 4);
        assert_eq!(t.num_nodes(), nodes0 + leaves0 * 4);
        for &id in &old_leaves {
            t.coarsen(id);
        }
        assert_eq!(t.num_nodes(), nodes0);
        assert_eq!(t.num_leaves(), leaves0);
    });
}

/// Coarsening averages and refining injects: a refine+coarsen round
/// trip preserves every leaf value exactly.
#[test]
fn refine_coarsen_preserves_values() {
    cases(32, 0xCE11_0003, |_, rng| {
        let seed = rng.next_u64();
        let mut t = random_tree([2, 1], false, seed, 1);
        let mut state = seed | 3;
        for id in t.leaf_ids() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(9);
            t.node_mut(id).u[0] = (state >> 40) as f64 / 1e4;
        }
        let before: Vec<f64> = t.leaf_ids().iter().map(|&i| t.node(i).u[0]).collect();
        let old_leaves = t.leaf_ids();
        for &id in &old_leaves {
            t.refine(id);
        }
        for &id in &old_leaves {
            t.coarsen(id);
        }
        let after: Vec<f64> = t.leaf_ids().iter().map(|&i| t.node(i).u[0]).collect();
        assert_eq!(before, after);
    });
}

/// After balance_21 no face has a jump above one level.
#[test]
fn balance_enforces_21() {
    cases(32, 0xCE11_0004, |_, rng| {
        let seed = rng.next_u64();
        let rounds = rng.usize_in(1, 3);
        let mut t = random_tree([2, 2], true, seed, rounds);
        t.balance_21();
        for id in t.leaf_ids() {
            let lvl = t.node(id).key.level;
            for f in Face::all::<2>() {
                if let CellNeighbor::Finer(n) = t.neighbor(id, f) {
                    for c in t.leaves_on_face(n, f.opposite()) {
                        assert!(t.node(c).key.level <= lvl + 1);
                    }
                }
            }
        }
    });
}

//! The cell-based tree: one node per cell.
//!
//! This is the structure the paper contrasts adaptive blocks against
//! (Fig. 4): when a cell is subdivided its children are created and **the
//! parent remains**, so the region has two representations; only
//! parent/child links are stored, and every value lives in its own node,
//! reached by indirect addressing.
//!
//! Data layout is deliberately per-cell (`[f64; MAX_VARS]` inside each
//! node) — the indirect addressing and lost loop/cache optimization this
//! causes is exactly the performance penalty Fig. 5 and ABL-1 quantify.

use ablock_core::arena::{Arena, BlockId};
use ablock_core::index::{Face, IVec};
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, Resolved, RootLayout};

/// Maximum variables a cell can store (ideal MHD needs 8).
pub const MAX_VARS: usize = 8;

/// Node handle (same generational-arena id type as block grids).
pub type NodeId = BlockId;

/// One cell of the tree.
#[derive(Debug)]
pub struct CellNode<const D: usize> {
    /// Logical address of the cell (level + lattice coords).
    pub key: BlockKey<D>,
    /// Parent cell; `None` for root cells.
    pub parent: Option<NodeId>,
    /// Children in child-index order; `None` for leaves. Only the first
    /// `2^D` entries are meaningful.
    pub children: Option<[NodeId; 8]>,
    /// Which child of its parent this node is.
    pub child_slot: u8,
    /// Cell-centered state.
    pub u: [f64; MAX_VARS],
    /// Scratch state (RK stages, fluxes).
    pub work: [f64; MAX_VARS],
}

impl<const D: usize> CellNode<D> {
    /// True when the cell has no children.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }
}

/// Result of a neighbor query across one face.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellNeighbor {
    /// A leaf at the same level.
    Same(NodeId),
    /// A coarser leaf covering the adjacent region.
    Coarser(NodeId),
    /// The adjacent region is subdivided: the equal-level *internal* node
    /// is returned; callers descend to the face children themselves.
    Finer(NodeId),
    /// Physical domain boundary.
    Boundary(Boundary),
}

/// Cell-based quadtree (2-D) / octree (3-D) over a root lattice of cells.
pub struct CellTree<const D: usize> {
    layout: RootLayout<D>,
    nvar: usize,
    max_level: u8,
    arena: Arena<CellNode<D>>,
    /// Root nodes indexed by row-major root lattice position.
    roots: Vec<NodeId>,
    /// Count of traversal link-follows since the last reset (for ABL-1).
    pub hops: std::cell::Cell<u64>,
}

impl<const D: usize> CellTree<D> {
    /// Build the root lattice of cells; `layout.roots` counts root *cells*.
    pub fn new(layout: RootLayout<D>, nvar: usize, max_level: u8) -> Self {
        assert!(nvar <= MAX_VARS);
        layout.validate();
        let mut arena = Arena::new();
        let mut roots = Vec::new();
        for key in layout.root_keys() {
            let id = arena.insert(CellNode {
                key,
                parent: None,
                children: None,
                child_slot: 0,
                u: [0.0; MAX_VARS],
                work: [0.0; MAX_VARS],
            });
            roots.push(id);
        }
        CellTree { layout, nvar, max_level, arena, roots, hops: std::cell::Cell::new(0) }
    }

    /// Domain layout.
    pub fn layout(&self) -> &RootLayout<D> {
        &self.layout
    }

    /// Variables per cell.
    pub fn nvar(&self) -> usize {
        self.nvar
    }

    /// Refinement level cap.
    pub fn max_level(&self) -> u8 {
        self.max_level
    }

    /// Total nodes (leaves *and* internal — the parent remains; contrast
    /// with `BlockGrid`, which stores only leaves).
    pub fn num_nodes(&self) -> usize {
        self.arena.len()
    }

    /// Number of leaf cells.
    pub fn num_leaves(&self) -> usize {
        self.arena.iter().filter(|(_, n)| n.is_leaf()).count()
    }

    /// Access a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &CellNode<D> {
        &self.arena[id]
    }

    /// Mutable access to a node.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut CellNode<D> {
        &mut self.arena[id]
    }

    /// Root node at a root-lattice position.
    fn root_at(&self, coords: IVec<D>) -> NodeId {
        let mut idx = 0i64;
        let mut stride = 1i64;
        for d in 0..D {
            idx += coords[d] * stride;
            stride *= self.layout.roots[d];
        }
        self.roots[idx as usize]
    }

    /// Iterate all leaf ids (depth-first from each root, children in child
    /// index order).
    pub fn leaf_ids(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.roots.iter().rev().copied().collect();
        while let Some(id) = stack.pop() {
            let n = &self.arena[id];
            match n.children {
                None => out.push(id),
                Some(kids) => {
                    for ci in (0..(1 << D)).rev() {
                        stack.push(kids[ci]);
                    }
                }
            }
        }
        out
    }

    /// Physical cell width at a level.
    pub fn cell_size(&self, level: u8) -> [f64; D] {
        self.layout.cell_size(level, [1; D])
    }

    /// Physical center of a cell.
    pub fn cell_center(&self, key: BlockKey<D>) -> [f64; D] {
        // each "block" is a single cell here
        self.layout.cell_center(key, [1; D], [0; D])
    }

    /// Split a leaf into `2^D` children, distributing `u` by injection.
    /// Returns the child ids.
    pub fn refine(&mut self, id: NodeId) -> Vec<NodeId> {
        let (key, u) = {
            let n = &self.arena[id];
            assert!(n.is_leaf(), "refine target must be a leaf");
            assert!(n.key.level < self.max_level, "max_level reached");
            (n.key, n.u)
        };
        let mut kids = [NodeId::DANGLING; 8];
        let mut out = Vec::with_capacity(1 << D);
        for ci in 0..(1usize << D) {
            let cid = self.arena.insert(CellNode {
                key: key.child(ci),
                parent: Some(id),
                children: None,
                child_slot: ci as u8,
                u,
                work: [0.0; MAX_VARS],
            });
            kids[ci] = cid;
            out.push(cid);
        }
        self.arena[id].children = Some(kids);
        out
    }

    /// Remove a node's children (which must all be leaves), restricting
    /// their average into the parent.
    pub fn coarsen(&mut self, id: NodeId) {
        let kids = self.arena[id].children.expect("coarsen target must be internal");
        let inv = 1.0 / (1u32 << D) as f64;
        let mut acc = [0.0; MAX_VARS];
        for &cid in kids.iter().take(1 << D) {
            let c = &self.arena[cid];
            assert!(c.is_leaf(), "coarsen requires leaf children");
            for v in 0..self.nvar {
                acc[v] += c.u[v];
            }
        }
        for &cid in kids.iter().take(1 << D) {
            self.arena.remove(cid);
        }
        let n = &mut self.arena[id];
        n.children = None;
        for v in 0..self.nvar {
            n.u[v] = acc[v] * inv;
        }
    }

    /// Neighbor query by pure tree traversal (Samet's algorithm): ascend
    /// until the face crossing stays inside a common ancestor, step to the
    /// mirrored sibling, then descend the mirrored path while children
    /// exist. Counts every link follow in `self.hops`.
    pub fn neighbor(&self, id: NodeId, face: Face) -> CellNeighbor {
        let d = face.dim as usize;
        let mut path: Vec<u8> = Vec::new();
        let mut cur = id;
        // ----- ascend -----
        loop {
            let n = &self.arena[cur];
            match n.parent {
                Some(p) => {
                    self.hops.set(self.hops.get() + 1);
                    let ci = n.child_slot as usize;
                    let on_far_side = ((ci >> d) & 1 == 1) != face.high;
                    if on_far_side {
                        // sibling move inside the parent
                        let sib_ci = ci ^ (1 << d);
                        let kids = self.arena[p].children.expect("parent is internal");
                        cur = kids[sib_ci];
                        self.hops.set(self.hops.get() + 1);
                        break;
                    }
                    path.push(ci as u8);
                    cur = p;
                }
                None => {
                    // root lattice adjacency
                    let nk = n.key.face_neighbor(face);
                    match self.layout.resolve(nk) {
                        Resolved::Outside(_, bc) => return CellNeighbor::Boundary(bc),
                        Resolved::InDomain(k) => {
                            cur = self.root_at(k.coords);
                            self.hops.set(self.hops.get() + 1);
                            break;
                        }
                    }
                }
            }
        }
        // ----- descend mirrored path -----
        while let Some(ci) = path.pop() {
            let n = &self.arena[cur];
            match n.children {
                None => return CellNeighbor::Coarser(cur),
                Some(kids) => {
                    let mirrored = (ci as usize) ^ (1 << d);
                    cur = kids[mirrored];
                    self.hops.set(self.hops.get() + 1);
                }
            }
        }
        let n = &self.arena[cur];
        if n.is_leaf() {
            CellNeighbor::Same(cur)
        } else {
            CellNeighbor::Finer(cur)
        }
    }

    /// The leaf descendants of `id` touching `face` (used after a
    /// [`CellNeighbor::Finer`] result, with the face pointing back).
    pub fn leaves_on_face(&self, id: NodeId, face: Face) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        let d = face.dim as usize;
        let side = face.high as usize;
        while let Some(cur) = stack.pop() {
            let n = &self.arena[cur];
            match n.children {
                None => out.push(cur),
                Some(kids) => {
                    for ci in 0..(1usize << D) {
                        if (ci >> d) & 1 == side {
                            stack.push(kids[ci]);
                            self.hops.set(self.hops.get() + 1);
                        }
                    }
                }
            }
        }
        out
    }

    /// Average traversal hops per `neighbor` query since the last reset.
    pub fn take_hops(&self) -> u64 {
        let h = self.hops.get();
        self.hops.set(0);
        h
    }

    /// Memory held by nodes, in bytes (each cell pays the full node).
    pub fn node_bytes(&self) -> usize {
        self.arena.len() * std::mem::size_of::<CellNode<D>>()
    }

    /// Enforce the one-level face-jump constraint by cascading refinement,
    /// mirroring `ablock_core::balance::adapt` for fairness in comparisons.
    pub fn balance_21(&mut self) {
        loop {
            let mut to_refine: Vec<NodeId> = Vec::new();
            for id in self.leaf_ids() {
                let lvl = self.arena[id].key.level;
                for f in Face::all::<D>() {
                    if let CellNeighbor::Finer(n) = self.neighbor(id, f) {
                        // any grandchild on the shared face => jump > 1
                        let fine = self.leaves_on_face(n, f.opposite());
                        if fine
                            .iter()
                            .any(|&c| self.arena[c].key.level > lvl + 1)
                        {
                            to_refine.push(id);
                            break;
                        }
                    }
                }
            }
            if to_refine.is_empty() {
                return;
            }
            for id in to_refine {
                if self.arena.contains(id) && self.arena[id].is_leaf() {
                    self.refine(id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree2(roots: [i64; 2]) -> CellTree<2> {
        CellTree::new(RootLayout::unit(roots, Boundary::Outflow), 1, 6)
    }

    #[test]
    fn roots_and_leaves() {
        let t = tree2([4, 3]);
        assert_eq!(t.num_nodes(), 12);
        assert_eq!(t.num_leaves(), 12);
        assert_eq!(t.leaf_ids().len(), 12);
    }

    #[test]
    fn refine_keeps_parent() {
        let mut t = tree2([2, 2]);
        let id = t.roots[0];
        let kids = t.refine(id);
        assert_eq!(kids.len(), 4);
        // the paper's contrast: parent node remains (two representations)
        assert_eq!(t.num_nodes(), 4 + 4);
        assert_eq!(t.num_leaves(), 7);
        assert!(!t.node(id).is_leaf());
        assert_eq!(t.node(kids[2]).parent, Some(id));
        assert_eq!(t.node(kids[2]).child_slot, 2);
    }

    #[test]
    fn coarsen_restores_and_averages() {
        let mut t = tree2([1, 1]);
        let id = t.roots[0];
        let kids = t.refine(id);
        for (i, &k) in kids.iter().enumerate() {
            t.node_mut(k).u[0] = i as f64;
        }
        t.coarsen(id);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.node(id).u[0], 1.5);
        assert!(t.node(id).is_leaf());
    }

    #[test]
    fn neighbor_same_level_roots() {
        let t = tree2([3, 1]);
        let a = t.roots[0];
        let b = t.roots[1];
        assert_eq!(t.neighbor(a, Face::new(0, true)), CellNeighbor::Same(b));
        assert_eq!(t.neighbor(b, Face::new(0, false)), CellNeighbor::Same(a));
        assert!(matches!(
            t.neighbor(a, Face::new(0, false)),
            CellNeighbor::Boundary(Boundary::Outflow)
        ));
    }

    #[test]
    fn neighbor_within_family() {
        let mut t = tree2([1, 1]);
        let kids = t.refine(t.roots[0]);
        // child 0 (lo,lo) x+ neighbor is child 1
        assert_eq!(t.neighbor(kids[0], Face::new(0, true)), CellNeighbor::Same(kids[1]));
        assert_eq!(t.neighbor(kids[3], Face::new(1, false)), CellNeighbor::Same(kids[1]));
    }

    #[test]
    fn neighbor_across_families() {
        let mut t = tree2([2, 1]);
        let a_kids = t.refine(t.roots[0]);
        let b_kids = t.refine(t.roots[1]);
        // right child of a (ci=1) x+ neighbor: left child of b (ci=0)
        assert_eq!(
            t.neighbor(a_kids[1], Face::new(0, true)),
            CellNeighbor::Same(b_kids[0])
        );
        assert_eq!(
            t.neighbor(a_kids[3], Face::new(0, true)),
            CellNeighbor::Same(b_kids[2])
        );
    }

    #[test]
    fn neighbor_coarser_and_finer() {
        let mut t = tree2([2, 1]);
        let a_kids = t.refine(t.roots[0]);
        // b unrefined: a's right children see Coarser(b)
        assert_eq!(
            t.neighbor(a_kids[1], Face::new(0, true)),
            CellNeighbor::Coarser(t.roots[1])
        );
        // b sees Finer(a-root); descending gives the two right children
        match t.neighbor(t.roots[1], Face::new(0, false)) {
            CellNeighbor::Finer(n) => {
                assert_eq!(n, t.roots[0]);
                let leaves = t.leaves_on_face(n, Face::new(0, true));
                assert_eq!(leaves.len(), 2);
                assert!(leaves.contains(&a_kids[1]));
                assert!(leaves.contains(&a_kids[3]));
            }
            other => panic!("expected Finer, got {other:?}"),
        }
    }

    #[test]
    fn neighbor_periodic_wrap() {
        let t = CellTree::<2>::new(RootLayout::unit([2, 1], Boundary::Periodic), 1, 4);
        let a = t.roots[0];
        let b = t.roots[1];
        assert_eq!(t.neighbor(a, Face::new(0, false)), CellNeighbor::Same(b));
        assert_eq!(t.neighbor(a, Face::new(1, true)), CellNeighbor::Same(a));
    }

    #[test]
    fn deep_neighbor_traversal_costs_hops() {
        // Two adjacent roots refined 4 deep along the shared face: neighbor
        // queries from the deepest cells must walk up and down the tree.
        let mut t = tree2([2, 1]);
        let mut left = t.roots[0];
        for _ in 0..4 {
            let kids = t.refine(left);
            left = kids[1]; // (hi, lo): hugs the shared face
        }
        t.take_hops();
        let r = t.neighbor(left, Face::new(0, true));
        let hops_deep = t.take_hops();
        assert!(matches!(r, CellNeighbor::Coarser(_)));
        // sibling query inside the family is much cheaper
        let sib = t.neighbor(left, Face::new(0, false));
        let hops_sib = t.take_hops();
        assert!(matches!(sib, CellNeighbor::Same(_)));
        assert!(
            hops_deep > 2 * hops_sib,
            "deep cross-family lookup ({hops_deep} hops) should dwarf sibling lookup ({hops_sib})"
        );
    }

    #[test]
    fn balance_21_cascades() {
        let mut t = tree2([2, 1]);
        // refine left root 3 levels down at the shared face; right root stays
        let mut cur = t.roots[0];
        for _ in 0..3 {
            let kids = t.refine(cur);
            cur = kids[1];
        }
        t.balance_21();
        // right root must now be refined at least 2 levels near the face
        let r = t.roots[1];
        assert!(!t.node(r).is_leaf(), "balance must refine the right root");
        for id in t.leaf_ids() {
            let lvl = t.node(id).key.level;
            for f in Face::all::<2>() {
                if let CellNeighbor::Finer(n) = t.neighbor(id, f) {
                    for c in t.leaves_on_face(n, f.opposite()) {
                        assert!(
                            t.node(c).key.level <= lvl + 1,
                            "2:1 violated after balance"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn three_d_tree() {
        let mut t = CellTree::<3>::new(
            RootLayout::unit([2, 1, 1], Boundary::Outflow),
            5,
            3,
        );
        let kids = t.refine(t.roots[0]);
        assert_eq!(kids.len(), 8);
        assert_eq!(t.num_leaves(), 9);
        // z+ neighbor of low corner child is the ci=4 sibling
        assert_eq!(t.neighbor(kids[0], Face::new(2, true)), CellNeighbor::Same(kids[4]));
    }

    #[test]
    fn node_bytes_grow_per_cell() {
        let mut t = tree2([1, 1]);
        let b0 = t.node_bytes();
        t.refine(t.roots[0]);
        assert_eq!(t.node_bytes(), b0 * 5, "every cell pays a whole node");
    }
}

//! Finite-volume updates over the leaves of a cell tree.
//!
//! This is the baseline compute path the paper's Fig. 5 implicitly
//! measures at block size 1: each leaf update performs per-face neighbor
//! *traversals* and touches per-cell nodes scattered through memory —
//! neither loop fusion nor cache streaming is possible.
//!
//! The scheme is a first-order Godunov-type update with a caller-supplied
//! numerical flux, matching the first-order path of `ablock-solver` so
//! baseline-vs-blocks comparisons are apples to apples. At level jumps the
//! coarse side uses the area-weighted average of the fine face leaves'
//! fluxes; no refluxing is performed (first-order AMR practice).

use crate::tree::{CellNeighbor, CellTree, MAX_VARS};
use ablock_core::index::Face;
use ablock_core::layout::Boundary;


/// Apply reflecting/outflow boundary state synthesis for a ghost state.
fn boundary_state(u: &[f64], bc: Boundary, dir: usize, vectors: &[[usize; 3]], out: &mut [f64]) {
    out[..u.len()].copy_from_slice(u);
    if bc == Boundary::Reflect {
        for vc in vectors {
            let v = vc[dir];
            if v < u.len() {
                out[v] = -out[v];
            }
        }
    }
}

/// One forward-Euler step of size `dt` over every leaf, using numerical
/// flux `flux(uL, uR, dir, out)`.
///
/// Returns the number of flux evaluations performed (each counted once per
/// side it is computed from — the duplicated work at level jumps is part of
/// the baseline's cost profile).
pub fn step_fv<const D: usize, F>(
    tree: &mut CellTree<D>,
    dt: f64,
    flux: &F,
    vectors: &[[usize; 3]],
) -> usize
where
    F: Fn(&[f64], &[f64], usize, &mut [f64]),
{
    let nvar = tree.nvar();
    let leaves = tree.leaf_ids();
    let mut nflux = 0usize;

    // phase 1: accumulate RHS into work
    for &id in &leaves {
        let (key, u) = {
            let n = tree.node(id);
            (n.key, n.u)
        };
        let h = tree.cell_size(key.level);
        let mut rhs = [0.0f64; MAX_VARS];
        let mut f = [0.0f64; MAX_VARS];
        let mut ghost = [0.0f64; MAX_VARS];
        for face in Face::all::<D>() {
            let dir = face.dim as usize;
            let sign = face.sign() as f64;
            match tree.neighbor(id, face) {
                CellNeighbor::Same(nid) | CellNeighbor::Coarser(nid) => {
                    let un = tree.node(nid).u;
                    let (ul, ur) = if face.high { (&u, &un) } else { (&un, &u) };
                    flux(&ul[..nvar], &ur[..nvar], dir, &mut f[..nvar]);
                    nflux += 1;
                    for v in 0..nvar {
                        rhs[v] -= sign * f[v] / h[dir];
                    }
                }
                CellNeighbor::Finer(nid) => {
                    // area-weighted average of fluxes against each fine leaf
                    let fine = tree.leaves_on_face(nid, face.opposite());
                    let w = 1.0 / fine.len() as f64;
                    for fid in fine {
                        let un = tree.node(fid).u;
                        let (ul, ur) = if face.high { (&u, &un) } else { (&un, &u) };
                        flux(&ul[..nvar], &ur[..nvar], dir, &mut f[..nvar]);
                        nflux += 1;
                        for v in 0..nvar {
                            rhs[v] -= sign * w * f[v] / h[dir];
                        }
                    }
                }
                CellNeighbor::Boundary(bc) => {
                    boundary_state(&u[..nvar], bc, dir, vectors, &mut ghost);
                    let (ul, ur) = if face.high { (&u, &ghost) } else { (&ghost, &u) };
                    flux(&ul[..nvar], &ur[..nvar], dir, &mut f[..nvar]);
                    nflux += 1;
                    for v in 0..nvar {
                        rhs[v] -= sign * f[v] / h[dir];
                    }
                }
            }
        }
        let n = tree.node_mut(id);
        n.work[..nvar].copy_from_slice(&rhs[..nvar]);
    }

    // phase 2: apply
    for &id in &leaves {
        let n = tree.node_mut(id);
        for v in 0..nvar {
            n.u[v] += dt * n.work[v];
        }
    }
    nflux
}

/// Largest stable `dt` under CFL number `cfl` for the given speed model.
pub fn max_dt<const D: usize, S>(tree: &CellTree<D>, speed: &S, cfl: f64) -> f64
where
    S: Fn(&[f64], usize) -> f64,
{
    let mut limit = f64::INFINITY;
    for id in tree.leaf_ids() {
        let n = tree.node(id);
        let h = tree.cell_size(n.key.level);
        let mut rate = 0.0;
        for dir in 0..D {
            rate += speed(&n.u[..tree.nvar()], dir) / h[dir];
        }
        if rate > 0.0 {
            limit = limit.min(1.0 / rate);
        }
    }
    cfl * limit
}

/// Upwind flux for linear advection with velocity `vel` (1 variable).
pub fn advection_flux<const D: usize>(vel: [f64; D]) -> impl Fn(&[f64], &[f64], usize, &mut [f64]) {
    move |ul, ur, dir, out| {
        let a = vel[dir];
        out[0] = if a >= 0.0 { a * ul[0] } else { a * ur[0] };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ablock_core::layout::RootLayout;

    fn advect_tree(n: i64, periodic: bool) -> CellTree<1> {
        let bc = if periodic { Boundary::Periodic } else { Boundary::Outflow };
        CellTree::new(RootLayout::unit([n], bc), 1, 4)
    }

    #[test]
    fn advection_conserves_on_uniform_periodic() {
        let mut t = advect_tree(32, true);
        for (i, id) in t.leaf_ids().into_iter().enumerate() {
            t.node_mut(id).u[0] = if (8..16).contains(&i) { 1.0 } else { 0.0 };
        }
        let flux = advection_flux::<1>([1.0]);
        let total_before: f64 = t.leaf_ids().iter().map(|&i| t.node(i).u[0]).sum();
        for _ in 0..20 {
            step_fv(&mut t, 0.5 / 32.0, &flux, &[]);
        }
        let total_after: f64 = t.leaf_ids().iter().map(|&i| t.node(i).u[0]).sum();
        assert!((total_before - total_after).abs() < 1e-12);
        // profile moved right and diffused, but stayed in [0, 1]
        for id in t.leaf_ids() {
            let v = t.node(id).u[0];
            assert!((-1e-12..=1.0 + 1e-12).contains(&v));
        }
    }

    #[test]
    fn advection_moves_profile_right() {
        let mut t = advect_tree(64, true);
        let ids = t.leaf_ids();
        for (i, &id) in ids.iter().enumerate() {
            t.node_mut(id).u[0] = (-((i as f64 - 16.0) / 4.0).powi(2)).exp();
        }
        let flux = advection_flux::<1>([1.0]);
        let dt = 0.5 / 64.0;
        // advance half the domain: t = 0.5 -> 32 cells
        let steps = (0.5 / dt) as usize;
        for _ in 0..steps {
            step_fv(&mut t, dt, &flux, &[]);
        }
        // centroid near cell 48
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &id) in ids.iter().enumerate() {
            num += i as f64 * t.node(id).u[0];
            den += t.node(id).u[0];
        }
        let centroid = num / den;
        assert!(
            (centroid - 48.0).abs() < 2.0,
            "centroid {centroid}, expected about 48"
        );
    }

    #[test]
    fn refined_tree_still_stable() {
        let mut t = advect_tree(16, true);
        // refine the middle cells
        for id in t.leaf_ids() {
            let k = t.node(id).key;
            if (6..10).contains(&k.coords[0]) {
                t.refine(id);
            }
        }
        t.balance_21();
        for id in t.leaf_ids() {
            let x = t.cell_center(t.node(id).key)[0];
            t.node_mut(id).u[0] = (-((x - 0.3) / 0.1).powi(2)).exp();
        }
        let flux = advection_flux::<1>([1.0]);
        let dt = max_dt(&t, &|_, _| 1.0, 0.4);
        for _ in 0..50 {
            step_fv(&mut t, dt, &flux, &[]);
        }
        for id in t.leaf_ids() {
            let v = t.node(id).u[0];
            assert!(v.is_finite() && (-0.1..=1.1).contains(&v));
        }
    }

    #[test]
    fn flux_count_scales_with_faces() {
        let mut t = advect_tree(8, true);
        let flux = advection_flux::<1>([1.0]);
        let n = step_fv(&mut t, 1e-4, &flux, &[]);
        // 8 leaves x 2 faces = 16 one-sided evaluations
        assert_eq!(n, 16);
    }

    #[test]
    fn reflecting_boundary_flips_vector() {
        let mut t = CellTree::<1>::new(RootLayout::unit([4], Boundary::Reflect), 2, 2);
        for id in t.leaf_ids() {
            let n = t.node_mut(id);
            n.u[0] = 1.0;
            n.u[1] = 0.5; // "momentum"
        }
        // flux = simple upwind on var 0 by sign of var 1 — just probe that
        // the ghost state arrives flipped at the wall
        let seen = std::cell::RefCell::new(Vec::new());
        {
            let probe = |ul: &[f64], ur: &[f64], _dir: usize, out: &mut [f64]| {
                seen.borrow_mut().push((ul[1], ur[1]));
                out[0] = 0.0;
                out[1] = 0.0;
            };
            step_fv(&mut t, 1e-3, &probe, &[[1, usize::MAX, usize::MAX]]);
        }
        let pairs = seen.borrow();
        // wall interfaces must have opposite-sign var-1 pairs
        assert!(pairs.iter().any(|&(l, r)| (l + r).abs() < 1e-12 && l != 0.0));
    }
}

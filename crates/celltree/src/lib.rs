//! # ablock-celltree — the cell-based tree baseline
//!
//! The comparison structure of the SC'97 *Adaptive Blocks* paper: a
//! quadtree/octree whose nodes are **single cells**. Subdividing keeps the
//! parent node (the region gains two representations, paper Fig. 4), only
//! parent/child links are stored, and neighbor location requires tree
//! traversal — potentially many link follows, and on a parallel machine
//! potentially many messages.
//!
//! This crate exists so the repository can *measure* the paper's claims
//! instead of asserting them:
//!
//! * Fig. 5's left end (time per cell at block size ~1) runs on this tree;
//! * ABL-1 counts traversal hops vs. the block grid's O(1) pointer lookups;
//! * ABL-2 compares cell counts for equal feature resolution.

#![warn(missing_docs)]

pub mod fv;
pub mod tree;

pub use fv::{advection_flux, max_dt, step_fv};
pub use tree::{CellNeighbor, CellNode, CellTree, NodeId, MAX_VARS};

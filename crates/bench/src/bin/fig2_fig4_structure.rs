//! FIG2 + FIG4: the two decomposition drawings, side by side.
//!
//! Figure 2 — an adaptive block decomposition of a 2-D region (one block
//! refined into four children; only leaves exist).
//! Figure 4 — the same region as a cell-based quadtree (parents remain:
//! the refined region has two representations).
//!
//! Prints the structural statistics the paper argues from and writes both
//! drawings as SVG.

use ablock_celltree::CellTree;
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::index::Face;
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};
use ablock_io::{ascii_grid_2d, svg_celltree_2d, svg_grid_2d, Table};

fn main() {
    // ---- Figure 2: adaptive blocks ------------------------------------
    let mut grid = BlockGrid::<2>::new(
        RootLayout::unit([2, 2], Boundary::Outflow),
        GridParams::new([4, 4], 2, 1, 3),
    );
    let id = grid.find(BlockKey::new(0, [0, 1])).unwrap();
    grid.refine(id, Transfer::None).unwrap();
    println!("FIG 2 — adaptive block decomposition (one block refined):\n");
    print!("{}", ascii_grid_2d(&grid, 48));

    let mut t = Table::new(
        "FIG2 statistics: only leaves are stored",
        &["structure", "stored nodes", "leaf cells", "repr. of refined region"],
    );
    t.row(&[
        "adaptive blocks".into(),
        grid.num_blocks().to_string(),
        grid.num_cells().to_string(),
        "1 (children only)".into(),
    ]);

    // ---- Figure 4: the quadtree over the same region ------------------
    // same cell resolution: 8x8 root cells, the upper-left 4x4 refined
    let mut tree = CellTree::<2>::new(RootLayout::unit([8, 8], Boundary::Outflow), 1, 3);
    for id in tree.leaf_ids() {
        let k = tree.node(id).key;
        if k.coords[0] < 4 && k.coords[1] >= 4 {
            tree.refine(id);
        }
    }
    t.row(&[
        "cell-based quadtree".into(),
        tree.num_nodes().to_string(),
        tree.num_leaves().to_string(),
        "2 (parents remain)".into(),
    ]);
    t.print();

    // ---- neighbor-location contrast -----------------------------------
    let mut t2 = Table::new(
        "neighbor location: pointers vs traversal",
        &["structure", "query mechanism", "link follows (measured)"],
    );
    // blocks: one pointer dereference; count = 0 traversal hops
    t2.row(&["adaptive blocks".into(), "stored face pointer".into(), "0".into()]);
    // tree: traverse for every leaf's +x neighbor
    tree.take_hops();
    let mut queries = 0u64;
    for id in tree.leaf_ids() {
        let _ = tree.neighbor(id, Face::new(0, true));
        queries += 1;
    }
    let hops = tree.take_hops();
    t2.row(&[
        "cell-based quadtree".into(),
        "parent/child traversal".into(),
        format!("{:.2} per query", hops as f64 / queries as f64),
    ]);
    t2.print();

    // ---- artifacts -----------------------------------------------------
    let out = std::env::temp_dir();
    std::fs::write(out.join("fig2_blocks.svg"), svg_grid_2d(&grid, 480.0)).unwrap();
    std::fs::write(out.join("fig4_quadtree.svg"), svg_celltree_2d(&tree, 480.0)).unwrap();
    println!("wrote {}/fig2_blocks.svg and fig4_quadtree.svg", out.display());
}

//! TAB-A: the paper's face-neighbor count bound.
//!
//! "For adaptive blocks with at most one level of resolution change
//! between adjacent blocks, there are at most 2^(d−1) blocks sharing a
//! given face. If k levels … as many as 2^(k(d−1))."
//!
//! Prints the formula table and *verifies it constructively*: builds
//! worst-case grids for every (d, k) we support and measures the actual
//! maximum pointer-list length.

use ablock_core::balance::{adapt, Flag};
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::index::{max_face_neighbors, Face};
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};
use ablock_io::Table;

fn worst_case_max<const D: usize>(k: u8) -> usize {
    // two root blocks side by side; refine the right one down k levels
    // along the shared face so the left block's +x face sees the maximum
    let mut roots = [1i64; D];
    roots[0] = 2;
    let m = 4i64 << k; // block extent large enough for nghost * 2^k
    let mut dims = [m; D];
    dims[0] = m;
    let mut g = BlockGrid::<D>::new(
        RootLayout::unit(roots, Boundary::Outflow),
        GridParams::new(dims, 2, 1, k + 1).with_max_jump(k),
    );
    // refine the right root fully k times (all its descendants)
    for _ in 0..k {
        let ids: Vec<_> = g
            .blocks()
            .filter(|(_, n)| {
                // any block inside the right root
                let key = n.key();
                key.at_coarser_level(0) == BlockKey::new(0, {
                    let mut c = [0i64; D];
                    c[0] = 1;
                    c
                })
            })
            .map(|(id, _)| id)
            .collect();
        let flags = ids.into_iter().map(|id| (id, Flag::Refine)).collect();
        adapt(&mut g, &flags, Transfer::None);
    }
    let left = g.find(BlockKey::new(0, [0i64; D])).unwrap();
    g.block(left).face(Face::new(0, true)).ids().len()
}

fn main() {
    let mut t = Table::new(
        "TAB-A: max blocks sharing a face = 2^(k(d-1))",
        &["d", "k", "formula", "measured (worst-case grid)"],
    );
    for (d, k, measured) in [
        (1u32, 1u8, worst_case_max::<1>(1)),
        (1, 2, worst_case_max::<1>(2)),
        (2, 1, worst_case_max::<2>(1)),
        (2, 2, worst_case_max::<2>(2)),
        (3, 1, worst_case_max::<3>(1)),
        (3, 2, worst_case_max::<3>(2)),
    ] {
        let formula = max_face_neighbors(d as usize, k as usize);
        assert_eq!(
            measured, formula,
            "constructed worst case must achieve the bound (d={d}, k={k})"
        );
        t.row(&[
            d.to_string(),
            k.to_string(),
            formula.to_string(),
            measured.to_string(),
        ]);
    }
    t.print();
    println!("every measured worst case achieves the paper's bound exactly.");
}

//! ABL-5: ghost depth vs spatial order.
//!
//! The paper: "For first-order accurate spatial operators only one layer
//! of ghost cells is needed; for so-called higher-resolution methods,
//! more layers of ghost cells are needed." This ablation demonstrates the
//! pairing *numerically*: a smooth advection convergence study showing
//! the first-order scheme (1 ghost layer) converging at O(h) and the
//! MUSCL scheme (2 ghost layers) at ~O(h²), on a multi-block grid where
//! the stencils genuinely cross block faces.

use ablock_core::grid::{BlockGrid, GridParams};
use ablock_core::layout::{Boundary, RootLayout};
use ablock_io::{fmt_g, Table};
use ablock_solver::euler::Euler;
use ablock_solver::kernel::Scheme;
use ablock_solver::problems;
use ablock_solver::stepper::Stepper;
use ablock_solver::SolverConfig;

/// L1 error of advecting a smooth density profile once around a periodic
/// domain split into `nblocks` blocks of `m` cells.
fn advection_error(scheme: Scheme, nghost: i64, nblocks: i64, m: i64) -> f64 {
    let e = Euler::<1>::new(1.4);
    let mut g = BlockGrid::<1>::new(
        RootLayout::unit([nblocks], Boundary::Periodic),
        GridParams::new([m], nghost, 3, 0),
    );
    let width = 0.15;
    problems::set_initial(&mut g, &e, |x, w| {
        w[0] = 1.0 + 0.3 * (-((x[0] - 0.5) / width).powi(2)).exp();
        w[1] = 1.0;
        w[2] = 1.0; // uniform p & u: an exact contact-advection solution
    });
    let mut st = Stepper::new(SolverConfig::new(e.clone(), scheme).with_cfl(0.4));
    st.run_until(&mut g, 0.0, 1.0, None);
    // compare to the exact translated (= initial) profile
    let dims = g.params().block_dims;
    let layout = g.layout().clone();
    let mut err = 0.0;
    let mut n = 0usize;
    for (_, node) in g.blocks() {
        for c in node.field().shape().interior_box().iter() {
            let x = layout.cell_center(node.key(), dims, c)[0];
            let exact = 1.0 + 0.3 * (-((x - 0.5) / width).powi(2)).exp();
            err += (node.field().at(c, 0) - exact).abs();
            n += 1;
        }
    }
    err / n as f64
}

fn main() {
    let mut t = Table::new(
        "ABL-5: smooth advection, L1 error after one period (8 blocks)",
        &["cells", "1st order (ng=1)", "rate", "MUSCL (ng=2)", "rate"],
    );
    let mut prev: Option<(f64, f64)> = None;
    for m in [8i64, 16, 32, 64] {
        let e1 = advection_error(Scheme::first_order(), 1, 8, m);
        let e2 = advection_error(Scheme::muscl_rusanov(), 2, 8, m);
        let (r1, r2) = match prev {
            Some((p1, p2)) => (
                format!("{:.2}", (p1 / e1).log2()),
                format!("{:.2}", (p2 / e2).log2()),
            ),
            None => ("-".into(), "-".into()),
        };
        t.row(&[(8 * m).to_string(), fmt_g(e1), r1, fmt_g(e2), r2]);
        prev = Some((e1, e2));
    }
    t.print();
    println!(
        "paper's pairing confirmed: one ghost layer supports the first-order\n\
         operator (rate -> 1); the high-resolution MUSCL operator needs the\n\
         second layer and converges roughly an order faster. (MUSCL rates sit\n\
         between 1.3 and 2 on this nonlinear system with limiter clipping at\n\
         the pulse extremum — the classical TVD result.)"
    );
}

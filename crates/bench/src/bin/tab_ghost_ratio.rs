//! TAB-B: ghost-to-computational cell ratio versus block size.
//!
//! The paper: blocks "amortize the costs of neighbor pointers (both time
//! and space) over entire arrays, and their ghost cell to computational
//! cell ratio is far superior to other data structures." This binary
//! prints that ratio across block sizes, dimensions, and ghost depths —
//! the storage-side half of the Fig. 5 argument — plus the per-cell
//! pointer overhead of the cell-tree alternative.

use ablock_core::field::FieldShape;
use ablock_io::{fmt_g, Table};

fn main() {
    let mut t = Table::new(
        "TAB-B: ghost cells per computational cell (3-D)",
        &["block", "ng=1", "ng=2", "ng=4"],
    );
    for m in [2i64, 4, 8, 12, 16, 24, 32, 64] {
        let mut row = vec![format!("{m}^3")];
        for ng in [1i64, 2, 4] {
            if m < ng {
                row.push("-".into());
                continue;
            }
            let s = FieldShape::<3>::new([m, m, m], ng, 1);
            row.push(fmt_g(s.ghost_ratio()));
        }
        t.row(&row);
    }
    t.print();
    println!(
        "a cell-based tree stores one node per cell: with 2 ghost layers a 2^3\n\
         block carries {}x its payload in ghosts, a 16^3 block only {:.2}x —\n\
         and a per-cell tree pays pointer+metadata overhead on every cell.\n",
        FieldShape::<3>::new([2, 2, 2], 2, 1).ghost_ratio().round(),
        FieldShape::<3>::new([16, 16, 16], 2, 1).ghost_ratio()
    );

    let mut t2 = Table::new(
        "TAB-B': storage per computational cell (3-D MHD, 8 f64 vars)",
        &["structure", "payload B/cell", "overhead B/cell", "total B/cell"],
    );
    for m in [4i64, 8, 16, 32] {
        let s = FieldShape::<3>::new([m, m, m], 2, 8);
        let payload = 8.0 * 8.0;
        let total = (s.len() * 8) as f64 / s.interior_cells() as f64;
        t2.row(&[
            format!("{m}^3 blocks (ng=2)"),
            fmt_g(payload),
            fmt_g(total - payload),
            fmt_g(total),
        ]);
    }
    // cell-tree node: key (level + 3 coords) + parent + children + slots
    // + 2x [f64;8] data = measured size of CellNode<3>
    let node_bytes = std::mem::size_of::<ablock_celltree::CellNode<3>>() as f64;
    // the tree also keeps internal nodes: ~1/7 extra in 3-D (geometric sum)
    let tree_total = node_bytes * (1.0 + 1.0 / 7.0);
    t2.row(&[
        "cell tree (per-cell nodes)".into(),
        fmt_g(64.0),
        fmt_g(tree_total - 64.0),
        fmt_g(tree_total),
    ]);
    t2.print();

    let mut t3 = Table::new(
        "TAB-B'': ghost ratio by dimension (ng = 2)",
        &["block extent", "d=1", "d=2", "d=3"],
    );
    for m in [4i64, 8, 16, 32] {
        t3.row(&[
            m.to_string(),
            fmt_g(FieldShape::<1>::new([m], 2, 1).ghost_ratio()),
            fmt_g(FieldShape::<2>::new([m, m], 2, 1).ghost_ratio()),
            fmt_g(FieldShape::<3>::new([m, m, m], 2, 1).ghost_ratio()),
        ]);
    }
    t3.print();
}

//! FIG5: time per cell as a function of block size.
//!
//! The motivating measurement of the paper: sweep the cells-per-block
//! parameter for the 3-D ideal-MHD update on a fixed-size domain and
//! report nanoseconds per cell. The paper saw >3× improvement from 2³ to
//! ~16³ and then a plateau, with T3D-cache artifacts at 12³ and 32³ that
//! padding and sub-blocking removed.
//!
//! This harness reproduces:
//! * the block-size sweep (2³ … 32³) with the second-order MHD kernel,
//! * a cell-based-tree reference point (block size 1, first-order kernel
//!   on both structures so the comparison is apples to apples),
//! * the padding ablation at 12³ and the sub-blocking comparison 32³ vs
//!   2×16³ (ABL-6).
//!
//! Run with `--quick` for a fast smoke pass.

use ablock_bench::{measure_ns_per_cell, mhd_grid_3d};
use ablock_celltree::{step_fv, CellTree};
use ablock_core::layout::{Boundary, RootLayout};
use ablock_io::{fmt_g, Table};
use ablock_solver::flux::{numerical_flux, Riemann};
use ablock_solver::kernel::Scheme;
use ablock_solver::mhd::IdealMhd;
use ablock_solver::physics::Physics;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mhd = IdealMhd::new(5.0 / 3.0);
    // hold the domain near 48^3 cells: roots per axis = round(48/m)
    let domain = if quick { 24 } else { 48 };
    let sizes: &[i64] = if quick {
        &[2, 4, 8, 12, 16, 24]
    } else {
        &[2, 4, 6, 8, 12, 16, 24, 32, 48]
    };
    let reps = |m: i64| -> usize {
        if quick {
            1
        } else if m <= 4 {
            2
        } else {
            4
        }
    };

    let mut table = Table::new(
        "FIG5: 3-D ideal MHD (MUSCL + Rusanov), time per cell vs cells per block",
        &["block", "cells/blk", "blocks", "total cells", "ns/cell", "speedup vs 2^3"],
    );
    let mut base_ns = None;
    let mut ns_16 = None;
    for &m in sizes {
        let r = (domain / m).max(1);
        let mut grid = mhd_grid_3d([r, r, r], m, 0, 0);
        let ns = measure_ns_per_cell(&mut grid, &mhd, Scheme::muscl_rusanov(), reps(m));
        let base = *base_ns.get_or_insert(ns);
        if m == 16 {
            ns_16 = Some(ns);
        }
        table.row(&[
            format!("{m}^3"),
            (m * m * m).to_string(),
            grid.num_blocks().to_string(),
            grid.num_cells().to_string(),
            fmt_g(ns),
            format!("{:.2}x", base / ns),
        ]);
    }
    table.print();
    println!(
        "paper claim: >3x improvement from 2^3 toward 16^3, then little further gain.\n"
    );

    // ---- the cell-based tree reference (block size ~ 1) ----------------
    // First order on both structures: the honest octree-vs-block number.
    let tree_n: i64 = if quick { 12 } else { 16 };
    let mut tree = CellTree::<3>::new(
        RootLayout::unit([tree_n, tree_n, tree_n], Boundary::Periodic),
        8,
        2,
    );
    {
        // blast ICs on the tree
        let m2 = mhd.clone();
        let mut w;
        for id in tree.leaf_ids() {
            let x = tree.cell_center(tree.node(id).key);
            let r2: f64 = x.iter().map(|&v| (v - 0.5) * (v - 0.5)).sum();
            w = [0.0; 8];
            w[0] = 1.0;
            w[4] = 0.5 / 2f64.sqrt();
            w[5] = 0.5 / 2f64.sqrt();
            w[7] = if r2 < 0.0625 { 10.0 } else { 0.1 };
            m2.prim_to_cons(&w, &mut tree.node_mut(id).u);
        }
    }
    let mhd_flux = {
        let m2 = mhd.clone();
        move |ul: &[f64], ur: &[f64], dir: usize, out: &mut [f64]| {
            numerical_flux(&m2, Riemann::Rusanov, ul, ur, dir, out);
        }
    };
    let tree_reps = if quick { 1 } else { 3 };
    let t0 = std::time::Instant::now();
    for _ in 0..tree_reps {
        step_fv(&mut tree, 1e-9, &mhd_flux, &[]);
    }
    let tree_ns = t0.elapsed().as_secs_f64() * 1e9 / (tree_reps as f64 * tree.num_leaves() as f64);

    // first-order kernel on blocks for the same comparison
    let r = (domain / 16).max(1);
    let mut g16 = mhd_grid_3d([r, r, r], 16, 0, 0);
    let blk_fo_ns = measure_ns_per_cell(&mut g16, &mhd, Scheme::first_order(), reps(16));

    let mut t2 = Table::new(
        "FIG5 left endpoint: per-cell tree vs 16^3 blocks (both first-order MHD)",
        &["structure", "ns/cell", "slowdown vs blocks"],
    );
    t2.row(&["cell tree (1 cell/node)".into(), fmt_g(tree_ns), format!("{:.1}x", tree_ns / blk_fo_ns)]);
    t2.row(&["16^3 blocks".into(), fmt_g(blk_fo_ns), "1.0x".into()]);
    t2.print();
    println!("paper: the single-cell structure is far slower than even 2^3 blocks.\n");

    // ---- ABL-6: padding and sub-blocking remedies -----------------------
    let mut t3 = Table::new(
        "ABL-6: Fig. 5 remedies (padding at 12^3, sub-blocking 32^3)",
        &["configuration", "ns/cell"],
    );
    let r12 = (domain / 12).max(1);
    for pad in [0i64, 2] {
        let mut g = mhd_grid_3d([r12, r12, r12], 12, pad, 0);
        let ns = measure_ns_per_cell(&mut g, &mhd, Scheme::muscl_rusanov(), reps(12));
        t3.row(&[format!("12^3, pad {pad}"), fmt_g(ns)]);
    }
    if !quick {
        let mut g32 = mhd_grid_3d([1, 1, 1], 32, 0, 0);
        let ns32 = measure_ns_per_cell(&mut g32, &mhd, Scheme::muscl_rusanov(), 3);
        let mut g16b = mhd_grid_3d([2, 2, 2], 16, 0, 0);
        let ns16b = measure_ns_per_cell(&mut g16b, &mhd, Scheme::muscl_rusanov(), 3);
        t3.row(&["1 block of 32^3".into(), fmt_g(ns32)]);
        t3.row(&["8 sub-blocks of 16^3 (same region)".into(), fmt_g(ns16b)]);
    }
    t3.print();
    println!(
        "paper context: the 12^3/32^3 peaks were T3D direct-mapped-cache artifacts;\n\
         on modern associative caches expect the padding/sub-blocking deltas to be small\n\
         (see EXPERIMENTS.md)."
    );
    if let (Some(b), Some(n16)) = (base_ns, ns_16) {
        println!("\nheadline: 2^3 -> 16^3 speedup {:.2}x (paper: > 3x)", b / n16);
    }
}

//! FIG5: time per cell as a function of block size.
//!
//! The motivating measurement of the paper: sweep the cells-per-block
//! parameter for the 3-D ideal-MHD update on a fixed-size domain and
//! report nanoseconds per cell. The paper saw >3× improvement from 2³ to
//! ~16³ and then a plateau, with T3D-cache artifacts at 12³ and 32³ that
//! padding and sub-blocking removed.
//!
//! This harness reproduces:
//! * the block-size sweep (2³ … 32³) with the second-order MHD kernel,
//! * a cell-based-tree reference point (block size 1, first-order kernel
//!   on both structures so the comparison is apples to apples),
//! * the padding ablation at 12³ and the sub-blocking comparison 32³ vs
//!   2×16³ (ABL-6).
//!
//! Since the structure-of-arrays refactor it also prints the recorded
//! pre-refactor AoS baseline next to every measured point, writes the
//! before/after table to `BENCH_fig5.json`, and fails (exit 1) if the
//! median SoA time per cell at 16³ regresses past the AoS baseline —
//! that is the CI smoke gate.
//!
//! Run with `--quick` for a fast smoke pass.

use ablock_bench::{measure_ns_per_cell, measure_ns_per_cell_min, mhd_grid_3d};
use ablock_celltree::{step_fv, CellTree};
use ablock_core::layout::{Boundary, RootLayout};
use ablock_io::{fmt_g, Table};
use ablock_solver::flux::{numerical_flux, Riemann};
use ablock_solver::kernel::Scheme;
use ablock_solver::mhd::IdealMhd;
use ablock_solver::physics::Physics;

/// Pre-refactor baseline: ns per cell measured by this same harness (full
/// run, 48³ domain, identical rep counts) with the old array-of-structures
/// field layout (`idx = cell * nvar + v`), immediately before the
/// structure-of-arrays refactor landed. Frozen here so every rerun reports
/// before/after on the same axis.
const AOS_NS_PER_CELL: &[(i64, f64)] = &[
    (2, 1081.1590),
    (4, 923.8346),
    (6, 524.7803),
    (8, 448.6799),
    (12, 404.1920),
    (16, 393.8130),
    (24, 398.3129),
    (32, 388.4141),
    (48, 424.6038),
];

fn aos_ns(m: i64) -> Option<f64> {
    AOS_NS_PER_CELL.iter().find(|&&(s, _)| s == m).map(|&(_, v)| v)
}

/// `(min, median)` ns/cell over `rounds` independent rounds, each on a
/// freshly built grid. Single samples on a shared host swing by 20–30%
/// (first touch, neighbor load). External interference only ever adds
/// time, so the minimum is the best estimator of the true kernel cost;
/// the median is the conservative statistic the CI gate asserts on.
fn sample_ns(
    rounds: usize,
    reps: usize,
    build: impl Fn() -> ablock_core::grid::BlockGrid<3>,
    phys: &IdealMhd,
    scheme: Scheme,
) -> (f64, f64) {
    let mut samples: Vec<f64> = (0..rounds)
        .map(|_| {
            let mut g = build();
            measure_ns_per_cell_min(&mut g, phys, scheme, reps)
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    (samples[0], samples[rounds / 2])
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mhd = IdealMhd::new(5.0 / 3.0);
    // hold the domain near 48^3 cells: roots per axis = round(48/m)
    let domain = if quick { 24 } else { 48 };
    let sizes: &[i64] = if quick {
        &[2, 4, 8, 12, 16, 24, 32]
    } else {
        &[2, 4, 6, 8, 12, 16, 24, 32, 48]
    };
    let reps = |m: i64| -> usize {
        if quick {
            1
        } else if m <= 4 {
            2
        } else {
            4
        }
    };

    let mut table = Table::new(
        "FIG5: 3-D ideal MHD (MUSCL + Rusanov), time per cell vs cells per block",
        &["block", "blocks", "total cells", "SoA ns/cell", "AoS ns/cell", "vs AoS", "vs 2^3"],
    );
    let mut base_ns = None;
    let mut ns_16 = None;
    // (m, blocks, cells, soa_min_ns, soa_median_ns) per sweep point
    let mut sweep: Vec<(i64, usize, usize, f64, f64)> = Vec::new();
    let rounds = if quick { 1 } else { 5 };
    for &m in sizes {
        let r = (domain / m).max(1);
        let grid = mhd_grid_3d([r, r, r], m, 0, 0);
        let (nb, nc) = (grid.num_blocks(), grid.num_cells());
        drop(grid);
        let (ns, ns_med) = sample_ns(
            rounds,
            reps(m),
            || mhd_grid_3d([r, r, r], m, 0, 0),
            &mhd,
            Scheme::muscl_rusanov(),
        );
        let base = *base_ns.get_or_insert(ns);
        if m == 16 {
            ns_16 = Some(ns);
        }
        sweep.push((m, nb, nc, ns, ns_med));
        let aos = aos_ns(m);
        table.row(&[
            format!("{m}^3"),
            nb.to_string(),
            nc.to_string(),
            fmt_g(ns),
            aos.map_or("-".into(), fmt_g),
            aos.map_or("-".into(), |a| format!("{:.2}x", a / ns)),
            format!("{:.2}x", base / ns),
        ]);
    }
    table.print();
    println!(
        "paper claim: >3x improvement from 2^3 toward 16^3, then little further gain.\n\
         SoA column: min over {rounds} fresh-grid rounds (external load only adds\n\
         time). AoS column: recorded pre-refactor baseline (full-run 48^3 domain;\n\
         the quick sweep runs a 24^3 domain, so compare quick rows loosely).\n"
    );

    // ---- SoA vs AoS gate at 16^3 ---------------------------------------
    // Median of repeated rounds on the full-run configuration (27 blocks
    // of 16^3), regardless of --quick: this is the number the recorded
    // AoS baseline used, and the CI smoke asserts it does not regress.
    let gate_rounds = 5;
    let gate_reps = if quick { 2 } else { 4 };
    let (soa_16_min, soa_16_median) = sample_ns(
        gate_rounds,
        gate_reps,
        || mhd_grid_3d([3, 3, 3], 16, 0, 0),
        &mhd,
        Scheme::muscl_rusanov(),
    );
    let aos_16 = aos_ns(16).unwrap();
    println!(
        "16^3 gate: SoA median {} / min {} ns/cell over {gate_rounds} rounds \
         (AoS baseline {}, median speedup {:.2}x)\n",
        fmt_g(soa_16_median),
        fmt_g(soa_16_min),
        fmt_g(aos_16),
        aos_16 / soa_16_median,
    );

    // ---- the cell-based tree reference (block size ~ 1) ----------------
    // First order on both structures: the honest octree-vs-block number.
    let tree_n: i64 = if quick { 12 } else { 16 };
    let mut tree = CellTree::<3>::new(
        RootLayout::unit([tree_n, tree_n, tree_n], Boundary::Periodic),
        8,
        2,
    );
    {
        // blast ICs on the tree
        let m2 = mhd.clone();
        let mut w;
        for id in tree.leaf_ids() {
            let x = tree.cell_center(tree.node(id).key);
            let r2: f64 = x.iter().map(|&v| (v - 0.5) * (v - 0.5)).sum();
            w = [0.0; 8];
            w[0] = 1.0;
            w[4] = 0.5 / 2f64.sqrt();
            w[5] = 0.5 / 2f64.sqrt();
            w[7] = if r2 < 0.0625 { 10.0 } else { 0.1 };
            m2.prim_to_cons(&w, &mut tree.node_mut(id).u);
        }
    }
    let mhd_flux = {
        let m2 = mhd.clone();
        move |ul: &[f64], ur: &[f64], dir: usize, out: &mut [f64]| {
            numerical_flux(&m2, Riemann::Rusanov, ul, ur, dir, out);
        }
    };
    let tree_reps = if quick { 1 } else { 3 };
    let t0 = std::time::Instant::now();
    for _ in 0..tree_reps {
        step_fv(&mut tree, 1e-9, &mhd_flux, &[]);
    }
    let tree_ns = t0.elapsed().as_secs_f64() * 1e9 / (tree_reps as f64 * tree.num_leaves() as f64);

    // first-order kernel on blocks for the same comparison
    let r = (domain / 16).max(1);
    let mut g16 = mhd_grid_3d([r, r, r], 16, 0, 0);
    let blk_fo_ns = measure_ns_per_cell(&mut g16, &mhd, Scheme::first_order(), reps(16));

    let mut t2 = Table::new(
        "FIG5 left endpoint: per-cell tree vs 16^3 blocks (both first-order MHD)",
        &["structure", "ns/cell", "slowdown vs blocks"],
    );
    t2.row(&["cell tree (1 cell/node)".into(), fmt_g(tree_ns), format!("{:.1}x", tree_ns / blk_fo_ns)]);
    t2.row(&["16^3 blocks".into(), fmt_g(blk_fo_ns), "1.0x".into()]);
    t2.print();
    println!("paper: the single-cell structure is far slower than even 2^3 blocks.\n");

    // ---- ABL-6: padding and sub-blocking remedies -----------------------
    let mut t3 = Table::new(
        "ABL-6: Fig. 5 remedies (padding at 12^3, sub-blocking 32^3)",
        &["configuration", "ns/cell"],
    );
    let r12 = (domain / 12).max(1);
    let remedy_rounds = if quick { 1 } else { 3 };
    for pad in [0i64, 2] {
        let (_, ns) = sample_ns(
            remedy_rounds,
            reps(12),
            || mhd_grid_3d([r12, r12, r12], 12, pad, 0),
            &mhd,
            Scheme::muscl_rusanov(),
        );
        t3.row(&[format!("12^3, pad {pad}"), fmt_g(ns)]);
    }
    if !quick {
        let (_, ns32) = sample_ns(
            remedy_rounds,
            3,
            || mhd_grid_3d([1, 1, 1], 32, 0, 0),
            &mhd,
            Scheme::muscl_rusanov(),
        );
        let (_, ns16b) = sample_ns(
            remedy_rounds,
            3,
            || mhd_grid_3d([2, 2, 2], 16, 0, 0),
            &mhd,
            Scheme::muscl_rusanov(),
        );
        t3.row(&["1 block of 32^3".into(), fmt_g(ns32)]);
        t3.row(&["8 sub-blocks of 16^3 (same region)".into(), fmt_g(ns16b)]);
    }
    t3.print();
    println!(
        "paper context: the 12^3/32^3 peaks were T3D direct-mapped-cache artifacts;\n\
         on modern associative caches expect the padding/sub-blocking deltas to be small\n\
         (see EXPERIMENTS.md)."
    );
    if let (Some(b), Some(n16)) = (base_ns, ns_16) {
        println!("\nheadline: 2^3 -> 16^3 speedup {:.2}x (paper: > 3x)", b / n16);
    }

    // ---- export + gate ---------------------------------------------------
    let points: Vec<String> = sweep
        .iter()
        .map(|&(m, blocks, cells, ns, ns_med)| {
            let aos = aos_ns(m)
                .map_or("null".into(), |a| format!("{a:.4}"));
            format!(
                "{{\"m\": {m}, \"blocks\": {blocks}, \"cells\": {cells}, \
                 \"soa_ns_per_cell\": {ns:.4}, \"soa_median_ns_per_cell\": {ns_med:.4}, \
                 \"aos_ns_per_cell\": {aos}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\n\"quick\": {quick},\n\"domain\": {domain},\n\"sweep_rounds\": {rounds},\n\
         \"scheme\": \"muscl_rusanov 3-D ideal MHD\",\n\
         \"aos_baseline\": \"pre-SoA-refactor full run, 48^3 domain, same harness\",\n\
         \"sweep\": [\n{}\n],\n\
         \"gate_16\": {{\"soa_median_ns_per_cell\": {soa_16_median:.4}, \
         \"soa_min_ns_per_cell\": {soa_16_min:.4}, \
         \"aos_ns_per_cell\": {aos_16:.4}, \
         \"speedup\": {:.4}, \"rounds\": {gate_rounds}, \"reps\": {gate_reps}}}\n}}\n",
        points.join(",\n"),
        aos_16 / soa_16_median,
    );
    std::fs::write("BENCH_fig5.json", &json).expect("write BENCH_fig5.json");
    println!("wrote BENCH_fig5.json ({} bytes)", json.len());

    if soa_16_median > aos_16 {
        eprintln!(
            "FAIL: SoA median at 16^3 ({soa_16_median:.4} ns/cell) is slower than \
             the recorded AoS baseline ({aos_16:.4} ns/cell)"
        );
        std::process::exit(1);
    }
}

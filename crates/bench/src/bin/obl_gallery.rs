//! OBL gallery: immersed-boundary scenarios end to end (DESIGN.md §18).
//!
//! Four classic embedded-geometry configurations run through the full
//! masked pipeline — SDF geometry installed on the layout, solid masks
//! binarized per block, [`GeometryCriterion`]-driven refinement to the
//! boundary, subcycled refluxed stepping with reflective-wall fluxes:
//!
//! 1. **cylinder**  — circular cylinder in a wind tunnel (Euler; inflow
//!    state swept out through `Outflow` x-faces, `Reflect` tunnel walls);
//! 2. **blunt_body** — sphere-nosed blunt body in a supersonic stream
//!    (Euler, same tunnel boundaries);
//! 3. **channel**   — periodic channel with three staggered cylindrical
//!    obstacles (Euler; mass and energy conserve exactly);
//! 4. **mhd_vortex** — Orszag–Tang vortex around a central cylinder
//!    (ideal MHD, fully periodic; mass and energy conserve exactly).
//!
//! Acceptance per scenario: every leaf the solid boundary provably
//! crosses (SDF sign change on the cell-corner lattice) sits at
//! `max_level`; the far field keeps coarse level-0 blocks; the state
//! stays finite; and where all boundaries are walls or periodic, fluid
//! mass and energy hold to roundoff. Each scenario emits a VTK resample
//! (`GALLERY_<name>.vtk`), a density render (`GALLERY_<name>.ppm`), and
//! a block-structure SVG (`GALLERY_<name>_blocks.svg`); the metrics land
//! in `BENCH_gallery.json`. `--quick` shrinks the step counts for CI.

use std::fmt::Write as _;
use std::time::Instant;

use ablock_amr::{flag_blocks, GeometryCriterion};
use ablock_core::balance::{adapt, Flag};
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::layout::{Boundary, RootLayout};
use ablock_core::ops::ProlongOrder;
use ablock_core::verify::check_grid;
use ablock_io::{sample_2d, to_ppm, vtk_uniform_2d, Table};
use ablock_solver::{
    problems, total_conserved_fluid, Euler, Geometry, IdealMhd, Physics, Scheme, SolverConfig,
    Stepper, TimeStepMode,
};

const MAX_LEVEL: u8 = 2;
const RENDER: usize = 256;

/// Ground-truth straddle check, independent of the criterion's
/// center+half-diagonal bound: the SDF changes sign on the block's
/// cell-corner lattice.
fn provably_straddles(g: &BlockGrid<2>, id: ablock_core::arena::BlockId) -> bool {
    let geom = g.layout().geometry.as_ref().expect("geometry installed");
    let node = g.block(id);
    let m = g.params().block_dims;
    let o = g.layout().block_origin(node.key(), m);
    let h = g.layout().cell_size(node.key().level, m);
    let (mut neg, mut pos) = (false, false);
    for i in 0..=m[0] {
        for j in 0..=m[1] {
            let sd = geom.sd([o[0] + h[0] * i as f64, o[1] + h[1] * j as f64]);
            if sd < 0.0 {
                neg = true;
            } else if sd > 0.0 {
                pos = true;
            }
        }
    }
    neg && pos
}

struct Report {
    name: &'static str,
    blocks: [usize; 3],
    cells: usize,
    solid_cells: usize,
    steps: usize,
    t_end: f64,
    wall_ms: f64,
    /// Relative drift of fluid (mass, energy); `None` when an `Outflow`
    /// face legitimately sweeps material out of the domain.
    drift: Option<(f64, f64)>,
}

fn count_solid(g: &BlockGrid<2>) -> usize {
    let mut n = 0;
    for (_, node) in g.blocks() {
        let f = node.field();
        if f.mask().is_none() {
            continue;
        }
        n += f.shape().interior_box().iter().filter(|&c| f.is_solid(c)).count();
    }
    n
}

/// Drive the geometry criterion to its fixed point, then assert the
/// gallery acceptance: boundary at `max_level`, far field still coarse.
fn refine_to_boundary(g: &mut BlockGrid<2>, name: &str) -> [usize; 3] {
    let c = GeometryCriterion::to_max_level(g);
    for _ in 0..=MAX_LEVEL {
        let flags = flag_blocks(g, &c);
        if !flags.values().any(|f| *f == Flag::Refine) {
            break;
        }
        adapt(g, &flags, Transfer::Conservative(ProlongOrder::LinearMinmod));
    }
    check_grid(g).unwrap();
    let mut blocks = [0usize; 3];
    for (id, node) in g.blocks() {
        blocks[node.key().level as usize] += 1;
        if provably_straddles(g, id) {
            assert_eq!(
                node.key().level,
                MAX_LEVEL,
                "{name}: boundary-straddling block {:?} not at max level",
                node.key()
            );
        }
    }
    assert!(blocks[0] > 0, "{name}: far field lost all coarse blocks: {blocks:?}");
    assert!(blocks[MAX_LEVEL as usize] > 0, "{name}: no blocks refined to the boundary");
    blocks
}

fn run_scenario<P: Physics>(
    name: &'static str,
    mut g: BlockGrid<2>,
    phys: P,
    conserves: bool,
    cycles: usize,
) -> Report {
    let blocks = refine_to_boundary(&mut g, name);
    let solid_cells = count_solid(&g);
    assert!(solid_cells > 0, "{name}: geometry must cut solid cells");
    let cells = g.num_cells();
    let geom = g.layout().geometry.clone().expect("geometry installed");
    let mut st: Stepper<2, P> = Stepper::new(
        SolverConfig::new(phys, Scheme::muscl_rusanov())
            .with_refluxing(true)
            .with_time_step_mode(TimeStepMode::Subcycled)
            .with_geometry(geom)
            .with_cfl(0.4),
    );
    let nvar = g.params().nvar;
    let (m0, e0) = (total_conserved_fluid(&g, 0), total_conserved_fluid(&g, nvar - 1));
    let t0 = Instant::now();
    let mut t_end = 0.0;
    for _ in 0..cycles {
        let dt = st.stable_dt(&mut g);
        st.step(&mut g, dt, None);
        t_end += dt;
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    check_grid(&g).unwrap();
    for (_, node) in g.blocks() {
        let f = node.field();
        for c in f.shape().interior_box().iter() {
            for v in 0..nvar {
                assert!(
                    f.at(c, v).is_finite(),
                    "{name}: non-finite state at {c:?} var {v} after {cycles} cycles"
                );
            }
        }
    }
    let drift = if conserves {
        let dm = (total_conserved_fluid(&g, 0) - m0).abs() / m0.abs();
        let de = (total_conserved_fluid(&g, nvar - 1) - e0).abs() / e0.abs();
        assert!(dm < 1e-10, "{name}: fluid mass drifted by {dm:.3e}");
        assert!(de < 1e-10, "{name}: fluid energy drifted by {de:.3e}");
        Some((dm, de))
    } else {
        None
    };
    // renders: density resample, PPM heat map, block-structure SVG
    std::fs::write(format!("GALLERY_{name}.vtk"), vtk_uniform_2d(&g, 0, "rho", RENDER))
        .expect("write vtk");
    let img = sample_2d(&g, 0, RENDER, RENDER);
    std::fs::write(format!("GALLERY_{name}.ppm"), to_ppm(&img, RENDER, RENDER))
        .expect("write ppm");
    std::fs::write(format!("GALLERY_{name}_blocks.svg"), ablock_io::svg_grid_2d(&g, 640.0))
        .expect("write svg");
    Report { name, blocks, cells, solid_cells, steps: cycles, t_end, wall_ms, drift }
}

/// Circular cylinder in a wind tunnel: subsonic stream enters from the
/// left initial state and sweeps out through `Outflow` x-faces between
/// `Reflect` tunnel walls.
fn cylinder(cycles: usize) -> Report {
    let geom = Geometry::cylinder(2, [0.35, 0.5, 0.0], 0.09);
    let layout = RootLayout::unit([4, 4], Boundary::Outflow)
        .with_axis_boundary(1, Boundary::Reflect)
        .with_geometry(geom);
    let e = Euler::<2>::new(1.4);
    let mut g = BlockGrid::new(layout, GridParams::new([8, 8], 2, 4, MAX_LEVEL));
    problems::set_initial(&mut g, &e, |_, w| {
        w[0] = 1.0;
        w[1] = 0.6;
        w[3] = 1.0;
    });
    run_scenario("cylinder", g, e, false, cycles)
}

/// Sphere-nosed blunt body (nose + rectangular after-body) in a
/// supersonic stream.
fn blunt_body(cycles: usize) -> Report {
    let geom = Geometry::sphere([0.55, 0.5, 0.0], 0.12)
        .union(Geometry::cuboid([0.55, 0.39, -1.0], [0.92, 0.61, 2.0]));
    let layout = RootLayout::unit([4, 4], Boundary::Outflow)
        .with_axis_boundary(1, Boundary::Reflect)
        .with_geometry(geom);
    let e = Euler::<2>::new(1.4);
    let mut g = BlockGrid::new(layout, GridParams::new([8, 8], 2, 4, MAX_LEVEL));
    problems::set_initial(&mut g, &e, |_, w| {
        w[0] = 1.0;
        w[1] = 1.3;
        w[3] = 1.0;
    });
    run_scenario("blunt_body", g, e, false, cycles)
}

/// Periodic channel with three staggered cylindrical obstacles: every
/// face is periodic or a wall, so fluid mass and energy conserve to
/// roundoff.
fn channel(cycles: usize) -> Report {
    let geom = Geometry::cylinder(2, [0.2, 0.3, 0.0], 0.08)
        .union(Geometry::cylinder(2, [0.5, 0.7, 0.0], 0.08))
        .union(Geometry::cylinder(2, [0.8, 0.35, 0.0], 0.08));
    let layout = RootLayout::unit([4, 4], Boundary::Periodic)
        .with_axis_boundary(1, Boundary::Reflect)
        .with_geometry(geom);
    let e = Euler::<2>::new(1.4);
    let mut g = BlockGrid::new(layout, GridParams::new([8, 8], 2, 4, MAX_LEVEL));
    problems::set_initial(&mut g, &e, |_, w| {
        w[0] = 1.0;
        w[1] = 0.5;
        w[3] = 1.0;
    });
    run_scenario("channel", g, e, true, cycles)
}

/// Orszag–Tang MHD vortex around a central cylinder, fully periodic:
/// the wall flux mirrors momentum *and* magnetic field, so mass and
/// energy still conserve to roundoff. The Powell 8-wave source is
/// disabled here — its `−(∇·B)(u·B)` energy term is non-conservative
/// exactly where the immersed wall generates ∇·B — leaving the pure
/// flux-form scheme, which conserves.
fn mhd_vortex(cycles: usize) -> Report {
    let geom = Geometry::cylinder(2, [0.5, 0.5, 0.0], 0.14);
    let layout = RootLayout::unit([4, 4], Boundary::Periodic).with_geometry(geom);
    let mut m = IdealMhd::new(5.0 / 3.0);
    m.powell = false;
    let mut g = BlockGrid::new(layout, GridParams::new([8, 8], 2, 8, MAX_LEVEL));
    problems::orszag_tang(&mut g, &m);
    run_scenario("mhd_vortex", g, m, true, cycles)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cycles = if quick { 5 } else { 30 };

    let reports = [
        cylinder(cycles),
        blunt_body(cycles),
        channel(cycles),
        mhd_vortex(cycles),
    ];

    let mut t = Table::new(
        "OBL gallery: immersed geometries through the masked pipeline",
        &["scenario", "blocks l0/l1/l2", "cells", "solid", "cycles", "T", "wall ms", "d(mass)"],
    );
    for r in &reports {
        t.row(&[
            r.name.into(),
            format!("{}/{}/{}", r.blocks[0], r.blocks[1], r.blocks[2]),
            r.cells.to_string(),
            r.solid_cells.to_string(),
            r.steps.to_string(),
            format!("{:.3e}", r.t_end),
            format!("{:.1}", r.wall_ms),
            r.drift.map_or("outflow".into(), |(dm, _)| format!("{dm:.2e}")),
        ]);
    }
    t.print();

    let mut json = String::from("{\n\"scenarios\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let (dm, de) = r.drift.map_or((-1.0, -1.0), |d| d);
        write!(
            json,
            "{{\"name\": \"{}\", \"blocks_lvl0\": {}, \"blocks_lvl1\": {}, \
             \"blocks_lvl2\": {}, \"cells\": {}, \"solid_cells\": {}, \
             \"cycles\": {}, \"t_end\": {:.9e}, \"wall_ms\": {:.3}, \
             \"mass_drift\": {dm:.6e}, \"energy_drift\": {de:.6e}}}{}",
            r.name,
            r.blocks[0],
            r.blocks[1],
            r.blocks[2],
            r.cells,
            r.solid_cells,
            r.steps,
            r.t_end,
            r.wall_ms,
            if i + 1 < reports.len() { ",\n" } else { "\n" }
        )
        .expect("string write");
    }
    json.push_str("]\n}\n");
    std::fs::write("BENCH_gallery.json", &json).expect("write gallery JSON");
    println!(
        "\nwrote BENCH_gallery.json plus GALLERY_<name>.vtk/.ppm/_blocks.svg for {} scenarios",
        reports.len()
    );
}

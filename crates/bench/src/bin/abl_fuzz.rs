//! Bounded fuzz smoke driver for CI (DESIGN.md §12): run the stateful
//! grid fuzzer for a fixed budget of seeded command sequences across
//! D ∈ {2, 3}, and on failure write the shrunk script to
//! `fuzz-failure.txt` (uploaded as a CI artifact) and exit nonzero.
//!
//! Modes:
//!
//! * `abl_fuzz [--quick]` — run the sweep (quick: ~700 2-D + ~400 3-D
//!   sequences; full: 4x that). Seeds are fixed, so CI runs are
//!   reproducible by construction.
//! * `abl_fuzz --replay D SEED 'SCRIPT'` — re-execute one failing case
//!   exactly as printed in a failure's replay line.
//! * `abl_fuzz --subcycle-smoke` — 200 fixed-seed sequences (100 per
//!   dimension) biased toward interleaved subcycled (`T`) and global
//!   (`S`) steps on evolving hierarchies; failures print the standard
//!   `--replay` line.
//! * `abl_fuzz --masked-smoke` — a dedicated masked-world budget (~300
//!   2-D + ~150 3-D sequences): every script opens with a seed-derived
//!   `G` command, so all adapts, steps, checkpoints, and conservation
//!   oracles run against an installed immersed geometry.

use std::process::ExitCode;

use ablock_testkit::{
    format_script, parse_script, run_fuzz, run_script, subseed, FuzzCmd, FuzzConfig,
    FuzzFailure, FuzzOutcome, Rng,
};

const SEED_2D: u64 = 0x5EED_0040;
const SEED_3D: u64 = 0x5EED_0041;

fn parse_seed(s: &str) -> Result<u64, String> {
    let t = s.trim();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map_err(|e| format!("bad hex seed {t:?}: {e}"))
    } else {
        t.parse().map_err(|e| format!("bad seed {t:?}: {e}"))
    }
}

fn report_failure(f: &FuzzFailure) -> ExitCode {
    eprintln!("FUZZ FAILURE (D={}, seed {:#018x})", f.dim, f.seed);
    eprintln!("  error:  {}", f.error);
    eprintln!("  script: {}", f.script);
    eprintln!("  shrunk: {} ({} command(s))", f.shrunk, f.shrunk_len);
    eprintln!("  replay: {}", f.replay);
    let artifact = format!(
        "dim: {}\nseed: {:#018x}\nerror: {}\nscript: {}\nshrunk: {}\nreplay: {}\n",
        f.dim, f.seed, f.error, f.script, f.shrunk, f.replay
    );
    if let Err(e) = std::fs::write("fuzz-failure.txt", artifact) {
        eprintln!("  (could not write fuzz-failure.txt: {e})");
    } else {
        eprintln!("  wrote fuzz-failure.txt");
    }
    ExitCode::FAILURE
}

fn replay(args: &[String]) -> ExitCode {
    let [dim, seed, script] = args else {
        eprintln!("usage: abl_fuzz --replay D SEED 'SCRIPT'");
        return ExitCode::FAILURE;
    };
    let seed = match parse_seed(seed) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let cmds = match parse_script(script) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bad script: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match dim.as_str() {
        "2" => run_script::<2>(seed, &cmds),
        "3" => run_script::<3>(seed, &cmds),
        other => {
            eprintln!("unsupported dimension {other:?} (expected 2 or 3)");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => {
            println!("replay D={dim} seed {seed:#018x}: {} command(s) passed", cmds.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("replay D={dim} seed {seed:#018x} FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

fn sweep(quick: bool) -> ExitCode {
    // quick: >= 1000 sequences total (the ISSUE floor); full: 4x
    let scale = if quick { 1 } else { 4 };
    let mut total_seq = 0u64;
    let mut total_cmds = 0u64;

    let cfg2 = FuzzConfig { max_cmds: 24, ..FuzzConfig::quick(700 * scale, SEED_2D) };
    match run_fuzz::<2>(&cfg2) {
        FuzzOutcome::Pass { sequences, commands } => {
            println!("D=2: {sequences} sequences, {commands} commands — ok");
            total_seq += sequences;
            total_cmds += commands;
        }
        FuzzOutcome::Fail(f) => return report_failure(&f),
    }

    let cfg3 = FuzzConfig { max_cmds: 16, ..FuzzConfig::quick(400 * scale, SEED_3D) };
    match run_fuzz::<3>(&cfg3) {
        FuzzOutcome::Pass { sequences, commands } => {
            println!("D=3: {sequences} sequences, {commands} commands — ok");
            total_seq += sequences;
            total_cmds += commands;
        }
        FuzzOutcome::Fail(f) => return report_failure(&f),
    }

    println!("fuzz sweep clean: {total_seq} sequences, {total_cmds} commands");
    ExitCode::SUCCESS
}

/// Dedicated masked-world budget: every sequence opens with a `G` command
/// so the full oracle stack (mask invariants, frozen solid bits, fluid
/// conservation, checkpoint round-trips) runs against immersed geometry.
fn masked_smoke() -> ExitCode {
    let mut total_seq = 0u64;
    let mut total_cmds = 0u64;
    let cfg2 = FuzzConfig { masked: true, ..FuzzConfig::quick(300, 0x5EED_0070) };
    match run_fuzz::<2>(&cfg2) {
        FuzzOutcome::Pass { sequences, commands } => {
            println!("masked D=2: {sequences} sequences, {commands} commands — ok");
            total_seq += sequences;
            total_cmds += commands;
        }
        FuzzOutcome::Fail(f) => return report_failure(&f),
    }
    let cfg3 = FuzzConfig { masked: true, max_cmds: 16, ..FuzzConfig::quick(150, 0x5EED_0071) };
    match run_fuzz::<3>(&cfg3) {
        FuzzOutcome::Pass { sequences, commands } => {
            println!("masked D=3: {sequences} sequences, {commands} commands — ok");
            total_seq += sequences;
            total_cmds += commands;
        }
        FuzzOutcome::Fail(f) => return report_failure(&f),
    }
    println!("masked smoke clean: {total_seq} sequences, {total_cmds} commands");
    ExitCode::SUCCESS
}

/// 200 fixed-seed sequences dominated by interleaved `T` (subcycled) and
/// `S` (global) steps: both cached steppers and their differential
/// oracles (flat finest-dt reference, conservation, bitwise single-level
/// reduction) run against the *same* evolving grid, with adapts,
/// refines, and checkpoint cuts mixed in to force plan-cache rebuilds.
fn subcycle_smoke() -> ExitCode {
    const CASES_PER_DIM: u64 = 100;
    let mut total_cmds = 0u64;
    for dim in [2usize, 3] {
        let base = if dim == 2 { SEED_2D } else { SEED_3D } ^ 0x5B5B;
        for i in 0..CASES_PER_DIM {
            let seed = subseed(base, i);
            let mut rng = Rng::new(seed);
            let mut script = vec![FuzzCmd::Adapt { seed: rng.next_u64(), density: 40 }];
            for _ in 0..rng.usize_in(8, 14) {
                let x = rng.f64();
                script.push(if x < 0.35 {
                    FuzzCmd::StepSub
                } else if x < 0.65 {
                    FuzzCmd::Step
                } else if x < 0.80 {
                    FuzzCmd::Adapt {
                        seed: rng.next_u64(),
                        density: rng.usize_in(10, 60) as u8,
                    }
                } else if x < 0.90 {
                    FuzzCmd::Refine(rng.next_u64())
                } else {
                    FuzzCmd::Checkpoint
                });
            }
            let result = if dim == 2 {
                run_script::<2>(seed, &script)
            } else {
                run_script::<3>(seed, &script)
            };
            if let Err(e) = result {
                eprintln!("subcycle smoke D={dim} seed {seed:#018x} FAILED: {e}");
                eprintln!(
                    "  replay: cargo run --release -p ablock-bench --bin abl_fuzz -- \
                     --replay {dim} {seed:#x} '{}'",
                    format_script(&script)
                );
                return ExitCode::FAILURE;
            }
            total_cmds += script.len() as u64;
        }
    }
    println!(
        "subcycle smoke clean: {} mixed T/S sequences, {total_cmds} commands",
        2 * CASES_PER_DIM
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--replay") {
        return replay(&args[pos + 1..]);
    }
    if args.iter().any(|a| a == "--subcycle-smoke") {
        return subcycle_smoke();
    }
    if args.iter().any(|a| a == "--masked-smoke") {
        return masked_smoke();
    }
    let quick = args.iter().any(|a| a == "--quick");
    sweep(quick)
}

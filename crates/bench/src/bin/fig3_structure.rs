//! FIG3: a three-dimensional adaptive block decomposition.
//!
//! Builds a 3-D grid refined around a spherical shell (the solar-wind
//! style refinement of the paper's Figure 3), prints its composition, and
//! verifies the structural invariants at scale.

use ablock_core::balance::refine_ball_to_level;
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::index::Face;
use ablock_core::layout::{Boundary, RootLayout};
use ablock_core::verify;
use ablock_io::Table;

fn main() {
    let mut grid = BlockGrid::<3>::new(
        RootLayout::unit([2, 2, 2], Boundary::Outflow),
        GridParams::new([8, 8, 8], 2, 1, 3),
    );
    // refine a spherical shell: blocks intersecting the sphere r = 0.35
    for target in 1..=3u8 {
        let mut flags = std::collections::HashMap::new();
        for (id, node) in grid.blocks() {
            let key = node.key();
            if key.level != target - 1 {
                continue;
            }
            let m = grid.params().block_dims;
            let o = grid.layout().block_origin(key, m);
            let h = grid.layout().cell_size(key.level, m);
            // distance range of the block's box from the center
            let c: [f64; 3] = [0.5, 0.5, 0.5];
            let mut lo2 = 0.0f64;
            let mut hi2 = 0.0f64;
            for d in 0..3 {
                let lo = o[d];
                let hi = o[d] + h[d] * m[d] as f64;
                let near = c[d].clamp(lo, hi) - c[d];
                let far = if (c[d] - lo).abs() > (c[d] - hi).abs() { lo - c[d] } else { hi - c[d] };
                lo2 += near * near;
                hi2 += far * far;
            }
            let r = 0.35;
            if lo2.sqrt() <= r && hi2.sqrt() >= r {
                flags.insert(id, ablock_core::balance::Flag::Refine);
            }
        }
        ablock_core::balance::adapt(&mut grid, &flags, Transfer::None);
    }
    // also resolve the "inner boundary" ball like the heliosphere runs
    refine_ball_to_level(&mut grid, [0.5, 0.5, 0.5], 0.08, 3, Transfer::None);

    verify::check_grid(&grid).expect("invariants at scale");

    let hist = grid.level_histogram();
    let mut t = Table::new(
        "FIG3: 3-D block decomposition refined on a spherical shell",
        &["level", "blocks", "cells", "cell width"],
    );
    for (level, &n) in hist.iter().enumerate() {
        let h = grid
            .layout()
            .cell_size(level as u8, grid.params().block_dims)[0];
        t.row(&[
            level.to_string(),
            n.to_string(),
            (n * 512).to_string(),
            format!("{h:.5}"),
        ]);
    }
    t.print();

    let uniform = (8 * 512usize) << (3 * grid.max_level_present() as usize);
    println!(
        "total: {} blocks, {} cells; uniform grid at the finest level would need {} cells ({}x)",
        grid.num_blocks(),
        grid.num_cells(),
        uniform,
        uniform / grid.num_cells().max(1),
    );

    // face-neighbor census (paper: at most 2^(d-1) = 4 per face with 2:1)
    let mut max_per_face = 0usize;
    let mut total_conns = 0usize;
    for (_, node) in grid.blocks() {
        for f in Face::all::<3>() {
            let n = node.face(f).ids().len();
            max_per_face = max_per_face.max(n);
            total_conns += n;
        }
    }
    println!(
        "face-neighbor census: max {} per face (bound 2^(d-1) = 4), {} pointers total",
        max_per_face, total_conns
    );
    assert!(max_per_face <= 4);
}

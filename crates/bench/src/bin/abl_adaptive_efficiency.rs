//! ABL-2: adaptive efficiency — cells allocated by each structure for the
//! same feature resolution.
//!
//! The paper concedes blocks can over-refine: "Excessive numbers of
//! refined cells can be created (i.e., typically more than the
//! corresponding number of cells used in cell-based tree data
//! structures)". This ablation quantifies the trade: resolve a spherical
//! front to a target level with (a) adaptive blocks at several block
//! sizes, (b) a cell-based tree, (c) a uniform grid, and count cells.

use ablock_celltree::CellTree;
use ablock_core::balance::refine_ball_to_level;
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::layout::{Boundary, RootLayout};
use ablock_io::Table;

/// Refine tree cells intersecting the sphere of radius `r` down to level
/// `target`, with 2:1 balancing.
fn refine_tree_on_sphere(tree: &mut CellTree<2>, center: [f64; 2], r: f64, target: u8) {
    loop {
        let mut any = false;
        for id in tree.leaf_ids() {
            let n = tree.node(id);
            if n.key.level >= target {
                continue;
            }
            let h = tree.cell_size(n.key.level);
            let o = tree.layout().block_origin(n.key, [1, 1]);
            // box-sphere intersection test on the shell
            let mut lo2 = 0.0;
            let mut hi2 = 0.0;
            for d in 0..2 {
                let (lo, hi) = (o[d], o[d] + h[d]);
                let near = center[d].clamp(lo, hi) - center[d];
                let far = if (center[d] - lo).abs() > (center[d] - hi).abs() {
                    lo - center[d]
                } else {
                    hi - center[d]
                };
                lo2 += near * near;
                hi2 += far * far;
            }
            if lo2.sqrt() <= r && hi2.sqrt() >= r {
                tree.refine(id);
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    tree.balance_21();
}

fn main() {
    let target = 4u8;
    let r = 0.3;
    let center = [0.5, 0.5];

    let mut t = Table::new(
        "ABL-2: cells needed to resolve a circular front to level 4",
        &["structure", "leaf cells", "vs tree", "finest h"],
    );

    // cell-based tree: 8x8 root cells
    let mut tree = CellTree::<2>::new(RootLayout::unit([8, 8], Boundary::Outflow), 1, target);
    refine_tree_on_sphere(&mut tree, center, r, target);
    let tree_cells = tree.num_leaves();
    let h_fine = 1.0 / (8 << target) as f64;

    // adaptive blocks at several block sizes (same finest cell width):
    // root lattice x block dims x 2^levels == 8 * 2^4 cells per side
    for (m, roots, levels) in [(4i64, 2i64, target), (8, 1, target), (16, 2, target - 2)] {
        let mut g = BlockGrid::<2>::new(
            RootLayout::unit([roots, roots], Boundary::Outflow),
            GridParams::new([m, m], 2, 1, levels),
        );
        // sanity: finest cell width matches the tree's
        let h = g.layout().cell_size(levels, [m, m])[0];
        assert!((h - h_fine).abs() < 1e-12, "resolution mismatch: {h} vs {h_fine}");
        // refine blocks touching the circle to the target level
        loop {
            let mut flags = std::collections::HashMap::new();
            for (id, node) in g.blocks() {
                let key = node.key();
                if key.level >= levels {
                    continue;
                }
                let dims = g.params().block_dims;
                let o = g.layout().block_origin(key, dims);
                let hh = g.layout().cell_size(key.level, dims);
                let mut lo2 = 0.0;
                let mut hi2 = 0.0;
                for d in 0..2 {
                    let (lo, hi) = (o[d], o[d] + hh[d] * dims[d] as f64);
                    let near = center[d].clamp(lo, hi) - center[d];
                    let far = if (center[d] - lo).abs() > (center[d] - hi).abs() {
                        lo - center[d]
                    } else {
                        hi - center[d]
                    };
                    lo2 += near * near;
                    hi2 += far * far;
                }
                if lo2.sqrt() <= r && hi2.sqrt() >= r {
                    flags.insert(id, ablock_core::balance::Flag::Refine);
                }
            }
            if flags.is_empty() {
                break;
            }
            let rep = ablock_core::balance::adapt(&mut g, &flags, Transfer::None);
            if !rep.changed() {
                break;
            }
        }
        t.row(&[
            format!("{m}^2 blocks"),
            g.num_cells().to_string(),
            format!("{:.2}x", g.num_cells() as f64 / tree_cells as f64),
            format!("{h_fine:.5}"),
        ]);
    }

    t.row(&[
        "cell tree".into(),
        tree_cells.to_string(),
        "1.00x".into(),
        format!("{h_fine:.5}"),
    ]);
    let uniform = (8usize << target) * (8 << target);
    t.row(&[
        "uniform grid".into(),
        uniform.to_string(),
        format!("{:.2}x", uniform as f64 / tree_cells as f64),
        format!("{h_fine:.5}"),
    ]);
    t.print();
    println!(
        "paper's trade-off confirmed: blocks allocate more cells than the tree\n\
         (refinement granularity is a whole block), but both beat uniform by a\n\
         wide margin — and Fig. 5 shows the per-cell speed more than pays for it.\n\
         A geometric sanity bound: blocks should stay within ~an order of\n\
         magnitude of the tree at these sizes."
    );

    // also demonstrate the growth with block size
    let _ = refine_ball_to_level::<2>; // referenced for docs discoverability
}

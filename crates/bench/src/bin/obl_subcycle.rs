//! OBL: local-time-stepping (subcycling) efficiency on a 3-level grid.
//!
//! A Gaussian pulse sits in a small corner region refined to level 2;
//! the rest of the domain stays coarse. Two A/B runs over the same
//! physical time window, same scheme, same refluxing:
//!
//! 1. **Subcycled** (`TimeStepMode::Subcycled`): level ℓ advances with
//!    `dt₀ / 2^ℓ`, so the 12 coarse blocks step once per cycle while the
//!    level-2 blocks step four times. The driver's own counters
//!    (`subcycle.cell_updates` vs `subcycle.cell_updates_uniform`) give
//!    the cell-update efficiency; per-level `step.lvl{ℓ}` spans give the
//!    time breakdown.
//! 2. **Global-Δt reference**: the same grid stepped uniformly at the
//!    finest stable dt (`dt₀ / 2^ℓmax`), 2^ℓmax× as many steps.
//!
//! The run asserts the headline claim — subcycling spends ≤ 0.6× the
//! cell-updates of the uniform-dt schedule on this fixture (≥ 1.67×
//! fewer) — plus physics sanity: both runs conserve every total to
//! ulp-scale drift and agree on the final state to the O(Δt²) band.
//! Results land in `BENCH_subcycle.json`. `--quick` shrinks the step
//! count for CI.

use std::collections::HashMap;
use std::time::Instant;

use ablock_core::balance::{adapt, Flag};
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::layout::{Boundary, RootLayout};
use ablock_core::ops::ProlongOrder;
use ablock_core::verify::check_grid;
use ablock_io::{spans_table, write_metrics_json, Table};
use ablock_obs::{Metrics, MetricsSnapshot};
use ablock_solver::subcycle::level_span;
use ablock_solver::{
    problems, total_conserved, Euler, Scheme, SolverConfig, Stepper, TimeStepMode,
};

const MAX_LEVEL: u8 = 2;
const CENTER: [f64; 2] = [0.34, 0.34];

fn cfg(metrics: Metrics, mode: TimeStepMode) -> SolverConfig<Euler<2>> {
    SolverConfig::new(Euler::new(1.4), Scheme::muscl_rusanov())
        .with_refluxing(true)
        .with_time_step_mode(mode)
        .with_metrics(metrics)
}

/// Target refinement level for a block box by distance to the pulse.
fn target_level(dist: f64) -> u8 {
    if dist <= 0.03 {
        2
    } else if dist <= 0.12 {
        1
    } else {
        0
    }
}

/// 4x4 periodic roots of 8x8 cells, statically refined to 3 levels
/// around the pulse (2:1 balancing may widen the rings slightly).
fn make_fixture() -> BlockGrid<2> {
    let e = Euler::new(1.4);
    let mut g = BlockGrid::<2>::new(
        RootLayout::unit([4, 4], Boundary::Periodic),
        GridParams::new([8, 8], 2, 4, MAX_LEVEL),
    );
    problems::advected_gaussian(&mut g, &e, [0.4, 0.3], CENTER, 0.08);
    loop {
        let mut flags = HashMap::new();
        for (id, node) in g.blocks() {
            let key = node.key();
            let dims = g.params().block_dims;
            let o = g.layout().block_origin(key, dims);
            let h = g.layout().cell_size(key.level, dims);
            let mut d2 = 0.0;
            for d in 0..2 {
                let (lo, hi) = (o[d], o[d] + h[d] * dims[d] as f64);
                let near = CENTER[d].clamp(lo, hi) - CENTER[d];
                d2 += near * near;
            }
            if key.level < target_level(d2.sqrt()) {
                flags.insert(id, Flag::Refine);
            }
        }
        if flags.is_empty() {
            break;
        }
        adapt(&mut g, &flags, Transfer::Conservative(ProlongOrder::LinearMinmod));
    }
    check_grid(&g).unwrap();
    g
}

fn level_counts(g: &BlockGrid<2>) -> [usize; 3] {
    let mut n = [0usize; 3];
    for (_, node) in g.blocks() {
        n[node.key().level as usize] += 1;
    }
    n
}

/// Max relative interior difference between two identically-shaped grids.
fn max_rel_diff(a: &BlockGrid<2>, b: &BlockGrid<2>) -> f64 {
    let collect = |g: &BlockGrid<2>| {
        let mut v: Vec<_> = g.blocks().map(|(_, n)| (n.key(), n.field().clone())).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    };
    let (fa, fb) = (collect(a), collect(b));
    assert_eq!(fa.len(), fb.len(), "A/B topologies must match");
    let mut worst = 0.0f64;
    for ((ka, da), (kb, db)) in fa.iter().zip(&fb) {
        assert_eq!(ka, kb, "A/B topologies must match");
        for c in da.shape().interior_box().iter() {
            for var in 0..da.shape().nvar {
                let (x, y) = (da.at(c, var), db.at(c, var));
                worst = worst.max((x - y).abs() / (1.0 + y.abs()));
            }
        }
    }
    worst
}

struct RunResult {
    snap: MetricsSnapshot,
    grid: BlockGrid<2>,
    wall_ms: f64,
    totals: Vec<f64>,
}

fn run(mode: TimeStepMode, cycles: usize, dt0: f64) -> RunResult {
    let metrics = Metrics::recording();
    let mut grid = make_fixture();
    let mut stepper: Stepper<2, Euler<2>> = Stepper::new(cfg(metrics.clone(), mode));
    let nsub = 1u64 << MAX_LEVEL;
    let t0 = Instant::now();
    match mode {
        TimeStepMode::Subcycled => {
            for _ in 0..cycles {
                stepper.step(&mut grid, dt0, None);
            }
        }
        TimeStepMode::Global => {
            // same physical window at the finest level's dt — the
            // schedule subcycling is measured against
            let dt = dt0 / nsub as f64;
            for _ in 0..cycles as u64 * nsub {
                stepper.step(&mut grid, dt, None);
            }
        }
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let totals = (0..4).map(|v| total_conserved(&grid, v)).collect();
    RunResult { snap: metrics.snapshot(), grid, wall_ms, totals }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cycles = if quick { 8 } else { 40 };

    let mut fixture = make_fixture();
    let counts = level_counts(&fixture);
    assert!(
        counts.iter().all(|&n| n > 0),
        "fixture must populate all 3 levels: {counts:?}"
    );
    println!(
        "fixture: {} blocks ({} lvl0 / {} lvl1 / {} lvl2), {} cells",
        counts.iter().sum::<usize>(),
        counts[0],
        counts[1],
        counts[2],
        fixture.num_cells()
    );
    let t0: Vec<f64> = (0..4).map(|v| total_conserved(&fixture, v)).collect();

    // one shared dt0 so both schedules cover the identical time window
    let dt0 =
        Stepper::new(cfg(Metrics::null(), TimeStepMode::Subcycled)).stable_dt(&mut fixture);
    println!("dt0 = {dt0:.6e} over {cycles} coarse cycles (T = {:.4e})\n", dt0 * cycles as f64);

    let sub = run(TimeStepMode::Subcycled, cycles, dt0);
    let glob = run(TimeStepMode::Global, cycles, dt0);

    // ---- the headline: cell-update efficiency -------------------------
    let updates = sub.snap.counter("subcycle.cell_updates");
    let uniform = sub.snap.counter("subcycle.cell_updates_uniform");
    let efficiency = uniform as f64 / updates as f64;
    let mut t = Table::new(
        "OBL: subcycled vs global-dt over the same time window",
        &["schedule", "cell-updates", "substeps", "wall ms", "d(mass)"],
    );
    t.row(&[
        "subcycled".into(),
        updates.to_string(),
        sub.snap.counter("subcycle.substeps").to_string(),
        format!("{:.1}", sub.wall_ms),
        format!("{:.2e}", (sub.totals[0] - t0[0]).abs()),
    ]);
    t.row(&[
        "global (finest dt)".into(),
        uniform.to_string(),
        (cycles as u64 * (1 << MAX_LEVEL)).to_string(),
        format!("{:.1}", glob.wall_ms),
        format!("{:.2e}", (glob.totals[0] - t0[0]).abs()),
    ]);
    t.print();
    println!(
        "\nsubcycling efficiency: {efficiency:.2}x fewer cell-updates \
         ({updates} vs {uniform}), wall speedup {:.2}x",
        glob.wall_ms / sub.wall_ms
    );
    assert!(
        5 * updates <= 3 * uniform,
        "subcycled schedule must spend <= 0.6x the uniform cell-updates: \
         {updates} vs {uniform} ({efficiency:.2}x)"
    );

    // ---- per-level time breakdown -------------------------------------
    println!();
    spans_table("subcycled per-level span detail", &sub.snap).print();
    for lvl in 0..=MAX_LEVEL {
        assert!(
            sub.snap.span_total_ns(level_span(lvl)) > 0,
            "subcycled run recorded no time in {}",
            level_span(lvl)
        );
    }

    // ---- physics sanity: conservation and O(dt^2) agreement -----------
    for v in 0..4 {
        let tol = 1e-11 * (1.0 + t0[v].abs());
        assert!(
            (sub.totals[v] - t0[v]).abs() <= tol,
            "subcycled run must conserve var {v}: {:.17e} -> {:.17e}",
            t0[v],
            sub.totals[v]
        );
        assert!(
            (glob.totals[v] - t0[v]).abs() <= tol,
            "global run must conserve var {v}: {:.17e} -> {:.17e}",
            t0[v],
            glob.totals[v]
        );
    }
    let diff = max_rel_diff(&sub.grid, &glob.grid);
    println!("\nmax relative A/B state difference: {diff:.3e} (O(dt^2) band)");
    assert!(diff < 2e-2, "subcycled state left the global-dt agreement band: {diff:.3e}");

    // ---- export -------------------------------------------------------
    let mut out = Vec::new();
    out.extend_from_slice(
        format!(
            "{{\n\"summary\": {{\"blocks_lvl0\": {}, \"blocks_lvl1\": {}, \
             \"blocks_lvl2\": {}, \"cycles\": {cycles}, \"dt0\": {dt0:.9e}, \
             \"cell_updates\": {updates}, \"cell_updates_uniform\": {uniform}, \
             \"efficiency\": {efficiency:.4}, \"wall_ms_subcycled\": {:.3}, \
             \"wall_ms_global\": {:.3}, \"max_rel_diff\": {diff:.6e}}},\n\
             \"subcycled\": ",
            counts[0], counts[1], counts[2], sub.wall_ms, glob.wall_ms
        )
        .as_bytes(),
    );
    write_metrics_json(&mut out, &sub.snap).expect("vec write");
    while out.last() == Some(&b'\n') {
        out.pop();
    }
    out.extend_from_slice(b",\n\"global_finest\": ");
    write_metrics_json(&mut out, &glob.snap).expect("vec write");
    while out.last() == Some(&b'\n') {
        out.pop();
    }
    out.extend_from_slice(b"\n}\n");
    std::fs::write("BENCH_subcycle.json", &out).expect("write subcycle JSON");
    println!("\nwrote BENCH_subcycle.json ({} bytes)", out.len());
}

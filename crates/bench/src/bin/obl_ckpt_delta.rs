//! OBL: incremental-checkpoint delta sizes and recovery traffic
//! (`BENCH_ckpt.json`).
//!
//! Three measurements of the content-addressed snapshot layer
//! (`ablock_io::snapshot`) on a localized 2-D Euler blast in a large
//! mostly-uniform domain — the regime incremental checkpoints exist for:
//!
//! 1. **Every-step cadence**: snapshot the grid after every RK2 step into
//!    one persistent [`NodeStore`] and compare each delta (`bytes_new`)
//!    against a full v2 checkpoint of the same state. Far-field blocks
//!    are bitwise unchanged by the flux step, so their leaf nodes
//!    deduplicate; the run asserts an overall dedup ratio > 1 and that
//!    every step changing <= 10% of the blocks writes <= 25% of the full
//!    checkpoint's bytes.
//! 2. **Adapt step**: mid-run, two pulse-adjacent blocks (<= 10% of the
//!    grid) are refined before the step. The snapshot after it must still
//!    write <= 25% of the full bytes — structural change stays
//!    delta-proportional too.
//! 3. **Peer recovery**: a 3-rank resilient run with an injected crash
//!    (same scenario as the `fault_tolerance` suite). The
//!    [`ablock_par::RecoveryReport`] live counters show the restart fetched only the
//!    dead rank's blocks from peers — recovery bytes scale with lost
//!    state, never with grid size — and the durable store was never
//!    needed.
//!
//! `--quick` shrinks step counts for CI.

use std::collections::BTreeMap;
use std::sync::Arc;

use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};
use ablock_core::ops::ProlongOrder;
use ablock_io::snapshot::{content_hash, encode_leaf, leaf_values};
use ablock_io::{save_grid, write_snapshot, NodeHash, NodeStore};
use ablock_par::{FaultPlan, MachineConfig, RecoverConfig, RecoverOutcome};
use ablock_solver::euler::Euler;
use ablock_solver::kernel::Scheme;
use ablock_solver::{problems, SolverConfig, Stepper};

const TRANSFER: Transfer = Transfer::Conservative(ProlongOrder::LinearMinmod);
const DT: f64 = 2e-4;

/// Per-leaf content hashes in sorted-key order (the incremental writer's
/// own view of what changed).
fn leaf_hashes(g: &BlockGrid<2>) -> BTreeMap<BlockKey<2>, NodeHash> {
    let mut keys: Vec<_> = g.blocks().map(|(_, n)| n.key()).collect();
    keys.sort();
    keys.into_iter()
        .map(|k| {
            let bytes = encode_leaf(&leaf_values(g, k).expect("leaf present"));
            (k, content_hash(&bytes))
        })
        .collect()
}

fn full_checkpoint_bytes(g: &BlockGrid<2>) -> u64 {
    let mut buf = Vec::new();
    save_grid(&mut buf, g).expect("writing to a Vec cannot fail");
    buf.len() as u64
}

struct StepRecord {
    step: usize,
    changed: usize,
    leaves: usize,
    adapted: bool,
    bytes_new: u64,
    bytes_shared: u64,
    full_bytes: u64,
}

/// The recovery scenario from the `fault_tolerance` suite: 3 ranks, a
/// seeded crash of rank 1 mid-run, checkpoints every 2 of 8 steps.
fn recovery_run() -> RecoverOutcome<2> {
    let make_grid = || {
        let e = Euler::<2>::new(1.4);
        let mut g = BlockGrid::new(
            RootLayout::unit([4, 4], Boundary::Periodic),
            GridParams::new([4, 4], 2, 4, 1),
        );
        problems::advected_gaussian(&mut g, &e, [0.6, -0.3], [0.5, 0.5], 0.15);
        g
    };
    let plan = Arc::new(FaultPlan::new(0xBE7C_0001).crash_rank(1, 30));
    ablock_par::run_resilient(
        3,
        8,
        1.0e-3,
        SolverConfig::new(Euler::<2>::new(1.4), Scheme::muscl_rusanov()),
        make_grid,
        RecoverConfig {
            checkpoint_every: 2,
            machine: MachineConfig::fast(),
            max_restarts: 3,
        },
        Some(plan),
    )
    .expect("resilient run must complete")
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let steps = if quick { 6 } else { 12 };
    let adapt_at = steps / 2;

    // localized blast: ~4-12 of the 100 root blocks change per step
    let e = Euler::<2>::new(1.4);
    let mut grid = BlockGrid::new(
        RootLayout::unit([10, 10], Boundary::Outflow),
        GridParams::new([8, 8], 2, 4, 2),
    );
    problems::sedov_blast(&mut grid, &e, [0.25, 0.25], 0.05, 20.0);
    let mut stepper = Stepper::new(SolverConfig::new(e, Scheme::muscl_rusanov()));

    let mut store = NodeStore::new();
    let baseline = write_snapshot(&mut store, &grid, 0).expect("baseline snapshot");
    let mut prev = leaf_hashes(&grid);
    println!(
        "baseline snapshot: {} leaves, {} nodes, {} bytes (full v2: {} bytes)",
        prev.len(),
        baseline.nodes_new,
        baseline.bytes_new,
        full_checkpoint_bytes(&grid)
    );

    let mut records: Vec<StepRecord> = Vec::new();
    let mut last_changed: Vec<BlockKey<2>> = Vec::new();
    for step in 1..=steps {
        let mut adapted = false;
        if step == adapt_at {
            // refine two pulse-adjacent level-0 blocks (the ones the last
            // step actually changed) — well under 10% of the grid — so
            // this step's snapshot covers a structural delta, not just
            // payload churn
            let targets: Vec<BlockKey<2>> =
                last_changed.iter().filter(|k| k.level == 0).take(2).copied().collect();
            assert_eq!(targets.len(), 2, "the pulse must be active at the adapt step");
            assert!(
                targets.len() * 10 <= grid.num_blocks(),
                "adapt must touch <= 10% of blocks: {} of {}",
                targets.len(),
                grid.num_blocks()
            );
            for key in targets {
                let id = grid.find(key).expect("leaf key present");
                grid.refine(id, TRANSFER).expect("level-0 refine is legal");
            }
            adapted = true;
        }
        stepper.step_rk2(&mut grid, DT, None);
        let cur = leaf_hashes(&grid);
        let changed =
            cur.iter().filter(|(k, h)| prev.get(*k) != Some(h)).count();
        last_changed =
            cur.iter().filter(|(k, h)| prev.get(*k) != Some(h)).map(|(k, _)| *k).collect();
        let stats = write_snapshot(&mut store, &grid, step as u64).expect("snapshot");
        records.push(StepRecord {
            step,
            changed,
            leaves: cur.len(),
            adapted,
            bytes_new: stats.bytes_new,
            bytes_shared: stats.bytes_shared,
            full_bytes: full_checkpoint_bytes(&grid),
        });
        prev = cur;
    }

    println!("\nevery-step incremental cadence ({steps} steps):");
    println!("  step  changed/leaves  delta bytes  full bytes  delta/full  note");
    for r in &records {
        println!(
            "  {:4}  {:7}/{:<6}  {:11}  {:10}  {:9.1}%  {}",
            r.step,
            r.changed,
            r.leaves,
            r.bytes_new,
            r.full_bytes,
            100.0 * r.bytes_new as f64 / r.full_bytes as f64,
            if r.adapted { "adapt (2 blocks refined)" } else { "" }
        );
    }

    // acceptance: dedup ratio of the whole cadence (what a full writer
    // would have written / what the incremental writer wrote)
    let total_new: u64 =
        baseline.bytes_new + records.iter().map(|r| r.bytes_new).sum::<u64>();
    let total_shared: u64 =
        baseline.bytes_shared + records.iter().map(|r| r.bytes_shared).sum::<u64>();
    let dedup_ratio = (total_new + total_shared) as f64 / total_new as f64;
    println!(
        "\ndedup: {total_new} bytes written, {total_shared} bytes shared \
         -> ratio {dedup_ratio:.2}"
    );
    assert!(
        dedup_ratio > 1.0,
        "every-step cadence must deduplicate unchanged far-field blocks"
    );

    // acceptance: every quiet step (<= 10% of blocks changed) writes
    // <= 25% of the full checkpoint — and at least one such step exists
    let mut quiet_steps = 0;
    for r in &records {
        if 10 * r.changed <= r.leaves {
            quiet_steps += 1;
            assert!(
                4 * r.bytes_new <= r.full_bytes,
                "step {} changed {}/{} blocks but wrote {} of {} full bytes",
                r.step,
                r.changed,
                r.leaves,
                r.bytes_new,
                r.full_bytes
            );
        }
    }
    assert!(quiet_steps > 0, "scenario must produce a <=10%-changed step");
    println!("{quiet_steps} quiet steps (<=10% changed) all wrote <=25% of full bytes");

    // acceptance: the adapt step stays delta-proportional too
    let adapt_rec = records.iter().find(|r| r.adapted).expect("adapt step recorded");
    assert!(
        4 * adapt_rec.bytes_new <= adapt_rec.full_bytes,
        "adapt step wrote {} of {} full bytes",
        adapt_rec.bytes_new,
        adapt_rec.full_bytes
    );
    println!(
        "adapt step {} wrote {:.1}% of the full checkpoint",
        adapt_rec.step,
        100.0 * adapt_rec.bytes_new as f64 / adapt_rec.full_bytes as f64
    );

    // ---- peer recovery traffic ------------------------------------------
    let outcome = recovery_run();
    assert_eq!(outcome.restarts, 1, "the injected crash must fire exactly once");
    let rec = outcome.recoveries[0];
    assert_eq!(
        rec.nodes_local + rec.nodes_peer,
        rec.total_blocks,
        "buddy replicas must cover recovery without the durable store: {rec:?}"
    );
    assert_eq!(rec.nodes_store, 0, "{rec:?}");
    let lost = rec.total_blocks - rec.nodes_local;
    let peer_bytes = 8 * rec.peer_values;
    println!(
        "\npeer recovery after a 1-of-3 rank crash (resumed step {}):\n  \
         {} of {} blocks restored locally, {lost} lost blocks fetched from \
         peers ({peer_bytes} bytes), 0 from the durable store\n  \
         snapshot totals: {} snapshots, {} nodes new / {} shared, \
         {} replica nodes shipped",
        rec.from_step,
        rec.nodes_local,
        rec.total_blocks,
        outcome.snapshots.snapshots,
        outcome.snapshots.nodes_new,
        outcome.snapshots.nodes_shared,
        outcome.snapshots.replica_nodes,
    );

    // ---- export ----------------------------------------------------------
    let per_step: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "{{\"step\": {}, \"changed\": {}, \"leaves\": {}, \
                 \"adapted\": {}, \"bytes_new\": {}, \"bytes_shared\": {}, \
                 \"full_bytes\": {}}}",
                r.step, r.changed, r.leaves, r.adapted, r.bytes_new, r.bytes_shared,
                r.full_bytes
            )
        })
        .collect();
    let json = format!(
        "{{\n\"dedup_ratio\": {dedup_ratio:.4},\n\
         \"bytes_written\": {total_new},\n\
         \"bytes_shared\": {total_shared},\n\
         \"steps\": [\n{}\n],\n\
         \"recovery\": {{\"from_step\": {}, \"total_blocks\": {}, \
         \"nodes_local\": {}, \"nodes_peer\": {}, \"nodes_store\": {}, \
         \"peer_bytes\": {peer_bytes}, \"fetch_timeouts\": {}, \
         \"hash_mismatches\": {}}}\n}}\n",
        per_step.join(",\n"),
        rec.from_step,
        rec.total_blocks,
        rec.nodes_local,
        rec.nodes_peer,
        rec.nodes_store,
        rec.fetch_timeouts,
        rec.hash_mismatches,
    );
    std::fs::write("BENCH_ckpt.json", &json).expect("write BENCH_ckpt.json");
    println!("\nwrote BENCH_ckpt.json ({} bytes)", json.len());
}

//! ABL-3: load-balance policy comparison.
//!
//! The paper: "Whenever refinement or coarsening occurs, load re-balancing
//! should be performed", and warns that few blocks per processor hurt.
//! This ablation compares the partitioners on an actually-adapted grid:
//! load imbalance, remote ghost traffic, and the modeled step time each
//! policy yields, across processor counts.

use std::collections::HashMap;

use ablock_core::balance::refine_ball_to_level;
use ablock_core::ghost::{GhostConfig, GhostExchange};
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::layout::{Boundary, RootLayout};
use ablock_io::Table;
use ablock_par::{comm_stats, imbalance, model_step, CostParams, Policy};

fn main() {
    // an AMR'd 3-D grid: refined shell inside a coarse background
    let mut g = BlockGrid::<3>::new(
        RootLayout::unit([4, 4, 4], Boundary::Periodic),
        GridParams::new([4, 4, 4], 2, 1, 2),
    );
    refine_ball_to_level(&mut g, [0.5, 0.5, 0.5], 0.22, 2, Transfer::None);
    let plan = GhostExchange::build(&g, GhostConfig::default());
    println!(
        "workload: {} blocks on levels {:?}\n",
        g.num_blocks(),
        g.level_histogram()
    );
    let params = CostParams::t3d_like(2e-6, 16.0, 4.0, 8.0);

    for nranks in [8usize, 32, 128] {
        let mut t = Table::new(
            &format!("ABL-3: partition policies at P = {nranks}"),
            &["policy", "imbalance", "remote frac", "remote msgs", "T_step(ms)", "efficiency"],
        );
        for policy in [
            Policy::SfcHilbert,
            Policy::SfcMorton,
            Policy::Greedy,
            Policy::RoundRobin,
        ] {
            let owner: HashMap<_, _> = policy.partitioner().partition_grid(&g, nranks);
            let ids = g.block_ids();
            let weights = vec![1.0f64; ids.len()];
            let assign: Vec<usize> = ids.iter().map(|id| owner[id]).collect();
            let im = imbalance(&weights, &assign, nranks);
            let cs = comm_stats(&g, &plan, &owner);
            let cost = model_step(&g, &plan, &owner, nranks, &params);
            t.row(&[
                format!("{policy:?}"),
                format!("{im:.3}"),
                format!("{:.3}", cs.remote_fraction()),
                cs.remote_msgs.to_string(),
                format!("{:.2}", cost.time * 1e3),
                format!("{:.3}", cost.efficiency()),
            ]);
        }
        t.print();
    }
    println!(
        "expected ranking: SFC policies keep neighbors on-rank (low remote\n\
         fraction) at equal imbalance; round-robin is the locality disaster\n\
         the paper's re-balancing avoids."
    );
}

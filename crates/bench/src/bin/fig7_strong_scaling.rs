//! FIG7: parallel efficiency for a fixed problem size.
//!
//! The paper fixed the problem (too large for one PE's memory) and
//! measured speedup relative to 64 processors. We model a fixed 4096-block
//! 16³-cell MHD problem and sweep P = 64 … 512 (plus the smaller counts
//! the paper could not run), reporting speedup normalized to P = 64
//! exactly as Fig. 7 does.

use std::collections::HashMap;

use ablock_bench::{measure_ns_per_cell, mhd_grid_3d, near_cubic_factors};
use ablock_core::ghost::{GhostConfig, GhostExchange};
use ablock_io::Table;
use ablock_par::{model_step, CostParams, Partitioner};
use ablock_solver::kernel::Scheme;
use ablock_solver::mhd::IdealMhd;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // era-consistent rates (see fig6_weak_scaling): ~700 flops/cell on a
    // 33 MFLOP/s sustained Alpha => ~21 us/cell/stage against the T3D net.
    // Pass --host to instead use the measured kernel with a proportionally
    // scaled network (same balance, same curve).
    let params = if std::env::args().any(|a| a == "--host") {
        let mhd = IdealMhd::new(5.0 / 3.0);
        let mut cal = mhd_grid_3d([2, 2, 2], 16, 0, 0);
        let ns_cell = measure_ns_per_cell(
            &mut cal,
            &mhd,
            Scheme::muscl_rusanov(),
            if quick { 1 } else { 3 },
        );
        let speedup = (700.0 / 33.0e6) / (ns_cell * 1e-9);
        let mut p = CostParams::t3d_like(ns_cell * 1e-9, 16.0, 4.0, 8.0);
        p.t_msg /= speedup;
        p.t_value /= speedup;
        p.t_reduce_hop /= speedup;
        p
    } else {
        CostParams::t3d_like(700.0 / 33.0e6, 16.0, 4.0, 8.0)
    };

    // the fixed problem: an *adaptive* solar-wind-style topology (shell
    // refinement), which is what makes strong scaling hard — blocks per
    // rank gets small and ragged, so some ranks carry one block more
    // than others (the paper's load-imbalance warning).
    let base = if quick { 4 } else { 6 };
    let roots = near_cubic_factors(base * base * base);
    let mut g = mhd_grid_3d(roots, 4, 0, 2);
    ablock_core::balance::refine_ball_to_level(
        &mut g,
        [0.5, 0.5, 0.5],
        0.3,
        2,
        ablock_core::grid::Transfer::None,
    );
    let plan = GhostExchange::build(&g, GhostConfig::default());
    println!(
        "fixed problem: {} blocks (levels {:?}), {:.1}M modeled MHD cells\n",
        g.num_blocks(),
        g.level_histogram(),
        g.num_blocks() as f64 * 4096.0 / 1e6
    );

    let ps: &[usize] = if quick {
        &[16, 64, 128, 512, 4096]
    } else {
        // beyond the paper's 512 to expose the few-blocks-per-rank wall
        &[16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
    };
    let mut rows = Vec::new();
    for &p in ps {
        let owner: HashMap<_, _> = Partitioner::default().partition_grid(&g, p);
        let cost = model_step(&g, &plan, &owner, p, &params);
        rows.push((p, cost));
    }
    let t64 = rows
        .iter()
        .find(|(p, _)| *p == 64)
        .map(|(_, c)| c.time)
        .expect("64 is in the sweep");

    let mut t = Table::new(
        "FIG7: strong scaling of the fixed problem, speedup relative to 64 PEs",
        &["P", "blocks/rank", "imbalance", "T_step(ms)", "speedup vs 64", "ideal", "eff vs 64"],
    );
    for (p, cost) in &rows {
        let speedup = t64 / cost.time;
        let ideal = *p as f64 / 64.0;
        let max_cells = cost.ranks.iter().map(|r| r.cells).fold(0.0, f64::max);
        let mean_cells = cost.ranks.iter().map(|r| r.cells).sum::<f64>() / *p as f64;
        t.row(&[
            p.to_string(),
            format!("{:.1}", g.num_blocks() as f64 / *p as f64),
            format!("{:.3}", max_cells / mean_cells),
            format!("{:.2}", cost.time * 1e3),
            format!("{speedup:.2}"),
            format!("{ideal:.2}"),
            format!("{:.3}", speedup / ideal),
        ]);
    }
    t.print();
    println!(
        "paper claim: good but sub-linear speedup 64 -> 512 as blocks/rank shrinks\n\
         (fewer blocks per processor => load imbalance + exposed communication)."
    );
}

//! FIG6: parallel efficiency, scaling problem size with processors.
//!
//! The paper grew the solar-wind problem linearly with the number of T3D
//! PEs and found efficiency "extremely high, even up to 512 processors."
//! We regenerate the curve with the BSP cost model (DESIGN.md
//! substitution #1): the per-cell compute rate is *measured* on this
//! host's real MHD kernel, the network parameters are T3D-like, and the
//! ghost traffic is counted from the actual exchange plan of the actual
//! block topology at every P.
//!
//! Also prints the modeled aggregate GFLOP/s so the "17 GFLOPS sustained"
//! headline can be sanity-checked against the same machine model.

use std::collections::HashMap;

use ablock_bench::{measure_ns_per_cell, mhd_grid_3d, near_cubic_factors};
use ablock_core::ghost::{GhostConfig, GhostExchange};
use ablock_io::Table;
use ablock_par::{model_step, CostParams, Partitioner};
use ablock_solver::kernel::Scheme;
use ablock_solver::mhd::IdealMhd;

/// FLOPs per MHD MUSCL cell-update stage (rough census of the kernel:
/// 3 dirs × (recon + flux + update) ≈ 700 flops).
const FLOPS_PER_CELL_STAGE: f64 = 700.0;

fn sweep(title: &str, params: &CostParams, blocks_per_rank: usize, ps: &[usize]) -> Vec<f64> {
    let mut t = Table::new(
        title,
        &["P", "blocks", "Mcells", "T_step(ms)", "efficiency", "GFLOP/s"],
    );
    let mut effs = Vec::new();
    for &p in ps {
        let roots = near_cubic_factors(blocks_per_rank * p);
        let g = mhd_grid_3d(roots, 4, 0, 0); // topology blocks 4^3, model 16^3
        let plan = GhostExchange::build(&g, GhostConfig::default());
        let owner: HashMap<_, _> = Partitioner::default().partition_grid(&g, p);
        let cost = model_step(&g, &plan, &owner, p, params);
        let model_cells = g.num_blocks() as f64 * 4096.0;
        let gflops = model_cells * params.stages * FLOPS_PER_CELL_STAGE / cost.time / 1e9;
        t.row(&[
            p.to_string(),
            g.num_blocks().to_string(),
            format!("{:.2}", model_cells / 1e6),
            format!("{:.2}", cost.time * 1e3),
            format!("{:.4}", cost.efficiency()),
            format!("{gflops:.2}"),
        ]);
        effs.push(cost.efficiency());
    }
    t.print();
    effs
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mhd = IdealMhd::new(5.0 / 3.0);
    let ps: &[usize] = if quick {
        &[1, 8, 64, 512]
    } else {
        // beyond the paper's 512: the cut-point partitioner is O(blocks),
        // so virtual-rank sweeps to 4096 stay cheap
        &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096]
    };

    // --- era-consistent model: the machine the paper actually ran on ----
    // T3D Alpha 21064 sustained ~33 MFLOP/s on this kernel class
    // => ~700 flops / 33 MFLOP/s ≈ 21 µs per cell per stage.
    let t3d = CostParams::t3d_like(FLOPS_PER_CELL_STAGE / 33.0e6, 16.0, 4.0, 8.0);
    let effs = sweep(
        "FIG6: weak scaling, 8 blocks of 16^3 MHD cells per rank (T3D-era rates)",
        &t3d,
        8,
        ps,
    );
    println!(
        "paper claim: efficiency stays near 1 through 512 PEs; sustained ~17 GFLOPS.\n\
         shape check: efficiency at P=512 is {:.3} of the P=1 value.\n",
        effs.last().unwrap() / effs[0]
    );

    // --- host-calibrated variant: measured kernel + a network of the ----
    // same compute:comm balance as the T3D (rates scaled by the kernel
    // speedup), showing the curve is balance-invariant.
    let mut cal = mhd_grid_3d([2, 2, 2], 16, 0, 0);
    let ns_cell =
        measure_ns_per_cell(&mut cal, &mhd, Scheme::muscl_rusanov(), if quick { 1 } else { 3 });
    let speedup = (FLOPS_PER_CELL_STAGE / 33.0e6) / (ns_cell * 1e-9);
    let mut host = CostParams::t3d_like(ns_cell * 1e-9, 16.0, 4.0, 8.0);
    host.t_msg /= speedup;
    host.t_value /= speedup;
    host.t_reduce_hop /= speedup;
    println!(
        "host-calibrated kernel: {ns_cell:.0} ns/cell/stage ({speedup:.0}x the T3D);\n\
         network rates scaled by the same factor (balanced machine):"
    );
    sweep(
        "FIG6': weak scaling, host-calibrated balanced machine",
        &host,
        8,
        ps,
    );

    // --- more blocks per rank: the regime big production runs sit in ----
    let ps_small: &[usize] = if quick { &[1, 64] } else { &[1, 8, 64, 512] };
    sweep(
        "FIG6'': weak scaling with 64 blocks per rank (surface/volume win)",
        &t3d,
        64,
        ps_small,
    );
}

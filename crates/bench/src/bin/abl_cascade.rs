//! ABL-4: how far refinement cascades, and what the k-level knob buys.
//!
//! The paper: "Refinement can potentially cascade across the grid" (2:1),
//! and under *Generalizations*: "the constraint on the relative
//! refinements of neighbors can be loosened". This ablation measures the
//! cascade directly: refine a single block at increasing depth in a long
//! domain and count how many extra blocks the constraint forces into
//! existence, for k = 1 and k = 2.

use std::collections::HashMap;

use ablock_core::balance::{adapt, Flag};
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::layout::{Boundary, RootLayout};
use ablock_io::Table;

/// Drill at an *interior interface*: repeatedly refine the deepest leaf
/// just left of x = 0.5. Each refinement presses ever-finer blocks
/// against territory that is still coarse, so the jump constraint must
/// refine neighbors it was never asked about — the cascade. Returns
/// (total blocks, cascade refinements, max cascade rounds).
fn interface_drill(k: u8, depth: u8) -> (usize, usize, usize) {
    let mut g = BlockGrid::<2>::new(
        RootLayout::unit([8, 1], Boundary::Outflow),
        GridParams::new([8, 8], 2, 1, depth).with_max_jump(k),
    );
    let mut cascades = 0usize;
    let mut rounds = 0usize;
    for _ in 0..depth {
        let id = g.find_leaf_at([0.5 - 1e-9, 1e-9]).unwrap();
        let flags: HashMap<_, _> = [(id, Flag::Refine)].into_iter().collect();
        let rep = adapt(&mut g, &flags, Transfer::None);
        cascades += rep.refined_cascade;
        rounds = rounds.max(rep.cascade_rounds);
    }
    ablock_core::verify::check_grid(&g).unwrap();
    (g.num_blocks(), cascades, rounds)
}

/// The pathological ripple: refine a *whole column* of leaves at the
/// interface to the target depth in one adapt call, forcing a graded
/// staircase across the strip in a single cascade closure.
fn column_blast(k: u8, depth: u8) -> (usize, usize, usize) {
    let mut g = BlockGrid::<2>::new(
        RootLayout::unit([8, 1], Boundary::Outflow),
        GridParams::new([8, 8], 2, 1, depth).with_max_jump(k),
    );
    let mut cascades = 0usize;
    let mut rounds = 0usize;
    for _ in 0..depth {
        // flag every deepest leaf in the column left of x = 0.5
        let flags: HashMap<_, _> = g
            .blocks()
            .filter(|(_, n)| {
                let key = n.key();
                let m = g.params().block_dims;
                let o = g.layout().block_origin(key, m);
                let h = g.layout().cell_size(key.level, m);
                let x1 = o[0] + h[0] * m[0] as f64;
                (x1 - 0.5).abs() < 1e-12 && key.level == g.max_level_present()
            })
            .map(|(id, _)| (id, Flag::Refine))
            .collect();
        if flags.is_empty() {
            // first round: the column is the level-0 block ending at 0.5
            let id = g.find_leaf_at([0.5 - 1e-9, 1e-9]).unwrap();
            let rep = adapt(&mut g, &[(id, Flag::Refine)].into_iter().collect(), Transfer::None);
            cascades += rep.refined_cascade;
            continue;
        }
        let rep = adapt(&mut g, &flags, Transfer::None);
        cascades += rep.refined_cascade;
        rounds = rounds.max(rep.cascade_rounds);
    }
    ablock_core::verify::check_grid(&g).unwrap();
    (g.num_blocks(), cascades, rounds)
}

fn main() {
    let mut t = Table::new(
        "ABL-4a: interface drill to depth L (one flag per adapt)",
        &["depth", "k", "blocks", "cascade refines", "max cascade rounds"],
    );
    for depth in [2u8, 3, 4, 5] {
        for k in [1u8, 2] {
            let (blocks, cascades, rounds) = interface_drill(k, depth);
            t.row(&[
                depth.to_string(),
                k.to_string(),
                blocks.to_string(),
                cascades.to_string(),
                rounds.to_string(),
            ]);
        }
    }
    t.print();

    let mut t2 = Table::new(
        "ABL-4b: column blast (whole interface column per adapt)",
        &["depth", "k", "blocks", "cascade refines", "max cascade rounds"],
    );
    for depth in [3u8, 4, 5] {
        for k in [1u8, 2] {
            let (blocks, cascades, rounds) = column_blast(k, depth);
            t2.row(&[
                depth.to_string(),
                k.to_string(),
                blocks.to_string(),
                cascades.to_string(),
                rounds.to_string(),
            ]);
        }
    }
    t2.print();
    println!(
        "reading: k = 2 admits steeper level gradients, so the same drilling\n\
         pattern forces fewer cascade refinements and fewer total blocks —\n\
         the paper's loosened-constraint generalization trades grid smoothness\n\
         for allocation (at the cost of wider ghost operators, 2^(k(d-1))\n\
         neighbors per face)."
    );
}

//! OBL: per-phase time breakdown through the observability layer.
//!
//! Two runs, one export format (`BENCH_phase.json`):
//!
//! 1. **Measured shared-memory run** (real monotonic clock): a 2-D Euler
//!    blast stepped by the pool-parallel [`ParStepper`] with adaptation
//!    driven by [`AmrSimulation`], both recording into one registry — so
//!    the snapshot holds `ghost_fill` (with the scatter under
//!    `ghost_fill/comm`), `flux`, `update`, `adapt` (with `flag` and
//!    `cascade` nested), plus pool busy/idle counters.
//! 2. **Modeled 64-rank run** (virtual clock): the BSP cost model of a
//!    3-D MHD topology replayed through [`record_step_phases`] /
//!    [`record_adapt_phases`] at T3D-era rates. The virtual clock only
//!    moves by modeled durations, so the replay is fully deterministic:
//!    it is executed twice and the two JSON serializations are asserted
//!    byte-identical before anything is written.
//!
//! 3. **Distributed 4-rank A/B** (real clock, in-process machine): the
//!    same AMR topology stepped by [`DistSim`] with `comm_overlap` on and
//!    off, comparing the aggregated exchange (`comm.agg.*`) against the
//!    legacy per-task exchange (`comm.halo.messages`). The run asserts
//!    the aggregation invariant — one message per active rank pair per
//!    phase — and a >= 25% reduction in halo message count.
//!
//! `--quick` shrinks step counts for CI. `--no-overlap` runs the
//! shared-memory section with `comm_overlap` disabled and writes
//! `BENCH_phase_no_overlap.json` instead of `BENCH_phase.json`, so CI
//! can archive both variants side by side.

use std::collections::HashMap;

use ablock_amr::{AmrConfig, AmrSimulation, GradientCriterion};
use ablock_bench::near_cubic_factors;
use ablock_core::balance::Flag;
use ablock_core::grid::{BlockGrid, GridParams};
use ablock_core::layout::{Boundary, RootLayout};
use ablock_io::{phase_table, spans_table, write_metrics_json};
use ablock_obs::{phase, Metrics, MetricsSnapshot};
use ablock_par::{
    cell_weights, model_step_cached, record_adapt_phases, record_rebalance_phases,
    record_step_phases, CostParams, CurveWalk, DistSim, Machine, ParStepper, Partitioner,
};
use ablock_solver::euler::Euler;
use ablock_solver::kernel::Scheme;
use ablock_solver::{problems, SolverConfig};

const PHASES: [&str; 5] =
    [phase::GHOST_FILL, phase::FLUX, phase::UPDATE, phase::ADAPT, phase::COMM];

/// Shared-memory run: AMR driver (serial stepper + adapt spans) and the
/// pool-parallel stepper share one real-clock registry.
fn shared_memory_run(steps: usize, overlap: bool) -> MetricsSnapshot {
    let metrics = Metrics::recording();
    let e = Euler::<2>::new(1.4);
    let solver = SolverConfig::new(e.clone(), Scheme::muscl_rusanov())
        .with_cfl(0.3)
        .with_comm_overlap(overlap)
        .with_metrics(metrics.clone());

    let make_grid = || {
        BlockGrid::new(
            RootLayout::unit([4, 4], Boundary::Outflow),
            GridParams::new([8, 8], 2, 4, 2),
        )
    };
    let ic = |g: &mut BlockGrid<2>| problems::sedov_blast(g, &e, [0.5, 0.5], 0.1, 20.0);

    // AMR: adapt cadence 2 guarantees adapt spans even in --quick runs
    let mut sim = AmrSimulation::new(
        make_grid(),
        solver.clone(),
        GradientCriterion::new(3, 0.08, 0.03),
        AmrConfig { adapt_every: 2, max_steps: 10_000 },
    );
    sim.initial_adapt_with(2, None, |g| ic(g));
    for _ in 0..steps {
        sim.advance(None);
    }

    // pool-parallel stepping on a fresh uniform grid, same registry
    let mut grid = make_grid();
    ic(&mut grid);
    let mut par = ParStepper::new(solver);
    for _ in 0..steps {
        let dt = par.max_dt(&grid);
        par.step_rk2(&mut grid, dt);
    }
    metrics.snapshot()
}

/// Modeled 64-rank run on the virtual clock; returns (snapshot, json).
fn cost_model_run(steps: usize) -> (MetricsSnapshot, String) {
    const NRANKS: usize = 64;
    let metrics = Metrics::with_virtual_clock();
    // 8 blocks per rank, topology 4^3 costed as 16^3 MHD (paper scaling)
    let grid = ablock_bench::mhd_grid_3d(near_cubic_factors(8 * NRANKS), 4, 0, 0);
    let owner: HashMap<_, _> = Partitioner::default().partition_grid(&grid, NRANKS);
    let params = CostParams::t3d_like(700.0 / 33.0e6, 16.0, 4.0, 8.0);
    let mut engine = SolverConfig::new(Euler::<3>::new(1.4), Scheme::muscl_rusanov())
        .with_metrics(metrics.clone())
        .engine();
    for step in 0..steps {
        let cost = model_step_cached(&grid, &mut engine, &owner, NRANKS, &params);
        record_step_phases(&metrics, &cost, &params);
        if (step + 1) % 4 == 0 {
            // model an adapt that migrates ~5% of one rank's cells
            let migrated = cost.ranks[0].cells * params.nvar * 0.05;
            record_adapt_phases(&metrics, NRANKS, migrated, &params);
        }
    }
    let snap = metrics.snapshot();
    let json = snap.to_json();
    (snap, json)
}

/// Incremental rebalance costed at high virtual rank counts, from an
/// actual cut-point plan: one block's weight grows 2^3-fold (a single
/// refinement's worth of work) and the partitioner re-cuts the maintained
/// walk, so the plan migrates the blocks near shifted cuts — O(ranks),
/// not O(total blocks). The grid is topology-only (1 tracer var); the
/// cost model takes nvar from [`CostParams`].
/// Returns (snapshot, migrated blocks, total blocks).
fn rebalance_model_run(vranks: usize, total_blocks: usize) -> (MetricsSnapshot, u64, usize) {
    let metrics = Metrics::with_virtual_clock();
    let grid = BlockGrid::<3>::new(
        RootLayout::unit(near_cubic_factors(total_blocks), Boundary::Periodic),
        GridParams::new([4, 4, 4], 2, 1, 1),
    );
    let params = CostParams::t3d_like(700.0 / 33.0e6, 16.0, 4.0, 8.0);
    let part = Partitioner::default();
    let walk = CurveWalk::build(&grid, part.curve());
    let uniform = cell_weights(&grid, &walk);
    let prev = part.assign(&uniform, vranks);
    let owner: HashMap<_, _> =
        walk.entries().iter().zip(&prev).map(|(e, &r)| (e.id, r)).collect();
    let mut bumped = uniform.clone();
    bumped[walk.len() / 2] *= 8.0;
    let plan = part.plan(&walk, &bumped, vranks, |id| owner[&id]);
    record_rebalance_phases(
        &metrics,
        &plan,
        grid.params().field_shape().interior_cells() as f64,
        &params,
    );
    let migrated = plan.migrated() as u64;
    (metrics.snapshot(), migrated, walk.len())
}

/// Distributed 4-rank run over the in-process machine; returns the
/// per-rank snapshots. A mid-domain refinement keeps prolongation
/// (phase-2) traffic in the exchange.
fn dist_run(steps: usize, overlap: bool) -> Vec<MetricsSnapshot> {
    const NRANKS: usize = 4;
    Machine::run(NRANKS, move |comm| {
        let metrics = Metrics::recording();
        let e = Euler::<2>::new(1.4);
        let solver = SolverConfig::new(e.clone(), Scheme::muscl_rusanov())
            .with_comm_overlap(overlap)
            .with_metrics(metrics.clone());
        let mut grid = BlockGrid::new(
            RootLayout::unit([2, 2], Boundary::Periodic),
            GridParams::new([4, 4], 2, 4, 2),
        );
        problems::sedov_blast(&mut grid, &e, [0.5, 0.5], 0.1, 20.0);
        let mut sim = DistSim::partitioned(grid, comm.nranks(), solver);
        // refine the left half so restriction *and* prolongation cross ranks
        let flags: HashMap<_, _> = sim
            .owned_ids(comm.rank())
            .into_iter()
            .filter(|&id| {
                let k = sim.grid.block(id).key();
                k.level == 0 && k.coords[0] == 0
            })
            .map(|id| (id, Flag::Refine))
            .collect();
        sim.adapt_rebalance(&comm, &flags);
        for _ in 0..steps {
            sim.step_rk2(&comm, 1e-3);
        }
        metrics.snapshot()
    })
    .expect("fault-free machine run")
}

fn sum_counter(snaps: &[MetricsSnapshot], key: &str) -> u64 {
    snaps.iter().map(|s| s.counter(key)).sum()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let no_overlap = std::env::args().any(|a| a == "--no-overlap");
    let (sm_steps, cm_steps, dist_steps) = if quick { (4, 8, 2) } else { (12, 64, 6) };

    let shared = shared_memory_run(sm_steps, !no_overlap);

    let (model, model_json) = cost_model_run(cm_steps);
    let (_, model_json2) = cost_model_run(cm_steps);
    assert_eq!(
        model_json, model_json2,
        "virtual-clock cost-model metrics must be byte-identical across runs"
    );
    println!(
        "determinism self-check: two {cm_steps}-step cost-model replays \
         serialized to identical {}-byte JSON\n",
        model_json.len()
    );

    phase_table(
        "OBL: per-phase totals (ms), measured vs modeled",
        &PHASES,
        &[("shared_mem", &shared), ("model_64rank", &model)],
    )
    .print();
    println!();
    spans_table("shared-memory span detail", &shared).print();
    println!();
    spans_table("64-rank cost-model span detail", &model).print();

    for ph in PHASES {
        assert!(
            shared.span_total_ns(ph) > 0,
            "shared-memory run recorded no time in phase '{ph}'"
        );
        assert!(
            model.span_total_ns(ph) > 0,
            "cost-model run recorded no time in phase '{ph}'"
        );
    }

    // ---- incremental rebalance at 4096 virtual ranks ------------------
    // 8 (quick) / 16 blocks per rank: the O(ranks) migration claim needs
    // blocks/rank >> 1, else nearly every cut shifts (see obl_rebalance)
    let (vranks, vblocks) = if quick { (4096usize, 32768usize) } else { (4096, 65536) };
    let (rb, migrated, nblocks) = rebalance_model_run(vranks, vblocks);
    println!(
        "\nincremental rebalance model: single-block refine on {nblocks} blocks \
         at {vranks} virtual ranks\n  migrated {migrated} blocks \
         ({} values, {} pair messages), modeled {:.3} ms",
        rb.counter("model.rebalance.values"),
        rb.counter("model.rebalance.pair_msgs"),
        rb.span_total_ns(phase::REBALANCE) as f64 / 1e6,
    );
    assert!(migrated > 0, "a weight bump at {vranks} ranks must shift some cut");
    assert!(
        (migrated as usize) < nblocks / 2,
        "incremental plan must not reshuffle the grid: {migrated} of {nblocks}"
    );

    // ---- distributed A/B: aggregated+overlapped vs legacy per-task ----
    let on = dist_run(dist_steps, true);
    let off = dist_run(dist_steps, false);
    let agg_msgs = sum_counter(&on, "comm.agg.messages");
    let expected = sum_counter(&on, "comm.agg.pair_msgs_expected");
    let halo_msgs = sum_counter(&off, "comm.halo.messages");
    let exchanges = 2 * dist_steps as u64; // RK2: two ghost exchanges per step
    println!(
        "\ndistributed 4-rank A/B over {dist_steps} steps ({exchanges} exchanges):\n  \
         overlap on : {agg_msgs} aggregated messages ({} per exchange), \
         {} segments, {} values\n  \
         overlap off: {halo_msgs} per-task messages ({} per exchange)\n  \
         message reduction: {:.1}%",
        agg_msgs / exchanges,
        sum_counter(&on, "comm.agg.segments"),
        sum_counter(&on, "comm.agg.values"),
        halo_msgs / exchanges,
        100.0 * (1.0 - agg_msgs as f64 / halo_msgs as f64),
    );
    assert_eq!(
        agg_msgs, expected,
        "aggregated run must issue exactly one message per active rank pair per phase"
    );
    assert_eq!(
        sum_counter(&on, "comm.halo.messages"),
        0,
        "overlap run must not touch the legacy per-task path"
    );
    assert!(
        4 * agg_msgs <= 3 * halo_msgs,
        "aggregation must cut halo messages by >= 25%: {agg_msgs} vs {halo_msgs}"
    );
    assert_eq!(
        sum_counter(&on, "dist.halo_values_recv"),
        sum_counter(&off, "dist.halo_values_recv"),
        "both paths must deliver identical halo payload volumes"
    );

    let out_name =
        if no_overlap { "BENCH_phase_no_overlap.json" } else { "BENCH_phase.json" };
    let mut out = Vec::new();
    out.extend_from_slice(b"{\n\"shared_memory\": ");
    write_metrics_json(&mut out, &shared).expect("vec write");
    while out.last() == Some(&b'\n') {
        out.pop();
    }
    out.extend_from_slice(b",\n\"cost_model_64rank\": ");
    out.extend_from_slice(model_json.trim_end().as_bytes());
    out.extend_from_slice(b",\n\"rebalance_4096rank\": ");
    write_metrics_json(&mut out, &rb).expect("vec write");
    while out.last() == Some(&b'\n') {
        out.pop();
    }
    out.extend_from_slice(b",\n\"dist_4rank_rank0\": ");
    write_metrics_json(&mut out, &on[0]).expect("vec write");
    while out.last() == Some(&b'\n') {
        out.pop();
    }
    out.extend_from_slice(b"\n}\n");
    std::fs::write(out_name, &out).expect("write phase-breakdown JSON");
    println!("\nwrote {out_name} ({} bytes)", out.len());
}

//! OBL: per-phase time breakdown through the observability layer.
//!
//! Two runs, one export format (`BENCH_phase.json`):
//!
//! 1. **Measured shared-memory run** (real monotonic clock): a 2-D Euler
//!    blast stepped by the pool-parallel [`ParStepper`] with adaptation
//!    driven by [`AmrSimulation`], both recording into one registry — so
//!    the snapshot holds `ghost_fill` (with the scatter under
//!    `ghost_fill/comm`), `flux`, `update`, `adapt` (with `flag` and
//!    `cascade` nested), plus pool busy/idle counters.
//! 2. **Modeled 64-rank run** (virtual clock): the BSP cost model of a
//!    3-D MHD topology replayed through [`record_step_phases`] /
//!    [`record_adapt_phases`] at T3D-era rates. The virtual clock only
//!    moves by modeled durations, so the replay is fully deterministic:
//!    it is executed twice and the two JSON serializations are asserted
//!    byte-identical before anything is written.
//!
//! `--quick` shrinks step counts for CI.

use std::collections::HashMap;

use ablock_amr::{AmrConfig, AmrSimulation, GradientCriterion};
use ablock_bench::near_cubic_factors;
use ablock_core::grid::{BlockGrid, GridParams};
use ablock_core::layout::{Boundary, RootLayout};
use ablock_io::{phase_table, spans_table, write_metrics_json};
use ablock_obs::{phase, Metrics, MetricsSnapshot};
use ablock_par::{
    model_step_cached, partition_grid, record_adapt_phases, record_step_phases, CostParams,
    ParStepper, Policy,
};
use ablock_solver::euler::Euler;
use ablock_solver::kernel::Scheme;
use ablock_solver::{problems, SolverConfig};

const PHASES: [&str; 5] =
    [phase::GHOST_FILL, phase::FLUX, phase::UPDATE, phase::ADAPT, phase::COMM];

/// Shared-memory run: AMR driver (serial stepper + adapt spans) and the
/// pool-parallel stepper share one real-clock registry.
fn shared_memory_run(steps: usize) -> MetricsSnapshot {
    let metrics = Metrics::recording();
    let e = Euler::<2>::new(1.4);
    let solver = SolverConfig::new(e.clone(), Scheme::muscl_rusanov())
        .with_cfl(0.3)
        .with_metrics(metrics.clone());

    let make_grid = || {
        BlockGrid::new(
            RootLayout::unit([4, 4], Boundary::Outflow),
            GridParams::new([8, 8], 2, 4, 2),
        )
    };
    let ic = |g: &mut BlockGrid<2>| problems::sedov_blast(g, &e, [0.5, 0.5], 0.1, 20.0);

    // AMR: adapt cadence 2 guarantees adapt spans even in --quick runs
    let mut sim = AmrSimulation::new(
        make_grid(),
        solver.clone(),
        GradientCriterion::new(3, 0.08, 0.03),
        AmrConfig { adapt_every: 2, max_steps: 10_000 },
    );
    sim.initial_adapt_with(2, None, |g| ic(g));
    for _ in 0..steps {
        sim.advance(None);
    }

    // pool-parallel stepping on a fresh uniform grid, same registry
    let mut grid = make_grid();
    ic(&mut grid);
    let mut par = ParStepper::new(solver);
    for _ in 0..steps {
        let dt = par.max_dt(&grid);
        par.step_rk2(&mut grid, dt);
    }
    metrics.snapshot()
}

/// Modeled 64-rank run on the virtual clock; returns (snapshot, json).
fn cost_model_run(steps: usize) -> (MetricsSnapshot, String) {
    const NRANKS: usize = 64;
    let metrics = Metrics::with_virtual_clock();
    // 8 blocks per rank, topology 4^3 costed as 16^3 MHD (paper scaling)
    let grid = ablock_bench::mhd_grid_3d(near_cubic_factors(8 * NRANKS), 4, 0, 0);
    let owner: HashMap<_, _> = partition_grid(&grid, NRANKS, Policy::SfcHilbert);
    let params = CostParams::t3d_like(700.0 / 33.0e6, 16.0, 4.0, 8.0);
    let mut engine = SolverConfig::new(Euler::<3>::new(1.4), Scheme::muscl_rusanov())
        .with_metrics(metrics.clone())
        .engine();
    for step in 0..steps {
        let cost = model_step_cached(&grid, &mut engine, &owner, NRANKS, &params);
        record_step_phases(&metrics, &cost, &params);
        if (step + 1) % 4 == 0 {
            // model an adapt that migrates ~5% of one rank's cells
            let migrated = cost.ranks[0].cells * params.nvar * 0.05;
            record_adapt_phases(&metrics, NRANKS, migrated, &params);
        }
    }
    let snap = metrics.snapshot();
    let json = snap.to_json();
    (snap, json)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (sm_steps, cm_steps) = if quick { (4, 8) } else { (12, 64) };

    let shared = shared_memory_run(sm_steps);

    let (model, model_json) = cost_model_run(cm_steps);
    let (_, model_json2) = cost_model_run(cm_steps);
    assert_eq!(
        model_json, model_json2,
        "virtual-clock cost-model metrics must be byte-identical across runs"
    );
    println!(
        "determinism self-check: two {cm_steps}-step cost-model replays \
         serialized to identical {}-byte JSON\n",
        model_json.len()
    );

    phase_table(
        "OBL: per-phase totals (ms), measured vs modeled",
        &PHASES,
        &[("shared_mem", &shared), ("model_64rank", &model)],
    )
    .print();
    println!();
    spans_table("shared-memory span detail", &shared).print();
    println!();
    spans_table("64-rank cost-model span detail", &model).print();

    for ph in PHASES {
        assert!(
            shared.span_total_ns(ph) > 0,
            "shared-memory run recorded no time in phase '{ph}'"
        );
        assert!(
            model.span_total_ns(ph) > 0,
            "cost-model run recorded no time in phase '{ph}'"
        );
    }

    let mut out = Vec::new();
    out.extend_from_slice(b"{\n\"shared_memory\": ");
    write_metrics_json(&mut out, &shared).expect("vec write");
    while out.last() == Some(&b'\n') {
        out.pop();
    }
    out.extend_from_slice(b",\n\"cost_model_64rank\": ");
    out.extend_from_slice(model_json.trim_end().as_bytes());
    out.extend_from_slice(b"\n}\n");
    std::fs::write("BENCH_phase.json", &out).expect("write BENCH_phase.json");
    println!("\nwrote BENCH_phase.json ({} bytes)", out.len());
}

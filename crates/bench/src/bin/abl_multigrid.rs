//! ABL-7: multigrid on block grids — the "other problems involving
//! spatial decomposition" claim (paper, final section), quantified.
//!
//! Solves `∇²u = f` with V-cycles whose smoothers are per-block kernels
//! and whose transfers are the AMR restriction/prolongation operators.
//! Prints the V-cycle residual history at several resolutions (the
//! constant convergence factor is the multigrid signature) and the
//! wall-clock comparison against single-level Jacobi.

use ablock_bench::time_it;
use ablock_io::{fmt_g, Table};
use ablock_solver::poisson::{MultigridPoisson, PoissonBc};
use std::f64::consts::PI;

fn main() {
    let rhs = |x: [f64; 2]| -2.0 * PI * PI * (PI * x[0]).sin() * (PI * x[1]).sin();
    let exact = |x: [f64; 2]| (PI * x[0]).sin() * (PI * x[1]).sin();

    let mut t = Table::new(
        "ABL-7a: V-cycle residual history (Dirichlet Poisson, 8^2-cell blocks)",
        &["grid", "cycle 1", "cycle 2", "cycle 3", "cycle 4", "cycle 5", "factor"],
    );
    for levels in [3usize, 4, 5] {
        let n = 8 << (levels - 1);
        let mut mg = MultigridPoisson::<2>::new([1, 1], 8, levels, PoissonBc::Dirichlet0);
        mg.set_rhs(rhs);
        let finest = levels - 1;
        let mut history = Vec::new();
        let r0 = mg.residual_norm(finest);
        let mut prev = r0;
        for _ in 0..5 {
            mg.vcycle_public(finest);
            let r = mg.residual_norm(finest);
            history.push(r / r0);
            prev = r;
        }
        let _ = prev;
        let factor = (history[4] / history[1]).powf(1.0 / 3.0);
        let mut row = vec![format!("{n}^2")];
        row.extend(history.iter().map(|r| fmt_g(*r)));
        row.push(format!("{factor:.3}"));
        t.row(&row);
    }
    t.print();
    println!("multigrid signature: the factor column is flat across resolutions.\n");

    let mut t2 = Table::new(
        "ABL-7b: V-cycles vs single-level Jacobi to 1e-8 (64^2)",
        &["method", "iterations", "seconds", "solution err"],
    );
    let mut mg = MultigridPoisson::<2>::new([1, 1], 8, 4, PoissonBc::Dirichlet0);
    mg.set_rhs(rhs);
    let r0 = mg.residual_norm(3);
    let mut cycles = 0;
    let mg_time = time_it(|| {
        cycles = mg.solve(r0 * 1e-8, 60).0;
    });
    t2.row(&[
        "multigrid V(2,2)".into(),
        cycles.to_string(),
        format!("{mg_time:.3}"),
        fmt_g(mg.error_against(exact)),
    ]);

    let mut jac = MultigridPoisson::<2>::new([8, 8], 8, 1, PoissonBc::Dirichlet0);
    jac.set_rhs(rhs);
    let r0j = jac.residual_norm(0);
    let mut sweeps = 0usize;
    let jac_time = time_it(|| {
        while jac.residual_norm(0) > r0j * 1e-8 && sweeps < 60_000 {
            jac.smooth_public(0);
            sweeps += 1;
        }
    });
    t2.row(&[
        "damped Jacobi".into(),
        sweeps.to_string(),
        format!("{jac_time:.3}"),
        fmt_g(jac.error_against(exact)),
    ]);
    t2.print();
    println!(
        "blocks pay off twice: the smoother is a dense per-block kernel (Fig. 5's\n\
         argument) and the V-cycle transfers are the AMR prolongation/restriction\n\
         operators reused verbatim."
    );
}

//! Incremental-rebalance scaling harness (`BENCH_rebalance.json`).
//!
//! The acceptance claim of the cut-point rebalance (ISSUE 8 / DESIGN.md
//! §16): after a *single-block* adapt, the migration volume tracks the
//! SFC cut count — O(ranks whose interval moved) — and **not** the total
//! block count. This binary measures exactly that, as pure plan
//! computation (no message-passing machine), so 4096 virtual ranks over
//! tens of thousands of blocks run in milliseconds:
//!
//! for each `(P, B)` with `B/P` in the production blocks-per-rank
//! regime: build a `B`-block 3-D topology grid (1 tracer var — the plan
//! only reads the topology; bytes are modeled at the 8-var MHD payload),
//! partition onto `P` virtual ranks with the default Hilbert cut-point
//! partitioner, refine one mid-walk block, splice the walk, inherit
//! ownership, re-plan, and record migrated blocks / bytes / rank pairs
//! from the plan's exact migration list.
//!
//! Asserted (CI runs `--quick`):
//! * every plan migrates something (the refined interval really moved),
//! * at fixed `P`, doubling `B` leaves the migrated count within 1.5× —
//!   migration scales with the cut count, not the grid,
//! * migrated blocks stay below `8 P` (linear in ranks with slack) and
//!   below half the grid.

use ablock_bench::near_cubic_factors;
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};
use ablock_core::partition::{cell_weights, inherit_owner, CurveWalk, Partitioner};
use ablock_io::Table;
use std::collections::HashMap;

/// MHD state size per cell in bytes (8 vars × f64).
const BYTES_PER_CELL: usize = 8 * 8;

struct Row {
    ranks: usize,
    blocks: usize,
    migrated: usize,
    bytes: usize,
    ranks_touched: usize,
    pair_msgs: usize,
}

/// One single-block-adapt rebalance at `vranks` over a `total_blocks`
/// grid of 4³-cell blocks; returns the plan's exact migration counts.
fn single_adapt_migration(vranks: usize, total_blocks: usize) -> Row {
    let part = Partitioner::default();
    let mut g = BlockGrid::<3>::new(
        RootLayout::unit(near_cubic_factors(total_blocks), Boundary::Periodic),
        GridParams::new([4, 4, 4], 2, 1, 1),
    );
    let mut walk = CurveWalk::build(&g, part.curve());
    let weights = cell_weights(&g, &walk);
    let assign = part.assign(&weights, vranks);
    let owner_by_key: HashMap<BlockKey<3>, usize> =
        walk.entries().iter().zip(&assign).map(|(e, &r)| (e.key, r)).collect();

    // the single-block adapt: refine the walk-middle block, splice
    let mid = walk.entries()[walk.len() / 2].key;
    let id = g.find(mid).expect("walk key is a leaf");
    g.refine(id, Transfer::None).expect("level-0 refine is legal");
    walk.apply_adapt(&[mid], &[], &g);
    let prev = inherit_owner(&g, &owner_by_key);

    let weights = cell_weights(&g, &walk);
    let plan = part.plan(&walk, &weights, vranks, |id| prev[&id]);
    let cells: f64 = plan.moves.iter().map(|m| weights[walk.position(&m.key).unwrap()]).sum();
    Row {
        ranks: vranks,
        blocks: g.num_blocks(),
        migrated: plan.migrated(),
        bytes: cells as usize * BYTES_PER_CELL,
        ranks_touched: plan.ranks_touched(),
        pair_msgs: plan.pairs().len(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // block counts scale with P (8/16/32 blocks per rank — the weak-
    // scaling regime): at each P the migrated column must stay flat as
    // the blocks column doubles
    let multipliers: &[usize] = if quick { &[8, 16] } else { &[8, 16, 32] };
    let ps: &[usize] = &[512, 1024, 4096];

    let mut rows = Vec::new();
    let mut t = Table::new(
        "incremental rebalance after a single-block adapt (plan computation)",
        &["P", "blocks", "migrated", "mig/blocks", "KiB moved", "ranks touched", "pair msgs"],
    );
    for &p in ps {
        for &m in multipliers {
            let r = single_adapt_migration(p, m * p);
            t.row(&[
                r.ranks.to_string(),
                r.blocks.to_string(),
                r.migrated.to_string(),
                format!("{:.4}", r.migrated as f64 / r.blocks as f64),
                format!("{:.1}", r.bytes as f64 / 1024.0),
                r.ranks_touched.to_string(),
                r.pair_msgs.to_string(),
            ]);
            rows.push(r);
        }
    }
    t.print();

    // --- the scaling assertions --------------------------------------
    for group in rows.chunks(multipliers.len()) {
        let (small, large) = (&group[0], group.last().unwrap());
        assert!(small.migrated > 0, "P={}: single-block adapt moved nothing", small.ranks);
        assert!(
            2 * large.migrated < large.blocks,
            "P={}: migrated {} is O(total blocks {})",
            large.ranks,
            large.migrated,
            large.blocks
        );
        assert!(
            large.migrated <= 8 * large.ranks,
            "P={}: migrated {} outgrew the rank count",
            large.ranks,
            large.migrated
        );
        // blocks doubled (or quadrupled); migration must track the cuts
        assert!(
            2 * large.migrated <= 3 * small.migrated,
            "P={}: migrated grew with the grid ({} -> {} when blocks {} -> {})",
            large.ranks,
            small.migrated,
            large.migrated,
            small.blocks,
            large.blocks
        );
    }
    println!(
        "\nmigrated blocks track the SFC cut count (O(ranks), flat in total blocks):\n\
         the per-adapt gather_full collective is gone from the rebalance path."
    );

    // --- BENCH_rebalance.json ----------------------------------------
    let mut out = String::from("{\n\"single_block_adapt\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"ranks\": {}, \"blocks\": {}, \"migrated_blocks\": {}, \
             \"migrated_bytes\": {}, \"ranks_touched\": {}, \"pair_msgs\": {}}}{}\n",
            r.ranks,
            r.blocks,
            r.migrated,
            r.bytes,
            r.ranks_touched,
            r.pair_msgs,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n}\n");
    std::fs::write("BENCH_rebalance.json", out).expect("write BENCH_rebalance.json");
    println!("wrote BENCH_rebalance.json ({} rows)", rows.len());
}

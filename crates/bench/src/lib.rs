//! # ablock-bench — the evaluation harness
//!
//! One target per figure and table of the SC'97 *Adaptive Blocks* paper,
//! plus the ablations DESIGN.md calls out. Binaries print the same
//! rows/series the paper reports (`cargo run --release -p ablock-bench
//! --bin <name>`); Criterion benches cover the hot kernels
//! (`cargo bench -p ablock-bench`).
//!
//! | target | regenerates |
//! |--------|-------------|
//! | `fig2_fig4_structure` | Figs. 2 & 4 (block vs quadtree decomposition drawings) |
//! | `fig3_structure` | Fig. 3 (3-D decomposition statistics + slice render) |
//! | `fig5_table` | Fig. 5 (time per cell vs block size, + padding/sub-blocking remedies) |
//! | `fig6_weak_scaling` | Fig. 6 (scaled problem size, efficiency to 512 PEs) |
//! | `fig7_strong_scaling` | Fig. 7 (fixed problem, speedup relative to 64 PEs) |
//! | `tab_neighbor_bounds` | the 2^(k(d−1)) face-neighbor bound (prose claim) |
//! | `tab_ghost_ratio` | ghost/computational cell ratio argument (prose claim) |
//! | `abl_adaptive_efficiency` | cells used: blocks vs cell tree vs uniform |
//! | `abl_load_balance` | partition policy comparison |
//! | `abl_cascade` | cascade extent vs the k-level jump knob |
//! | `abl_ghost_depth` | ghost depth ↔ spatial order interplay |
//! | bench `fig5_time_per_cell` | criterion version of the Fig. 5 kernel sweep |
//! | bench `abl_neighbor_lookup` | pointer lookup vs tree traversal (ABL-1) |
//! | bench `ghost_and_adapt` | exchange build/fill and adapt costs |

use std::time::Instant;

use ablock_core::ghost::{GhostConfig, GhostExchange};
use ablock_core::grid::{BlockGrid, GridParams};
use ablock_core::layout::{Boundary, RootLayout};
use ablock_solver::kernel::{compute_rhs_block, Scheme};
use ablock_solver::mhd::IdealMhd;
use ablock_solver::physics::Physics;
use ablock_solver::problems;

/// A 3-D MHD grid of `roots` root blocks with `m`-cubed cells per block,
/// loaded with the spherical blast workload (the scaling figures' problem).
pub fn mhd_grid_3d(roots: [i64; 3], m: i64, pad: i64, max_level: u8) -> BlockGrid<3> {
    let mhd = IdealMhd::new(5.0 / 3.0);
    let params = GridParams::new([m, m, m], 2, 8, max_level).with_pad(pad);
    let mut grid = BlockGrid::new(RootLayout::unit(roots, Boundary::Periodic), params);
    problems::mhd_blast(&mut grid, &mhd, [0.5, 0.5, 0.5], 0.25, 10.0, 0.5);
    grid
}

/// Measured nanoseconds per interior cell for one full RHS evaluation
/// (ghost fill + kernel) over the grid, averaged over `reps` repetitions.
pub fn measure_ns_per_cell<P: Physics>(
    grid: &mut BlockGrid<3>,
    phys: &P,
    scheme: Scheme,
    reps: usize,
) -> f64 {
    let plan = GhostExchange::build(grid, GhostConfig::default());
    let shape = grid.params().field_shape();
    let mut rhs = ablock_core::field::FieldBlock::zeros(shape);
    let mut scratch = Vec::new();
    // warm up once
    plan.fill(grid);
    let ids = grid.block_ids();
    let t0 = Instant::now();
    for _ in 0..reps {
        plan.fill(grid);
        for &id in &ids {
            let node = grid.block(id);
            let h = grid.layout().cell_size(node.key().level, grid.params().block_dims);
            compute_rhs_block(phys, scheme, node.field(), h, &mut rhs, &mut scratch);
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    elapsed * 1e9 / (reps as f64 * grid.num_cells() as f64)
}

/// Like [`measure_ns_per_cell`], but times each repetition separately and
/// returns the fastest one. On a shared host, interference only ever adds
/// time, so the per-rep minimum is the tightest estimate of the true cost;
/// the mean smears a single noisy rep over the whole measurement.
pub fn measure_ns_per_cell_min<P: Physics>(
    grid: &mut BlockGrid<3>,
    phys: &P,
    scheme: Scheme,
    reps: usize,
) -> f64 {
    let plan = GhostExchange::build(grid, GhostConfig::default());
    let shape = grid.params().field_shape();
    let mut rhs = ablock_core::field::FieldBlock::zeros(shape);
    let mut scratch = Vec::new();
    plan.fill(grid);
    let ids = grid.block_ids();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        plan.fill(grid);
        for &id in &ids {
            let node = grid.block(id);
            let h = grid.layout().cell_size(node.key().level, grid.params().block_dims);
            compute_rhs_block(phys, scheme, node.field(), h, &mut rhs, &mut scratch);
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best * 1e9 / grid.num_cells() as f64
}

/// Time a closure, returning seconds.
pub fn time_it(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// Pick three near-cubic factors of `n` (root lattice shapes for scaling
/// studies).
pub fn near_cubic_factors(n: usize) -> [i64; 3] {
    let hint = (n as f64).cbrt();
    let mut best = [1i64, 1, n as i64];
    let mut best_score = f64::INFINITY;
    for a in 1..=(n as i64) {
        if n as i64 % a != 0 {
            continue;
        }
        let rest = n as i64 / a;
        for b in 1..=rest {
            if rest % b != 0 {
                continue;
            }
            let c = rest / b;
            let score = (a as f64 - hint).abs() + (b as f64 - hint).abs() + (c as f64 - hint).abs();
            if score < best_score {
                best_score = score;
                best = [a, b, c];
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_cubic() {
        assert_eq!(near_cubic_factors(8), [2, 2, 2]);
        assert_eq!(near_cubic_factors(64), [4, 4, 4]);
        let f = near_cubic_factors(24);
        assert_eq!(f.iter().product::<i64>(), 24);
        assert!(f.iter().all(|&x| x >= 2));
    }

    #[test]
    fn mhd_grid_builds_and_measures() {
        let mut g = mhd_grid_3d([2, 2, 2], 4, 0, 1);
        assert_eq!(g.num_cells(), 8 * 64);
        let mhd = IdealMhd::new(5.0 / 3.0);
        let ns = measure_ns_per_cell(&mut g, &mhd, Scheme::first_order(), 1);
        assert!(ns > 0.0 && ns < 1e7);
    }
}

//! ABL-1: neighbor location cost — stored face pointers (adaptive blocks)
//! versus parent/child tree traversal (cell-based tree).
//!
//! The paper: blocks "locate neighbors directly, as do unstructured
//! grids, rather than using parent/child tree traversals … in a parallel
//! system these cells may be located on different processors, so that
//! extensive interprocessor communication would be required."
//!
//! Runs on the in-repo [`ablock_testkit::Bench`] timer (`harness = false`).

use ablock_celltree::{CellNeighbor, CellTree};
use ablock_core::balance::refine_ball_to_level;
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::index::Face;
use ablock_core::layout::{Boundary, RootLayout};
use ablock_testkit::Bench;

fn main() {
    let mut grid = BlockGrid::<2>::new(
        RootLayout::unit([4, 4], Boundary::Periodic),
        GridParams::new([4, 4], 2, 1, 4),
    );
    refine_ball_to_level(&mut grid, [0.5, 0.5], 0.2, 3, Transfer::None);
    let ids = grid.block_ids();
    let queries = (ids.len() * 4) as u64;
    println!("abl1_neighbor_lookup:");
    let meas = Bench::new("blocks_pointer").iters(50).run(|| {
        let mut acc = 0usize;
        for &id in &ids {
            let node = grid.block(id);
            for f in Face::all::<2>() {
                acc += node.face(f).ids().len();
            }
        }
        std::hint::black_box(acc);
    });
    println!("    {:>12.1} Mqueries/s", meas.throughput(queries) / 1e6);

    // the same adapted region as a cell tree (each block cell is a leaf)
    let mut tree = CellTree::<2>::new(RootLayout::unit([16, 16], Boundary::Periodic), 1, 4);
    // refine the central disc three levels
    for _ in 0..3 {
        for id in tree.leaf_ids() {
            let x = tree.cell_center(tree.node(id).key);
            let r = ((x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2)).sqrt();
            let n = tree.node(id);
            if r < 0.2 && n.key.level < 3 && n.is_leaf() {
                tree.refine(id);
            }
        }
    }
    tree.balance_21();
    let leaves = tree.leaf_ids();
    let tree_queries = (leaves.len() * 4) as u64;
    let meas = Bench::new("tree_traversal").iters(50).run(|| {
        let mut acc = 0usize;
        for &id in &leaves {
            for f in Face::all::<2>() {
                match tree.neighbor(id, f) {
                    CellNeighbor::Same(_) | CellNeighbor::Coarser(_) => acc += 1,
                    CellNeighbor::Finer(n) => acc += tree.leaves_on_face(n, f.opposite()).len(),
                    CellNeighbor::Boundary(_) => {}
                }
            }
        }
        std::hint::black_box(acc);
    });
    println!("    {:>12.1} Mqueries/s", meas.throughput(tree_queries) / 1e6);
}

//! Fig. 5 kernel sweep: per-cell cost of the 3-D ideal-MHD block update
//! as a function of block size, plus the padding remedy. (The full table
//! with the cell-tree endpoint is the `fig5_table` binary; this bench
//! gives quick wall-clock timings for the core curve.)
//!
//! Runs on the in-repo [`ablock_testkit::Bench`] timer (`harness = false`).

use ablock_bench::mhd_grid_3d;
use ablock_core::field::FieldBlock;
use ablock_core::ghost::{GhostConfig, GhostExchange};
use ablock_solver::kernel::{compute_rhs_block, Scheme};
use ablock_solver::mhd::IdealMhd;
use ablock_testkit::Bench;

fn bench_block_sizes() {
    let mhd = IdealMhd::new(5.0 / 3.0);
    println!("fig5_time_per_cell:");
    for &m in &[2i64, 4, 8, 16, 32] {
        let r = (32 / m).max(1);
        let mut grid = mhd_grid_3d([r, r, r], m, 0, 0);
        let plan = GhostExchange::build(&grid, GhostConfig::default());
        plan.fill(&mut grid);
        let shape = grid.params().field_shape();
        let mut rhs = FieldBlock::zeros(shape);
        let mut scratch = Vec::new();
        let cells = grid.num_cells() as u64;
        let meas = Bench::new(&format!("mhd_rhs/{m}^3")).iters(10).run(|| {
            for id in grid.block_ids() {
                let node = grid.block(id);
                let h = grid
                    .layout()
                    .cell_size(node.key().level, grid.params().block_dims);
                compute_rhs_block(
                    &mhd,
                    Scheme::muscl_rusanov(),
                    node.field(),
                    h,
                    &mut rhs,
                    &mut scratch,
                );
            }
        });
        println!("    {:>12.1} Mcells/s", meas.throughput(cells) / 1e6);
    }
}

fn bench_padding() {
    let mhd = IdealMhd::new(5.0 / 3.0);
    println!("fig5_padding_remedy:");
    for &pad in &[0i64, 2] {
        let mut grid = mhd_grid_3d([2, 2, 2], 12, pad, 0);
        let plan = GhostExchange::build(&grid, GhostConfig::default());
        plan.fill(&mut grid);
        let shape = grid.params().field_shape();
        let mut rhs = FieldBlock::zeros(shape);
        let mut scratch = Vec::new();
        let cells = grid.num_cells() as u64;
        let meas = Bench::new(&format!("pad/{pad}")).iters(10).run(|| {
            for id in grid.block_ids() {
                let node = grid.block(id);
                let h = grid
                    .layout()
                    .cell_size(node.key().level, grid.params().block_dims);
                compute_rhs_block(
                    &mhd,
                    Scheme::muscl_rusanov(),
                    node.field(),
                    h,
                    &mut rhs,
                    &mut scratch,
                );
            }
        });
        println!("    {:>12.1} Mcells/s", meas.throughput(cells) / 1e6);
    }
}

fn main() {
    bench_block_sizes();
    bench_padding();
}

//! Criterion version of the Fig. 5 kernel sweep: per-cell cost of the 3-D
//! ideal-MHD block update as a function of block size, plus the padding
//! remedy. (The full table with the cell-tree endpoint is the
//! `fig5_table` binary; this bench gives statistically robust timings for
//! the core curve.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ablock_bench::mhd_grid_3d;
use ablock_core::field::FieldBlock;
use ablock_core::ghost::{GhostConfig, GhostExchange};
use ablock_solver::kernel::{compute_rhs_block, Scheme};
use ablock_solver::mhd::IdealMhd;

fn bench_block_sizes(c: &mut Criterion) {
    let mhd = IdealMhd::new(5.0 / 3.0);
    let mut group = c.benchmark_group("fig5_time_per_cell");
    group.sample_size(10);
    for &m in &[2i64, 4, 8, 16, 32] {
        let r = (32 / m).max(1);
        let mut grid = mhd_grid_3d([r, r, r], m, 0, 0);
        let plan = GhostExchange::build(&grid, GhostConfig::default());
        plan.fill(&mut grid);
        let shape = grid.params().field_shape();
        let mut rhs = FieldBlock::zeros(shape);
        let mut scratch = Vec::new();
        let cells = grid.num_cells() as u64;
        group.throughput(Throughput::Elements(cells));
        group.bench_with_input(BenchmarkId::new("mhd_rhs", format!("{m}^3")), &m, |b, _| {
            b.iter(|| {
                for id in grid.block_ids() {
                    let node = grid.block(id);
                    let h = grid
                        .layout()
                        .cell_size(node.key().level, grid.params().block_dims);
                    compute_rhs_block(
                        &mhd,
                        Scheme::muscl_rusanov(),
                        node.field(),
                        h,
                        &mut rhs,
                        &mut scratch,
                    );
                }
            })
        });
    }
    group.finish();
}

fn bench_padding(c: &mut Criterion) {
    let mhd = IdealMhd::new(5.0 / 3.0);
    let mut group = c.benchmark_group("fig5_padding_remedy");
    group.sample_size(10);
    for &pad in &[0i64, 2] {
        let mut grid = mhd_grid_3d([2, 2, 2], 12, pad, 0);
        let plan = GhostExchange::build(&grid, GhostConfig::default());
        plan.fill(&mut grid);
        let shape = grid.params().field_shape();
        let mut rhs = FieldBlock::zeros(shape);
        let mut scratch = Vec::new();
        group.throughput(Throughput::Elements(grid.num_cells() as u64));
        group.bench_with_input(BenchmarkId::new("pad", pad), &pad, |b, _| {
            b.iter(|| {
                for id in grid.block_ids() {
                    let node = grid.block(id);
                    let h = grid
                        .layout()
                        .cell_size(node.key().level, grid.params().block_dims);
                    compute_rhs_block(
                        &mhd,
                        Scheme::muscl_rusanov(),
                        node.field(),
                        h,
                        &mut rhs,
                        &mut scratch,
                    );
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_block_sizes, bench_padding);
criterion_main!(benches);

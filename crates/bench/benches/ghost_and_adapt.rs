//! Exchange and adaptation costs: the overheads the paper argues are
//! amortized over whole blocks.
//!
//! * ghost fill throughput (values moved per second) on an adapted grid;
//! * exchange-plan rebuild cost (paid once per adapt, not per step);
//! * a full refine+coarsen round trip with conservative transfer.
//!
//! Runs on the in-repo [`ablock_testkit::Bench`] timer (`harness = false`).

use ablock_core::balance::refine_ball_to_level;
use ablock_core::ghost::{GhostConfig, GhostExchange};
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};
use ablock_core::ops::ProlongOrder;
use ablock_testkit::Bench;

fn adapted_grid() -> BlockGrid<3> {
    let mut g = BlockGrid::<3>::new(
        RootLayout::unit([2, 2, 2], Boundary::Periodic),
        GridParams::new([8, 8, 8], 2, 8, 3),
    );
    refine_ball_to_level(&mut g, [0.5, 0.5, 0.5], 0.2, 2, Transfer::None);
    g
}

fn bench_ghost_fill() {
    let mut g = adapted_grid();
    let plan = GhostExchange::build(&g, GhostConfig::default());
    let values = plan.comm_volume(&g) as u64;
    println!("ghost_exchange:");
    let meas = Bench::new("fill").iters(20).run(|| {
        plan.fill(&mut g);
    });
    println!("    {:>12.1} Mvalues/s", meas.throughput(values) / 1e6);
    Bench::new("build_plan").iters(20).run(|| {
        std::hint::black_box(GhostExchange::build(&g, GhostConfig::default()).num_tasks());
    });
}

fn bench_adapt_roundtrip() {
    println!("adapt:");
    let mut g = BlockGrid::<3>::new(
        RootLayout::unit([2, 2, 2], Boundary::Periodic),
        GridParams::new([8, 8, 8], 2, 8, 2),
    );
    let key = BlockKey::new(0, [0, 0, 0]);
    Bench::new("refine_coarsen_roundtrip").iters(20).run(|| {
        let id = g.find(key).unwrap();
        g.refine(id, Transfer::Conservative(ProlongOrder::LinearMinmod)).unwrap();
        g.coarsen(key, Transfer::Conservative(ProlongOrder::Constant)).unwrap();
    });
}

fn main() {
    bench_ghost_fill();
    bench_adapt_roundtrip();
}

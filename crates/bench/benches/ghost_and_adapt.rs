//! Exchange and adaptation costs: the overheads the paper argues are
//! amortized over whole blocks.
//!
//! * ghost fill throughput (values moved per second) on an adapted grid;
//! * exchange-plan rebuild cost (paid once per adapt, not per step);
//! * a full refine+coarsen round trip with conservative transfer.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use ablock_core::balance::refine_ball_to_level;
use ablock_core::ghost::{GhostConfig, GhostExchange};
use ablock_core::grid::{BlockGrid, GridParams, Transfer};
use ablock_core::key::BlockKey;
use ablock_core::layout::{Boundary, RootLayout};
use ablock_core::ops::ProlongOrder;

fn adapted_grid() -> BlockGrid<3> {
    let mut g = BlockGrid::<3>::new(
        RootLayout::unit([2, 2, 2], Boundary::Periodic),
        GridParams::new([8, 8, 8], 2, 8, 3),
    );
    refine_ball_to_level(&mut g, [0.5, 0.5, 0.5], 0.2, 2, Transfer::None);
    g
}

fn bench_ghost_fill(c: &mut Criterion) {
    let mut g = adapted_grid();
    let plan = GhostExchange::build(&g, GhostConfig::default());
    let values = plan.comm_volume(&g) as u64;
    let mut group = c.benchmark_group("ghost_exchange");
    group.sample_size(20);
    group.throughput(Throughput::Elements(values));
    group.bench_function("fill", |b| b.iter(|| plan.fill(&mut g)));
    group.bench_function("build_plan", |b| {
        b.iter(|| GhostExchange::build(&g, GhostConfig::default()).num_tasks())
    });
    group.finish();
}

fn bench_adapt_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("adapt");
    group.sample_size(20);
    group.bench_function("refine_coarsen_roundtrip", |b| {
        let mut g = BlockGrid::<3>::new(
            RootLayout::unit([2, 2, 2], Boundary::Periodic),
            GridParams::new([8, 8, 8], 2, 8, 2),
        );
        let key = BlockKey::new(0, [0, 0, 0]);
        b.iter(|| {
            let id = g.find(key).unwrap();
            g.refine(id, Transfer::Conservative(ProlongOrder::LinearMinmod));
            g.coarsen(key, Transfer::Conservative(ProlongOrder::Constant));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ghost_fill, bench_adapt_roundtrip);
criterion_main!(benches);

//! Concurrency and determinism tests for the metrics registry
//! (DESIGN.md §12 satellite): counters and histograms are documented as
//! recordable from any thread — hammer them from many threads and demand
//! exact totals — and two identical virtual-clock replays must serialize
//! to byte-identical JSON.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use ablock_obs::{Metrics, MetricsSnapshot};

const THREADS: usize = 8;
const ITERS: u64 = 2_000;

#[test]
fn concurrent_counters_record_exact_totals() {
    let m = Metrics::recording();
    thread::scope(|s| {
        for t in 0..THREADS {
            let m = m.clone();
            s.spawn(move || {
                for i in 0..ITERS {
                    m.incr("shared", 1);
                    m.incr(&format!("per_thread/{t}"), 2);
                    m.observe("values", i % 17);
                }
            });
        }
    });
    let snap = m.snapshot();
    assert_eq!(snap.counter("shared"), THREADS as u64 * ITERS);
    for t in 0..THREADS {
        assert_eq!(snap.counter(&format!("per_thread/{t}")), 2 * ITERS);
    }
    let h = &snap.hists["values"];
    assert_eq!(h.count, THREADS as u64 * ITERS);
    // sum of (i % 17) over 0..2000, times the thread count
    let per_thread: u64 = (0..ITERS).map(|i| i % 17).sum();
    assert_eq!(h.sum, THREADS as u64 * per_thread);
}

#[test]
fn counters_are_monotone_under_concurrent_snapshots() {
    let m = Metrics::recording();
    let done = AtomicU64::new(0);
    thread::scope(|s| {
        let writer_m = m.clone();
        let writer_done = &done;
        s.spawn(move || {
            for _ in 0..ITERS {
                writer_m.incr("ticks", 1);
            }
            writer_done.store(1, Ordering::Release);
        });
        // reader: every snapshot must observe a value >= the previous one
        let mut last = 0;
        loop {
            let now = m.snapshot().counter("ticks");
            assert!(now >= last, "counter went backwards: {last} -> {now}");
            last = now;
            if done.load(Ordering::Acquire) == 1 {
                break;
            }
        }
    });
    assert_eq!(m.snapshot().counter("ticks"), ITERS);
}

/// A miniature cost-model replay: spans, counters, and histograms driven
/// purely off the virtual clock.
fn virtual_replay() -> MetricsSnapshot {
    let m = Metrics::with_virtual_clock();
    for step in 0..20u64 {
        let _outer = m.span("step");
        {
            let _g = m.span("ghost_fill");
            m.advance_ns(50 + step * 3);
        }
        {
            let _f = m.span("flux");
            m.advance_ns(200 + (step % 4) * 7);
        }
        m.incr("steps", 1);
        m.incr("bytes", 1024 + step);
        m.observe("halo_bytes", 1 << (step % 11));
    }
    m.snapshot()
}

#[test]
fn identical_virtual_replays_are_byte_identical_json() {
    let a = virtual_replay();
    let b = virtual_replay();
    assert_eq!(a, b, "snapshots must compare equal");
    let (ja, jb) = (a.to_json(), b.to_json());
    assert_eq!(ja, jb, "JSON must be byte-identical");
    // and the export is anchored to the virtual clock, not wall time
    assert!(ja.contains("\"clock\": \"virtual\""));
    assert!(ja.contains("\"step/flux\""));
    assert_eq!(a.counter("steps"), 20);
    // total virtual time inside "step" = sum of both inner phases
    assert_eq!(
        a.spans["step"].total_ns,
        a.spans["step/ghost_fill"].total_ns + a.spans["step/flux"].total_ns
    );
}

#[test]
fn concurrent_recorders_then_identical_json_modulo_order_independence() {
    // counter merge order must not leak into the export: two runs that
    // record the same multiset of (name, delta) pairs from different
    // thread interleavings serialize identically
    let run = || {
        let m = Metrics::with_virtual_clock();
        thread::scope(|s| {
            for t in 0..THREADS {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..ITERS {
                        m.incr(&format!("rank{t}/sends"), 1);
                        m.incr("total_sends", 1);
                    }
                });
            }
        });
        m.snapshot().to_json()
    };
    assert_eq!(run(), run());
}

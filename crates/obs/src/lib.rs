//! # ablock-obs — observability for adaptive-block solvers
//!
//! Zero-dependency instrumentation shared by every layer of the
//! workspace: the sweep engine, the serial/shared-memory/distributed
//! steppers, the AMR driver, and the message-passing machine all report
//! through one [`Metrics`] handle installed via the solver configuration.
//!
//! Three primitives:
//!
//! * **monotonic counters** ([`Metrics::incr`]) — rebuild/reuse counts,
//!   bytes on the wire, retries, blocks refined;
//! * **value histograms** ([`Metrics::observe`]) — fixed log-2 buckets,
//!   so the recorded *values* path contains no wall-clock and identical
//!   runs produce identical histograms;
//! * **hierarchical span timers** ([`Metrics::span`]) — nested
//!   phase timers ("step/ghost_fill", "step/flux") read from a pluggable
//!   clock.
//!
//! The clock is the substitution point: a real [monotonic
//! clock](Metrics::recording) measures wall time on the host, while a
//! [virtual clock](Metrics::with_virtual_clock) is advanced explicitly by
//! the BSP cost model ([`Metrics::advance_ns`]) so a simulated 512-rank
//! run reports a *deterministic* phase breakdown — two identical
//! cost-model runs serialize to byte-identical JSON.
//!
//! The default handle is the **null sink** ([`Metrics::null`]): every
//! recording call is a single `Option` test and spans are inert guards,
//! so instrumented hot paths cost nothing when observability is off, and
//! results are bitwise identical either way (the solver test suite
//! asserts this).
//!
//! Span discipline: spans nest LIFO on the *control* thread (guards close
//! innermost-first); counters and histograms may be recorded from any
//! thread.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Canonical phase names used across the workspace so exports line up.
pub mod phase {
    /// Ghost-cell exchange (plan execution, local copies + remote fills).
    pub const GHOST_FILL: &str = "ghost_fill";
    /// Reconstruction + Riemann fluxes (the dense per-block kernels).
    pub const FLUX: &str = "flux";
    /// Conserved-variable update (FE/RK2 stage arithmetic + floors).
    pub const UPDATE: &str = "update";
    /// Berger–Colella flux correction at coarse/fine faces.
    pub const REFLUX: &str = "reflux";
    /// Grid adaptation (flagging, cascade, refine/coarsen, transfer).
    pub const ADAPT: &str = "adapt";
    /// Point-to-point communication (halo sends/receives, migration).
    pub const COMM: &str = "comm";
    /// Global reductions (CFL allreduce) and barrier waits.
    pub const REDUCE: &str = "reduce";
    /// Load-balance repartition + block migration.
    pub const REBALANCE: &str = "rebalance";
    /// Packing aggregated per-rank-pair ghost messages (nested under
    /// `ghost_fill`).
    pub const PACK: &str = "pack";
    /// Unpacking aggregated per-rank-pair ghost messages (nested under
    /// `ghost_fill`).
    pub const UNPACK: &str = "unpack";
    /// Interior compute running while aggregated exchanges are in flight
    /// (nested under `ghost_fill`; the `flux` span it encloses is the
    /// overlapped interior sub-sweep).
    pub const OVERLAP: &str = "overlap";
    /// Incremental snapshot write (leaf hashing + manifest build).
    pub const SNAPSHOT: &str = "snapshot";
    /// Post-failure state reconstruction (missing-node fetch + pour).
    pub const RECOVER: &str = "recover";
}

/// Canonical counter names for the content-addressed snapshot layer and
/// the delta-proportional recovery protocol (`ablock-par::recover`).
/// Snapshot counters measure dedup efficacy (what an every-step cadence
/// actually writes); recovery counters measure where a restarting rank's
/// blocks came from — the acceptance criterion is `nodes_peer` +
/// `nodes_store` ≈ lost blocks, with everything else served locally.
pub mod counter {
    /// Nodes newly written to the durable store by a snapshot.
    pub const SNAP_NODES_NEW: &str = "snap.nodes_new";
    /// Nodes a snapshot deduplicated against the store.
    pub const SNAP_NODES_SHARED: &str = "snap.nodes_shared";
    /// Bytes newly written to the durable store by a snapshot.
    pub const SNAP_BYTES_NEW: &str = "snap.bytes_new";
    /// Bytes a snapshot deduplicated (full-write cost avoided).
    pub const SNAP_BYTES_SHARED: &str = "snap.bytes_shared";
    /// Leaf nodes replicated to the ring buddy at checkpoint time.
    pub const SNAP_REPLICA_NODES: &str = "snap.replica_nodes";
    /// f64 values shipped to the ring buddy at checkpoint time.
    pub const SNAP_REPLICA_VALUES: &str = "snap.replica_values";
    /// Blocks a restarting rank restored from its own slot store.
    pub const REC_NODES_LOCAL: &str = "recover.nodes_local";
    /// Blocks fetched from a surviving peer during recovery.
    pub const REC_NODES_PEER: &str = "recover.nodes_peer";
    /// Blocks read from the durable store (peer miss / timeout / corrupt).
    pub const REC_NODES_STORE: &str = "recover.nodes_store";
    /// f64 values transferred from peers during recovery.
    pub const REC_PEER_VALUES: &str = "recover.peer_values";
    /// Peer fetches that timed out and fell back to the durable store.
    pub const REC_FETCH_TIMEOUTS: &str = "recover.fetch_timeouts";
    /// Peer responses rejected by the manifest content hash.
    pub const REC_HASH_MISMATCH: &str = "recover.hash_mismatch";
}

/// Which clock a registry reads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ClockKind {
    /// Host monotonic clock (`std::time::Instant`), origin at creation.
    Monotonic,
    /// Explicitly advanced tick counter; see [`Metrics::advance_ns`].
    Virtual,
}

/// Totals for one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Times the span was opened and closed.
    pub count: u64,
    /// Total nanoseconds (clock ticks) spent inside.
    pub total_ns: u64,
}

/// Number of log-2 histogram buckets: bucket `i` holds values `v` with
/// `floor(log2(v)) + 1 == i` (bucket 0 holds only `v == 0`).
pub const HIST_BUCKETS: usize = 65;

/// A fixed log-2 bucket histogram of `u64` values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket counts; see [`HIST_BUCKETS`] for the bucket rule.
    pub buckets: [u64; HIST_BUCKETS],
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; HIST_BUCKETS], count: 0, sum: 0 }
    }
}

impl Histogram {
    /// Bucket index for a value.
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }
}

/// The mutable state behind a recording [`Metrics`] handle.
struct Registry {
    clock: ClockKind,
    origin: Instant,
    virtual_ns: u64,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStat>,
    /// Open-span name stack (control thread only); keys are joined paths.
    stack: Vec<&'static str>,
}

impl Registry {
    fn new(clock: ClockKind) -> Self {
        Registry {
            clock,
            origin: Instant::now(),
            virtual_ns: 0,
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
            spans: BTreeMap::new(),
            stack: Vec::new(),
        }
    }

    fn now_ns(&self) -> u64 {
        match self.clock {
            ClockKind::Monotonic => self.origin.elapsed().as_nanos() as u64,
            ClockKind::Virtual => self.virtual_ns,
        }
    }
}

fn lock_unpoisoned(m: &Mutex<Registry>) -> MutexGuard<'_, Registry> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// A shareable metrics sink. `Clone` is cheap (an [`Arc`] bump, or nothing
/// for the null sink); the default value is the null sink.
#[derive(Clone, Default)]
pub struct Metrics(Option<Arc<Mutex<Registry>>>);

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => write!(f, "Metrics(null)"),
            Some(r) => write!(f, "Metrics({:?})", lock_unpoisoned(r).clock),
        }
    }
}

impl Metrics {
    /// The null sink: every call is a no-op behind one branch.
    pub fn null() -> Self {
        Metrics(None)
    }

    /// A recording sink on the host monotonic clock (wall-time spans).
    pub fn recording() -> Self {
        Metrics(Some(Arc::new(Mutex::new(Registry::new(ClockKind::Monotonic)))))
    }

    /// A recording sink on a virtual clock that only moves when
    /// [`Metrics::advance_ns`] is called — deterministic span totals for
    /// cost-model replays.
    pub fn with_virtual_clock() -> Self {
        Metrics(Some(Arc::new(Mutex::new(Registry::new(ClockKind::Virtual)))))
    }

    /// `true` unless this is the null sink.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Add `by` to a named monotonic counter.
    #[inline]
    pub fn incr(&self, counter: &str, by: u64) {
        if let Some(r) = &self.0 {
            let mut g = lock_unpoisoned(r);
            *g.counters.entry(counter.to_string()).or_insert(0) += by;
        }
    }

    /// Record a value into a named log-2 histogram.
    #[inline]
    pub fn observe(&self, hist: &str, value: u64) {
        if let Some(r) = &self.0 {
            lock_unpoisoned(r).hists.entry(hist.to_string()).or_default().record(value);
        }
    }

    /// Advance the virtual clock by `ns`. No-op on the monotonic clock
    /// (and on the null sink), so cost-model drivers can call it
    /// unconditionally.
    #[inline]
    pub fn advance_ns(&self, ns: u64) {
        if let Some(r) = &self.0 {
            let mut g = lock_unpoisoned(r);
            if g.clock == ClockKind::Virtual {
                g.virtual_ns += ns;
            }
        }
    }

    /// Current clock reading in nanoseconds (0 for the null sink).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &self.0 {
            None => 0,
            Some(r) => lock_unpoisoned(r).now_ns(),
        }
    }

    /// Open a hierarchical span; it closes (and records) when the guard
    /// drops. Nested opens build slash-joined paths ("step/flux").
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        match &self.0 {
            None => Span(None),
            Some(r) => {
                let mut g = lock_unpoisoned(r);
                let depth = g.stack.len();
                g.stack.push(name);
                let path = g.stack.join("/");
                let start_ns = g.now_ns();
                Span(Some(SpanInner { registry: r.clone(), path, depth, start_ns }))
            }
        }
    }

    /// Snapshot every counter, histogram, and span total.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.0 {
            None => MetricsSnapshot::empty(),
            Some(r) => {
                let g = lock_unpoisoned(r);
                MetricsSnapshot {
                    clock: match g.clock {
                        ClockKind::Monotonic => "monotonic",
                        ClockKind::Virtual => "virtual",
                    },
                    counters: g.counters.clone(),
                    hists: g.hists.clone(),
                    spans: g.spans.clone(),
                }
            }
        }
    }
}

struct SpanInner {
    registry: Arc<Mutex<Registry>>,
    path: String,
    depth: usize,
    start_ns: u64,
}

/// Guard for an open span; records `count += 1` and the elapsed clock
/// ticks into the span's path total on drop.
pub struct Span(Option<SpanInner>);

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.0.take() {
            let mut g = lock_unpoisoned(&inner.registry);
            let elapsed = g.now_ns().saturating_sub(inner.start_ns);
            // restore the stack to this span's open depth even if inner
            // guards were leaked or dropped out of order
            g.stack.truncate(inner.depth);
            let stat = g.spans.entry(inner.path).or_default();
            stat.count += 1;
            stat.total_ns += elapsed;
        }
    }
}

/// An immutable copy of a registry's state, ready for export. All maps
/// are ordered ([`BTreeMap`]), so serialization is deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `"monotonic"`, `"virtual"`, or `"null"` for an empty snapshot.
    pub clock: &'static str,
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → buckets.
    pub hists: BTreeMap<String, Histogram>,
    /// Span path → totals.
    pub spans: BTreeMap<String, SpanStat>,
}

fn json_escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl MetricsSnapshot {
    fn empty() -> Self {
        MetricsSnapshot { clock: "null", ..Default::default() }
    }

    /// A counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Total nanoseconds across every span path whose **last** component
    /// equals `leaf` — "flux" sums "step/flux" and "mg/smooth/flux".
    pub fn span_total_ns(&self, leaf: &str) -> u64 {
        self.spans
            .iter()
            .filter(|(path, _)| path.rsplit('/').next() == Some(leaf))
            .map(|(_, s)| s.total_ns)
            .sum()
    }

    /// Deterministic JSON: keys sorted, integers only, no whitespace
    /// dependence on locale. Two snapshots with equal contents serialize
    /// to byte-identical strings.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"clock\": ");
        json_escape(self.clock, &mut out);
        out.push_str(",\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            json_escape(k, &mut out);
            let _ = write!(out, ": {v}");
        }
        out.push_str("\n  },\n  \"spans\": {");
        for (i, (k, s)) in self.spans.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            json_escape(k, &mut out);
            let _ = write!(out, ": {{\"count\": {}, \"total_ns\": {}}}", s.count, s.total_ns);
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            json_escape(k, &mut out);
            let _ = write!(out, ": {{\"count\": {}, \"sum\": {}, \"buckets\": {{", h.count, h.sum);
            let mut first = true;
            for (b, &n) in h.buckets.iter().enumerate() {
                if n > 0 {
                    if !first {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "\"{b}\": {n}");
                    first = false;
                }
            }
            out.push_str("}}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_records_nothing() {
        let m = Metrics::null();
        assert!(!m.is_enabled());
        m.incr("a", 3);
        m.observe("h", 17);
        m.advance_ns(100);
        {
            let _s = m.span("x");
        }
        let snap = m.snapshot();
        assert_eq!(snap.clock, "null");
        assert!(snap.counters.is_empty());
        assert!(snap.spans.is_empty());
        assert!(snap.hists.is_empty());
    }

    #[test]
    fn counters_accumulate() {
        let m = Metrics::recording();
        m.incr("c", 1);
        m.incr("c", 2);
        m.incr("d", 5);
        let s = m.snapshot();
        assert_eq!(s.counter("c"), 3);
        assert_eq!(s.counter("d"), 5);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn spans_nest_into_paths() {
        let m = Metrics::with_virtual_clock();
        {
            let _outer = m.span("step");
            m.advance_ns(10);
            {
                let _inner = m.span("flux");
                m.advance_ns(30);
            }
            {
                let _inner = m.span("update");
                m.advance_ns(5);
            }
            m.advance_ns(2);
        }
        let s = m.snapshot();
        assert_eq!(s.spans["step"], SpanStat { count: 1, total_ns: 47 });
        assert_eq!(s.spans["step/flux"], SpanStat { count: 1, total_ns: 30 });
        assert_eq!(s.spans["step/update"], SpanStat { count: 1, total_ns: 5 });
        // leaf aggregation sums across parents
        {
            let _other = m.span("mg");
            let _inner = m.span("flux");
            m.advance_ns(4);
        }
        assert_eq!(m.snapshot().span_total_ns("flux"), 34);
    }

    #[test]
    fn span_counts_accumulate_in_order() {
        let m = Metrics::with_virtual_clock();
        for i in 0..4 {
            let _s = m.span("tick");
            m.advance_ns(i);
        }
        let s = m.snapshot();
        assert_eq!(s.spans["tick"], SpanStat { count: 4, total_ns: 6 });
    }

    #[test]
    fn sibling_span_after_leaked_inner_keeps_depth() {
        // dropping guards out of LIFO order must not corrupt later paths
        let m = Metrics::with_virtual_clock();
        let outer = m.span("a");
        let inner = m.span("b");
        m.advance_ns(1);
        drop(outer); // closes "a" and truncates the stack
        drop(inner); // records "a/b" without pushing garbage
        {
            let _top = m.span("c");
            m.advance_ns(1);
        }
        let s = m.snapshot();
        assert!(s.spans.contains_key("a"));
        assert!(s.spans.contains_key("a/b"));
        assert!(s.spans.contains_key("c"), "got {:?}", s.spans.keys());
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        let m = Metrics::recording();
        for v in [0, 1, 2, 3, 1000] {
            m.observe("h", v);
        }
        let s = m.snapshot();
        let h = &s.hists["h"];
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1006);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[10], 1); // 512 <= 1000 < 1024
    }

    #[test]
    fn virtual_clock_only_moves_on_advance() {
        let m = Metrics::with_virtual_clock();
        assert_eq!(m.now_ns(), 0);
        m.advance_ns(7);
        assert_eq!(m.now_ns(), 7);
        // monotonic clock ignores advance
        let w = Metrics::recording();
        w.advance_ns(1_000_000_000);
        assert!(w.now_ns() < 1_000_000_000);
    }

    #[test]
    fn identical_virtual_runs_serialize_identically() {
        let run = || {
            let m = Metrics::with_virtual_clock();
            for i in 0..10u64 {
                let _step = m.span("step");
                {
                    let _f = m.span("flux");
                    m.advance_ns(100 + i);
                }
                m.incr("steps", 1);
                m.observe("sizes", 1 << (i % 7));
            }
            m.snapshot().to_json()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "virtual-clock runs must be byte-identical");
        assert!(a.contains("\"step/flux\""));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let m = Metrics::with_virtual_clock();
        m.incr("a\"b", 1); // quote in a name must be escaped
        let j = m.snapshot().to_json();
        assert!(j.contains("a\\\"b"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}

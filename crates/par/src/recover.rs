//! Checkpoint-based recovery: keep a distributed run alive through rank
//! failures.
//!
//! [`run_resilient`] is a supervisor around `Machine::run_with`: it steps
//! a [`DistSim`] for a fixed number of steps, writing a consistent
//! in-memory checkpoint (via `ablock_io::checkpoint`) every
//! `checkpoint_every` steps. When a rank dies — injected crash, panic,
//! watchdog-detected deadlock — the machine run returns a `MachineError`
//! naming it; the supervisor then **restarts from the last checkpoint on
//! one fewer rank**, letting the existing SFC balancer redistribute the
//! dead rank's blocks across the survivors, and continues the step loop.
//!
//! The recovery guarantee mirrors what production AMR codes provide:
//! the final state is the fault-free result *to checkpoint granularity* —
//! steps since the last checkpoint are recomputed, not lost, and the
//! recomputation is deterministic because every source of randomness is
//! seeded and the step loop uses a fixed `dt`.

use std::sync::{Arc, Mutex};

use ablock_core::grid::BlockGrid;
use ablock_io::checkpoint;
use ablock_solver::physics::Physics;
use ablock_solver::SolverConfig;

use crate::balance::Policy;
use crate::dist::DistSim;
use crate::fault::FaultPlan;
use crate::machine::{Machine, MachineConfig, MachineError};

/// Settings for a resilient run.
#[derive(Debug, Clone)]
pub struct RecoverConfig {
    /// Write a checkpoint every this many completed steps (0 = only the
    /// implicit step-0 state, i.e. failures restart from scratch).
    pub checkpoint_every: usize,
    /// Partitioner used at start and after every recovery.
    pub policy: Policy,
    /// Timeouts for failure detection (`MachineConfig::fast()` in tests).
    pub machine: MachineConfig,
    /// Restarts allowed before giving up.
    pub max_restarts: usize,
}

impl Default for RecoverConfig {
    fn default() -> Self {
        RecoverConfig {
            checkpoint_every: 5,
            policy: Policy::SfcHilbert,
            machine: MachineConfig::default(),
            max_restarts: 3,
        }
    }
}

/// What a successful resilient run produced.
pub struct RecoverOutcome<const D: usize> {
    /// The final grid (full field data, gathered from all ranks).
    pub grid: BlockGrid<D>,
    /// How many times the run restarted from a checkpoint.
    pub restarts: usize,
    /// Rank count of the final (surviving) configuration.
    pub final_nranks: usize,
    /// The machine errors that triggered each restart.
    pub failures: Vec<MachineError>,
}

/// A resilient run that could not be completed.
#[derive(Debug)]
pub enum RecoverError {
    /// The restart budget (or the rank pool) ran out.
    Unrecoverable {
        /// The failure that ended the run.
        last: MachineError,
        /// Restarts consumed before giving up.
        restarts: usize,
    },
    /// The final checkpoint bytes failed to decode.
    Io(std::io::Error),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Unrecoverable { last, restarts } => {
                write!(f, "unrecoverable after {restarts} restart(s): {last}")
            }
            RecoverError::Io(e) => write!(f, "checkpoint decode failed: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {}

/// Step a distributed simulation for `steps` steps of size `dt`,
/// surviving rank failures by restarting from the last checkpoint on
/// `nranks - 1` ranks (graceful degradation down to a single rank).
///
/// `make_grid` builds the initial condition; it runs once per attempt on
/// every rank, so it must be deterministic. The returned grid holds the
/// full final state regardless of how many recoveries happened. The
/// [`SolverConfig`]'s metric sink (if recording) is installed on every
/// rank's comm endpoint, so rank-qualified traffic counters survive into
/// the supervisor's registry across restarts.
pub fn run_resilient<const D: usize, P>(
    nranks: usize,
    steps: usize,
    dt: f64,
    solver: SolverConfig<P>,
    make_grid: impl Fn() -> BlockGrid<D> + Send + Sync,
    cfg: RecoverConfig,
    faults: Option<Arc<FaultPlan>>,
) -> Result<RecoverOutcome<D>, RecoverError>
where
    P: Physics + Clone + Send + Sync,
{
    run_resilient_with(nranks, steps, dt, solver, make_grid, cfg, faults, |_, _, _| {})
}

/// [`run_resilient`] with an `on_step` hook, called collectively on every
/// rank after each completed step (with the number of completed steps,
/// starting at 1) and **before** any checkpoint written at that step —
/// so checkpoints capture the post-hook state and a restart replays
/// consistently. The hook must therefore be deterministic in
/// `(sim state, step index)`; it is where adapt-and-rebalance schedules
/// plug into a resilient run.
#[allow(clippy::too_many_arguments)]
pub fn run_resilient_with<const D: usize, P>(
    nranks: usize,
    steps: usize,
    dt: f64,
    solver: SolverConfig<P>,
    make_grid: impl Fn() -> BlockGrid<D> + Send + Sync,
    cfg: RecoverConfig,
    faults: Option<Arc<FaultPlan>>,
    on_step: impl Fn(&mut DistSim<D, P>, &crate::machine::Comm, usize) + Send + Sync,
) -> Result<RecoverOutcome<D>, RecoverError>
where
    P: Physics + Clone + Send + Sync,
{
    assert!(nranks >= 1);
    // (steps completed, serialized grid) — written by rank 0 of a healthy
    // collective, read by every rank of a restart.
    let slot: Mutex<Option<(usize, Vec<u8>)>> = Mutex::new(None);
    let mut ranks_now = nranks;
    let mut restarts = 0usize;
    let mut failures: Vec<MachineError> = Vec::new();
    loop {
        let solver = solver.clone();
        let attempt = Machine::run_with(cfg.machine.clone(), faults.clone(), ranks_now, |comm| {
            comm.install_metrics(&solver.metrics);
            let (start_step, grid) = {
                let guard = slot.lock().unwrap_or_else(|p| p.into_inner());
                match &*guard {
                    Some((step, bytes)) => {
                        let g = checkpoint::load_grid::<D>(&mut bytes.as_slice())
                            .expect("in-memory checkpoint must decode");
                        (*step, g)
                    }
                    None => (0, make_grid()),
                }
            };
            let mut sim = DistSim::partitioned(grid, comm.nranks(), cfg.policy, solver.clone());
            for step in start_step..steps {
                sim.step_rk2(&comm, dt);
                let done = step + 1;
                on_step(&mut sim, &comm, done);
                if cfg.checkpoint_every > 0 && done % cfg.checkpoint_every == 0 && done < steps {
                    // gather_full is a collective: when rank 0 completes it,
                    // it holds a consistent snapshot of step `done` even if
                    // peers die immediately afterwards.
                    sim.gather_full(&comm);
                    if comm.rank() == 0 {
                        let mut bytes = Vec::new();
                        checkpoint::save_grid(&mut bytes, &sim.grid)
                            .expect("writing to a Vec cannot fail");
                        *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some((done, bytes));
                    }
                    comm.barrier();
                }
            }
            sim.gather_full(&comm);
            if comm.rank() == 0 {
                let mut bytes = Vec::new();
                checkpoint::save_grid(&mut bytes, &sim.grid)
                    .expect("writing to a Vec cannot fail");
                Some(bytes)
            } else {
                None
            }
        });
        match attempt {
            Ok(results) => {
                let bytes = results
                    .into_iter()
                    .flatten()
                    .next()
                    .expect("rank 0 returns the final state");
                let grid =
                    checkpoint::load_grid::<D>(&mut bytes.as_slice()).map_err(RecoverError::Io)?;
                return Ok(RecoverOutcome { grid, restarts, final_nranks: ranks_now, failures });
            }
            Err(err) => {
                restarts += 1;
                if restarts > cfg.max_restarts || ranks_now <= 1 {
                    return Err(RecoverError::Unrecoverable { last: err, restarts: restarts - 1 });
                }
                failures.push(err);
                // graceful degradation: the dead rank's blocks go to the
                // survivors via the partitioner on the next attempt
                ranks_now -= 1;
            }
        }
    }
}

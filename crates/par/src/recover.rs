//! Incremental-checkpoint recovery: keep a distributed run alive through
//! rank failures, with recovery traffic proportional to *lost* state.
//!
//! [`run_resilient`] is a supervisor around `Machine::run_with`: it steps
//! a [`DistSim`] for a fixed number of steps, writing a **content-
//! addressed incremental snapshot** (via `ablock_io::snapshot`) every
//! `checkpoint_every` steps. Each rank hashes its owned blocks' payloads
//! into two node stores — the shared *durable* store (modeling stable
//! storage) and its own in-memory *slot* store — and ships the
//! newly-written nodes to its ring buddy (Schornbaum–Rüde partner
//! replication). The `(key, hash, writer)` triples are allgathered and
//! rank 0 folds them into a Merkle-style manifest whose root names the
//! snapshot. Unchanged blocks dedup against the previous snapshot, so an
//! every-step cadence writes only the delta.
//!
//! When a rank dies — injected crash, panic, watchdog-detected deadlock —
//! the machine run returns a `MachineError` naming it; the supervisor
//! retires that rank's slot and restarts on one fewer rank. Each
//! surviving rank rebuilds the topology from the latest manifest,
//! **keeps its own blocks** (sticky ownership by writer slot; its slot
//! store already holds their payloads) and adopts an even share of the
//! dead slot's blocks. Only those adopted blocks are missing, and they
//! are fetched from the dead slot's ring buddy over the ordinary
//! point-to-point protocol (reliable transport, timeouts and fault
//! injection included), falling back to the durable store on a miss,
//! timeout, or content-hash mismatch. Recovery traffic therefore scales
//! with the dead rank's block count, not the grid size — see
//! [`RecoveryReport`], which the supervisor returns per restart.
//!
//! The recovery guarantee mirrors what production AMR codes provide:
//! the final state is the fault-free result *to checkpoint granularity* —
//! steps since the last checkpoint are recomputed, not lost, and the
//! recomputation is deterministic (bitwise, not just to roundoff) because
//! snapshot encode/decode preserves `f64` bits, the backends are
//! partition-independent, and every source of randomness is seeded.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use ablock_core::grid::BlockGrid;
use ablock_core::key::BlockKey;
use ablock_io::checkpoint;
use ablock_io::snapshot::{self, content_hash, Manifest, NodeHash, NodeStore};
use ablock_obs::counter;
use ablock_solver::physics::Physics;
use ablock_solver::SolverConfig;

use crate::dist::DistSim;
use crate::fault::FaultPlan;
use crate::machine::{die, Comm, CommError, Machine, MachineConfig, MachineError, RankFailure};

/// Buddy replication of freshly-written snapshot nodes (ring neighbor).
const TAG_SNAP: u64 = 1 << 43;
/// Missing-node fetch responses, offset by the manifest entry index.
const TAG_FETCH: u64 = 1 << 44;

/// Settings for a resilient run.
#[derive(Debug, Clone)]
pub struct RecoverConfig {
    /// Write a snapshot every this many completed steps (0 = only the
    /// implicit step-0 state, i.e. failures restart from scratch).
    pub checkpoint_every: usize,
    /// Timeouts for failure detection (`MachineConfig::fast()` in tests).
    pub machine: MachineConfig,
    /// Restarts allowed before giving up.
    pub max_restarts: usize,
}

impl Default for RecoverConfig {
    fn default() -> Self {
        RecoverConfig {
            checkpoint_every: 5,
            machine: MachineConfig::default(),
            max_restarts: 3,
        }
    }
}

/// Where a restarting collective's blocks came from, for one restart.
/// Filled in by every rank that completes its recovery; an attempt that
/// dies mid-recovery leaves a partial report (superseded by the next
/// restart's).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Step of the snapshot the attempt resumed from.
    pub from_step: usize,
    /// Total blocks in the resumed snapshot.
    pub total_blocks: u64,
    /// Blocks restored from the owning rank's own slot store (no
    /// traffic — the sticky-ownership fast path).
    pub nodes_local: u64,
    /// Blocks fetched from a surviving peer (the dead slot's buddy).
    pub nodes_peer: u64,
    /// Blocks read from the durable store (peer dead too, fetch timeout,
    /// miss, or content-hash mismatch).
    pub nodes_store: u64,
    /// f64 values transferred from peers (`nodes_peer` × block payload).
    pub peer_values: u64,
    /// Peer fetches that timed out before the durable fallback.
    pub fetch_timeouts: u64,
    /// Peer responses rejected by the manifest content hash.
    pub hash_mismatches: u64,
}

/// Aggregate snapshot-write accounting across the whole resilient run
/// (all ranks, all attempts). `bytes_new + bytes_shared` is what a
/// non-incremental writer would have written; `bytes_new` is what the
/// incremental writer actually wrote.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotTotals {
    /// Snapshots completed (manifest published).
    pub snapshots: u64,
    /// Nodes newly written to the durable store.
    pub nodes_new: u64,
    /// Nodes deduplicated against the durable store.
    pub nodes_shared: u64,
    /// Bytes newly written to the durable store.
    pub bytes_new: u64,
    /// Bytes deduplicated (write cost avoided).
    pub bytes_shared: u64,
    /// Leaf nodes shipped to ring buddies.
    pub replica_nodes: u64,
    /// f64 values shipped to ring buddies.
    pub replica_values: u64,
}

/// What a successful resilient run produced.
pub struct RecoverOutcome<const D: usize> {
    /// The final grid (full field data, gathered from all ranks).
    pub grid: BlockGrid<D>,
    /// How many times the run restarted from a checkpoint.
    pub restarts: usize,
    /// Rank count of the final (surviving) configuration.
    pub final_nranks: usize,
    /// The machine errors that triggered each restart.
    pub failures: Vec<MachineError>,
    /// Per-restart recovery traffic accounting (one entry per restart
    /// that resumed from a snapshot).
    pub recoveries: Vec<RecoveryReport>,
    /// Snapshot-write accounting for the whole run.
    pub snapshots: SnapshotTotals,
}

/// A resilient run that could not be completed.
#[derive(Debug)]
pub enum RecoverError {
    /// The restart budget (or the rank pool) ran out.
    Unrecoverable {
        /// The failure that ended the run.
        last: MachineError,
        /// Restarts consumed before giving up.
        restarts: usize,
    },
    /// The final checkpoint bytes failed to decode.
    Io(std::io::Error),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Unrecoverable { last, restarts } => {
                write!(f, "unrecoverable after {restarts} restart(s): {last}")
            }
            RecoverError::Io(e) => write!(f, "checkpoint decode failed: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Supervisor-owned state that survives machine attempts: the durable
/// node store (stable storage), one slot store per original rank
/// (a rank's in-memory store persists exactly as long as the rank), and
/// the latest published snapshot.
struct Stores {
    durable: Mutex<NodeStore>,
    locals: Vec<Mutex<NodeStore>>,
    /// `(completed steps, manifest root)` of the newest snapshot.
    latest: Mutex<Option<(usize, NodeHash)>>,
    totals: Mutex<SnapshotTotals>,
}

/// Pack `(hash, bytes)` node records into one f64 message for the buddy.
fn pack_replicas(batch: &[(NodeHash, Vec<u8>)]) -> Vec<f64> {
    let mut msg = vec![batch.len() as f64];
    for (hash, bytes) in batch {
        let [lo, hi] = hash.to_words();
        msg.push(f64::from_bits(lo));
        msg.push(f64::from_bits(hi));
        msg.push(bytes.len() as f64);
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            msg.push(f64::from_bits(u64::from_le_bytes(w)));
        }
    }
    msg
}

/// Unpack a buddy-replication message into the receiver's slot store.
/// Replicas are an optimization, so malformed ones are dropped, not
/// fatal; `insert_verified` keeps a corrupt replica from poisoning the
/// store under a lying hash.
fn unpack_replicas(store: &mut NodeStore, msg: &[f64]) {
    let mut i = 1;
    let count = msg.first().copied().unwrap_or(0.0) as usize;
    for _ in 0..count {
        if i + 3 > msg.len() {
            return;
        }
        let hash = NodeHash::from_words([msg[i].to_bits(), msg[i + 1].to_bits()]);
        let nbytes = msg[i + 2] as usize;
        let nwords = nbytes.div_ceil(8);
        i += 3;
        if i + nwords > msg.len() {
            return;
        }
        let mut bytes = Vec::with_capacity(nwords * 8);
        for w in &msg[i..i + nwords] {
            bytes.extend_from_slice(&w.to_bits().to_le_bytes());
        }
        bytes.truncate(nbytes);
        i += nwords;
        let _ = store.insert_verified(hash, bytes);
    }
}

/// Write one incremental snapshot, collectively. Every rank hashes its
/// owned blocks into the durable store and its own slot store, ships the
/// nodes new to its slot store to the ring buddy, and allgathers
/// `(key, hash, writer slot)`; rank 0 publishes the manifest.
#[allow(clippy::too_many_arguments)]
fn write_incremental_checkpoint<const D: usize, P: Physics>(
    sim: &DistSim<D, P>,
    comm: &Comm,
    done: usize,
    slots: &[usize],
    stores: &Stores,
    solver: &SolverConfig<P>,
) {
    let me = comm.rank();
    let my_slot = slots[me];
    let nranks = comm.nranks();
    let m = &solver.metrics;

    let mut replicas: Vec<(NodeHash, Vec<u8>)> = Vec::new();
    let mut entry_msg: Vec<f64> = Vec::new();
    {
        let mut durable = lock(&stores.durable);
        let mut local = lock(&stores.locals[my_slot]);
        let mut totals = lock(&stores.totals);
        for id in sim.owned_ids(me) {
            let key = sim.grid.block(id).key();
            let values = snapshot::leaf_values(&sim.grid, key)
                .expect("owned block present in replicated grid");
            let bytes = snapshot::encode_leaf(&values);
            let len = bytes.len() as u64;
            let (hash, new) = durable.insert(bytes.clone());
            if new {
                totals.nodes_new += 1;
                totals.bytes_new += len;
                m.incr(counter::SNAP_NODES_NEW, 1);
                m.incr(counter::SNAP_BYTES_NEW, len);
            } else {
                totals.nodes_shared += 1;
                totals.bytes_shared += len;
                m.incr(counter::SNAP_NODES_SHARED, 1);
                m.incr(counter::SNAP_BYTES_SHARED, len);
            }
            if local.insert(bytes.clone()).1 {
                replicas.push((hash, bytes));
            }
            entry_msg.push(key.level as f64);
            for d in 0..D {
                entry_msg.push(key.coords[d] as f64);
            }
            let [lo, hi] = hash.to_words();
            entry_msg.push(f64::from_bits(lo));
            entry_msg.push(f64::from_bits(hi));
            entry_msg.push(my_slot as f64);
        }
    }

    // partner replication on the rank ring: everyone sends to its
    // successor, then drains its predecessor (reliable transport pumps
    // arrivals while blocked on acks, so the cycle cannot deadlock)
    if nranks > 1 {
        let nvals: u64 = replicas.iter().map(|(_, b)| b.len().div_ceil(8) as u64).sum();
        let msg = pack_replicas(&replicas);
        lock(&stores.totals).replica_nodes += replicas.len() as u64;
        lock(&stores.totals).replica_values += nvals;
        m.incr(counter::SNAP_REPLICA_NODES, replicas.len() as u64);
        m.incr(counter::SNAP_REPLICA_VALUES, nvals);
        comm.send((me + 1) % nranks, TAG_SNAP, msg);
        let incoming = comm.recv((me + nranks - 1) % nranks, TAG_SNAP);
        unpack_replicas(&mut lock(&stores.locals[my_slot]), &incoming);
    }

    // replicate the manifest entries and publish on rank 0
    let gathered = comm.allgatherv(entry_msg);
    if me == 0 {
        let rec = 1 + D + 3;
        let mut entries: Vec<(BlockKey<D>, NodeHash, u32)> = Vec::new();
        for per_rank in &gathered {
            for e in per_rank.chunks_exact(rec) {
                let mut coords = [0i64; D];
                for d in 0..D {
                    coords[d] = e[1 + d] as i64;
                }
                let key = BlockKey::new(e[0] as u8, coords);
                let hash = NodeHash::from_words([e[1 + D].to_bits(), e[2 + D].to_bits()]);
                entries.push((key, hash, e[3 + D] as u32));
            }
        }
        let ring: Vec<u32> = slots.iter().map(|&s| s as u32).collect();
        let mut durable = lock(&stores.durable);
        let stats = snapshot::build_manifest(
            &mut durable,
            sim.grid.layout(),
            sim.grid.params(),
            done as u64,
            &ring,
            &entries,
        )
        .expect("collectively-gathered manifest entries are well-formed");
        let mut totals = lock(&stores.totals);
        totals.snapshots += 1;
        totals.nodes_new += stats.nodes_new;
        totals.bytes_new += stats.bytes_new;
        totals.nodes_shared += stats.nodes_shared;
        totals.bytes_shared += stats.bytes_shared;
        m.incr(counter::SNAP_NODES_NEW, stats.nodes_new);
        m.incr(counter::SNAP_BYTES_NEW, stats.bytes_new);
        m.incr(counter::SNAP_NODES_SHARED, stats.nodes_shared);
        m.incr(counter::SNAP_BYTES_SHARED, stats.bytes_shared);
        *lock(&stores.latest) = Some((done, stats.root));
    }
    // the manifest is published before anyone may proceed (and die)
    comm.barrier();
}

/// Rebuild this rank's view of the latest snapshot: topology from the
/// manifest, sticky ownership by writer slot (dead slots round-robined
/// over the survivors), payloads from the slot store / peers / durable
/// store. Collective. Returns the ready `DistSim` and the resumed step.
#[allow(clippy::too_many_arguments)]
fn resume_from_snapshot<const D: usize, P: Physics + Clone>(
    comm: &Comm,
    manifest: &Manifest<D>,
    from_step: usize,
    slots: &[usize],
    stores: &Stores,
    cfg: &RecoverConfig,
    solver: SolverConfig<P>,
    tally: &Mutex<RecoveryReport>,
) -> DistSim<D, P> {
    let me = comm.rank();
    let my_slot = slots[me];
    let nranks = comm.nranks();
    let m = &solver.metrics;
    let per_leaf = manifest.values_per_leaf();

    let mut grid = manifest
        .build_topology()
        .expect("durable snapshot manifest must rebuild");

    // sticky ownership: writer slot → its surviving rank; blocks of dead
    // slots are dealt round-robin over all current ranks (deterministic:
    // manifest entries are key-sorted and identical everywhere)
    let slot_to_rank: HashMap<u32, usize> =
        slots.iter().enumerate().map(|(r, s)| (*s as u32, r)).collect();
    let mut rr = 0usize;
    let owner_of: Vec<usize> = manifest
        .entries
        .iter()
        .map(|e| match slot_to_rank.get(&e.writer) {
            Some(&r) => r,
            None => {
                let r = rr % nranks;
                rr += 1;
                r
            }
        })
        .collect();

    // Restore owned payloads from this rank's slot store; queue the rest.
    // Non-owned blocks stay zero: mirrors are only ever read after a halo
    // exchange or gather writes them.
    let mut report = RecoveryReport {
        from_step,
        total_blocks: manifest.entries.len() as u64,
        ..RecoveryReport::default()
    };
    let mut requests: Vec<(usize, usize)> = Vec::new(); // (entry idx, serving rank)
    let mut orphans: Vec<usize> = Vec::new(); // no live peer holds these
    {
        let local = lock(&stores.locals[my_slot]);
        for (idx, e) in manifest.entries.iter().enumerate() {
            if owner_of[idx] != me {
                continue;
            }
            if let Some(bytes) = local.get(e.hash) {
                let values = snapshot::decode_leaf(bytes, per_leaf)
                    .expect("slot-store nodes are hash-verified on insert");
                snapshot::pour_leaf(&mut grid, e.key, &values).expect("manifest key in topology");
                report.nodes_local += 1;
                continue;
            }
            // writer first (it may be alive but this block was re-dealt),
            // then its ring buddy — the replica holder
            let ring = &manifest.writer_ring;
            let buddy = ring
                .iter()
                .position(|&s| s == e.writer)
                .map(|p| ring[(p + 1) % ring.len()]);
            let serve = [Some(e.writer), buddy]
                .into_iter()
                .flatten()
                .find_map(|s| slot_to_rank.get(&s).copied().filter(|&r| r != me));
            match serve {
                Some(rank) => requests.push((idx, rank)),
                None => orphans.push(idx),
            }
        }
        m.incr(counter::REC_NODES_LOCAL, report.nodes_local);
    }
    // orphan fallback outside the slot-store lock scope: fetch_durable
    // re-locks this rank's slot store to cache what it reads
    for idx in orphans {
        fetch_durable(&mut grid, manifest, idx, stores, my_slot, per_leaf);
        report.nodes_store += 1;
        m.incr(counter::REC_NODES_STORE, 1);
    }

    // announce who needs what from whom, then serve before receiving —
    // this is the `missing_parts` exchange, over the ordinary reliable
    // point-to-point protocol (fault injection and all)
    let ann: Vec<f64> =
        requests.iter().flat_map(|&(idx, rank)| [rank as f64, idx as f64]).collect();
    let all_ann = comm.allgatherv(ann);
    {
        let local = lock(&stores.locals[my_slot]);
        for (requester, pairs) in all_ann.iter().enumerate() {
            if requester == me {
                continue;
            }
            for pair in pairs.chunks_exact(2) {
                if pair[0] as usize != me {
                    continue;
                }
                let idx = pair[1] as usize;
                let resp = manifest
                    .entries
                    .get(idx)
                    .and_then(|e| local.get(e.hash))
                    .and_then(|bytes| snapshot::decode_leaf(bytes, per_leaf).ok())
                    .map(|values| {
                        let mut r = vec![1.0];
                        r.extend_from_slice(&values);
                        r
                    })
                    .unwrap_or_else(|| vec![0.0]); // miss marker
                comm.send(requester, TAG_FETCH + idx as u64, resp);
            }
        }
    }
    for &(idx, serve) in &requests {
        let e = &manifest.entries[idx];
        let fetched = match comm.recv_timeout(serve, TAG_FETCH + idx as u64, cfg.machine.watchdog)
        {
            Ok(resp) if resp.first() == Some(&1.0) && resp.len() == 1 + per_leaf => {
                let bytes = snapshot::encode_leaf(&resp[1..]);
                if content_hash(&bytes) == e.hash {
                    snapshot::pour_leaf(&mut grid, e.key, &resp[1..])
                        .expect("manifest key in topology");
                    lock(&stores.locals[my_slot]).insert(bytes);
                    report.nodes_peer += 1;
                    report.peer_values += per_leaf as u64;
                    m.incr(counter::REC_NODES_PEER, 1);
                    m.incr(counter::REC_PEER_VALUES, per_leaf as u64);
                    true
                } else {
                    report.hash_mismatches += 1;
                    m.incr(counter::REC_HASH_MISMATCH, 1);
                    false
                }
            }
            Ok(_) => false, // miss marker or malformed response
            Err(CommError::Timeout { .. }) => {
                report.fetch_timeouts += 1;
                m.incr(counter::REC_FETCH_TIMEOUTS, 1);
                false
            }
            // another rank died mid-recovery: fail this attempt properly
            Err(CommError::Aborted) => die(RankFailure::Aborted),
        };
        if !fetched {
            fetch_durable(&mut grid, manifest, idx, stores, my_slot, per_leaf);
            report.nodes_store += 1;
            m.incr(counter::REC_NODES_STORE, 1);
        }
    }

    {
        let mut t = lock(tally);
        t.from_step = report.from_step;
        t.total_blocks = report.total_blocks;
        t.nodes_local += report.nodes_local;
        t.nodes_peer += report.nodes_peer;
        t.nodes_store += report.nodes_store;
        t.peer_values += report.peer_values;
        t.fetch_timeouts += report.fetch_timeouts;
        t.hash_mismatches += report.hash_mismatches;
    }

    let owner = manifest
        .entries
        .iter()
        .zip(&owner_of)
        .map(|(e, &rank)| (grid.find(e.key).expect("manifest key in topology"), rank))
        .collect();
    DistSim::new(grid, owner, solver)
}

/// Last-resort payload source: the durable store holds every node of the
/// published snapshot by construction.
fn fetch_durable<const D: usize>(
    grid: &mut BlockGrid<D>,
    manifest: &Manifest<D>,
    idx: usize,
    stores: &Stores,
    my_slot: usize,
    per_leaf: usize,
) {
    let e = &manifest.entries[idx];
    let bytes = {
        let durable = lock(&stores.durable);
        durable
            .get(e.hash)
            .expect("durable store holds every node of the published snapshot")
            .to_vec()
    };
    let values = snapshot::decode_leaf(&bytes, per_leaf)
        .expect("durable-store nodes are well-formed by construction");
    snapshot::pour_leaf(grid, e.key, &values).expect("manifest key in topology");
    lock(&stores.locals[my_slot]).insert(bytes);
}

/// Step a distributed simulation for `steps` steps of size `dt`,
/// surviving rank failures by restarting from the last incremental
/// snapshot on `nranks - 1` ranks (graceful degradation down to a single
/// rank).
///
/// `make_grid` builds the initial condition; it runs once per attempt on
/// every rank, so it must be deterministic. The returned grid holds the
/// full final state regardless of how many recoveries happened. The
/// [`SolverConfig`]'s metric sink (if recording) is installed on every
/// rank's comm endpoint and receives the `snap.*` / `recover.*` counters,
/// so dedup efficacy and recovery traffic are observable alongside the
/// rank-qualified `comm.*` counters.
pub fn run_resilient<const D: usize, P>(
    nranks: usize,
    steps: usize,
    dt: f64,
    solver: SolverConfig<P>,
    make_grid: impl Fn() -> BlockGrid<D> + Send + Sync,
    cfg: RecoverConfig,
    faults: Option<Arc<FaultPlan>>,
) -> Result<RecoverOutcome<D>, RecoverError>
where
    P: Physics + Clone + Send + Sync,
{
    run_resilient_with(nranks, steps, dt, solver, make_grid, cfg, faults, |_, _, _| {})
}

/// [`run_resilient`] with an `on_step` hook, called collectively on every
/// rank after each completed step (with the number of completed steps,
/// starting at 1) and **before** any checkpoint written at that step —
/// so checkpoints capture the post-hook state and a restart replays
/// consistently. The hook must therefore be deterministic in
/// `(sim state, step index)`; it is where adapt-and-rebalance schedules
/// plug into a resilient run.
#[allow(clippy::too_many_arguments)]
pub fn run_resilient_with<const D: usize, P>(
    nranks: usize,
    steps: usize,
    dt: f64,
    solver: SolverConfig<P>,
    make_grid: impl Fn() -> BlockGrid<D> + Send + Sync,
    cfg: RecoverConfig,
    faults: Option<Arc<FaultPlan>>,
    on_step: impl Fn(&mut DistSim<D, P>, &crate::machine::Comm, usize) + Send + Sync,
) -> Result<RecoverOutcome<D>, RecoverError>
where
    P: Physics + Clone + Send + Sync,
{
    assert!(nranks >= 1);
    let stores = Stores {
        durable: Mutex::new(NodeStore::new()),
        locals: (0..nranks).map(|_| Mutex::new(NodeStore::new())).collect(),
        latest: Mutex::new(None),
        totals: Mutex::new(SnapshotTotals::default()),
    };
    // surviving original slots, in machine-rank order for this attempt
    let mut slots: Vec<usize> = (0..nranks).collect();
    let mut restarts = 0usize;
    let mut failures: Vec<MachineError> = Vec::new();
    let mut recoveries: Vec<RecoveryReport> = Vec::new();
    loop {
        let solver = solver.clone();
        let ranks_now = slots.len();
        let slots_now = slots.clone();
        let tally: Mutex<RecoveryReport> = Mutex::new(RecoveryReport::default());
        let resumed = lock(&stores.latest).map(|(step, root)| {
            let durable = lock(&stores.durable);
            let manifest = snapshot::read_manifest::<D>(&durable, root)
                .expect("durable snapshot manifest must decode");
            (step, manifest)
        });
        let attempt = Machine::run_with(cfg.machine.clone(), faults.clone(), ranks_now, |comm| {
            comm.install_metrics(&solver.metrics);
            let (start_step, mut sim) = match &resumed {
                Some((step, manifest)) => {
                    let sim = resume_from_snapshot(
                        &comm,
                        manifest,
                        *step,
                        &slots_now,
                        &stores,
                        &cfg,
                        solver.clone(),
                        &tally,
                    );
                    (*step, sim)
                }
                None => {
                    // initial launch partitions with the solver config's
                    // partitioner; recovery keeps surviving ranks' blocks
                    // sticky instead of repartitioning
                    let sim = DistSim::partitioned(make_grid(), comm.nranks(), solver.clone());
                    (0, sim)
                }
            };
            for step in start_step..steps {
                // dispatches on the config's TimeStepMode: a global
                // SSP-RK2 step or one subcycled coarsest-level cycle
                sim.advance(&comm, dt);
                let done = step + 1;
                on_step(&mut sim, &comm, done);
                if cfg.checkpoint_every > 0 && done % cfg.checkpoint_every == 0 && done < steps {
                    write_incremental_checkpoint(&sim, &comm, done, &slots_now, &stores, &solver);
                }
            }
            sim.gather_full(&comm);
            if comm.rank() == 0 {
                let mut bytes = Vec::new();
                checkpoint::save_grid(&mut bytes, &sim.grid)
                    .expect("writing to a Vec cannot fail");
                Some(bytes)
            } else {
                None
            }
        });
        if resumed.is_some() {
            recoveries.push(*lock(&tally));
        }
        match attempt {
            Ok(results) => {
                let bytes = results
                    .into_iter()
                    .flatten()
                    .next()
                    .expect("rank 0 returns the final state");
                let grid =
                    checkpoint::load_grid::<D>(&mut bytes.as_slice()).map_err(RecoverError::Io)?;
                return Ok(RecoverOutcome {
                    grid,
                    restarts,
                    final_nranks: ranks_now,
                    failures,
                    recoveries,
                    snapshots: *lock(&stores.totals),
                });
            }
            Err(err) => {
                restarts += 1;
                if restarts > cfg.max_restarts || ranks_now <= 1 {
                    return Err(RecoverError::Unrecoverable { last: err, restarts: restarts - 1 });
                }
                // graceful degradation: retire the dead rank's slot; its
                // blocks are re-dealt to the survivors on resume and its
                // slot store is never read again (the ring buddy serves
                // its replicas)
                slots.remove(err.rank);
                failures.push(err);
            }
        }
    }
}

//! Load-balance policies and quality metrics.
//!
//! The paper: "Whenever refinement or coarsening occurs, load re-balancing
//! should be performed to insure high performance", and warns that few
//! blocks per processor make imbalance expensive.
//!
//! The partitioning machinery itself lives in [`ablock_core::partition`]:
//! a [`Partitioner`] pairs a curve with a
//! [`PartitionStrategy`](ablock_core::partition::PartitionStrategy)
//! (SFC cut points, round-robin, greedy) and produces either a
//! from-scratch owner map or an incremental
//! [`RebalancePlan`](ablock_core::partition::RebalancePlan). This module
//! keeps the thin [`Policy`] enum as a named shorthand for the strategies
//! the experiments compare (ABL-3), plus the [`imbalance`] and
//! [`comm_stats`] quality metrics:
//!
//! * **SFC (Morton or Hilbert)** — sort blocks along a space-filling curve
//!   and cut the walk into `P` contiguous chunks of equal weight. Good
//!   balance *and* good locality (neighbors tend to share a rank).
//! * **Round-robin** — blocks dealt out cyclically; perfect count balance,
//!   terrible locality.
//! * **Greedy** — heaviest-first onto the least-loaded rank; best balance
//!   for heterogeneous weights, locality-blind.

use std::collections::HashMap;

use ablock_core::arena::BlockId;
use ablock_core::ghost::{GhostExchange, GhostTask};
use ablock_core::grid::BlockGrid;
use ablock_core::partition::Partitioner;
use ablock_core::sfc::Curve;

/// Named partitioning policies — thin constructors over [`Partitioner`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Policy {
    /// Morton-order chunks.
    SfcMorton,
    /// Hilbert-order chunks.
    SfcHilbert,
    /// Cyclic dealing in curve order.
    RoundRobin,
    /// Heaviest block to least-loaded rank.
    Greedy,
}

impl Policy {
    /// The [`Partitioner`] this policy names.
    pub fn partitioner(self) -> Partitioner {
        match self {
            Policy::SfcMorton => Partitioner::sfc(Curve::Morton),
            Policy::SfcHilbert => Partitioner::sfc(Curve::Hilbert),
            Policy::RoundRobin => Partitioner::round_robin(),
            Policy::Greedy => Partitioner::greedy(),
        }
    }
}

impl From<Policy> for Partitioner {
    fn from(p: Policy) -> Partitioner {
        p.partitioner()
    }
}

/// Load-balance quality: `max_rank(load) / mean(load)` (1.0 is perfect).
pub fn imbalance(weights: &[f64], assignment: &[usize], nranks: usize) -> f64 {
    let mut load = vec![0.0f64; nranks];
    for (w, &r) in weights.iter().zip(assignment) {
        load[r] += w;
    }
    let total: f64 = load.iter().sum();
    let mean = total / nranks as f64;
    let max = load.iter().cloned().fold(0.0, f64::max);
    if mean > 0.0 {
        max / mean
    } else {
        1.0
    }
}

/// Communication statistics of an assignment under a ghost-exchange plan.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommStats {
    /// Ghost-region values crossing rank boundaries per exchange.
    pub remote_values: usize,
    /// Values moved between blocks on the same rank (free on the T3D's
    /// shared DRAM; memcpy locally).
    pub local_values: usize,
    /// Remote messages (one per remote task).
    pub remote_msgs: usize,
}

impl CommStats {
    /// Fraction of exchanged values that cross rank boundaries.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.remote_values + self.local_values;
        if total == 0 {
            0.0
        } else {
            self.remote_values as f64 / total as f64
        }
    }
}

/// Count exchange traffic for an assignment (`owner[block index] = rank`).
pub fn comm_stats<const D: usize>(
    grid: &BlockGrid<D>,
    plan: &GhostExchange<D>,
    owner: &HashMap<BlockId, usize>,
) -> CommStats {
    let nvar = grid.params().nvar;
    let mut st = CommStats::default();
    for task in plan.phase1().iter().chain(plan.phase2()) {
        let (dst, src, vol) = match task {
            GhostTask::Same { dst, src, region, .. } => (*dst, *src, region.volume()),
            GhostTask::Restrict { dst, src, region, .. } => (*dst, *src, region.volume()),
            GhostTask::Prolong { dst, src, region, .. } => (*dst, *src, region.volume()),
            GhostTask::Physical { .. } | GhostTask::ClampCopy { .. } => continue,
        };
        let vals = vol as usize * nvar;
        if owner[&dst] == owner[&src] {
            st.local_values += vals;
        } else {
            st.remote_values += vals;
            st.remote_msgs += 1;
        }
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use ablock_core::ghost::GhostConfig;
    use ablock_core::grid::{GridParams, Transfer};
    use ablock_core::key::BlockKey;
    use ablock_core::layout::{Boundary, RootLayout};
    use ablock_core::sfc::{curve_index, required_bits};

    fn keys_grid(n: i64) -> Vec<BlockKey<2>> {
        (0..n).flat_map(|x| (0..n).map(move |y| BlockKey::new(0, [x, y]))).collect()
    }

    const ALL: [Policy; 4] =
        [Policy::SfcMorton, Policy::SfcHilbert, Policy::RoundRobin, Policy::Greedy];

    #[test]
    fn all_policies_cover_all_ranks() {
        let keys = keys_grid(8); // 64 blocks
        let w = vec![1.0; keys.len()];
        for policy in ALL {
            let a = policy.partitioner().assign_keys(&keys, &w, 8);
            let mut seen = vec![0usize; 8];
            for &r in &a {
                assert!(r < 8);
                seen[r] += 1;
            }
            assert!(seen.iter().all(|&c| c == 8), "{policy:?}: {seen:?}");
        }
    }

    #[test]
    fn uniform_weights_perfectly_balanced() {
        let keys = keys_grid(8);
        let w = vec![1.0; keys.len()];
        for policy in ALL {
            let a = policy.partitioner().assign_keys(&keys, &w, 16);
            let im = imbalance(&w, &a, 16);
            assert!((im - 1.0).abs() < 1e-12, "{policy:?}: {im}");
        }
    }

    #[test]
    fn greedy_balances_heterogeneous_weights() {
        let keys = keys_grid(4);
        let mut w = vec![1.0; 16];
        w[0] = 8.0; // one heavy block
        let greedy = Policy::Greedy.partitioner().assign_keys(&keys, &w, 4);
        let rr = Policy::RoundRobin.partitioner().assign_keys(&keys, &w, 4);
        let ig = imbalance(&w, &greedy, 4);
        let ir = imbalance(&w, &rr, 4);
        assert!(ig <= ir, "greedy {ig} vs round-robin {ir}");
        // total weight is 23 (one 1.0 became 8.0); perfect balance is
        // impossible (8 > 23/4), but greedy isolates the heavy block:
        // loads (8, 5, 5, 5) -> imbalance 8 / 5.75
        assert!((ig - 8.0 / 5.75).abs() < 1e-12, "greedy imbalance {ig}");
    }

    #[test]
    fn sfc_cuts_are_contiguous_along_curve() {
        let keys = keys_grid(8);
        let w = vec![1.0; keys.len()];
        let a = Policy::SfcHilbert.partitioner().assign_keys(&keys, &w, 4);
        // walking in curve order, the rank sequence must be nondecreasing
        let bits = required_bits(8, 0);
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by_key(|&i| curve_index(&keys[i], 0, bits, Curve::Hilbert));
        let ranks: Vec<usize> = order.iter().map(|&i| a[i]).collect();
        assert!(ranks.windows(2).all(|w| w[0] <= w[1]), "{ranks:?}");
    }

    #[test]
    fn sfc_locality_beats_round_robin() {
        // On a refined grid, SFC partitions must move far fewer ghost
        // values across rank boundaries than round-robin.
        let mut g = BlockGrid::<2>::new(
            RootLayout::unit([4, 4], Boundary::Periodic),
            GridParams::new([4, 4], 2, 1, 3),
        );
        ablock_core::balance::refine_ball_to_level(
            &mut g,
            [0.5, 0.5],
            0.2,
            2,
            Transfer::None,
        );
        let plan = GhostExchange::build(&g, GhostConfig::default());
        let sfc = Policy::SfcHilbert.partitioner().partition_grid(&g, 8);
        let rr = Policy::RoundRobin.partitioner().partition_grid(&g, 8);
        let cs = comm_stats(&g, &plan, &sfc);
        let cr = comm_stats(&g, &plan, &rr);
        assert!(
            cs.remote_values < cr.remote_values,
            "sfc {} vs round-robin {}",
            cs.remote_values,
            cr.remote_values
        );
        assert!(cs.remote_fraction() < 1.0);
        // round-robin with 8 ranks: essentially every face is remote
        assert!(cr.remote_fraction() > 0.9, "rr fraction {}", cr.remote_fraction());
    }

    #[test]
    fn single_rank_all_local() {
        let g = BlockGrid::<2>::new(
            RootLayout::unit([2, 2], Boundary::Periodic),
            GridParams::new([4, 4], 2, 1, 1),
        );
        let plan = GhostExchange::build(&g, GhostConfig::default());
        let owner = Policy::SfcMorton.partitioner().partition_grid(&g, 1);
        let st = comm_stats(&g, &plan, &owner);
        assert_eq!(st.remote_values, 0);
        assert_eq!(st.remote_msgs, 0);
        assert!(st.local_values > 0);
    }

    #[test]
    fn more_ranks_than_blocks() {
        let keys = keys_grid(2); // 4 blocks
        let w = vec![1.0; 4];
        let a = Policy::SfcMorton.partitioner().assign_keys(&keys, &w, 16);
        // all blocks assigned to valid (distinct-ish) ranks
        for &r in &a {
            assert!(r < 16);
        }
        let distinct: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(distinct.len(), 4, "four blocks on four different ranks");
    }

    #[test]
    fn policy_names_match_strategies() {
        assert_eq!(Policy::SfcMorton.partitioner().name(), "sfc");
        assert_eq!(Policy::SfcHilbert.partitioner().curve(), Curve::Hilbert);
        assert_eq!(Policy::RoundRobin.partitioner().name(), "round_robin");
        assert_eq!(Policy::Greedy.partitioner().name(), "greedy");
        assert!(Partitioner::from(Policy::SfcMorton).contiguous());
        assert!(!Partitioner::from(Policy::Greedy).contiguous());
    }
}

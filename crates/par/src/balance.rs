//! Block-to-processor partitioning and load-balance metrics.
//!
//! The paper: "Whenever refinement or coarsening occurs, load re-balancing
//! should be performed to insure high performance", and warns that few
//! blocks per processor make imbalance expensive. This module provides the
//! partitioners the experiments compare (ABL-3):
//!
//! * **SFC (Morton or Hilbert)** — sort blocks along a space-filling curve
//!   and cut the walk into `P` contiguous chunks of equal weight. Good
//!   balance *and* good locality (neighbors tend to share a rank).
//! * **Round-robin** — blocks dealt out cyclically; perfect count balance,
//!   terrible locality.
//! * **Greedy** — heaviest-first onto the least-loaded rank; best balance
//!   for heterogeneous weights, locality-blind.

use std::collections::HashMap;

use ablock_core::arena::BlockId;
use ablock_core::ghost::{GhostExchange, GhostTask};
use ablock_core::grid::BlockGrid;
use ablock_core::key::BlockKey;
use ablock_core::sfc::{curve_index, required_bits, Curve};

/// Partitioning policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Policy {
    /// Morton-order chunks.
    SfcMorton,
    /// Hilbert-order chunks.
    SfcHilbert,
    /// Cyclic dealing in arena order.
    RoundRobin,
    /// Heaviest block to least-loaded rank.
    Greedy,
}

/// Assign every leaf to a rank. `weight` gives each block's cost (cells,
/// or measured time); uniform blocks should pass 1.0.
pub fn partition<const D: usize>(
    keys: &[BlockKey<D>],
    weights: &[f64],
    nranks: usize,
    policy: Policy,
) -> Vec<usize> {
    assert_eq!(keys.len(), weights.len());
    assert!(nranks >= 1);
    match policy {
        Policy::SfcMorton => sfc_partition(keys, weights, nranks, Curve::Morton),
        Policy::SfcHilbert => sfc_partition(keys, weights, nranks, Curve::Hilbert),
        Policy::RoundRobin => (0..keys.len()).map(|i| i % nranks).collect(),
        Policy::Greedy => {
            let mut order: Vec<usize> = (0..keys.len()).collect();
            order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]));
            let mut load = vec![0.0f64; nranks];
            let mut out = vec![0usize; keys.len()];
            for i in order {
                let r = (0..nranks)
                    .min_by(|&a, &b| load[a].total_cmp(&load[b]))
                    .expect("nranks >= 1");
                out[i] = r;
                load[r] += weights[i];
            }
            out
        }
    }
}

fn sfc_partition<const D: usize>(
    keys: &[BlockKey<D>],
    weights: &[f64],
    nranks: usize,
    curve: Curve,
) -> Vec<usize> {
    let max_level = keys.iter().map(|k| k.level).max().unwrap_or(0);
    let roots_max = keys
        .iter()
        .map(|k| k.coords.iter().map(|&c| (c >> k.level) + 1).max().unwrap_or(1))
        .max()
        .unwrap_or(1);
    let bits = required_bits(roots_max, max_level);
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by_key(|&i| curve_index(&keys[i], max_level, bits, curve));
    // cut the walk into nranks chunks of (approximately) equal weight
    let total: f64 = weights.iter().sum();
    let target = total / nranks as f64;
    let mut out = vec![0usize; keys.len()];
    let mut acc = 0.0;
    let mut rank = 0usize;
    for &i in &order {
        // advance to the chunk this prefix position belongs to
        while rank + 1 < nranks && acc + 0.5 * weights[i] >= target * (rank + 1) as f64 {
            rank += 1;
        }
        out[i] = rank;
        acc += weights[i];
    }
    out
}

/// Load-balance quality: `max_rank(load) / mean(load)` (1.0 is perfect).
pub fn imbalance(weights: &[f64], assignment: &[usize], nranks: usize) -> f64 {
    let mut load = vec![0.0f64; nranks];
    for (w, &r) in weights.iter().zip(assignment) {
        load[r] += w;
    }
    let total: f64 = load.iter().sum();
    let mean = total / nranks as f64;
    let max = load.iter().cloned().fold(0.0, f64::max);
    if mean > 0.0 {
        max / mean
    } else {
        1.0
    }
}

/// Communication statistics of an assignment under a ghost-exchange plan.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommStats {
    /// Ghost-region values crossing rank boundaries per exchange.
    pub remote_values: usize,
    /// Values moved between blocks on the same rank (free on the T3D's
    /// shared DRAM; memcpy locally).
    pub local_values: usize,
    /// Remote messages (one per remote task).
    pub remote_msgs: usize,
}

impl CommStats {
    /// Fraction of exchanged values that cross rank boundaries.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.remote_values + self.local_values;
        if total == 0 {
            0.0
        } else {
            self.remote_values as f64 / total as f64
        }
    }
}

/// Count exchange traffic for an assignment (`owner[block index] = rank`).
pub fn comm_stats<const D: usize>(
    grid: &BlockGrid<D>,
    plan: &GhostExchange<D>,
    owner: &HashMap<BlockId, usize>,
) -> CommStats {
    let nvar = grid.params().nvar;
    let mut st = CommStats::default();
    for task in plan.phase1().iter().chain(plan.phase2()) {
        let (dst, src, vol) = match task {
            GhostTask::Same { dst, src, region, .. } => (*dst, *src, region.volume()),
            GhostTask::Restrict { dst, src, region, .. } => (*dst, *src, region.volume()),
            GhostTask::Prolong { dst, src, region, .. } => (*dst, *src, region.volume()),
            GhostTask::Physical { .. } | GhostTask::ClampCopy { .. } => continue,
        };
        let vals = vol as usize * nvar;
        if owner[&dst] == owner[&src] {
            st.local_values += vals;
        } else {
            st.remote_values += vals;
            st.remote_msgs += 1;
        }
    }
    st
}

/// Convenience: partition a grid's leaves by cell weight and return the
/// owner map keyed by id.
pub fn partition_grid<const D: usize>(
    grid: &BlockGrid<D>,
    nranks: usize,
    policy: Policy,
) -> HashMap<BlockId, usize> {
    let ids = grid.block_ids();
    let keys: Vec<BlockKey<D>> = ids.iter().map(|&id| grid.block(id).key()).collect();
    let weights = vec![1.0; keys.len()];
    let assign = partition(&keys, &weights, nranks, policy);
    ids.into_iter().zip(assign).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ablock_core::ghost::GhostConfig;
    use ablock_core::grid::{GridParams, Transfer};
    use ablock_core::layout::{Boundary, RootLayout};

    fn keys_grid(n: i64) -> Vec<BlockKey<2>> {
        (0..n).flat_map(|x| (0..n).map(move |y| BlockKey::new(0, [x, y]))).collect()
    }

    #[test]
    fn all_policies_cover_all_ranks() {
        let keys = keys_grid(8); // 64 blocks
        let w = vec![1.0; keys.len()];
        for policy in [Policy::SfcMorton, Policy::SfcHilbert, Policy::RoundRobin, Policy::Greedy] {
            let a = partition(&keys, &w, 8, policy);
            let mut seen = vec![0usize; 8];
            for &r in &a {
                assert!(r < 8);
                seen[r] += 1;
            }
            assert!(seen.iter().all(|&c| c == 8), "{policy:?}: {seen:?}");
        }
    }

    #[test]
    fn uniform_weights_perfectly_balanced() {
        let keys = keys_grid(8);
        let w = vec![1.0; keys.len()];
        for policy in [Policy::SfcMorton, Policy::SfcHilbert, Policy::RoundRobin, Policy::Greedy] {
            let a = partition(&keys, &w, 16, policy);
            let im = imbalance(&w, &a, 16);
            assert!((im - 1.0).abs() < 1e-12, "{policy:?}: {im}");
        }
    }

    #[test]
    fn greedy_balances_heterogeneous_weights() {
        let keys = keys_grid(4);
        let mut w = vec![1.0; 16];
        w[0] = 8.0; // one heavy block
        let greedy = partition(&keys, &w, 4, Policy::Greedy);
        let rr = partition(&keys, &w, 4, Policy::RoundRobin);
        let ig = imbalance(&w, &greedy, 4);
        let ir = imbalance(&w, &rr, 4);
        assert!(ig <= ir, "greedy {ig} vs round-robin {ir}");
        // total weight is 23 (one 1.0 became 8.0); perfect balance is
        // impossible (8 > 23/4), but greedy isolates the heavy block:
        // loads (8, 5, 5, 5) -> imbalance 8 / 5.75
        assert!((ig - 8.0 / 5.75).abs() < 1e-12, "greedy imbalance {ig}");
    }

    #[test]
    fn sfc_cuts_are_contiguous_along_curve() {
        let keys = keys_grid(8);
        let w = vec![1.0; keys.len()];
        let a = partition(&keys, &w, 4, Policy::SfcHilbert);
        // walking in curve order, the rank sequence must be nondecreasing
        let bits = required_bits(8, 0);
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by_key(|&i| curve_index(&keys[i], 0, bits, Curve::Hilbert));
        let ranks: Vec<usize> = order.iter().map(|&i| a[i]).collect();
        assert!(ranks.windows(2).all(|w| w[0] <= w[1]), "{ranks:?}");
    }

    #[test]
    fn sfc_locality_beats_round_robin() {
        // On a refined grid, SFC partitions must move far fewer ghost
        // values across rank boundaries than round-robin.
        let mut g = BlockGrid::<2>::new(
            RootLayout::unit([4, 4], Boundary::Periodic),
            GridParams::new([4, 4], 2, 1, 3),
        );
        ablock_core::balance::refine_ball_to_level(
            &mut g,
            [0.5, 0.5],
            0.2,
            2,
            Transfer::None,
        );
        let plan = GhostExchange::build(&g, GhostConfig::default());
        let sfc = partition_grid(&g, 8, Policy::SfcHilbert);
        let rr = partition_grid(&g, 8, Policy::RoundRobin);
        let cs = comm_stats(&g, &plan, &sfc);
        let cr = comm_stats(&g, &plan, &rr);
        assert!(
            cs.remote_values < cr.remote_values,
            "sfc {} vs round-robin {}",
            cs.remote_values,
            cr.remote_values
        );
        assert!(cs.remote_fraction() < 1.0);
        // round-robin with 8 ranks: essentially every face is remote
        assert!(cr.remote_fraction() > 0.9, "rr fraction {}", cr.remote_fraction());
    }

    #[test]
    fn single_rank_all_local() {
        let g = BlockGrid::<2>::new(
            RootLayout::unit([2, 2], Boundary::Periodic),
            GridParams::new([4, 4], 2, 1, 1),
        );
        let plan = GhostExchange::build(&g, GhostConfig::default());
        let owner = partition_grid(&g, 1, Policy::SfcMorton);
        let st = comm_stats(&g, &plan, &owner);
        assert_eq!(st.remote_values, 0);
        assert_eq!(st.remote_msgs, 0);
        assert!(st.local_values > 0);
    }

    #[test]
    fn more_ranks_than_blocks() {
        let keys = keys_grid(2); // 4 blocks
        let w = vec![1.0; 4];
        let a = partition(&keys, &w, 16, Policy::SfcMorton);
        // all blocks assigned to valid (distinct-ish) ranks
        for &r in &a {
            assert!(r < 16);
        }
        let distinct: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(distinct.len(), 4, "four blocks on four different ranks");
    }
}

//! # ablock-par — parallel substrates for adaptive blocks
//!
//! Everything the SC'97 paper's 512-PE Cray T3D runs needed, rebuilt:
//!
//! * [`machine`] — a from-scratch message-passing machine (ranks =
//!   threads, tagged channels, barrier, allreduce/allgatherv/broadcast);
//! * [`dist`] — distributed AMR stepping: replicated block topology,
//!   owner-held field data, halo exchange over the machine, replicated
//!   adapt with data migration;
//! * [`balance`] — named [`Policy`] shorthands over the pluggable
//!   [`Partitioner`] API (SFC cut points, round-robin, greedy) plus
//!   imbalance and communication metrics;
//! * [`shared`] — a shared-memory executor on scoped threads
//!   (gather/scatter ghost fill, parallel block kernels via [`pool`]);
//! * [`costmodel`] — a BSP step-cost model with T3D-like parameters that
//!   regenerates the paper's Figs. 6–7 scaling shapes at any rank count;
//! * [`fault`] — deterministic, seeded fault injection for the machine
//!   (drop/delay/duplicate/corrupt messages, crash a rank at a chosen op);
//! * [`recover`] — incremental-checkpoint recovery driver: content-
//!   addressed snapshots with buddy replication, rank-failure detection,
//!   restart on the survivors with delta-proportional peer fetch.

#![warn(missing_docs)]

pub mod balance;
pub mod costmodel;
pub mod dist;
pub mod fault;
pub mod machine;
pub mod pool;
pub mod recover;
pub mod shared;

pub use ablock_core::partition::{
    cell_weights, inherit_owner, BlockMove, CurveWalk, PartitionStrategy, Partitioner,
    RebalancePlan,
};
pub use balance::{comm_stats, imbalance, CommStats, Policy};
pub use costmodel::{
    model_step, model_step_cached, record_adapt_phases, record_rebalance_phases,
    record_step_phases, CostParams, RankCost, StepCost,
};
pub use dist::{DistSim, WeightFn};
pub use fault::{FaultPlan, FaultStats};
pub use machine::{Comm, CommError, Machine, MachineConfig, MachineError, Msg, RankFailure};
pub use recover::{
    run_resilient, run_resilient_with, RecoverConfig, RecoverError, RecoverOutcome,
    RecoveryReport, SnapshotTotals,
};
pub use shared::{par_fill_ghosts, par_fill_ghosts_with, ParStepper};

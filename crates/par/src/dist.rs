//! Distributed AMR stepping over the message-passing machine.
//!
//! The decomposition follows the paper (and its BATS-R-US/PARAMESH
//! descendants): the **block topology is replicated** on every rank —
//! thousands of keys and pointers, trivially small next to field data —
//! while each block's **cell data lives on exactly one owner rank**.
//! Communication therefore moves whole ghost-face regions between owners,
//! amortized over blocks of cells exactly as the paper argues.
//!
//! Halo exchange piggybacks on the serial [`GhostExchange`] plan: every
//! rank builds the identical plan; a task whose source block lives on a
//! peer is satisfied by receiving the task's source read-region into the
//! local (otherwise unused) copy of that block, then running the task
//! locally. The default path **aggregates**: all tasks between one pair
//! of ranks within one phase travel as a single packed message (see
//! [`AggregatedExchange`]), segments ordered by block keys so packing is
//! replicated-deterministic, and the sweep is split so interior fluxes
//! compute while the exchange is in flight (`SolverConfig::comm_overlap`,
//! DESIGN.md §13). With the toggle off, the legacy one-message-per-task
//! exchange runs: tags are global task indices, so matching is
//! deterministic and deadlock-free (all sends precede all receives
//! within a phase). Both paths are bitwise-identical to the serial
//! stepper.
//!
//! Adaptation is replicated the same way: refine/coarsen flags from owned
//! blocks are allgathered as keys, every rank derives the identical
//! [`AdaptPlan`](ablock_core::balance::AdaptPlan), sibling interiors of
//! the planned coarsen groups are
//! pre-exchanged point-to-point (the only remote data the conservative
//! transfer reads), every rank applies the identical plan, and ownership
//! is inherited (children from parent, parent from first child).
//!
//! Re-balancing is **incremental** (DESIGN.md §16): the leaves are kept in
//! curve order ([`CurveWalk`], spliced per adapt, never re-sorted), the
//! configured [`Partitioner`] recomputes only the cut points, and the
//! resulting [`RebalancePlan`](ablock_core::partition::RebalancePlan)
//! migrates exactly the blocks whose curve
//! interval moved — one packed message per rank pair, segments in walk
//! order, mirroring the aggregated-exchange protocol. No whole-grid
//! collective remains on the adapt path; `gather_full` survives solely
//! for checkpoint writes.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use ablock_core::arena::BlockId;
use ablock_core::balance::{apply_adapt, plan_adapt, Flag};
use ablock_core::ghost::{
    extract_box, insert_box, task_source_box, AggregatedExchange, GhostExchange, GhostTask,
};
use ablock_core::grid::{BlockGrid, Transfer};
use ablock_core::index::Face;
use ablock_core::key::BlockKey;
use ablock_core::ops::ProlongOrder;
use ablock_core::partition::{cell_weights, inherit_owner, CurveWalk, Partitioner};

use ablock_obs::phase;
use ablock_solver::engine::{rk2_stage1_block, rk2_stage2_block, BcFn, SweepEngine, SweepSplit};
use ablock_solver::kernel::{compute_rhs_block, compute_rhs_block_fluxes, max_rate_block};
use ablock_solver::physics::Physics;
use ablock_solver::recon::Recon;
use ablock_solver::reflux::coarse_fine_fetch_list;
use ablock_solver::subcycle::{self, SubcycleBackend, SubcycleState};
use ablock_solver::{SolverConfig, TimeStepMode};

use crate::machine::Comm;

/// Base tag for legacy halo traffic (leaves room for task indices).
const TAG_HALO: u64 = 1 << 40;
/// Tag for migration pair messages. One message per rank pair per
/// rebalance; per-`(src, tag)` FIFO matching keeps successive rebalances
/// ordered without a barrier.
const TAG_MIGRATE: u64 = 1 << 41;
/// Base tag for aggregated pair messages (`+ phase index`). Successive
/// exchanges reuse the same tags; per-`(src, tag)` FIFO matching in the
/// stash keeps them ordered without a barrier.
const TAG_AGG: u64 = 1 << 42;
/// Tag for coarsen-group sibling-interior pre-sends during adapt.
const TAG_COARSEN: u64 = 1 << 45;
/// Base tag for subcycled per-level ghost fills (`+ phase index`). Every
/// rank runs the identical driver recursion, so fills are issued in the
/// same global order everywhere and per-`(src, tag)` FIFO matching keeps
/// successive fills ordered without sequence numbers.
const TAG_SUB: u64 = 1 << 46;
/// Tag for fine-side reflux-accumulator face fetches before a coarse
/// level refluxes (see [`DistBackend::pre_reflux`]).
const TAG_SUBACC: u64 = 1 << 47;

/// Replicated per-block weight hook for rebalancing (measured costs from
/// step timers, cost-model estimates, …). **Must be deterministic and
/// identical on every rank** — all ranks derive the rebalance plan
/// independently, so rank-local inputs (e.g. raw timers) have to be
/// reduced to a replicated value first.
pub type WeightFn<const D: usize> = Arc<dyn Fn(&BlockGrid<D>, BlockId) -> f64 + Send + Sync>;

/// A rank's view of the distributed simulation.
pub struct DistSim<const D: usize, P: Physics> {
    /// Replicated grid; only owned blocks hold authoritative field data.
    pub grid: BlockGrid<D>,
    /// Block → owning rank.
    pub owner: HashMap<BlockId, usize>,
    cfg: SolverConfig<P>,
    engine: SweepEngine<D>,
    /// Leaves in curve order, spliced incrementally per adapt.
    walk: CurveWalk<D>,
    /// Optional measured-cost weights; interior cell counts otherwise.
    weight_fn: Option<WeightFn<D>>,
    /// Epoch-cached per-rank-pair aggregation of the ghost plan.
    agg: Option<AggregatedExchange<D>>,
    /// Epoch-cached interior/halo split of this rank's owned blocks.
    split: SweepSplit,
    /// Epoch-keyed subcycling scratch (level tables, per-level plans,
    /// flux accumulators); empty until the first subcycled call.
    sub: SubcycleState<D>,
    /// Epoch-cached aggregations of the per-level subcycle plans,
    /// parallel to `sub.levels()`.
    sub_agg: Vec<AggregatedExchange<D>>,
    /// Halo values received from peers (diagnostics).
    pub halo_values_recv: u64,
}

impl<const D: usize, P: Physics> DistSim<D, P> {
    /// Wrap a (deterministically identical on every rank) grid with an
    /// ownership map. The [`SolverConfig`] must be identical on every
    /// rank (physics, scheme, CFL, partitioner — the replicated-topology
    /// invariant extends to the solver parameters).
    pub fn new(
        mut grid: BlockGrid<D>,
        owner: HashMap<BlockId, usize>,
        cfg: SolverConfig<P>,
    ) -> Self {
        // Replicated-deterministic by construction: every rank holds the
        // identical cfg, so every rank binarizes identical solid masks.
        grid.ensure_geometry(&cfg.geometry);
        let engine = cfg.engine();
        let walk = CurveWalk::build(&grid, cfg.partitioner.curve());
        DistSim {
            grid,
            owner,
            cfg,
            engine,
            walk,
            weight_fn: None,
            agg: None,
            split: SweepSplit::default(),
            sub: SubcycleState::new(),
            sub_agg: Vec::new(),
            halo_values_recv: 0,
        }
    }

    /// Partition-and-wrap convenience using the config's partitioner.
    pub fn partitioned(grid: BlockGrid<D>, nranks: usize, cfg: SolverConfig<P>) -> Self {
        let owner = cfg.partitioner.partition_grid(&grid, nranks);
        Self::new(grid, owner, cfg)
    }

    /// Install a replicated measured-cost weight hook (see [`WeightFn`]).
    pub fn set_weight_fn(&mut self, f: WeightFn<D>) {
        self.weight_fn = Some(f);
    }

    /// The solver configuration this simulation was built from.
    pub fn config(&self) -> &SolverConfig<P> {
        &self.cfg
    }

    /// The underlying sweep engine (plan cache stats).
    pub fn engine(&self) -> &SweepEngine<D> {
        &self.engine
    }

    /// Mutable engine access — the single escape hatch for out-of-band
    /// invalidation (`engine_mut().invalidate()`). **Not** needed after
    /// adapt or rebalance — both bump the grid's topology epoch, which
    /// the engine tracks automatically.
    pub fn engine_mut(&mut self) -> &mut SweepEngine<D> {
        &mut self.engine
    }

    /// Blocks owned by `rank`.
    pub fn owned_ids(&self, rank: usize) -> Vec<BlockId> {
        let mut v: Vec<BlockId> = self
            .grid
            .block_ids()
            .into_iter()
            .filter(|id| self.owner[id] == rank)
            .collect();
        v.sort();
        v
    }

    /// Legacy distributed ghost fill, one message per remote task: remote
    /// source regions are received from their owners; everything else
    /// mirrors the serial plan. Selected by `comm_overlap = false`; kept
    /// as the A/B baseline for the aggregated path.
    pub fn halo_exchange(&mut self, comm: &Comm) {
        self.engine.revalidate(&self.grid);
        let me = comm.rank();
        let plan = self.engine.plan();
        let phase1_len = plan.phase1().len();

        for (phase_idx, tasks) in [plan.phase1(), plan.phase2()].into_iter().enumerate() {
            let base = if phase_idx == 0 { 0 } else { phase1_len };
            // -------- sends --------
            for (i, task) in tasks.iter().enumerate() {
                if let Some((dst, src, bx)) = task_source_box(task) {
                    if self.owner[&src] == me && self.owner[&dst] != me {
                        let data = extract_box(self.grid.block(src).field(), bx);
                        self.cfg.metrics.incr("comm.halo.messages", 1);
                        comm.send(
                            self.owner[&dst],
                            TAG_HALO + (base + i) as u64,
                            data,
                        );
                    }
                }
            }
            // -------- receives + local application --------
            for (i, task) in tasks.iter().enumerate() {
                match task {
                    GhostTask::Physical { dst, .. } | GhostTask::ClampCopy { dst, .. } => {
                        if self.owner[dst] == me {
                            run_one_task(&mut self.grid, task, plan);
                        }
                    }
                    _ => {
                        let (dst, src, bx) = task_source_box(task).expect("non-physical");
                        if self.owner[&dst] != me {
                            continue;
                        }
                        if self.owner[&src] != me {
                            let data =
                                comm.recv(self.owner[&src], TAG_HALO + (base + i) as u64);
                            self.halo_values_recv += data.len() as u64;
                            self.cfg.metrics.incr("dist.halo_values_recv", data.len() as u64);
                            insert_box(self.grid.block_mut(src).field_mut(), bx, &data);
                        }
                        run_one_task(&mut self.grid, task, plan);
                    }
                }
            }
            // phase 2 sources include phase-1-filled ghost slabs, so the
            // sends above must not run ahead of peers' phase 1
            if phase_idx == 0 {
                comm.barrier();
            }
        }
    }

    /// Revalidate the plan and, when the topology epoch moved (or on
    /// first use), rebuild the epoch-cached aggregation and this rank's
    /// interior/halo split. Rebalance and adapt both bump the epoch, so
    /// ownership changes invalidate these caches automatically.
    fn refresh_overlap_caches(&mut self, me: usize) {
        self.engine.revalidate(&self.grid);
        let stale = match &self.agg {
            Some(a) => !a.is_current(&self.grid),
            None => true,
        };
        if stale {
            let owner = &self.owner;
            self.agg = Some(self.engine.plan().aggregate(&self.grid, &|id| owner[&id]));
            self.split = self
                .engine
                .split_remote(&self.owned_ids(me), &|id| owner[&id] != me);
        }
    }

    /// Global CFL time step across all owned blocks, at the configured
    /// CFL number.
    pub fn max_dt(&self, comm: &Comm) -> f64 {
        let me = comm.rank();
        let mut rate: f64 = 0.0;
        for id in self.owned_ids(me) {
            let node = self.grid.block(id);
            let h = self
                .grid
                .layout()
                .cell_size(node.key().level, self.grid.params().block_dims);
            rate = rate.max(max_rate_block(&self.cfg.physics, node.field(), h));
        }
        let global = comm.allreduce_max(rate);
        if global > 0.0 {
            self.cfg.cfl / global
        } else {
            f64::INFINITY
        }
    }

    fn eval_rhs(&mut self, comm: &Comm) {
        if self.cfg.comm_overlap {
            self.eval_rhs_overlap(comm);
            return;
        }
        self.halo_exchange(comm);
        let ids = self.owned_ids(comm.rank());
        let sw = self.engine.sweep();
        for id in ids {
            let node = self.grid.block(id);
            let h = self
                .grid
                .layout()
                .cell_size(node.key().level, self.grid.params().block_dims);
            compute_rhs_block(
                &self.cfg.physics,
                self.cfg.scheme,
                node.field(),
                h,
                &mut sw.rhs[id.index()],
                sw.prim_scratch,
            );
        }
    }

    /// Flux one half of the interior/halo split.
    fn sweep_ids(&mut self, ids: &[BlockId]) {
        let sw = self.engine.sweep();
        for &id in ids {
            let node = self.grid.block(id);
            let h = self
                .grid
                .layout()
                .cell_size(node.key().level, self.grid.params().block_dims);
            compute_rhs_block(
                &self.cfg.physics,
                self.cfg.scheme,
                node.field(),
                h,
                &mut sw.rhs[id.index()],
                sw.prim_scratch,
            );
        }
    }

    /// Aggregated exchange with comm/compute overlap (the default path;
    /// DESIGN.md §13). Per phase, all traffic to one peer travels as a
    /// single vectored message; interior fluxes are computed between the
    /// eager phase-1 sends and the receives, so the exchange is in flight
    /// during the bulk of the sweep. Every send precedes the matching
    /// receive on every rank (phase-1 sends are the first comm op of an
    /// exchange; phase-2 sends depend only on this rank's completed
    /// phase 1), so the path needs no inter-phase barrier and cannot
    /// deadlock. Bitwise-identical to [`DistSim::halo_exchange`] plus a
    /// full sweep: the per-task arithmetic is untouched and every ghost
    /// cell is written exactly once per exchange, so only the execution
    /// order across blocks changes.
    fn eval_rhs_overlap(&mut self, comm: &Comm) {
        let me = comm.rank();
        self.refresh_overlap_caches(me);
        let ghost_span = self.cfg.metrics.span(phase::GHOST_FILL);
        // -------- eager phase-1 sends + purely local ghost work --------
        {
            let plan = self.engine.plan();
            let agg = self.agg.as_ref().expect("refreshed above");
            let expected = (0..2)
                .map(|p| agg.phase(p).iter().filter(|m| m.from == me).count() as u64)
                .sum::<u64>();
            self.cfg.metrics.incr("comm.agg.pair_msgs_expected", expected);
            {
                let _p = self.cfg.metrics.span(phase::PACK);
                for msg in agg.phase(0).iter().filter(|m| m.from == me) {
                    let parts = msg.pack_parts(&self.grid);
                    let slices: Vec<&[f64]> = parts.iter().map(Vec::as_slice).collect();
                    self.cfg.metrics.incr("comm.agg.messages", 1);
                    self.cfg.metrics.incr("comm.agg.values", msg.values as u64);
                    self.cfg.metrics.incr("comm.agg.segments", msg.segments.len() as u64);
                    comm.send_vectored(msg.to, TAG_AGG, &slices);
                }
            }
            // Local phase 1: boundary tasks and local-source copies; the
            // remote-source tasks wait for the unpack below.
            for task in plan.phase1() {
                match task {
                    GhostTask::Physical { dst, .. } | GhostTask::ClampCopy { dst, .. } => {
                        if self.owner[dst] == me {
                            run_one_task(&mut self.grid, task, plan);
                        }
                    }
                    _ => {
                        let (dst, src, _) = task_source_box(task).expect("non-physical");
                        if self.owner[&dst] == me && self.owner[&src] == me {
                            run_one_task(&mut self.grid, task, plan);
                        }
                    }
                }
            }
            // Phase 2 for interior destinations: by the split's one-hop
            // closure their sources are local with locally completed
            // phase-1 slabs, so these prolongations are final already.
            for task in plan.phase2() {
                if let Some((dst, src, _)) = task_source_box(task) {
                    if self.owner[&dst] == me
                        && self.owner[&src] == me
                        && self.split.halo.binary_search(&dst).is_err()
                    {
                        run_one_task(&mut self.grid, task, plan);
                    }
                }
            }
        }
        // -------- interior fluxes while the exchange is in flight --------
        {
            let _o = self.cfg.metrics.span(phase::OVERLAP);
            let _f = self.cfg.metrics.span(phase::FLUX);
            let interior = std::mem::take(&mut self.split.interior);
            self.sweep_ids(&interior);
            self.split.interior = interior;
        }
        // -------- join: drain the exchange, finish halo ghosts --------
        {
            let plan = self.engine.plan();
            let agg = self.agg.as_ref().expect("refreshed above");
            {
                let _u = self.cfg.metrics.span(phase::UNPACK);
                for msg in agg.phase(0).iter().filter(|m| m.to == me) {
                    let parts = comm.recv_vectored(msg.from, TAG_AGG, &msg.lens());
                    let n: u64 = parts.iter().map(|p| p.len() as u64).sum();
                    self.halo_values_recv += n;
                    self.cfg.metrics.incr("dist.halo_values_recv", n);
                    msg.unpack(&mut self.grid, &parts);
                }
            }
            for task in plan.phase1() {
                if let Some((dst, src, _)) = task_source_box(task) {
                    if self.owner[&dst] == me && self.owner[&src] != me {
                        run_one_task(&mut self.grid, task, plan);
                    }
                }
            }
            // Phase-2 sends read this rank's now-complete phase-1 slabs.
            {
                let _p = self.cfg.metrics.span(phase::PACK);
                for msg in agg.phase(1).iter().filter(|m| m.from == me) {
                    let parts = msg.pack_parts(&self.grid);
                    let slices: Vec<&[f64]> = parts.iter().map(Vec::as_slice).collect();
                    self.cfg.metrics.incr("comm.agg.messages", 1);
                    self.cfg.metrics.incr("comm.agg.values", msg.values as u64);
                    self.cfg.metrics.incr("comm.agg.segments", msg.segments.len() as u64);
                    comm.send_vectored(msg.to, TAG_AGG + 1, &slices);
                }
            }
            for task in plan.phase2() {
                if let Some((dst, src, _)) = task_source_box(task) {
                    if self.owner[&dst] == me
                        && self.owner[&src] == me
                        && self.split.halo.binary_search(&dst).is_ok()
                    {
                        run_one_task(&mut self.grid, task, plan);
                    }
                }
            }
            {
                let _u = self.cfg.metrics.span(phase::UNPACK);
                for msg in agg.phase(1).iter().filter(|m| m.to == me) {
                    let parts = comm.recv_vectored(msg.from, TAG_AGG + 1, &msg.lens());
                    let n: u64 = parts.iter().map(|p| p.len() as u64).sum();
                    self.halo_values_recv += n;
                    self.cfg.metrics.incr("dist.halo_values_recv", n);
                    msg.unpack(&mut self.grid, &parts);
                }
            }
            for task in plan.phase2() {
                if let Some((dst, src, _)) = task_source_box(task) {
                    if self.owner[&dst] == me && self.owner[&src] != me {
                        run_one_task(&mut self.grid, task, plan);
                    }
                }
            }
        }
        drop(ghost_span);
        // -------- halo fluxes after the join --------
        {
            let _f = self.cfg.metrics.span(phase::FLUX);
            let halo = std::mem::take(&mut self.split.halo);
            self.sweep_ids(&halo);
            self.split.halo = halo;
        }
    }

    /// One SSP-RK2 step of the owned blocks.
    pub fn step_rk2(&mut self, comm: &Comm, dt: f64) {
        let ids = self.owned_ids(comm.rank());
        self.eval_rhs(comm);
        {
            let sw = self.engine.sweep();
            for &id in &ids {
                let node = self.grid.block_mut(id);
                rk2_stage1_block(
                    &self.cfg.physics,
                    node.field_mut(),
                    &sw.rhs[id.index()],
                    &mut sw.stage[id.index()],
                    dt,
                );
            }
        }
        self.eval_rhs(comm);
        let sw = self.engine.sweep();
        for &id in &ids {
            let node = self.grid.block_mut(id);
            rk2_stage2_block(
                &self.cfg.physics,
                node.field_mut(),
                &sw.rhs[id.index()],
                &sw.stage[id.index()],
                dt,
            );
        }
    }

    /// Largest stable coarsest-level `dt₀` for subcycling
    /// ([`subcycle::max_dt0`]): one scan of every owned block, reduced
    /// per level with `allreduce_max`. The `f64` max reduction is exact
    /// and order-independent, so every rank computes a `dt₀` bitwise
    /// equal to the serial stepper's.
    pub fn max_dt0(&mut self, comm: &Comm) -> f64 {
        let mut sub = std::mem::take(&mut self.sub);
        let mut backend = DistBackend {
            cfg: &self.cfg,
            engine: &mut self.engine,
            owner: &self.owner,
            sub_agg: &mut self.sub_agg,
            halo_values_recv: &mut self.halo_values_recv,
            comm,
            me: comm.rank(),
        };
        let dt0 = subcycle::max_dt0(&mut backend, &self.grid, &mut sub);
        self.sub = sub;
        dt0
    }

    /// One subcycled hierarchy advance by `dt0` (DESIGN.md §17): the
    /// shared driver recursion over this rank's owned blocks, with
    /// aggregated per-level ghost fills and fine-side accumulator
    /// fetches before each coarse reflux. The recursion, fill
    /// arithmetic, and reflux order are identical to the serial
    /// stepper's, so owned interiors stay bitwise-identical to it.
    pub fn step_subcycled(&mut self, comm: &Comm, dt0: f64) {
        let mut sub = std::mem::take(&mut self.sub);
        let mut backend = DistBackend {
            cfg: &self.cfg,
            engine: &mut self.engine,
            owner: &self.owner,
            sub_agg: &mut self.sub_agg,
            halo_values_recv: &mut self.halo_values_recv,
            comm,
            me: comm.rank(),
        };
        subcycle::step_subcycled(&mut backend, &mut self.grid, &mut sub, dt0, None);
        self.sub = sub;
    }

    /// The stable step for the configured [`TimeStepMode`]: the global
    /// CFL `dt` or the subcycled coarsest-level `dt₀`.
    pub fn stable_dt(&mut self, comm: &Comm) -> f64 {
        match self.cfg.time_step_mode {
            TimeStepMode::Global => self.max_dt(comm),
            TimeStepMode::Subcycled => self.max_dt0(comm),
        }
    }

    /// Advance one step with the configured [`TimeStepMode`]: a global
    /// SSP-RK2 step or one subcycled coarsest-level cycle.
    pub fn advance(&mut self, comm: &Comm, dt: f64) {
        match self.cfg.time_step_mode {
            TimeStepMode::Global => self.step_rk2(comm, dt),
            TimeStepMode::Subcycled => self.step_subcycled(comm, dt),
        }
    }

    /// Replicated adapt: flags for owned blocks are allgathered as keys,
    /// every rank derives the identical [`ablock_core::balance::AdaptPlan`],
    /// sibling interiors of planned coarsen groups are pre-exchanged point
    /// to point, the plan is applied identically everywhere, ownership is
    /// inherited, the curve walk is spliced in place, and an incremental
    /// rebalance migrates exactly the blocks whose curve interval moved.
    /// Returns true if the grid changed.
    pub fn adapt_rebalance(
        &mut self,
        comm: &Comm,
        local_flags: &HashMap<BlockId, Flag>,
    ) -> bool {
        let me = comm.rank();
        // encode owned flags as (level, coords..., kind) tuples
        let mut payload = Vec::new();
        for (&id, &flag) in local_flags {
            if self.owner[&id] != me || flag == Flag::Keep {
                continue;
            }
            let key = self.grid.block(id).key();
            payload.push(key.level as f64);
            for d in 0..D {
                payload.push(key.coords[d] as f64);
            }
            payload.push(match flag {
                Flag::Refine => 1.0,
                Flag::Coarsen => 2.0,
                Flag::Keep => unreachable!(),
            });
        }
        let all = comm.allgatherv(payload);
        let mut flags: HashMap<BlockId, Flag> = HashMap::new();
        for part in all {
            for chunk in part.chunks_exact(D + 2) {
                let level = chunk[0] as u8;
                let mut coords = [0i64; D];
                for d in 0..D {
                    coords[d] = chunk[1 + d] as i64;
                }
                let flag = if chunk[D + 1] == 1.0 { Flag::Refine } else { Flag::Coarsen };
                if let Some(id) = self.grid.find(BlockKey::new(level, coords)) {
                    flags.insert(id, flag);
                }
            }
        }
        // ownership by key before restructuring
        let owner_by_key: HashMap<BlockKey<D>, usize> = self
            .grid
            .blocks()
            .map(|(id, n)| (n.key(), self.owner[&id]))
            .collect();
        let transfer = Transfer::Conservative(match self.cfg.scheme.recon {
            Recon::FirstOrder => ProlongOrder::Constant,
            Recon::Muscl(_) => ProlongOrder::LinearMinmod,
        });
        // The conservative transfer reads *full interiors* of exactly two
        // kinds of blocks: the parent of each refined block and the 2^D
        // children of each coarsen group. Refinement is safe without any
        // exchange — children inherit the parent's owner, and on that rank
        // the parent interior being prolonged is authoritative (mirrors
        // elsewhere prolong stale data into non-authoritative copies).
        // Coarsening is not: siblings may live on ranks other than the
        // surviving owner. So instead of gathering the whole grid we
        // pre-send just the sibling interiors of the planned groups to the
        // rank that will own the coarse parent.
        let plan = plan_adapt(&self.grid, &flags);
        self.fetch_coarsen_groups(comm, &plan.coarsen, &owner_by_key);
        let report = apply_adapt(&mut self.grid, &plan, transfer);
        // ownership is inherited: same key → same owner; child → parent's
        // owner; parent (after coarsen) → first child's owner
        self.owner = inherit_owner(&self.grid, &owner_by_key);
        // splice the curve walk instead of re-sorting: refined parents
        // become 2^D contiguous children, applied coarsen groups collapse.
        // A planned coarsen may still be vetoed at apply time; the parent
        // key is a leaf iff the group actually merged.
        let refined: Vec<BlockKey<D>> = plan.refine.iter().map(|(k, _)| *k).collect();
        let merged: Vec<BlockKey<D>> = plan
            .coarsen
            .iter()
            .copied()
            .filter(|p| self.grid.find(*p).is_some())
            .collect();
        self.walk.apply_adapt(&refined, &merged, &self.grid);
        // no invalidation needed: adapt's refine/coarsen calls bumped the
        // grid epoch, and rebalance below bumps it for ownership changes
        if report.changed() {
            self.cfg.metrics.incr("dist.adapts", 1);
        }
        if report.changed() || comm.nranks() > 1 {
            self.rebalance(comm);
        }
        report.changed()
    }

    /// Pre-exchange the sibling interiors a planned coarsen needs: for
    /// every group, children owned by a rank other than the owner of
    /// child 0 (the inherited owner of the coarse parent) are sent to
    /// that rank — one vectored message per rank pair, segments in plan
    /// order, so the protocol is deterministic on both sides. Sends for
    /// groups vetoed at apply time are harmless (they only refresh the
    /// receiver's mirror copies). This replaces the whole-grid
    /// `gather_full` on the adapt path.
    fn fetch_coarsen_groups(
        &mut self,
        comm: &Comm,
        groups: &[BlockKey<D>],
        owner_by_key: &HashMap<BlockKey<D>, usize>,
    ) {
        if groups.is_empty() || comm.nranks() == 1 {
            return;
        }
        let me = comm.rank();
        // (from, to) → child keys in plan order; replicated on every rank
        let mut pair_keys: BTreeMap<(usize, usize), Vec<BlockKey<D>>> = BTreeMap::new();
        for p in groups {
            let dst = owner_by_key[&p.child(0)];
            for ci in 1..(1usize << D) {
                let ck = p.child(ci);
                let src = owner_by_key[&ck];
                if src != dst {
                    pair_keys.entry((src, dst)).or_default().push(ck);
                }
            }
        }
        let params = self.grid.params();
        let values = params.field_shape().interior_cells() * params.nvar;
        // sends first (unbounded channels: no deadlock)
        for ((from, to), keys) in &pair_keys {
            if *from != me {
                continue;
            }
            let parts: Vec<Vec<f64>> = keys
                .iter()
                .map(|ck| {
                    let id = self.grid.find(*ck).expect("planned group child is a leaf");
                    let node = self.grid.block(id);
                    extract_box(node.field(), node.field().shape().interior_box())
                })
                .collect();
            let slices: Vec<&[f64]> = parts.iter().map(Vec::as_slice).collect();
            self.cfg.metrics.incr("dist.coarsen_fetch.messages", 1);
            self.cfg.metrics.incr("dist.coarsen_fetch.values", (values * keys.len()) as u64);
            comm.send_vectored(*to, TAG_COARSEN, &slices);
        }
        for ((from, to), keys) in &pair_keys {
            if *to != me {
                continue;
            }
            let lens = vec![values; keys.len()];
            let parts = comm.recv_vectored(*from, TAG_COARSEN, &lens);
            for (ck, data) in keys.iter().zip(parts) {
                let id = self.grid.find(*ck).expect("planned group child is a leaf");
                let bx = self.grid.block(id).field().shape().interior_box();
                insert_box(self.grid.block_mut(id).field_mut(), bx, &data);
            }
        }
    }

    /// Gather every owned block's interior data onto every rank. After
    /// this collective, the replicated grid holds authoritative field
    /// data everywhere — the precondition for writing a consistent
    /// checkpoint from any single rank (the recovery driver does exactly
    /// that on rank 0).
    pub fn gather_full(&mut self, comm: &Comm) {
        let me = comm.rank();
        let params = self.grid.params();
        let values = params.field_shape().interior_cells() * params.nvar;
        let rec = 1 + D + values;
        let mut payload = Vec::new();
        for id in self.owned_ids(me) {
            let node = self.grid.block(id);
            let key = node.key();
            payload.push(key.level as f64);
            for d in 0..D {
                payload.push(key.coords[d] as f64);
            }
            let bx = node.field().shape().interior_box();
            payload.extend(extract_box(node.field(), bx));
        }
        let all = comm.allgatherv(payload);
        for part in all {
            for chunk in part.chunks_exact(rec) {
                let level = chunk[0] as u8;
                let mut coords = [0i64; D];
                for d in 0..D {
                    coords[d] = chunk[1 + d] as i64;
                }
                if let Some(id) = self.grid.find(BlockKey::new(level, coords)) {
                    let bx = self.grid.block(id).field().shape().interior_box();
                    insert_box(self.grid.block_mut(id).field_mut(), bx, &chunk[1 + D..]);
                }
            }
        }
    }

    /// Incremental rebalance with the config's partitioner: recompute cut
    /// points over the maintained curve walk and migrate exactly the
    /// blocks whose interval moved (see
    /// [`RebalancePlan`](ablock_core::partition::RebalancePlan)).
    pub fn rebalance(&mut self, comm: &Comm) {
        let partitioner = self.cfg.partitioner.clone();
        self.rebalance_with(comm, &partitioner);
    }

    /// [`DistSim::rebalance`] with an explicit partitioner (must be
    /// identical on every rank). The walk is rebuilt only if the grid
    /// changed outside [`DistSim::adapt_rebalance`] or the curve differs.
    pub fn rebalance_with(&mut self, comm: &Comm, partitioner: &Partitioner) {
        let me = comm.rank();
        if !self.walk.is_current(&self.grid) || self.walk.curve() != partitioner.curve() {
            self.walk = CurveWalk::build(&self.grid, partitioner.curve());
        }
        let weights: Vec<f64> = match &self.weight_fn {
            Some(f) => self.walk.entries().iter().map(|e| f(&self.grid, e.id)).collect(),
            None => cell_weights(&self.grid, &self.walk),
        };
        let owner = &self.owner;
        let plan = partitioner.plan(&self.walk, &weights, comm.nranks(), |id| owner[&id]);
        let params = self.grid.params();
        let values_per_block = params.field_shape().interior_cells() * params.nvar;
        self.cfg.metrics.incr("dist.rebalance.count", 1);
        self.cfg.metrics.incr("dist.rebalance.migrated_blocks", plan.migrated() as u64);
        self.cfg
            .metrics
            .incr("dist.rebalance.values", (plan.migrated() * values_per_block) as u64);
        self.cfg.metrics.incr("dist.rebalance.pair_msgs", plan.pairs().len() as u64);
        // one vectored message per rank pair, segments in walk order —
        // the plan is replicated, so both sides derive identical layouts
        let mut by_pair: BTreeMap<(usize, usize), Vec<BlockId>> = BTreeMap::new();
        for m in &plan.moves {
            by_pair.entry((m.from, m.to)).or_default().push(m.id);
        }
        // sends first (unbounded channels: no deadlock)
        for ((from, to), ids) in &by_pair {
            if *from != me {
                continue;
            }
            let parts: Vec<Vec<f64>> = ids
                .iter()
                .map(|&id| {
                    let node = self.grid.block(id);
                    extract_box(node.field(), node.field().shape().interior_box())
                })
                .collect();
            let slices: Vec<&[f64]> = parts.iter().map(Vec::as_slice).collect();
            self.cfg.metrics.incr("dist.migrated_blocks", ids.len() as u64);
            comm.send_vectored(*to, TAG_MIGRATE, &slices);
        }
        for ((from, to), ids) in &by_pair {
            if *to != me {
                continue;
            }
            let lens = vec![values_per_block; ids.len()];
            let parts = comm.recv_vectored(*from, TAG_MIGRATE, &lens);
            for (&id, data) in ids.iter().zip(parts) {
                let bx = self.grid.block(id).field().shape().interior_box();
                insert_box(self.grid.block_mut(id).field_mut(), bx, &data);
            }
        }
        for (e, &r) in self.walk.entries().iter().zip(&plan.assign) {
            self.owner.insert(e.id, r);
        }
        if !plan.is_noop() {
            // redistribution changes which ranks hold authoritative data;
            // bump the epoch so every epoch-keyed cache sees the new layout
            self.grid.bump_epoch();
            self.walk.sync_epoch(&self.grid);
        }
    }
}

/// Disjoint-field borrow of a [`DistSim`] (everything but the grid,
/// which the subcycled driver borrows separately) plus the communicator
/// the driver signatures don't carry. Implements [`SubcycleBackend`]
/// over this rank's owned blocks.
struct DistBackend<'a, const D: usize, P: Physics> {
    cfg: &'a SolverConfig<P>,
    engine: &'a mut SweepEngine<D>,
    owner: &'a HashMap<BlockId, usize>,
    sub_agg: &'a mut Vec<AggregatedExchange<D>>,
    halo_values_recv: &'a mut u64,
    comm: &'a Comm,
    me: usize,
}

impl<const D: usize, P: Physics> SubcycleBackend<D> for DistBackend<'_, D, P> {
    type Phys = P;

    fn cfg_engine(&mut self) -> (&SolverConfig<P>, &mut SweepEngine<D>) {
        (self.cfg, self.engine)
    }

    fn level_ids(&self, grid: &BlockGrid<D>, level: u8) -> Vec<BlockId> {
        let mut v: Vec<BlockId> = grid
            .block_ids()
            .into_iter()
            .filter(|id| self.owner[id] == self.me && grid.block(*id).key().level == level)
            .collect();
        v.sort();
        v
    }

    fn is_owned(&self, id: BlockId) -> bool {
        self.owner[&id] == self.me
    }

    /// Distributed per-level fill: the level's filtered plan travels as
    /// aggregated pair messages (one per rank pair per phase, exactly
    /// like the global path's exchange), wrapped in the time
    /// interpolation of this rank's owned prolongation sources — owners
    /// blend *before* packing, so mirrors receive owner-interpolated
    /// data and are never restored. Every rank runs the identical driver
    /// recursion, so fills are globally ordered and all sends precede
    /// the matching receives: no barrier, no deadlock.
    fn fill_level(
        &mut self,
        grid: &mut BlockGrid<D>,
        state: &SubcycleState<D>,
        li: usize,
        theta: f64,
        _bc: Option<&BcFn<D>>,
    ) {
        // rebuild the per-level aggregations when the topology epoch
        // moved (adapt, rebalance) — same cadence as the engine's plan
        let nlv = state.levels().len();
        let stale =
            self.sub_agg.len() != nlv || self.sub_agg.iter().any(|a| !a.is_current(grid));
        if stale {
            let owner = self.owner;
            self.sub_agg.clear();
            for l in 0..nlv {
                self.sub_agg.push(state.plan(l).aggregate(grid, &|id| owner[&id]));
            }
        }
        let metrics = self.cfg.metrics.clone();
        let _span = metrics.span(phase::GHOST_FILL);
        let me = self.me;
        let comm = self.comm;
        let owner = self.owner;
        let agg = &self.sub_agg[li];
        let hrecv: &mut u64 = self.halo_values_recv;
        state.with_lerped_sources(grid, li, theta, |grid, plan| {
            for (ph, tasks) in [plan.phase1(), plan.phase2()].into_iter().enumerate() {
                let tag = TAG_SUB + ph as u64;
                // sends first (replicated pair plan, unbounded channels);
                // phase-2 sources read this rank's completed phase 1
                for msg in agg.phase(ph).iter().filter(|m| m.from == me) {
                    let parts = msg.pack_parts(grid);
                    let slices: Vec<&[f64]> = parts.iter().map(Vec::as_slice).collect();
                    metrics.incr("comm.agg.messages", 1);
                    metrics.incr("comm.agg.values", msg.values as u64);
                    metrics.incr("comm.agg.segments", msg.segments.len() as u64);
                    comm.send_vectored(msg.to, tag, &slices);
                }
                // purely local tasks
                for task in tasks {
                    match task {
                        GhostTask::Physical { dst, .. } | GhostTask::ClampCopy { dst, .. } => {
                            if owner[dst] == me {
                                run_one_task(grid, task, plan);
                            }
                        }
                        _ => {
                            let (dst, src, _) = task_source_box(task).expect("non-physical");
                            if owner[&dst] == me && owner[&src] == me {
                                run_one_task(grid, task, plan);
                            }
                        }
                    }
                }
                // drain the phase's traffic into local mirrors
                for msg in agg.phase(ph).iter().filter(|m| m.to == me) {
                    let parts = comm.recv_vectored(msg.from, tag, &msg.lens());
                    let n: u64 = parts.iter().map(|p| p.len() as u64).sum();
                    *hrecv += n;
                    metrics.incr("dist.halo_values_recv", n);
                    msg.unpack(grid, &parts);
                }
                // remote-source tasks now have fresh mirrors
                for task in tasks {
                    if let Some((dst, src, _)) = task_source_box(task) {
                        if owner[&dst] == me && owner[&src] != me {
                            run_one_task(grid, task, plan);
                        }
                    }
                }
            }
        });
    }

    fn sweep_level(&mut self, grid: &BlockGrid<D>, ids: &[BlockId]) {
        let _span = self.cfg.metrics.span(phase::FLUX);
        let sw = self.engine.sweep();
        for &id in ids {
            let node = grid.block(id);
            let h = grid
                .layout()
                .cell_size(node.key().level, grid.params().block_dims);
            let store = if self.cfg.refluxing {
                Some(&mut sw.flux_stores[id.index()])
            } else {
                None
            };
            compute_rhs_block_fluxes(
                &self.cfg.physics,
                self.cfg.scheme,
                node.field(),
                h,
                &mut sw.rhs[id.index()],
                sw.prim_scratch,
                store,
            );
        }
    }

    fn level_rates(&mut self, grid: &BlockGrid<D>, state: &SubcycleState<D>) -> Vec<f64> {
        let mut rates = vec![0.0f64; state.levels().len()];
        let mut scanned = 0u64;
        for (li, rate) in rates.iter_mut().enumerate() {
            let mut local: f64 = 0.0;
            for &id in state.ids(li) {
                let node = grid.block(id);
                let h = grid
                    .layout()
                    .cell_size(node.key().level, grid.params().block_dims);
                local = local.max(max_rate_block(&self.cfg.physics, node.field(), h));
                scanned += 1;
            }
            // f64 max is exact and order-independent, so the reduced
            // per-level rate — and the resulting dt₀ — is bitwise equal
            // to the serial stepper's whole-grid scan.
            *rate = self.comm.allreduce_max(local);
        }
        self.engine.note_rate_scans(scanned);
        rates
    }

    /// Fetch the fine-side `accum_par` faces the coming reflux of level
    /// `levels[li]` reads from other ranks: for every coarse-fine face
    /// whose coarse block is owned here but whose fine block is not, the
    /// fine owner ships that block's accumulated face — one vectored
    /// message per rank pair, faces in the shared reflux traversal
    /// order, so the protocol is replicated-deterministic on both sides.
    fn pre_reflux(&mut self, grid: &BlockGrid<D>, state: &mut SubcycleState<D>, li: usize) {
        if self.comm.nranks() == 1 {
            return;
        }
        let me = self.me;
        let level = state.levels()[li];
        let mut pair_faces: BTreeMap<(usize, usize), Vec<(BlockId, Face)>> = BTreeMap::new();
        for (coarse, fine, face) in coarse_fine_fetch_list(grid, level) {
            let to = self.owner[&coarse];
            let from = self.owner[&fine];
            if from != to {
                let entry = pair_faces.entry((from, to)).or_default();
                let item = (fine, face.opposite());
                if !entry.contains(&item) {
                    entry.push(item);
                }
            }
        }
        // sends first (unbounded channels: no deadlock)
        for ((from, to), faces) in &pair_faces {
            if *from != me {
                continue;
            }
            let parts: Vec<&[f64]> = faces
                .iter()
                .map(|&(id, f)| state.accum_par[id.index()].face(f))
                .collect();
            self.cfg.metrics.incr("dist.sub.reflux_msgs", 1);
            self.comm.send_vectored(*to, TAG_SUBACC, &parts);
        }
        for ((from, to), faces) in &pair_faces {
            if *to != me {
                continue;
            }
            let lens: Vec<usize> = faces
                .iter()
                .map(|&(id, f)| state.accum_par[id.index()].face(f).len())
                .collect();
            let parts = self.comm.recv_vectored(*from, TAG_SUBACC, &lens);
            for (&(id, f), data) in faces.iter().zip(parts) {
                state.accum_par[id.index()].face_mut(f).copy_from_slice(&data);
            }
        }
    }
}

/// Execute one ghost task against the grid (serial path re-used by the
/// distributed exchange once remote data has landed).
fn run_one_task<const D: usize>(
    grid: &mut BlockGrid<D>,
    task: &GhostTask<D>,
    plan: &GhostExchange<D>,
) {
    plan.run_single(grid, task);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use ablock_core::grid::GridParams;
    use ablock_core::sfc::Curve;
    use ablock_core::layout::{Boundary, RootLayout};
    use ablock_solver::euler::Euler;
    use ablock_solver::kernel::Scheme;
    use ablock_solver::problems;
    use ablock_solver::stepper::Stepper;

    fn build_grid() -> BlockGrid<2> {
        BlockGrid::new(
            RootLayout::unit([4, 4], Boundary::Periodic),
            GridParams::new([4, 4], 2, 4, 2),
        )
    }

    fn init(grid: &mut BlockGrid<2>, e: &Euler<2>) {
        problems::advected_gaussian(grid, e, [1.0, 0.5], [0.5, 0.5], 0.15);
    }

    /// Serial reference: same grid, same scheme, same steps.
    fn serial_solution(steps: usize, dt: f64) -> Vec<(BlockKey<2>, Vec<f64>)> {
        let e = Euler::<2>::new(1.4);
        let mut g = build_grid();
        init(&mut g, &e);
        let mut st = Stepper::new(SolverConfig::new(e, Scheme::muscl_rusanov()));
        for _ in 0..steps {
            st.step_rk2(&mut g, dt, None);
        }
        let mut out: Vec<(BlockKey<2>, Vec<f64>)> = g
            .blocks()
            .map(|(_, n)| (n.key(), n.field().as_slice().to_vec()))
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    fn dist_solution(
        nranks: usize,
        steps: usize,
        dt: f64,
        partitioner: Partitioner,
    ) -> Vec<(BlockKey<2>, Vec<f64>)> {
        let results = Machine::run(nranks, move |comm| {
            let e = Euler::<2>::new(1.4);
            let mut g = build_grid();
            init(&mut g, &e);
            let cfg = SolverConfig::new(e, Scheme::muscl_rusanov())
                .with_partitioner(partitioner.clone());
            let mut sim = DistSim::partitioned(g, nranks, cfg);
            for _ in 0..steps {
                sim.step_rk2(&comm, dt);
            }
            // return owned blocks
            let me = comm.rank();
            let mut out: Vec<(BlockKey<2>, Vec<f64>)> = sim
                .owned_ids(me)
                .into_iter()
                .map(|id| {
                    let n = sim.grid.block(id);
                    (n.key(), n.field().as_slice().to_vec())
                })
                .collect();
            out.sort_by_key(|(k, _)| *k);
            out
        })
        .unwrap();
        let mut all: Vec<(BlockKey<2>, Vec<f64>)> = results.into_iter().flatten().collect();
        all.sort_by_key(|(k, _)| *k);
        all
    }

    fn interiors_match(a: &[(BlockKey<2>, Vec<f64>)], b: &[(BlockKey<2>, Vec<f64>)]) {
        assert_eq!(a.len(), b.len());
        let shape = ablock_core::field::FieldShape::<2>::new([4, 4], 2, 4);
        for ((ka, fa), (kb, fb)) in a.iter().zip(b) {
            assert_eq!(ka, kb);
            for c in shape.interior_box().iter() {
                let i = shape.lin(c);
                for v in 0..4 {
                    let (x, y) = (fa[i + v], fb[i + v]);
                    assert!(
                        (x - y).abs() <= 1e-13 * x.abs().max(1.0),
                        "block {ka:?} cell {c:?} var {v}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn two_ranks_match_serial() {
        let dt = 2e-3;
        let serial = serial_solution(4, dt);
        let dist = dist_solution(2, 4, dt, Partitioner::sfc(Curve::Hilbert));
        interiors_match(&serial, &dist);
    }

    #[test]
    fn four_ranks_match_serial_roundrobin() {
        // round-robin maximizes remote faces: the strongest halo test
        let dt = 2e-3;
        let serial = serial_solution(3, dt);
        let dist = dist_solution(4, 3, dt, Partitioner::round_robin());
        interiors_match(&serial, &dist);
    }

    #[test]
    fn dt_reduction_is_global() {
        let dts = Machine::run(3, |comm| {
            let e = Euler::<2>::new(1.4);
            let mut g = build_grid();
            init(&mut g, &e);
            let cfg = SolverConfig::new(e, Scheme::muscl_rusanov())
                .with_partitioner(Partitioner::sfc(Curve::Morton));
            let sim = DistSim::partitioned(g, 3, cfg);
            sim.max_dt(&comm)
        })
        .unwrap();
        assert!((dts[0] - dts[1]).abs() < 1e-15);
        assert!((dts[1] - dts[2]).abs() < 1e-15);
        assert!(dts[0].is_finite() && dts[0] > 0.0);
    }

    #[test]
    fn migration_preserves_data() {
        let sums = Machine::run(2, |comm| {
            let e = Euler::<2>::new(1.4);
            let mut g = build_grid();
            init(&mut g, &e);
            let total_ref: f64 = ablock_solver::stepper::total_conserved(&g, 0);
            let cfg = SolverConfig::new(e, Scheme::muscl_rusanov())
                .with_partitioner(Partitioner::round_robin());
            let mut sim = DistSim::partitioned(g, 2, cfg);
            // rebalance to SFC cut points: lots of migration
            sim.rebalance_with(&comm, &Partitioner::sfc(Curve::Hilbert));
            // total mass over owned blocks, reduced
            let me = comm.rank();
            let mut local = 0.0;
            for id in sim.owned_ids(me) {
                let n = sim.grid.block(id);
                let h = sim
                    .grid
                    .layout()
                    .cell_size(n.key().level, sim.grid.params().block_dims);
                local += n.field().interior_sum(0) * h[0] * h[1];
            }
            let total = comm.allreduce_sum(local);
            (total, total_ref)
        })
        .unwrap();
        for (total, total_ref) in sums {
            assert!((total - total_ref).abs() < 1e-12 * total_ref);
        }
    }

    #[test]
    fn distributed_adapt_keeps_ranks_consistent() {
        let reports = Machine::run(2, |comm| {
            let e = Euler::<2>::new(1.4);
            let mut g = build_grid();
            init(&mut g, &e);
            let mut sim =
                DistSim::partitioned(g, 2, SolverConfig::new(e, Scheme::muscl_rusanov()));
            // rank-local flags: refine the two blocks covering the pulse
            let me = comm.rank();
            let mut flags = HashMap::new();
            for id in sim.owned_ids(me) {
                let key = sim.grid.block(id).key();
                if key.coords == [1, 1] || key.coords == [2, 2] {
                    flags.insert(id, Flag::Refine);
                }
            }
            let changed = sim.adapt_rebalance(&comm, &flags);
            ablock_core::verify::check_grid(&sim.grid).unwrap();
            // every rank must agree on the new topology
            let nblocks = sim.grid.num_blocks();
            let all = comm.allgatherv(vec![nblocks as f64]);
            for part in &all {
                assert_eq!(part[0] as usize, nblocks);
            }
            // ownership covers every block exactly once across ranks
            let owned = sim.owned_ids(me).len();
            let total_owned = comm.allreduce_sum(owned as f64) as usize;
            assert_eq!(total_owned, nblocks);
            (changed, nblocks)
        })
        .unwrap();
        assert!(reports[0].0);
        assert_eq!(reports[0].1, reports[1].1);
        assert_eq!(reports[0].1, 16 - 2 + 8);
    }

    /// Two-level grid shared by the subcycling tests: refine two root
    /// blocks so round-robin ownership puts coarse-fine faces (and their
    /// reflux fetches) across rank boundaries.
    fn refined_grid(e: &Euler<2>) -> BlockGrid<2> {
        let mut g = build_grid();
        init(&mut g, e);
        for coords in [[1, 1], [2, 2]] {
            let id = g.find(BlockKey::new(0, coords)).unwrap();
            g.refine(id, Transfer::Conservative(ProlongOrder::LinearMinmod)).unwrap();
        }
        g
    }

    fn subcycled_cfg(e: Euler<2>) -> SolverConfig<Euler<2>> {
        SolverConfig::new(e, Scheme::muscl_rusanov())
            .with_refluxing(true)
            .with_time_step_mode(TimeStepMode::Subcycled)
    }

    #[test]
    fn dist_subcycled_matches_serial_bitwise() {
        let steps = 3;
        // serial subcycled reference
        let e = Euler::<2>::new(1.4);
        let mut g = refined_grid(&e);
        let mut st = Stepper::new(subcycled_cfg(e));
        let mut serial_dts = Vec::new();
        for _ in 0..steps {
            let dt0 = st.stable_dt(&mut g);
            serial_dts.push(dt0);
            st.step(&mut g, dt0, None);
        }
        let mut serial: Vec<(BlockKey<2>, Vec<f64>)> = g
            .blocks()
            .map(|(_, n)| (n.key(), n.field().as_slice().to_vec()))
            .collect();
        serial.sort_by_key(|(k, _)| *k);
        // round-robin maximizes remote faces on both fill and reflux
        let results = Machine::run(2, move |comm| {
            let e = Euler::<2>::new(1.4);
            let g = refined_grid(&e);
            let cfg = subcycled_cfg(e).with_partitioner(Partitioner::round_robin());
            let mut sim = DistSim::partitioned(g, 2, cfg);
            let mut dts = Vec::new();
            for _ in 0..steps {
                let dt0 = sim.stable_dt(&comm);
                dts.push(dt0);
                sim.advance(&comm, dt0);
            }
            let me = comm.rank();
            let mut out: Vec<(BlockKey<2>, Vec<f64>)> = sim
                .owned_ids(me)
                .into_iter()
                .map(|id| {
                    let n = sim.grid.block(id);
                    (n.key(), n.field().as_slice().to_vec())
                })
                .collect();
            out.sort_by_key(|(k, _)| *k);
            (dts, out)
        })
        .unwrap();
        let mut dist: Vec<(BlockKey<2>, Vec<f64>)> = Vec::new();
        for (dts, out) in results {
            // every rank's per-level-reduced dt0 is bitwise the serial one
            for (a, b) in dts.iter().zip(&serial_dts) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            dist.extend(out);
        }
        dist.sort_by_key(|(k, _)| *k);
        assert_eq!(serial.len(), dist.len());
        let shape = ablock_core::field::FieldShape::<2>::new([4, 4], 2, 4);
        for ((ka, fa), (kb, fb)) in serial.iter().zip(&dist) {
            assert_eq!(ka, kb);
            for c in shape.interior_box().iter() {
                let i = shape.lin(c);
                for v in 0..4 {
                    assert_eq!(
                        fa[i + v].to_bits(),
                        fb[i + v].to_bits(),
                        "block {ka:?} cell {c:?} var {v}: {} vs {}",
                        fa[i + v],
                        fb[i + v]
                    );
                }
            }
        }
    }

    #[test]
    fn dist_step_after_adapt_stays_finite() {
        Machine::run(2, |comm| {
            let e = Euler::<2>::new(1.4);
            let mut g = build_grid();
            init(&mut g, &e);
            let mut sim =
                DistSim::partitioned(g, 2, SolverConfig::new(e, Scheme::muscl_rusanov()));
            let me = comm.rank();
            let mut flags = HashMap::new();
            for id in sim.owned_ids(me) {
                if sim.grid.block(id).key().coords == [2, 2] {
                    flags.insert(id, Flag::Refine);
                }
            }
            sim.adapt_rebalance(&comm, &flags);
            for _ in 0..3 {
                let dt = sim.max_dt(&comm);
                sim.step_rk2(&comm, dt);
            }
            for id in sim.owned_ids(me) {
                let n = sim.grid.block(id);
                for c in n.field().shape().interior_box().iter() {
                    assert!(n.field().cell(c).iter().all(|x| x.is_finite()));
                    assert!(n.field().at(c, 0) > 0.0);
                }
            }
        })
        .unwrap();
    }
}

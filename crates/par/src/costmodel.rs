//! BSP cost model: the 512-processor scaling experiments on a laptop.
//!
//! The paper's Figs. 6–7 were measured on a 512-PE Cray T3D. We cannot
//! rerun that machine, but the *shape* of those curves is governed by a
//! handful of rates — per-cell compute time, per-message latency,
//! per-value bandwidth, reduction depth — composed over the actual block
//! topology and partition. This module evaluates exactly that composition
//! (a bulk-synchronous step model):
//!
//! ```text
//! T_step(P) = max_r [ cells_r · s · t_cell
//!                   + msgs_r · s · t_msg + values_r · s · t_value ]
//!           + ceil(log2 P) · t_reduce_hop        (global CFL allreduce)
//! ```
//!
//! where `s` is the number of RHS stages per step and `msgs_r`/`values_r`
//! count the ghost tasks of rank `r`'s blocks whose partner lives on
//! another rank (each endpoint pays — the T3D's shmem puts work on both
//! sides). The per-cell rate can be *measured* on the host (see the
//! `ablock-bench` fig5 harness) so the model is anchored in reality, and
//! the point-to-point parameters default to T3D-era values.
//!
//! A **topology scale factor** lets big studies run on small allocations:
//! the plan is built on blocks of `topo_m` cells per side but costed as if
//! they had `model_m` — cell counts scale by `(model_m/topo_m)^D`, face
//! regions by `(model_m/topo_m)^(D-1)`, which is exact for the
//! face-proportional ghost regions the plan contains.

use std::collections::HashMap;

use ablock_core::arena::BlockId;
use ablock_core::ghost::{GhostExchange, GhostTask};
use ablock_core::grid::BlockGrid;
use ablock_core::partition::RebalancePlan;
use ablock_obs::{phase, Metrics};
use ablock_solver::engine::SweepEngine;

/// Machine and scheme rates for the step model.
#[derive(Clone, Copy, Debug)]
pub struct CostParams {
    /// Seconds per cell per RHS stage.
    pub t_cell: f64,
    /// RHS stages per step (2 for SSP-RK2).
    pub stages: f64,
    /// Seconds of latency per point-to-point message.
    pub t_msg: f64,
    /// Seconds per f64 moved point-to-point.
    pub t_value: f64,
    /// Seconds per level of the allreduce tree.
    pub t_reduce_hop: f64,
    /// Cells-per-side the model pretends each block has.
    pub model_m: f64,
    /// Cells-per-side the topology actually allocates.
    pub topo_m: f64,
    /// Variables per cell the model charges for (the topology grid may be
    /// allocated with fewer to save memory; MHD is 8).
    pub nvar: f64,
}

impl CostParams {
    /// T3D-flavored parameters around a measured (or assumed) per-cell
    /// time. The T3D's 3-D torus had ~1–2 µs one-way latency and
    /// ~150 MB/s per link; an MHD MUSCL update ran a few µs per cell on
    /// the 150 MHz Alpha 21064.
    pub fn t3d_like(t_cell: f64, model_m: f64, topo_m: f64, nvar: f64) -> Self {
        CostParams {
            t_cell,
            stages: 2.0,
            t_msg: 1.5e-6,
            t_value: 8.0 / 150.0e6, // 8-byte value over a 150 MB/s link
            t_reduce_hop: 2.0e-6,
            model_m,
            topo_m,
            nvar,
        }
    }

    /// Spatial scale factor `model_m / topo_m`.
    pub fn scale(&self) -> f64 {
        self.model_m / self.topo_m
    }
}

/// Per-rank cost tally.
#[derive(Clone, Debug, Default)]
pub struct RankCost {
    /// Model cells owned.
    pub cells: f64,
    /// Remote messages sent or received per exchange.
    pub msgs: f64,
    /// Remote f64s sent or received per exchange.
    pub values: f64,
    /// f64s copied between same-rank blocks per exchange (the local part
    /// of the ghost fill — memory traffic, not messages).
    pub local_values: f64,
}

/// Modeled cost of one time step.
#[derive(Clone, Debug)]
pub struct StepCost {
    /// Per-rank tallies.
    pub ranks: Vec<RankCost>,
    /// Modeled wall-clock seconds per step.
    pub time: f64,
    /// Compute-only seconds of the busiest rank.
    pub compute_max: f64,
    /// Compute seconds if one rank did everything (serial time).
    pub compute_serial: f64,
    /// Communication seconds of the busiest rank.
    pub comm_max: f64,
    /// Allreduce seconds.
    pub reduce: f64,
}

impl StepCost {
    /// Parallel efficiency against ideal division of the serial work:
    /// `T_serial / (P · T_step)`.
    pub fn efficiency(&self) -> f64 {
        self.compute_serial / (self.ranks.len() as f64 * self.time)
    }

    /// Speedup over the serial compute time.
    pub fn speedup(&self) -> f64 {
        self.compute_serial / self.time
    }
}

/// Evaluate the step model against a [`SweepEngine`]'s cached plan,
/// revalidating it against the grid's topology epoch first — repeated
/// what-if costing over an unchanged grid reuses one plan build.
pub fn model_step_cached<const D: usize>(
    grid: &BlockGrid<D>,
    engine: &mut SweepEngine<D>,
    owner: &HashMap<BlockId, usize>,
    nranks: usize,
    p: &CostParams,
) -> StepCost {
    engine.revalidate(grid);
    model_step(grid, engine.plan(), owner, nranks, p)
}

/// Evaluate the step model for a grid + plan + ownership at `nranks`.
pub fn model_step<const D: usize>(
    grid: &BlockGrid<D>,
    plan: &GhostExchange<D>,
    owner: &HashMap<BlockId, usize>,
    nranks: usize,
    p: &CostParams,
) -> StepCost {
    let scale = p.scale();
    let cell_scale = scale.powi(D as i32);
    let face_scale = scale.powi(D as i32 - 1);
    let nvar = p.nvar;

    let mut ranks = vec![RankCost::default(); nranks];
    let cells_per_block = grid.params().field_shape().interior_cells() as f64 * cell_scale;
    for id in grid.block_ids() {
        ranks[owner[&id]].cells += cells_per_block;
    }
    for task in plan.phase1().iter().chain(plan.phase2()) {
        let (dst, src, vol) = match task {
            GhostTask::Same { dst, src, region, .. } => (*dst, *src, region.volume()),
            GhostTask::Restrict { dst, src, region, .. } => (*dst, *src, region.volume()),
            GhostTask::Prolong { dst, src, region, .. } => (*dst, *src, region.volume()),
            GhostTask::Physical { .. } | GhostTask::ClampCopy { .. } => continue,
        };
        let (od, os) = (owner[&dst], owner[&src]);
        let values = vol as f64 * face_scale * nvar;
        if od != os {
            ranks[od].msgs += 1.0;
            ranks[od].values += values;
            ranks[os].msgs += 1.0;
            ranks[os].values += values;
        } else {
            ranks[od].local_values += values;
        }
    }

    let mut compute_max = 0.0f64;
    let mut comm_max = 0.0f64;
    let mut busiest = 0.0f64;
    let mut compute_serial = 0.0f64;
    for r in &ranks {
        let compute = r.cells * p.stages * p.t_cell;
        let comm = r.msgs * p.stages * p.t_msg + r.values * p.stages * p.t_value;
        compute_serial += compute;
        compute_max = compute_max.max(compute);
        comm_max = comm_max.max(comm);
        busiest = busiest.max(compute + comm);
    }
    let reduce = (nranks as f64).log2().ceil().max(0.0) * p.t_reduce_hop;
    StepCost {
        ranks,
        time: busiest + reduce,
        compute_max,
        compute_serial,
        comm_max,
        reduce,
    }
}

/// Round a modeled duration to integer nanoseconds (the only currency a
/// metric sink accepts — keeping the replay exactly reproducible).
fn model_ns(seconds: f64) -> u64 {
    (seconds.max(0.0) * 1e9).round() as u64
}

/// Replay one modeled step into a metric sink as phase spans, advancing
/// the sink's **virtual clock** by each phase's modeled duration. The
/// phase decomposition mirrors the instrumented executors, so a modeled
/// 512-rank run and a measured shared-memory run produce snapshots with
/// the same span paths:
///
/// * `ghost_fill` — local ghost copies of the busiest rank (at the
///   point-to-point bandwidth, a memory-traffic proxy), with the remote
///   part nested as `ghost_fill/comm` (the model's `comm_max`);
/// * `flux` — `compute_max` (the per-cell RHS rate covers the sweeps);
/// * `update` — the busiest rank's cell updates charged as
///   bandwidth-bound axpy traffic (`cells · nvar · stages` values);
/// * `reduce` — the allreduce tree.
///
/// Aggregate model counters (`model.msgs`, `model.values`,
/// `model.local_values`, rounded to integers) are recorded alongside, so
/// two replays of the same topology are byte-identical snapshots.
pub fn record_step_phases(metrics: &Metrics, cost: &StepCost, p: &CostParams) {
    let local_max = cost.ranks.iter().map(|r| r.local_values).fold(0.0f64, f64::max);
    {
        let _gf = metrics.span(phase::GHOST_FILL);
        metrics.advance_ns(model_ns(local_max * p.stages * p.t_value));
        let _comm = metrics.span(phase::COMM);
        metrics.advance_ns(model_ns(cost.comm_max));
    }
    {
        let _flux = metrics.span(phase::FLUX);
        metrics.advance_ns(model_ns(cost.compute_max));
    }
    {
        let _update = metrics.span(phase::UPDATE);
        let cells_max = if p.t_cell > 0.0 {
            cost.compute_max / (p.stages * p.t_cell)
        } else {
            0.0
        };
        metrics.advance_ns(model_ns(cells_max * p.nvar * p.stages * p.t_value));
    }
    {
        let _reduce = metrics.span(phase::REDUCE);
        metrics.advance_ns(model_ns(cost.reduce));
    }
    let total = |f: fn(&RankCost) -> f64| cost.ranks.iter().map(f).sum::<f64>().round() as u64;
    metrics.incr("model.steps", 1);
    metrics.incr("model.msgs", total(|r| r.msgs));
    metrics.incr("model.values", total(|r| r.values));
    metrics.incr("model.local_values", total(|r| r.local_values));
}

/// Replay one modeled adapt-and-rebalance into a metric sink: an
/// allgather of refine flags (two tree traversals) under `adapt`, and the
/// migration of `migrated_values` f64s under a nested `adapt/rebalance`
/// span. Companion to [`record_step_phases`] for virtual-clock runs.
pub fn record_adapt_phases(
    metrics: &Metrics,
    nranks: usize,
    migrated_values: f64,
    p: &CostParams,
) {
    let hops = (nranks as f64).log2().ceil().max(0.0);
    let _adapt = metrics.span(phase::ADAPT);
    metrics.advance_ns(model_ns(2.0 * hops * p.t_reduce_hop));
    let _rb = metrics.span(phase::REBALANCE);
    metrics.advance_ns(model_ns(migrated_values * p.t_value + p.t_msg * hops));
}

/// Replay one modeled *incremental* rebalance into a metric sink, costed
/// from an actual [`RebalancePlan`]: every migrated block pays bandwidth
/// for its interior (scaled to model cells) and every rank pair with
/// traffic pays one message latency — the protocol
/// [`DistSim::rebalance`](crate::dist::DistSim::rebalance) executes.
/// Companion to [`record_adapt_phases`] when a plan is available; lets the
/// virtual-clock harnesses cost rebalances at 4096+ ranks directly from
/// cut-point diffs.
pub fn record_rebalance_phases<const D: usize>(
    metrics: &Metrics,
    plan: &RebalancePlan<D>,
    interior_cells: f64,
    p: &CostParams,
) {
    let values_per_block = interior_cells * p.scale().powi(D as i32) * p.nvar;
    let values = plan.migrated() as f64 * values_per_block;
    let msgs = plan.pairs().len() as f64;
    let _rb = metrics.span(phase::REBALANCE);
    metrics.advance_ns(model_ns(values * p.t_value + msgs * p.t_msg));
    metrics.incr("model.rebalance.migrated_blocks", plan.migrated() as u64);
    metrics.incr("model.rebalance.values", values.round() as u64);
    metrics.incr("model.rebalance.pair_msgs", msgs as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::Policy;
    use ablock_core::ghost::GhostConfig;
    use ablock_core::grid::GridParams;
    use ablock_core::layout::{Boundary, RootLayout};

    fn topo(roots: [i64; 3]) -> BlockGrid<3> {
        BlockGrid::new(
            RootLayout::unit(roots, Boundary::Periodic),
            GridParams::new([4, 4, 4], 2, 1, 2),
        )
    }

    fn model(grid: &BlockGrid<3>, nranks: usize, policy: Policy) -> StepCost {
        let plan = GhostExchange::build(grid, GhostConfig::default());
        let owner = policy.partitioner().partition_grid(grid, nranks);
        let p = CostParams::t3d_like(2e-6, 16.0, 4.0, 8.0);
        model_step(grid, &plan, &owner, nranks, &p)
    }

    #[test]
    fn single_rank_has_no_comm() {
        let g = topo([2, 2, 2]);
        let c = model(&g, 1, Policy::SfcHilbert);
        assert_eq!(c.comm_max, 0.0);
        assert_eq!(c.reduce, 0.0);
        assert!((c.efficiency() - 1.0).abs() < 1e-12);
        // 8 blocks * 16^3 model cells * 2 stages * 2us
        let want = 8.0 * 4096.0 * 2.0 * 2e-6;
        assert!((c.compute_serial - want).abs() < 1e-12);
    }

    #[test]
    fn efficiency_decreases_with_ranks_strong_scaling() {
        let g = topo([4, 4, 4]); // 64 blocks, fixed problem
        let e: Vec<f64> = [1, 2, 4, 8, 16, 32, 64]
            .iter()
            .map(|&p| model(&g, p, Policy::SfcHilbert).efficiency())
            .collect();
        for w in e.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "efficiency must not increase: {e:?}");
        }
        assert!(e[0] > 0.999);
        assert!(e[6] < 0.9, "64 blocks on 64 ranks must pay comm: {}", e[6]);
        assert!(e[6] > 0.3, "but blocks amortize comm well: {}", e[6]);
    }

    #[test]
    fn weak_scaling_stays_efficient() {
        // blocks per rank fixed at 8
        let effs: Vec<f64> = [1usize, 8, 64]
            .iter()
            .map(|&p| {
                let side = (p as f64).cbrt().round() as i64 * 2;
                let g = topo([side, side, side]);
                model(&g, p, Policy::SfcHilbert).efficiency()
            })
            .collect();
        assert!(effs[0] > 0.999);
        assert!(effs[2] > 0.8, "weak scaling efficiency collapsed: {effs:?}");
        for w in effs.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn sfc_beats_roundrobin_in_model_traffic() {
        // 4^3 blocks on 8 ranks: Hilbert chunks are 2x2x2 bricks (3 of 6
        // faces local); round-robin keeps only the z faces local.
        let g = topo([4, 4, 4]);
        let sfc = model(&g, 8, Policy::SfcHilbert);
        let rr = model(&g, 8, Policy::RoundRobin);
        let total = |c: &StepCost| c.ranks.iter().map(|r| r.values).sum::<f64>();
        assert!(
            total(&sfc) < total(&rr),
            "sfc traffic {} vs rr {}",
            total(&sfc),
            total(&rr)
        );
        // and never slower in modeled wall clock
        assert!(sfc.time <= rr.time + 1e-15, "sfc {} vs rr {}", sfc.time, rr.time);
    }

    #[test]
    fn scale_factor_is_exact_for_uniform_grids() {
        // model on topo 4^3 scaled to 16^3 == model on real 16^3 blocks
        let g_small = topo([2, 2, 2]);
        let plan_s = GhostExchange::build(&g_small, GhostConfig::default());
        let owner_s = Policy::SfcMorton.partitioner().partition_grid(&g_small, 4);
        let ps = CostParams::t3d_like(2e-6, 16.0, 4.0, 8.0);
        let cs = model_step(&g_small, &plan_s, &owner_s, 4, &ps);

        let g_big = BlockGrid::<3>::new(
            RootLayout::unit([2, 2, 2], Boundary::Periodic),
            GridParams::new([16, 16, 16], 2, 1, 2),
        );
        let plan_b = GhostExchange::build(&g_big, GhostConfig::default());
        let owner_b = Policy::SfcMorton.partitioner().partition_grid(&g_big, 4);
        let pb = CostParams::t3d_like(2e-6, 16.0, 16.0, 8.0);
        let cb = model_step(&g_big, &plan_b, &owner_b, 4, &pb);

        assert!((cs.compute_serial - cb.compute_serial).abs() < 1e-12);
        assert!(
            (cs.time - cb.time).abs() < 1e-9 * cb.time,
            "scaled {} vs real {}",
            cs.time,
            cb.time
        );
    }

    #[test]
    fn cached_model_matches_fresh_plan_and_reuses_it() {
        let g = topo([2, 2, 2]);
        let owner = Policy::SfcHilbert.partitioner().partition_grid(&g, 4);
        let p = CostParams::t3d_like(2e-6, 16.0, 4.0, 8.0);
        let plan = GhostExchange::build(&g, GhostConfig::default());
        let fresh = model_step(&g, &plan, &owner, 4, &p);
        let mut engine = SweepEngine::new(GhostConfig::default());
        let a = model_step_cached(&g, &mut engine, &owner, 4, &p);
        let b = model_step_cached(&g, &mut engine, &owner, 4, &p);
        assert!((a.time - fresh.time).abs() < 1e-15);
        assert!((b.time - fresh.time).abs() < 1e-15);
        assert_eq!(engine.stats().rebuilds, 1);
        assert_eq!(engine.stats().reuses, 1);
    }

    #[test]
    fn reduce_term_grows_logarithmically() {
        let g = topo([4, 4, 4]);
        let c64 = model(&g, 64, Policy::SfcHilbert);
        let c2 = model(&g, 2, Policy::SfcHilbert);
        assert!((c64.reduce / c2.reduce - 6.0).abs() < 1e-9);
    }
}

//! Deterministic, seeded fault injection for the message-passing machine.
//!
//! A [`FaultPlan`] wraps every point-to-point physical send (user messages
//! and acks — never collectives) in a deterministic decision derived from
//! `(seed, src, dst, tag, per-endpoint send counter)`: deliver, drop,
//! duplicate, corrupt one bit, or delay. Because retries re-enter the
//! decision with a fresh counter value, a dropped message is not dropped
//! forever — the reliable transport's retransmissions get independent
//! draws, so runs terminate with probability 1 while remaining exactly
//! reproducible for a given seed.
//!
//! The plan can also crash ranks at chosen user-level communication ops
//! (`crash_rank`), modeling hard process failures. Each crash site fires
//! at most once per plan — a recovery restart with the same plan does not
//! re-kill the (already re-ranked) machine. A site can additionally be
//! pinned to a specific machine attempt (`crash_rank_on_attempt`):
//! `Machine::run_with` bumps the plan's attempt counter at launch, so a
//! site pinned to attempt 1 fires during the *first recovery* — including
//! mid-fetch, while a restarting rank is pulling missing snapshot nodes
//! from the very peer being killed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// FNV-1a 64-bit hash over a stream of `u64` words (fed byte-wise).
pub fn fnv1a64(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// SplitMix64 finalizer: a strong 64-bit mixing function.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One planned rank crash: at `rank`'s `at_op`-th user-level comm op,
/// optionally only during machine attempt `attempt` (0-based).
#[derive(Debug)]
struct CrashSite {
    rank: usize,
    at_op: u64,
    attempt: Option<u64>,
    fired: AtomicBool,
}

/// What the plan decided for one physical message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// Silently discard the message.
    Drop,
    /// Deliver two copies.
    Duplicate,
    /// Deliver with one bit flipped in word `word`.
    Corrupt { word: usize, bit: u32 },
    /// Deliver after the sender sleeps for the plan's delay.
    Delay,
}

/// Counters of injected faults (read via [`FaultPlan::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages silently discarded.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages delivered with a flipped bit.
    pub corrupted: u64,
    /// Messages delayed before delivery.
    pub delayed: u64,
    /// Corrupt envelopes detected (checksum mismatch) by receivers.
    pub detected_corrupt: u64,
    /// Duplicate envelopes detected (stale sequence number) by receivers.
    pub detected_duplicate: u64,
}

/// A deterministic, seeded plan of communication faults.
///
/// Construct with [`FaultPlan::new`], chain the builder methods, then pass
/// (wrapped in an `Arc`) to `Machine::run_with`. All probabilities are per
/// physical message.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    drop_p: f64,
    dup_p: f64,
    corrupt_p: f64,
    delay_p: f64,
    delay: Duration,
    crashes: Vec<CrashSite>,
    attempts: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    corrupted: AtomicU64,
    delayed: AtomicU64,
    detected_corrupt: AtomicU64,
    detected_duplicate: AtomicU64,
}

impl FaultPlan {
    /// A plan that injects nothing (add faults with the builder methods).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_p: 0.0,
            dup_p: 0.0,
            corrupt_p: 0.0,
            delay_p: 0.0,
            delay: Duration::ZERO,
            crashes: Vec::new(),
            attempts: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            corrupted: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            detected_corrupt: AtomicU64::new(0),
            detected_duplicate: AtomicU64::new(0),
        }
    }

    /// Drop each physical message with probability `p`.
    pub fn drop_messages(mut self, p: f64) -> Self {
        self.drop_p = p;
        self
    }

    /// Duplicate each physical message with probability `p`.
    pub fn duplicate_messages(mut self, p: f64) -> Self {
        self.dup_p = p;
        self
    }

    /// Flip one bit of each physical message with probability `p`.
    pub fn corrupt_messages(mut self, p: f64) -> Self {
        self.corrupt_p = p;
        self
    }

    /// Delay each physical message by `delay` with probability `p`.
    pub fn delay_messages(mut self, p: f64, delay: Duration) -> Self {
        self.delay_p = p;
        self.delay = delay;
        self
    }

    /// Crash `rank` (panic, modeling a process death) when it issues its
    /// `at_op`-th user-level communication operation (0-based count over
    /// send/recv/barrier/collective calls), on whichever machine attempt
    /// first reaches it. Each site fires at most once per plan; chain the
    /// builder to schedule several crashes.
    pub fn crash_rank(mut self, rank: usize, at_op: u64) -> Self {
        self.crashes.push(CrashSite { rank, at_op, attempt: None, fired: AtomicBool::new(false) });
        self
    }

    /// Like [`FaultPlan::crash_rank`], but the site only arms during
    /// machine attempt `attempt` (0 = the initial launch, 1 = the first
    /// recovery restart, …). Pinning a site to attempt ≥ 1 injects a
    /// failure *during recovery itself*.
    pub fn crash_rank_on_attempt(mut self, rank: usize, at_op: u64, attempt: u64) -> Self {
        self.crashes.push(CrashSite {
            rank,
            at_op,
            attempt: Some(attempt),
            fired: AtomicBool::new(false),
        });
        self
    }

    /// The first configured crash site `(rank, at_op)`, if any.
    pub fn crash_site(&self) -> Option<(usize, u64)> {
        self.crashes.first().map(|c| (c.rank, c.at_op))
    }

    /// Called by `Machine::run_with` at launch: advance the attempt
    /// counter that gates [`FaultPlan::crash_rank_on_attempt`] sites.
    pub(crate) fn begin_attempt(&self) {
        self.attempts.fetch_add(1, Ordering::SeqCst);
    }

    /// Snapshot of the injected-fault counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            corrupted: self.corrupted.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            detected_corrupt: self.detected_corrupt.load(Ordering::Relaxed),
            detected_duplicate: self.detected_duplicate.load(Ordering::Relaxed),
        }
    }

    /// Sender-side delay duration (when [`FaultAction::Delay`] is decided).
    pub(crate) fn delay_duration(&self) -> Duration {
        self.delay
    }

    /// True at most once per site: when `rank`'s user-op counter reaches
    /// an armed crash op (respecting any attempt pin).
    pub(crate) fn should_crash(&self, rank: usize, op: u64) -> bool {
        let attempt = self.attempts.load(Ordering::SeqCst).saturating_sub(1);
        for site in &self.crashes {
            if site.rank == rank
                && op >= site.at_op
                && site.attempt.is_none_or(|a| a == attempt)
                && site
                    .fired
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                return true;
            }
        }
        false
    }

    /// Decide the fate of one physical message. `counter` is the sending
    /// endpoint's physical-send counter, which makes retransmissions of
    /// the same `(src, dst, tag)` independent draws.
    pub(crate) fn decide(
        &self,
        src: usize,
        dst: usize,
        tag: u64,
        counter: u64,
        len: usize,
    ) -> FaultAction {
        if self.drop_p == 0.0 && self.dup_p == 0.0 && self.corrupt_p == 0.0 && self.delay_p == 0.0
        {
            return FaultAction::Deliver;
        }
        let mut s = mix(
            self.seed
                ^ mix(src as u64)
                ^ mix((dst as u64).wrapping_mul(0x9E3779B97F4A7C15))
                ^ mix(tag)
                ^ mix(counter.wrapping_mul(0xD6E8FEB86659FD93)),
        );
        let mut draw = || {
            s = mix(s);
            s
        };
        if self.drop_p > 0.0 && unit(draw()) < self.drop_p {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return FaultAction::Drop;
        }
        if self.dup_p > 0.0 && unit(draw()) < self.dup_p {
            self.duplicated.fetch_add(1, Ordering::Relaxed);
            return FaultAction::Duplicate;
        }
        if self.corrupt_p > 0.0 && unit(draw()) < self.corrupt_p && len > 0 {
            self.corrupted.fetch_add(1, Ordering::Relaxed);
            let word = (draw() % len as u64) as usize;
            let bit = (draw() % 64) as u32;
            return FaultAction::Corrupt { word, bit };
        }
        if self.delay_p > 0.0 && unit(draw()) < self.delay_p {
            self.delayed.fetch_add(1, Ordering::Relaxed);
            return FaultAction::Delay;
        }
        FaultAction::Deliver
    }

    /// Record a receiver-side checksum-mismatch detection.
    pub(crate) fn note_detected_corrupt(&self) {
        self.detected_corrupt.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a receiver-side duplicate-sequence detection.
    pub(crate) fn note_detected_duplicate(&self) {
        self.detected_duplicate.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::new(11).drop_messages(0.3).corrupt_messages(0.2);
        let b = FaultPlan::new(11).drop_messages(0.3).corrupt_messages(0.2);
        for counter in 0..200 {
            assert_eq!(a.decide(0, 1, 7, counter, 16), b.decide(0, 1, 7, counter, 16));
        }
    }

    #[test]
    fn retries_get_fresh_draws() {
        let p = FaultPlan::new(5).drop_messages(0.5);
        let fates: Vec<_> = (0..100).map(|c| p.decide(2, 3, 9, c, 8)).collect();
        assert!(fates.contains(&FaultAction::Drop));
        assert!(fates.contains(&FaultAction::Deliver));
    }

    #[test]
    fn drop_rate_roughly_matches_probability() {
        let p = FaultPlan::new(1234).drop_messages(0.25);
        let n = 10_000;
        let dropped = (0..n)
            .filter(|&c| p.decide(0, 1, 0, c, 4) == FaultAction::Drop)
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "observed drop rate {rate}");
    }

    #[test]
    fn crash_fires_exactly_once() {
        let p = FaultPlan::new(0).crash_rank(2, 10);
        assert!(!p.should_crash(1, 10));
        assert!(!p.should_crash(2, 9));
        assert!(p.should_crash(2, 10));
        assert!(!p.should_crash(2, 10));
        assert!(!p.should_crash(2, 11));
    }

    #[test]
    fn multiple_sites_fire_independently() {
        let p = FaultPlan::new(0).crash_rank(1, 10).crash_rank(2, 5);
        assert!(p.should_crash(2, 5));
        assert!(p.should_crash(1, 10));
        assert!(!p.should_crash(1, 10));
        assert!(!p.should_crash(2, 6));
    }

    #[test]
    fn attempt_pinned_site_waits_for_its_attempt() {
        let p = FaultPlan::new(0).crash_rank_on_attempt(0, 3, 1);
        p.begin_attempt(); // attempt 0
        assert!(!p.should_crash(0, 3), "must not fire on attempt 0");
        assert!(!p.should_crash(0, 99));
        p.begin_attempt(); // attempt 1
        assert!(p.should_crash(0, 3));
        assert!(!p.should_crash(0, 3), "fires once");
        p.begin_attempt(); // attempt 2
        assert!(!p.should_crash(0, 3));
    }

    #[test]
    fn stats_count_decisions() {
        let p = FaultPlan::new(77).drop_messages(0.5);
        for c in 0..100 {
            let _ = p.decide(0, 1, 0, c, 4);
        }
        let s = p.stats();
        assert!(s.dropped > 0);
        assert_eq!(s.duplicated, 0);
    }

    #[test]
    fn fnv_distinguishes_streams() {
        assert_ne!(fnv1a64([1, 2, 3]), fnv1a64([1, 2, 4]));
        assert_ne!(fnv1a64([1, 2, 3]), fnv1a64([1, 3, 2]));
        assert_eq!(fnv1a64([]), fnv1a64([]));
    }
}
